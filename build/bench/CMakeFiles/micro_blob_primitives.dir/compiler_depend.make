# Empty compiler generated dependencies file for micro_blob_primitives.
# This may be replaced when dependencies are built.
