file(REMOVE_RECURSE
  "CMakeFiles/micro_blob_primitives.dir/micro_blob_primitives.cpp.o"
  "CMakeFiles/micro_blob_primitives.dir/micro_blob_primitives.cpp.o.d"
  "micro_blob_primitives"
  "micro_blob_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_blob_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
