# Empty compiler generated dependencies file for micro_striping.
# This may be replaced when dependencies are built.
