# Empty dependencies file for micro_kv_ts.
# This may be replaced when dependencies are built.
