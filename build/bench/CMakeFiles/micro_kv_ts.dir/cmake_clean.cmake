file(REMOVE_RECURSE
  "CMakeFiles/micro_kv_ts.dir/micro_kv_ts.cpp.o"
  "CMakeFiles/micro_kv_ts.dir/micro_kv_ts.cpp.o.d"
  "micro_kv_ts"
  "micro_kv_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_kv_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
