# Empty dependencies file for table1_app_summary.
# This may be replaced when dependencies are built.
