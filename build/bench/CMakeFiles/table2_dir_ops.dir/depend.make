# Empty dependencies file for table2_dir_ops.
# This may be replaced when dependencies are built.
