file(REMOVE_RECURSE
  "CMakeFiles/table2_dir_ops.dir/table2_dir_ops.cpp.o"
  "CMakeFiles/table2_dir_ops.dir/table2_dir_ops.cpp.o.d"
  "table2_dir_ops"
  "table2_dir_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_dir_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
