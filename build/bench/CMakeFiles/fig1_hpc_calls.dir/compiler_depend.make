# Empty compiler generated dependencies file for fig1_hpc_calls.
# This may be replaced when dependencies are built.
