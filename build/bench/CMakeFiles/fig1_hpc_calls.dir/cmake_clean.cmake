file(REMOVE_RECURSE
  "CMakeFiles/fig1_hpc_calls.dir/fig1_hpc_calls.cpp.o"
  "CMakeFiles/fig1_hpc_calls.dir/fig1_hpc_calls.cpp.o.d"
  "fig1_hpc_calls"
  "fig1_hpc_calls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_hpc_calls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
