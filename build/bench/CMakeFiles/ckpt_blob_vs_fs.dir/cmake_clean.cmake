file(REMOVE_RECURSE
  "CMakeFiles/ckpt_blob_vs_fs.dir/ckpt_blob_vs_fs.cpp.o"
  "CMakeFiles/ckpt_blob_vs_fs.dir/ckpt_blob_vs_fs.cpp.o.d"
  "ckpt_blob_vs_fs"
  "ckpt_blob_vs_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_blob_vs_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
