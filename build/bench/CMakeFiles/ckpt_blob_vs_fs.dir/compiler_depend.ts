# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ckpt_blob_vs_fs.
