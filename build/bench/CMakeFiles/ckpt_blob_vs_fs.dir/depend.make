# Empty dependencies file for ckpt_blob_vs_fs.
# This may be replaced when dependencies are built.
