file(REMOVE_RECURSE
  "CMakeFiles/bsc_bench_support.dir/support.cpp.o"
  "CMakeFiles/bsc_bench_support.dir/support.cpp.o.d"
  "libbsc_bench_support.a"
  "libbsc_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsc_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
