# Empty dependencies file for bsc_bench_support.
# This may be replaced when dependencies are built.
