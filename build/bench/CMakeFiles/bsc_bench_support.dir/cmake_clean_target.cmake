file(REMOVE_RECURSE
  "libbsc_bench_support.a"
)
