file(REMOVE_RECURSE
  "CMakeFiles/fig3_blob_vs_fs.dir/fig3_blob_vs_fs.cpp.o"
  "CMakeFiles/fig3_blob_vs_fs.dir/fig3_blob_vs_fs.cpp.o.d"
  "fig3_blob_vs_fs"
  "fig3_blob_vs_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_blob_vs_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
