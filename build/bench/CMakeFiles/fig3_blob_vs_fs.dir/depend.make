# Empty dependencies file for fig3_blob_vs_fs.
# This may be replaced when dependencies are built.
