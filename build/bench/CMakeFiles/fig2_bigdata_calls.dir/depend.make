# Empty dependencies file for fig2_bigdata_calls.
# This may be replaced when dependencies are built.
