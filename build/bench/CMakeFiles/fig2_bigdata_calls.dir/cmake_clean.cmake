file(REMOVE_RECURSE
  "CMakeFiles/fig2_bigdata_calls.dir/fig2_bigdata_calls.cpp.o"
  "CMakeFiles/fig2_bigdata_calls.dir/fig2_bigdata_calls.cpp.o.d"
  "fig2_bigdata_calls"
  "fig2_bigdata_calls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_bigdata_calls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
