# Empty compiler generated dependencies file for micro_metadata_ops.
# This may be replaced when dependencies are built.
