file(REMOVE_RECURSE
  "CMakeFiles/micro_metadata_ops.dir/micro_metadata_ops.cpp.o"
  "CMakeFiles/micro_metadata_ops.dir/micro_metadata_ops.cpp.o.d"
  "micro_metadata_ops"
  "micro_metadata_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_metadata_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
