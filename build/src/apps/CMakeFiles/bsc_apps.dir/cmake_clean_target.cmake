file(REMOVE_RECURSE
  "libbsc_apps.a"
)
