# Empty compiler generated dependencies file for bsc_apps.
# This may be replaced when dependencies are built.
