file(REMOVE_RECURSE
  "CMakeFiles/bsc_apps.dir/hpc_apps.cpp.o"
  "CMakeFiles/bsc_apps.dir/hpc_apps.cpp.o.d"
  "CMakeFiles/bsc_apps.dir/spark_apps.cpp.o"
  "CMakeFiles/bsc_apps.dir/spark_apps.cpp.o.d"
  "libbsc_apps.a"
  "libbsc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
