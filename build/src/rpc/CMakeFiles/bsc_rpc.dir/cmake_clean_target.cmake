file(REMOVE_RECURSE
  "libbsc_rpc.a"
)
