file(REMOVE_RECURSE
  "CMakeFiles/bsc_rpc.dir/transport.cpp.o"
  "CMakeFiles/bsc_rpc.dir/transport.cpp.o.d"
  "CMakeFiles/bsc_rpc.dir/wire.cpp.o"
  "CMakeFiles/bsc_rpc.dir/wire.cpp.o.d"
  "libbsc_rpc.a"
  "libbsc_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsc_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
