# Empty compiler generated dependencies file for bsc_rpc.
# This may be replaced when dependencies are built.
