# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("rpc")
subdirs("vfs")
subdirs("blob")
subdirs("pfs")
subdirs("hdfs")
subdirs("adapter")
subdirs("kvstore")
subdirs("gateway")
subdirs("mpiio")
subdirs("h5lite")
subdirs("bplite")
subdirs("trace")
subdirs("spark")
subdirs("apps")
