file(REMOVE_RECURSE
  "libbsc_blob.a"
)
