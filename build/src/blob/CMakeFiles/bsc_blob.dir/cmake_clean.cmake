file(REMOVE_RECURSE
  "CMakeFiles/bsc_blob.dir/client.cpp.o"
  "CMakeFiles/bsc_blob.dir/client.cpp.o.d"
  "CMakeFiles/bsc_blob.dir/ring.cpp.o"
  "CMakeFiles/bsc_blob.dir/ring.cpp.o.d"
  "CMakeFiles/bsc_blob.dir/server.cpp.o"
  "CMakeFiles/bsc_blob.dir/server.cpp.o.d"
  "CMakeFiles/bsc_blob.dir/storage_engine.cpp.o"
  "CMakeFiles/bsc_blob.dir/storage_engine.cpp.o.d"
  "CMakeFiles/bsc_blob.dir/store.cpp.o"
  "CMakeFiles/bsc_blob.dir/store.cpp.o.d"
  "libbsc_blob.a"
  "libbsc_blob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsc_blob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
