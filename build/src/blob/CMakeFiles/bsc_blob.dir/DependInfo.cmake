
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blob/client.cpp" "src/blob/CMakeFiles/bsc_blob.dir/client.cpp.o" "gcc" "src/blob/CMakeFiles/bsc_blob.dir/client.cpp.o.d"
  "/root/repo/src/blob/ring.cpp" "src/blob/CMakeFiles/bsc_blob.dir/ring.cpp.o" "gcc" "src/blob/CMakeFiles/bsc_blob.dir/ring.cpp.o.d"
  "/root/repo/src/blob/server.cpp" "src/blob/CMakeFiles/bsc_blob.dir/server.cpp.o" "gcc" "src/blob/CMakeFiles/bsc_blob.dir/server.cpp.o.d"
  "/root/repo/src/blob/storage_engine.cpp" "src/blob/CMakeFiles/bsc_blob.dir/storage_engine.cpp.o" "gcc" "src/blob/CMakeFiles/bsc_blob.dir/storage_engine.cpp.o.d"
  "/root/repo/src/blob/store.cpp" "src/blob/CMakeFiles/bsc_blob.dir/store.cpp.o" "gcc" "src/blob/CMakeFiles/bsc_blob.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bsc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/bsc_rpc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
