# Empty compiler generated dependencies file for bsc_blob.
# This may be replaced when dependencies are built.
