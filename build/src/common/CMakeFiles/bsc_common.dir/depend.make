# Empty dependencies file for bsc_common.
# This may be replaced when dependencies are built.
