file(REMOVE_RECURSE
  "libbsc_common.a"
)
