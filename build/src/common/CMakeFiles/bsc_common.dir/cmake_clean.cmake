file(REMOVE_RECURSE
  "CMakeFiles/bsc_common.dir/hash.cpp.o"
  "CMakeFiles/bsc_common.dir/hash.cpp.o.d"
  "CMakeFiles/bsc_common.dir/logging.cpp.o"
  "CMakeFiles/bsc_common.dir/logging.cpp.o.d"
  "CMakeFiles/bsc_common.dir/rng.cpp.o"
  "CMakeFiles/bsc_common.dir/rng.cpp.o.d"
  "CMakeFiles/bsc_common.dir/stats.cpp.o"
  "CMakeFiles/bsc_common.dir/stats.cpp.o.d"
  "CMakeFiles/bsc_common.dir/strings.cpp.o"
  "CMakeFiles/bsc_common.dir/strings.cpp.o.d"
  "CMakeFiles/bsc_common.dir/thread_pool.cpp.o"
  "CMakeFiles/bsc_common.dir/thread_pool.cpp.o.d"
  "libbsc_common.a"
  "libbsc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
