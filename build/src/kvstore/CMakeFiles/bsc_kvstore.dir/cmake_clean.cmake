file(REMOVE_RECURSE
  "CMakeFiles/bsc_kvstore.dir/kv.cpp.o"
  "CMakeFiles/bsc_kvstore.dir/kv.cpp.o.d"
  "CMakeFiles/bsc_kvstore.dir/timeseries.cpp.o"
  "CMakeFiles/bsc_kvstore.dir/timeseries.cpp.o.d"
  "libbsc_kvstore.a"
  "libbsc_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsc_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
