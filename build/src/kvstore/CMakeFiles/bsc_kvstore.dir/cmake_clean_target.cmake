file(REMOVE_RECURSE
  "libbsc_kvstore.a"
)
