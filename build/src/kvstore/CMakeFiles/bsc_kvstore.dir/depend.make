# Empty dependencies file for bsc_kvstore.
# This may be replaced when dependencies are built.
