
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kvstore/kv.cpp" "src/kvstore/CMakeFiles/bsc_kvstore.dir/kv.cpp.o" "gcc" "src/kvstore/CMakeFiles/bsc_kvstore.dir/kv.cpp.o.d"
  "/root/repo/src/kvstore/timeseries.cpp" "src/kvstore/CMakeFiles/bsc_kvstore.dir/timeseries.cpp.o" "gcc" "src/kvstore/CMakeFiles/bsc_kvstore.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bsc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/bsc_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/blob/CMakeFiles/bsc_blob.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
