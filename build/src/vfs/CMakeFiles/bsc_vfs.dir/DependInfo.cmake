
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vfs/helpers.cpp" "src/vfs/CMakeFiles/bsc_vfs.dir/helpers.cpp.o" "gcc" "src/vfs/CMakeFiles/bsc_vfs.dir/helpers.cpp.o.d"
  "/root/repo/src/vfs/migrate.cpp" "src/vfs/CMakeFiles/bsc_vfs.dir/migrate.cpp.o" "gcc" "src/vfs/CMakeFiles/bsc_vfs.dir/migrate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bsc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bsc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
