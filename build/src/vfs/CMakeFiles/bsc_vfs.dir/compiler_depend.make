# Empty compiler generated dependencies file for bsc_vfs.
# This may be replaced when dependencies are built.
