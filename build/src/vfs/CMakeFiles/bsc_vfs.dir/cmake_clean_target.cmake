file(REMOVE_RECURSE
  "libbsc_vfs.a"
)
