file(REMOVE_RECURSE
  "CMakeFiles/bsc_vfs.dir/helpers.cpp.o"
  "CMakeFiles/bsc_vfs.dir/helpers.cpp.o.d"
  "CMakeFiles/bsc_vfs.dir/migrate.cpp.o"
  "CMakeFiles/bsc_vfs.dir/migrate.cpp.o.d"
  "libbsc_vfs.a"
  "libbsc_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsc_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
