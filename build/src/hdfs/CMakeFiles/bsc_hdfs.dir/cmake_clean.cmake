file(REMOVE_RECURSE
  "CMakeFiles/bsc_hdfs.dir/datanode.cpp.o"
  "CMakeFiles/bsc_hdfs.dir/datanode.cpp.o.d"
  "CMakeFiles/bsc_hdfs.dir/hdfs.cpp.o"
  "CMakeFiles/bsc_hdfs.dir/hdfs.cpp.o.d"
  "CMakeFiles/bsc_hdfs.dir/namenode.cpp.o"
  "CMakeFiles/bsc_hdfs.dir/namenode.cpp.o.d"
  "libbsc_hdfs.a"
  "libbsc_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsc_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
