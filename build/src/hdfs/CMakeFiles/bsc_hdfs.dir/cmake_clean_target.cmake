file(REMOVE_RECURSE
  "libbsc_hdfs.a"
)
