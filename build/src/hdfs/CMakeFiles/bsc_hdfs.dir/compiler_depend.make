# Empty compiler generated dependencies file for bsc_hdfs.
# This may be replaced when dependencies are built.
