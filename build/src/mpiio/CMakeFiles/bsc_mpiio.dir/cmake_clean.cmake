file(REMOVE_RECURSE
  "CMakeFiles/bsc_mpiio.dir/communicator.cpp.o"
  "CMakeFiles/bsc_mpiio.dir/communicator.cpp.o.d"
  "CMakeFiles/bsc_mpiio.dir/mpi_file.cpp.o"
  "CMakeFiles/bsc_mpiio.dir/mpi_file.cpp.o.d"
  "libbsc_mpiio.a"
  "libbsc_mpiio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsc_mpiio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
