file(REMOVE_RECURSE
  "libbsc_mpiio.a"
)
