# Empty dependencies file for bsc_mpiio.
# This may be replaced when dependencies are built.
