# Empty compiler generated dependencies file for bsc_sim.
# This may be replaced when dependencies are built.
