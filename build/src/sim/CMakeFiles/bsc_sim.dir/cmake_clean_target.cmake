file(REMOVE_RECURSE
  "libbsc_sim.a"
)
