file(REMOVE_RECURSE
  "CMakeFiles/bsc_sim.dir/cluster.cpp.o"
  "CMakeFiles/bsc_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/bsc_sim.dir/disk_model.cpp.o"
  "CMakeFiles/bsc_sim.dir/disk_model.cpp.o.d"
  "CMakeFiles/bsc_sim.dir/net_model.cpp.o"
  "CMakeFiles/bsc_sim.dir/net_model.cpp.o.d"
  "CMakeFiles/bsc_sim.dir/node.cpp.o"
  "CMakeFiles/bsc_sim.dir/node.cpp.o.d"
  "CMakeFiles/bsc_sim.dir/page_cache.cpp.o"
  "CMakeFiles/bsc_sim.dir/page_cache.cpp.o.d"
  "libbsc_sim.a"
  "libbsc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
