file(REMOVE_RECURSE
  "libbsc_h5lite.a"
)
