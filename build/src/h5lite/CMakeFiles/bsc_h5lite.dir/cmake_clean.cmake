file(REMOVE_RECURSE
  "CMakeFiles/bsc_h5lite.dir/h5file.cpp.o"
  "CMakeFiles/bsc_h5lite.dir/h5file.cpp.o.d"
  "libbsc_h5lite.a"
  "libbsc_h5lite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsc_h5lite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
