# Empty dependencies file for bsc_h5lite.
# This may be replaced when dependencies are built.
