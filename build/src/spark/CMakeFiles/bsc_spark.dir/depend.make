# Empty dependencies file for bsc_spark.
# This may be replaced when dependencies are built.
