file(REMOVE_RECURSE
  "CMakeFiles/bsc_spark.dir/analytics.cpp.o"
  "CMakeFiles/bsc_spark.dir/analytics.cpp.o.d"
  "CMakeFiles/bsc_spark.dir/engine.cpp.o"
  "CMakeFiles/bsc_spark.dir/engine.cpp.o.d"
  "libbsc_spark.a"
  "libbsc_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsc_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
