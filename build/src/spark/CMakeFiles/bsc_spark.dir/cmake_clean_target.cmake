file(REMOVE_RECURSE
  "libbsc_spark.a"
)
