file(REMOVE_RECURSE
  "CMakeFiles/bsc_trace.dir/call_log.cpp.o"
  "CMakeFiles/bsc_trace.dir/call_log.cpp.o.d"
  "CMakeFiles/bsc_trace.dir/recorder.cpp.o"
  "CMakeFiles/bsc_trace.dir/recorder.cpp.o.d"
  "CMakeFiles/bsc_trace.dir/report.cpp.o"
  "CMakeFiles/bsc_trace.dir/report.cpp.o.d"
  "CMakeFiles/bsc_trace.dir/tracing_fs.cpp.o"
  "CMakeFiles/bsc_trace.dir/tracing_fs.cpp.o.d"
  "libbsc_trace.a"
  "libbsc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
