# Empty compiler generated dependencies file for bsc_trace.
# This may be replaced when dependencies are built.
