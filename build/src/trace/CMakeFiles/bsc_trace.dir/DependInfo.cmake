
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/call_log.cpp" "src/trace/CMakeFiles/bsc_trace.dir/call_log.cpp.o" "gcc" "src/trace/CMakeFiles/bsc_trace.dir/call_log.cpp.o.d"
  "/root/repo/src/trace/recorder.cpp" "src/trace/CMakeFiles/bsc_trace.dir/recorder.cpp.o" "gcc" "src/trace/CMakeFiles/bsc_trace.dir/recorder.cpp.o.d"
  "/root/repo/src/trace/report.cpp" "src/trace/CMakeFiles/bsc_trace.dir/report.cpp.o" "gcc" "src/trace/CMakeFiles/bsc_trace.dir/report.cpp.o.d"
  "/root/repo/src/trace/tracing_fs.cpp" "src/trace/CMakeFiles/bsc_trace.dir/tracing_fs.cpp.o" "gcc" "src/trace/CMakeFiles/bsc_trace.dir/tracing_fs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bsc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/bsc_vfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
