file(REMOVE_RECURSE
  "libbsc_trace.a"
)
