file(REMOVE_RECURSE
  "libbsc_pfs.a"
)
