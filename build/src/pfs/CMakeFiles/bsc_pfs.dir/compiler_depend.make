# Empty compiler generated dependencies file for bsc_pfs.
# This may be replaced when dependencies are built.
