file(REMOVE_RECURSE
  "CMakeFiles/bsc_pfs.dir/lock_manager.cpp.o"
  "CMakeFiles/bsc_pfs.dir/lock_manager.cpp.o.d"
  "CMakeFiles/bsc_pfs.dir/mds.cpp.o"
  "CMakeFiles/bsc_pfs.dir/mds.cpp.o.d"
  "CMakeFiles/bsc_pfs.dir/ost.cpp.o"
  "CMakeFiles/bsc_pfs.dir/ost.cpp.o.d"
  "CMakeFiles/bsc_pfs.dir/pfs.cpp.o"
  "CMakeFiles/bsc_pfs.dir/pfs.cpp.o.d"
  "libbsc_pfs.a"
  "libbsc_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsc_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
