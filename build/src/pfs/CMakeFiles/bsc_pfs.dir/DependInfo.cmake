
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pfs/lock_manager.cpp" "src/pfs/CMakeFiles/bsc_pfs.dir/lock_manager.cpp.o" "gcc" "src/pfs/CMakeFiles/bsc_pfs.dir/lock_manager.cpp.o.d"
  "/root/repo/src/pfs/mds.cpp" "src/pfs/CMakeFiles/bsc_pfs.dir/mds.cpp.o" "gcc" "src/pfs/CMakeFiles/bsc_pfs.dir/mds.cpp.o.d"
  "/root/repo/src/pfs/ost.cpp" "src/pfs/CMakeFiles/bsc_pfs.dir/ost.cpp.o" "gcc" "src/pfs/CMakeFiles/bsc_pfs.dir/ost.cpp.o.d"
  "/root/repo/src/pfs/pfs.cpp" "src/pfs/CMakeFiles/bsc_pfs.dir/pfs.cpp.o" "gcc" "src/pfs/CMakeFiles/bsc_pfs.dir/pfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bsc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/bsc_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/bsc_vfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
