file(REMOVE_RECURSE
  "CMakeFiles/bsc_gateway.dir/s3.cpp.o"
  "CMakeFiles/bsc_gateway.dir/s3.cpp.o.d"
  "libbsc_gateway.a"
  "libbsc_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsc_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
