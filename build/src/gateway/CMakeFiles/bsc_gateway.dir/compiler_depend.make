# Empty compiler generated dependencies file for bsc_gateway.
# This may be replaced when dependencies are built.
