
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gateway/s3.cpp" "src/gateway/CMakeFiles/bsc_gateway.dir/s3.cpp.o" "gcc" "src/gateway/CMakeFiles/bsc_gateway.dir/s3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bsc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/bsc_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/blob/CMakeFiles/bsc_blob.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
