file(REMOVE_RECURSE
  "libbsc_gateway.a"
)
