# Empty dependencies file for bsc_adapter.
# This may be replaced when dependencies are built.
