file(REMOVE_RECURSE
  "libbsc_adapter.a"
)
