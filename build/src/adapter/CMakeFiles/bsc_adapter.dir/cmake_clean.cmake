file(REMOVE_RECURSE
  "CMakeFiles/bsc_adapter.dir/blobfs.cpp.o"
  "CMakeFiles/bsc_adapter.dir/blobfs.cpp.o.d"
  "libbsc_adapter.a"
  "libbsc_adapter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsc_adapter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
