# CMake generated Testfile for 
# Source directory: /root/repo/src/bplite
# Build directory: /root/repo/build/src/bplite
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
