
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bplite/bp.cpp" "src/bplite/CMakeFiles/bsc_bplite.dir/bp.cpp.o" "gcc" "src/bplite/CMakeFiles/bsc_bplite.dir/bp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bsc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/bsc_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/bsc_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/bsc_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bsc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
