# Empty dependencies file for bsc_bplite.
# This may be replaced when dependencies are built.
