file(REMOVE_RECURSE
  "CMakeFiles/bsc_bplite.dir/bp.cpp.o"
  "CMakeFiles/bsc_bplite.dir/bp.cpp.o.d"
  "libbsc_bplite.a"
  "libbsc_bplite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsc_bplite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
