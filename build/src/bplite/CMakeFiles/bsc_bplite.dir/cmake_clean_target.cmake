file(REMOVE_RECURSE
  "libbsc_bplite.a"
)
