file(REMOVE_RECURSE
  "CMakeFiles/trace_census.dir/trace_census.cpp.o"
  "CMakeFiles/trace_census.dir/trace_census.cpp.o.d"
  "trace_census"
  "trace_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
