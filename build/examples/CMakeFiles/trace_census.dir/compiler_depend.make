# Empty compiler generated dependencies file for trace_census.
# This may be replaced when dependencies are built.
