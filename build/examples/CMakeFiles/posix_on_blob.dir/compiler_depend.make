# Empty compiler generated dependencies file for posix_on_blob.
# This may be replaced when dependencies are built.
