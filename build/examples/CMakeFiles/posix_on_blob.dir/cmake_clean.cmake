file(REMOVE_RECURSE
  "CMakeFiles/posix_on_blob.dir/posix_on_blob.cpp.o"
  "CMakeFiles/posix_on_blob.dir/posix_on_blob.cpp.o.d"
  "posix_on_blob"
  "posix_on_blob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posix_on_blob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
