# Empty compiler generated dependencies file for parallel_hdf5.
# This may be replaced when dependencies are built.
