file(REMOVE_RECURSE
  "CMakeFiles/parallel_hdf5.dir/parallel_hdf5.cpp.o"
  "CMakeFiles/parallel_hdf5.dir/parallel_hdf5.cpp.o.d"
  "parallel_hdf5"
  "parallel_hdf5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_hdf5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
