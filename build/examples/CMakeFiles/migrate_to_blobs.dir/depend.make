# Empty dependencies file for migrate_to_blobs.
# This may be replaced when dependencies are built.
