file(REMOVE_RECURSE
  "CMakeFiles/migrate_to_blobs.dir/migrate_to_blobs.cpp.o"
  "CMakeFiles/migrate_to_blobs.dir/migrate_to_blobs.cpp.o.d"
  "migrate_to_blobs"
  "migrate_to_blobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migrate_to_blobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
