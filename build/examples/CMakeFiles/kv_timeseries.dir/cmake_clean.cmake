file(REMOVE_RECURSE
  "CMakeFiles/kv_timeseries.dir/kv_timeseries.cpp.o"
  "CMakeFiles/kv_timeseries.dir/kv_timeseries.cpp.o.d"
  "kv_timeseries"
  "kv_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
