# Empty dependencies file for kv_timeseries.
# This may be replaced when dependencies are built.
