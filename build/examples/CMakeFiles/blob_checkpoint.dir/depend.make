# Empty dependencies file for blob_checkpoint.
# This may be replaced when dependencies are built.
