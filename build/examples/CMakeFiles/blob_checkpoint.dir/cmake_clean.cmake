file(REMOVE_RECURSE
  "CMakeFiles/blob_checkpoint.dir/blob_checkpoint.cpp.o"
  "CMakeFiles/blob_checkpoint.dir/blob_checkpoint.cpp.o.d"
  "blob_checkpoint"
  "blob_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blob_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
