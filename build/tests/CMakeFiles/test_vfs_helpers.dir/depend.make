# Empty dependencies file for test_vfs_helpers.
# This may be replaced when dependencies are built.
