file(REMOVE_RECURSE
  "CMakeFiles/test_vfs_helpers.dir/test_vfs_helpers.cpp.o"
  "CMakeFiles/test_vfs_helpers.dir/test_vfs_helpers.cpp.o.d"
  "test_vfs_helpers"
  "test_vfs_helpers.pdb"
  "test_vfs_helpers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vfs_helpers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
