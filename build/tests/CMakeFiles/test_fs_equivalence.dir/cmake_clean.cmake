file(REMOVE_RECURSE
  "CMakeFiles/test_fs_equivalence.dir/test_fs_equivalence.cpp.o"
  "CMakeFiles/test_fs_equivalence.dir/test_fs_equivalence.cpp.o.d"
  "test_fs_equivalence"
  "test_fs_equivalence.pdb"
  "test_fs_equivalence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fs_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
