
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_mpiio.cpp" "tests/CMakeFiles/test_mpiio.dir/test_mpiio.cpp.o" "gcc" "tests/CMakeFiles/test_mpiio.dir/test_mpiio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bsc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/bsc_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/bsc_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/blob/CMakeFiles/bsc_blob.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/bsc_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/bsc_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/adapter/CMakeFiles/bsc_adapter.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/bsc_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bsc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/spark/CMakeFiles/bsc_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/bsc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/bsc_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/h5lite/CMakeFiles/bsc_h5lite.dir/DependInfo.cmake"
  "/root/repo/build/src/bplite/CMakeFiles/bsc_bplite.dir/DependInfo.cmake"
  "/root/repo/build/src/gateway/CMakeFiles/bsc_gateway.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
