# Empty dependencies file for test_blob_ring.
# This may be replaced when dependencies are built.
