file(REMOVE_RECURSE
  "CMakeFiles/test_blob_ring.dir/test_blob_ring.cpp.o"
  "CMakeFiles/test_blob_ring.dir/test_blob_ring.cpp.o.d"
  "test_blob_ring"
  "test_blob_ring.pdb"
  "test_blob_ring[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blob_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
