file(REMOVE_RECURSE
  "CMakeFiles/test_blob_client.dir/test_blob_client.cpp.o"
  "CMakeFiles/test_blob_client.dir/test_blob_client.cpp.o.d"
  "test_blob_client"
  "test_blob_client.pdb"
  "test_blob_client[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blob_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
