# Empty dependencies file for test_blob_client.
# This may be replaced when dependencies are built.
