# Empty dependencies file for test_blob_scrub.
# This may be replaced when dependencies are built.
