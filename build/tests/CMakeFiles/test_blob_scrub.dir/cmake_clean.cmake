file(REMOVE_RECURSE
  "CMakeFiles/test_blob_scrub.dir/test_blob_scrub.cpp.o"
  "CMakeFiles/test_blob_scrub.dir/test_blob_scrub.cpp.o.d"
  "test_blob_scrub"
  "test_blob_scrub.pdb"
  "test_blob_scrub[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blob_scrub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
