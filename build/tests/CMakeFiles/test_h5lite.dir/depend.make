# Empty dependencies file for test_h5lite.
# This may be replaced when dependencies are built.
