file(REMOVE_RECURSE
  "CMakeFiles/test_h5lite.dir/test_h5lite.cpp.o"
  "CMakeFiles/test_h5lite.dir/test_h5lite.cpp.o.d"
  "test_h5lite"
  "test_h5lite.pdb"
  "test_h5lite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_h5lite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
