# Empty dependencies file for test_bplite.
# This may be replaced when dependencies are built.
