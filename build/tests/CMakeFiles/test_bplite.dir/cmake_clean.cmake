file(REMOVE_RECURSE
  "CMakeFiles/test_bplite.dir/test_bplite.cpp.o"
  "CMakeFiles/test_bplite.dir/test_bplite.cpp.o.d"
  "test_bplite"
  "test_bplite.pdb"
  "test_bplite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bplite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
