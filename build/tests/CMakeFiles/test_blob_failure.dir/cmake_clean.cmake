file(REMOVE_RECURSE
  "CMakeFiles/test_blob_failure.dir/test_blob_failure.cpp.o"
  "CMakeFiles/test_blob_failure.dir/test_blob_failure.cpp.o.d"
  "test_blob_failure"
  "test_blob_failure.pdb"
  "test_blob_failure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blob_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
