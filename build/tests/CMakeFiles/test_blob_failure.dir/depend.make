# Empty dependencies file for test_blob_failure.
# This may be replaced when dependencies are built.
