file(REMOVE_RECURSE
  "CMakeFiles/test_blob_engine.dir/test_blob_engine.cpp.o"
  "CMakeFiles/test_blob_engine.dir/test_blob_engine.cpp.o.d"
  "test_blob_engine"
  "test_blob_engine.pdb"
  "test_blob_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blob_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
