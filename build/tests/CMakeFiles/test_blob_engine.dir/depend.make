# Empty dependencies file for test_blob_engine.
# This may be replaced when dependencies are built.
