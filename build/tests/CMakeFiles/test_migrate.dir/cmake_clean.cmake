file(REMOVE_RECURSE
  "CMakeFiles/test_migrate.dir/test_migrate.cpp.o"
  "CMakeFiles/test_migrate.dir/test_migrate.cpp.o.d"
  "test_migrate"
  "test_migrate.pdb"
  "test_migrate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_migrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
