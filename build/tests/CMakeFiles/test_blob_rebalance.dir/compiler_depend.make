# Empty compiler generated dependencies file for test_blob_rebalance.
# This may be replaced when dependencies are built.
