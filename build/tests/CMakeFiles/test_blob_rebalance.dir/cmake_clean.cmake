file(REMOVE_RECURSE
  "CMakeFiles/test_blob_rebalance.dir/test_blob_rebalance.cpp.o"
  "CMakeFiles/test_blob_rebalance.dir/test_blob_rebalance.cpp.o.d"
  "test_blob_rebalance"
  "test_blob_rebalance.pdb"
  "test_blob_rebalance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blob_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
