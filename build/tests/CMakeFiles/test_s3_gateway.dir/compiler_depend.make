# Empty compiler generated dependencies file for test_s3_gateway.
# This may be replaced when dependencies are built.
