file(REMOVE_RECURSE
  "CMakeFiles/test_s3_gateway.dir/test_s3_gateway.cpp.o"
  "CMakeFiles/test_s3_gateway.dir/test_s3_gateway.cpp.o.d"
  "test_s3_gateway"
  "test_s3_gateway.pdb"
  "test_s3_gateway[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_s3_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
