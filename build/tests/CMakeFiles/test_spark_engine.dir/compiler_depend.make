# Empty compiler generated dependencies file for test_spark_engine.
# This may be replaced when dependencies are built.
