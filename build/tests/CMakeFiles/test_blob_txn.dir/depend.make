# Empty dependencies file for test_blob_txn.
# This may be replaced when dependencies are built.
