file(REMOVE_RECURSE
  "CMakeFiles/test_blob_txn.dir/test_blob_txn.cpp.o"
  "CMakeFiles/test_blob_txn.dir/test_blob_txn.cpp.o.d"
  "test_blob_txn"
  "test_blob_txn.pdb"
  "test_blob_txn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blob_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
