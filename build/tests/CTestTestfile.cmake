# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_page_cache[1]_include.cmake")
include("/root/repo/build/tests/test_rpc[1]_include.cmake")
include("/root/repo/build/tests/test_blob_engine[1]_include.cmake")
include("/root/repo/build/tests/test_blob_ring[1]_include.cmake")
include("/root/repo/build/tests/test_blob_client[1]_include.cmake")
include("/root/repo/build/tests/test_blob_txn[1]_include.cmake")
include("/root/repo/build/tests/test_blob_failure[1]_include.cmake")
include("/root/repo/build/tests/test_blob_rebalance[1]_include.cmake")
include("/root/repo/build/tests/test_blob_scrub[1]_include.cmake")
include("/root/repo/build/tests/test_kvstore[1]_include.cmake")
include("/root/repo/build/tests/test_timeseries[1]_include.cmake")
include("/root/repo/build/tests/test_h5lite[1]_include.cmake")
include("/root/repo/build/tests/test_bplite[1]_include.cmake")
include("/root/repo/build/tests/test_migrate[1]_include.cmake")
include("/root/repo/build/tests/test_vfs_helpers[1]_include.cmake")
include("/root/repo/build/tests/test_s3_gateway[1]_include.cmake")
include("/root/repo/build/tests/test_analytics[1]_include.cmake")
include("/root/repo/build/tests/test_pfs[1]_include.cmake")
include("/root/repo/build/tests/test_hdfs[1]_include.cmake")
include("/root/repo/build/tests/test_adapter[1]_include.cmake")
include("/root/repo/build/tests/test_fs_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_mpiio[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_spark_engine[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
