// POSIX-on-blob: run the same file-system workload against the strict
// parallel file system and against BlobFs (the §III mapping of file
// operations onto blob primitives), and compare simulated completion times.
//
// This demonstrates the two sides of the paper's argument:
//   * data-path file I/O maps cleanly and runs faster on the blob stack;
//   * directory operations are emulated via scan and get slower — and are
//     rare enough in real workloads not to matter.
#include <cstdio>

#include "adapter/blobfs.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "pfs/pfs.hpp"
#include "vfs/helpers.hpp"

using namespace bsc;

namespace {

/// A small mixed workload: a few directories, many file writes/reads,
/// one listing pass.
SimMicros run_workload(vfs::FileSystem& fs, const char* label) {
  sim::SimAgent agent;
  vfs::IoCtx ctx{&agent, 100, 100};

  (void)vfs::mkdir_recursive(fs, ctx, "/project/frames");
  (void)vfs::mkdir_recursive(fs, ctx, "/project/results");

  const Bytes frame = make_payload(1, 0, 128 * 1024);
  for (int i = 0; i < 32; ++i) {
    if (auto st = vfs::write_file(fs, ctx, strfmt("/project/frames/f-%03d", i),
                                  as_view(frame));
        !st.ok()) {
      std::fprintf(stderr, "[%s] write failed: %s\n", label, st.message().c_str());
      return -1;
    }
  }
  for (int i = 0; i < 32; ++i) {
    auto data = vfs::read_file(fs, ctx, strfmt("/project/frames/f-%03d", i));
    if (!data.ok() || data.value().size() != frame.size()) {
      std::fprintf(stderr, "[%s] read-back failed\n", label);
      return -1;
    }
    (void)vfs::write_file(fs, ctx, strfmt("/project/results/r-%03d", i),
                          subview(as_view(data.value()), 0, 16 * 1024));
  }

  auto listing = fs.readdir(ctx, "/project/frames");
  std::printf("[%s] listed %zu frames; total simulated time %s\n", label,
              listing.ok() ? listing.value().size() : 0,
              format_sim_time(agent.now()).c_str());
  return agent.now();
}

}  // namespace

int main() {
  std::printf("Same POSIX workload, two storage stacks (paper §III / §V):\n\n");

  sim::Cluster pfs_cluster;
  pfs::LustreLikeFs posix_fs(pfs_cluster);
  const SimMicros t_pfs = run_workload(posix_fs, "pfs-strict");

  sim::Cluster blob_cluster;
  blob::BlobStore store(blob_cluster);
  adapter::BlobFs blob_fs(store);
  const SimMicros t_blob = run_workload(blob_fs, "blobfs   ");

  if (t_pfs > 0 && t_blob > 0) {
    std::printf("\nspeedup (pfs-strict / blobfs): %.2fx\n",
                static_cast<double>(t_pfs) / static_cast<double>(t_blob));
  }

  // Show what the flat namespace actually stores: no directories, just keys.
  sim::SimAgent agent;
  blob::BlobClient client(store, &agent);
  auto metas = client.scan("m!");
  std::printf("\nunderlying blob namespace holds %zu metadata blobs, e.g.:\n",
              metas.value().size());
  for (std::size_t i = 0; i < std::min<std::size_t>(4, metas.value().size()); ++i) {
    std::printf("  %s\n", metas.value()[i].key.c_str());
  }
  std::printf("(directories exist only as marker blobs; readdir is a scan)\n");
  return 0;
}
