// Quickstart: stand up a simulated cluster, run a blob store on its storage
// nodes, and exercise the paper's §III primitive set end to end.
//
//   Blob Access:         read, size
//   Blob Manipulation:   write, truncate
//   Blob Administration: create, remove
//   Namespace Access:    scan
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "blob/client.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

using namespace bsc;

int main() {
  // The paper's testbed shape: 24 compute / 8 storage nodes, GbE.
  sim::Cluster cluster(sim::ClusterSpec::parapluie());
  blob::BlobStore store(cluster);  // 3-way replication by default

  // One client per logical thread of execution; it charges this agent's
  // simulated clock for every operation.
  sim::SimAgent agent;
  blob::BlobClient client(store, &agent);

  // --- Blob Administration ---
  if (auto st = client.create("datasets/climate/run-001"); !st.ok()) {
    std::fprintf(stderr, "create failed: %s\n", st.message().c_str());
    return 1;
  }
  std::printf("created blob; simulated time so far: %s\n",
              format_sim_time(agent.now()).c_str());

  // --- Blob Manipulation: random-offset writes ---
  const Bytes payload = make_payload(/*seed=*/7, 0, 256 * 1024);
  (void)client.write("datasets/climate/run-001", 0, as_view(payload));
  (void)client.write("datasets/climate/run-001", 1 << 20, as_view(payload));  // sparse
  std::printf("wrote 2 x 256 KiB (one sparse at 1 MiB); time: %s\n",
              format_sim_time(agent.now()).c_str());

  // --- Blob Access ---
  auto size = client.size("datasets/climate/run-001");
  auto head = client.read("datasets/climate/run-001", 0, 64);
  std::printf("size = %s, first 64 bytes read ok = %s\n",
              format_bytes(size.value_or(0)).c_str(), head.ok() ? "yes" : "no");

  // Verify content integrity end to end (deterministic payload stream).
  if (!head.ok() || !check_payload(7, 0, as_view(head.value()))) {
    std::fprintf(stderr, "payload verification failed!\n");
    return 1;
  }

  // --- truncate ---
  (void)client.truncate("datasets/climate/run-001", 512 * 1024);
  std::printf("truncated to %s\n",
              format_bytes(client.size("datasets/climate/run-001").value_or(0)).c_str());

  // --- Namespace Access: the only way to enumerate a flat namespace ---
  for (int i = 0; i < 5; ++i) {
    (void)client.create(strfmt("checkpoints/step-%03d", i));
  }
  auto all = client.scan();
  std::printf("scan() sees %zu blobs:\n", all.value().size());
  for (const auto& b : all.value()) {
    std::printf("  %-28s %10s (v%llu)\n", b.key.c_str(), format_bytes(b.size).c_str(),
                static_cast<unsigned long long>(b.version));
  }
  auto ckpts = client.scan("checkpoints/");
  std::printf("scan(\"checkpoints/\") filters to %zu blobs\n", ckpts.value().size());

  // --- Transactions (Týr): atomic multi-blob commit ---
  auto txn = client.begin_transaction();
  txn.write("manifest", 0, as_view(to_bytes("run-001 complete\n")))
      .remove("checkpoints/step-000");
  if (auto st = txn.commit(); !st.ok()) {
    std::fprintf(stderr, "txn failed: %s\n", st.message().c_str());
    return 1;
  }
  std::printf("committed atomic {write manifest, remove checkpoint}\n");

  std::printf("\nclient op counters: creates=%llu writes=%llu reads=%llu scans=%llu\n",
              static_cast<unsigned long long>(client.counters().creates),
              static_cast<unsigned long long>(client.counters().writes),
              static_cast<unsigned long long>(client.counters().reads),
              static_cast<unsigned long long>(client.counters().scans));
  std::printf("total simulated time: %s\n", format_sim_time(agent.now()).c_str());
  return 0;
}
