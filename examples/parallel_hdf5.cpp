// The full HPC I/O stack of the paper's §II-A, end to end, on two storage
// substrates: application -> H5Lite (HDF5-like container) -> MPI-IO ->
// {strict POSIX PFS | POSIX-on-blob adapter}. No layer above the storage
// backend changes — which is the convergence argument in one program.
#include <cstdio>

#include <atomic>

#include "adapter/blobfs.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "h5lite/h5file.hpp"
#include "pfs/pfs.hpp"

using namespace bsc;

namespace {

constexpr std::uint32_t kRanks = 8;
constexpr std::uint64_t kRows = 512;
constexpr std::uint64_t kCols = 64;

SimMicros run_stack(vfs::FileSystem& fs, sim::Cluster& cluster, const char* label) {
  mpiio::Communicator comm(kRanks, cluster.net());
  ThreadPool pool(kRanks);
  std::vector<sim::SimAgent> agents(kRanks);
  std::atomic<int> failures{0};
  pool.parallel_for(kRanks, [&](std::size_t r) {
    mpiio::MpiIo io(comm, static_cast<std::uint32_t>(r), fs,
                    vfs::IoCtx{&agents[r], 100, 100});
    auto file = h5lite::H5File::create(io, "/ocean.h5");
    if (!file.ok()) {
      ++failures;
      return;
    }
    auto temp = file.value().create_dataset("temperature", kRows, kCols, 8);
    auto salt = file.value().create_dataset("salinity", kRows, kCols, 8);
    if (!temp.ok() || !salt.ok()) {
      ++failures;
      return;
    }
    (void)file.value().set_attribute("grid", "0.25deg");
    const std::uint64_t rows_per_rank = kRows / kRanks;
    const std::uint64_t row0 = r * rows_per_rank;
    const Bytes t_block = make_payload(r, 0, rows_per_rank * kCols * 8);
    const Bytes s_block = make_payload(100 + r, 0, rows_per_rank * kCols * 8);
    // Collective writes: the MPI-IO layer aggregates the ranks' contiguous
    // row blocks into large sequential storage calls.
    if (!file.value().write_rows_all(temp.value(), row0, rows_per_rank,
                                     as_view(t_block)).ok()) {
      ++failures;
    }
    if (!file.value().write_rows_all(salt.value(), row0, rows_per_rank,
                                     as_view(s_block)).ok()) {
      ++failures;
    }
    if (!file.value().close().ok()) ++failures;

    // Analysis phase: reopen, every rank reads a peer's temperature block.
    auto ro = h5lite::H5File::open(io, "/ocean.h5");
    if (!ro.ok()) {
      ++failures;
      return;
    }
    const std::uint32_t peer = (static_cast<std::uint32_t>(r) + 3) % kRanks;
    auto block = ro.value().read_rows(ro.value().dataset_by_name("temperature").value(),
                                      peer * rows_per_rank, rows_per_rank);
    if (!block.ok() || !check_payload(peer, 0, as_view(block.value()))) ++failures;
    (void)ro.value().close();
  });
  SimMicros worst = 0;
  for (const auto& a : agents) worst = std::max(worst, a.now());
  std::printf("[%s] ranks=%u dataset=%llux%llu doubles x2  %s  simulated time %s\n",
              label, kRanks, static_cast<unsigned long long>(kRows),
              static_cast<unsigned long long>(kCols),
              failures.load() == 0 ? "OK " : "FAIL", format_sim_time(worst).c_str());
  return failures.load() == 0 ? worst : -1;
}

}  // namespace

int main() {
  std::printf("app -> H5Lite -> MPI-IO -> storage, two substrates:\n\n");

  sim::Cluster c1;
  pfs::LustreLikeFs posix_fs(c1);
  const SimMicros t_pfs = run_stack(posix_fs, c1, "pfs-strict");

  sim::Cluster c2;
  blob::BlobStore store(c2);
  adapter::BlobFs blob_fs(store);
  const SimMicros t_blob = run_stack(blob_fs, c2, "blobfs    ");

  if (t_pfs > 0 && t_blob > 0) {
    std::printf("\nno layer above the backend changed; speedup %.2fx\n",
                static_cast<double>(t_pfs) / static_cast<double>(t_blob));
  }
  return (t_pfs > 0 && t_blob > 0) ? 0 : 1;
}
