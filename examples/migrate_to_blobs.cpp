// Migration path: a site converging onto blob storage copies its existing
// PFS and HDFS trees into the blob-backed POSIX namespace, verifies the
// copies byte-for-byte, and keeps running the same applications.
#include <cstdio>

#include "adapter/blobfs.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "hdfs/hdfs.hpp"
#include "pfs/pfs.hpp"
#include "vfs/helpers.hpp"
#include "vfs/migrate.hpp"

using namespace bsc;

int main() {
  sim::SimAgent agent;
  vfs::IoCtx ctx{&agent, 100, 100};

  // The legacy deployments.
  sim::Cluster pfs_cluster;
  pfs::LustreLikeFs lustre(pfs_cluster);
  (void)vfs::mkdir_recursive(lustre, ctx, "/scratch/climate");
  for (int i = 0; i < 6; ++i) {
    (void)vfs::write_file(lustre, ctx, strfmt("/scratch/climate/field-%02d.nc", i),
                          as_view(make_payload(i, 0, 200000)));
  }
  (void)lustre.setxattr(ctx, "/scratch/climate/field-00.nc", "user.origin", "mom-run-7");

  sim::Cluster hdfs_cluster;
  hdfs::HdfsLikeFs hadoop(hdfs_cluster);
  (void)vfs::mkdir_recursive(hadoop, ctx, "/warehouse/events");
  for (int i = 0; i < 4; ++i) {
    (void)vfs::write_file(hadoop, ctx, strfmt("/warehouse/events/part-%05d", i),
                          as_view(make_payload(100 + i, 0, 150000)));
  }

  // The converged target.
  sim::Cluster blob_cluster;
  blob::BlobStore store(blob_cluster);
  adapter::BlobFs blobs(store);

  auto s1 = vfs::migrate_tree(lustre, ctx, "/scratch", blobs, ctx, "/scratch");
  auto s2 = vfs::migrate_tree(hadoop, ctx, "/warehouse", blobs, ctx, "/warehouse");
  if (!s1.ok() || !s2.ok()) {
    std::fprintf(stderr, "migration failed\n");
    return 1;
  }
  std::printf("from Lustre-like PFS : %llu files, %s, %llu xattrs\n",
              static_cast<unsigned long long>(s1.value().files),
              format_bytes(s1.value().bytes).c_str(),
              static_cast<unsigned long long>(s1.value().xattrs));
  std::printf("from HDFS-like store : %llu files, %s\n",
              static_cast<unsigned long long>(s2.value().files),
              format_bytes(s2.value().bytes).c_str());

  const auto v1 = vfs::verify_trees_equal(lustre, ctx, "/scratch", blobs, ctx, "/scratch");
  const auto v2 =
      vfs::verify_trees_equal(hadoop, ctx, "/warehouse", blobs, ctx, "/warehouse");
  std::printf("verification: pfs tree %s, hdfs tree %s\n",
              v1.ok() ? "IDENTICAL" : v1.message().c_str(),
              v2.ok() ? "IDENTICAL" : v2.message().c_str());

  // Both worlds now live in one flat namespace.
  blob::BlobClient client(store, &agent);
  const auto metas = client.scan("m!");
  std::printf("\nconverged namespace: %zu metadata blobs (HPC + Big Data, one store)\n",
              metas.value().size());
  std::printf("xattr preserved: user.origin = %s\n",
              blobs.getxattr(ctx, "/scratch/climate/field-00.nc", "user.origin")
                  .value_or("<missing>")
                  .c_str());
  std::printf("total simulated migration time: %s\n", format_sim_time(agent.now()).c_str());
  return (v1.ok() && v2.ok()) ? 0 : 1;
}
