// Checkpoint-restart on blobs (the BlobCR use case the paper cites [49]):
// N simulated ranks periodically checkpoint their state into blobs, with
// the checkpoint manifest committed atomically via a Týr transaction —
// either a whole consistent checkpoint generation becomes visible, or none
// of it. After a simulated failure, ranks restore from the newest manifest.
#include <cstdio>

#include "blob/client.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"

using namespace bsc;

namespace {

constexpr std::uint32_t kRanks = 8;
constexpr std::uint64_t kStateBytes = 64 * 1024;

std::string ckpt_key(std::uint32_t gen, std::uint32_t rank) {
  return strfmt("ckpt/gen-%03u/rank-%02u", gen, rank);
}

/// Write every rank's state, then atomically publish the generation.
bool checkpoint_generation(blob::BlobStore& store, std::uint32_t gen) {
  ThreadPool pool(kRanks);
  std::atomic<bool> ok{true};
  pool.parallel_for(kRanks, [&](std::size_t rank) {
    sim::SimAgent agent;
    blob::BlobClient client(store, &agent);
    const Bytes state = make_payload(gen * 100 + rank, 0, kStateBytes);
    if (!client.write(ckpt_key(gen, static_cast<std::uint32_t>(rank)), 0,
                      as_view(state)).ok()) {
      ok = false;
    }
  });
  if (!ok) return false;

  // The manifest commit is the atomicity point: a crash before this leaves
  // only unreferenced per-rank blobs (garbage, not corruption).
  sim::SimAgent agent;
  blob::BlobClient client(store, &agent);
  auto txn = client.begin_transaction();
  std::string manifest = strfmt("generation=%u ranks=%u\n", gen, kRanks);
  for (std::uint32_t r = 0; r < kRanks; ++r) manifest += ckpt_key(gen, r) + "\n";
  // Truncate-then-write replaces any previous (possibly longer) manifest;
  // the first generation has nothing to truncate.
  if (client.exists("ckpt/latest")) txn.truncate("ckpt/latest", 0);
  txn.write("ckpt/latest", 0, as_view(to_bytes(manifest)));
  auto st = txn.commit();
  std::printf("  generation %u committed (%s), manifest %zu bytes\n", gen,
              st.ok() ? "ok" : st.message().c_str(), manifest.size());
  return st.ok();
}

bool restore_latest(blob::BlobStore& store) {
  sim::SimAgent agent;
  blob::BlobClient client(store, &agent);
  auto size = client.size("ckpt/latest");
  if (!size.ok()) {
    std::fprintf(stderr, "no checkpoint manifest found\n");
    return false;
  }
  auto manifest = client.read("ckpt/latest", 0, size.value());
  if (!manifest.ok()) return false;
  const auto lines = split(to_string(as_view(manifest.value())), '\n');
  std::printf("restoring from: %s\n", lines.front().c_str());

  // Parse "generation=G ..." to recompute the expected payload seeds.
  std::uint32_t gen = 0;
  (void)std::sscanf(lines.front().c_str(), "generation=%u", &gen);

  ThreadPool pool(kRanks);
  std::atomic<bool> ok{true};
  pool.parallel_for(kRanks, [&](std::size_t rank) {
    sim::SimAgent a;
    blob::BlobClient c(store, &a);
    auto state = c.read(ckpt_key(gen, static_cast<std::uint32_t>(rank)), 0, kStateBytes);
    if (!state.ok() || state.value().size() != kStateBytes ||
        !check_payload(gen * 100 + rank, 0, as_view(state.value()))) {
      ok = false;
    }
  });
  std::printf("all %u rank states verified byte-exact: %s\n", kRanks,
              ok ? "yes" : "NO");
  return ok;
}

}  // namespace

int main() {
  sim::Cluster cluster;
  blob::BlobStore store(cluster);

  std::printf("checkpointing 3 generations of %u ranks x %s each:\n", kRanks,
              format_bytes(kStateBytes).c_str());
  for (std::uint32_t gen = 1; gen <= 3; ++gen) {
    if (!checkpoint_generation(store, gen)) return 1;
  }

  // Simulate a generation-4 crash mid-checkpoint: rank states written but
  // the manifest transaction never committed.
  {
    sim::SimAgent agent;
    blob::BlobClient client(store, &agent);
    (void)client.write(ckpt_key(4, 0), 0, as_view(make_payload(400, 0, kStateBytes)));
    std::printf("  generation 4 crashed before manifest commit (partial state)\n");
  }

  std::printf("\nfailure! restarting from storage...\n");
  if (!restore_latest(store)) return 1;

  // Garbage-collect unreferenced checkpoints with scan + remove.
  sim::SimAgent agent;
  blob::BlobClient client(store, &agent);
  auto orphans = client.scan("ckpt/gen-004/");
  for (const auto& b : orphans.value()) (void)client.remove(b.key);
  std::printf("garbage-collected %zu orphaned generation-4 blobs\n",
              orphans.value().size());
  return 0;
}
