// Trace census: the paper's measurement methodology in one program.
// Wrap a backend with the tracing interceptor, run one HPC and one Spark
// application, and print their storage-call censuses (§IV).
#include <cstdio>

#include "apps/hpc_apps.hpp"
#include "apps/spark_apps.hpp"
#include "hdfs/hdfs.hpp"
#include "pfs/pfs.hpp"
#include "trace/report.hpp"

using namespace bsc;

int main() {
  // --- HPC: ECOHAM with its run scripts traced (the "EH" bar of Fig 1) ---
  {
    sim::Cluster cluster;
    pfs::LustreLikeFs fs(cluster);
    apps::HpcRunOptions opts;
    opts.ranks = 8;
    opts.with_prep_script = true;
    auto r = apps::run_hpc_app(apps::HpcAppKind::ecoham, fs, cluster, opts);
    if (!r.ok) {
      std::fprintf(stderr, "EH failed: %s\n", r.error.c_str());
      return 1;
    }
    std::printf("%s\n", trace::render_census_detail("EH on pfs-strict",
                                                    r.census.census).c_str());
    std::printf("  read %.2f%% | write %.2f%% | dir %.2f%% | other %.2f%% "
                "(simulated run time %s)\n\n",
                r.census.census.category_pct(trace::Category::file_read),
                r.census.census.category_pct(trace::Category::file_write),
                r.census.census.category_pct(trace::Category::directory),
                r.census.census.category_pct(trace::Category::other),
                format_sim_time(r.sim_time).c_str());
  }

  // --- Big Data: Sort through the mini Spark engine on HDFS ---
  {
    sim::Cluster cluster;
    hdfs::HdfsLikeFs fs(cluster);
    ThreadPool pool(8);
    auto r = apps::run_spark_single(apps::SparkAppKind::sort, fs, cluster, pool);
    if (!r.ok) {
      std::fprintf(stderr, "Sort failed: %s\n", r.error.c_str());
      return 1;
    }
    const auto& app = r.per_app.front();
    std::printf("%s\n",
                trace::render_census_detail("Sort on hdfs", app.census).c_str());
    std::printf("  read %.2f%% | write %.2f%% | dir %.2f%% | other %.2f%%\n",
                app.census.category_pct(trace::Category::file_read),
                app.census.category_pct(trace::Category::file_write),
                app.census.category_pct(trace::Category::directory),
                app.census.category_pct(trace::Category::other));
    std::printf("  directory ops: %llu mkdir, %llu rmdir, %llu listing(s) "
                "(input data only: %llu)\n",
                static_cast<unsigned long long>(r.dir_ops.mkdir),
                static_cast<unsigned long long>(r.dir_ops.rmdir),
                static_cast<unsigned long long>(r.dir_ops.opendir_input +
                                                r.dir_ops.opendir_other),
                static_cast<unsigned long long>(r.dir_ops.opendir_input));
  }

  std::printf("\nConclusion the data supports (paper §V): file reads and writes\n");
  std::printf("are almost all of the storage calls, and every one of them maps\n");
  std::printf("onto a blob primitive.\n");
  return 0;
}
