// Storage abstractions on blobs: the key-value store and the time-series
// store the paper's introduction motivates, both running on the same blob
// namespace with no file system anywhere underneath.
#include <cstdio>

#include "common/strings.hpp"
#include "kvstore/kv.hpp"
#include "kvstore/timeseries.hpp"

using namespace bsc;

int main() {
  sim::Cluster cluster(sim::ClusterSpec::parapluie());
  blob::BlobStore store(cluster);
  sim::SimAgent agent;

  // --- Key-value store: experiment metadata catalog ---
  kvstore::KvStore catalog(store, "experiments");
  (void)catalog.put(agent, "run-001/model", "MOM ocean, 0.25deg");
  (void)catalog.put(agent, "run-001/status", "running");
  (void)catalog.put(agent, "run-002/model", "ECOHAM sediment");
  // Atomic multi-key update: status + completion marker together.
  (void)catalog.put_many(agent, {{"run-001/status", "complete"},
                                 {"run-001/artifacts", "/out/mom/diag.nc"}});
  std::printf("catalog entries:\n");
  const auto entries = catalog.items(agent);
  for (const auto& [k, v] : entries.value()) {
    std::printf("  %-22s = %s\n", k.c_str(), v.c_str());
  }

  // --- Time-series store: cluster telemetry ---
  kvstore::TimeSeriesStore telemetry(store, "telemetry");
  std::vector<kvstore::TsPoint> samples;
  for (int t = 0; t < 5000; ++t) {
    samples.push_back({t, 40.0 + 20.0 * ((t / 100) % 2)});  // square wave
  }
  (void)telemetry.append_batch(agent, "node-07.disk_util", samples);
  auto agg = telemetry.aggregate(agent, "node-07.disk_util", 1000, 2000);
  std::printf("\nnode-07.disk_util over [1000, 2000]: count=%llu min=%.1f max=%.1f "
              "mean=%.2f\n",
              static_cast<unsigned long long>(agg.value().count), agg.value().min,
              agg.value().max, agg.value().mean);
  std::printf("series stored: ");
  const auto series = telemetry.list_series(agent);
  for (const auto& s : series.value()) {
    std::printf("%s ", s.c_str());
  }

  // Both abstractions share the flat blob namespace underneath.
  blob::BlobClient client(store, &agent);
  std::printf("\n\nunderlying blobs: %zu kv buckets, %zu time-series blobs\n",
              client.scan("kv!").value().size(), client.scan("ts!").value().size());
  std::printf("total simulated time: %s\n", format_sim_time(agent.now()).c_str());
  return 0;
}
