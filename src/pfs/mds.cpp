#include "pfs/mds.hpp"

#include <mutex>

#include <algorithm>

#include "common/strings.hpp"

namespace bsc::pfs {

MetadataServer::MetadataServer(sim::SimNode& node, MdsCosts costs)
    : node_(&node), costs_(costs) {
  Inode root;
  root.id = kRootInode;
  root.type = vfs::FileType::directory;
  root.mode = 0777;
  inodes_.emplace(kRootInode, std::move(root));
}

Inode* MetadataServer::get_locked(InodeId ino) {
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : &it->second;
}

InodeId MetadataServer::alloc_inode_locked(vfs::FileType type, vfs::Mode mode,
                                           std::uint32_t uid, std::uint32_t gid) {
  Inode ino;
  ino.id = next_ino_++;
  ino.type = type;
  ino.mode = mode;
  ino.uid = uid;
  ino.gid = gid;
  const InodeId id = ino.id;
  inodes_.emplace(id, std::move(ino));
  return id;
}

Result<Resolved> MetadataServer::resolve_locked(std::string_view path, std::uint32_t uid,
                                                std::uint32_t gid) {
  const auto comps = path_components(path);
  Inode* cur = get_locked(kRootInode);
  std::uint32_t walked = 0;
  for (const auto& c : comps) {
    if (!cur->is_dir()) return {Errc::not_a_directory, std::string{path}};
    if (!permits(*cur, uid, gid, 1)) return {Errc::permission, std::string{path}};
    auto it = cur->children.find(c);
    if (it == cur->children.end()) return {Errc::not_found, std::string{path}};
    cur = get_locked(it->second);
    ++walked;
  }
  return Resolved{cur->id, walked};
}

Result<std::pair<Inode*, std::string>> MetadataServer::resolve_parent_locked(
    std::string_view path, std::uint32_t uid, std::uint32_t gid, std::uint32_t* comps) {
  const std::string norm = normalize_path(path);
  if (norm == "/") return {Errc::invalid_argument, "root has no parent"};
  const std::string parent = parent_path(norm);
  const std::string name = base_name(norm);
  auto r = resolve_locked(parent, uid, gid);
  if (!r.ok()) return r.error();
  *comps = r.value().components;
  Inode* p = get_locked(r.value().ino);
  if (!p->is_dir()) return {Errc::not_a_directory, parent};
  return std::pair<Inode*, std::string>{p, name};
}

Result<Resolved> MetadataServer::resolve(std::string_view path, std::uint32_t uid,
                                         std::uint32_t gid, SimMicros* service_us) {
  std::shared_lock lk(mu_);
  auto r = resolve_locked(path, uid, gid);
  *service_us = lookup_cost(r.ok() ? r.value().components
                                   : static_cast<std::uint32_t>(path_components(path).size()));
  return r;
}

Result<Resolved> MetadataServer::resolve_checked(std::string_view path, std::uint32_t uid,
                                                 std::uint32_t gid, std::uint32_t want,
                                                 SimMicros* service_us) {
  std::shared_lock lk(mu_);
  auto r = resolve_locked(path, uid, gid);
  *service_us = lookup_cost(r.ok() ? r.value().components : 1);
  if (!r.ok()) return r;
  if (!permits(*get_locked(r.value().ino), uid, gid, want)) {
    return {Errc::permission, std::string{path}};
  }
  return r;
}

Result<vfs::FileInfo> MetadataServer::stat(std::string_view path, std::uint32_t uid,
                                           std::uint32_t gid, SimMicros* service_us) {
  std::shared_lock lk(mu_);
  auto r = resolve_locked(path, uid, gid);
  *service_us = lookup_cost(r.ok() ? r.value().components : 1);
  if (!r.ok()) return r.error();
  const Inode* ino = get_locked(r.value().ino);
  return vfs::FileInfo{normalize_path(path), ino->type, ino->size,
                       ino->mode, ino->uid, ino->gid, ino->id};
}

Result<vfs::FileInfo> MetadataServer::stat_inode(InodeId id, SimMicros* service_us) {
  std::shared_lock lk(mu_);
  *service_us = costs_.cpu_op_us;
  const Inode* ino = get_locked(id);
  if (!ino) return {Errc::not_found, "inode"};
  return vfs::FileInfo{"", ino->type, ino->size, ino->mode, ino->uid, ino->gid, ino->id};
}

Result<InodeId> MetadataServer::create_file(std::string_view path, vfs::Mode mode,
                                            std::uint32_t uid, std::uint32_t gid,
                                            bool exclusive, SimMicros* service_us) {
  std::unique_lock lk(mu_);
  std::uint32_t comps = 0;
  auto p = resolve_parent_locked(path, uid, gid, &comps);
  *service_us = lookup_cost(comps) + costs_.journal_us;
  if (!p.ok()) return p.error();
  auto [parent, name] = p.value();
  auto it = parent->children.find(name);
  if (it != parent->children.end()) {
    if (exclusive) return {Errc::already_exists, std::string{path}};
    Inode* existing = get_locked(it->second);
    if (existing->is_dir()) return {Errc::is_a_directory, std::string{path}};
    return existing->id;
  }
  if (!permits(*parent, uid, gid, 2)) return {Errc::permission, std::string{path}};
  const InodeId id = alloc_inode_locked(vfs::FileType::regular, mode, uid, gid);
  parent->children.emplace(name, id);
  return id;
}

Status MetadataServer::mkdir(std::string_view path, vfs::Mode mode, std::uint32_t uid,
                             std::uint32_t gid, SimMicros* service_us) {
  std::unique_lock lk(mu_);
  std::uint32_t comps = 0;
  auto p = resolve_parent_locked(path, uid, gid, &comps);
  *service_us = lookup_cost(comps) + costs_.journal_us;
  if (!p.ok()) return p.error();
  auto [parent, name] = p.value();
  if (parent->children.count(name)) return {Errc::already_exists, std::string{path}};
  if (!permits(*parent, uid, gid, 2)) return {Errc::permission, std::string{path}};
  const InodeId id = alloc_inode_locked(vfs::FileType::directory, mode, uid, gid);
  parent->children.emplace(name, id);
  ++parent->nlink;
  return Status::success();
}

Status MetadataServer::rmdir(std::string_view path, std::uint32_t uid, std::uint32_t gid,
                             SimMicros* service_us) {
  std::unique_lock lk(mu_);
  std::uint32_t comps = 0;
  auto p = resolve_parent_locked(path, uid, gid, &comps);
  *service_us = lookup_cost(comps) + costs_.journal_us;
  if (!p.ok()) return p.error();
  auto [parent, name] = p.value();
  auto it = parent->children.find(name);
  if (it == parent->children.end()) return {Errc::not_found, std::string{path}};
  Inode* victim = get_locked(it->second);
  if (!victim->is_dir()) return {Errc::not_a_directory, std::string{path}};
  if (!victim->children.empty()) return {Errc::not_empty, std::string{path}};
  if (!permits(*parent, uid, gid, 2)) return {Errc::permission, std::string{path}};
  inodes_.erase(victim->id);
  parent->children.erase(it);
  --parent->nlink;
  return Status::success();
}

Result<std::vector<vfs::DirEntry>> MetadataServer::readdir(std::string_view path,
                                                           std::uint32_t uid,
                                                           std::uint32_t gid,
                                                           SimMicros* service_us) {
  std::shared_lock lk(mu_);
  auto r = resolve_locked(path, uid, gid);
  if (!r.ok()) {
    *service_us = lookup_cost(1);
    return r.error();
  }
  Inode* dir = get_locked(r.value().ino);
  if (!dir->is_dir()) {
    *service_us = lookup_cost(r.value().components);
    return {Errc::not_a_directory, std::string{path}};
  }
  if (!permits(*dir, uid, gid, 4)) {
    *service_us = lookup_cost(r.value().components);
    return {Errc::permission, std::string{path}};
  }
  std::vector<vfs::DirEntry> out;
  out.reserve(dir->children.size());
  for (const auto& [name, id] : dir->children) {
    out.push_back({name, get_locked(id)->type});
  }
  // Listing cost scales with directory size.
  *service_us = lookup_cost(r.value().components) +
                static_cast<SimMicros>(out.size()) * 1;
  return out;
}

Result<MetadataServer::UnlinkResult> MetadataServer::unlink(std::string_view path,
                                                            std::uint32_t uid,
                                                            std::uint32_t gid,
                                                            SimMicros* service_us) {
  std::unique_lock lk(mu_);
  std::uint32_t comps = 0;
  auto p = resolve_parent_locked(path, uid, gid, &comps);
  *service_us = lookup_cost(comps) + costs_.journal_us;
  if (!p.ok()) return p.error();
  auto [parent, name] = p.value();
  auto it = parent->children.find(name);
  if (it == parent->children.end()) return {Errc::not_found, std::string{path}};
  Inode* victim = get_locked(it->second);
  if (victim->is_dir()) return {Errc::is_a_directory, std::string{path}};
  if (!permits(*parent, uid, gid, 2)) return {Errc::permission, std::string{path}};
  UnlinkResult res{victim->id, victim->open_handles == 0};
  victim->unlinked = true;
  parent->children.erase(it);
  if (res.reclaim_now) inodes_.erase(victim->id);
  return res;
}

Status MetadataServer::rename(std::string_view from, std::string_view to, std::uint32_t uid,
                              std::uint32_t gid, SimMicros* service_us) {
  std::unique_lock lk(mu_);
  std::uint32_t comps_from = 0;
  std::uint32_t comps_to = 0;
  auto pf = resolve_parent_locked(from, uid, gid, &comps_from);
  if (!pf.ok()) {
    *service_us = lookup_cost(comps_from) + costs_.journal_us;
    return pf.error();
  }
  auto pt = resolve_parent_locked(to, uid, gid, &comps_to);
  *service_us = lookup_cost(comps_from + comps_to) + costs_.journal_us;
  if (!pt.ok()) return pt.error();
  auto [src_parent, src_name] = pf.value();
  auto [dst_parent, dst_name] = pt.value();
  auto sit = src_parent->children.find(src_name);
  if (sit == src_parent->children.end()) return {Errc::not_found, std::string{from}};
  if (!permits(*src_parent, uid, gid, 2) || !permits(*dst_parent, uid, gid, 2)) {
    return {Errc::permission, std::string{from}};
  }
  const InodeId moving = sit->second;
  // POSIX: an existing destination is atomically replaced (file over file,
  // empty dir over empty dir).
  auto dit = dst_parent->children.find(dst_name);
  if (dit != dst_parent->children.end()) {
    Inode* dst = get_locked(dit->second);
    Inode* src = get_locked(moving);
    if (dst->is_dir() != src->is_dir()) {
      return {dst->is_dir() ? Errc::is_a_directory : Errc::not_a_directory, std::string{to}};
    }
    if (dst->is_dir() && !dst->children.empty()) return {Errc::not_empty, std::string{to}};
    inodes_.erase(dst->id);
    dst_parent->children.erase(dit);
  }
  src_parent->children.erase(sit);
  dst_parent->children.emplace(dst_name, moving);
  return Status::success();
}

Status MetadataServer::chmod(std::string_view path, vfs::Mode mode, std::uint32_t uid,
                             std::uint32_t gid, SimMicros* service_us) {
  std::unique_lock lk(mu_);
  auto r = resolve_locked(path, uid, gid);
  *service_us = lookup_cost(r.ok() ? r.value().components : 1) + costs_.journal_us;
  if (!r.ok()) return r.error();
  Inode* ino = get_locked(r.value().ino);
  if (uid != 0 && uid != ino->uid) return {Errc::permission, std::string{path}};
  ino->mode = mode & 0777;
  return Status::success();
}

Result<std::string> MetadataServer::getxattr(std::string_view path, std::string_view name,
                                             std::uint32_t uid, std::uint32_t gid,
                                             SimMicros* service_us) {
  std::shared_lock lk(mu_);
  auto r = resolve_locked(path, uid, gid);
  *service_us = lookup_cost(r.ok() ? r.value().components : 1);
  if (!r.ok()) return r.error();
  const Inode* ino = get_locked(r.value().ino);
  if (!permits(*ino, uid, gid, 4)) return {Errc::permission, std::string{path}};
  auto it = ino->xattrs.find(std::string{name});
  if (it == ino->xattrs.end()) return {Errc::not_found, std::string{name}};
  return it->second;
}

Status MetadataServer::setxattr(std::string_view path, std::string_view name,
                                std::string_view value, std::uint32_t uid, std::uint32_t gid,
                                SimMicros* service_us) {
  std::unique_lock lk(mu_);
  auto r = resolve_locked(path, uid, gid);
  *service_us = lookup_cost(r.ok() ? r.value().components : 1) + costs_.journal_us;
  if (!r.ok()) return r.error();
  Inode* ino = get_locked(r.value().ino);
  if (!permits(*ino, uid, gid, 2)) return {Errc::permission, std::string{path}};
  ino->xattrs[std::string{name}] = std::string{value};
  return Status::success();
}

Status MetadataServer::set_size(InodeId id, std::uint64_t size, SimMicros* service_us) {
  std::unique_lock lk(mu_);
  *service_us = costs_.cpu_op_us + costs_.journal_us;
  Inode* ino = get_locked(id);
  if (!ino) return {Errc::not_found, "inode"};
  ino->size = size;
  return Status::success();
}

Result<std::uint64_t> MetadataServer::get_size(InodeId id, SimMicros* service_us) {
  std::shared_lock lk(mu_);
  *service_us = costs_.cpu_op_us;
  Inode* ino = get_locked(id);
  if (!ino) return {Errc::not_found, "inode"};
  return ino->size;
}

Status MetadataServer::extend_size(InodeId id, std::uint64_t min_size,
                                   SimMicros* service_us) {
  std::unique_lock lk(mu_);
  *service_us = costs_.cpu_op_us;
  Inode* ino = get_locked(id);
  if (!ino) return {Errc::not_found, "inode"};
  if (ino->size < min_size) {
    ino->size = min_size;
    *service_us += costs_.journal_us;
  }
  return Status::success();
}

Status MetadataServer::handle_opened(InodeId id, SimMicros* service_us) {
  std::unique_lock lk(mu_);
  *service_us = costs_.cpu_op_us;
  Inode* ino = get_locked(id);
  if (!ino) return {Errc::not_found, "inode"};
  ++ino->open_handles;
  return Status::success();
}

Status MetadataServer::handle_closed(InodeId id, bool* reclaim_now, SimMicros* service_us) {
  std::unique_lock lk(mu_);
  *service_us = costs_.cpu_op_us;
  *reclaim_now = false;
  Inode* ino = get_locked(id);
  if (!ino) return {Errc::not_found, "inode"};
  if (ino->open_handles > 0) --ino->open_handles;
  if (ino->unlinked && ino->open_handles == 0) {
    *reclaim_now = true;
    inodes_.erase(id);
  }
  return Status::success();
}

std::uint64_t MetadataServer::inode_count() {
  std::shared_lock lk(mu_);
  return inodes_.size();
}

Status MetadataServer::check_tree_invariants() {
  std::shared_lock lk(mu_);
  // Every directory child must exist; count reachable inodes from the root
  // and compare with the table (unlinked-but-open inodes are off-tree).
  std::uint64_t reachable = 0;
  std::vector<InodeId> stack{kRootInode};
  std::vector<InodeId> seen;
  while (!stack.empty()) {
    const InodeId id = stack.back();
    stack.pop_back();
    if (std::find(seen.begin(), seen.end(), id) != seen.end()) {
      return {Errc::io_error, "cycle in namespace tree"};
    }
    seen.push_back(id);
    const Inode* ino = get_locked(id);
    if (!ino) return {Errc::io_error, "dangling child inode"};
    ++reachable;
    for (const auto& [name, child] : ino->children) {
      if (name.empty()) return {Errc::io_error, "empty child name"};
      stack.push_back(child);
    }
  }
  std::uint64_t off_tree = 0;
  for (const auto& [id, ino] : inodes_) {
    if (ino.unlinked) ++off_tree;
  }
  if (reachable + off_tree != inodes_.size()) {
    return {Errc::io_error, "unreachable inodes present"};
  }
  return Status::success();
}

}  // namespace bsc::pfs
