// LustreLikeFs — a strictly POSIX-compliant parallel file system.
//
// Architecture (one instance per simulated cluster):
//   * MetadataServer (src/pfs/mds.hpp) on the metadata node: hierarchical
//     namespace, permissions, xattrs, size/handle bookkeeping.
//   * One ObjectStorageTarget per storage node: striped file data,
//     update-in-place (random writes pay seeks).
//   * LockManager on the metadata node: per-I/O range locks giving the
//     strict "writes immediately visible to all processes" semantics.
//
// Every FileSystem call maps to the RPCs a real Lustre client would issue,
// and each RPC charges the caller's SimAgent: metadata round-trips to the
// MDS, lock round-trips to the DLM, parallel data transfers to the OSTs.
//
// PfsConfig::strict_locking = false gives OrangeFS-style relaxed semantics
// (no lock traffic, lazy size updates) behind the same POSIX interface —
// the paper's "relaxed semantics, same API" point, and our ablation knob.
#pragma once

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "pfs/lock_manager.hpp"
#include "pfs/mds.hpp"
#include "pfs/ost.hpp"
#include "rpc/transport.hpp"
#include "sim/cluster.hpp"
#include "vfs/file_system.hpp"

namespace bsc::pfs {

struct PfsConfig {
  std::uint64_t stripe_size = 64 * 1024;  ///< stripe unit across OSTs
  std::uint32_t stripe_width = 0;         ///< OSTs per file; 0 = all
  bool strict_locking = true;             ///< POSIX semantics vs relaxed (MPI-IO-like)
};

class LustreLikeFs final : public vfs::FileSystem {
 public:
  LustreLikeFs(sim::Cluster& cluster, PfsConfig cfg = {});

  [[nodiscard]] std::string backend_name() const override {
    return cfg_.strict_locking ? "pfs-strict" : "pfs-relaxed";
  }

  Result<vfs::FileHandle> open(const vfs::IoCtx& ctx, std::string_view path,
                               vfs::OpenFlags flags,
                               vfs::Mode mode = vfs::kDefaultFileMode) override;
  Status close(const vfs::IoCtx& ctx, vfs::FileHandle fh) override;
  Result<Bytes> read(const vfs::IoCtx& ctx, vfs::FileHandle fh, std::uint64_t offset,
                     std::uint64_t len) override;
  Result<std::uint64_t> write(const vfs::IoCtx& ctx, vfs::FileHandle fh,
                              std::uint64_t offset, ByteView data) override;
  Status sync(const vfs::IoCtx& ctx, vfs::FileHandle fh) override;
  Status truncate(const vfs::IoCtx& ctx, std::string_view path,
                  std::uint64_t new_size) override;
  Status unlink(const vfs::IoCtx& ctx, std::string_view path) override;
  Status mkdir(const vfs::IoCtx& ctx, std::string_view path,
               vfs::Mode mode = vfs::kDefaultDirMode) override;
  Status rmdir(const vfs::IoCtx& ctx, std::string_view path) override;
  Result<std::vector<vfs::DirEntry>> readdir(const vfs::IoCtx& ctx,
                                             std::string_view path) override;
  Result<vfs::FileInfo> stat(const vfs::IoCtx& ctx, std::string_view path) override;
  Status rename(const vfs::IoCtx& ctx, std::string_view from, std::string_view to) override;
  Status chmod(const vfs::IoCtx& ctx, std::string_view path, vfs::Mode mode) override;
  Result<std::string> getxattr(const vfs::IoCtx& ctx, std::string_view path,
                               std::string_view name) override;
  Status setxattr(const vfs::IoCtx& ctx, std::string_view path, std::string_view name,
                  std::string_view value) override;

  // --- introspection for tests and benches ---
  [[nodiscard]] MetadataServer& mds() noexcept { return *mds_; }
  [[nodiscard]] LockManager& lock_manager() noexcept { return *locks_; }
  [[nodiscard]] std::size_t ost_count() const noexcept { return osts_.size(); }
  [[nodiscard]] ObjectStorageTarget& ost(std::size_t i) noexcept { return *osts_[i]; }
  [[nodiscard]] const PfsConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t open_handle_count();

 private:
  struct OpenFile {
    InodeId ino = 0;
    vfs::OpenFlags flags;
    std::string path;
  };

  struct StripePiece {
    std::uint32_t ost = 0;       ///< OST index
    std::uint64_t obj_off = 0;   ///< offset inside the per-OST object
    std::uint64_t log_off = 0;   ///< offset inside the file
    std::uint64_t len = 0;
  };

  [[nodiscard]] std::uint32_t width_of() const noexcept;
  [[nodiscard]] std::vector<StripePiece> stripe_range(InodeId ino, std::uint64_t offset,
                                                      std::uint64_t len) const;
  Result<OpenFile> lookup_handle(vfs::FileHandle fh);

  /// Charge one metadata RPC to the caller.
  void charge_mds_rpc(const vfs::IoCtx& ctx, SimMicros service_us,
                      std::uint64_t req_bytes = 96, std::uint64_t resp_bytes = 64);

  Status truncate_resolved(const vfs::IoCtx& ctx, InodeId ino, std::uint64_t new_size);
  void reclaim_inode(const vfs::IoCtx& ctx, InodeId ino);

  sim::Cluster* cluster_;
  PfsConfig cfg_;
  rpc::Transport transport_;
  std::unique_ptr<MetadataServer> mds_;
  std::unique_ptr<LockManager> locks_;
  std::vector<std::unique_ptr<ObjectStorageTarget>> osts_;

  std::shared_mutex handles_mu_;
  std::unordered_map<vfs::FileHandle, OpenFile> handles_;
  std::atomic<vfs::FileHandle> next_handle_{1};
};

}  // namespace bsc::pfs
