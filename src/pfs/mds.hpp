// Metadata server (MDS) of the parallel file system.
//
// One logical MDS owns the whole namespace — the classic Lustre design and
// the classic Lustre bottleneck: every path resolution, permission check and
// namespace mutation serializes through it. The simulated cost model charges
// per-component resolution work on the metadata node, so metadata-heavy
// workloads queue here, which is precisely the overhead the paper attributes
// to hierarchical-namespace file systems.
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "pfs/inode.hpp"
#include "sim/node.hpp"

namespace bsc::pfs {

struct MdsCosts {
  SimMicros cpu_op_us = 4;         ///< fixed request handling
  SimMicros per_component_us = 6;  ///< lookup + permission check per path component
  SimMicros journal_us = 60;       ///< synchronous journal append for mutations
};

/// A resolved path: the inode plus how much resolution work it took
/// (drives the simulated MDS service time).
struct Resolved {
  InodeId ino = 0;
  std::uint32_t components = 0;
};

class MetadataServer {
 public:
  explicit MetadataServer(sim::SimNode& node, MdsCosts costs = {});

  [[nodiscard]] sim::SimNode& node() noexcept { return *node_; }

  // Every method returns the outcome and reports simulated service time.

  /// Resolve `path` checking execute permission on every ancestor.
  Result<Resolved> resolve(std::string_view path, std::uint32_t uid, std::uint32_t gid,
                           SimMicros* service_us);

  /// Resolve and check `want` permission bits on the final inode.
  Result<Resolved> resolve_checked(std::string_view path, std::uint32_t uid,
                                   std::uint32_t gid, std::uint32_t want,
                                   SimMicros* service_us);

  Result<vfs::FileInfo> stat(std::string_view path, std::uint32_t uid, std::uint32_t gid,
                             SimMicros* service_us);
  Result<vfs::FileInfo> stat_inode(InodeId ino, SimMicros* service_us);

  /// Create a regular file (parent must exist, be a dir, and be writable).
  Result<InodeId> create_file(std::string_view path, vfs::Mode mode, std::uint32_t uid,
                              std::uint32_t gid, bool exclusive, SimMicros* service_us);

  Status mkdir(std::string_view path, vfs::Mode mode, std::uint32_t uid, std::uint32_t gid,
               SimMicros* service_us);
  Status rmdir(std::string_view path, std::uint32_t uid, std::uint32_t gid,
               SimMicros* service_us);
  Result<std::vector<vfs::DirEntry>> readdir(std::string_view path, std::uint32_t uid,
                                             std::uint32_t gid, SimMicros* service_us);

  /// Unlink a regular file. The inode lingers while handles are open
  /// (POSIX delete-on-last-close); returns the inode and whether its
  /// storage can be reclaimed immediately.
  struct UnlinkResult {
    InodeId ino = 0;
    bool reclaim_now = false;
  };
  Result<UnlinkResult> unlink(std::string_view path, std::uint32_t uid, std::uint32_t gid,
                              SimMicros* service_us);

  Status rename(std::string_view from, std::string_view to, std::uint32_t uid,
                std::uint32_t gid, SimMicros* service_us);
  Status chmod(std::string_view path, vfs::Mode mode, std::uint32_t uid, std::uint32_t gid,
               SimMicros* service_us);

  Result<std::string> getxattr(std::string_view path, std::string_view name,
                               std::uint32_t uid, std::uint32_t gid, SimMicros* service_us);
  Status setxattr(std::string_view path, std::string_view name, std::string_view value,
                  std::uint32_t uid, std::uint32_t gid, SimMicros* service_us);

  // --- size & handle bookkeeping driven by the client layer ---
  Status set_size(InodeId ino, std::uint64_t size, SimMicros* service_us);
  Result<std::uint64_t> get_size(InodeId ino, SimMicros* service_us);
  /// Grow-only size update used on writes (concurrent writers never shrink).
  Status extend_size(InodeId ino, std::uint64_t min_size, SimMicros* service_us);

  /// Register/deregister an open handle on the inode. `closed_last` reports
  /// whether this close released the last handle of an unlinked inode
  /// (storage may then be reclaimed).
  Status handle_opened(InodeId ino, SimMicros* service_us);
  Status handle_closed(InodeId ino, bool* reclaim_now, SimMicros* service_us);

  [[nodiscard]] std::uint64_t inode_count();

  /// Tree-structure invariant check used by property tests: every child's
  /// parent linkage is consistent and reachable from the root.
  [[nodiscard]] Status check_tree_invariants();

 private:
  Result<Resolved> resolve_locked(std::string_view path, std::uint32_t uid,
                                  std::uint32_t gid);
  Result<std::pair<Inode*, std::string>> resolve_parent_locked(std::string_view path,
                                                               std::uint32_t uid,
                                                               std::uint32_t gid,
                                                               std::uint32_t* comps);
  Inode* get_locked(InodeId ino);
  InodeId alloc_inode_locked(vfs::FileType type, vfs::Mode mode, std::uint32_t uid,
                             std::uint32_t gid);
  [[nodiscard]] SimMicros lookup_cost(std::uint32_t components) const noexcept {
    return costs_.cpu_op_us + static_cast<SimMicros>(components) * costs_.per_component_us;
  }

  sim::SimNode* node_;
  MdsCosts costs_;
  std::shared_mutex mu_;
  std::unordered_map<InodeId, Inode> inodes_;
  InodeId next_ino_ = kRootInode + 1;
};

}  // namespace bsc::pfs
