#include "pfs/ost.hpp"

#include <mutex>

#include "common/hash.hpp"

namespace {
std::uint64_t cache_key(bsc::pfs::InodeId ino, std::uint32_t obj) {
  return bsc::hash_combine(bsc::mix64(ino), obj);
}
}  // namespace

namespace bsc::pfs {

namespace {
constexpr SimMicros kCpuOpUs = 3;
constexpr double kCpuBytesUs = 0.0001;

SimMicros cpu_bytes(std::uint64_t n) {
  return static_cast<SimMicros>(static_cast<double>(n) * kCpuBytesUs);
}
}  // namespace

Status ObjectStorageTarget::write(InodeId ino, std::uint32_t obj, std::uint64_t offset,
                                  ByteView data, SimMicros* service_us) {
  std::unique_lock lk(mu_);
  StripeObject& so = objects_[Key{ino, obj}];
  const bool sequential = offset == so.last_write_end;
  write_at(so.data, offset, data);
  so.last_write_end = offset + data.size();
  *service_us = kCpuOpUs + cpu_bytes(data.size()) +
                node_->disk().service_us(data.size(), sequential);
  node_->cache().touch_write(cache_key(ino, obj), so.data.size());
  return Status::success();
}

Result<Bytes> ObjectStorageTarget::read(InodeId ino, std::uint32_t obj, std::uint64_t offset,
                                        std::uint64_t len, SimMicros* service_us) {
  std::shared_lock lk(mu_);
  auto it = objects_.find(Key{ino, obj});
  if (it == objects_.end()) {
    *service_us = kCpuOpUs + node_->disk().params().controller_us;
    return Bytes{};  // object never written: reads as empty
  }
  const StripeObject& so = it->second;
  Bytes out;
  if (offset < so.data.size()) {
    const std::uint64_t n = std::min(len, so.data.size() - offset);
    out.assign(so.data.begin() + static_cast<std::ptrdiff_t>(offset),
               so.data.begin() + static_cast<std::ptrdiff_t>(offset + n));
  }
  // Stripe-object reads are random on disk (different files and stripes
  // interleave on the platters) unless the object is page-cache resident.
  const bool cached = node_->cache().touch_read(cache_key(ino, obj), so.data.size());
  *service_us = kCpuOpUs + cpu_bytes(out.size()) +
                (cached ? 1 : node_->disk().service_us(out.size(), /*sequential=*/false));
  return out;
}

Status ObjectStorageTarget::truncate(InodeId ino, std::uint32_t obj, std::uint64_t new_len,
                                     SimMicros* service_us) {
  std::unique_lock lk(mu_);
  *service_us = kCpuOpUs + node_->disk().params().controller_us;
  auto it = objects_.find(Key{ino, obj});
  if (it == objects_.end()) return Status::success();
  if (it->second.data.size() > new_len) it->second.data.resize(new_len);
  it->second.last_write_end = std::min<std::uint64_t>(it->second.last_write_end, new_len);
  return Status::success();
}

void ObjectStorageTarget::remove_inode(InodeId ino, SimMicros* service_us) {
  std::unique_lock lk(mu_);
  std::uint64_t removed = 0;
  for (auto it = objects_.begin(); it != objects_.end();) {
    if (it->first.ino == ino) {
      ++removed;
      node_->cache().invalidate(cache_key(ino, it->first.obj));
      it = objects_.erase(it);
    } else {
      ++it;
    }
  }
  *service_us = kCpuOpUs + static_cast<SimMicros>(removed) * 2;
}

SimMicros ObjectStorageTarget::sync_cost() const noexcept {
  return kCpuOpUs + node_->disk().params().controller_us * 2;
}

std::uint64_t ObjectStorageTarget::object_count() {
  std::shared_lock lk(mu_);
  return objects_.size();
}

std::uint64_t ObjectStorageTarget::bytes_stored() {
  std::shared_lock lk(mu_);
  std::uint64_t n = 0;
  for (const auto& [k, so] : objects_) n += so.data.size();
  return n;
}

}  // namespace bsc::pfs
