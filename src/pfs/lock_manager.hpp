// Distributed lock manager (DLM) enforcing strict POSIX write semantics.
//
// Every data I/O acquires a range lock from the lock service (hosted on the
// metadata node): this is the per-operation "POSIX tax". Ranges are hashed
// onto a fixed number of slots per inode — the granularity of a real DLM's
// extent locks. A write reserves its slots for the duration of the I/O
// (overlapping writers serialize in simulated time); a read waits for any
// writer holding its slots but does not exclude other readers.
//
// The relaxed mode of OrangeFS/MPI-IO semantics is modelled simply by not
// calling the lock manager at all (pfs::PfsConfig::strict_locking = false) —
// the ablation benches flip exactly this switch.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "pfs/inode.hpp"
#include "sim/node.hpp"

namespace bsc::pfs {

class LockManager {
 public:
  static constexpr std::uint32_t kSlotsPerInode = 16;

  LockManager(sim::SimNode& lock_node, std::uint64_t slot_granularity)
      : node_(&lock_node), granularity_(slot_granularity ? slot_granularity : 1) {}

  [[nodiscard]] sim::SimNode& node() noexcept { return *node_; }

  /// Cost of one lock enqueue/grant RPC at the lock server.
  [[nodiscard]] static SimMicros grant_service_us() noexcept { return 8; }

  /// Acquire an exclusive (write) lock over [offset, offset+len) at
  /// simulated time `arrival`, holding it for `hold_us`. Returns the grant
  /// time (the I/O may start then). Overlapping writers serialize.
  SimMicros acquire_exclusive(InodeId ino, std::uint64_t offset, std::uint64_t len,
                              SimMicros arrival, SimMicros hold_us);

  /// Acquire a shared (read) lock: returns the time the range is free of
  /// writers (no reservation is made).
  SimMicros acquire_shared(InodeId ino, std::uint64_t offset, std::uint64_t len,
                           SimMicros arrival);

  /// Drop all lock state for an inode (unlink / close cleanup).
  void forget(InodeId ino);

  [[nodiscard]] std::uint64_t exclusive_grants() const noexcept {
    return exclusive_grants_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t shared_grants() const noexcept {
    return shared_grants_.load(std::memory_order_relaxed);
  }

 private:
  struct InodeLocks {
    std::array<std::atomic<SimMicros>, kSlotsPerInode> writer_busy_until{};
  };

  InodeLocks& table_for(InodeId ino);
  void slots_of(std::uint64_t offset, std::uint64_t len, std::uint32_t* first,
                std::uint32_t* last) const noexcept;

  sim::SimNode* node_;
  std::uint64_t granularity_;
  std::mutex mu_;  ///< protects the map only; slots are atomics
  std::unordered_map<InodeId, std::unique_ptr<InodeLocks>> locks_;
  std::atomic<std::uint64_t> exclusive_grants_{0};
  std::atomic<std::uint64_t> shared_grants_{0};
};

}  // namespace bsc::pfs
