#include "pfs/lock_manager.hpp"

#include <algorithm>

namespace bsc::pfs {

LockManager::InodeLocks& LockManager::table_for(InodeId ino) {
  std::scoped_lock lk(mu_);
  auto& slot = locks_[ino];
  if (!slot) slot = std::make_unique<InodeLocks>();
  return *slot;
}

void LockManager::slots_of(std::uint64_t offset, std::uint64_t len, std::uint32_t* first,
                           std::uint32_t* last) const noexcept {
  const std::uint64_t lo = offset / granularity_;
  const std::uint64_t hi = len == 0 ? lo : (offset + len - 1) / granularity_;
  if (hi - lo + 1 >= kSlotsPerInode) {
    *first = 0;
    *last = kSlotsPerInode - 1;
    return;
  }
  *first = static_cast<std::uint32_t>(lo % kSlotsPerInode);
  *last = static_cast<std::uint32_t>(hi % kSlotsPerInode);
}

SimMicros LockManager::acquire_exclusive(InodeId ino, std::uint64_t offset,
                                         std::uint64_t len, SimMicros arrival,
                                         SimMicros hold_us) {
  exclusive_grants_.fetch_add(1, std::memory_order_relaxed);
  InodeLocks& t = table_for(ino);
  std::uint32_t first = 0;
  std::uint32_t last = 0;
  slots_of(offset, len, &first, &last);
  // Reserve every covered slot: the grant time is when all slots are free,
  // and each slot stays busy until grant + hold. Slots are reserved in
  // ascending index order by every caller, so concurrent reservations
  // converge (no deadlock; at worst an earlier caller re-waits).
  SimMicros grant = arrival;
  for (std::uint32_t s = first;; s = (s + 1) % kSlotsPerInode) {
    SimMicros busy = t.writer_busy_until[s].load(std::memory_order_relaxed);
    SimMicros target = 0;
    do {
      grant = std::max(grant, busy);
      target = grant + hold_us;
    } while (!t.writer_busy_until[s].compare_exchange_weak(busy, target,
                                                           std::memory_order_acq_rel,
                                                           std::memory_order_relaxed));
    if (s == last) break;
  }
  return grant;
}

SimMicros LockManager::acquire_shared(InodeId ino, std::uint64_t offset, std::uint64_t len,
                                      SimMicros arrival) {
  shared_grants_.fetch_add(1, std::memory_order_relaxed);
  InodeLocks& t = table_for(ino);
  std::uint32_t first = 0;
  std::uint32_t last = 0;
  slots_of(offset, len, &first, &last);
  SimMicros grant = arrival;
  for (std::uint32_t s = first;; s = (s + 1) % kSlotsPerInode) {
    grant = std::max(grant, t.writer_busy_until[s].load(std::memory_order_relaxed));
    if (s == last) break;
  }
  return grant;
}

void LockManager::forget(InodeId ino) {
  std::scoped_lock lk(mu_);
  locks_.erase(ino);
}

}  // namespace bsc::pfs
