// Object Storage Target: holds the striped data objects of the parallel
// file system, one OST per simulated storage node.
//
// Unlike the blob engine (log-structured), OSTs write update-in-place —
// random offsets pay a seek on the simulated disk, which is half of the
// mechanical story behind the flat-namespace blob stack's advantage.
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "pfs/inode.hpp"
#include "sim/node.hpp"

namespace bsc::pfs {

class ObjectStorageTarget {
 public:
  explicit ObjectStorageTarget(sim::SimNode& node) : node_(&node) {}

  [[nodiscard]] sim::SimNode& node() noexcept { return *node_; }

  /// Write `data` at `offset` within the stripe object `(ino, obj)`.
  Status write(InodeId ino, std::uint32_t obj, std::uint64_t offset, ByteView data,
               SimMicros* service_us);

  /// Read up to `len` bytes; missing tail reads short, holes read as zero.
  Result<Bytes> read(InodeId ino, std::uint32_t obj, std::uint64_t offset,
                     std::uint64_t len, SimMicros* service_us);

  /// Drop object data beyond `new_len` (file truncate fan-out).
  Status truncate(InodeId ino, std::uint32_t obj, std::uint64_t new_len,
                  SimMicros* service_us);

  /// Remove all objects of `ino` (unlink reclamation).
  void remove_inode(InodeId ino, SimMicros* service_us);

  /// Flush dirty state (fsync); charged as a short sequential journal write.
  SimMicros sync_cost() const noexcept;

  [[nodiscard]] std::uint64_t object_count();
  [[nodiscard]] std::uint64_t bytes_stored();

 private:
  struct Key {
    InodeId ino;
    std::uint32_t obj;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<std::uint64_t>{}((k.ino << 20) ^ k.obj);
    }
  };
  struct StripeObject {
    Bytes data;
    std::uint64_t last_write_end = 0;  ///< for sequentiality detection
  };

  sim::SimNode* node_;
  std::shared_mutex mu_;
  std::unordered_map<Key, StripeObject, KeyHash> objects_;
};

}  // namespace bsc::pfs
