// Inode model of the POSIX-compliant parallel file system.
//
// This is the machinery the paper argues most applications pay for without
// using: a hierarchical namespace (directory inodes with child maps), full
// ownership/permission metadata, and extended attributes.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "vfs/file_system.hpp"

namespace bsc::pfs {

using InodeId = std::uint64_t;
inline constexpr InodeId kRootInode = 1;

struct Inode {
  InodeId id = 0;
  vfs::FileType type = vfs::FileType::regular;
  vfs::Mode mode = vfs::kDefaultFileMode;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;
  std::uint64_t size = 0;            ///< regular files only
  std::uint32_t nlink = 1;
  std::uint32_t open_handles = 0;    ///< unlinked files persist while open
  bool unlinked = false;
  std::map<std::string, InodeId> children;          ///< directories only
  std::map<std::string, std::string> xattrs;

  [[nodiscard]] bool is_dir() const noexcept { return type == vfs::FileType::directory; }
};

/// Classic POSIX permission evaluation: owner / group / other bit triplet.
/// `want` is a bitmask of 4 (r), 2 (w), 1 (x). uid 0 bypasses checks (root).
[[nodiscard]] inline bool permits(const Inode& ino, std::uint32_t uid, std::uint32_t gid,
                                  std::uint32_t want) noexcept {
  if (uid == 0) return true;
  std::uint32_t bits = 0;
  if (uid == ino.uid) {
    bits = (ino.mode >> 6) & 7;
  } else if (gid == ino.gid) {
    bits = (ino.mode >> 3) & 7;
  } else {
    bits = ino.mode & 7;
  }
  return (bits & want) == want;
}

}  // namespace bsc::pfs
