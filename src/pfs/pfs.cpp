#include "pfs/pfs.hpp"

#include <mutex>

#include <algorithm>

#include "common/strings.hpp"

namespace bsc::pfs {

namespace {
constexpr std::uint64_t kRpcEnvelope = 48;
}

LustreLikeFs::LustreLikeFs(sim::Cluster& cluster, PfsConfig cfg)
    : cluster_(&cluster), cfg_(cfg), transport_(cluster) {
  mds_ = std::make_unique<MetadataServer>(cluster.metadata_node());
  locks_ = std::make_unique<LockManager>(cluster.metadata_node(), cfg_.stripe_size);
  osts_.reserve(cluster.storage_count());
  for (std::size_t i = 0; i < cluster.storage_count(); ++i) {
    osts_.push_back(std::make_unique<ObjectStorageTarget>(cluster.storage_node(i)));
  }
}

std::uint32_t LustreLikeFs::width_of() const noexcept {
  const auto n = static_cast<std::uint32_t>(osts_.size());
  return cfg_.stripe_width == 0 ? n : std::min(cfg_.stripe_width, n);
}

std::vector<LustreLikeFs::StripePiece> LustreLikeFs::stripe_range(
    InodeId ino, std::uint64_t offset, std::uint64_t len) const {
  std::vector<StripePiece> pieces;
  if (len == 0) return pieces;
  const std::uint64_t ss = cfg_.stripe_size;
  const std::uint32_t width = width_of();
  const std::uint32_t start = static_cast<std::uint32_t>(ino % width);
  std::uint64_t cur = offset;
  const std::uint64_t end = offset + len;
  while (cur < end) {
    const std::uint64_t sn = cur / ss;
    const std::uint64_t in_stripe = cur % ss;
    const std::uint64_t n = std::min(ss - in_stripe, end - cur);
    StripePiece p;
    p.ost = static_cast<std::uint32_t>((start + sn) % width);
    p.obj_off = (sn / width) * ss + in_stripe;
    p.log_off = cur;
    p.len = n;
    pieces.push_back(p);
    cur += n;
  }
  return pieces;
}

Result<LustreLikeFs::OpenFile> LustreLikeFs::lookup_handle(vfs::FileHandle fh) {
  std::shared_lock lk(handles_mu_);
  auto it = handles_.find(fh);
  if (it == handles_.end()) return {Errc::closed, "bad handle"};
  return it->second;
}

void LustreLikeFs::charge_mds_rpc(const vfs::IoCtx& ctx, SimMicros service_us,
                                  std::uint64_t req_bytes, std::uint64_t resp_bytes) {
  if (ctx.agent) {
    transport_.call_reliable(*ctx.agent, mds_->node(), req_bytes, resp_bytes, service_us);
  } else {
    mds_->node().serve(0, service_us);
  }
}

Result<vfs::FileHandle> LustreLikeFs::open(const vfs::IoCtx& ctx, std::string_view path,
                                           vfs::OpenFlags flags, vfs::Mode mode) {
  if (!flags.read && !flags.write) return {Errc::invalid_argument, "open without r/w"};
  SimMicros svc = 0;
  InodeId ino = 0;
  if (flags.write && flags.create) {
    auto r = mds_->create_file(path, mode, ctx.uid, ctx.gid, flags.exclusive, &svc);
    if (!r.ok()) {
      charge_mds_rpc(ctx, svc, kRpcEnvelope + path.size());
      return r.error();
    }
    ino = r.value();
  } else {
    const std::uint32_t want = (flags.read ? 4u : 0u) | (flags.write ? 2u : 0u);
    auto r = mds_->resolve_checked(path, ctx.uid, ctx.gid, want, &svc);
    if (!r.ok()) {
      charge_mds_rpc(ctx, svc, kRpcEnvelope + path.size());
      return r.error();
    }
    SimMicros svc2 = 0;
    auto info = mds_->stat_inode(r.value().ino, &svc2);
    svc += svc2;
    if (!info.ok()) {
      charge_mds_rpc(ctx, svc, kRpcEnvelope + path.size());
      return info.error();
    }
    if (info.value().type == vfs::FileType::directory && flags.write) {
      charge_mds_rpc(ctx, svc, kRpcEnvelope + path.size());
      return {Errc::is_a_directory, std::string{path}};
    }
    ino = r.value().ino;
  }
  // Permission re-check for create path when the file pre-existed is done
  // inside create_file; register the handle in the same metadata round-trip.
  SimMicros svc3 = 0;
  auto hs = mds_->handle_opened(ino, &svc3);
  svc += svc3;
  charge_mds_rpc(ctx, svc, kRpcEnvelope + path.size());
  if (!hs.ok()) return hs.error();

  const vfs::FileHandle fh = next_handle_.fetch_add(1, std::memory_order_relaxed);
  {
    std::unique_lock lk(handles_mu_);
    handles_.emplace(fh, OpenFile{ino, flags, normalize_path(path)});
  }
  if (flags.truncate) {
    auto ts = truncate_resolved(ctx, ino, 0);
    if (!ts.ok()) return ts.error();
  }
  return fh;
}

Status LustreLikeFs::close(const vfs::IoCtx& ctx, vfs::FileHandle fh) {
  OpenFile of;
  {
    std::unique_lock lk(handles_mu_);
    auto it = handles_.find(fh);
    if (it == handles_.end()) return {Errc::closed, "bad handle"};
    of = it->second;
    handles_.erase(it);
  }
  SimMicros svc = 0;
  bool reclaim = false;
  auto st = mds_->handle_closed(of.ino, &reclaim, &svc);
  charge_mds_rpc(ctx, svc);
  if (reclaim) reclaim_inode(ctx, of.ino);
  return st;
}

Result<Bytes> LustreLikeFs::read(const vfs::IoCtx& ctx, vfs::FileHandle fh,
                                 std::uint64_t offset, std::uint64_t len) {
  auto h = lookup_handle(fh);
  if (!h.ok()) return h.error();
  if (!h.value().flags.read) return {Errc::invalid_argument, "handle not open for read"};
  const InodeId ino = h.value().ino;

  // One combined metadata round-trip: range-lock enqueue + size glimpse.
  SimMicros size_svc = 0;
  auto size_r = mds_->get_size(ino, &size_svc);
  if (!size_r.ok()) return size_r.error();
  const std::uint64_t fsize = size_r.value();
  if (cfg_.strict_locking) {
    charge_mds_rpc(ctx, size_svc + LockManager::grant_service_us());
    if (ctx.agent) {
      ctx.agent->advance_to(locks_->acquire_shared(ino, offset, len, ctx.agent->now()));
    }
  } else {
    charge_mds_rpc(ctx, size_svc);
  }

  if (offset >= fsize || len == 0) return Bytes{};
  len = std::min(len, fsize - offset);

  // Parallel stripe reads across the OSTs.
  Bytes out(len, std::byte{0});
  const SimMicros start = ctx.now();
  SimMicros done = start;
  for (const StripePiece& p : stripe_range(ino, offset, len)) {
    ObjectStorageTarget& t = *osts_[p.ost];
    SimMicros svc = 0;
    auto piece = t.read(ino, p.ost, p.obj_off, p.len, &svc);
    if (!piece.ok()) return piece.error();
    const auto& net = cluster_->net();
    const SimMicros arr = start + net.transfer_us(kRpcEnvelope);
    done = std::max(done, t.node().serve(arr, svc) + net.transfer_us(p.len + kRpcEnvelope));
    // Short stripe reads are holes: they stay zero in the output.
    std::copy(piece.value().begin(), piece.value().end(),
              out.begin() + static_cast<std::ptrdiff_t>(p.log_off - offset));
  }
  if (ctx.agent) ctx.agent->advance_to(done);
  return out;
}

Result<std::uint64_t> LustreLikeFs::write(const vfs::IoCtx& ctx, vfs::FileHandle fh,
                                          std::uint64_t offset, ByteView data) {
  auto h = lookup_handle(fh);
  if (!h.ok()) return h.error();
  if (!h.value().flags.write) return {Errc::invalid_argument, "handle not open for write"};
  const InodeId ino = h.value().ino;

  if (h.value().flags.append) {
    SimMicros svc = 0;
    auto size_r = mds_->get_size(ino, &svc);
    if (!size_r.ok()) return size_r.error();
    charge_mds_rpc(ctx, svc);
    offset = size_r.value();
  }

  const auto pieces = stripe_range(ino, offset, data.size());

  if (cfg_.strict_locking) {
    // Range-lock round-trip; overlapping writers serialize for the duration
    // of the slowest stripe write.
    SimMicros hold = 0;
    for (const StripePiece& p : pieces) {
      hold = std::max(hold, osts_[p.ost]->node().disk().service_us(p.len, false));
    }
    charge_mds_rpc(ctx, LockManager::grant_service_us());
    if (ctx.agent) {
      const SimMicros grant =
          locks_->acquire_exclusive(ino, offset, data.size(), ctx.agent->now(), hold);
      ctx.agent->advance_to(grant);
    }
  }

  // Parallel stripe writes.
  const SimMicros start = ctx.now();
  SimMicros done = start;
  for (const StripePiece& p : pieces) {
    ObjectStorageTarget& t = *osts_[p.ost];
    SimMicros svc = 0;
    auto st = t.write(ino, p.ost, p.obj_off, subview(data, p.log_off - offset, p.len), &svc);
    if (!st.ok()) return st.error();
    const auto& net = cluster_->net();
    const SimMicros arr = start + net.transfer_us(p.len + kRpcEnvelope);
    done = std::max(done, t.node().serve(arr, svc) + net.transfer_us(kRpcEnvelope));
  }
  if (ctx.agent) ctx.agent->advance_to(done);

  // Grow the file size at the MDS. Under strict semantics the new size must
  // be visible to every client immediately (a journalled metadata update);
  // relaxed mode batches size updates lazily and charges nothing here.
  SimMicros svc = 0;
  auto es = mds_->extend_size(ino, offset + data.size(), &svc);
  if (!es.ok()) return es.error();
  if (cfg_.strict_locking) charge_mds_rpc(ctx, svc);
  return data.size();
}

Status LustreLikeFs::sync(const vfs::IoCtx& ctx, vfs::FileHandle fh) {
  auto h = lookup_handle(fh);
  if (!h.ok()) return h.error();
  // Flush every OST the file stripes over, in parallel.
  const SimMicros start = ctx.now();
  SimMicros done = start;
  for (std::uint32_t i = 0; i < width_of(); ++i) {
    ObjectStorageTarget& t = *osts_[i];
    const auto& net = cluster_->net();
    const SimMicros arr = start + net.transfer_us(kRpcEnvelope);
    done = std::max(done, t.node().serve(arr, t.sync_cost()) + net.transfer_us(kRpcEnvelope));
  }
  if (ctx.agent) ctx.agent->advance_to(done);
  return Status::success();
}

Status LustreLikeFs::truncate_resolved(const vfs::IoCtx& ctx, InodeId ino,
                                       std::uint64_t new_size) {
  // Fan out object truncation to every OST, then persist the size.
  const SimMicros start = ctx.now();
  SimMicros done = start;
  const std::uint64_t ss = cfg_.stripe_size;
  const std::uint32_t width = width_of();
  const std::uint32_t start_ost = static_cast<std::uint32_t>(ino % width);
  const std::uint64_t full_stripes = new_size / ss;   // stripes fully below the cut
  const std::uint64_t partial = new_size % ss;        // bytes into the cut stripe
  for (std::uint32_t i = 0; i < width; ++i) {
    // Exact per-object cut: count the stripes strided onto OST i below the
    // cut point, plus the partial stripe if it lands on this OST.
    const std::uint32_t r = (i + width - start_ost) % width;  // first stripe index on OST i
    std::uint64_t obj_len = r < full_stripes ? ((full_stripes - r - 1) / width + 1) * ss : 0;
    if (partial != 0 && (start_ost + full_stripes) % width == i) {
      obj_len = (full_stripes / width) * ss + partial;
    }
    ObjectStorageTarget& t = *osts_[i];
    SimMicros svc = 0;
    auto st = t.truncate(ino, i, obj_len, &svc);
    if (!st.ok()) return st;
    const auto& net = cluster_->net();
    const SimMicros arr = start + net.transfer_us(kRpcEnvelope);
    done = std::max(done, t.node().serve(arr, svc) + net.transfer_us(kRpcEnvelope));
  }
  if (ctx.agent) ctx.agent->advance_to(done);
  SimMicros svc = 0;
  auto st = mds_->set_size(ino, new_size, &svc);
  charge_mds_rpc(ctx, svc);
  return st;
}

Status LustreLikeFs::truncate(const vfs::IoCtx& ctx, std::string_view path,
                              std::uint64_t new_size) {
  SimMicros svc = 0;
  auto r = mds_->resolve_checked(path, ctx.uid, ctx.gid, 2, &svc);
  charge_mds_rpc(ctx, svc, kRpcEnvelope + path.size());
  if (!r.ok()) return r.error();
  return truncate_resolved(ctx, r.value().ino, new_size);
}

void LustreLikeFs::reclaim_inode(const vfs::IoCtx& ctx, InodeId ino) {
  const SimMicros start = ctx.now();
  SimMicros done = start;
  for (auto& t : osts_) {
    SimMicros svc = 0;
    t->remove_inode(ino, &svc);
    done = std::max(done, t->node().serve(start, svc));
  }
  locks_->forget(ino);
  if (ctx.agent) ctx.agent->advance_to(done);
}

Status LustreLikeFs::unlink(const vfs::IoCtx& ctx, std::string_view path) {
  SimMicros svc = 0;
  auto r = mds_->unlink(path, ctx.uid, ctx.gid, &svc);
  charge_mds_rpc(ctx, svc, kRpcEnvelope + path.size());
  if (!r.ok()) return r.error();
  if (r.value().reclaim_now) reclaim_inode(ctx, r.value().ino);
  return Status::success();
}

Status LustreLikeFs::mkdir(const vfs::IoCtx& ctx, std::string_view path, vfs::Mode mode) {
  SimMicros svc = 0;
  auto st = mds_->mkdir(path, mode, ctx.uid, ctx.gid, &svc);
  charge_mds_rpc(ctx, svc, kRpcEnvelope + path.size());
  return st;
}

Status LustreLikeFs::rmdir(const vfs::IoCtx& ctx, std::string_view path) {
  SimMicros svc = 0;
  auto st = mds_->rmdir(path, ctx.uid, ctx.gid, &svc);
  charge_mds_rpc(ctx, svc, kRpcEnvelope + path.size());
  return st;
}

Result<std::vector<vfs::DirEntry>> LustreLikeFs::readdir(const vfs::IoCtx& ctx,
                                                         std::string_view path) {
  SimMicros svc = 0;
  auto r = mds_->readdir(path, ctx.uid, ctx.gid, &svc);
  const std::uint64_t resp =
      kRpcEnvelope + (r.ok() ? r.value().size() * 32 : 0);
  charge_mds_rpc(ctx, svc, kRpcEnvelope + path.size(), resp);
  return r;
}

Result<vfs::FileInfo> LustreLikeFs::stat(const vfs::IoCtx& ctx, std::string_view path) {
  SimMicros svc = 0;
  auto r = mds_->stat(path, ctx.uid, ctx.gid, &svc);
  charge_mds_rpc(ctx, svc, kRpcEnvelope + path.size(), kRpcEnvelope + 64);
  return r;
}

Status LustreLikeFs::rename(const vfs::IoCtx& ctx, std::string_view from,
                            std::string_view to) {
  SimMicros svc = 0;
  auto st = mds_->rename(from, to, ctx.uid, ctx.gid, &svc);
  charge_mds_rpc(ctx, svc, kRpcEnvelope + from.size() + to.size());
  return st;
}

Status LustreLikeFs::chmod(const vfs::IoCtx& ctx, std::string_view path, vfs::Mode mode) {
  SimMicros svc = 0;
  auto st = mds_->chmod(path, mode, ctx.uid, ctx.gid, &svc);
  charge_mds_rpc(ctx, svc, kRpcEnvelope + path.size());
  return st;
}

Result<std::string> LustreLikeFs::getxattr(const vfs::IoCtx& ctx, std::string_view path,
                                           std::string_view name) {
  SimMicros svc = 0;
  auto r = mds_->getxattr(path, name, ctx.uid, ctx.gid, &svc);
  charge_mds_rpc(ctx, svc, kRpcEnvelope + path.size() + name.size());
  return r;
}

Status LustreLikeFs::setxattr(const vfs::IoCtx& ctx, std::string_view path,
                              std::string_view name, std::string_view value) {
  SimMicros svc = 0;
  auto st = mds_->setxattr(path, name, value, ctx.uid, ctx.gid, &svc);
  charge_mds_rpc(ctx, svc, kRpcEnvelope + path.size() + name.size() + value.size());
  return st;
}

std::uint64_t LustreLikeFs::open_handle_count() {
  std::shared_lock lk(handles_mu_);
  return handles_.size();
}

}  // namespace bsc::pfs
