// Workload models of the four HPC applications (Table I, "HPC / MPI").
//
// Each model reproduces the application's storage-call footprint: the same
// total read/write volumes (scaled 1:1024), the same request-size regime,
// the same file layout and the same access pattern class, all issued
// through the MPI-IO library (src/mpiio) — never directly against POSIX —
// exactly as the paper observes for real MPI applications (§IV-C).
//
// Input staging (generating the datasets) happens before tracing starts,
// like the pre-populated datasets of the paper's testbed. ECOHAM is special:
// its run script performs directory listings, xattr reads and small config
// I/O around the MPI phase. Traced together with the run, that is the "EH"
// bar of Figure 1; traced without it (prep done offline), it is "EH / MPI".
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/thread_pool.hpp"
#include "sim/cluster.hpp"
#include "trace/report.hpp"
#include "vfs/file_system.hpp"

namespace bsc::apps {

enum class HpcAppKind { blast, mom, ecoham, raytracing };

struct HpcRunOptions {
  std::uint32_t ranks = 24;
  bool with_prep_script = true;  ///< ECOHAM only: trace the run scripts too
  std::uint64_t seed = 1337;
};

struct HpcRunResult {
  trace::AppCensus census;   ///< traced storage-call census + volumes
  SimMicros sim_time = 0;    ///< simulated wall time of the traced phase
  bool ok = false;
  std::string error;
};

/// Stage inputs (untraced), then run the workload against `backing_fs`
/// through a tracing interceptor. Rank threads are spawned internally (the
/// MPI barrier needs every rank running concurrently).
HpcRunResult run_hpc_app(HpcAppKind kind, vfs::FileSystem& backing_fs,
                         sim::Cluster& cluster, const HpcRunOptions& opts = {});

[[nodiscard]] std::string hpc_app_name(HpcAppKind kind, bool with_prep_script);

}  // namespace bsc::apps
