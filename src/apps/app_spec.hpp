// The nine applications of the paper's Table I, with their measured I/O
// volumes and the scaling rule of this reproduction.
//
// Scaling: all volumes are divided by 1024 (GB -> MiB, MB -> KiB) *and* all
// request sizes are divided by 1024 relative to realistic request sizes.
// Both numerator and denominator shrink together, so per-application call
// counts — and therefore every percentage in Figures 1-2 and every ratio in
// Table I — are invariant under the scaling.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace bsc::apps {

/// Divide-by-1024 volume scaling (GB -> MiB).
inline constexpr std::uint64_t kScaleShift = 10;

/// A Table I volume given in real gigabytes, scaled to simulation bytes.
constexpr std::uint64_t scaled_gb(double gb) {
  return static_cast<std::uint64_t>(gb * static_cast<double>(GiB)) >> kScaleShift;
}
/// A Table I volume given in real megabytes, scaled to simulation bytes.
constexpr std::uint64_t scaled_mb(double mb) {
  return static_cast<std::uint64_t>(mb * static_cast<double>(MiB)) >> kScaleShift;
}

struct HpcAppSpec {
  std::string name;
  std::string usage;
  std::uint64_t read_total;   ///< scaled bytes
  std::uint64_t write_total;  ///< scaled bytes
  std::uint64_t read_req;     ///< scaled per-call request size
  std::uint64_t write_req;
  std::uint32_t ranks = 24;   ///< paper: 24 compute nodes
};

struct SparkAppSpec {
  std::string name;
  std::string usage;
  std::uint64_t input_total;   ///< scaled bytes read
  std::uint64_t output_total;  ///< scaled bytes written
  std::uint32_t passes = 1;    ///< iterations over the input (DT, CC)
  std::uint64_t read_req = 4 * 1024;
  std::uint64_t write_req = 4 * 1024;
  std::uint64_t shuffle_fraction_pct = 0;  ///< % of input shuffled between stages
};

// --- Table I, HPC / MPI ---
inline HpcAppSpec blast_spec() {
  return {"BLAST", "Protein docking", scaled_gb(27.7), scaled_mb(12.8), 1024, 512};
}
inline HpcAppSpec mom_spec() {
  return {"MOM", "Oceanic model", scaled_gb(19.5), scaled_gb(3.2), 1024, 1024};
}
inline HpcAppSpec ecoham_spec() {
  return {"EH", "Sediment propagation", scaled_gb(0.4), scaled_gb(9.7), 1024, 1024};
}
inline HpcAppSpec raytracing_spec() {
  return {"RT", "Video processing", scaled_gb(67.4), scaled_gb(71.2), 2048, 2048};
}

// --- Table I, Cloud / Spark ---
inline SparkAppSpec sort_spec() {
  return {.name = "Sort", .usage = "Text Processing", .input_total = scaled_gb(5.8),
          .output_total = scaled_gb(5.8), .shuffle_fraction_pct = 100};
}
inline SparkAppSpec grep_spec() {
  return {.name = "Grep", .usage = "Text Processing", .input_total = scaled_gb(55.8),
          .output_total = scaled_mb(863.8), .shuffle_fraction_pct = 2};
}
inline SparkAppSpec decision_tree_spec() {
  return {.name = "DT", .usage = "Machine Learning", .input_total = scaled_gb(59.1),
          .output_total = scaled_gb(4.7), .passes = 10, .shuffle_fraction_pct = 5};
}
inline SparkAppSpec connected_components_spec() {
  return {.name = "CC", .usage = "Graph Processing", .input_total = scaled_gb(13.1),
          .output_total = scaled_mb(71.2), .passes = 5, .shuffle_fraction_pct = 40};
}
inline SparkAppSpec tokenizer_spec() {
  return {.name = "Tokenizer", .usage = "Text Processing", .input_total = scaled_gb(55.8),
          .output_total = scaled_gb(235.7),
          .shuffle_fraction_pct = 0};
}

}  // namespace bsc::apps
