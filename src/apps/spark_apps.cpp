#include "apps/spark_apps.hpp"

#include <algorithm>

#include "apps/app_spec.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "spark/analytics.hpp"
#include "spark/engine.hpp"
#include "trace/tracing_fs.hpp"
#include "vfs/helpers.hpp"

namespace bsc::apps {

namespace {

const vfs::IoCtx kProvisionCtx{nullptr, 1000, 1000};
constexpr SimMicros kComputePerReqUs = 10;

std::string input_dir(SparkAppKind kind) {
  switch (kind) {
    case SparkAppKind::sort: return "/input/sort";
    case SparkAppKind::grep: return "/input/text";      // shared corpus
    case SparkAppKind::tokenizer: return "/input/text"; // shared corpus
    case SparkAppKind::decision_tree: return "/input/dt";
    case SparkAppKind::connected_components: return "/input/cc";
  }
  return "/input";
}

std::string output_dir(SparkAppKind kind) {
  return "/output/" + spark_app_name(kind);
}

SparkAppSpec spec_of(SparkAppKind kind) {
  switch (kind) {
    case SparkAppKind::sort: return sort_spec();
    case SparkAppKind::grep: return grep_spec();
    case SparkAppKind::decision_tree: return decision_tree_spec();
    case SparkAppKind::connected_components: return connected_components_spec();
    case SparkAppKind::tokenizer: return tokenizer_spec();
  }
  return {};
}

enum class DataKind { text, edges, features };

DataKind data_kind_of(SparkAppKind kind) {
  switch (kind) {
    case SparkAppKind::sort:
    case SparkAppKind::grep:
    case SparkAppKind::tokenizer:
      return DataKind::text;
    case SparkAppKind::connected_components:
      return DataKind::edges;
    case SparkAppKind::decision_tree:
      return DataKind::features;
  }
  return DataKind::text;
}

constexpr std::uint32_t kDtFeatures = 8;
constexpr std::uint32_t kCcNodes = 1 << 16;

/// Generate a real dataset of the right flavor (text corpus, edge list,
/// feature rows) — the analytics kernels parse these bytes for real.
Bytes make_dataset(DataKind kind, std::uint64_t seed, std::uint64_t size) {
  switch (kind) {
    case DataKind::text:
      return spark::generate_text(seed, size);
    case DataKind::edges:
      return spark::generate_edges(seed, kCcNodes,
                                   static_cast<std::uint32_t>(size / 8));
    case DataKind::features:
      return spark::generate_features(
          seed, static_cast<std::uint32_t>(size / (kDtFeatures * 8)), kDtFeatures);
  }
  return {};
}

Status provision_dataset(vfs::FileSystem& fs, const std::string& dir, DataKind kind,
                         std::uint64_t total_bytes, std::uint32_t files,
                         std::uint64_t seed) {
  auto st = vfs::mkdir_recursive(fs, kProvisionCtx, dir);
  if (!st.ok()) return st;
  const std::uint64_t per_file = total_bytes / files;
  for (std::uint32_t f = 0; f < files; ++f) {
    const std::uint64_t size = f + 1 == files ? total_bytes - per_file * (files - 1)
                                              : per_file;
    const Bytes data = make_dataset(kind, seed ^ f, size);
    st = vfs::write_file(fs, kProvisionCtx, strfmt("%s/part-%05u", dir.c_str(), f),
                         as_view(data), 1 << 20);
    if (!st.ok()) return st;
  }
  return Status::success();
}

/// Task body: read one input split sequentially in `req`-sized calls, then
/// run the application's analytics kernel over the split's real bytes.
/// The kernel result feeds the task's compute charge, so the work cannot
/// be optimized away and heavier splits genuinely take longer.
Status read_split_task(SparkAppKind kind, spark::TaskContext& tc,
                       const spark::InputSplit& split, std::uint64_t req) {
  auto fh = tc.fs->open(tc.io, split.path, vfs::OpenFlags::rd());
  if (!fh.ok()) return fh.error();
  Bytes content;
  content.reserve(split.length);
  std::uint64_t done = 0;
  while (done < split.length) {
    const std::uint64_t n = std::min(req, split.length - done);
    auto r = tc.fs->read(tc.io, fh.value(), split.offset + done, n);
    if (!r.ok()) {
      (void)tc.fs->close(tc.io, fh.value());
      return r.error();
    }
    if (r.value().empty()) break;
    done += r.value().size();
    append(content, as_view(r.value()));
    tc.io.charge(kComputePerReqUs);
  }
  auto st = tc.fs->close(tc.io, fh.value());
  if (!st.ok()) return st;

  std::uint64_t work = 0;
  switch (kind) {
    case SparkAppKind::grep:
      work = spark::grep_count(as_view(content), "w7");
      break;
    case SparkAppKind::tokenizer:
      work = spark::tokenize(as_view(content), nullptr);
      break;
    case SparkAppKind::sort:
      work = spark::sample_sort_keys(as_view(content), 16).size();
      break;
    case SparkAppKind::connected_components: {
      std::vector<std::uint32_t> labels(kCcNodes);
      for (std::uint32_t i = 0; i < kCcNodes; ++i) labels[i] = i;
      work = spark::label_propagation_sweep(as_view(content), &labels);
      break;
    }
    case SparkAppKind::decision_tree: {
      const auto stats = spark::feature_stats(as_view(content), kDtFeatures);
      work = stats.empty() ? 0 : static_cast<std::uint64_t>(stats.front().mean);
      break;
    }
  }
  // ~1 simulated microsecond per 64 result units keeps compute subordinate
  // to I/O (these applications are storage-bound in the paper's runs).
  tc.io.charge(static_cast<SimMicros>(work / 64));
  return Status::success();
}

/// Task body: write `bytes` of synthetic output to `path` by direct path
/// (no directory operations — Spark's direct output committer behaviour).
Status write_part_task(spark::TaskContext& tc, const std::string& path,
                       std::uint64_t bytes, std::uint64_t req, std::uint64_t seed) {
  auto fh = tc.fs->open(tc.io, path, vfs::OpenFlags::wr());
  if (!fh.ok()) return fh.error();
  std::uint64_t done = 0;
  while (done < bytes) {
    const std::uint64_t n = std::min(req, bytes - done);
    const Bytes chunk = make_payload(seed, done, n);
    auto w = tc.fs->write(tc.io, fh.value(), done, as_view(chunk));
    if (!w.ok()) {
      (void)tc.fs->close(tc.io, fh.value());
      return w.error();
    }
    done += w.value();
    tc.io.charge(kComputePerReqUs);
  }
  return tc.fs->close(tc.io, fh.value());
}

/// Drive one application through its stages.
Status drive_app(SparkAppKind kind, spark::SparkApp& app, spark::SparkCluster& sc,
                 sim::SimAgent& driver, const SparkSuiteOptions& opts) {
  const SparkAppSpec spec = spec_of(kind);
  auto st = app.submit(driver);
  if (!st.ok()) return st;

  auto splits = app.plan_input(driver, input_dir(kind), opts.split_bytes);
  if (!splits.ok()) return splits.error();
  const auto& sp = splits.value();
  const std::uint32_t executors = sc.config().executors;

  for (std::uint32_t pass = 0; pass < spec.passes; ++pass) {
    // Map stage: one task per split, reading the data.
    st = app.run_stage(driver, strfmt("map-pass-%u", pass),
                       static_cast<std::uint32_t>(sp.size()),
                       [&](spark::TaskContext& tc) {
                         return read_split_task(kind, tc, sp[tc.task_id], spec.read_req);
                       });
    if (!st.ok()) return st;
    if (spec.shuffle_fraction_pct > 0) {
      app.charge_shuffle(driver, spec.input_total / spec.passes *
                                     spec.shuffle_fraction_pct / 100);
    }
    // Iterative apps write intermediate results each pass; one-shot apps
    // write everything in the single pass.
    const std::uint64_t pass_output = spec.output_total / spec.passes;
    if (pass_output > 0) {
      const std::uint64_t per_task = pass_output / executors;
      st = app.run_stage(driver, strfmt("write-pass-%u", pass), executors,
                         [&](spark::TaskContext& tc) {
                           const std::string path =
                               strfmt("%s/pass%02u-part-%05u",
                                      output_dir(kind).c_str(), pass, tc.task_id);
                           return write_part_task(tc, path, per_task, spec.write_req,
                                                  opts.seed ^ (pass * 101 + tc.task_id));
                         });
      if (!st.ok()) return st;
    }
  }
  return app.finish(driver);
}

Status provision_all(vfs::FileSystem& fs, const std::vector<SparkAppKind>& kinds,
                     std::uint64_t seed) {
  // Platform provisioning, outside the traced application activity: the
  // user's home chain, the input datasets, and the output roots.
  auto st = vfs::mkdir_recursive(fs, kProvisionCtx, "/user/spark");
  if (!st.ok()) return st;
  st = vfs::mkdir_recursive(fs, kProvisionCtx, spark::SparkConfig{}.archive_base);
  if (!st.ok()) return st;
  bool text_done = false;
  for (SparkAppKind k : kinds) {
    const SparkAppSpec spec = spec_of(k);
    const std::string in = input_dir(k);
    if (in == "/input/text") {
      if (!text_done) {
        st = provision_dataset(fs, in, DataKind::text, spec.input_total / spec.passes, 8,
                               seed ^ 0x77);
        if (!st.ok()) return st;
        text_done = true;
      }
    } else {
      st = provision_dataset(fs, in, data_kind_of(k), spec.input_total / spec.passes, 4,
                             seed ^ static_cast<std::uint64_t>(k));
      if (!st.ok()) return st;
    }
    st = vfs::mkdir_recursive(fs, kProvisionCtx, output_dir(k));
    if (!st.ok()) return st;
  }
  return Status::success();
}

void cleanup_outputs(vfs::FileSystem& fs, SparkAppKind kind) {
  auto entries = fs.readdir(kProvisionCtx, output_dir(kind));
  if (!entries.ok()) return;
  for (const auto& e : entries.value()) {
    (void)fs.unlink(kProvisionCtx, join_path(output_dir(kind), e.name));
  }
}

SparkSuiteResult run_suite_impl(const std::vector<SparkAppKind>& kinds,
                                vfs::FileSystem& backing_fs, sim::Cluster& cluster,
                                ThreadPool& pool, const SparkSuiteOptions& opts) {
  SparkSuiteResult result;
  auto st = provision_all(backing_fs, kinds, opts.seed);
  if (!st.ok()) {
    result.error = "provisioning: " + st.message();
    return result;
  }
  cluster.reset();

  spark::SparkConfig scfg;
  scfg.executors = opts.executors;
  scfg.seed = opts.seed;

  // Session setup under its own recorder (the 3 session mkdirs).
  trace::TraceRecorder session_rec;
  trace::TracingFs session_fs(backing_fs, session_rec);
  spark::SparkCluster session_cluster(session_fs, cluster, pool, scfg);
  sim::SimAgent session_agent;
  st = session_cluster.setup(session_agent);
  if (!st.ok()) {
    result.error = "session setup: " + st.message();
    return result;
  }

  std::uint64_t input_listings = 0;
  std::uint64_t other_listings = 0;
  std::uint32_t app_id = 1;
  for (SparkAppKind kind : kinds) {
    trace::TraceRecorder rec;
    trace::TracingFs traced(backing_fs, rec);
    spark::SparkCluster sc(traced, cluster, pool, scfg);
    spark::SparkApp app(sc, spark_app_name(kind), app_id++);
    sim::SimAgent driver;
    st = drive_app(kind, app, sc, driver, opts);
    if (!st.ok()) {
      result.error = spark_app_name(kind) + ": " + st.message();
      return result;
    }
    input_listings += sc.input_listings();
    const trace::Census c = rec.census();
    other_listings += c.count(trace::OpKind::readdir) - sc.input_listings();

    trace::AppCensus ac;
    ac.name = spark_app_name(kind);
    ac.platform = "Cloud / Spark";
    ac.usage = spec_of(kind).usage;
    ac.census = c;
    ac.sim_time = driver.now();
    result.per_app.push_back(std::move(ac));

    if (opts.cleanup_outputs_between_apps) cleanup_outputs(backing_fs, kind);
  }

  st = session_cluster.teardown(session_agent);
  if (!st.ok()) {
    result.error = "session teardown: " + st.message();
    return result;
  }
  result.session = session_rec.census();

  // Table II: aggregate directory operations across the whole deployment.
  trace::Census all = result.session;
  for (const auto& a : result.per_app) all += a.census;
  result.dir_ops.mkdir = all.count(trace::OpKind::mkdir);
  result.dir_ops.rmdir = all.count(trace::OpKind::rmdir);
  result.dir_ops.opendir_input = input_listings;
  result.dir_ops.opendir_other =
      all.count(trace::OpKind::readdir) - input_listings;
  result.ok = true;
  return result;
}

}  // namespace

std::string spark_app_name(SparkAppKind kind) {
  switch (kind) {
    case SparkAppKind::sort: return "Sort";
    case SparkAppKind::grep: return "Grep";
    case SparkAppKind::decision_tree: return "DT";
    case SparkAppKind::connected_components: return "CC";
    case SparkAppKind::tokenizer: return "Tokenizer";
  }
  return "?";
}

SparkSuiteResult run_spark_suite(vfs::FileSystem& backing_fs, sim::Cluster& cluster,
                                 ThreadPool& pool, const SparkSuiteOptions& opts) {
  return run_suite_impl({SparkAppKind::sort, SparkAppKind::grep, SparkAppKind::decision_tree,
                         SparkAppKind::connected_components, SparkAppKind::tokenizer},
                        backing_fs, cluster, pool, opts);
}

SparkSuiteResult run_spark_single(SparkAppKind kind, vfs::FileSystem& backing_fs,
                                  sim::Cluster& cluster, ThreadPool& pool,
                                  const SparkSuiteOptions& opts) {
  return run_suite_impl({kind}, backing_fs, cluster, pool, opts);
}

}  // namespace bsc::apps
