#include "apps/hpc_apps.hpp"

#include <algorithm>
#include <mutex>

#include "apps/app_spec.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "mpiio/mpi_file.hpp"
#include "trace/tracing_fs.hpp"
#include "vfs/helpers.hpp"

namespace bsc::apps {

namespace {

/// Untraced context for input staging (no agent: nothing is charged, and the
/// cluster queues are reset afterwards so the traced phase starts clean).
const vfs::IoCtx kStagingCtx{nullptr, 500, 500};

constexpr SimMicros kComputePerReqUs = 15;  ///< per-request application compute

Status stage_file(vfs::FileSystem& fs, std::string_view path, std::uint64_t size,
                  std::uint64_t seed) {
  const Bytes data = make_payload(seed, 0, size);
  return vfs::write_file(fs, kStagingCtx, path, as_view(data), 1 << 20);
}

/// Sequentially read [off, off+len) of `fh` in `req`-sized calls, charging
/// per-request compute. Returns bytes read.
Result<std::uint64_t> read_range(mpiio::MpiIo& io, vfs::FileHandle fh, std::uint64_t off,
                                 std::uint64_t len, std::uint64_t req) {
  std::uint64_t done = 0;
  while (done < len) {
    const std::uint64_t n = std::min(req, len - done);
    auto r = io.read_at(fh, off + done, n);
    if (!r.ok()) return r.error();
    if (r.value().empty()) break;  // EOF
    done += r.value().size();
    io.ctx().charge(kComputePerReqUs);
  }
  return done;
}

/// Sequentially write [off, off+len) in `req`-sized calls of synthetic data.
Status write_range(mpiio::MpiIo& io, vfs::FileHandle fh, std::uint64_t off,
                   std::uint64_t len, std::uint64_t req, std::uint64_t seed) {
  std::uint64_t done = 0;
  while (done < len) {
    const std::uint64_t n = std::min(req, len - done);
    const Bytes chunk = make_payload(seed, off + done, n);
    auto w = io.write_at(fh, off + done, as_view(chunk));
    if (!w.ok()) return w.error();
    done += w.value();
    io.ctx().charge(kComputePerReqUs);
  }
  return Status::success();
}

/// Run `body(rank, io)` on `ranks` concurrent threads, each with its own
/// SimAgent forked from `driver`; driver joins the slowest rank.
Status run_ranks(vfs::FileSystem& fs, sim::Cluster& cluster, std::uint32_t ranks,
                 sim::SimAgent& driver,
                 const std::function<Status(std::uint32_t, mpiio::MpiIo&)>& body) {
  mpiio::Communicator comm(ranks, cluster.net());
  std::vector<sim::SimAgent> agents(ranks, driver.fork());
  std::mutex fail_mu;
  Status failure = Status::success();
  // Dedicated threads: MPI barriers require all ranks live simultaneously.
  ThreadPool rank_pool(ranks);
  rank_pool.parallel_for(ranks, [&](std::size_t r) {
    mpiio::MpiIo io(comm, static_cast<std::uint32_t>(r), fs,
                    vfs::IoCtx{&agents[r], 500, 500});
    auto st = body(static_cast<std::uint32_t>(r), io);
    if (!st.ok()) {
      std::scoped_lock lk(fail_mu);
      if (failure.ok()) failure = st;
    }
  });
  for (const auto& a : agents) driver.join(a);
  return failure;
}

// ------------------------------------------------------------- BLAST ----

Status stage_blast(vfs::FileSystem& fs, const HpcAppSpec& spec, std::uint64_t seed) {
  auto st = vfs::mkdir_recursive(fs, kStagingCtx, "/data/blastdb");
  if (!st.ok()) return st;
  st = vfs::mkdir_recursive(fs, kStagingCtx, "/out/blast");
  if (!st.ok()) return st;
  const std::uint64_t query = spec.read_total / (spec.ranks * 8);
  const std::uint64_t frag = spec.read_total / spec.ranks - query;
  for (std::uint32_t r = 0; r < spec.ranks; ++r) {
    st = stage_file(fs, strfmt("/data/blastdb/frag-%02u", r), frag, seed ^ r);
    if (!st.ok()) return st;
  }
  return stage_file(fs, "/data/queries.fasta", query, seed ^ 0xbeef);
}

Status run_blast(vfs::FileSystem& fs, sim::Cluster& cluster, const HpcAppSpec& spec,
                 sim::SimAgent& driver, std::uint64_t seed) {
  return run_ranks(fs, cluster, spec.ranks, driver,
                   [&](std::uint32_t rank, mpiio::MpiIo& io) -> Status {
    // Every rank scans the full query set against its own DB fragment.
    auto qf = io.file_open("/data/queries.fasta", mpiio::AccessMode::read_only());
    if (!qf.ok()) return qf.error();
    auto ff = io.file_open(strfmt("/data/blastdb/frag-%02u", rank),
                           mpiio::AccessMode::read_only());
    if (!ff.ok()) return ff.error();
    const std::uint64_t query = spec.read_total / (spec.ranks * 8);
    const std::uint64_t frag = spec.read_total / spec.ranks - query;
    auto r1 = read_range(io, qf.value(), 0, query, spec.read_req);
    if (!r1.ok()) return r1.error();
    auto r2 = read_range(io, ff.value(), 0, frag, spec.read_req);
    if (!r2.ok()) return r2.error();
    auto st = io.file_close(qf.value());
    if (!st.ok()) return st;
    st = io.file_close(ff.value());
    if (!st.ok()) return st;
    // Rank 0 writes the merged hit report.
    auto rf = io.file_open("/out/blast/results.txt", mpiio::AccessMode::write_create());
    if (!rf.ok()) return rf.error();
    if (rank == 0) {
      st = write_range(io, rf.value(), 0, spec.write_total, spec.write_req, seed ^ 0xcafe);
      if (!st.ok()) return st;
    }
    return io.file_close(rf.value());
  });
}

// --------------------------------------------------------------- MOM ----

Status stage_mom(vfs::FileSystem& fs, const HpcAppSpec& spec, std::uint64_t seed) {
  auto st = vfs::mkdir_recursive(fs, kStagingCtx, "/data/mom");
  if (!st.ok()) return st;
  st = vfs::mkdir_recursive(fs, kStagingCtx, "/out/mom");
  if (!st.ok()) return st;
  const std::uint64_t restart = spec.read_total / 4;
  const std::uint64_t forcing = spec.read_total - restart;
  st = stage_file(fs, "/data/mom/restart.nc", restart, seed ^ 1);
  if (!st.ok()) return st;
  return stage_file(fs, "/data/mom/forcing.nc", forcing, seed ^ 2);
}

Status run_mom(vfs::FileSystem& fs, sim::Cluster& cluster, const HpcAppSpec& spec,
               sim::SimAgent& driver, std::uint64_t seed) {
  constexpr std::uint32_t kSteps = 32;
  constexpr std::uint32_t kDiagInterval = 4;
  return run_ranks(fs, cluster, spec.ranks, driver,
                   [&](std::uint32_t rank, mpiio::MpiIo& io) -> Status {
    const std::uint64_t restart = spec.read_total / 4;
    const std::uint64_t forcing = spec.read_total - restart;
    // Restart: each rank reads its domain decomposition slice.
    auto rf = io.file_open("/data/mom/restart.nc", mpiio::AccessMode::read_only());
    if (!rf.ok()) return rf.error();
    const std::uint64_t rslice = restart / spec.ranks;
    auto rr = read_range(io, rf.value(), rank * rslice, rslice, spec.read_req);
    if (!rr.ok()) return rr.error();
    auto st = io.file_close(rf.value());
    if (!st.ok()) return st;

    auto ff = io.file_open("/data/mom/forcing.nc", mpiio::AccessMode::read_only());
    if (!ff.ok()) return ff.error();
    // Diagnostics: shared output file written collectively every interval;
    // a final restart dump takes the remainder of the write budget.
    const std::uint64_t dumps = kSteps / kDiagInterval;
    const std::uint64_t diag_budget = spec.write_total * 9 / 10;
    const std::uint64_t per_dump_per_rank = diag_budget / (dumps * spec.ranks);
    auto df = io.file_open("/out/mom/diag.nc", mpiio::AccessMode::write_create());
    if (!df.ok()) return df.error();

    const std::uint64_t fslice = forcing / (kSteps * spec.ranks);
    std::uint64_t diag_off = 0;
    for (std::uint32_t step = 0; step < kSteps; ++step) {
      const std::uint64_t foff =
          (static_cast<std::uint64_t>(step) * spec.ranks + rank) * fslice;
      auto fr = read_range(io, ff.value(), foff, fslice, spec.read_req);
      if (!fr.ok()) return fr.error();
      io.ctx().charge(400);  // timestep compute
      if ((step + 1) % kDiagInterval == 0) {
        // Collective write: contiguous per-rank slices, aggregated by the
        // MPI-IO layer into large sequential storage calls.
        const Bytes chunk =
            make_payload(seed ^ step, rank * per_dump_per_rank, per_dump_per_rank);
        auto w = io.write_at_all(df.value(),
                                 diag_off + rank * per_dump_per_rank, as_view(chunk));
        if (!w.ok()) return w.error();
        diag_off += per_dump_per_rank * spec.ranks;
      }
    }
    auto stc = io.file_close(ff.value());
    if (!stc.ok()) return stc;
    stc = io.file_sync(df.value());
    if (!stc.ok()) return stc;
    stc = io.file_close(df.value());
    if (!stc.ok()) return stc;

    // Final restart dump: independent per-rank writes.
    const std::uint64_t dump_budget = spec.write_total - diag_budget;
    const std::uint64_t dslice = dump_budget / spec.ranks;
    auto of = io.file_open("/out/mom/restart.out.nc", mpiio::AccessMode::write_create());
    if (!of.ok()) return of.error();
    auto ws = write_range(io, of.value(), rank * dslice, dslice, spec.write_req,
                          seed ^ 0xd00d);
    if (!ws.ok()) return ws;
    return io.file_close(of.value());
  });
}

// ------------------------------------------------------------ ECOHAM ----

Status stage_ecoham(vfs::FileSystem& fs, const HpcAppSpec& spec, std::uint64_t seed) {
  auto st = vfs::mkdir_recursive(fs, kStagingCtx, "/data/eh/forcing");
  if (!st.ok()) return st;
  st = vfs::mkdir_recursive(fs, kStagingCtx, "/out/eh");
  if (!st.ok()) return st;
  st = stage_file(fs, "/data/eh/init.nc", spec.read_total * 9 / 10, seed ^ 11);
  if (!st.ok()) return st;
  st = stage_file(fs, "/data/eh/namelist", 2048, seed ^ 12);
  if (!st.ok()) return st;
  // Small per-station forcing files; the prep script inspects their xattrs.
  for (std::uint32_t i = 0; i < 60; ++i) {
    const std::string p = strfmt("/data/eh/forcing/station-%02u.dat", i);
    st = stage_file(fs, p, 512, seed ^ i);
    if (!st.ok()) return st;
    st = fs.setxattr(kStagingCtx, p, "user.station", strfmt("st-%02u", i));
    if (!st.ok()) return st;
  }
  return Status::success();
}

/// The ECOHAM run-preparation script: directory listings, xattr reads,
/// config reads and a small run-configuration write — the non-read/write
/// calls visible in the EH bar of Figure 1.
Status ecoham_prep_script(vfs::FileSystem& fs, sim::SimAgent& driver) {
  vfs::IoCtx ctx{&driver, 500, 500};
  auto top = fs.readdir(ctx, "/data/eh");
  if (!top.ok()) return top.error();
  auto forcing = fs.readdir(ctx, "/data/eh/forcing");
  if (!forcing.ok()) return forcing.error();
  for (const auto& e : forcing.value()) {
    const std::string p = join_path("/data/eh/forcing", e.name);
    auto info = fs.stat(ctx, p);
    if (!info.ok()) return info.error();
    auto xa = fs.getxattr(ctx, p, "user.station");
    if (!xa.ok()) return xa.error();
  }
  auto nl = vfs::read_file(fs, ctx, "/data/eh/namelist");
  if (!nl.ok()) return nl.error();
  return vfs::write_file(fs, ctx, "/out/eh/run.cfg", as_view(to_bytes("run=eh\n")));
}

/// The post-run collection script: list outputs, stat them, write a summary.
Status ecoham_collect_script(vfs::FileSystem& fs, sim::SimAgent& driver) {
  vfs::IoCtx ctx{&driver, 500, 500};
  auto out = fs.readdir(ctx, "/out/eh");
  if (!out.ok()) return out.error();
  std::uint64_t total = 0;
  for (const auto& e : out.value()) {
    if (e.type != vfs::FileType::regular) continue;
    auto info = fs.stat(ctx, join_path("/out/eh", e.name));
    if (!info.ok()) return info.error();
    total += info.value().size;
  }
  return vfs::write_file(fs, ctx, "/out/eh/summary.txt",
                         as_view(to_bytes(strfmt("bytes=%llu\n",
                                                 static_cast<unsigned long long>(total)))));
}

Status run_ecoham(vfs::FileSystem& fs, sim::Cluster& cluster, const HpcAppSpec& spec,
                  sim::SimAgent& driver, std::uint64_t seed) {
  constexpr std::uint32_t kSteps = 16;
  return run_ranks(fs, cluster, spec.ranks, driver,
                   [&](std::uint32_t rank, mpiio::MpiIo& io) -> Status {
    const std::uint64_t init_sz = spec.read_total * 9 / 10;
    auto inf = io.file_open("/data/eh/init.nc", mpiio::AccessMode::read_only());
    if (!inf.ok()) return inf.error();
    const std::uint64_t slice = init_sz / spec.ranks;
    auto rr = read_range(io, inf.value(), rank * slice, slice, spec.read_req);
    if (!rr.ok()) return rr.error();
    // Remainder of the read budget: every rank re-reads boundary strips.
    const std::uint64_t boundary = (spec.read_total - init_sz) / spec.ranks;
    auto br = read_range(io, inf.value(), 0, boundary, spec.read_req);
    if (!br.ok()) return br.error();
    auto st = io.file_close(inf.value());
    if (!st.ok()) return st;

    // Sediment outputs: one file per rank, appended every timestep.
    auto of = io.file_open(strfmt("/out/eh/sed-%02u.nc", rank),
                           mpiio::AccessMode::write_create());
    if (!of.ok()) return of.error();
    const std::uint64_t per_step = spec.write_total / (kSteps * spec.ranks);
    std::uint64_t off = 0;
    for (std::uint32_t step = 0; step < kSteps; ++step) {
      io.ctx().charge(300);  // biogeochemistry compute
      auto ws = write_range(io, of.value(), off, per_step, spec.write_req,
                            seed ^ (rank * 131 + step));
      if (!ws.ok()) return ws;
      off += per_step;
    }
    return io.file_close(of.value());
  });
}

// -------------------------------------------------------- Ray Tracing ----

Status stage_raytracing(vfs::FileSystem& fs, const HpcAppSpec& spec, std::uint64_t seed) {
  auto st = vfs::mkdir_recursive(fs, kStagingCtx, "/data/rt/frames");
  if (!st.ok()) return st;
  st = vfs::mkdir_recursive(fs, kStagingCtx, "/out/rt");
  if (!st.ok()) return st;
  constexpr std::uint32_t kFrames = 48;
  const std::uint64_t frame = spec.read_total / kFrames;
  for (std::uint32_t f = 0; f < kFrames; ++f) {
    st = stage_file(fs, strfmt("/data/rt/frames/frame-%04u.raw", f), frame, seed ^ f);
    if (!st.ok()) return st;
  }
  return Status::success();
}

Status run_raytracing(vfs::FileSystem& fs, sim::Cluster& cluster, const HpcAppSpec& spec,
                      sim::SimAgent& driver, std::uint64_t seed) {
  constexpr std::uint32_t kFrames = 48;
  return run_ranks(fs, cluster, spec.ranks, driver,
                   [&](std::uint32_t rank, mpiio::MpiIo& io) -> Status {
    const std::uint64_t in_frame = spec.read_total / kFrames;
    const std::uint64_t out_frame = spec.write_total / kFrames;
    for (std::uint32_t f = rank; f < kFrames; f += spec.ranks) {
      auto inf = io.file_open(strfmt("/data/rt/frames/frame-%04u.raw", f),
                              mpiio::AccessMode::read_only());
      if (!inf.ok()) return inf.error();
      auto rr = read_range(io, inf.value(), 0, in_frame, spec.read_req);
      if (!rr.ok()) return rr.error();
      auto st = io.file_close(inf.value());
      if (!st.ok()) return st;
      io.ctx().charge(2000);  // render

      auto of = io.file_open(strfmt("/out/rt/frame-%04u.out", f),
                             mpiio::AccessMode::write_create());
      if (!of.ok()) return of.error();
      auto ws = write_range(io, of.value(), 0, out_frame, spec.write_req, seed ^ (f * 7));
      if (!ws.ok()) return ws;
      st = io.file_close(of.value());
      if (!st.ok()) return st;
    }
    return Status::success();
  });
}

}  // namespace

std::string hpc_app_name(HpcAppKind kind, bool with_prep_script) {
  switch (kind) {
    case HpcAppKind::blast: return "BLAST";
    case HpcAppKind::mom: return "MOM";
    case HpcAppKind::ecoham: return with_prep_script ? "EH" : "EH/MPI";
    case HpcAppKind::raytracing: return "RT";
  }
  return "?";
}

HpcRunResult run_hpc_app(HpcAppKind kind, vfs::FileSystem& backing_fs,
                         sim::Cluster& cluster, const HpcRunOptions& opts) {
  HpcRunResult result;
  HpcAppSpec spec;
  switch (kind) {
    case HpcAppKind::blast: spec = blast_spec(); break;
    case HpcAppKind::mom: spec = mom_spec(); break;
    case HpcAppKind::ecoham: spec = ecoham_spec(); break;
    case HpcAppKind::raytracing: spec = raytracing_spec(); break;
  }
  spec.ranks = opts.ranks ? opts.ranks : spec.ranks;

  // Untraced input staging, then a clean simulated cluster.
  Status st = Status::success();
  switch (kind) {
    case HpcAppKind::blast: st = stage_blast(backing_fs, spec, opts.seed); break;
    case HpcAppKind::mom: st = stage_mom(backing_fs, spec, opts.seed); break;
    case HpcAppKind::ecoham: st = stage_ecoham(backing_fs, spec, opts.seed); break;
    case HpcAppKind::raytracing: st = stage_raytracing(backing_fs, spec, opts.seed); break;
  }
  if (!st.ok()) {
    result.error = "staging: " + st.message();
    return result;
  }
  cluster.reset();

  // Traced phase.
  trace::TraceRecorder recorder;
  trace::TracingFs traced(backing_fs, recorder);
  sim::SimAgent driver;

  if (kind == HpcAppKind::ecoham && opts.with_prep_script) {
    st = ecoham_prep_script(traced, driver);
    if (!st.ok()) {
      result.error = "prep script: " + st.message();
      return result;
    }
  }
  switch (kind) {
    case HpcAppKind::blast: st = run_blast(traced, cluster, spec, driver, opts.seed); break;
    case HpcAppKind::mom: st = run_mom(traced, cluster, spec, driver, opts.seed); break;
    case HpcAppKind::ecoham: st = run_ecoham(traced, cluster, spec, driver, opts.seed); break;
    case HpcAppKind::raytracing:
      st = run_raytracing(traced, cluster, spec, driver, opts.seed);
      break;
  }
  if (!st.ok()) {
    result.error = "run: " + st.message();
    return result;
  }
  if (kind == HpcAppKind::ecoham && opts.with_prep_script) {
    st = ecoham_collect_script(traced, driver);
    if (!st.ok()) {
      result.error = "collect script: " + st.message();
      return result;
    }
  }

  result.census.name = hpc_app_name(kind, opts.with_prep_script);
  result.census.platform = "HPC / MPI";
  result.census.usage = spec.usage;
  result.census.census = recorder.census();
  result.census.sim_time = driver.now();
  result.sim_time = driver.now();
  result.ok = true;
  return result;
}

}  // namespace bsc::apps
