// Workload models of the five Spark applications (Table I, "Cloud / Spark"),
// run through the mini dataflow engine (src/spark) against an HDFS-like (or
// any other) FileSystem backend.
//
// The suite runner owns the full deployment lifecycle the paper traced:
// untraced provisioning (home dirs, input datasets, output roots), traced
// session setup, the five applications in sequence (each with its own
// tracing interceptor for the per-application census of Figure 2), traced
// session teardown, and the Table II directory-operation breakdown.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "sim/cluster.hpp"
#include "trace/report.hpp"
#include "vfs/file_system.hpp"

namespace bsc::apps {

enum class SparkAppKind { sort, grep, decision_tree, connected_components, tokenizer };

struct SparkSuiteOptions {
  std::uint64_t seed = 2024;
  std::uint32_t executors = 5;
  std::uint64_t split_bytes = 2 * 1024 * 1024;  ///< input split size (scaled)
  bool cleanup_outputs_between_apps = true;     ///< untraced, bounds memory
};

struct SparkSuiteResult {
  std::vector<trace::AppCensus> per_app;  ///< one census per application
  trace::Census session;                  ///< setup/teardown activity
  trace::DirOpBreakdown dir_ops;          ///< Table II
  bool ok = false;
  std::string error;
};

/// Run the whole five-application suite. `backing_fs` is typically an
/// HdfsLikeFs, but any FileSystem works (the §V experiment swaps in BlobFs).
SparkSuiteResult run_spark_suite(vfs::FileSystem& backing_fs, sim::Cluster& cluster,
                                 ThreadPool& pool, const SparkSuiteOptions& opts = {});

/// Run a single application (fresh session; per-app census only). Used by
/// unit tests and the quick examples.
SparkSuiteResult run_spark_single(SparkAppKind kind, vfs::FileSystem& backing_fs,
                                  sim::Cluster& cluster, ThreadPool& pool,
                                  const SparkSuiteOptions& opts = {});

[[nodiscard]] std::string spark_app_name(SparkAppKind kind);

}  // namespace bsc::apps
