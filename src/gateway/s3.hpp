// S3Gateway — an S3-style object interface over the blob store.
//
// The paper's related work (§II-C, Abe & Gibson's pwalrus) explores exposing
// cluster storage "through the storage service layer (S3 interface)"; this
// gateway completes the picture for the blob substrate: buckets, objects,
// prefix/delimiter listings (the folder illusion clouds give users), ETags,
// and multipart upload whose completion is one atomic Týr transaction.
//
// Key mapping (flat, like the blob store itself):
//   object data      -> "s3!<bucket>!o!<key>"
//   object metadata  -> "s3!<bucket>!m!<key>"       (etag, user metadata)
//   bucket marker    -> "s3!<bucket>"
//   multipart part   -> "s3!<bucket>!u!<upload-id>!<part#>"
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "blob/client.hpp"
#include "common/result.hpp"

namespace bsc::gateway {

struct ObjectInfo {
  std::string key;
  std::uint64_t size = 0;
  std::string etag;  ///< content checksum, hex
};

struct ListResult {
  std::vector<ObjectInfo> objects;          ///< keys at this level
  std::vector<std::string> common_prefixes; ///< "folders" when delimiter used
  bool truncated = false;
  std::string next_continuation;            ///< pass back to continue listing
};

struct PutOptions {
  std::map<std::string, std::string> user_metadata;  ///< x-amz-meta-*
};

class S3Gateway {
 public:
  explicit S3Gateway(blob::BlobStore& store) : store_(&store) {}

  // --- buckets ---
  Status create_bucket(sim::SimAgent& agent, std::string_view bucket);
  Status delete_bucket(sim::SimAgent& agent, std::string_view bucket);  ///< must be empty
  [[nodiscard]] bool bucket_exists(sim::SimAgent& agent, std::string_view bucket);
  Result<std::vector<std::string>> list_buckets(sim::SimAgent& agent);

  // --- objects ---
  Status put_object(sim::SimAgent& agent, std::string_view bucket, std::string_view key,
                    ByteView data, const PutOptions& opts = {});
  Result<Bytes> get_object(sim::SimAgent& agent, std::string_view bucket,
                           std::string_view key);
  /// Ranged GET: bytes [first, last] inclusive (HTTP Range semantics).
  Result<Bytes> get_object_range(sim::SimAgent& agent, std::string_view bucket,
                                 std::string_view key, std::uint64_t first,
                                 std::uint64_t last);
  Result<ObjectInfo> head_object(sim::SimAgent& agent, std::string_view bucket,
                                 std::string_view key);
  Result<std::string> object_metadata(sim::SimAgent& agent, std::string_view bucket,
                                      std::string_view key, std::string_view name);
  Status delete_object(sim::SimAgent& agent, std::string_view bucket,
                       std::string_view key);
  Status copy_object(sim::SimAgent& agent, std::string_view src_bucket,
                     std::string_view src_key, std::string_view dst_bucket,
                     std::string_view dst_key);

  /// ListObjectsV2: prefix filter, optional '/'-style delimiter (groups the
  /// remainder into common prefixes), pagination via continuation token.
  Result<ListResult> list_objects(sim::SimAgent& agent, std::string_view bucket,
                                  std::string_view prefix = {},
                                  std::optional<char> delimiter = std::nullopt,
                                  std::uint32_t max_keys = 1000,
                                  std::string_view continuation = {});

  // --- multipart upload ---
  Result<std::string> create_multipart_upload(sim::SimAgent& agent,
                                              std::string_view bucket,
                                              std::string_view key);
  Status upload_part(sim::SimAgent& agent, std::string_view bucket,
                     std::string_view upload_id, std::uint32_t part_number,
                     ByteView data);
  /// Assembles the parts into the final object and deletes them — one
  /// atomic transaction: concurrent readers see the old object or the new,
  /// never a half-assembled one.
  Status complete_multipart_upload(sim::SimAgent& agent, std::string_view bucket,
                                   std::string_view key, std::string_view upload_id,
                                   const std::vector<std::uint32_t>& part_numbers);
  Status abort_multipart_upload(sim::SimAgent& agent, std::string_view bucket,
                                std::string_view upload_id);

  [[nodiscard]] static std::string etag_of(ByteView data);

 private:
  [[nodiscard]] static std::string bucket_key(std::string_view bucket);
  [[nodiscard]] static std::string data_key(std::string_view bucket, std::string_view key);
  [[nodiscard]] static std::string meta_key(std::string_view bucket, std::string_view key);
  [[nodiscard]] static std::string part_key(std::string_view bucket,
                                            std::string_view upload_id,
                                            std::uint32_t part);
  [[nodiscard]] static Bytes encode_meta(std::string_view etag,
                                         const std::map<std::string, std::string>& user);
  static Status decode_meta(ByteView data, std::string* etag,
                            std::map<std::string, std::string>* user);

  blob::BlobStore* store_;
  std::atomic<std::uint64_t> upload_seq_{1};
};

}  // namespace bsc::gateway
