#include "gateway/s3.hpp"

#include <algorithm>

#include "common/hash.hpp"
#include "common/strings.hpp"
#include "rpc/wire.hpp"

namespace bsc::gateway {

std::string S3Gateway::bucket_key(std::string_view bucket) {
  return "s3!" + std::string{bucket};
}

std::string S3Gateway::data_key(std::string_view bucket, std::string_view key) {
  return strfmt("s3!%.*s!o!%.*s", static_cast<int>(bucket.size()), bucket.data(),
                static_cast<int>(key.size()), key.data());
}

std::string S3Gateway::meta_key(std::string_view bucket, std::string_view key) {
  return strfmt("s3!%.*s!m!%.*s", static_cast<int>(bucket.size()), bucket.data(),
                static_cast<int>(key.size()), key.data());
}

std::string S3Gateway::part_key(std::string_view bucket, std::string_view upload_id,
                                std::uint32_t part) {
  return strfmt("s3!%.*s!u!%.*s!%05u", static_cast<int>(bucket.size()), bucket.data(),
                static_cast<int>(upload_id.size()), upload_id.data(), part);
}

std::string S3Gateway::etag_of(ByteView data) {
  return strfmt("%016llx", static_cast<unsigned long long>(content_checksum(data)));
}

Bytes S3Gateway::encode_meta(std::string_view etag,
                             const std::map<std::string, std::string>& user) {
  rpc::WireWriter w;
  w.put_string(etag);
  w.put_u32(static_cast<std::uint32_t>(user.size()));
  for (const auto& [k, v] : user) {
    w.put_string(k);
    w.put_string(v);
  }
  return std::move(w).take();
}

Status S3Gateway::decode_meta(ByteView data, std::string* etag,
                              std::map<std::string, std::string>* user) {
  rpc::WireReader r(data);
  auto e = r.get_string();
  auto n = r.get_u32();
  if (!e.ok() || !n.ok()) return {Errc::io_error, "corrupt object metadata"};
  if (etag) *etag = std::move(e).take();
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    auto k = r.get_string();
    auto v = r.get_string();
    if (!k.ok() || !v.ok()) return {Errc::io_error, "corrupt user metadata"};
    if (user) user->emplace(std::move(k).take(), std::move(v).take());
  }
  return Status::success();
}

Status S3Gateway::create_bucket(sim::SimAgent& agent, std::string_view bucket) {
  if (bucket.empty() || bucket.find('!') != std::string_view::npos) {
    return {Errc::invalid_argument, "invalid bucket name"};
  }
  blob::BlobClient client(*store_, &agent);
  return client.create(bucket_key(bucket));
}

bool S3Gateway::bucket_exists(sim::SimAgent& agent, std::string_view bucket) {
  blob::BlobClient client(*store_, &agent);
  return client.exists(bucket_key(bucket));
}

Status S3Gateway::delete_bucket(sim::SimAgent& agent, std::string_view bucket) {
  blob::BlobClient client(*store_, &agent);
  if (!client.exists(bucket_key(bucket))) return {Errc::not_found, std::string{bucket}};
  auto contents = client.scan(bucket_key(bucket) + "!o!");
  if (!contents.ok()) return contents.error();
  if (!contents.value().empty()) return {Errc::not_empty, std::string{bucket}};
  return client.remove(bucket_key(bucket));
}

Result<std::vector<std::string>> S3Gateway::list_buckets(sim::SimAgent& agent) {
  blob::BlobClient client(*store_, &agent);
  auto blobs = client.scan("s3!");
  if (!blobs.ok()) return blobs.error();
  std::vector<std::string> out;
  for (const auto& b : blobs.value()) {
    std::string_view rest{b.key};
    rest.remove_prefix(3);
    if (rest.find('!') == std::string_view::npos) out.emplace_back(rest);
  }
  return out;
}

Status S3Gateway::put_object(sim::SimAgent& agent, std::string_view bucket,
                             std::string_view key, ByteView data, const PutOptions& opts) {
  blob::BlobClient client(*store_, &agent);
  if (!client.exists(bucket_key(bucket))) return {Errc::not_found, "no such bucket"};
  if (key.empty()) return {Errc::invalid_argument, "empty object key"};
  // Replace semantics: data + metadata land atomically (readers see the old
  // object or the new one).
  const Bytes meta = encode_meta(etag_of(data), opts.user_metadata);
  auto txn = client.begin_transaction();
  if (client.exists(data_key(bucket, key))) {
    txn.truncate(data_key(bucket, key), data.size());
    txn.truncate(meta_key(bucket, key), meta.size());
  }
  txn.write(data_key(bucket, key), 0, data);
  txn.write(meta_key(bucket, key), 0, as_view(meta));
  return txn.commit();
}

Result<Bytes> S3Gateway::get_object(sim::SimAgent& agent, std::string_view bucket,
                                    std::string_view key) {
  blob::BlobClient client(*store_, &agent);
  auto size = client.size(data_key(bucket, key));
  if (!size.ok()) return {Errc::not_found, std::string{key}};
  return client.read(data_key(bucket, key), 0, size.value());
}

Result<Bytes> S3Gateway::get_object_range(sim::SimAgent& agent, std::string_view bucket,
                                          std::string_view key, std::uint64_t first,
                                          std::uint64_t last) {
  if (last < first) return {Errc::invalid_argument, "bad range"};
  blob::BlobClient client(*store_, &agent);
  if (!client.exists(data_key(bucket, key))) return {Errc::not_found, std::string{key}};
  return client.read(data_key(bucket, key), first, last - first + 1);
}

Result<ObjectInfo> S3Gateway::head_object(sim::SimAgent& agent, std::string_view bucket,
                                          std::string_view key) {
  blob::BlobClient client(*store_, &agent);
  auto size = client.size(data_key(bucket, key));
  if (!size.ok()) return {Errc::not_found, std::string{key}};
  auto msize = client.size(meta_key(bucket, key));
  if (!msize.ok()) return {Errc::io_error, "metadata missing"};
  auto mdata = client.read(meta_key(bucket, key), 0, msize.value());
  if (!mdata.ok()) return mdata.error();
  std::string etag;
  auto st = decode_meta(as_view(mdata.value()), &etag, nullptr);
  if (!st.ok()) return st.error();
  return ObjectInfo{std::string{key}, size.value(), std::move(etag)};
}

Result<std::string> S3Gateway::object_metadata(sim::SimAgent& agent,
                                               std::string_view bucket,
                                               std::string_view key,
                                               std::string_view name) {
  blob::BlobClient client(*store_, &agent);
  auto msize = client.size(meta_key(bucket, key));
  if (!msize.ok()) return {Errc::not_found, std::string{key}};
  auto mdata = client.read(meta_key(bucket, key), 0, msize.value());
  if (!mdata.ok()) return mdata.error();
  std::map<std::string, std::string> user;
  auto st = decode_meta(as_view(mdata.value()), nullptr, &user);
  if (!st.ok()) return st.error();
  auto it = user.find(std::string{name});
  if (it == user.end()) return {Errc::not_found, std::string{name}};
  return it->second;
}

Status S3Gateway::delete_object(sim::SimAgent& agent, std::string_view bucket,
                                std::string_view key) {
  blob::BlobClient client(*store_, &agent);
  if (!client.exists(data_key(bucket, key))) return {Errc::not_found, std::string{key}};
  auto txn = client.begin_transaction();
  txn.remove(data_key(bucket, key)).remove(meta_key(bucket, key));
  return txn.commit();
}

Status S3Gateway::copy_object(sim::SimAgent& agent, std::string_view src_bucket,
                              std::string_view src_key, std::string_view dst_bucket,
                              std::string_view dst_key) {
  auto data = get_object(agent, src_bucket, src_key);
  if (!data.ok()) return data.error();
  return put_object(agent, dst_bucket, dst_key, as_view(data.value()));
}

Result<ListResult> S3Gateway::list_objects(sim::SimAgent& agent, std::string_view bucket,
                                           std::string_view prefix,
                                           std::optional<char> delimiter,
                                           std::uint32_t max_keys,
                                           std::string_view continuation) {
  blob::BlobClient client(*store_, &agent);
  if (!client.exists(bucket_key(bucket))) return {Errc::not_found, "no such bucket"};
  const std::string scan_prefix = bucket_key(bucket) + "!o!" + std::string{prefix};
  auto blobs = client.scan(scan_prefix);
  if (!blobs.ok()) return blobs.error();

  const std::string strip = bucket_key(bucket) + "!o!";
  ListResult out;
  std::vector<std::string> seen_prefixes;
  for (const auto& b : blobs.value()) {
    std::string key = b.key.substr(strip.size());
    if (!continuation.empty() && key <= continuation) continue;  // resume point
    if (delimiter) {
      const auto pos = key.find(*delimiter, prefix.size());
      if (pos != std::string::npos) {
        std::string cp = key.substr(0, pos + 1);
        if (seen_prefixes.empty() || seen_prefixes.back() != cp) {
          if (std::find(seen_prefixes.begin(), seen_prefixes.end(), cp) ==
              seen_prefixes.end()) {
            seen_prefixes.push_back(cp);
          }
        }
        continue;
      }
    }
    if (out.objects.size() + seen_prefixes.size() >= max_keys) {
      out.truncated = true;
      out.next_continuation = out.objects.empty() ? "" : out.objects.back().key;
      break;
    }
    out.objects.push_back({key, b.size, ""});
  }
  out.common_prefixes = std::move(seen_prefixes);
  // ETags on demand: fill for the returned page only.
  for (auto& obj : out.objects) {
    auto msize = client.size(meta_key(bucket, obj.key));
    if (!msize.ok()) continue;
    auto mdata = client.read(meta_key(bucket, obj.key), 0, msize.value());
    if (mdata.ok()) (void)decode_meta(as_view(mdata.value()), &obj.etag, nullptr);
  }
  return out;
}

Result<std::string> S3Gateway::create_multipart_upload(sim::SimAgent& agent,
                                                       std::string_view bucket,
                                                       std::string_view key) {
  blob::BlobClient client(*store_, &agent);
  if (!client.exists(bucket_key(bucket))) return {Errc::not_found, "no such bucket"};
  (void)key;  // the target key is named again at completion, as in S3
  return strfmt("upl-%08llu",
                static_cast<unsigned long long>(
                    upload_seq_.fetch_add(1, std::memory_order_relaxed)));
}

Status S3Gateway::upload_part(sim::SimAgent& agent, std::string_view bucket,
                              std::string_view upload_id, std::uint32_t part_number,
                              ByteView data) {
  if (part_number == 0) return {Errc::invalid_argument, "parts are 1-based"};
  blob::BlobClient client(*store_, &agent);
  auto w = client.write(part_key(bucket, upload_id, part_number), 0, data);
  return w.ok() ? Status::success() : Status{w.error()};
}

Status S3Gateway::complete_multipart_upload(sim::SimAgent& agent, std::string_view bucket,
                                            std::string_view key,
                                            std::string_view upload_id,
                                            const std::vector<std::uint32_t>& parts) {
  blob::BlobClient client(*store_, &agent);
  // Gather the parts (their content is immutable once uploaded).
  Bytes assembled;
  for (std::uint32_t p : parts) {
    auto size = client.size(part_key(bucket, upload_id, p));
    if (!size.ok()) return {Errc::not_found, strfmt("part %u missing", p)};
    auto data = client.read(part_key(bucket, upload_id, p), 0, size.value());
    if (!data.ok()) return data.error();
    append(assembled, as_view(data.value()));
  }
  // One transaction: final object + metadata appear, parts disappear.
  const Bytes meta = encode_meta(etag_of(as_view(assembled)), {});
  auto txn = client.begin_transaction();
  if (client.exists(data_key(bucket, key))) {
    txn.truncate(data_key(bucket, key), assembled.size());
    txn.truncate(meta_key(bucket, key), meta.size());
  }
  txn.write(data_key(bucket, key), 0, as_view(assembled));
  txn.write(meta_key(bucket, key), 0, as_view(meta));
  for (std::uint32_t p : parts) txn.remove(part_key(bucket, upload_id, p));
  return txn.commit();
}

Status S3Gateway::abort_multipart_upload(sim::SimAgent& agent, std::string_view bucket,
                                         std::string_view upload_id) {
  blob::BlobClient client(*store_, &agent);
  auto parts = client.scan(strfmt("s3!%.*s!u!%.*s!", static_cast<int>(bucket.size()),
                                  bucket.data(), static_cast<int>(upload_id.size()),
                                  upload_id.data()));
  if (!parts.ok()) return parts.error();
  for (const auto& p : parts.value()) {
    auto st = client.remove(p.key);
    if (!st.ok() && st.code() != Errc::not_found) return st;
  }
  return Status::success();
}

}  // namespace bsc::gateway
