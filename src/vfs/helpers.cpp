#include "vfs/helpers.hpp"

#include "common/strings.hpp"

namespace bsc::vfs {

Status write_file(FileSystem& fs, const IoCtx& ctx, std::string_view path, ByteView data,
                  std::uint64_t chunk) {
  auto fh = fs.open(ctx, path, OpenFlags::wr());
  if (!fh.ok()) return fh.error();
  std::uint64_t off = 0;
  while (off < data.size()) {
    const auto n = std::min<std::uint64_t>(chunk, data.size() - off);
    auto w = fs.write(ctx, fh.value(), off, subview(data, off, n));
    if (!w.ok()) {
      (void)fs.close(ctx, fh.value());
      return w.error();
    }
    off += w.value();
  }
  return fs.close(ctx, fh.value());
}

Result<Bytes> read_file(FileSystem& fs, const IoCtx& ctx, std::string_view path,
                        std::uint64_t chunk) {
  auto st = fs.stat(ctx, path);
  if (!st.ok()) return st.error();
  auto fh = fs.open(ctx, path, OpenFlags::rd());
  if (!fh.ok()) return fh.error();
  Bytes out;
  out.reserve(st.value().size);
  std::uint64_t off = 0;
  while (off < st.value().size) {
    auto r = fs.read(ctx, fh.value(), off, std::min(chunk, st.value().size - off));
    if (!r.ok()) {
      (void)fs.close(ctx, fh.value());
      return r.error();
    }
    if (r.value().empty()) break;  // concurrent truncate
    off += r.value().size();
    append(out, as_view(r.value()));
  }
  auto c = fs.close(ctx, fh.value());
  if (!c.ok()) return c.error();
  return out;
}

Status mkdir_recursive(FileSystem& fs, const IoCtx& ctx, std::string_view path, Mode mode) {
  const auto comps = path_components(path);
  std::string cur = "/";
  for (const auto& c : comps) {
    cur = join_path(cur, c);
    auto st = fs.mkdir(ctx, cur, mode);
    if (!st.ok() && st.code() != Errc::already_exists) return st;
  }
  return Status::success();
}

Status remove_recursive(FileSystem& fs, const IoCtx& ctx, std::string_view path) {
  auto info = fs.stat(ctx, path);
  if (!info.ok()) return info.error();
  if (info.value().type == FileType::regular) return fs.unlink(ctx, path);
  auto entries = fs.readdir(ctx, path);
  if (!entries.ok()) return entries.error();
  for (const auto& e : entries.value()) {
    auto st = remove_recursive(fs, ctx, join_path(path, e.name));
    if (!st.ok()) return st;
  }
  return fs.rmdir(ctx, path);
}

bool exists(FileSystem& fs, const IoCtx& ctx, std::string_view path) {
  return fs.stat(ctx, path).ok();
}

Result<std::uint64_t> file_size(FileSystem& fs, const IoCtx& ctx, std::string_view path) {
  auto st = fs.stat(ctx, path);
  if (!st.ok()) return st.error();
  return st.value().size;
}

}  // namespace bsc::vfs
