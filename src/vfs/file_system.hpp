// The storage-layer interface of this codebase.
//
// FileSystem is the POSIX-IO-shaped API the paper's applications program
// against. Three backends implement it:
//   * pfs::LustreLikeFs     — strictly POSIX-compliant parallel file system
//   * hdfs::HdfsLikeFs      — write-once-read-many big-data file system
//   * adapter::BlobFs       — POSIX-on-blob adapter (flat namespace below)
// and trace::TracingFs decorates any of them to record the storage-call
// census of §IV.
//
// The operation set is exactly the taxonomy the paper traces: file I/O
// (open/close/read/write/sync/truncate), directory operations
// (mkdir/rmdir/readdir), and "other" metadata (stat/rename/unlink/chmod/
// xattrs).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "vfs/io_ctx.hpp"

namespace bsc::vfs {

using FileHandle = std::uint64_t;
inline constexpr FileHandle kInvalidHandle = 0;

/// POSIX-style open flags (subset the traced applications use).
struct OpenFlags {
  bool read = false;
  bool write = false;
  bool create = false;
  bool truncate = false;
  bool append = false;
  bool exclusive = false;  ///< with create: fail if the file exists

  static OpenFlags rd() { return {.read = true}; }
  static OpenFlags wr() { return {.write = true, .create = true, .truncate = true}; }
  static OpenFlags rw() { return {.read = true, .write = true, .create = true}; }
  static OpenFlags ap() { return {.write = true, .create = true, .append = true}; }
};

/// Permission bits, classic rwxrwxrwx encoding.
using Mode = std::uint32_t;
inline constexpr Mode kDefaultFileMode = 0644;
inline constexpr Mode kDefaultDirMode = 0755;

enum class FileType : std::uint8_t { regular, directory };

struct FileInfo {
  std::string path;
  FileType type = FileType::regular;
  std::uint64_t size = 0;
  Mode mode = kDefaultFileMode;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;
  std::uint64_t inode = 0;
};

struct DirEntry {
  std::string name;
  FileType type = FileType::regular;
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  [[nodiscard]] virtual std::string backend_name() const = 0;

  // --- file operations (the calls that dominate Figs 1-2) ---
  [[nodiscard]] virtual Result<FileHandle> open(const IoCtx& ctx, std::string_view path,
                                                OpenFlags flags,
                                                Mode mode = kDefaultFileMode) = 0;
  [[nodiscard]] virtual Status close(const IoCtx& ctx, FileHandle fh) = 0;
  /// Read up to `len` bytes at `offset`; returns the bytes actually read
  /// (short only at EOF).
  [[nodiscard]] virtual Result<Bytes> read(const IoCtx& ctx, FileHandle fh,
                                           std::uint64_t offset, std::uint64_t len) = 0;
  /// Write `data` at `offset` (or at EOF when the handle is append-mode).
  /// Returns bytes written.
  [[nodiscard]] virtual Result<std::uint64_t> write(const IoCtx& ctx, FileHandle fh,
                                                    std::uint64_t offset, ByteView data) = 0;
  [[nodiscard]] virtual Status sync(const IoCtx& ctx, FileHandle fh) = 0;
  [[nodiscard]] virtual Status truncate(const IoCtx& ctx, std::string_view path,
                                        std::uint64_t new_size) = 0;
  [[nodiscard]] virtual Status unlink(const IoCtx& ctx, std::string_view path) = 0;

  // --- directory operations ---
  [[nodiscard]] virtual Status mkdir(const IoCtx& ctx, std::string_view path,
                                     Mode mode = kDefaultDirMode) = 0;
  [[nodiscard]] virtual Status rmdir(const IoCtx& ctx, std::string_view path) = 0;
  [[nodiscard]] virtual Result<std::vector<DirEntry>> readdir(const IoCtx& ctx,
                                                              std::string_view path) = 0;

  // --- other metadata operations ---
  [[nodiscard]] virtual Result<FileInfo> stat(const IoCtx& ctx, std::string_view path) = 0;
  [[nodiscard]] virtual Status rename(const IoCtx& ctx, std::string_view from,
                                      std::string_view to) = 0;
  [[nodiscard]] virtual Status chmod(const IoCtx& ctx, std::string_view path, Mode mode) = 0;
  [[nodiscard]] virtual Result<std::string> getxattr(const IoCtx& ctx, std::string_view path,
                                                     std::string_view name) = 0;
  [[nodiscard]] virtual Status setxattr(const IoCtx& ctx, std::string_view path,
                                        std::string_view name, std::string_view value) = 0;
};

}  // namespace bsc::vfs
