// Convenience wrappers over the FileSystem interface used by workloads,
// examples and tests: whole-file read/write, recursive mkdir, existence
// checks, and recursive removal.
#pragma once

#include <string>
#include <string_view>

#include "vfs/file_system.hpp"

namespace bsc::vfs {

/// Create the file (truncating) and write `data` in `chunk` sized requests.
[[nodiscard]] Status write_file(FileSystem& fs, const IoCtx& ctx, std::string_view path,
                                ByteView data, std::uint64_t chunk = 1 << 20);

/// Read the whole file in `chunk` sized requests.
[[nodiscard]] Result<Bytes> read_file(FileSystem& fs, const IoCtx& ctx, std::string_view path,
                                      std::uint64_t chunk = 1 << 20);

/// mkdir -p.
[[nodiscard]] Status mkdir_recursive(FileSystem& fs, const IoCtx& ctx, std::string_view path,
                                     Mode mode = kDefaultDirMode);

/// rm -r (directories and files).
[[nodiscard]] Status remove_recursive(FileSystem& fs, const IoCtx& ctx, std::string_view path);

[[nodiscard]] bool exists(FileSystem& fs, const IoCtx& ctx, std::string_view path);

[[nodiscard]] Result<std::uint64_t> file_size(FileSystem& fs, const IoCtx& ctx,
                                              std::string_view path);

}  // namespace bsc::vfs
