// Cross-backend data migration: copy a subtree from any FileSystem to any
// other, preserving contents, modes and xattrs — the adoption path for a
// site replacing its PFS/HDFS deployment with blob storage (§V), and a
// workout for the claim that the POSIX surface maps onto blobs cleanly.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "vfs/file_system.hpp"

namespace bsc::vfs {

struct MigrateStats {
  std::uint64_t files = 0;
  std::uint64_t directories = 0;
  std::uint64_t bytes = 0;
  std::uint64_t xattrs = 0;
  std::vector<std::string> skipped;  ///< paths that could not be copied, with reason
};

struct MigrateOptions {
  std::uint64_t io_chunk = 1 << 20;  ///< copy granularity
  bool preserve_mode = true;
  bool preserve_xattrs = true;
  /// xattr names to carry over (enumeration is not part of the FileSystem
  /// interface, so the caller lists candidates; absent ones are skipped).
  std::vector<std::string> xattr_names = {"user.tag", "user.station", "user.origin"};
  bool continue_on_error = true;  ///< record into skipped instead of aborting
};

/// Recursively copy `src_path` (file or directory) from `src` into
/// `dst_path` on `dst`. Existing destination files are overwritten;
/// existing directories are reused.
Result<MigrateStats> migrate_tree(FileSystem& src, const IoCtx& src_ctx,
                                  std::string_view src_path, FileSystem& dst,
                                  const IoCtx& dst_ctx, std::string_view dst_path,
                                  const MigrateOptions& opts = {});

/// Compare two trees (structure, sizes, contents); returns the first
/// difference found, or success when identical. Directory entry order is
/// normalized; modes are compared only when `compare_modes`.
Status verify_trees_equal(FileSystem& a, const IoCtx& actx, std::string_view a_path,
                          FileSystem& b, const IoCtx& bctx, std::string_view b_path,
                          bool compare_modes = false);

}  // namespace bsc::vfs
