// Per-call I/O context: the simulated agent whose clock the call charges,
// plus POSIX-style credentials for permission checks in src/pfs.
#pragma once

#include <cstdint>

#include "sim/sim_clock.hpp"

namespace bsc::vfs {

struct IoCtx {
  sim::SimAgent* agent = nullptr;  ///< may be null: no time accounting
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;

  [[nodiscard]] SimMicros now() const noexcept { return agent ? agent->now() : 0; }
  void charge(SimMicros us) const noexcept {
    if (agent) agent->charge(us);
  }
};

}  // namespace bsc::vfs
