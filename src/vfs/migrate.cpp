#include "vfs/migrate.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "vfs/helpers.hpp"

namespace bsc::vfs {

namespace {

Status copy_file(FileSystem& src, const IoCtx& sctx, const std::string& spath,
                 FileSystem& dst, const IoCtx& dctx, const std::string& dpath,
                 const MigrateOptions& opts, MigrateStats& stats) {
  auto info = src.stat(sctx, spath);
  if (!info.ok()) return info.error();
  auto in = src.open(sctx, spath, OpenFlags::rd());
  if (!in.ok()) return in.error();
  auto out = dst.open(dctx, dpath, OpenFlags::wr(),
                      opts.preserve_mode ? info.value().mode : kDefaultFileMode);
  if (!out.ok()) {
    (void)src.close(sctx, in.value());
    return out.error();
  }
  std::uint64_t off = 0;
  Status failure = Status::success();
  while (off < info.value().size) {
    const std::uint64_t n = std::min(opts.io_chunk, info.value().size - off);
    auto chunk = src.read(sctx, in.value(), off, n);
    if (!chunk.ok()) {
      failure = chunk.error();
      break;
    }
    if (chunk.value().empty()) break;
    auto w = dst.write(dctx, out.value(), off, as_view(chunk.value()));
    if (!w.ok()) {
      failure = w.error();
      break;
    }
    off += w.value();
  }
  (void)src.close(sctx, in.value());
  auto cs = dst.close(dctx, out.value());
  if (failure.ok() && !cs.ok()) failure = cs;
  if (!failure.ok()) return failure;

  stats.bytes += off;
  ++stats.files;
  if (opts.preserve_xattrs) {
    for (const auto& name : opts.xattr_names) {
      auto v = src.getxattr(sctx, spath, name);
      if (!v.ok()) continue;
      if (dst.setxattr(dctx, dpath, name, v.value()).ok()) ++stats.xattrs;
    }
  }
  return Status::success();
}

Status migrate_recursive(FileSystem& src, const IoCtx& sctx, const std::string& spath,
                         FileSystem& dst, const IoCtx& dctx, const std::string& dpath,
                         const MigrateOptions& opts, MigrateStats& stats) {
  auto info = src.stat(sctx, spath);
  if (!info.ok()) return info.error();
  if (info.value().type == FileType::regular) {
    auto st = copy_file(src, sctx, spath, dst, dctx, dpath, opts, stats);
    if (!st.ok()) {
      if (!opts.continue_on_error) return st;
      stats.skipped.push_back(spath + ": " + st.message());
    }
    return Status::success();
  }
  // Directory: create (or reuse) and recurse.
  if (dpath != "/") {
    auto st = dst.mkdir(dctx, dpath,
                        opts.preserve_mode ? info.value().mode : kDefaultDirMode);
    if (!st.ok() && st.code() != Errc::already_exists) {
      if (!opts.continue_on_error) return st;
      stats.skipped.push_back(dpath + ": " + st.message());
      return Status::success();
    }
    if (st.ok()) ++stats.directories;
  }
  auto entries = src.readdir(sctx, spath);
  if (!entries.ok()) return entries.error();
  for (const auto& e : entries.value()) {
    auto st = migrate_recursive(src, sctx, join_path(spath, e.name), dst, dctx,
                                join_path(dpath, e.name), opts, stats);
    if (!st.ok()) return st;
  }
  return Status::success();
}

}  // namespace

Result<MigrateStats> migrate_tree(FileSystem& src, const IoCtx& src_ctx,
                                  std::string_view src_path, FileSystem& dst,
                                  const IoCtx& dst_ctx, std::string_view dst_path,
                                  const MigrateOptions& opts) {
  MigrateStats stats;
  const std::string dnorm = normalize_path(dst_path);
  // The destination may be nested under directories that don't exist yet.
  if (dnorm != "/") {
    auto pre = mkdir_recursive(dst, dst_ctx, parent_path(dnorm));
    if (!pre.ok()) return pre.error();
  }
  auto st = migrate_recursive(src, src_ctx, normalize_path(src_path), dst, dst_ctx,
                              dnorm, opts, stats);
  if (!st.ok()) return st.error();
  return stats;
}

Status verify_trees_equal(FileSystem& a, const IoCtx& actx, std::string_view a_path,
                          FileSystem& b, const IoCtx& bctx, std::string_view b_path,
                          bool compare_modes) {
  auto ia = a.stat(actx, normalize_path(a_path));
  auto ib = b.stat(bctx, normalize_path(b_path));
  if (!ia.ok() || !ib.ok()) {
    return {Errc::not_found, std::string{a_path} + " vs " + std::string{b_path}};
  }
  if (ia.value().type != ib.value().type) {
    return {Errc::invalid_argument, "type mismatch at " + std::string{a_path}};
  }
  if (compare_modes && ia.value().mode != ib.value().mode) {
    return {Errc::invalid_argument, "mode mismatch at " + std::string{a_path}};
  }
  if (ia.value().type == FileType::regular) {
    if (ia.value().size != ib.value().size) {
      return {Errc::invalid_argument, "size mismatch at " + std::string{a_path}};
    }
    auto ca = read_file(a, actx, a_path);
    auto cb = read_file(b, bctx, b_path);
    if (!ca.ok() || !cb.ok()) return {Errc::io_error, std::string{a_path}};
    if (!equal(as_view(ca.value()), as_view(cb.value()))) {
      return {Errc::invalid_argument, "content mismatch at " + std::string{a_path}};
    }
    return Status::success();
  }
  auto ea = a.readdir(actx, a_path);
  auto eb = b.readdir(bctx, b_path);
  if (!ea.ok() || !eb.ok()) return {Errc::io_error, std::string{a_path}};
  auto names = [](std::vector<DirEntry> v) {
    std::sort(v.begin(), v.end(),
              [](const auto& x, const auto& y) { return x.name < y.name; });
    return v;
  };
  const auto va = names(ea.value());
  const auto vb = names(eb.value());
  if (va.size() != vb.size()) {
    return {Errc::invalid_argument, "entry count mismatch at " + std::string{a_path}};
  }
  for (std::size_t i = 0; i < va.size(); ++i) {
    if (va[i].name != vb[i].name) {
      return {Errc::invalid_argument, "entry name mismatch at " + std::string{a_path}};
    }
    auto st = verify_trees_equal(a, actx, join_path(a_path, va[i].name), b, bctx,
                                 join_path(b_path, vb[i].name), compare_modes);
    if (!st.ok()) return st;
  }
  return Status::success();
}

}  // namespace bsc::vfs
