#include "blob/rebalance.hpp"

#include <algorithm>
#include <set>

#include "blob/store.hpp"
#include "common/hash.hpp"
#include "obs/metrics.hpp"
#include "rpc/wire.hpp"

namespace bsc::blob {

namespace {

/// Registry series for the rebalance subsystem. `rebalance.dual_writes` and
/// `rebalance.chain_dual_writes` are incremented by the client's mutation
/// legs; they are interned here too so a metrics snapshot taken before the
/// first dual write still carries the series.
struct RebalanceMetrics {
  obs::Counter& keys_moved;
  obs::Counter& bytes_moved;
  obs::Counter& dual_writes;
  obs::Counter& batches;
  obs::Counter& verify_recopies;
  obs::ShardedHistogram& migration_us;

  RebalanceMetrics()
      : keys_moved(obs::MetricsRegistry::global().counter("rebalance.keys_moved")),
        bytes_moved(obs::MetricsRegistry::global().counter("rebalance.bytes_moved")),
        dual_writes(obs::MetricsRegistry::global().counter("rebalance.dual_writes")),
        batches(obs::MetricsRegistry::global().counter("rebalance.batches")),
        verify_recopies(
            obs::MetricsRegistry::global().counter("rebalance.verify_recopies")),
        migration_us(
            obs::MetricsRegistry::global().histogram("rebalance.migration_us")) {
    // Gauges published by the store; touching them here pins the series.
    obs::MetricsRegistry::global().gauge("rebalance.epoch");
    obs::MetricsRegistry::global().gauge("rebalance.active");
    obs::MetricsRegistry::global().gauge("rebalance.chain_depth");
    obs::MetricsRegistry::global().counter("rebalance.chain_dual_writes");
  }
};

RebalanceMetrics& rebalance_metrics() {
  static RebalanceMetrics m;
  return m;
}

/// Ascending union of replica sets — the rebalancer's lock set for one key
/// (same ascending-node global order the clients use).
std::vector<std::uint32_t> lock_union(const std::vector<std::uint32_t>& a,
                                      const std::vector<std::uint32_t>& b,
                                      const std::vector<std::uint32_t>& c = {}) {
  std::vector<std::uint32_t> u;
  u.reserve(a.size() + b.size() + c.size());
  u.insert(u.end(), a.begin(), a.end());
  u.insert(u.end(), b.begin(), b.end());
  u.insert(u.end(), c.begin(), c.end());
  std::sort(u.begin(), u.end());
  u.erase(std::unique(u.begin(), u.end()), u.end());
  return u;
}

bool contains(const std::vector<std::uint32_t>& v, std::uint32_t n) {
  return std::find(v.begin(), v.end(), n) != v.end();
}

/// Wire bytes of one migration sub-op, sized exactly like the PR-6 batch
/// path would ship it (one BatchOp write descriptor + payload).
std::uint64_t copy_wire_bytes(const std::string& key, std::uint64_t payload) {
  rpc::BatchOp op;
  op.kind = rpc::BatchOpKind::write;
  op.key = key;
  op.len = payload;
  const std::uint64_t header = rpc::wire_size(op);  // data view empty: header only
  return header + payload;
}

constexpr std::uint64_t kEnvelopeBytes = 32;  ///< batch header + framing

}  // namespace

Rebalancer::Rebalancer(BlobStore& store, std::shared_ptr<MigrationWindow> window,
                       RebalanceConfig cfg)
    : store_(&store), win_(std::move(window)), cfg_(cfg) {
  if (cfg_.batch_keys == 0) cfg_.batch_keys = 1;
  std::shared_lock lk(store_->mig_mu_);
  prog_.keys_total = win_->plan.keys.size();
}

Rebalancer::~Rebalancer() { join(); }

std::uint64_t Rebalancer::pending_count() const {
  std::shared_lock lk(store_->mig_mu_);
  return win_->plan.pending;
}

bool Rebalancer::done() const { return pending_count() == 0; }

void Rebalancer::flip_migrated(MigrationWindow& win, const std::string& key) {
  // Caller still holds the key's stripes on every involved server, so a
  // writer whose placement said "pending" is either serialized before this
  // flip (the copy above included its write) or after it (it re-fetches
  // placement per-op and dual-applied to the new owners anyway).
  std::unique_lock lk(store_->mig_mu_);
  auto it = win.plan.keys.find(key);
  if (it == win.plan.keys.end()) return;
  if (it->second.state != MigrationPlan::KeyState::pending) return;
  it->second.state = MigrationPlan::KeyState::migrated;
  --win.plan.pending;
}

Status Rebalancer::migrate_entry(MigrationWindow& win, const std::string& key,
                                 std::map<std::uint32_t, NodeCharge>* charges,
                                 std::uint64_t* moved_bytes,
                                 bool require_live_targets) {
  BlobStore& st = *store_;
  for (int attempt = 0; attempt < 4; ++attempt) {
    // Snapshot the entry and the chain fold: the fold's authoritative set is
    // where the data lives (an older window's old set while that window is
    // still draining) — the entry's own old set may not hold it yet.
    std::vector<std::uint32_t> auth;
    std::vector<std::uint32_t> targets;
    std::vector<std::uint32_t> involved;
    {
      std::shared_lock lk(st.mig_mu_);
      const auto it = win.plan.keys.find(key);
      if (it == win.plan.keys.end() ||
          it->second.state != MigrationPlan::KeyState::pending) {
        return Status::success();  // raced: already migrated or re-based away
      }
      auth = st.placement_locked(key).replicas;
      for (std::uint32_t t : it->second.new_replicas) {
        if (!contains(it->second.old_replicas, t)) targets.push_back(t);
      }
      involved = lock_union(auth, it->second.old_replicas, it->second.new_replicas);
    }
    std::vector<BlobServer::KeyLock> locks;
    locks.reserve(involved.size());
    for (std::uint32_t n : involved) locks.push_back(st.servers_[n]->lock_key(key));

    // Re-validate under the stripes: another window's finalize (mig_mu_
    // exclusive, no stripes held) may have re-based this entry or shifted
    // the fold between the snapshot and the lock acquisition.
    {
      std::shared_lock lk(st.mig_mu_);
      const auto it = win.plan.keys.find(key);
      if (it == win.plan.keys.end() ||
          it->second.state != MigrationPlan::KeyState::pending) {
        return Status::success();
      }
      std::vector<std::uint32_t> targets_now;
      for (std::uint32_t t : it->second.new_replicas) {
        if (!contains(it->second.old_replicas, t)) targets_now.push_back(t);
      }
      if (st.placement_locked(key).replicas != auth || targets_now != targets) {
        continue;  // stale snapshot — drop the stripes and retry
      }
    }

    // Freshest live source among the fold-authoritative replicas.
    bool found = false;
    bool any_auth_down = false;
    std::uint32_t best = 0;
    Version best_v = 0;
    for (std::uint32_t r : auth) {
      if (st.is_down(r)) {
        any_auth_down = true;
        continue;
      }
      auto v = st.servers_[r]->peek_version(key);
      if (!v.ok()) continue;
      if (!found || v.value() > best_v) {
        found = true;
        best = r;
        best_v = v.value();
      }
    }
    if (!found) {
      if (any_auth_down) {
        // The only holders are down — defer; finalize retries after recovery.
        return {Errc::busy, "no live source for " + key};
      }
      // Removed on every live authoritative replica while pending: nothing to
      // move (the dual-applied remove already cleared any pending-target copy).
      flip_migrated(win, key);
      std::scoped_lock plk(prog_mu_);
      ++prog_.keys_moved;
      return Status::success();
    }

    BlobServer& src = *st.servers_[best];
    auto size = src.peek_size(key);
    if (!size.ok()) {
      flip_migrated(win, key);
      std::scoped_lock plk(prog_mu_);
      ++prog_.keys_moved;
      return Status::success();
    }
    SimMicros src_svc = 0;
    auto data = src.read_locked(key, 0, size.value(), &src_svc);
    if (!data.ok()) return data.error();
    if (charges) {
      auto& c = (*charges)[best];
      c.service_us += src_svc;
    }

    bool deferred_down_target = false;
    for (std::uint32_t t : targets) {
      if (st.is_down(t)) {
        // Mirror hinted handoff: the drain after recovery installs the copy;
        // finalize() re-verifies before the window can close. A hint is
        // volatile, so in require_live_targets mode the entry must stay
        // pending (the caller gets Errc::busy below) — the hinted source
        // remains authoritative until the target actually holds the data.
        if (src.add_hint(t, key)) {
          std::scoped_lock plk(prog_mu_);
          ++prog_.hinted_down_targets;
        }
        if (require_live_targets) deferred_down_target = true;
        continue;
      }
      // Version-exact copy — but never backwards: a dual write that already
      // landed on the pending owner may have advanced it past the source
      // snapshot we hold.
      const Version tv = st.servers_[t]->peek_version(key).value_or(0);
      if (tv >= best_v) {
        std::scoped_lock plk(prog_mu_);
        ++prog_.skipped_fresh;
        continue;
      }
      SimMicros put_svc = 0;
      auto ist = st.servers_[t]->install_copy_locked(key, as_view(data.value().data),
                                                     size.value(), best_v, &put_svc);
      if (!ist.ok()) return ist;
      if (charges) {
        auto& c = (*charges)[t];
        c.wire_bytes += copy_wire_bytes(key, size.value());
        ++c.subs;
        c.service_us += put_svc;
      }
      if (moved_bytes) *moved_bytes += size.value();
      {
        std::scoped_lock plk(prog_mu_);
        ++prog_.copies_installed;
        prog_.bytes_moved += size.value();
      }
      rebalance_metrics().bytes_moved.add(size.value());
    }

    if (deferred_down_target) {
      return {Errc::busy, "target down for " + key + "; hinted, not migrated"};
    }
    flip_migrated(win, key);
    {
      std::scoped_lock plk(prog_mu_);
      ++prog_.keys_moved;
    }
    rebalance_metrics().keys_moved.inc();
    return Status::success();
  }
  // Four straight snapshot invalidations: heavy concurrent cutover churn.
  // The key stays pending; the next step() retries it.
  return {Errc::busy, "placement churned under migration of " + key};
}

void Rebalancer::pace(sim::SimAgent* agent, std::uint64_t batch_bytes) {
  if (agent == nullptr || cfg_.throttle_bytes_per_sec == 0) return;
  const double secs = static_cast<double>(batch_bytes) /
                      static_cast<double>(cfg_.throttle_bytes_per_sec);
  // The horizon is store-shared: every open window's batches push it, so
  // concurrent migrations split one bandwidth budget.
  std::scoped_lock tl(store_->mig_throttle_.mu);
  SimMicros& next = store_->mig_throttle_.next_allowed_us;
  next = std::max(next, agent->now()) + static_cast<SimMicros>(secs * 1e6);
}

Status Rebalancer::step(sim::SimAgent* agent) {
  if (finished() || cancelled()) return Status::success();
  BlobStore& st = *store_;

  // Throttle: the cumulative bytes of every window's previous batches
  // dictate when this one may start.
  if (agent != nullptr && cfg_.throttle_bytes_per_sec != 0) {
    SimMicros horizon = 0;
    {
      std::scoped_lock tl(st.mig_throttle_.mu);
      horizon = st.mig_throttle_.next_allowed_us;
    }
    agent->advance_to(horizon);
  }
  const SimMicros batch_start = agent ? agent->now() : 0;

  // Snapshot the next batch of pending keys (deterministic map order).
  std::vector<std::string> batch;
  {
    std::shared_lock lk(st.mig_mu_);
    if (win_->plan.pending == 0) return Status::success();
    batch.reserve(cfg_.batch_keys);
    for (const auto& [key, entry] : win_->plan.keys) {
      if (entry.state != MigrationPlan::KeyState::pending) continue;
      batch.push_back(key);
      if (batch.size() >= cfg_.batch_keys) break;
    }
  }
  if (batch.empty()) return Status::success();

  std::map<std::uint32_t, NodeCharge> charges;
  std::uint64_t batch_bytes = 0;
  std::uint64_t deferred = 0;
  for (const auto& key : batch) {
    if (cancelled()) break;
    auto s = migrate_entry(*win_, key, &charges, &batch_bytes);
    if (!s.ok()) {
      if (s.code() == Errc::busy) {
        ++deferred;  // stays pending; finalize retries after recovery
        continue;
      }
      return s;
    }
  }
  if (deferred > 0) {
    std::scoped_lock plk(prog_mu_);
    prog_.deferred += deferred;
  }

  // Charge the batch as one envelope per destination (the PR-6 batch-path
  // shape: one queueing trip per server regardless of sub-op count).
  SimMicros batch_done = batch_start;
  for (const auto& [n, c] : charges) {
    if (c.subs == 0 && c.wire_bytes == 0) {
      // Pure source read service: charge the node without an envelope.
      if (agent) {
        st.transport_.call_reliable(*agent, st.servers_[n]->node(), 64, 64,
                                    c.service_us);
        batch_done = std::max(batch_done, agent->now());
      } else {
        st.servers_[n]->node().serve(0, c.service_us);
      }
      continue;
    }
    const std::uint64_t req = kEnvelopeBytes + c.wire_bytes;
    const std::uint64_t resp =
        kEnvelopeBytes + c.subs * rpc::wire_size(rpc::BatchSubStatus{});
    if (agent) {
      st.transport_.call_reliable(*agent, st.servers_[n]->node(), req, resp,
                                  c.service_us);
      batch_done = std::max(batch_done, agent->now());
    } else {
      st.servers_[n]->node().serve(0, c.service_us);
    }
    {
      std::scoped_lock plk(prog_mu_);
      ++prog_.batches;
    }
    rebalance_metrics().batches.inc();
  }
  if (agent) {
    rebalance_metrics().migration_us.add(
        static_cast<std::uint64_t>(std::max<SimMicros>(0, batch_done - batch_start)));
  }
  pace(agent, batch_bytes);
  return Status::success();
}

Status Rebalancer::run_to_completion(sim::SimAgent* agent) {
  std::uint64_t last_pending = ~0ull;
  while (!cancelled()) {
    const std::uint64_t before = pending_count();
    if (before == 0) break;
    if (before == last_pending) break;  // only deferred (down-source) keys left
    last_pending = before;
    auto s = step(agent);
    if (!s.ok()) return s;
  }
  if (cancelled()) return Status::success();  // pause: the window stays open
  return finalize(agent);
}

Status Rebalancer::finalize(sim::SimAgent* agent) {
  if (finished()) return Status::success();
  BlobStore& st = *store_;

  // Drain anything still pending (deferred keys may have live sources now).
  std::uint64_t last_pending = ~0ull;
  while (true) {
    const std::uint64_t before = pending_count();
    if (before == 0) break;
    if (before == last_pending) {
      return {Errc::busy, "unmigrated keys remain (source replicas down)"};
    }
    last_pending = before;
    auto s = step(agent);
    if (!s.ok()) return s;
  }

  // Snapshot the plan for the verify + drop passes.
  std::vector<std::pair<std::string, MigrationPlan::Entry>> entries;
  {
    std::shared_lock lk(st.mig_mu_);
    entries.reserve(win_->plan.keys.size());
    for (const auto& kv : win_->plan.keys) entries.push_back(kv);
  }

  // Verify sweep: every new-only owner must hold the key at (at least) the
  // freshest live fold-authoritative version; a decommission additionally
  // digest-compares contents so the drain is verified, not assumed.
  // Stragglers (e.g. a dual write that missed its pending target) are
  // re-copied here.
  for (const auto& [key, entry] : entries) {
    std::vector<std::uint32_t> auth;
    {
      std::shared_lock lk(st.mig_mu_);
      auth = st.placement_locked(key).replicas;
    }
    const std::vector<std::uint32_t> involved =
        lock_union(auth, entry.old_replicas, entry.new_replicas);
    std::vector<BlobServer::KeyLock> locks;
    locks.reserve(involved.size());
    for (std::uint32_t n : involved) locks.push_back(st.servers_[n]->lock_key(key));

    bool found = false;
    std::uint32_t best = 0;
    Version best_v = 0;
    for (std::uint32_t r : auth) {
      if (st.is_down(r)) continue;
      auto v = st.servers_[r]->peek_version(key);
      if (!v.ok()) continue;
      if (!found || v.value() > best_v) {
        found = true;
        best = r;
        best_v = v.value();
      }
    }
    if (!found) continue;  // removed during the window: nothing to verify

    BlobServer& src = *st.servers_[best];
    auto size = src.peek_size(key);
    if (!size.ok()) continue;
    SimMicros src_svc = 0;
    auto data = src.read_locked(key, 0, size.value(), &src_svc);
    if (!data.ok()) return data.error();
    const std::uint64_t src_digest = content_checksum(as_view(data.value().data));

    for (std::uint32_t t : entry.new_replicas) {
      if (contains(entry.old_replicas, t)) continue;
      if (st.is_down(t)) {
        if (kind() == Kind::decommission) {
          return {Errc::busy,
                  "decommission drain unverified: target " + std::to_string(t) +
                      " is down"};
        }
        continue;  // add: the hint installs it on recovery; resync backstops
      }
      BlobServer& dst = *st.servers_[t];
      const Version dv = dst.peek_version(key).value_or(0);
      bool recopy = dv < best_v;
      if (!recopy && dv == best_v && kind() == Kind::decommission) {
        // Digest comparison against the draining source's copy. A target
        // FRESHER than the source (dual write landed after our snapshot)
        // needs no repair — overwriting it would roll an acked write back.
        auto dsize = dst.peek_size(key);
        SimMicros dsvc = 0;
        auto ddata = dsize.ok() ? dst.read_locked(key, 0, dsize.value(), &dsvc)
                                : Result<ReadOutcome>(dsize.error());
        const bool match = ddata.ok() &&
                           content_checksum(as_view(ddata.value().data)) == src_digest;
        {
          std::scoped_lock plk(prog_mu_);
          ++prog_.digests_checked;
        }
        if (agent) {
          st.transport_.call_reliable(*agent, dst.node(), 64, 72, dsvc);
        }
        recopy = !match;
      }
      if (recopy) {
        SimMicros put_svc = 0;
        auto ist = dst.install_copy_locked(key, as_view(data.value().data),
                                           size.value(), best_v, &put_svc);
        if (!ist.ok()) return ist;
        if (agent) {
          st.transport_.call_reliable(*agent, dst.node(), size.value() + 64, 64,
                                      put_svc);
        } else {
          dst.node().serve(0, put_svc);
        }
        {
          std::scoped_lock plk(prog_mu_);
          ++prog_.verify_recopies;
        }
        rebalance_metrics().verify_recopies.inc();
      }
    }
  }

  // A decommission may not cut over while the leaving node is still
  // AUTHORITATIVE for keys of OLDER open windows (their pending entries'
  // old sets contain it — the sweep below would destroy live copies).
  // Force-complete those entries now, oldest window first: the same copy
  // the owning window's rebalancer would make, just on this window's
  // schedule. Flipping them walks the subject out of every fold.
  if (kind() == Kind::decommission) {
    std::vector<std::pair<std::shared_ptr<MigrationWindow>, std::string>> work;
    {
      std::shared_lock lk(st.mig_mu_);
      for (const auto& w : st.chain_) {
        if (w.get() == win_.get()) break;  // only windows OLDER than this one
        for (const auto& [k, e] : w->plan.keys) {
          if (e.state == MigrationPlan::KeyState::pending &&
              contains(e.old_replicas, subject())) {
            work.emplace_back(w, k);
          }
        }
      }
    }
    std::uint64_t forced_bytes = 0;
    for (const auto& [w, k] : work) {
      // require_live_targets: a force-completed entry may NOT settle for a
      // hint on a down target — flipping it would walk the subject out of
      // the fold and the sweeps below would delete the only durable copy of
      // an acked write. Busy keeps this window open (same verdict the
      // verify sweep gives for this window's own entries); recover the
      // target and call finalize() again.
      auto s = migrate_entry(*w, k, nullptr, &forced_bytes,
                             /*require_live_targets=*/true);
      if (!s.ok()) return s;  // busy: a source or target is down — stay open
    }
  }

  // Cutover: remove this window from the chain and bump the epoch BEFORE
  // dropping stale copies, so a client still holding a pending-window
  // placement fails the stamp check (and re-fetches) rather than reading a
  // replica the drop pass is about to clear. A decommission additionally
  // re-bases the surviving windows' entries: the leaving node is stripped
  // from their dual-write target sets so no fold ever resolves to it again.
  std::uint64_t rebased = 0;
  {
    std::unique_lock lk(st.mig_mu_);
    auto it = std::find_if(st.chain_.begin(), st.chain_.end(),
                           [&](const auto& w) { return w.get() == win_.get(); });
    if (it != st.chain_.end()) st.chain_.erase(it);
    if (kind() == Kind::decommission) {
      for (const auto& w : st.chain_) {
        for (auto& [k, e] : w->plan.keys) {
          (void)k;
          auto ne = std::remove(e.new_replicas.begin(), e.new_replicas.end(),
                                subject());
          if (ne != e.new_replicas.end()) {
            e.new_replicas.erase(ne, e.new_replicas.end());
            ++rebased;
          }
        }
      }
    }
    // Bump BEFORE clearing migrating_: a client that observes the cleared
    // flag takes placement_of's lock-free fast path and must already see the
    // post-cutover epoch on its stamp.
    st.ring_.bump_epoch();
    st.migrating_.store(!st.chain_.empty(), std::memory_order_release);
  }
  if (rebased > 0) {
    std::scoped_lock plk(prog_mu_);
    prog_.rebased_entries += rebased;
  }
  st.publish_epoch();

  // Drop copies nothing places anymore: every node this window's entries
  // ever involved (old or new side) that the post-cutover fold — which
  // still sees the surviving windows — neither lists as authoritative nor
  // as a dual-write target.
  for (const auto& [key, entry] : entries) {
    const Placement p = st.placement_of(key);
    for (std::uint32_t n : lock_union(entry.old_replicas, entry.new_replicas)) {
      if (contains(p.replicas, n) || contains(p.pending, n)) continue;
      if (st.is_down(n)) continue;  // resync's ghost pass cleans it later
      BlobServer& holder = *st.servers_[n];
      SimMicros peek_svc = 0;
      if (!holder.stat(key, &peek_svc).ok()) continue;
      SimMicros rm_svc = 0;
      (void)holder.remove(key, &rm_svc);
      if (agent) {
        st.transport_.call_reliable(*agent, holder.node(), 64, 64,
                                    peek_svc + rm_svc);
      } else {
        holder.node().serve(0, peek_svc + rm_svc);
      }
      std::scoped_lock plk(prog_mu_);
      ++prog_.copies_dropped;
    }
  }

  // A decommissioned server leaves empty: sweep whatever it still holds —
  // except keys an older still-open window's fold still pins to it (its
  // copy there is authoritative until that window migrates the key; that
  // window's own finalize drops it).
  if (kind() == Kind::decommission && !st.is_down(subject())) {
    BlobServer& subj = *st.servers_[subject()];
    SimMicros scan_svc = 0;
    for (const auto& s : subj.scan("", &scan_svc)) {
      const Placement p = st.placement_of(s.key);
      if (contains(p.replicas, subject()) || contains(p.pending, subject())) continue;
      SimMicros rm_svc = 0;
      (void)subj.remove(s.key, &rm_svc);
      std::scoped_lock plk(prog_mu_);
      ++prog_.copies_dropped;
    }
  }

  finished_.store(true, std::memory_order_release);
  return Status::success();
}

Status Rebalancer::abort(sim::SimAgent* agent) {
  if (finished()) return {Errc::busy, "window already finalized"};
  BlobStore& st = *store_;
  cancel();
  join();

  // Snapshot the entries for the cleanup pass below.
  std::vector<std::pair<std::string, MigrationPlan::Entry>> entries;
  {
    std::shared_lock lk(st.mig_mu_);
    entries.reserve(win_->plan.keys.size());
    for (const auto& kv : win_->plan.keys) entries.push_back(kv);
  }

  // Undo the membership delta and remove the window from the chain. Vnode
  // placement depends only on (node id, weight), and open windows have
  // distinct subjects, so re-deriving the surviving windows' ring sequence
  // afterwards reproduces their placements exactly.
  {
    std::unique_lock lk(st.mig_mu_);
    auto it = std::find_if(st.chain_.begin(), st.chain_.end(),
                           [&](const auto& w) { return w.get() == win_.get(); });
    if (it != st.chain_.end()) st.chain_.erase(it);
    if (kind() == Kind::add) {
      if (st.ring_.has_node(subject())) st.ring_.remove_node(subject());
    } else {
      if (!st.ring_.has_node(subject())) st.ring_.add_node(subject(), win_->weight);
    }
    st.migrating_.store(!st.chain_.empty(), std::memory_order_release);
  }
  // Surviving windows' plans were computed against ring states that
  // included the reverted delta — rebuild them against the restored
  // sequence, deriving each entry's state from who actually holds the data.
  st.rebuild_chain_plans();
  st.publish_epoch();

  // Drop the copies this window's migration installed that nothing places
  // anymore (fold-checked: a surviving window may legitimately keep one).
  for (const auto& [key, entry] : entries) {
    const Placement p = st.placement_of(key);
    for (std::uint32_t t : entry.new_replicas) {
      if (contains(entry.old_replicas, t)) continue;
      if (contains(p.replicas, t) || contains(p.pending, t)) continue;
      if (st.is_down(t)) continue;
      BlobServer& holder = *st.servers_[t];
      SimMicros peek_svc = 0;
      if (!holder.stat(key, &peek_svc).ok()) continue;
      SimMicros rm_svc = 0;
      (void)holder.remove(key, &rm_svc);
      if (agent) {
        st.transport_.call_reliable(*agent, holder.node(), 64, 64,
                                    peek_svc + rm_svc);
      } else {
        holder.node().serve(0, peek_svc + rm_svc);
      }
      std::scoped_lock plk(prog_mu_);
      ++prog_.copies_dropped;
    }
  }

  // An aborted joiner leaves empty — it owns no placement on any surviving
  // ring state.
  if (kind() == Kind::add && !st.is_down(subject())) {
    BlobServer& subj = *st.servers_[subject()];
    SimMicros scan_svc = 0;
    for (const auto& s : subj.scan("", &scan_svc)) {
      SimMicros rm_svc = 0;
      (void)subj.remove(s.key, &rm_svc);
      std::scoped_lock plk(prog_mu_);
      ++prog_.copies_dropped;
    }
  }

  finished_.store(true, std::memory_order_release);
  return Status::success();
}

void Rebalancer::start_async() {
  if (thread_.joinable()) return;
  // The async driver charges no SimAgent (wall-clock maintenance); tests
  // that assert simulated timing drive step() inline instead.
  thread_ = std::thread([this] { (void)run_to_completion(nullptr); });
}

void Rebalancer::join() {
  if (thread_.joinable()) thread_.join();
}

RebalanceProgress Rebalancer::progress() const {
  std::scoped_lock lk(prog_mu_);
  return prog_;
}

}  // namespace bsc::blob
