#include "blob/rebalance.hpp"

#include <algorithm>
#include <set>

#include "blob/store.hpp"
#include "common/hash.hpp"
#include "obs/metrics.hpp"
#include "rpc/wire.hpp"

namespace bsc::blob {

namespace {

/// Registry series for the rebalance subsystem. `rebalance.dual_writes` is
/// incremented by the client's mutation legs; it is interned here too so a
/// metrics snapshot taken before the first dual write still carries the
/// series.
struct RebalanceMetrics {
  obs::Counter& keys_moved;
  obs::Counter& bytes_moved;
  obs::Counter& dual_writes;
  obs::Counter& batches;
  obs::Counter& verify_recopies;
  obs::ShardedHistogram& migration_us;

  RebalanceMetrics()
      : keys_moved(obs::MetricsRegistry::global().counter("rebalance.keys_moved")),
        bytes_moved(obs::MetricsRegistry::global().counter("rebalance.bytes_moved")),
        dual_writes(obs::MetricsRegistry::global().counter("rebalance.dual_writes")),
        batches(obs::MetricsRegistry::global().counter("rebalance.batches")),
        verify_recopies(
            obs::MetricsRegistry::global().counter("rebalance.verify_recopies")),
        migration_us(
            obs::MetricsRegistry::global().histogram("rebalance.migration_us")) {
    // Gauges published by the store; touching them here pins the series.
    obs::MetricsRegistry::global().gauge("rebalance.epoch");
    obs::MetricsRegistry::global().gauge("rebalance.active");
  }
};

RebalanceMetrics& rebalance_metrics() {
  static RebalanceMetrics m;
  return m;
}

/// Ascending union of two replica sets — the rebalancer's lock set for one
/// key (same ascending-node global order the clients use).
std::vector<std::uint32_t> lock_union(const std::vector<std::uint32_t>& a,
                                      const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> u;
  u.reserve(a.size() + b.size());
  u.insert(u.end(), a.begin(), a.end());
  u.insert(u.end(), b.begin(), b.end());
  std::sort(u.begin(), u.end());
  u.erase(std::unique(u.begin(), u.end()), u.end());
  return u;
}

bool contains(const std::vector<std::uint32_t>& v, std::uint32_t n) {
  return std::find(v.begin(), v.end(), n) != v.end();
}

/// Wire bytes of one migration sub-op, sized exactly like the PR-6 batch
/// path would ship it (one BatchOp write descriptor + payload).
std::uint64_t copy_wire_bytes(const std::string& key, std::uint64_t payload) {
  rpc::BatchOp op;
  op.kind = rpc::BatchOpKind::write;
  op.key = key;
  op.len = payload;
  const std::uint64_t header = rpc::wire_size(op);  // data view empty: header only
  return header + payload;
}

constexpr std::uint64_t kEnvelopeBytes = 32;  ///< batch header + framing

}  // namespace

Rebalancer::Rebalancer(BlobStore& store, Kind kind, std::uint32_t subject,
                       RebalanceConfig cfg)
    : store_(&store), kind_(kind), subject_(subject), cfg_(cfg) {
  if (cfg_.batch_keys == 0) cfg_.batch_keys = 1;
  std::shared_lock lk(store_->mig_mu_);
  prog_.keys_total = store_->plan_ ? store_->plan_->keys.size() : 0;
}

Rebalancer::~Rebalancer() { join(); }

std::uint64_t Rebalancer::pending_count() const {
  std::shared_lock lk(store_->mig_mu_);
  return store_->plan_ ? store_->plan_->pending : 0;
}

bool Rebalancer::done() const { return pending_count() == 0; }

void Rebalancer::flip_migrated(const std::string& key) {
  // Caller still holds the key's stripes on every involved server, so a
  // writer whose placement said "pending" is either serialized before this
  // flip (the copy above included its write) or after it (it re-fetches
  // placement per-op and dual-applied to the new owners anyway).
  std::unique_lock lk(store_->mig_mu_);
  if (!store_->plan_) return;
  auto it = store_->plan_->keys.find(key);
  if (it == store_->plan_->keys.end()) return;
  if (it->second.state != MigrationPlan::KeyState::pending) return;
  it->second.state = MigrationPlan::KeyState::migrated;
  --store_->plan_->pending;
}

Status Rebalancer::migrate_key(const std::string& key,
                               const MigrationPlan::Entry& entry,
                               std::map<std::uint32_t, NodeCharge>* charges,
                               std::uint64_t* moved_bytes) {
  BlobStore& st = *store_;
  const std::vector<std::uint32_t> involved =
      lock_union(entry.old_replicas, entry.new_replicas);
  std::vector<BlobServer::KeyLock> locks;
  locks.reserve(involved.size());
  for (std::uint32_t n : involved) locks.push_back(st.servers_[n]->lock_key(key));

  // Freshest live source among the OLD (authoritative) replicas.
  bool found = false;
  bool any_old_down = false;
  std::uint32_t best = 0;
  Version best_v = 0;
  for (std::uint32_t r : entry.old_replicas) {
    if (st.is_down(r)) {
      any_old_down = true;
      continue;
    }
    auto v = st.servers_[r]->peek_version(key);
    if (!v.ok()) continue;
    if (!found || v.value() > best_v) {
      found = true;
      best = r;
      best_v = v.value();
    }
  }
  if (!found) {
    if (any_old_down) {
      // The only holders are down — defer; finalize retries after recovery.
      return {Errc::busy, "no live source for " + key};
    }
    // Removed on every live old replica while pending: nothing to move (the
    // dual-applied remove already cleared any pending-target copy).
    flip_migrated(key);
    std::scoped_lock plk(prog_mu_);
    ++prog_.keys_moved;
    return Status::success();
  }

  BlobServer& src = *st.servers_[best];
  auto size = src.peek_size(key);
  if (!size.ok()) {
    flip_migrated(key);
    std::scoped_lock plk(prog_mu_);
    ++prog_.keys_moved;
    return Status::success();
  }
  SimMicros src_svc = 0;
  auto data = src.read_locked(key, 0, size.value(), &src_svc);
  if (!data.ok()) return data.error();
  if (charges) {
    auto& c = (*charges)[best];
    c.service_us += src_svc;
  }

  for (std::uint32_t t : entry.new_replicas) {
    if (contains(entry.old_replicas, t)) continue;  // holds the history already
    if (st.is_down(t)) {
      // Mirror hinted handoff: the drain after recovery installs the copy;
      // finalize() re-verifies before the window can close.
      if (src.add_hint(t, key)) {
        std::scoped_lock plk(prog_mu_);
        ++prog_.hinted_down_targets;
      }
      continue;
    }
    // Version-exact copy — but never backwards: a dual write that already
    // landed on the pending owner may have advanced it past the source
    // snapshot we hold.
    const Version tv = st.servers_[t]->peek_version(key).value_or(0);
    if (tv >= best_v) {
      std::scoped_lock plk(prog_mu_);
      ++prog_.skipped_fresh;
      continue;
    }
    SimMicros put_svc = 0;
    auto ist = st.servers_[t]->install_copy_locked(key, as_view(data.value().data),
                                                   size.value(), best_v, &put_svc);
    if (!ist.ok()) return ist;
    if (charges) {
      auto& c = (*charges)[t];
      c.wire_bytes += copy_wire_bytes(key, size.value());
      ++c.subs;
      c.service_us += put_svc;
    }
    *moved_bytes += size.value();
    {
      std::scoped_lock plk(prog_mu_);
      ++prog_.copies_installed;
      prog_.bytes_moved += size.value();
    }
    rebalance_metrics().bytes_moved.add(size.value());
  }

  flip_migrated(key);
  {
    std::scoped_lock plk(prog_mu_);
    ++prog_.keys_moved;
  }
  rebalance_metrics().keys_moved.inc();
  return Status::success();
}

void Rebalancer::pace(sim::SimAgent* agent, std::uint64_t batch_bytes) {
  if (agent == nullptr || cfg_.throttle_bytes_per_sec == 0) return;
  const double secs = static_cast<double>(batch_bytes) /
                      static_cast<double>(cfg_.throttle_bytes_per_sec);
  next_allowed_us_ = agent->now() + static_cast<SimMicros>(secs * 1e6);
}

Status Rebalancer::step(sim::SimAgent* agent) {
  if (finished() || cancelled()) return Status::success();
  BlobStore& st = *store_;

  // Throttle: the previous batch's bytes dictate when this one may start.
  if (agent != nullptr && cfg_.throttle_bytes_per_sec != 0) {
    agent->advance_to(next_allowed_us_);
  }
  const SimMicros batch_start = agent ? agent->now() : 0;

  // Snapshot the next batch of pending keys (deterministic map order).
  std::vector<std::pair<std::string, MigrationPlan::Entry>> batch;
  {
    std::shared_lock lk(st.mig_mu_);
    if (!st.plan_ || st.plan_->pending == 0) return Status::success();
    batch.reserve(cfg_.batch_keys);
    for (const auto& [key, entry] : st.plan_->keys) {
      if (entry.state != MigrationPlan::KeyState::pending) continue;
      batch.emplace_back(key, entry);
      if (batch.size() >= cfg_.batch_keys) break;
    }
  }
  if (batch.empty()) return Status::success();

  std::map<std::uint32_t, NodeCharge> charges;
  std::uint64_t batch_bytes = 0;
  std::uint64_t deferred = 0;
  for (const auto& [key, entry] : batch) {
    if (cancelled()) break;
    auto s = migrate_key(key, entry, &charges, &batch_bytes);
    if (!s.ok()) {
      if (s.code() == Errc::busy) {
        ++deferred;  // stays pending; finalize retries after recovery
        continue;
      }
      return s;
    }
  }
  if (deferred > 0) {
    std::scoped_lock plk(prog_mu_);
    prog_.deferred += deferred;
  }

  // Charge the batch as one envelope per destination (the PR-6 batch-path
  // shape: one queueing trip per server regardless of sub-op count).
  SimMicros batch_done = batch_start;
  for (const auto& [n, c] : charges) {
    if (c.subs == 0 && c.wire_bytes == 0) {
      // Pure source read service: charge the node without an envelope.
      if (agent) {
        st.transport_.call_reliable(*agent, st.servers_[n]->node(), 64, 64,
                                    c.service_us);
        batch_done = std::max(batch_done, agent->now());
      } else {
        st.servers_[n]->node().serve(0, c.service_us);
      }
      continue;
    }
    const std::uint64_t req = kEnvelopeBytes + c.wire_bytes;
    const std::uint64_t resp =
        kEnvelopeBytes + c.subs * rpc::wire_size(rpc::BatchSubStatus{});
    if (agent) {
      st.transport_.call_reliable(*agent, st.servers_[n]->node(), req, resp,
                                  c.service_us);
      batch_done = std::max(batch_done, agent->now());
    } else {
      st.servers_[n]->node().serve(0, c.service_us);
    }
    {
      std::scoped_lock plk(prog_mu_);
      ++prog_.batches;
    }
    rebalance_metrics().batches.inc();
  }
  if (agent) {
    rebalance_metrics().migration_us.add(
        static_cast<std::uint64_t>(std::max<SimMicros>(0, batch_done - batch_start)));
  }
  pace(agent, batch_bytes);
  return Status::success();
}

Status Rebalancer::run_to_completion(sim::SimAgent* agent) {
  std::uint64_t last_pending = ~0ull;
  while (!cancelled()) {
    const std::uint64_t before = pending_count();
    if (before == 0) break;
    if (before == last_pending) break;  // only deferred (down-source) keys left
    last_pending = before;
    auto s = step(agent);
    if (!s.ok()) return s;
  }
  if (cancelled()) return Status::success();  // pause: the window stays open
  return finalize(agent);
}

Status Rebalancer::finalize(sim::SimAgent* agent) {
  if (finished()) return Status::success();
  BlobStore& st = *store_;

  // Drain anything still pending (deferred keys may have live sources now).
  std::uint64_t last_pending = ~0ull;
  while (true) {
    const std::uint64_t before = pending_count();
    if (before == 0) break;
    if (before == last_pending) {
      return {Errc::busy, "unmigrated keys remain (source replicas down)"};
    }
    last_pending = before;
    auto s = step(agent);
    if (!s.ok()) return s;
  }

  // Snapshot the plan for the verify + drop passes.
  std::vector<std::pair<std::string, MigrationPlan::Entry>> entries;
  {
    std::shared_lock lk(st.mig_mu_);
    if (st.plan_) {
      entries.reserve(st.plan_->keys.size());
      for (const auto& kv : st.plan_->keys) entries.push_back(kv);
    }
  }

  // Verify sweep: every new-only owner must hold the key at (at least) the
  // freshest live old-replica version; a decommission additionally digest-
  // compares contents so the drain is verified, not assumed. Stragglers
  // (e.g. a dual write that missed its pending target) are re-copied here.
  for (const auto& [key, entry] : entries) {
    const std::vector<std::uint32_t> involved =
        lock_union(entry.old_replicas, entry.new_replicas);
    std::vector<BlobServer::KeyLock> locks;
    locks.reserve(involved.size());
    for (std::uint32_t n : involved) locks.push_back(st.servers_[n]->lock_key(key));

    bool found = false;
    std::uint32_t best = 0;
    Version best_v = 0;
    for (std::uint32_t r : entry.old_replicas) {
      if (st.is_down(r)) continue;
      auto v = st.servers_[r]->peek_version(key);
      if (!v.ok()) continue;
      if (!found || v.value() > best_v) {
        found = true;
        best = r;
        best_v = v.value();
      }
    }
    if (!found) continue;  // removed during the window: nothing to verify

    BlobServer& src = *st.servers_[best];
    auto size = src.peek_size(key);
    if (!size.ok()) continue;
    SimMicros src_svc = 0;
    auto data = src.read_locked(key, 0, size.value(), &src_svc);
    if (!data.ok()) return data.error();
    const std::uint64_t src_digest = content_checksum(as_view(data.value().data));

    for (std::uint32_t t : entry.new_replicas) {
      if (contains(entry.old_replicas, t)) continue;
      if (st.is_down(t)) {
        if (kind_ == Kind::decommission) {
          return {Errc::busy,
                  "decommission drain unverified: target " + std::to_string(t) +
                      " is down"};
        }
        continue;  // add: the hint installs it on recovery; resync backstops
      }
      BlobServer& dst = *st.servers_[t];
      bool recopy = dst.peek_version(key).value_or(0) < best_v;
      if (!recopy && kind_ == Kind::decommission) {
        // Digest comparison against the draining source's copy.
        auto dsize = dst.peek_size(key);
        SimMicros dsvc = 0;
        auto ddata = dsize.ok() ? dst.read_locked(key, 0, dsize.value(), &dsvc)
                                : Result<ReadOutcome>(dsize.error());
        const bool match = ddata.ok() && dst.peek_version(key).value_or(0) == best_v &&
                           content_checksum(as_view(ddata.value().data)) == src_digest;
        {
          std::scoped_lock plk(prog_mu_);
          ++prog_.digests_checked;
        }
        if (agent) {
          st.transport_.call_reliable(*agent, dst.node(), 64, 72, dsvc);
        }
        recopy = !match;
      }
      if (recopy) {
        SimMicros put_svc = 0;
        auto ist = dst.install_copy_locked(key, as_view(data.value().data),
                                           size.value(), best_v, &put_svc);
        if (!ist.ok()) return ist;
        if (agent) {
          st.transport_.call_reliable(*agent, dst.node(), size.value() + 64, 64,
                                      put_svc);
        } else {
          dst.node().serve(0, put_svc);
        }
        {
          std::scoped_lock plk(prog_mu_);
          ++prog_.verify_recopies;
        }
        rebalance_metrics().verify_recopies.inc();
      }
    }
  }

  // Cutover: close the window and bump the epoch BEFORE dropping stale
  // copies, so a client still holding a pending-window placement fails the
  // stamp check (and re-fetches the new ring) rather than reading a replica
  // the drop pass is about to clear.
  {
    std::unique_lock lk(st.mig_mu_);
    st.migrating_.store(false, std::memory_order_release);
    st.plan_.reset();
    st.old_ring_.reset();
    st.ring_.bump_epoch();
  }
  st.publish_epoch();
  obs::MetricsRegistry::global().gauge("rebalance.active").set(0);

  // Drop copies from servers that no longer own their keys.
  for (const auto& [key, entry] : entries) {
    for (std::uint32_t n : entry.old_replicas) {
      if (contains(entry.new_replicas, n)) continue;
      if (st.is_down(n)) continue;  // resync's ghost pass cleans it later
      BlobServer& holder = *st.servers_[n];
      SimMicros peek_svc = 0;
      if (!holder.stat(key, &peek_svc).ok()) continue;
      SimMicros rm_svc = 0;
      (void)holder.remove(key, &rm_svc);
      if (agent) {
        st.transport_.call_reliable(*agent, holder.node(), 64, 64,
                                    peek_svc + rm_svc);
      } else {
        holder.node().serve(0, peek_svc + rm_svc);
      }
      std::scoped_lock plk(prog_mu_);
      ++prog_.copies_dropped;
    }
  }

  // A decommissioned server leaves empty: sweep whatever it still holds
  // (ghost copies included — it owns no placement anymore).
  if (kind_ == Kind::decommission && !st.is_down(subject_)) {
    BlobServer& subject = *st.servers_[subject_];
    SimMicros scan_svc = 0;
    for (const auto& s : subject.scan("", &scan_svc)) {
      SimMicros rm_svc = 0;
      (void)subject.remove(s.key, &rm_svc);
      std::scoped_lock plk(prog_mu_);
      ++prog_.copies_dropped;
    }
  }

  finished_.store(true, std::memory_order_release);
  return Status::success();
}

void Rebalancer::start_async() {
  if (thread_.joinable()) return;
  // The async driver charges no SimAgent (wall-clock maintenance); tests
  // that assert simulated timing drive step() inline instead.
  thread_ = std::thread([this] { (void)run_to_completion(nullptr); });
}

void Rebalancer::join() {
  if (thread_.joinable()) thread_.join();
}

RebalanceProgress Rebalancer::progress() const {
  std::scoped_lock lk(prog_mu_);
  return prog_;
}

}  // namespace bsc::blob
