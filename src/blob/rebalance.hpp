// Online cluster rebalancing: the data-movement half of elastic membership.
//
// A membership change (BlobStore::begin_add_server / begin_decommission)
// computes the ownership delta between the pre-change and post-change rings
// and opens a MIGRATION WINDOW: every key whose replica set changed gets a
// plan entry that starts `pending` and flips to `migrated` once its data has
// been copied, version-exact, onto every new owner. Windows form an EPOCH
// CHAIN: several joins and leaves may be open at once, each with its own
// ring-delta and per-key plan, and a key's placement is resolved by folding
// the chain oldest → newest (see BlobStore::placement_of). While a key has
// any pending entry, the old set of its OLDEST pending epoch stays
// authoritative (reads, write acks, quorum) and every newer-epoch new-only
// owner is a DUAL-WRITE target — mutation legs forward to the whole union
// opportunistically, mirroring hinted handoff, so a write landing on either
// side of any copy instant is never lost. One Rebalancer drains each
// window's plan in batches, all of them paced by ONE shared store-level
// throttle; `finalize()` verifies the moved keys (version compare, plus
// content-digest comparison when a decommission is draining a source), cuts
// that epoch out of the chain (re-basing older epochs' entries so they
// target the post-cutover owners — finalize order is free, an inner epoch
// may close before an outer one), bumps the ring epoch, and drops copies no
// remaining epoch still needs.
//
// Pausing is free: every prefix of every migration is a correct system
// state (the windows just stay open), which is what cancel() relies on.
// abort() goes further and REVERTS one epoch's membership delta — the chain
// afterwards is exactly as if that begin_* had never been called.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "common/units.hpp"

namespace bsc::sim {
class SimAgent;
}

namespace bsc::blob {

class BlobStore;

/// Tuning for one rebalance run.
struct RebalanceConfig {
  /// Keys copied per batch envelope (one throttle/pacing decision per batch).
  std::size_t batch_keys = 16;
  /// Simulated migration bandwidth cap in bytes per simulated second;
  /// 0 = unthrottled. Pacing needs a SimAgent (steps without one just
  /// batch). The pacing horizon is SHARED across every open window of the
  /// store: concurrent migrations split one bandwidth budget instead of
  /// each claiming their own.
  std::uint64_t throttle_bytes_per_sec = 0;
};

/// The ownership delta of one membership change. Keys absent from the plan
/// kept their replica set (or were created after the change and placed on
/// the target ring directly).
struct MigrationPlan {
  enum class KeyState : std::uint8_t { pending, migrated };
  struct Entry {
    std::vector<std::uint32_t> old_replicas;  ///< pre-change set (primary first)
    std::vector<std::uint32_t> new_replicas;  ///< post-change set (primary first)
    KeyState state = KeyState::pending;
  };
  /// std::map: deterministic iteration order is what makes fixed-seed chaos
  /// traces identical across sanitizers when churn interleaves with faults.
  std::map<std::string, Entry> keys;
  std::uint64_t pending = 0;  ///< entries still in KeyState::pending
};

/// One epoch of the migration chain: a ring-delta (who joined or left, at
/// what weight) plus the per-key plan that delta produced. Owned by the
/// BlobStore's chain while open; the Rebalancer that drains it holds a
/// shared_ptr so progress stays queryable after the window closes. All plan
/// access is guarded by the store's migration mutex.
struct MigrationWindow {
  enum class Kind : std::uint8_t { add, decommission };

  std::uint64_t id = 0;             ///< chain-unique, monotonically assigned
  std::uint64_t epoch_at_open = 0;  ///< ring epoch right after this delta applied
  Kind kind = Kind::add;
  std::uint32_t subject = 0;  ///< the server joining (add) or leaving (decommission)
  double weight = 1.0;        ///< ring capacity weight of the subject
  /// Drain tuning the window was opened with. Persisted in the membership
  /// record so a drain resumed after a restart keeps the operator's batch
  /// size and bandwidth cap instead of running unthrottled.
  RebalanceConfig cfg;
  MigrationPlan plan;
};

/// Counters of one rebalance run (plain reads are safe after join()/ a
/// single-threaded step loop; the async driver updates them under a mutex).
struct RebalanceProgress {
  std::uint64_t keys_total = 0;        ///< plan entries at window open
  std::uint64_t keys_moved = 0;        ///< entries flipped to migrated
  std::uint64_t copies_installed = 0;  ///< per-target installs (>= keys_moved)
  std::uint64_t bytes_moved = 0;
  std::uint64_t skipped_fresh = 0;     ///< targets already fresh (dual writes)
  std::uint64_t verify_recopies = 0;   ///< finalize() repaired a stale target
  std::uint64_t digests_checked = 0;   ///< decommission content comparisons
  std::uint64_t hinted_down_targets = 0;
  std::uint64_t deferred = 0;          ///< keys postponed (no live source yet)
  std::uint64_t batches = 0;
  std::uint64_t copies_dropped = 0;    ///< stale copies removed at cutover
  std::uint64_t rebased_entries = 0;   ///< older-epoch entries re-targeted by this finalize
};

/// Drives one migration window's data movement. Owned by the BlobStore that
/// created it; any number of Rebalancers (one per open window) may drain
/// concurrently — their batches share the store's pacing horizon, and
/// per-key stripe locks serialize same-key work across windows.
class Rebalancer {
 public:
  using Kind = MigrationWindow::Kind;

  Rebalancer(BlobStore& store, std::shared_ptr<MigrationWindow> window,
             RebalanceConfig cfg);
  ~Rebalancer();

  Rebalancer(const Rebalancer&) = delete;
  Rebalancer& operator=(const Rebalancer&) = delete;

  [[nodiscard]] Kind kind() const noexcept { return win_->kind; }
  /// The server joining (add) or leaving (decommission).
  [[nodiscard]] std::uint32_t subject() const noexcept { return win_->subject; }
  /// Chain-unique id of the window this rebalancer drains.
  [[nodiscard]] std::uint64_t window_id() const noexcept { return win_->id; }
  /// Ring epoch stamped when this window's delta was applied.
  [[nodiscard]] std::uint64_t epoch_at_open() const noexcept {
    return win_->epoch_at_open;
  }
  /// Drain tuning this rebalancer runs with (recovered drains report the
  /// persisted window config, not the defaults).
  [[nodiscard]] const RebalanceConfig& config() const noexcept { return cfg_; }

  /// Migrate up to cfg.batch_keys pending keys as one batched envelope per
  /// (source, target) pair, respecting the shared throughput throttle.
  /// Returns ok with no work left when the plan is drained (check done()).
  Status step(sim::SimAgent* agent = nullptr);

  /// step() until the plan drains (or cancel()), then finalize().
  Status run_to_completion(sim::SimAgent* agent = nullptr);

  /// Verify the moved set (version floor on every new owner; content digest
  /// against the draining source for a decommission), repair stragglers,
  /// then cut THIS window out of the chain: re-base older epochs' entries
  /// onto the post-cutover owners, bump the ring epoch, and drop copies no
  /// remaining epoch still places. Finalize order across the chain is free —
  /// an inner (newer) epoch may finalize before an outer (older) one.
  /// Returns Errc::busy without cutting over when a decommission cannot be
  /// drain-verified (needed target down) — recover the target and call
  /// finalize() again; the window simply stays open.
  Status finalize(sim::SimAgent* agent = nullptr);

  /// Revert this window's membership delta entirely: undo the ring change,
  /// drop the copies the migration installed (nothing any remaining epoch
  /// still places), rebuild the surviving windows' plans against the
  /// restored ring sequence, and close the window. Afterwards the store is
  /// exactly as if this begin_* had never been called. Like begin_*, call
  /// quiescently with respect to OTHER windows' step() drivers.
  Status abort(sim::SimAgent* agent = nullptr);

  /// Request a pause. step()/run_to_completion() return early; the migration
  /// window stays open and correct (dual writes keep flowing). Clear with
  /// resume() or just call run_to_completion() after.
  void cancel() noexcept { cancel_.store(true, std::memory_order_release); }
  void resume() noexcept { cancel_.store(false, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancel_.load(std::memory_order_acquire);
  }

  /// All plan entries migrated (finalize may still be outstanding).
  [[nodiscard]] bool done() const;
  /// finalize() (or abort()) completed and the window is closed.
  [[nodiscard]] bool finished() const noexcept {
    return finished_.load(std::memory_order_acquire);
  }

  /// Drive run_to_completion() on a background thread (join() to wait).
  /// The background run charges no SimAgent; tests that need simulated
  /// timing drive step() inline instead.
  void start_async();
  void join();

  [[nodiscard]] RebalanceProgress progress() const;

 private:
  friend class BlobStore;

  /// Per-envelope accumulation of one batch's traffic toward a server.
  struct NodeCharge {
    std::uint64_t wire_bytes = 0;  ///< encoded sub-op bytes (rpc::wire_size)
    std::uint64_t subs = 0;
    SimMicros service_us = 0;
  };

  /// Copy one pending key of `win` onto that window's new-only owners and
  /// flip its entry to migrated. The source is the freshest live holder of
  /// the key's CURRENT authoritative set (the chain fold — an older epoch's
  /// old set while that epoch is still pending), not the entry's own old
  /// set, which may not hold data yet while an older window drains. Usually
  /// win == *win_; a decommission finalize also runs it against OLDER
  /// windows' entries to force the leaving node out of every fold. Returns
  /// Errc::busy when no live source exists yet (deferred). With
  /// `require_live_targets`, a down target may still be hinted but the entry
  /// is NOT flipped and Errc::busy is returned — the force-complete path
  /// needs this because a hint is volatile: flipping would let the cutover
  /// sweep delete the (possibly only) authoritative copy on the leaving
  /// node while the target holds nothing.
  Status migrate_entry(MigrationWindow& win, const std::string& key,
                       std::map<std::uint32_t, NodeCharge>* charges,
                       std::uint64_t* moved_bytes,
                       bool require_live_targets = false);

  /// Throughput throttle: push the store-shared horizon so cumulative
  /// migration bytes (across every window) stay under the bandwidth cap.
  void pace(sim::SimAgent* agent, std::uint64_t batch_bytes);

  [[nodiscard]] std::uint64_t pending_count() const;
  void flip_migrated(MigrationWindow& win, const std::string& key);

  BlobStore* store_;
  std::shared_ptr<MigrationWindow> win_;
  RebalanceConfig cfg_;

  mutable std::mutex prog_mu_;
  RebalanceProgress prog_;

  std::atomic<bool> cancel_{false};
  std::atomic<bool> finished_{false};

  std::thread thread_;
};

}  // namespace bsc::blob
