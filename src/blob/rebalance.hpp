// Online cluster rebalancing: the data-movement half of elastic membership.
//
// A membership change (BlobStore::begin_add_server / begin_decommission)
// computes the ownership delta between the pre-change and post-change rings
// and opens a MIGRATION WINDOW: every key whose replica set changed gets a
// plan entry that starts `pending` and flips to `migrated` once its data has
// been copied, version-exact, onto every new owner. While a key is pending,
// its OLD replica set stays authoritative (reads, write acks, quorum) and
// the new-only owners are DUAL-WRITE targets — mutation legs forward to them
// opportunistically, mirroring hinted handoff, so a write landing on either
// side of the copy instant is never lost. The Rebalancer drains the plan in
// throttled batches; `finalize()` verifies every moved key (version compare,
// plus content-digest comparison when a decommission is draining a source),
// cuts the window over (epoch bump, stale-copy drop), and for a decommission
// leaves the subject empty and out of the ring.
//
// Pausing is free: every prefix of the migration is a correct system state
// (the window just stays open), which is what cancel() relies on.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "common/units.hpp"

namespace bsc::sim {
class SimAgent;
}

namespace bsc::blob {

class BlobStore;

/// Tuning for one rebalance run.
struct RebalanceConfig {
  /// Keys copied per batch envelope (one throttle/pacing decision per batch).
  std::size_t batch_keys = 16;
  /// Simulated migration bandwidth cap in bytes per simulated second;
  /// 0 = unthrottled. Pacing needs a SimAgent (steps without one just batch).
  std::uint64_t throttle_bytes_per_sec = 0;
};

/// The ownership delta of one membership change. Keys absent from the plan
/// kept their replica set (or were created after the change and placed on
/// the target ring directly).
struct MigrationPlan {
  enum class KeyState : std::uint8_t { pending, migrated };
  struct Entry {
    std::vector<std::uint32_t> old_replicas;  ///< pre-change set (primary first)
    std::vector<std::uint32_t> new_replicas;  ///< post-change set (primary first)
    KeyState state = KeyState::pending;
  };
  /// std::map: deterministic iteration order is what makes fixed-seed chaos
  /// traces identical across sanitizers when churn interleaves with faults.
  std::map<std::string, Entry> keys;
  std::uint64_t pending = 0;  ///< entries still in KeyState::pending
};

/// Counters of one rebalance run (plain reads are safe after join()/ a
/// single-threaded step loop; the async driver updates them under a mutex).
struct RebalanceProgress {
  std::uint64_t keys_total = 0;        ///< plan entries at window open
  std::uint64_t keys_moved = 0;        ///< entries flipped to migrated
  std::uint64_t copies_installed = 0;  ///< per-target installs (>= keys_moved)
  std::uint64_t bytes_moved = 0;
  std::uint64_t skipped_fresh = 0;     ///< targets already fresh (dual writes)
  std::uint64_t verify_recopies = 0;   ///< finalize() repaired a stale target
  std::uint64_t digests_checked = 0;   ///< decommission content comparisons
  std::uint64_t hinted_down_targets = 0;
  std::uint64_t deferred = 0;          ///< keys postponed (no live source yet)
  std::uint64_t batches = 0;
  std::uint64_t copies_dropped = 0;    ///< stale copies removed at cutover
};

/// Drives one membership change's data movement. Owned by the BlobStore that
/// created it; at most one rebalance runs per store at a time.
class Rebalancer {
 public:
  enum class Kind : std::uint8_t { add, decommission };

  Rebalancer(BlobStore& store, Kind kind, std::uint32_t subject, RebalanceConfig cfg);
  ~Rebalancer();

  Rebalancer(const Rebalancer&) = delete;
  Rebalancer& operator=(const Rebalancer&) = delete;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  /// The server joining (add) or leaving (decommission).
  [[nodiscard]] std::uint32_t subject() const noexcept { return subject_; }

  /// Migrate up to cfg.batch_keys pending keys as one batched envelope per
  /// (source, target) pair, respecting the throughput throttle. Returns ok
  /// with no work left when the plan is drained (check done()).
  Status step(sim::SimAgent* agent = nullptr);

  /// step() until the plan drains (or cancel()), then finalize().
  Status run_to_completion(sim::SimAgent* agent = nullptr);

  /// Verify the moved set (version floor on every new owner; content digest
  /// against the draining source for a decommission), repair stragglers,
  /// then cut the window over: clear the plan, bump the ring epoch, drop
  /// copies from servers that no longer own their keys, and (decommission)
  /// drop everything the subject still holds before it leaves the ring.
  /// Returns Errc::busy without cutting over when a decommission cannot be
  /// drain-verified (needed target down) — recover the target and call
  /// finalize() again; the window simply stays open.
  Status finalize(sim::SimAgent* agent = nullptr);

  /// Request a pause. step()/run_to_completion() return early; the migration
  /// window stays open and correct (dual writes keep flowing). Clear with
  /// resume() or just call run_to_completion() after.
  void cancel() noexcept { cancel_.store(true, std::memory_order_release); }
  void resume() noexcept { cancel_.store(false, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancel_.load(std::memory_order_acquire);
  }

  /// All plan entries migrated (finalize may still be outstanding).
  [[nodiscard]] bool done() const;
  /// finalize() completed and the window is closed.
  [[nodiscard]] bool finished() const noexcept {
    return finished_.load(std::memory_order_acquire);
  }

  /// Drive run_to_completion() on a background thread (join() to wait).
  /// The background run charges no SimAgent; tests that need simulated
  /// timing drive step() inline instead.
  void start_async();
  void join();

  [[nodiscard]] RebalanceProgress progress() const;

 private:
  /// Per-envelope accumulation of one batch's traffic toward a server.
  struct NodeCharge {
    std::uint64_t wire_bytes = 0;  ///< encoded sub-op bytes (rpc::wire_size)
    std::uint64_t subs = 0;
    SimMicros service_us = 0;
  };

  /// Copy one pending key onto its new-only owners and flip it to migrated.
  /// Returns Errc::busy when no live source exists yet (deferred).
  Status migrate_key(const std::string& key, const MigrationPlan::Entry& entry,
                     std::map<std::uint32_t, NodeCharge>* charges,
                     std::uint64_t* moved_bytes);

  /// Throughput throttle: delay the next batch so cumulative bytes stay
  /// under cfg.throttle_bytes_per_sec of simulated time.
  void pace(sim::SimAgent* agent, std::uint64_t batch_bytes);

  [[nodiscard]] std::uint64_t pending_count() const;
  void flip_migrated(const std::string& key);

  BlobStore* store_;
  Kind kind_;
  std::uint32_t subject_;
  RebalanceConfig cfg_;

  mutable std::mutex prog_mu_;
  RebalanceProgress prog_;

  std::atomic<bool> cancel_{false};
  std::atomic<bool> finished_{false};
  SimMicros next_allowed_us_ = 0;  ///< throttle horizon (simulated clock)

  std::thread thread_;
};

}  // namespace bsc::blob
