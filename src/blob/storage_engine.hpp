// Per-node log-structured object store.
//
// All writes append to the active segment (sequential on the simulated
// disk — this is the mechanical root of the blob stack's write advantage
// over update-in-place file systems). A per-object extent index maps
// logical object ranges onto segment extents; overwrites supersede extents
// and leave dead bytes behind, which `compact()` reclaims.
//
// The engine is deliberately single-node and unlocked: thread safety and
// distribution live one layer up (blob::BlobServer / blob::BlobStore).
//
// Durability: the in-memory log can be backed by a write-ahead journal
// (persist::Journal). With one attached, every successful mutation is
// appended as a WAL record, `write_checkpoint()` snapshots the object table
// + extent data, and `recover(dir)` rebuilds an engine from the newest
// valid checkpoint plus WAL replay — reproducing logical contents, holes,
// and versions exactly (physical segment layout may differ).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "blob/types.hpp"
#include "persist/checkpoint.hpp"
#include "persist/wal.hpp"

namespace bsc::blob {

struct EngineConfig {
  std::uint64_t segment_bytes = 8ULL << 20;  ///< sealed-segment size
  double compact_dead_ratio = 0.5;           ///< compaction trigger threshold
};

/// Outcome of a write, carrying what the cost model needs.
struct WriteOutcome {
  std::uint64_t bytes = 0;
  bool sequential_disk = true;  ///< log-structured appends always are
  Version version = 0;
};

/// Outcome of a read: data plus the number of distinct extents touched
/// (each non-adjacent extent costs a seek on the simulated disk).
/// `covered` counts the bytes actually backed by extents — the remainder of
/// `data` is zero-filled holes, which throughput accounting must not claim
/// as transferred payload.
struct ReadOutcome {
  Bytes data;
  std::uint32_t extents_touched = 0;
  std::uint64_t covered = 0;
};

/// Outcome of a read_into: like ReadOutcome but the data went straight into
/// the caller's buffer, so only the accounting travels back.
struct ReadIntoOutcome {
  std::uint64_t data_len = 0;   ///< bytes within the object (what a wire reply would carry)
  std::uint64_t covered = 0;    ///< extent-backed bytes among data_len
  std::uint32_t extents_touched = 0;
};

/// Outcome of a span_probe: the digest a quorum vote ships plus the exact
/// accounting a payload read of the same span would have reported, so the
/// caller can charge read-equivalent costs without materializing bytes.
struct SpanProbeOutcome {
  std::uint64_t digest = 0;     ///< fold of the overlapping extent checksums
  std::uint64_t data_len = 0;   ///< bytes a payload read would carry
  std::uint64_t covered = 0;    ///< extent-backed bytes among data_len
  std::uint32_t extents_touched = 0;
};

class StorageEngine {
 public:
  explicit StorageEngine(EngineConfig cfg = {});

  /// Rebuild an engine from a persistence directory: load the newest valid
  /// checkpoint (corrupt ones are skipped), replay WAL records past its
  /// LSN, stop cleanly at a torn/corrupt tail record (the log is truncated
  /// there), and verify every extent checksum before returning. The result
  /// has no journal attached — reattach one to resume logging.
  static Result<StorageEngine> recover(const std::string& dir, EngineConfig cfg = {},
                                       persist::RecoveryReport* report = nullptr);

  /// Attach (or detach with nullptr) a write-ahead journal sink: every
  /// subsequent successful mutation is appended as a WAL record. Non-owning;
  /// the journal must outlive the engine or be detached first.
  void attach_journal(persist::Journal* journal) noexcept { journal_ = journal; }
  [[nodiscard]] persist::Journal* journal() const noexcept { return journal_; }

  /// Snapshot the whole object table + extent data into a checkpoint file
  /// in the attached journal's directory, covering every record assigned so
  /// far. With `prune_wal` the log is reset afterwards (bounded replay, at
  /// the cost of older-checkpoint fallback depth). Returns the covered LSN.
  Result<std::uint64_t> write_checkpoint(bool prune_wal = false);

  /// Create an empty object. Fails with already_exists if present.
  Status create(const std::string& key);

  /// Remove an object and account its extents as dead. The removed object's
  /// version is kept as a *version floor*: recreating the key continues the
  /// version sequence past it instead of restarting at 1. Without the floor,
  /// a replica that was down across a remove+recreate would hold the old
  /// incarnation at a HIGHER version than the live ones, and every
  /// freshest-wins repair path (resync, scrub, hint drain) would resurrect
  /// the deleted data. Floors survive recovery: WAL replay of the remove
  /// record rebuilds them, and checkpoints snapshot outstanding floors.
  Status remove(const std::string& key);

  [[nodiscard]] bool contains(const std::string& key) const;

  /// Random-access write; grows the object as needed. Creates the object
  /// when `create_if_missing` (RADOS semantics), else not_found.
  /// `checksum`, when non-zero, is the caller's precomputed
  /// content_checksum(data): batched clients compute it once and ship it
  /// end-to-end, so each replica stores instead of recomputing (and a wire
  /// corruption is caught later against the *sender's* checksum, which a
  /// server-side recompute would bless). 0 = compute here.
  Result<WriteOutcome> write(const std::string& key, std::uint64_t offset, ByteView data,
                             bool create_if_missing, std::uint64_t checksum = 0);

  /// Random-access read; unwritten holes read as zero; reads past the end
  /// are clipped (empty result at/after EOF).
  Result<ReadOutcome> read(const std::string& key, std::uint64_t offset,
                           std::uint64_t len) const;

  /// Scatter-gather read into a caller-provided buffer: copies the extent
  /// bytes overlapping [offset, offset + dst.size()) directly into `dst`,
  /// skipping the intermediate ReadOutcome allocation+copy of read().
  /// Contract: `dst` is pre-zeroed by the caller — holes and the tail past
  /// the object's length are left untouched (they already read as zero).
  Result<ReadIntoOutcome> read_into(const std::string& key, std::uint64_t offset,
                                    MutableByteView dst) const;

  /// Metadata-proportional span digest for quorum votes: folds the stored
  /// per-extent checksums overlapping [offset, offset + len) — clipped at
  /// the object's length, like a read — into one value, without touching
  /// payload bytes. Replicas that applied the same op stream hold identical
  /// extent layouts, so equal digests mean byte-identical read replies;
  /// layouts that differ over identical bytes only differ in digest, which
  /// costs the client a spurious (but safe) payload refetch. Extents whose
  /// whole-extent checksum was dropped (overwrite splits, truncate trims)
  /// fall back to hashing their overlapping stored bytes.
  [[nodiscard]] Result<SpanProbeOutcome> span_probe(const std::string& key,
                                                    std::uint64_t offset,
                                                    std::uint64_t len) const;

  /// Grow (sparse) or shrink the object.
  Result<Version> truncate(const std::string& key, std::uint64_t new_size);

  /// Raise the object's logical length to at least `min_size` (no data is
  /// written; the gap reads as a hole). Bumps the version. Used to keep a
  /// striped blob's full logical size on its chunk-0 record.
  Result<Version> grow(const std::string& key, std::uint64_t min_size);

  Result<std::uint64_t> size(const std::string& key) const;
  Result<Version> version(const std::string& key) const;

  /// Force the object's version to `v` without touching its contents.
  /// Repair paths (resync, scrub, hint drain, rebalance) use this to install
  /// a copy at the *source's* version: replicas then agree that equal
  /// versions imply equal contents, which is what version-arbitrated quorum
  /// reads rely on. Journaled (WalOp::set_version) so recovery round-trips.
  Status set_version(const std::string& key, Version v);

  /// All keys in lexicographic order, optionally filtered by prefix.
  /// The walk always visits every object (the namespace is flat; prefix
  /// filtering is not an index) — the cost model reflects that.
  [[nodiscard]] std::vector<BlobStat> scan(const std::string& prefix = {}) const;

  [[nodiscard]] std::uint64_t object_count() const noexcept { return objects_.size(); }

  // --- space accounting / compaction ---
  [[nodiscard]] std::uint64_t live_bytes() const noexcept { return live_bytes_; }
  [[nodiscard]] std::uint64_t dead_bytes() const noexcept { return dead_bytes_; }
  [[nodiscard]] std::uint64_t segments_total() const noexcept { return segments_.size(); }
  [[nodiscard]] bool needs_compaction() const noexcept;

  /// Rewrite all live extents into fresh segments; returns bytes reclaimed.
  std::uint64_t compact();

  /// Verify every extent checksum (failure injection tests flip bytes).
  [[nodiscard]] Status verify_integrity() const;

  /// Verify one object's extent checksums.
  [[nodiscard]] Status verify_object(const std::string& key) const;

  /// Test hook: corrupt one byte of stored data for `key` (if any exists).
  bool corrupt_for_testing(const std::string& key);

 private:
  struct Extent {
    std::uint64_t log_off = 0;  ///< logical offset within the object
    std::uint32_t segment = 0;
    std::uint64_t seg_off = 0;
    std::uint64_t len = 0;
    std::uint64_t checksum = 0;
  };

  struct ObjectRec {
    std::uint64_t length = 0;
    Version version = 0;
    std::vector<Extent> extents;  ///< sorted by log_off, non-overlapping
  };

  /// Append raw data to the log; returns (segment, seg_off).
  std::pair<std::uint32_t, std::uint64_t> append_to_log(ByteView data);

  /// Account `n` bytes of `segment` dead (live_bytes_/dead_bytes_/per-segment
  /// live count) and recycle the slot if the segment is now fully dead.
  void retire_bytes(std::uint32_t segment, std::uint64_t n);

  /// If `segment` is sealed, non-empty and fully dead, clear its buffer and
  /// put the slot on the free list so the next sealed-segment transition
  /// reuses it (warm pages) instead of faulting a fresh allocation.
  void maybe_recycle(std::uint32_t segment);

  /// Replace [off, off+len) of the object's extent list with a new extent.
  void supersede_range(ObjectRec& rec, std::uint64_t off, std::uint64_t len);

  /// Append a record to the attached journal (no-op without one).
  Status journal_append(persist::WalRecord rec);

  /// Recovery: install one checkpointed object wholesale (extents appended
  /// to the log, length/version restored verbatim).
  Status restore_object(const persist::CheckpointObject& obj);

  /// Consume the version floor a prior remove left for `key` (0 if none):
  /// the recreated object's version sequence starts above it.
  Version take_floor(const std::string& key);

  EngineConfig cfg_;
  std::map<std::string, ObjectRec> objects_;
  std::map<std::string, Version> removed_floors_;  ///< last version of removed keys
  std::vector<Bytes> segments_;
  std::uint32_t active_ = 0;                ///< index of the open (append) segment
  std::vector<std::uint64_t> seg_live_;     ///< live bytes per segment slot
  std::vector<std::uint32_t> free_slots_;   ///< fully-dead slots ready for reuse
  /// Slots beyond this many on the free list drop their buffer memory (the
  /// slot itself is still reused, it just re-reserves on next open).
  static constexpr std::size_t kWarmSlots = 8;
  std::uint64_t live_bytes_ = 0;
  std::uint64_t dead_bytes_ = 0;
  persist::Journal* journal_ = nullptr;
};

}  // namespace bsc::blob
