#include "blob/storage_engine.hpp"

#include <algorithm>
#include <filesystem>

#include "common/hash.hpp"
#include "obs/metrics.hpp"
#include "persist/fault_file.hpp"

namespace bsc::blob {

namespace {
/// Checkpoint key prefix marking a version-floor entry (ASCII "record
/// separator" — never the first byte of a real engine key, which is either
/// an application key or an application key plus a chunk suffix).
constexpr char kFloorMarker = '\x1e';

/// Process-wide engine op counts: every StorageEngine instance (one per
/// server) publishes into the same aggregate series.
struct EngineMetrics {
  obs::Counter& creates;
  obs::Counter& removes;
  obs::Counter& writes;
  obs::Counter& reads;
  obs::Counter& truncates;
  obs::Counter& grows;
  obs::Counter& bytes_written;
  obs::Counter& bytes_read;
  obs::Counter& compactions;
};

EngineMetrics& engine_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static EngineMetrics m{
      reg.counter("engine.op.create"),    reg.counter("engine.op.remove"),
      reg.counter("engine.op.write"),     reg.counter("engine.op.read"),
      reg.counter("engine.op.truncate"),  reg.counter("engine.op.grow"),
      reg.counter("engine.bytes_written"), reg.counter("engine.bytes_read"),
      reg.counter("engine.compactions")};
  return m;
}
}  // namespace

StorageEngine::StorageEngine(EngineConfig cfg) : cfg_(cfg) {
  segments_.emplace_back();  // active segment
  seg_live_.push_back(0);
}

Status StorageEngine::journal_append(persist::WalRecord rec) {
  if (!journal_) return Status::success();
  // The in-memory apply already happened; a failed append means the journal
  // is behind the engine, which the caller must see as an op failure.
  return journal_->append(std::move(rec));
}

Version StorageEngine::take_floor(const std::string& key) {
  auto it = removed_floors_.find(key);
  if (it == removed_floors_.end()) return 0;
  const Version v = it->second;
  removed_floors_.erase(it);
  return v;
}

Status StorageEngine::create(const std::string& key) {
  if (key.empty()) return {Errc::invalid_argument, "empty blob key"};
  auto [it, inserted] = objects_.try_emplace(key);
  if (!inserted) return {Errc::already_exists, key};
  it->second.version = take_floor(key) + 1;
  engine_metrics().creates.inc();
  return journal_append({.op = persist::WalOp::create, .key = key});
}

Status StorageEngine::remove(const std::string& key) {
  auto it = objects_.find(key);
  if (it == objects_.end()) return {Errc::not_found, key};
  // Keep the dead object's version as a floor so a recreation continues the
  // sequence — see the header for why freshest-wins repair depends on this.
  removed_floors_[key] = it->second.version;
  for (const auto& e : it->second.extents) retire_bytes(e.segment, e.len);
  objects_.erase(it);
  engine_metrics().removes.inc();
  return journal_append({.op = persist::WalOp::remove, .key = key});
}

bool StorageEngine::contains(const std::string& key) const {
  return objects_.count(key) != 0;
}

std::pair<std::uint32_t, std::uint64_t> StorageEngine::append_to_log(ByteView data) {
  if (segments_[active_].size() + data.size() > cfg_.segment_bytes &&
      !segments_[active_].empty()) {
    // Seal the active segment and open a fresh one. Prefer a recycled
    // fully-dead slot: its buffer's pages are already faulted in, and cold
    // first-touch faults — not the copy itself — dominate append cost on a
    // log that only ever grows (steady-state overwrite workloads retire
    // whole segments continuously).
    const std::uint32_t sealed = active_;
    if (!free_slots_.empty()) {
      active_ = free_slots_.back();
      free_slots_.pop_back();
    } else {
      segments_.emplace_back();
      seg_live_.push_back(0);
      active_ = static_cast<std::uint32_t>(segments_.size() - 1);
    }
    maybe_recycle(sealed);  // a sealed segment can already be fully dead
  }
  Bytes& seg = segments_[active_];
  if (seg.empty() && data.size() >= (64u << 10) && data.size() < cfg_.segment_bytes) {
    // Large-write workloads fill the segment in a handful of appends;
    // reserving the full segment up front avoids the doubling reallocations
    // (and their copy passes) on the hot write path. Small-object engines
    // never trigger this, so they keep their proportional footprint.
    seg.reserve(cfg_.segment_bytes);
  }
  const std::uint64_t seg_off = seg.size();
  append(seg, data);
  seg_live_[active_] += data.size();
  return {active_, seg_off};
}

void StorageEngine::retire_bytes(std::uint32_t segment, std::uint64_t n) {
  live_bytes_ -= n;
  dead_bytes_ += n;
  seg_live_[segment] -= n;
  maybe_recycle(segment);
}

void StorageEngine::maybe_recycle(std::uint32_t segment) {
  if (segment == active_ || seg_live_[segment] != 0 || segments_[segment].empty()) {
    return;
  }
  // Every byte in the segment is dead: no live extent references it, so the
  // buffer can be reused wholesale. clear() keeps the capacity (warm pages);
  // past kWarmSlots the memory is returned and only the slot is recycled.
  segments_[segment].clear();
  if (free_slots_.size() >= kWarmSlots) Bytes().swap(segments_[segment]);
  free_slots_.push_back(segment);
}

void StorageEngine::supersede_range(ObjectRec& rec, std::uint64_t off, std::uint64_t len) {
  const std::uint64_t end = off + len;
  std::vector<Extent> kept;
  kept.reserve(rec.extents.size() + 2);
  for (const Extent& e : rec.extents) {
    const std::uint64_t e_end = e.log_off + e.len;
    if (e_end <= off || e.log_off >= end) {
      kept.push_back(e);
      continue;
    }
    // Overlap: keep the non-overlapping left/right slices, kill the middle.
    std::uint64_t killed = std::min(e_end, end) - std::max(e.log_off, off);
    retire_bytes(e.segment, killed);
    if (e.log_off < off) {
      Extent left = e;
      left.len = off - e.log_off;
      left.checksum = 0;  // partial extents lose their whole-extent checksum
      kept.push_back(left);
    }
    if (e_end > end) {
      Extent right = e;
      const std::uint64_t skip = end - e.log_off;
      right.log_off = end;
      right.seg_off = e.seg_off + skip;
      right.len = e_end - end;
      right.checksum = 0;
      kept.push_back(right);
    }
  }
  rec.extents = std::move(kept);
}

Result<WriteOutcome> StorageEngine::write(const std::string& key, std::uint64_t offset,
                                          ByteView data, bool create_if_missing,
                                          std::uint64_t checksum) {
  if (key.empty()) return {Errc::invalid_argument, "empty blob key"};
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    if (!create_if_missing) return {Errc::not_found, key};
    it = objects_.try_emplace(key).first;
    it->second.version = take_floor(key);  // ++ below lands at floor + 1
  }
  ObjectRec& rec = it->second;
  if (!data.empty()) {
    // In-place fast path: a write that exactly replaces one existing extent
    // overwrites its segment bytes directly. Extents never overlap, so an
    // exact match means no other extent touches the range — no supersede or
    // append churn, no dead-byte growth, and under steady-state full-chunk
    // overwrites (the striped-write pattern) the destination stays
    // cache-warm instead of streaming into a fresh cold slot every round.
    bool in_place = false;
    for (Extent& e : rec.extents) {
      if (e.log_off > offset) break;  // sorted by log_off: no match possible
      if (e.log_off == offset && e.len == data.size()) {
        Bytes& seg = segments_[e.segment];
        std::copy(data.begin(), data.end(),
                  seg.begin() + static_cast<std::ptrdiff_t>(e.seg_off));
        e.checksum = checksum != 0 ? checksum : content_checksum(data);
        in_place = true;
        break;
      }
    }
    if (!in_place) {
      supersede_range(rec, offset, data.size());
      auto [seg, seg_off] = append_to_log(data);
      Extent e{.log_off = offset, .segment = seg, .seg_off = seg_off,
               .len = data.size(),
               .checksum = checksum != 0 ? checksum : content_checksum(data)};
      auto pos = std::lower_bound(rec.extents.begin(), rec.extents.end(), e,
                                  [](const Extent& a, const Extent& b) {
                                    return a.log_off < b.log_off;
                                  });
      rec.extents.insert(pos, e);
      live_bytes_ += data.size();
    }
  }
  rec.length = std::max(rec.length, offset + data.size());
  ++rec.version;
  if (journal_ != nullptr) {
    // The WAL record owns a copy of the payload; constructing it with no
    // journal attached would be a dead full-payload copy on every write.
    auto jst = journal_append({.op = persist::WalOp::write,
                               .key = key,
                               .offset = offset,
                               .create_if_missing = create_if_missing,
                               .data = Bytes(data.begin(), data.end())});
    if (!jst.ok()) return jst.error();
  }
  engine_metrics().writes.inc();
  engine_metrics().bytes_written.add(data.size());
  return WriteOutcome{.bytes = data.size(), .sequential_disk = true,
                      .version = rec.version};
}

Result<ReadOutcome> StorageEngine::read(const std::string& key, std::uint64_t offset,
                                        std::uint64_t len) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) return {Errc::not_found, key};
  const ObjectRec& rec = it->second;
  if (offset >= rec.length) return ReadOutcome{};
  len = std::min(len, rec.length - offset);
  ReadOutcome out;
  out.data.assign(len, std::byte{0});  // holes read as zero
  const std::uint64_t end = offset + len;
  for (const Extent& e : rec.extents) {
    const std::uint64_t e_end = e.log_off + e.len;
    if (e_end <= offset || e.log_off >= end) continue;
    const std::uint64_t lo = std::max(e.log_off, offset);
    const std::uint64_t hi = std::min(e_end, end);
    const Bytes& seg = segments_[e.segment];
    std::copy_n(seg.begin() + static_cast<std::ptrdiff_t>(e.seg_off + (lo - e.log_off)),
                hi - lo, out.data.begin() + static_cast<std::ptrdiff_t>(lo - offset));
    out.covered += hi - lo;
    ++out.extents_touched;
  }
  engine_metrics().reads.inc();
  engine_metrics().bytes_read.add(out.data.size());
  return out;
}

Result<ReadIntoOutcome> StorageEngine::read_into(const std::string& key,
                                                 std::uint64_t offset,
                                                 MutableByteView dst) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) return {Errc::not_found, key};
  const ObjectRec& rec = it->second;
  ReadIntoOutcome out;
  if (offset >= rec.length || dst.empty()) return out;
  out.data_len = std::min<std::uint64_t>(dst.size(), rec.length - offset);
  const std::uint64_t end = offset + out.data_len;
  for (const Extent& e : rec.extents) {
    const std::uint64_t e_end = e.log_off + e.len;
    if (e_end <= offset || e.log_off >= end) continue;
    const std::uint64_t lo = std::max(e.log_off, offset);
    const std::uint64_t hi = std::min(e_end, end);
    const Bytes& seg = segments_[e.segment];
    std::copy_n(seg.begin() + static_cast<std::ptrdiff_t>(e.seg_off + (lo - e.log_off)),
                hi - lo, dst.begin() + static_cast<std::ptrdiff_t>(lo - offset));
    out.covered += hi - lo;
    ++out.extents_touched;
  }
  engine_metrics().reads.inc();
  engine_metrics().bytes_read.add(out.data_len);
  return out;
}

Result<SpanProbeOutcome> StorageEngine::span_probe(const std::string& key,
                                                   std::uint64_t offset,
                                                   std::uint64_t len) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) return {Errc::not_found, key};
  const ObjectRec& rec = it->second;
  SpanProbeOutcome out;
  out.digest = 0x9d5c0a7c3f4e1b27ULL;  // nonzero seed: 0 means "no digest" on the wire
  if (offset >= rec.length || len == 0) return out;
  out.data_len = std::min(len, rec.length - offset);
  const std::uint64_t end = offset + out.data_len;
  for (const Extent& e : rec.extents) {
    const std::uint64_t e_end = e.log_off + e.len;
    if (e_end <= offset || e.log_off >= end) continue;
    const std::uint64_t lo = std::max(e.log_off, offset);
    const std::uint64_t hi = std::min(e_end, end);
    // The fold pins the window's position in the span, its position inside
    // the extent, and the whole-extent (length, checksum): equal tuples mean
    // the window covers the same bytes. Split/trimmed extents dropped their
    // checksum (0), so hash their overlapping stored bytes instead.
    std::uint64_t content = e.checksum;
    if (content == 0) {
      const Bytes& seg = segments_[e.segment];
      content = content_checksum(
          subview(as_view(seg), e.seg_off + (lo - e.log_off), hi - lo));
    }
    out.digest = hash_combine(out.digest, lo - offset);
    out.digest = hash_combine(out.digest, hi - lo);
    out.digest = hash_combine(out.digest, lo - e.log_off);
    out.digest = hash_combine(out.digest, e.len);
    out.digest = hash_combine(out.digest, content);
    out.covered += hi - lo;
    ++out.extents_touched;
  }
  return out;
}

Result<Version> StorageEngine::truncate(const std::string& key, std::uint64_t new_size) {
  auto it = objects_.find(key);
  if (it == objects_.end()) return {Errc::not_found, key};
  ObjectRec& rec = it->second;
  if (new_size < rec.length) {
    // Drop extents fully past the new end; trim any extent straddling it.
    std::vector<Extent> kept;
    for (const Extent& e : rec.extents) {
      if (e.log_off >= new_size) {
        retire_bytes(e.segment, e.len);
        continue;
      }
      if (e.log_off + e.len > new_size) {
        Extent trimmed = e;
        const std::uint64_t cut = e.log_off + e.len - new_size;
        trimmed.len -= cut;
        trimmed.checksum = 0;
        retire_bytes(e.segment, cut);
        kept.push_back(trimmed);
      } else {
        kept.push_back(e);
      }
    }
    rec.extents = std::move(kept);
  }
  rec.length = new_size;
  ++rec.version;
  auto jst = journal_append({.op = persist::WalOp::truncate, .key = key, .size = new_size});
  if (!jst.ok()) return jst.error();
  engine_metrics().truncates.inc();
  return rec.version;
}

Result<Version> StorageEngine::grow(const std::string& key, std::uint64_t min_size) {
  auto it = objects_.find(key);
  if (it == objects_.end()) return {Errc::not_found, key};
  ObjectRec& rec = it->second;
  rec.length = std::max(rec.length, min_size);
  ++rec.version;
  auto jst = journal_append({.op = persist::WalOp::grow, .key = key, .size = min_size});
  if (!jst.ok()) return jst.error();
  engine_metrics().grows.inc();
  return rec.version;
}

Result<std::uint64_t> StorageEngine::size(const std::string& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) return {Errc::not_found, key};
  return it->second.length;
}

Result<Version> StorageEngine::version(const std::string& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) return {Errc::not_found, key};
  return it->second.version;
}

Status StorageEngine::set_version(const std::string& key, Version v) {
  auto it = objects_.find(key);
  if (it == objects_.end()) return {Errc::not_found, key};
  it->second.version = v;
  // The version rides in the `size` field — set_version carries no payload.
  return journal_append({.op = persist::WalOp::set_version, .key = key, .size = v});
}

std::vector<BlobStat> StorageEngine::scan(const std::string& prefix) const {
  std::vector<BlobStat> out;
  for (const auto& [key, rec] : objects_) {
    if (!prefix.empty() && key.compare(0, prefix.size(), prefix) != 0) continue;
    out.push_back({key, rec.length, rec.version});
  }
  return out;
}

bool StorageEngine::needs_compaction() const noexcept {
  const std::uint64_t total = live_bytes_ + dead_bytes_;
  return total > 0 &&
         static_cast<double>(dead_bytes_) / static_cast<double>(total) >
             cfg_.compact_dead_ratio;
}

std::uint64_t StorageEngine::compact() {
  const std::uint64_t reclaimed = dead_bytes_;
  std::vector<Bytes> fresh;
  fresh.emplace_back();
  auto fresh_append = [&](ByteView data) -> std::pair<std::uint32_t, std::uint64_t> {
    if (fresh.back().size() + data.size() > cfg_.segment_bytes && !fresh.back().empty()) {
      fresh.emplace_back();
    }
    Bytes& seg = fresh.back();
    const std::uint64_t off = seg.size();
    append(seg, data);
    return {static_cast<std::uint32_t>(fresh.size() - 1), off};
  };
  for (auto& [key, rec] : objects_) {
    for (Extent& e : rec.extents) {
      const Bytes& seg = segments_[e.segment];
      ByteView data = subview(as_view(seg), e.seg_off, e.len);
      auto [ns, noff] = fresh_append(data);
      e.segment = ns;
      e.seg_off = noff;
      e.checksum = content_checksum(data);
    }
  }
  segments_ = std::move(fresh);
  seg_live_.assign(segments_.size(), 0);
  for (std::size_t s = 0; s < segments_.size(); ++s) seg_live_[s] = segments_[s].size();
  free_slots_.clear();
  active_ = static_cast<std::uint32_t>(segments_.size() - 1);
  dead_bytes_ = 0;
  engine_metrics().compactions.inc();
  return reclaimed;
}

Status StorageEngine::verify_integrity() const {
  for (const auto& [key, rec] : objects_) {
    auto st = verify_object(key);
    if (!st.ok()) return st;
  }
  return Status::success();
}

Status StorageEngine::verify_object(const std::string& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) return {Errc::not_found, key};
  for (const Extent& e : it->second.extents) {
    if (e.checksum == 0) continue;  // partial extents: checksum dropped
    const Bytes& seg = segments_[e.segment];
    if (e.seg_off + e.len > seg.size()) {
      return {Errc::io_error, "extent past segment end: " + key};
    }
    if (content_checksum(subview(as_view(seg), e.seg_off, e.len)) != e.checksum) {
      return {Errc::io_error, "checksum mismatch: " + key};
    }
  }
  return Status::success();
}

Result<std::uint64_t> StorageEngine::write_checkpoint(bool prune_wal) {
  if (!journal_) return {Errc::invalid_argument, "no journal attached"};
  // Covers every record assigned so far — including ones still sitting in
  // the group-commit buffer, since the in-memory state already reflects
  // them and the caller's locking forbids concurrent appends.
  const std::uint64_t lsn = journal_->last_assigned_lsn();
  std::vector<persist::CheckpointObject> objs;
  objs.reserve(objects_.size());
  for (const auto& [key, rec] : objects_) {
    persist::CheckpointObject obj;
    obj.key = key;
    obj.length = rec.length;
    obj.version = rec.version;
    obj.runs.reserve(rec.extents.size());
    for (const Extent& e : rec.extents) {
      persist::CheckpointRun run;
      run.log_off = e.log_off;
      const ByteView data = subview(as_view(segments_[e.segment]), e.seg_off, e.len);
      run.data.assign(data.begin(), data.end());
      // Partial extents carry checksum 0 in the index; the snapshot always
      // records a real one so recovery can validate every run.
      run.checksum = content_checksum(data);
      obj.runs.push_back(std::move(run));
    }
    objs.push_back(std::move(obj));
  }
  // Outstanding version floors ride along as marker entries (key prefixed
  // with kFloorMarker, version = floor, no data). Floors and live objects
  // are disjoint — creation consumes the floor — so no key appears twice.
  for (const auto& [key, floor] : removed_floors_) {
    persist::CheckpointObject obj;
    obj.key = std::string(1, kFloorMarker) + key;
    obj.version = floor;
    objs.push_back(std::move(obj));
  }
  auto st = persist::write_checkpoint(journal_->dir(), lsn, objs);
  if (!st.ok()) return st.error();
  if (prune_wal) {
    auto ts = journal_->truncate_log();
    if (!ts.ok()) return ts.error();
  }
  return lsn;
}

Status StorageEngine::restore_object(const persist::CheckpointObject& obj) {
  if (obj.key.empty()) return {Errc::io_error, "checkpoint object with empty key"};
  if (obj.key[0] == kFloorMarker) {
    removed_floors_[obj.key.substr(1)] = obj.version;
    return Status::success();
  }
  auto [it, inserted] = objects_.try_emplace(obj.key);
  if (!inserted) return {Errc::io_error, "duplicate checkpoint object: " + obj.key};
  ObjectRec& rec = it->second;
  rec.length = obj.length;
  rec.version = obj.version;
  rec.extents.reserve(obj.runs.size());
  std::uint64_t prev_end = 0;
  for (const persist::CheckpointRun& run : obj.runs) {
    if (run.log_off < prev_end || run.log_off + run.data.size() > obj.length) {
      objects_.erase(it);
      return {Errc::io_error, "checkpoint runs out of order: " + obj.key};
    }
    if (content_checksum(as_view(run.data)) != run.checksum) {
      objects_.erase(it);
      return {Errc::io_error, "checkpoint run checksum mismatch: " + obj.key};
    }
    prev_end = run.log_off + run.data.size();
    auto [seg, seg_off] = append_to_log(as_view(run.data));
    rec.extents.push_back({.log_off = run.log_off, .segment = seg, .seg_off = seg_off,
                           .len = run.data.size(), .checksum = run.checksum});
    live_bytes_ += run.data.size();
  }
  return Status::success();
}

Result<StorageEngine> StorageEngine::recover(const std::string& dir, EngineConfig cfg,
                                             persist::RecoveryReport* report) {
  StorageEngine e(cfg);
  persist::RecoveryReport rep;

  persist::CheckpointState ckpt = persist::load_newest_checkpoint(dir);
  rep.checkpoint_lsn = ckpt.found ? ckpt.lsn : 0;
  rep.checkpoints_skipped = ckpt.skipped;
  for (const auto& obj : ckpt.objects) {
    auto st = e.restore_object(obj);
    if (!st.ok()) return st.error();
  }

  persist::WalScanResult scan = persist::scan_wal(persist::wal_path(dir));
  rep.tail_torn = scan.tail_torn;
  rep.tail_reason = scan.tail_reason;
  rep.wal_valid_bytes = scan.valid_bytes;
  for (const persist::WalRecord& r : scan.records) {
    if (ckpt.found && r.lsn <= ckpt.lsn) {
      ++rep.records_skipped;
      continue;
    }
    Status st;
    switch (r.op) {
      case persist::WalOp::create:
        st = e.create(r.key);
        break;
      case persist::WalOp::remove:
        st = e.remove(r.key);
        break;
      case persist::WalOp::write: {
        auto w = e.write(r.key, r.offset, as_view(r.data), r.create_if_missing);
        st = w.ok() ? Status::success() : Status(w.error());
        break;
      }
      case persist::WalOp::truncate: {
        auto t = e.truncate(r.key, r.size);
        st = t.ok() ? Status::success() : Status(t.error());
        break;
      }
      case persist::WalOp::grow: {
        auto g = e.grow(r.key, r.size);
        st = g.ok() ? Status::success() : Status(g.error());
        break;
      }
      case persist::WalOp::set_version:
        st = e.set_version(r.key, r.size);
        break;
    }
    if (!st.ok()) {
      return Error{Errc::io_error,
                   "wal replay failed at lsn " + std::to_string(r.lsn) + ": " + st.message()};
    }
    ++rep.records_replayed;
  }

  if (scan.tail_torn && std::filesystem::exists(persist::wal_path(dir))) {
    // Discard the torn/corrupt tail so future appends extend a clean prefix.
    auto ts = persist::FaultFile(persist::wal_path(dir)).truncate_to(scan.valid_bytes);
    if (!ts.ok()) return ts.error();
  }

  // Recovery feeds the same verification machinery the scrubber uses: a
  // rebuilt engine with a bad extent checksum is an error, not a warning.
  auto vi = e.verify_integrity();
  if (!vi.ok()) return vi.error();

  if (report) *report = rep;
  return e;
}

bool StorageEngine::corrupt_for_testing(const std::string& key) {
  auto it = objects_.find(key);
  if (it == objects_.end() || it->second.extents.empty()) return false;
  const Extent& e = it->second.extents.front();
  if (e.len == 0) return false;
  Bytes& seg = segments_[e.segment];
  seg[e.seg_off] ^= std::byte{0xff};
  return true;
}

}  // namespace bsc::blob
