// A blob storage server: one per simulated storage node. Wraps the
// log-structured engine with thread safety and computes the simulated service
// time of every operation from the node's disk model plus fixed CPU costs.
//
// Locking model (acquisition order: client ascending server id → mu_ →
// stripe → engine_mu_, engine_mu_ strictly innermost):
//
//  * mu_ (shared_mutex) — the "structure" lock. Exclusive for multi-key
//    transaction commits and maintenance (compaction, repair, rebalance);
//    shared for every per-key operation. A committing transaction therefore
//    drains and excludes all per-key traffic, and per-key traffic never
//    observes a half-applied transaction.
//  * stripes_[kLockStripes] — per-key mutation order. A mutating client
//    holds the key's stripe on every replica (all acquired in ascending
//    node order), so racing writers to one key apply in the same order on
//    every replica while writers to distinct keys proceed in parallel.
//  * engine_mu_ — the single-threaded StorageEngine is only ever touched
//    with this held; it is never held while acquiring any other lock.
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "blob/storage_engine.hpp"
#include "blob/types.hpp"
#include "common/result.hpp"
#include "persist/wal.hpp"
#include "sim/node.hpp"

namespace bsc::blob {

/// CPU/journal cost constants of the server's request path.
struct ServerCosts {
  SimMicros cpu_op_us = 3;          ///< fixed request-handling CPU
  double cpu_byte_us = 0.0001;      ///< per-byte copy/checksum cost (~10 GB/s)
  SimMicros meta_journal_us = 40;   ///< sequential journal append for metadata ops
  double scan_per_obj_us = 0.2;     ///< index walk per object during scan
};

class BlobServer {
 public:
  /// Number of per-key lock stripes (power of two).
  static constexpr std::size_t kLockStripes = 64;

  BlobServer(sim::SimNode& node, EngineConfig ecfg = {}, ServerCosts costs = {})
      : node_(&node), engine_(ecfg), ecfg_(ecfg), costs_(costs) {}

  [[nodiscard]] sim::SimNode& node() noexcept { return *node_; }

  // --- durability: write-ahead log, checkpoints, crash / restart ---

  /// Back this server's engine with a WAL under `dir` (created if needed).
  /// If the engine already holds objects, an initial checkpoint is written
  /// so pre-existing state is durable too.
  Status enable_persistence(const std::string& dir, persist::JournalConfig jcfg = {});
  [[nodiscard]] bool persistent() const noexcept { return !persist_dir_.empty(); }

  /// Simulate process death: the engine and the journal's un-fsynced
  /// group-commit buffer vanish; only what reached the WAL/checkpoints
  /// survives. The server keeps serving an EMPTY engine afterwards — mark
  /// it down at the store level before crashing it.
  void crash();

  /// Rebuild the engine from the persistence directory (newest valid
  /// checkpoint + WAL replay) and reattach the journal.
  Status restart(persist::RecoveryReport* report = nullptr);

  /// Snapshot the engine into a checkpoint file; with `prune_wal`, reset
  /// the log afterwards. Charges a sequential sweep of live bytes.
  Result<std::uint64_t> checkpoint_now(SimMicros* service_us, bool prune_wal = false);

  /// Flush + fsync any pending group-commit buffer.
  Status sync_journal();

  // Each operation applies to the in-memory engine and reports the simulated
  // service time in *service_us.

  Status create(const std::string& key, SimMicros* service_us);
  Status remove(const std::string& key, SimMicros* service_us);
  Result<WriteOutcome> write(const std::string& key, std::uint64_t off, ByteView data,
                             bool create_if_missing, SimMicros* service_us);
  Result<ReadOutcome> read(const std::string& key, std::uint64_t off, std::uint64_t len,
                           SimMicros* service_us);

  // --- batched scatter-gather reads ---------------------------------------

  /// One sub-operation of a batched read envelope. Data subs gather straight
  /// into the caller's (pre-zeroed) buffer slice `dst`; stat subs
  /// (`stat_only`, empty dst) piggyback a metadata verification on the
  /// envelope already in flight.
  struct ReadSubOp {
    const std::string* key;
    std::uint64_t off = 0;
    MutableByteView dst;
    bool stat_only = false;
    /// Quorum-vote probe: answer (version, digest) from the extent index —
    /// no payload bytes are read or shipped, so a vote costs what a stat
    /// does. `dst` is empty; `len` carries the span the digest must cover.
    bool digest_only = false;
    /// Payload sub of a quorum round: also ship the span digest so the
    /// client can accept a lower-versioned payload whose bytes match the
    /// winning replica's (version bump without content change).
    bool want_digest = false;
    /// With digest_only: charge the full payload read cost anyway (cache /
    /// disk / per-byte CPU). The hedged-read stand-in uses this — it models
    /// a real payload serve on the alternate replica while keeping the
    /// caller's buffer single-writer.
    bool probe_payload = false;
    std::uint64_t len = 0;  ///< span length for digest_only subs (dst empty)
  };

  struct ReadSubResult {
    Errc err = Errc::ok;          ///< ok / not_found
    std::uint64_t data_len = 0;   ///< bytes within the object (wire payload)
    std::uint64_t covered = 0;    ///< extent-backed bytes among data_len
    std::uint64_t size = 0;       ///< object size (stat subs; 0 on not_found)
    Version version = 0;          ///< object version (read + stat subs)
    std::uint64_t digest = 0;     ///< span checksum when requested (0 = none)
  };

  /// Execute a batch of read/stat sub-ops under ONE structure-lock
  /// acquisition. Per-sub costs match read()/stat() exactly; the fixed
  /// request-handling CPU (cpu_op_us) is charged once for the envelope.
  /// Writes the total service time to *service_us; `results` must hold
  /// `count` entries. When `per_op_us` is non-null it receives `count`
  /// cumulative service marks (sub i complete at serve-start + per_op_us[i])
  /// so the client can stream per-sub completions out of one queueing trip,
  /// mirroring apply_ops.
  void read_batch(const ReadSubOp* subs, std::size_t count, ReadSubResult* results,
                  SimMicros* service_us, SimMicros* per_op_us = nullptr);
  Result<Version> truncate(const std::string& key, std::uint64_t new_size,
                           SimMicros* service_us);
  Result<std::uint64_t> size(const std::string& key, SimMicros* service_us);
  Result<BlobStat> stat(const std::string& key, SimMicros* service_us);
  std::vector<BlobStat> scan(const std::string& prefix, SimMicros* service_us);

  /// Apply a batch of mutations; used by the replicated-mutation and
  /// transaction commit paths. The caller holds either lock_exclusive() or
  /// a KeyLock covering every key in `ops`; precondition checks were
  /// already done.
  struct TxnOp {
    enum class Kind { write, truncate, create, remove, grow } kind;
    std::string key;
    std::uint64_t offset = 0;
    Bytes data;
    std::uint64_t new_size = 0;   ///< truncate target / grow minimum size
    std::uint64_t checksum = 0;   ///< sender-computed content checksum (0 = none)
    /// When non-empty, the payload lives in the caller's buffer and `data`
    /// stays empty — the batched client ships iovec slices instead of
    /// marshalling per-leg copies. The buffer must outlive the leg.
    ByteView view{};
    ByteView payload() const noexcept {
      return view.empty() ? ByteView{data.data(), data.size()} : view;
    }
  };
  Status apply_txn_ops(const std::vector<TxnOp>& ops, SimMicros* service_us);

  /// Zero-copy view of one mutation op: the batched scatter-gather client
  /// references the caller's buffer slices directly instead of materializing
  /// per-leg Bytes copies. `key` and `data` must outlive the call.
  struct OpRef {
    TxnOp::Kind kind;
    const std::string* key;
    std::uint64_t offset = 0;
    ByteView data;
    std::uint64_t new_size = 0;
    std::uint64_t checksum = 0;
  };

  /// Apply a batch of op views under the caller's locks (same contract as
  /// apply_txn_ops, which delegates here). Charges cpu_op_us ONCE for the
  /// batch plus each op's own data/metadata costs — the server-side half of
  /// the batching win: k ops in one envelope parse once, not k times.
  /// When `per_op_us` is non-null it must hold `count` entries and receives
  /// the CUMULATIVE service time after each op, so a caller modelling
  /// streamed execution can mark the instant each sub-op's work finished
  /// (sub i done at serve_start + per_op_us[i]) instead of serializing
  /// everything behind the batch's total.
  Status apply_ops(const OpRef* ops, std::size_t count, SimMicros* service_us,
                   SimMicros* per_op_us = nullptr);

  /// Expected-version check for optimistic transactions (0 = "must not
  /// exist"). Caller holds lock_exclusive() or a KeyLock on `key`.
  [[nodiscard]] bool version_matches(const std::string& key, Version expected);

  /// Uncharged engine-size peek for client-side layout/precondition
  /// decisions; caller holds lock_exclusive() or a KeyLock on `key` when a
  /// stable answer matters.
  [[nodiscard]] Result<std::uint64_t> peek_size(const std::string& key);

  /// Uncharged engine-version peek (same locking contract as peek_size).
  /// Quorum reads arbitrate replica freshness with this.
  [[nodiscard]] Result<Version> peek_version(const std::string& key);

  /// Overwrite the key's version (journaled). Caller holds lock_exclusive()
  /// or a KeyLock on `key`. The replication layer uses this to keep
  /// versions monotonic across remove/recreate cycles and identical on
  /// every replica that applied the same ops — the invariant quorum reads
  /// arbitrate on.
  Status force_version(const std::string& key, Version v);

  /// Install an exact copy of an object — contents, logical size, AND
  /// version — replacing whatever is present. Repair traffic (resync, hint
  /// drain, scrub, rebalance) uses this so a repaired replica is
  /// indistinguishable from one that applied the original op stream: equal
  /// versions again imply equal contents across the replica set.
  Status install_copy(const std::string& key, ByteView data, std::uint64_t logical_size,
                      Version version, SimMicros* service_us);

  /// install_copy under the CALLER's lock (lock_exclusive() or a KeyLock on
  /// `key`). The rebalancer holds the key's stripes on source and target
  /// servers across a copy + plan-state flip; taking a second KeyLock on the
  /// same non-recursive stripe would self-deadlock.
  Status install_copy_locked(const std::string& key, ByteView data,
                             std::uint64_t logical_size, Version version,
                             SimMicros* service_us);

  /// Whole-object read under the caller's lock (same contract as
  /// install_copy_locked): the structure lock is NOT re-acquired, so it is
  /// safe while already holding a KeyLock on this server.
  [[nodiscard]] Result<ReadOutcome> read_locked(const std::string& key, std::uint64_t off,
                                                std::uint64_t len, SimMicros* service_us);

  // --- ring-epoch stamp -----------------------------------------------------
  //
  // Servers answer requests stamped with the membership epoch they were last
  // configured at. A client whose placement was computed at an older epoch
  // sees a newer stamp on the reply, drops its cached placement, refreshes
  // the ring, and retries — the in-process analogue of a stale-epoch
  // rejection in a real RPC layer.
  [[nodiscard]] std::uint64_t ring_epoch() const noexcept {
    return ring_epoch_.load(std::memory_order_acquire);
  }
  /// Monotonic: concurrent publishes from overlapping migration windows may
  /// arrive out of order, and a regressing stamp would make fresh clients
  /// "refresh" onto a stale epoch.
  void set_ring_epoch(std::uint64_t e) noexcept {
    std::uint64_t cur = ring_epoch_.load(std::memory_order_relaxed);
    while (cur < e && !ring_epoch_.compare_exchange_weak(
                          cur, e, std::memory_order_release,
                          std::memory_order_relaxed)) {
    }
  }

  // --- hinted handoff -------------------------------------------------------
  //
  // When a quorum write cannot reach a replica, the coordinator records a
  // {missed node, key} hint on one of the replicas that DID ack. When the
  // missed node comes back, the store drains its hints by copying the
  // current object (install_copy) before running the digest-based resync.
  // Hints are volatile (a crash loses them) — resync remains the backstop.

  /// Record that `target` missed a mutation of `key`. Returns false when an
  /// identical hint was already pending (deduplicated).
  bool add_hint(std::uint32_t target, const BlobKey& key);

  /// Remove and return all hinted keys destined for `target`.
  [[nodiscard]] std::vector<BlobKey> take_hints_for(std::uint32_t target);

  /// Outstanding hints across all targets (observability / tests).
  [[nodiscard]] std::uint64_t hint_count() const;

  /// Exclusive access for multi-server commit protocols. Locks are acquired
  /// by the client in ascending node-id order, which rules out deadlock.
  [[nodiscard]] std::unique_lock<std::shared_mutex> lock_exclusive() {
    return std::unique_lock(mu_);
  }

  /// Holds the structure lock (shared) plus the key's mutation stripe.
  struct KeyLock {
    std::shared_lock<std::shared_mutex> structure;
    std::unique_lock<std::mutex> stripe;
  };

  /// Per-key mutation lock: shared structure access plus exclusive ownership
  /// of the key's stripe. Clients acquire one per replica, ascending node
  /// order — the same global order as lock_exclusive(), so the two paths
  /// cannot deadlock against each other.
  [[nodiscard]] KeyLock lock_key(std::string_view key);

  /// Holds the structure lock (shared) plus every mutation stripe a batch of
  /// keys maps to — one acquisition round for the whole batch.
  struct MultiKeyLock {
    std::shared_lock<std::shared_mutex> structure;
    std::vector<std::unique_lock<std::mutex>> stripes;  ///< ascending stripe index
  };

  /// Batched per-key mutation lock: shared structure access plus the deduped
  /// set of stripes covering `keys`, acquired in ascending stripe order. A
  /// batched client acquires one MultiKeyLock per replica in ascending node
  /// order — the same node-major/stripe-minor global order as repeated
  /// lock_key() calls, so batched and per-leg mutators cannot deadlock.
  [[nodiscard]] MultiKeyLock lock_keys(const std::vector<std::string_view>& keys);

  [[nodiscard]] static std::size_t stripe_of(std::string_view key) noexcept;

  /// Lifetime acquisition count per stripe (observability: skew here means
  /// hot keys are convoying on one stripe).
  [[nodiscard]] std::array<std::uint64_t, kLockStripes> stripe_acquisitions() const;

  // --- maintenance / introspection (used by tests and ablation benches) ---
  [[nodiscard]] std::uint64_t object_count();
  [[nodiscard]] std::uint64_t live_bytes();
  [[nodiscard]] std::uint64_t dead_bytes();
  std::uint64_t compact(SimMicros* service_us);
  [[nodiscard]] Status verify_integrity();
  [[nodiscard]] Status verify_key(const std::string& key);
  bool corrupt_for_testing(const std::string& key);

 private:
  [[nodiscard]] SimMicros svc_metadata() const noexcept {
    return costs_.cpu_op_us + costs_.meta_journal_us;
  }
  [[nodiscard]] SimMicros svc_bytes_cpu(std::uint64_t bytes) const noexcept {
    return static_cast<SimMicros>(static_cast<double>(bytes) * costs_.cpu_byte_us);
  }

  struct Stripe {
    std::mutex mu;
    std::atomic<std::uint64_t> acquisitions{0};
  };

  sim::SimNode* node_;
  std::shared_mutex mu_;
  std::array<Stripe, kLockStripes> stripes_;
  std::mutex engine_mu_;
  StorageEngine engine_;
  EngineConfig ecfg_;
  ServerCosts costs_;
  mutable std::mutex hints_mu_;  ///< leaf lock; never held across other locks
  std::map<std::uint32_t, std::vector<BlobKey>> hints_;
  std::string persist_dir_;                   ///< empty = volatile server
  persist::JournalConfig jcfg_;
  std::unique_ptr<persist::Journal> journal_; ///< engine_ holds a raw sink ptr
  std::atomic<std::uint64_t> ring_epoch_{0};  ///< membership epoch stamp
};

}  // namespace bsc::blob
