// A blob storage server: one per simulated storage node. Wraps the
// log-structured engine with thread safety (shared for reads, exclusive for
// mutations) and computes the simulated service time of every operation from
// the node's disk model plus fixed CPU costs.
#pragma once

#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "blob/storage_engine.hpp"
#include "blob/types.hpp"
#include "common/result.hpp"
#include "sim/node.hpp"

namespace bsc::blob {

/// CPU/journal cost constants of the server's request path.
struct ServerCosts {
  SimMicros cpu_op_us = 3;          ///< fixed request-handling CPU
  double cpu_byte_us = 0.0001;      ///< per-byte copy/checksum cost (~10 GB/s)
  SimMicros meta_journal_us = 40;   ///< sequential journal append for metadata ops
  double scan_per_obj_us = 0.2;     ///< index walk per object during scan
};

class BlobServer {
 public:
  BlobServer(sim::SimNode& node, EngineConfig ecfg = {}, ServerCosts costs = {})
      : node_(&node), engine_(ecfg), costs_(costs) {}

  [[nodiscard]] sim::SimNode& node() noexcept { return *node_; }

  // Each operation applies to the in-memory engine and reports the simulated
  // service time in *service_us.

  Status create(const std::string& key, SimMicros* service_us);
  Status remove(const std::string& key, SimMicros* service_us);
  Result<WriteOutcome> write(const std::string& key, std::uint64_t off, ByteView data,
                             bool create_if_missing, SimMicros* service_us);
  Result<ReadOutcome> read(const std::string& key, std::uint64_t off, std::uint64_t len,
                           SimMicros* service_us);
  Result<Version> truncate(const std::string& key, std::uint64_t new_size,
                           SimMicros* service_us);
  Result<std::uint64_t> size(const std::string& key, SimMicros* service_us);
  Result<BlobStat> stat(const std::string& key, SimMicros* service_us);
  std::vector<BlobStat> scan(const std::string& prefix, SimMicros* service_us);

  /// Apply a batch of mutations atomically under the server lock; used by
  /// the transaction commit path. Precondition checks were already done.
  struct TxnOp {
    enum class Kind { write, truncate, create, remove } kind;
    std::string key;
    std::uint64_t offset = 0;
    Bytes data;
    std::uint64_t new_size = 0;
  };
  Status apply_txn_ops(const std::vector<TxnOp>& ops, SimMicros* service_us);

  /// Expected-version check for optimistic transactions (0 = "must not exist").
  [[nodiscard]] bool version_matches(const std::string& key, Version expected);

  /// Exclusive access for multi-server commit protocols. Locks are acquired
  /// by the client in ascending node-id order, which rules out deadlock.
  [[nodiscard]] std::unique_lock<std::shared_mutex> lock_exclusive() {
    return std::unique_lock(mu_);
  }

  // --- maintenance / introspection (used by tests and ablation benches) ---
  [[nodiscard]] std::uint64_t object_count();
  [[nodiscard]] std::uint64_t live_bytes();
  [[nodiscard]] std::uint64_t dead_bytes();
  std::uint64_t compact(SimMicros* service_us);
  [[nodiscard]] Status verify_integrity();
  [[nodiscard]] Status verify_key(const std::string& key);
  bool corrupt_for_testing(const std::string& key);

 private:
  [[nodiscard]] SimMicros svc_metadata() const noexcept {
    return costs_.cpu_op_us + costs_.meta_journal_us;
  }
  [[nodiscard]] SimMicros svc_bytes_cpu(std::uint64_t bytes) const noexcept {
    return static_cast<SimMicros>(static_cast<double>(bytes) * costs_.cpu_byte_us);
  }

  sim::SimNode* node_;
  std::shared_mutex mu_;
  StorageEngine engine_;
  ServerCosts costs_;
};

}  // namespace bsc::blob
