// BlobClient — the application-facing API of the blob store, exactly the
// primitive set of the paper's §III:
//
//   Blob Access:         read(), size()
//   Blob Manipulation:   write(), truncate()
//   Blob Administration: create(), remove()
//   Namespace Access:    scan()
//
// plus Týr-style multi-blob transactions (begin_transaction / commit).
//
// One client per logical execution thread: the client charges its SimAgent
// for every call (request transfer, queueing + service at the replica
// servers, response transfer). Mutations are applied to the full replica
// set with primary-forwarding timing; reads are served by the primary.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "blob/store.hpp"
#include "common/result.hpp"
#include "sim/sim_clock.hpp"

namespace bsc::blob {

struct ClientCounters {
  std::uint64_t creates = 0;
  std::uint64_t removes = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t truncates = 0;
  std::uint64_t sizes = 0;
  std::uint64_t scans = 0;
  std::uint64_t txns = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

class BlobTransaction;

class BlobClient {
 public:
  BlobClient(BlobStore& store, sim::SimAgent* agent) : store_(&store), agent_(agent) {}

  // --- Blob Administration ---
  [[nodiscard]] Status create(std::string_view key);
  [[nodiscard]] Status remove(std::string_view key);

  // --- Blob Access ---
  [[nodiscard]] Result<Bytes> read(std::string_view key, std::uint64_t offset,
                                   std::uint64_t len);
  [[nodiscard]] Result<std::uint64_t> size(std::string_view key);
  [[nodiscard]] Result<BlobStat> stat(std::string_view key);
  [[nodiscard]] bool exists(std::string_view key);

  // --- Blob Manipulation ---
  [[nodiscard]] Result<std::uint64_t> write(std::string_view key, std::uint64_t offset,
                                            ByteView data);
  [[nodiscard]] Status truncate(std::string_view key, std::uint64_t new_size);

  // --- Namespace Access ---
  /// Enumerate all blobs (deduplicated across replicas, sorted by key).
  /// `prefix` filters the result but the walk still visits every object on
  /// every server — the honest cost of a flat namespace.
  [[nodiscard]] Result<std::vector<BlobStat>> scan(std::string_view prefix = {});

  // --- Transactions (Týr) ---
  [[nodiscard]] BlobTransaction begin_transaction();

  [[nodiscard]] const ClientCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] sim::SimAgent* agent() noexcept { return agent_; }
  [[nodiscard]] BlobStore& store() noexcept { return *store_; }

 private:
  friend class BlobTransaction;

  /// Apply one mutation to all replicas with primary-forwarding timing,
  /// holding the replica set's server locks (ascending node order) so that
  /// racing writers serialize identically on every replica.
  Status replicated_mutation(std::string_view key, const BlobServer::TxnOp& op);

  BlobStore* store_;
  sim::SimAgent* agent_;
  ClientCounters counters_;
};

/// A batch of mutations committed atomically across blobs. Preconditions
/// (expected versions) make the transaction optimistic: commit() fails with
/// Errc::conflict — applying nothing — if any precondition no longer holds.
class BlobTransaction {
 public:
  explicit BlobTransaction(BlobClient& client) : client_(&client) {}

  BlobTransaction& write(std::string_view key, std::uint64_t offset, ByteView data);
  BlobTransaction& truncate(std::string_view key, std::uint64_t new_size);
  BlobTransaction& create(std::string_view key);
  BlobTransaction& remove(std::string_view key);

  /// Require `key` to be at `version` at commit time (0 = must not exist).
  BlobTransaction& expect_version(std::string_view key, Version version);

  [[nodiscard]] std::size_t op_count() const noexcept { return ops_.size(); }

  /// Two-round commit: lock all involved servers (ascending node id — no
  /// deadlock), validate preconditions, apply everywhere, release.
  [[nodiscard]] Status commit();

 private:
  BlobClient* client_;
  std::vector<BlobServer::TxnOp> ops_;
  std::vector<std::pair<std::string, Version>> preconditions_;
};

}  // namespace bsc::blob
