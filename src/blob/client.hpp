// BlobClient — the application-facing API of the blob store, exactly the
// primitive set of the paper's §III:
//
//   Blob Access:         read(), size()
//   Blob Manipulation:   write(), truncate()
//   Blob Administration: create(), remove()
//   Namespace Access:    scan()
//
// plus Týr-style multi-blob transactions (begin_transaction / commit).
//
// One client per logical execution thread: the client charges its SimAgent
// for every call (request transfer, queueing + service at the replica
// servers, response transfer). Mutations are applied to the full replica
// set with primary-forwarding timing; reads are served by the primary.
//
// Concurrency: mutations hold per-key striped locks (BlobServer::lock_key)
// on every replica — acquired in ascending node order, the same global order
// the transaction commit path uses for its exclusive locks — so writers
// racing on one key serialize identically on every replica while writers to
// distinct keys proceed in parallel.
//
// Striping: I/O past StoreConfig::chunk_bytes is split into chunk legs, one
// per chunk, each placed independently on the ring (chunk 0 under the
// application key itself, carrying the full logical size). Legs fork from
// the same simulated instant and the call completes at the slowest leg
// (scatter-gather). Blobs at or below one chunk never pay for striping.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "blob/store.hpp"
#include "common/result.hpp"
#include "sim/sim_clock.hpp"

namespace bsc::blob {

struct ClientCounters {
  std::uint64_t creates = 0;
  std::uint64_t removes = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t truncates = 0;
  std::uint64_t sizes = 0;
  std::uint64_t scans = 0;
  std::uint64_t txns = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

class BlobTransaction;

class BlobClient {
 public:
  BlobClient(BlobStore& store, sim::SimAgent* agent) : store_(&store), agent_(agent) {}

  // --- Blob Administration ---
  [[nodiscard]] Status create(std::string_view key);
  [[nodiscard]] Status remove(std::string_view key);

  // --- Blob Access ---
  [[nodiscard]] Result<Bytes> read(std::string_view key, std::uint64_t offset,
                                   std::uint64_t len);
  [[nodiscard]] Result<std::uint64_t> size(std::string_view key);
  [[nodiscard]] Result<BlobStat> stat(std::string_view key);
  [[nodiscard]] bool exists(std::string_view key);

  // --- Blob Manipulation ---
  [[nodiscard]] Result<std::uint64_t> write(std::string_view key, std::uint64_t offset,
                                            ByteView data);
  [[nodiscard]] Status truncate(std::string_view key, std::uint64_t new_size);

  // --- Namespace Access ---
  /// Enumerate all blobs (deduplicated across replicas, sorted by key;
  /// internal chunk keys are hidden). `prefix` filters the result but the
  /// walk still visits every object on every server — the honest cost of a
  /// flat namespace.
  [[nodiscard]] Result<std::vector<BlobStat>> scan(std::string_view prefix = {});

  // --- Transactions (Týr) ---
  [[nodiscard]] BlobTransaction begin_transaction();

  [[nodiscard]] const ClientCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] sim::SimAgent* agent() noexcept { return agent_; }
  [[nodiscard]] BlobStore& store() noexcept { return *store_; }

 private:
  friend class BlobTransaction;

  /// One replicated mutation leg: apply `ops` (all targeting engine key
  /// `ekey`) to the full replica set with primary-forwarding timing, holding
  /// the key's stripe on every replica (ascending node order). Forks from
  /// simulated time `start`; sets *completion to the slowest-replica ack.
  /// `force_create` lets a write leg create the key regardless of
  /// StoreConfig::write_creates (chunk keys of an existing blob).
  Status mutation_leg(const std::string& ekey, const std::vector<BlobServer::TxnOp>& ops,
                      bool force_create, SimMicros start, SimMicros* completion);

  /// Single-leg convenience wrapper: runs the leg at the agent's current
  /// time and advances the agent to its completion.
  Status replicated_mutation(std::string_view key,
                             const std::vector<BlobServer::TxnOp>& ops,
                             bool force_create = false);

  /// One read leg against the acting primary of `ekey`, forked from `start`.
  Result<ReadOutcome> read_leg(const std::string& ekey, std::uint64_t off,
                               std::uint64_t len, SimMicros start, SimMicros* completion);

  /// Uncharged logical-size peek at the acting primary of `ekey`.
  Result<std::uint64_t> peek_logical_size(const std::string& ekey);

  BlobStore* store_;
  sim::SimAgent* agent_;
  ClientCounters counters_;
};

/// A batch of mutations committed atomically across blobs. Preconditions
/// (expected versions) make the transaction optimistic: commit() fails with
/// Errc::conflict — applying nothing — if any precondition no longer holds.
/// Transactional writes address keys directly (no chunk striping): the
/// transaction layer is for small metadata blobs (Týr's use case).
class BlobTransaction {
 public:
  explicit BlobTransaction(BlobClient& client) : client_(&client) {}

  BlobTransaction& write(std::string_view key, std::uint64_t offset, ByteView data);
  BlobTransaction& truncate(std::string_view key, std::uint64_t new_size);
  BlobTransaction& create(std::string_view key);
  BlobTransaction& remove(std::string_view key);

  /// Require `key` to be at `version` at commit time (0 = must not exist).
  BlobTransaction& expect_version(std::string_view key, Version version);

  [[nodiscard]] std::size_t op_count() const noexcept { return ops_.size(); }

  /// Two-round commit: lock all involved servers (ascending node id — no
  /// deadlock), validate preconditions, apply everywhere, release. The only
  /// path that still takes whole-server exclusive locks.
  [[nodiscard]] Status commit();

 private:
  BlobClient* client_;
  std::vector<BlobServer::TxnOp> ops_;
  std::vector<std::pair<std::string, Version>> preconditions_;
};

}  // namespace bsc::blob
