// BlobClient — the application-facing API of the blob store, exactly the
// primitive set of the paper's §III:
//
//   Blob Access:         read(), size()
//   Blob Manipulation:   write(), truncate()
//   Blob Administration: create(), remove()
//   Namespace Access:    scan()
//
// plus Týr-style multi-blob transactions (begin_transaction / commit).
//
// One client per logical execution thread: the client charges its SimAgent
// for every call (request transfer, queueing + service at the replica
// servers, response transfer). Mutations are applied to the full replica
// set with primary-forwarding timing; reads are served by the primary.
//
// Concurrency: mutations hold per-key striped locks (BlobServer::lock_key)
// on every replica — acquired in ascending node order, the same global order
// the transaction commit path uses for its exclusive locks — so writers
// racing on one key serialize identically on every replica while writers to
// distinct keys proceed in parallel.
//
// Striping: I/O past StoreConfig::chunk_bytes is split into chunk legs, one
// per chunk, each placed independently on the ring (chunk 0 under the
// application key itself, carrying the full logical size). Legs fork from
// the same simulated instant and the call completes at the slowest leg
// (scatter-gather). Blobs at or below one chunk never pay for striping.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "blob/store.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "sim/sim_clock.hpp"

namespace bsc::blob {

/// Per-client counters. Fields are obs::LocalCounter — always-on relaxed
/// atomics that read as plain integers — so clients shared across threads
/// (or observed from a monitoring thread mid-run) never tear a count, and
/// the counts keep advancing even when the global metrics switch is off:
/// this is functional accounting (retry/hint/quorum bookkeeping read by
/// tests, benches, and repair logic), not an observability series. The
/// struct is address-stable and non-copyable, like the client owning it.
struct ClientCounters {
  obs::LocalCounter creates;
  obs::LocalCounter removes;
  obs::LocalCounter reads;
  obs::LocalCounter writes;
  obs::LocalCounter truncates;
  obs::LocalCounter sizes;
  obs::LocalCounter scans;
  obs::LocalCounter txns;
  obs::LocalCounter bytes_read;
  obs::LocalCounter bytes_written;
  // Fault-tolerance machinery (see DESIGN.md "Fault model").
  obs::LocalCounter retries;                ///< re-sent attempts after timeout/error
  obs::LocalCounter hedges;                 ///< speculative second read legs fired
  obs::LocalCounter failovers;              ///< read legs moved to another replica
  obs::LocalCounter quorum_degraded_writes; ///< acked mutations that missed >=1 replica
  obs::LocalCounter hints_written;          ///< hinted-handoff entries recorded
  obs::LocalCounter hints_drained;          ///< hint repairs this client executed
};

class BlobTransaction;

class BlobClient {
 public:
  BlobClient(BlobStore& store, sim::SimAgent* agent) : store_(&store), agent_(agent) {}

  // --- Blob Administration ---
  [[nodiscard]] Status create(std::string_view key);
  [[nodiscard]] Status remove(std::string_view key);

  // --- Blob Access ---
  [[nodiscard]] Result<Bytes> read(std::string_view key, std::uint64_t offset,
                                   std::uint64_t len);
  [[nodiscard]] Result<std::uint64_t> size(std::string_view key);
  [[nodiscard]] Result<BlobStat> stat(std::string_view key);
  [[nodiscard]] bool exists(std::string_view key);

  // --- Blob Manipulation ---
  [[nodiscard]] Result<std::uint64_t> write(std::string_view key, std::uint64_t offset,
                                            ByteView data);
  [[nodiscard]] Status truncate(std::string_view key, std::uint64_t new_size);

  // --- Namespace Access ---
  /// Enumerate all blobs (deduplicated across replicas, sorted by key;
  /// internal chunk keys are hidden). `prefix` filters the result but the
  /// walk still visits every object on every server — the honest cost of a
  /// flat namespace.
  [[nodiscard]] Result<std::vector<BlobStat>> scan(std::string_view prefix = {});

  // --- Transactions (Týr) ---
  [[nodiscard]] BlobTransaction begin_transaction();

  [[nodiscard]] const ClientCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] sim::SimAgent* agent() noexcept { return agent_; }
  [[nodiscard]] BlobStore& store() noexcept { return *store_; }

 private:
  friend class BlobTransaction;

  /// Fate of one fault-injected request attempt, planned from the leg's own
  /// fork time (scatter-gather legs do not run at the agent's clock, so the
  /// client charges costs itself instead of going through Transport::call).
  struct AttemptPlan {
    bool delivered = false;
    SimMicros extra_latency_us = 0;  ///< per network leg, when delivered
    SimMicros failed_at = 0;         ///< failure-detection time, when not
    Errc err = Errc::ok;
  };
  AttemptPlan plan_attempt(BlobServer& srv, SimMicros attempt_start,
                           std::uint64_t request_bytes);

  /// Decorrelated-jitter backoff (simulated time): sleep drawn uniformly
  /// from [base, prev*3], clamped to the policy cap. Mutates *prev.
  SimMicros next_backoff(SimMicros* prev);

  /// Drive one request leg to delivery, retrying per RetryPolicy with
  /// backoff. On success `attempt_start` is the (possibly backed-off) send
  /// time of the delivered attempt; on failure `failed_at` is when the last
  /// attempt's failure was detected.
  struct LegDelivery {
    bool ok = false;
    SimMicros attempt_start = 0;
    SimMicros extra_latency_us = 0;
    SimMicros failed_at = 0;
    Errc err = Errc::ok;
  };
  LegDelivery try_deliver(BlobServer& srv, SimMicros start, std::uint64_t request_bytes);

  /// Version-probe round for quorum reads: stat `ekey` on live replicas (in
  /// replica order, each with retries) until `quorum` respond. `absent`
  /// responses participate with version 0.
  struct ProbeRound {
    bool ok = false;           ///< quorum responders gathered
    Errc err = Errc::ok;       ///< failure reason when !ok
    SimMicros done = 0;        ///< barrier: slowest used probe (or last failure)
    std::vector<std::uint32_t> fresh;  ///< responders at the max version, replica order
    BlobStat stat;             ///< freshest responder's stat
    bool found = false;        ///< false: every responder reported absent
  };
  ProbeRound quorum_probe(const std::string& ekey,
                          const std::vector<std::uint32_t>& lives,
                          std::uint32_t quorum, SimMicros start);

  /// One replicated mutation leg: apply `ops` (all targeting engine key
  /// `ekey`) with primary-forwarding timing, holding the key's stripe on
  /// every replica (ascending node order). Forks from simulated time
  /// `start`; sets *completion to the ack time. The acting primary must ack
  /// (coordinator); further replicas ack until the configured write quorum
  /// is met, and replicas that are down, stale, or unreachable through the
  /// fault injector are recorded as hinted-handoff entries on the primary.
  /// `force_create` lets a write leg create the key regardless of
  /// StoreConfig::write_creates (chunk keys of an existing blob).
  Status mutation_leg(const std::string& ekey, const std::vector<BlobServer::TxnOp>& ops,
                      bool force_create, SimMicros start, SimMicros* completion);

  /// Single-leg convenience wrapper: runs the leg at the agent's current
  /// time and advances the agent to its completion.
  Status replicated_mutation(std::string_view key,
                             const std::vector<BlobServer::TxnOp>& ops,
                             bool force_create = false);

  /// One read leg, forked from `start`. With read quorum 1 the leg fails
  /// over through the live replica set (retrying per policy) and optionally
  /// hedges; with a larger read quorum it first version-probes R replicas
  /// and reads from the freshest responder.
  Result<ReadOutcome> read_leg(const std::string& ekey, std::uint64_t off,
                               std::uint64_t len, SimMicros start, SimMicros* completion);

  /// Charged stat with the same failover/quorum arbitration as read_leg.
  Result<BlobStat> stat_leg(const std::string& ekey, SimMicros start,
                            SimMicros* completion);

  /// Uncharged logical-size peek for layout decisions. Classic mode asks
  /// the acting primary (always freshest); quorum mode arbitrates by
  /// version across live replicas.
  Result<std::uint64_t> peek_logical_size(const std::string& ekey);

  /// Hedge delay currently in force: the observed read-latency percentile
  /// once warmed up, else the fixed delay (0 = hedging dormant).
  [[nodiscard]] SimMicros hedge_delay() const;

  BlobStore* store_;
  sim::SimAgent* agent_;
  ClientCounters counters_;
  Rng rng_{0xb10bfa117ULL};  ///< backoff jitter; per-client, deterministic
  Histogram read_latency_;   ///< delivered read-leg latency (drives hedging)
};

/// A batch of mutations committed atomically across blobs. Preconditions
/// (expected versions) make the transaction optimistic: commit() fails with
/// Errc::conflict — applying nothing — if any precondition no longer holds.
/// Transactional writes address keys directly (no chunk striping): the
/// transaction layer is for small metadata blobs (Týr's use case).
class BlobTransaction {
 public:
  explicit BlobTransaction(BlobClient& client) : client_(&client) {}

  BlobTransaction& write(std::string_view key, std::uint64_t offset, ByteView data);
  BlobTransaction& truncate(std::string_view key, std::uint64_t new_size);
  BlobTransaction& create(std::string_view key);
  BlobTransaction& remove(std::string_view key);

  /// Require `key` to be at `version` at commit time (0 = must not exist).
  BlobTransaction& expect_version(std::string_view key, Version version);

  [[nodiscard]] std::size_t op_count() const noexcept { return ops_.size(); }

  /// Two-round commit: lock all involved servers (ascending node id — no
  /// deadlock), validate preconditions, apply everywhere, release. The only
  /// path that still takes whole-server exclusive locks.
  [[nodiscard]] Status commit();

 private:
  BlobClient* client_;
  std::vector<BlobServer::TxnOp> ops_;
  std::vector<std::pair<std::string, Version>> preconditions_;
};

}  // namespace bsc::blob
