// BlobClient — the application-facing API of the blob store, exactly the
// primitive set of the paper's §III:
//
//   Blob Access:         read(), size()
//   Blob Manipulation:   write(), truncate()
//   Blob Administration: create(), remove()
//   Namespace Access:    scan()
//
// plus Týr-style multi-blob transactions (begin_transaction / commit).
//
// One client per logical execution thread: the client charges its SimAgent
// for every call (request transfer, queueing + service at the replica
// servers, response transfer). Mutations are applied to the full replica
// set with primary-forwarding timing; reads are served by the primary.
//
// Concurrency: mutations hold per-key striped locks (BlobServer::lock_key)
// on every replica — acquired in ascending node order, the same global order
// the transaction commit path uses for its exclusive locks — so writers
// racing on one key serialize identically on every replica while writers to
// distinct keys proceed in parallel.
//
// Striping: I/O past StoreConfig::chunk_bytes is split into chunk legs, one
// per chunk, each placed independently on the ring (chunk 0 under the
// application key itself, carrying the full logical size). Legs fork from
// the same simulated instant and the call completes at the slowest leg
// (scatter-gather). Blobs at or below one chunk never pay for striping.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "blob/store.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "sim/sim_clock.hpp"

namespace bsc::blob {

/// Per-client counters. Fields are obs::LocalCounter — always-on relaxed
/// atomics that read as plain integers — so clients shared across threads
/// (or observed from a monitoring thread mid-run) never tear a count, and
/// the counts keep advancing even when the global metrics switch is off:
/// this is functional accounting (retry/hint/quorum bookkeeping read by
/// tests, benches, and repair logic), not an observability series. The
/// struct is address-stable and non-copyable, like the client owning it.
struct ClientCounters {
  obs::LocalCounter creates;
  obs::LocalCounter removes;
  obs::LocalCounter reads;
  obs::LocalCounter writes;
  obs::LocalCounter truncates;
  obs::LocalCounter sizes;
  obs::LocalCounter scans;
  obs::LocalCounter txns;
  obs::LocalCounter bytes_read;
  obs::LocalCounter bytes_written;
  // Fault-tolerance machinery (see DESIGN.md "Fault model").
  obs::LocalCounter retries;                ///< re-sent attempts after timeout/error
  obs::LocalCounter hedges;                 ///< speculative second read legs fired
  obs::LocalCounter failovers;              ///< read legs moved to another replica
  obs::LocalCounter quorum_degraded_writes; ///< acked mutations that missed >=1 replica
  obs::LocalCounter hints_written;          ///< hinted-handoff entries recorded
  obs::LocalCounter hints_drained;          ///< hint repairs this client executed
  // Batched scatter-gather + metadata cache (see DESIGN.md "Batched striping").
  // bytes_read counts bytes backed by stored extents only; zero-filled bytes
  // a read returns for unwritten holes / absent chunks land here instead.
  obs::LocalCounter read_hole_bytes;        ///< zero-filled bytes returned by reads
  obs::LocalCounter batch_envelopes;        ///< multi-op batch requests sent
  obs::LocalCounter coalesced_ops;          ///< vectored sub-ops covering >=2 chunks
  obs::LocalCounter metacache_hits;
  obs::LocalCounter metacache_misses;
  obs::LocalCounter metacache_invalidations;
  // Quorum-aware batched reads (see DESIGN.md "Per-sub quorum voting").
  obs::LocalCounter quorum_probes;          ///< digest-only vote envelopes sent
  obs::LocalCounter quorum_winners;         ///< read sub-ops arbitrated by version vote
  obs::LocalCounter quorum_digest_savings_bytes; ///< payload bytes digest replies avoided
  obs::LocalCounter quorum_refetches;       ///< sub-ops re-fetched from a fresher replica
  // Elastic membership (see DESIGN.md "Elastic membership & rebalancing").
  obs::LocalCounter epoch_refreshes;     ///< placement-cache flush + refetch events
  obs::LocalCounter stale_epoch_retries; ///< legs re-run after a stale-epoch stamp
  obs::LocalCounter dual_writes;         ///< mutations mirrored to pending new owners
  obs::LocalCounter chain_dual_writes;   ///< ...with >= 2 overlapping windows pending
  obs::LocalCounter batch_retries;       ///< whole-envelope re-sends before degrading
  // Overload resilience (see DESIGN.md "Overload model").
  obs::LocalCounter sheds_observed;      ///< attempts bounced Errc::overloaded
  obs::LocalCounter deadline_exceeded;   ///< ops stopped with the budget spent
  obs::LocalCounter retries_suppressed;  ///< retries the drained token bucket refused
  obs::LocalCounter breaker_opens;       ///< closed/half_open -> open transitions
  obs::LocalCounter breaker_closes;      ///< half_open -> closed transitions
  obs::LocalCounter breaker_probes;      ///< half-open single probes admitted
  obs::LocalCounter breaker_fast_hints;  ///< forwards converted straight to hints
  obs::LocalCounter breaker_demotions;   ///< read candidates reordered past a suspect
};

class BlobTransaction;

class BlobClient {
 public:
  BlobClient(BlobStore& store, sim::SimAgent* agent) : store_(&store), agent_(agent) {}

  // --- Blob Administration ---
  [[nodiscard]] Status create(std::string_view key);
  [[nodiscard]] Status remove(std::string_view key);

  // --- Blob Access ---
  [[nodiscard]] Result<Bytes> read(std::string_view key, std::uint64_t offset,
                                   std::uint64_t len);
  [[nodiscard]] Result<std::uint64_t> size(std::string_view key);
  [[nodiscard]] Result<BlobStat> stat(std::string_view key);
  [[nodiscard]] bool exists(std::string_view key);

  // --- Blob Manipulation ---
  [[nodiscard]] Result<std::uint64_t> write(std::string_view key, std::uint64_t offset,
                                            ByteView data);
  [[nodiscard]] Status truncate(std::string_view key, std::uint64_t new_size);

  // --- Namespace Access ---
  /// Enumerate all blobs (deduplicated across replicas, sorted by key;
  /// internal chunk keys are hidden). `prefix` filters the result but the
  /// walk still visits every object on every server — the honest cost of a
  /// flat namespace.
  [[nodiscard]] Result<std::vector<BlobStat>> scan(std::string_view prefix = {});

  // --- Transactions (Týr) ---
  [[nodiscard]] BlobTransaction begin_transaction();

  [[nodiscard]] const ClientCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] sim::SimAgent* agent() noexcept { return agent_; }
  [[nodiscard]] BlobStore& store() noexcept { return *store_; }

 private:
  friend class BlobTransaction;

  /// Fate of one fault-injected request attempt, planned from the leg's own
  /// fork time (scatter-gather legs do not run at the agent's clock, so the
  /// client charges costs itself instead of going through Transport::call).
  struct AttemptPlan {
    bool delivered = false;
    SimMicros extra_latency_us = 0;  ///< per network leg, when delivered
    SimMicros failed_at = 0;         ///< failure-detection time, when not
    Errc err = Errc::ok;
  };
  /// `batch_subs` > 0 marks the attempt as a multi-op batch envelope: one
  /// fault verdict for the whole envelope (drawn via Transport::admit_batch
  /// so batch traffic is accounted separately). `attempt_deadline_us`
  /// overrides the policy per-attempt deadline for the drop wait (the
  /// remaining-op-budget clamp); 0 = use the policy value.
  AttemptPlan plan_attempt(BlobServer& srv, SimMicros attempt_start,
                           std::uint64_t request_bytes, std::uint32_t batch_subs = 0,
                           SimMicros attempt_deadline_us = 0);

  /// Decorrelated-jitter backoff (simulated time): sleep drawn uniformly
  /// from [base, prev*3], clamped to the policy cap. Mutates *prev.
  SimMicros next_backoff(SimMicros* prev);

  /// Drive one request leg to delivery, retrying per RetryPolicy with
  /// backoff. On success `attempt_start` is the (possibly backed-off) send
  /// time of the delivered attempt; on failure `failed_at` is when the last
  /// attempt's failure was detected.
  struct LegDelivery {
    bool ok = false;
    SimMicros attempt_start = 0;
    SimMicros extra_latency_us = 0;
    SimMicros failed_at = 0;
    Errc err = Errc::ok;
  };
  LegDelivery try_deliver(BlobServer& srv, SimMicros start, std::uint64_t request_bytes,
                          std::uint32_t batch_subs = 0);

  /// Version-probe round for quorum reads: stat `ekey` on live replicas (in
  /// replica order, each with retries) until `quorum` respond. `absent`
  /// responses participate with version 0.
  struct ProbeRound {
    bool ok = false;           ///< quorum responders gathered
    Errc err = Errc::ok;       ///< failure reason when !ok
    SimMicros done = 0;        ///< barrier: slowest used probe (or last failure)
    std::vector<std::uint32_t> fresh;  ///< responders at the max version, replica order
    BlobStat stat;             ///< freshest responder's stat
    bool found = false;        ///< false: every responder reported absent
  };
  ProbeRound quorum_probe(const std::string& ekey,
                          const std::vector<std::uint32_t>& lives,
                          std::uint32_t quorum, SimMicros start);

  /// One replicated mutation leg: apply `ops` (all targeting engine key
  /// `ekey`) with primary-forwarding timing, holding the key's stripe on
  /// every replica (ascending node order). Forks from simulated time
  /// `start`; sets *completion to the ack time. The acting primary must ack
  /// (coordinator); further replicas ack until the configured write quorum
  /// is met, and replicas that are down, stale, or unreachable through the
  /// fault injector are recorded as hinted-handoff entries on the primary.
  /// `force_create` lets a write leg create the key regardless of
  /// StoreConfig::write_creates (chunk keys of an existing blob).
  /// Pre-leg state of the mutated key, observed under the leg's own lock
  /// round (one version exchange — no extra stat round). The batched striped
  /// paths use it for chunk layout (pre_size) and the metadata cache
  /// (new_version) instead of a separate peek.
  struct LegInfo {
    bool pre_exists = false;
    std::uint64_t pre_size = 0;  ///< authoritative logical size before the leg
    Version new_version = 0;     ///< key's version after a successful leg
  };
  Status mutation_leg(const std::string& ekey, const std::vector<BlobServer::TxnOp>& ops,
                      bool force_create, SimMicros start, SimMicros* completion,
                      LegInfo* info = nullptr);

  /// Single-leg convenience wrapper: runs the leg at the agent's current
  /// time and advances the agent to its completion.
  Status replicated_mutation(std::string_view key,
                             const std::vector<BlobServer::TxnOp>& ops,
                             bool force_create = false);

  /// One read leg, forked from `start`. With read quorum 1 the leg fails
  /// over through the live replica set (retrying per policy) and optionally
  /// hedges; with a larger read quorum it first version-probes R replicas
  /// and reads from the freshest responder.
  Result<ReadOutcome> read_leg(const std::string& ekey, std::uint64_t off,
                               std::uint64_t len, SimMicros start, SimMicros* completion);

  /// Charged stat with the same failover/quorum arbitration as read_leg.
  Result<BlobStat> stat_leg(const std::string& ekey, SimMicros start,
                            SimMicros* completion);

  /// Uncharged logical-size peek for layout decisions. Classic mode asks
  /// the acting primary (always freshest); quorum mode arbitrates by
  /// version across live replicas.
  Result<std::uint64_t> peek_logical_size(const std::string& ekey);

  // --- elastic membership (placement cache + epoch protocol) ---------------

  /// Placement resolution through the client placement cache. Only
  /// window-free placements (empty `pending`) are cacheable, so a leg routed
  /// by a cache hit may skip the dual-write machinery entirely; what makes
  /// that safe is the epoch stamp protocol — every server carries the ring
  /// epoch it was last told about, legs compare the stamp of the server that
  /// answered against the epoch the placement was computed at, and a newer
  /// stamp means membership moved under the cached entry: flush, refetch,
  /// retry (bounded). Mutation legs additionally re-resolve the placement
  /// under the held key stripes — the rebalancer flips a key's migration
  /// state under those same stripes, so a placement that re-reads
  /// identically cannot change for the rest of the leg.
  Placement locate(const std::string& ekey);
  void place_flush(const std::string& ekey);

  /// Hedge delay currently in force: the observed read-latency percentile
  /// once warmed up, else the fixed delay (0 = hedging dormant).
  [[nodiscard]] SimMicros hedge_delay() const;

  // --- overload resilience (deadline budgets + per-node breakers) ----------

  /// RAII per-operation deadline budget: the outermost public primitive
  /// installs `start + DeadlinePolicy::op_deadline_us` as the absolute
  /// simulated-time budget; nested legs/retries/hedges all clamp against it
  /// through op_deadline_at(). No-op when the policy is unbounded or a
  /// budget is already installed (nested primitive).
  class OpBudget {
   public:
    OpBudget(BlobClient& c, SimMicros start);
    ~OpBudget();
    OpBudget(const OpBudget&) = delete;
    OpBudget& operator=(const OpBudget&) = delete;

   private:
    BlobClient* c_;
    bool installed_ = false;
  };

  [[nodiscard]] SimMicros op_deadline_at() const noexcept { return op_deadline_at_; }
  /// Per-attempt deadline at send time `t`: the policy attempt deadline
  /// clamped to whatever op budget remains (>= 1 so a drop never waits 0).
  [[nodiscard]] SimMicros attempt_deadline_at(SimMicros t) const noexcept;

  /// Per-replica health: latency EWMA + consecutive-failure breaker.
  /// Updated by try_deliver outcomes; guarded by health_mu_ because batched
  /// group legs fan out on the thread pool in fault-free runs (under a fault
  /// injector everything is sequential, keeping chaos traces deterministic).
  struct NodeHealth {
    enum class Breaker { closed, open, half_open };
    Breaker state = Breaker::closed;
    std::uint32_t consecutive_failures = 0;
    std::uint32_t half_open_successes = 0;
    SimMicros opened_at = 0;
    double ewma_latency_us = 0.0;
    std::uint64_t samples = 0;
  };
  /// Record one delivered (latency-bearing) or failed attempt against node.
  /// `node` is the SimNode id (what try_deliver sees), NOT the server index;
  /// demote_suspects converts from candidate server indices at its boundary.
  void health_on_success(std::uint32_t node, SimMicros latency_us);
  void health_on_failure(std::uint32_t node, SimMicros now);
  /// Breaker gate for non-mandatory traffic to `node` at time `now`.
  /// closed -> allowed; open past its cooldown -> transitions to half_open
  /// and admits this caller as the single probe; open otherwise -> refused.
  [[nodiscard]] bool breaker_allows(std::uint32_t node, SimMicros now);
  /// Suspect = breaker not closed, or warmed-up latency EWMA far above the
  /// fleet mean (gray failure: up but slow).
  [[nodiscard]] bool is_suspect(std::uint32_t node);
  /// Stable-partition healthy candidates ahead of suspects (availability is
  /// preserved: suspects stay in the list, at the back).
  void demote_suspects(std::vector<std::uint32_t>& candidates);
  [[nodiscard]] NodeHealth::Breaker breaker_state(std::uint32_t node);

  // --- batched scatter-gather (StoreConfig::batched_striping) --------------

  /// One chunk-granular mutation of a batched wave. `op.key` is fixed up to
  /// point at `ekey` once the wave's sub vector is final (short keys live in
  /// SSO storage, so the pointer is only stable after the last push_back).
  struct BatchSub {
    std::string ekey;
    std::uint64_t chunk = 0;           ///< chunk index (grouping / coalescing)
    BlobServer::OpRef op;              ///< views the caller's buffer, no copy
    bool tolerate_not_found = false;   ///< truncate/remove of a maybe-hole chunk
  };

  /// Execute a wave of chunk mutations: group by acting primary, one batch
  /// envelope per group (chunk-ascending group order, deterministic), fanned
  /// out on the shared thread pool when no fault injector is installed.
  /// *done is the max group completion (sim stays max-of-legs).
  Status batched_mutation_wave(std::vector<BatchSub>& subs, SimMicros start,
                               SimMicros* done);

  /// One per-primary mutation group: single striped-lock acquisition round
  /// per node (ascending), one version exchange per key, one envelope +
  /// apply_ops trip to the primary, one per forwarding replica.
  Status mutation_group_leg(std::vector<BatchSub*>& subs, std::uint32_t primary_id,
                            SimMicros start, SimMicros* completion);

  /// One chunk-granular slice of a batched striped read (plus its result).
  struct ReadSub {
    std::string ekey;
    std::uint64_t chunk = 0;
    std::uint64_t off = 0;             ///< intra-chunk offset
    MutableByteView dst;               ///< pre-zeroed slice of the caller buffer
    bool stat_only = false;            ///< piggybacked base-key verification
    // Results (filled by read_group_leg):
    Errc err = Errc::ok;
    std::uint64_t data_len = 0;
    std::uint64_t covered = 0;         ///< extent-backed bytes among data_len
    std::uint64_t size = 0;            ///< stat subs
    Version version = 0;               ///< stat subs / arbitrated read version
    /// Per-sub delivered latency (availability time - group attempt start),
    /// folded into read_latency_ by the caller AFTER the group barrier —
    /// the histogram is not thread-safe and groups may fan out on the pool.
    SimMicros latency_us = 0;
  };

  /// One per-candidate-set read group: a full-payload envelope to
  /// `candidates[0]` plus one digest-only vote envelope per further quorum
  /// candidate, arbitrated per sub-op by version (digest tie-break), with
  /// stale sub-ops re-fetched from the winning replica. Hedging composes: a
  /// slow payload envelope arms a delayed duplicate to candidates[1]. When
  /// an envelope cannot be delivered (fault injector), falls back to legacy
  /// per-chunk read_leg calls for this group's subs.
  Status read_group_leg(std::vector<ReadSub*>& subs,
                        const std::vector<std::uint32_t>& candidates,
                        SimMicros start, SimMicros* completion);

  /// Striped read over batch envelopes + the metadata cache. Handles every
  /// read configuration — R > 1 arbitrates per-sub versions inside the
  /// batch envelopes (see read_group_leg) instead of degrading to per-leg.
  Result<Bytes> batched_striped_read(std::string_view key, std::uint64_t offset,
                                     std::uint64_t len);

  /// size()/stat() backend: metadata-cache lookup first (a hit answers with
  /// zero rounds; the entry is invalidated on local mutation and verified by
  /// the piggybacked stat sub of every batched read), falling back to one
  /// charged stat round that primes the cache.
  Result<BlobStat> cached_stat(const std::string& base);

  // --- client metadata cache (StoreConfig::client_meta_cache) --------------

  /// Cached chunk-0 metadata: logical blob size + chunk-0 version. Verified
  /// by the stat sub piggybacked on every batched read round and invalidated
  /// on any local mutation or observed drift. Per-client (the client is
  /// bound to one logical thread), so no lock.
  struct MetaEntry {
    std::uint64_t logical = 0;
    Version v0 = 0;
  };
  static constexpr std::size_t kMetaCacheCap = 4096;
  void cache_put(const std::string& key, MetaEntry e);
  void cache_erase(const std::string& key);

  /// Lazily-created pool for wall-clock-parallel group fan-out (fault-free
  /// runs only: injected faults need the deterministic sequential order).
  ThreadPool& pool();

  BlobStore* store_;
  sim::SimAgent* agent_;
  ClientCounters counters_;
  Rng rng_{0xb10bfa117ULL};  ///< backoff jitter; per-client, deterministic
  Histogram read_latency_;   ///< delivered read-leg latency (drives hedging)
  std::unordered_map<std::string, MetaEntry> meta_cache_;
  std::unordered_map<std::string, Placement> place_cache_;
  std::unique_ptr<ThreadPool> pool_;
  // Overload resilience state.
  SimMicros op_deadline_at_ = 0;  ///< absolute budget of the op in flight (0 = none)
  double retry_tokens_ = -1.0;    ///< client-wide bucket; <0 = fill on first use
  std::mutex health_mu_;          ///< guards health_ (pool fan-out, fault-free runs)
  std::unordered_map<std::uint32_t, NodeHealth> health_;
  double fleet_ewma_us_ = 0.0;    ///< all-node latency EWMA (suspect baseline)
  std::uint64_t fleet_samples_ = 0;
};

/// A batch of mutations committed atomically across blobs. Preconditions
/// (expected versions) make the transaction optimistic: commit() fails with
/// Errc::conflict — applying nothing — if any precondition no longer holds.
/// Transactional writes address keys directly (no chunk striping): the
/// transaction layer is for small metadata blobs (Týr's use case).
class BlobTransaction {
 public:
  explicit BlobTransaction(BlobClient& client) : client_(&client) {}

  BlobTransaction& write(std::string_view key, std::uint64_t offset, ByteView data);
  BlobTransaction& truncate(std::string_view key, std::uint64_t new_size);
  BlobTransaction& create(std::string_view key);
  BlobTransaction& remove(std::string_view key);

  /// Require `key` to be at `version` at commit time (0 = must not exist).
  BlobTransaction& expect_version(std::string_view key, Version version);

  [[nodiscard]] std::size_t op_count() const noexcept { return ops_.size(); }

  /// Two-round commit: lock all involved servers (ascending node id — no
  /// deadlock), validate preconditions, apply everywhere, release. The only
  /// path that still takes whole-server exclusive locks.
  [[nodiscard]] Status commit();

 private:
  BlobClient* client_;
  std::vector<BlobServer::TxnOp> ops_;
  std::vector<std::pair<std::string, Version>> preconditions_;
};

}  // namespace bsc::blob
