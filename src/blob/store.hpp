// BlobStore: the distributed blob storage service — one BlobServer per
// simulated storage node, a consistent-hashing ring for placement, and the
// replication configuration. Clients (blob::BlobClient) are cheap handles
// onto the store; create one per logical application thread.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "blob/ring.hpp"
#include "blob/server.hpp"
#include "blob/types.hpp"
#include "rpc/transport.hpp"
#include "sim/cluster.hpp"

namespace bsc::blob {

class BlobStore {
 public:
  BlobStore(sim::Cluster& cluster, StoreConfig cfg = {});

  [[nodiscard]] const StoreConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const HashRing& ring() const noexcept { return ring_; }
  [[nodiscard]] rpc::Transport& transport() noexcept { return transport_; }
  [[nodiscard]] sim::Cluster& cluster() noexcept { return *cluster_; }

  [[nodiscard]] std::size_t server_count() const noexcept { return servers_.size(); }
  [[nodiscard]] BlobServer& server(std::uint32_t index) noexcept { return *servers_[index]; }

  /// Replica servers (primary first) for `key`.
  [[nodiscard]] std::vector<std::uint32_t> replicas_of(std::string_view key) const {
    return ring_.locate(key, cfg_.replication);
  }

  // --- failure injection & recovery ---
  /// Mark a server down: reads fail over to the next replica, mutations
  /// proceed degraded (the down replica misses updates until resync).
  void fail_server(std::uint32_t index);

  /// What draining the hinted-handoff queue for a recovered server did.
  struct HintStats {
    std::uint64_t drained = 0;  ///< copies installed from a hint
    std::uint64_t removed = 0;  ///< hinted keys dropped (no live holder left)
  };

  /// Mark a server up again, then drain every hinted-handoff entry other
  /// servers hold for it: each hinted key is re-copied from its freshest
  /// live replica (exact version included), or removed from the recovered
  /// server when no live replica still holds it — a hint must never
  /// resurrect a blob that was removed later. Call resync_server afterwards
  /// to repair whatever no hint covered (hints are volatile).
  void recover_server(std::uint32_t index, sim::SimAgent* agent = nullptr,
                      HintStats* stats = nullptr);
  [[nodiscard]] bool is_down(std::uint32_t index) const;
  /// First live replica of a set (acting primary); nullopt if none is up.
  [[nodiscard]] std::optional<std::uint32_t> first_up(
      const std::vector<std::uint32_t>& replicas) const;

  /// What one resync pass did. `skipped_identical` counts copies whose
  /// content already matched the acting primary (digest exchange only) —
  /// the delta-resync win a WAL-recovered replica gets over a blank one.
  struct ResyncStats {
    std::uint64_t examined = 0;
    std::uint64_t copied = 0;
    std::uint64_t skipped_identical = 0;
    std::uint64_t deleted = 0;
    std::uint64_t bytes_copied = 0;
  };

  /// Repair a recovered server: every object whose replica set includes it
  /// is compared against its acting primary by content digest and copied
  /// only when missing or divergent (ghost copies are deleted). Returns the
  /// number of objects repaired (copied + deleted). Charges `agent` (when
  /// non-null) for the recovery traffic.
  std::uint64_t resync_server(std::uint32_t index, sim::SimAgent* agent = nullptr,
                              ResyncStats* stats = nullptr);

  // --- durability: per-server WAL + checkpoints, crash / restart ---
  /// Give every current server a persistence directory under
  /// `base_dir/server-<index>`. Servers added later stay volatile.
  Status enable_persistence(const std::string& base_dir,
                            persist::JournalConfig jcfg = {});

  /// Process-kill a server: mark it down and wipe its volatile state
  /// (engine + un-fsynced journal buffer). Requires enable_persistence for
  /// anything to survive.
  void crash_server(std::uint32_t index);

  /// Restart a crashed server: rebuild its engine from the local WAL +
  /// checkpoints, mark it up, then delta-resync from peers (content-equal
  /// objects are skipped, divergent/missing ones copied, ghosts deleted).
  /// Returns the resync repair count.
  Result<std::uint64_t> restart_server(std::uint32_t index, sim::SimAgent* agent = nullptr,
                                       persist::RecoveryReport* report = nullptr,
                                       ResyncStats* stats = nullptr);

  // --- elasticity: add / decommission storage nodes with data movement ---
  /// Statistics of one rebalance pass.
  struct RebalanceStats {
    std::uint64_t objects_moved = 0;   ///< copies installed on new owners
    std::uint64_t objects_dropped = 0; ///< copies removed from old owners
    std::uint64_t bytes_moved = 0;
  };

  /// Register `node` (a storage node of the cluster not yet in the store)
  /// as a new blob server, extend the ring, and migrate the keys whose
  /// replica sets changed. Returns the new server's index.
  std::uint32_t add_server(sim::SimNode& node, RebalanceStats* stats = nullptr,
                           sim::SimAgent* agent = nullptr);

  /// Remove server `index` from the ring and re-replicate its keys onto
  /// their new owners, then drop every copy it held. The server object
  /// stays allocated (indices remain stable) but owns no placement.
  Status decommission_server(std::uint32_t index, RebalanceStats* stats = nullptr,
                             sim::SimAgent* agent = nullptr);

  [[nodiscard]] bool in_ring(std::uint32_t index) const { return ring_.has_node(index); }

  // --- scrubbing: detect and repair silent corruption / divergence ---
  struct ScrubReport {
    std::uint64_t objects_checked = 0;
    std::uint64_t checksum_errors = 0;   ///< engine-level checksum mismatches
    std::uint64_t divergent_replicas = 0;///< replicas disagreeing with quorum
    std::uint64_t repaired = 0;
  };

  /// Deep scrub: verify every engine's checksums, then compare replica
  /// copies per key. The authoritative copy is the freshest checksum-clean
  /// one (highest version — never a majority vote, which under quorum
  /// writes could roll back an acked mutation); any copy differing from it
  /// in content OR version counts as divergent. With `repair`, divergent
  /// copies are replaced by an exact install of the authoritative copy.
  /// Maintenance traffic charges `agent`.
  ScrubReport scrub(bool repair, sim::SimAgent* agent = nullptr);

  // --- store-wide introspection for tests/benches ---
  [[nodiscard]] std::uint64_t total_objects();
  [[nodiscard]] std::uint64_t total_live_bytes();
  [[nodiscard]] Status verify_all_integrity();

 private:
  /// Move/copy/drop keys so physical placement matches the (changed) ring.
  void rebalance_after_ring_change(const std::map<std::string, std::uint32_t>& holders,
                                   RebalanceStats* stats, sim::SimAgent* agent);

  /// Replay hinted-handoff entries destined for `index` (see recover_server).
  void drain_hints(std::uint32_t index, sim::SimAgent* agent, HintStats* stats);

  sim::Cluster* cluster_;
  StoreConfig cfg_;
  rpc::Transport transport_;
  HashRing ring_;
  std::vector<std::unique_ptr<BlobServer>> servers_;
  std::vector<std::unique_ptr<std::atomic<bool>>> down_;
};

}  // namespace bsc::blob
