// BlobStore: the distributed blob storage service — one BlobServer per
// simulated storage node, a consistent-hashing ring for placement, and the
// replication configuration. Clients (blob::BlobClient) are cheap handles
// onto the store; create one per logical application thread.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "blob/rebalance.hpp"
#include "blob/ring.hpp"
#include "blob/server.hpp"
#include "blob/types.hpp"
#include "rpc/transport.hpp"
#include "sim/cluster.hpp"

namespace bsc::blob {

/// Where a key lives right now, migration-chain-aware. Outside any migration
/// window `pending` is empty and `replicas` is the ring placement. While the
/// key has a pending entry in one or more open windows, `replicas` is the
/// OLD (authoritative) set of the OLDEST such window — reads, acks and
/// quorum counting stay on it — and `pending` is the union of every
/// newer-epoch new-only owner (plus the final ring owners), the dual-write
/// targets mutations must mirror to so the copies the rebalancers install
/// can never miss an acknowledged write.
struct Placement {
  std::vector<std::uint32_t> replicas;
  std::vector<std::uint32_t> pending;
  std::uint64_t epoch = 0;    ///< ring epoch this placement was computed at
  std::uint32_t windows = 0;  ///< open windows with a pending entry for the key
};

class BlobStore {
 public:
  BlobStore(sim::Cluster& cluster, StoreConfig cfg = {});
  ~BlobStore();

  [[nodiscard]] const StoreConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const HashRing& ring() const noexcept { return ring_; }
  [[nodiscard]] rpc::Transport& transport() noexcept { return transport_; }
  [[nodiscard]] sim::Cluster& cluster() noexcept { return *cluster_; }

  [[nodiscard]] std::size_t server_count() const noexcept { return servers_.size(); }
  [[nodiscard]] BlobServer& server(std::uint32_t index) noexcept { return *servers_[index]; }

  /// Replica servers (primary first) for `key` — the authoritative set,
  /// window-aware (see Placement).
  [[nodiscard]] std::vector<std::uint32_t> replicas_of(std::string_view key) const {
    return placement_of(key).replicas;
  }

  /// Full window-aware placement: the chain fold oldest→newest (see
  /// Placement), or the plain ring placement when no window is open.
  [[nodiscard]] Placement placement_of(std::string_view key) const;

  /// Current membership epoch (bumped by every membership change AND by
  /// every migration-window cutover).
  [[nodiscard]] std::uint64_t ring_epoch() const noexcept { return ring_.epoch(); }

  // --- failure injection & recovery ---
  /// Mark a server down: reads fail over to the next replica, mutations
  /// proceed degraded (the down replica misses updates until resync).
  void fail_server(std::uint32_t index);

  /// What draining the hinted-handoff queue for a recovered server did.
  struct HintStats {
    std::uint64_t drained = 0;  ///< copies installed from a hint
    std::uint64_t removed = 0;  ///< hinted keys dropped (no live holder left)
  };

  /// Mark a server up again, then drain every hinted-handoff entry other
  /// servers hold for it: each hinted key is re-copied from its freshest
  /// live replica (exact version included), or removed from the recovered
  /// server when no live replica still holds it — a hint must never
  /// resurrect a blob that was removed later. Call resync_server afterwards
  /// to repair whatever no hint covered (hints are volatile).
  void recover_server(std::uint32_t index, sim::SimAgent* agent = nullptr,
                      HintStats* stats = nullptr);
  [[nodiscard]] bool is_down(std::uint32_t index) const;
  /// First live replica of a set (acting primary); nullopt if none is up.
  [[nodiscard]] std::optional<std::uint32_t> first_up(
      const std::vector<std::uint32_t>& replicas) const;

  /// What one resync pass did. `skipped_identical` counts copies whose
  /// content already matched the acting primary (digest exchange only) —
  /// the delta-resync win a WAL-recovered replica gets over a blank one.
  struct ResyncStats {
    std::uint64_t examined = 0;
    std::uint64_t copied = 0;
    std::uint64_t skipped_identical = 0;
    std::uint64_t deleted = 0;
    std::uint64_t bytes_copied = 0;
  };

  /// Repair a recovered server: every object whose replica set includes it
  /// is compared against its acting primary by content digest and copied
  /// only when missing or divergent (ghost copies are deleted). Returns the
  /// number of objects repaired (copied + deleted). Charges `agent` (when
  /// non-null) for the recovery traffic.
  std::uint64_t resync_server(std::uint32_t index, sim::SimAgent* agent = nullptr,
                              ResyncStats* stats = nullptr);

  // --- durability: per-server WAL + checkpoints, crash / restart ---
  /// Give every current server a persistence directory under
  /// `base_dir/server-<index>`. The base directory is remembered: servers
  /// added later through (begin_)add_server get journals there too, and
  /// membership changes persist a membership record for recovery.
  Status enable_persistence(const std::string& base_dir,
                            persist::JournalConfig jcfg = {});

  /// Process-kill a server: mark it down and wipe its volatile state
  /// (engine + un-fsynced journal buffer). Requires enable_persistence for
  /// anything to survive.
  void crash_server(std::uint32_t index);

  /// Restart a crashed server: rebuild its engine from the local WAL +
  /// checkpoints, mark it up, then delta-resync from peers (content-equal
  /// objects are skipped, divergent/missing ones copied, ghosts deleted).
  /// Returns the resync repair count.
  Result<std::uint64_t> restart_server(std::uint32_t index, sim::SimAgent* agent = nullptr,
                                       persist::RecoveryReport* report = nullptr,
                                       ResyncStats* stats = nullptr);

  // --- elasticity: add / decommission storage nodes with data movement ---
  /// Statistics of one rebalance pass.
  struct RebalanceStats {
    std::uint64_t objects_moved = 0;   ///< copies installed on new owners
    std::uint64_t objects_dropped = 0; ///< copies removed from old owners
    std::uint64_t bytes_moved = 0;
  };

  /// Register `node` (a storage node of the cluster not yet in the store)
  /// as a new blob server, extend the ring, and synchronously migrate the
  /// keys whose replica sets changed. Returns the new server's index.
  /// Convenience wrapper over begin_add_server + run_to_completion.
  std::uint32_t add_server(sim::SimNode& node, RebalanceStats* stats = nullptr,
                           sim::SimAgent* agent = nullptr);

  /// Remove server `index` from the ring, synchronously re-replicate its
  /// keys onto their new owners, then drop every copy it held. The server
  /// object stays allocated (indices remain stable) but owns no placement.
  /// Convenience wrapper over begin_decommission + run_to_completion.
  Status decommission_server(std::uint32_t index, RebalanceStats* stats = nullptr,
                             sim::SimAgent* agent = nullptr);

  // --- online (incremental) membership changes ---
  //
  // begin_* registers the membership change, bumps the ring epoch, and opens
  // a migration window (every affected key dual-writes until migrated); the
  // returned Rebalancer moves the data incrementally — step() it between
  // client batches, run it to completion, or drive it from a background
  // thread via start_async(). Windows form an EPOCH CHAIN: several joins and
  // leaves may be open at once, each drained by its own Rebalancer under one
  // shared throughput throttle, and finalized in ANY order. Membership
  // registration itself must be called quiescently (no in-flight client
  // ops); the MIGRATIONS are what safely overlap live traffic.

  /// Open an add-server window. If persistence was enabled on the store the
  /// new server gets a journal directory too (so crash/restart keeps
  /// working after growth). Returns the new server's index. `weight` is the
  /// joiner's ring capacity weight (HashRing::add_node): heterogeneous
  /// storage or a warming-up joiner takes a proportional key share, and the
  /// migration plan the window drains is computed against the weighted
  /// ring, so the data moved is proportional too.
  Result<std::uint32_t> begin_add_server(sim::SimNode& node, RebalanceConfig rcfg = {},
                                         double weight = 1.0);

  /// Open a decommission window for server `index` (must be in-ring, up,
  /// and not already the subject of an open window).
  Status begin_decommission(std::uint32_t index, RebalanceConfig rcfg = {});

  /// The rebalancer of the most recently opened membership change (nullptr
  /// before the first begin_*). Earlier windows' rebalancers stay reachable
  /// through rebalancer_at(); pointers remain stable for the store's life.
  [[nodiscard]] Rebalancer* rebalancer() noexcept {
    return rebalancers_.empty() ? nullptr : rebalancers_.back().get();
  }
  [[nodiscard]] std::size_t rebalancer_count() const noexcept {
    return rebalancers_.size();
  }
  [[nodiscard]] Rebalancer* rebalancer_at(std::size_t i) noexcept {
    return i < rebalancers_.size() ? rebalancers_[i].get() : nullptr;
  }

  /// True while at least one migration window is open.
  [[nodiscard]] bool rebalance_active() const noexcept {
    return migrating_.load(std::memory_order_acquire);
  }

  /// Open migration windows right now (the epoch-chain depth).
  [[nodiscard]] std::size_t migration_chain_depth() const;

  /// Register a server object for a previously-grown member WITHOUT a ring
  /// change (no window, no epoch bump): after a full-cluster restart the
  /// membership record knows the member indices and weights, but server
  /// objects bind to live SimNodes and cannot be reconstructed from disk.
  /// Reattach them in index order, then call recover_membership() — it
  /// re-adds recorded members to the ring at their recorded weight and
  /// reopens any persisted migration windows.
  std::uint32_t reattach_server(sim::SimNode& node);

  /// Restore persisted membership after a full-cluster restart: reload the
  /// membership record (epoch + weighted member set + open-window chain)
  /// written on every epoch change, re-apply removals AND additions
  /// (reattach_server first for members beyond the construction-time set),
  /// restore the epoch, then reopen every unfinalized migration window in
  /// chain order — each with a freshly rebuilt plan whose per-key state is
  /// derived from who actually holds the data (a restart mid-migration
  /// resumes where the copies left off). Run the recovered rebalancers
  /// (oldest first, rebalancer_at) to completion to finish the migrations.
  /// No-op when persistence is off or no record exists.
  Status recover_membership();

  [[nodiscard]] bool in_ring(std::uint32_t index) const { return ring_.has_node(index); }

  // --- scrubbing: detect and repair silent corruption / divergence ---
  struct ScrubReport {
    std::uint64_t objects_checked = 0;
    std::uint64_t checksum_errors = 0;   ///< engine-level checksum mismatches
    std::uint64_t divergent_replicas = 0;///< replicas disagreeing with quorum
    std::uint64_t repaired = 0;
  };

  /// Deep scrub: verify every engine's checksums, then compare replica
  /// copies per key. The authoritative copy is the freshest checksum-clean
  /// one (highest version — never a majority vote, which under quorum
  /// writes could roll back an acked mutation); any copy differing from it
  /// in content OR version counts as divergent. With `repair`, divergent
  /// copies are replaced by an exact install of the authoritative copy.
  /// Maintenance traffic charges `agent`.
  ScrubReport scrub(bool repair, sim::SimAgent* agent = nullptr);

  // --- store-wide introspection for tests/benches ---
  [[nodiscard]] std::uint64_t total_objects();
  [[nodiscard]] std::uint64_t total_live_bytes();
  [[nodiscard]] Status verify_all_integrity();

 private:
  friend class Rebalancer;

  /// Replay hinted-handoff entries destined for `index` (see recover_server).
  void drain_hints(std::uint32_t index, sim::SimAgent* agent, HintStats* stats);

  /// The chain fold for one key; caller holds mig_mu_ (any mode) whenever
  /// the chain may be non-empty.
  [[nodiscard]] Placement placement_locked(std::string_view key) const;

  /// Diff placements between `before` and `after` over every live key (any
  /// live server may hold authoritative data for an older open window, so
  /// the universe scan covers them all) into `plan`; every entry starts
  /// pending.
  void build_plan(MigrationPlan& plan, const HashRing& before,
                  const HashRing& after) const;

  /// Re-derive each entry's state from who actually holds the data (plan
  /// rebuilds after a restart or an aborted sibling window): pending when a
  /// live old-set replica holds the key (or one is down — conservative),
  /// migrated when only new-side holders do, dropped when nobody does.
  void assign_plan_states(MigrationPlan& plan) const;

  /// Rebuild every open window's plan against the reconstructed ring
  /// sequence (current ring with the deltas of newer windows undone one by
  /// one), holder-aware. Call quiescently; swaps the plans in under mig_mu_.
  void rebuild_chain_plans();

  /// Append a window for the just-applied ring delta (`before` = pre-delta
  /// ring) and create its Rebalancer. Shared begin_* tail.
  Rebalancer* open_window(MigrationWindow::Kind kind, std::uint32_t subject,
                          double weight, const HashRing& before,
                          RebalanceConfig rcfg);

  /// Push the current ring epoch to every server's response stamp, update
  /// the rebalance gauges, and persist the membership record — including
  /// the open-window chain — when persistence is enabled. Serialized by
  /// publish_mu_: several windows may finalize (and publish) concurrently,
  /// and each rewrite of membership.bsm must be one internally-consistent
  /// snapshot, written in snapshot order.
  void publish_epoch();

  sim::Cluster* cluster_;
  StoreConfig cfg_;
  rpc::Transport transport_;
  HashRing ring_;
  std::vector<std::unique_ptr<BlobServer>> servers_;
  std::vector<std::unique_ptr<std::atomic<bool>>> down_;

  // Migration-chain state. Clients take mig_mu_ shared only inside
  // placement_of (released before any server lock); a rebalancer flips a
  // key's state while holding that key's stripes — stripe-then-mig order on
  // one side, mig-with-no-stripes on the other, so no lock-order inversion.
  // Finalize's cutover (chain surgery + re-basing) takes mig_mu_ exclusive
  // with no stripes held; migrate_key re-validates its fold under the
  // stripes to catch a cutover that raced its snapshot.
  mutable std::shared_mutex mig_mu_;
  std::atomic<bool> migrating_{false};  ///< chain non-empty
  std::vector<std::shared_ptr<MigrationWindow>> chain_;  ///< oldest→newest; guarded by mig_mu_
  std::uint64_t next_window_id_ = 1;                     ///< guarded by mig_mu_
  std::vector<std::unique_ptr<Rebalancer>> rebalancers_; ///< one per begin_*, stable

  /// One pacing horizon shared by every open window's Rebalancer: concurrent
  /// migrations split the configured bandwidth instead of multiplying it.
  struct MigrationThrottle {
    std::mutex mu;
    SimMicros next_allowed_us = 0;
  };
  MigrationThrottle mig_throttle_;

  /// Orders concurrent publish_epoch() calls (snapshot + file rewrite as one
  /// unit) so a stale snapshot can never be the last one written.
  std::mutex publish_mu_;

  std::string persist_base_dir_;  ///< remembered by enable_persistence
  persist::JournalConfig persist_jcfg_;
};

}  // namespace bsc::blob
