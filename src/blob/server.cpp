#include "blob/server.hpp"

#include <cmath>

#include "common/hash.hpp"
#include "obs/metrics.hpp"

namespace bsc::blob {

namespace {
/// Registry series of one server-side op (calls + simulated service time).
struct OpSeries {
  obs::Counter& calls;
  obs::ShardedHistogram& service_us;
};

OpSeries make_op(const char* op) {
  auto& reg = obs::MetricsRegistry::global();
  const std::string base = std::string{"server."} + op;
  return OpSeries{reg.counter(base + ".calls"), reg.histogram(base + ".service_us")};
}

/// All server series, aggregated across every BlobServer instance in the
/// process (per-server decomposition stays with the stripe counter arrays).
struct ServerMetrics {
  OpSeries create = make_op("create");
  OpSeries remove = make_op("remove");
  OpSeries write = make_op("write");
  OpSeries read = make_op("read");
  OpSeries truncate = make_op("truncate");
  OpSeries size = make_op("size");
  OpSeries stat = make_op("stat");
  OpSeries scan = make_op("scan");
  OpSeries txn = make_op("txn");
  obs::ShardedHistogram& read_bytes =
      obs::MetricsRegistry::global().histogram("server.read.bytes");
  obs::ShardedHistogram& write_bytes =
      obs::MetricsRegistry::global().histogram("server.write.bytes");
  obs::Counter& stripe_acquisitions =
      obs::MetricsRegistry::global().counter("server.stripe.acquisitions");
  obs::Counter& stripe_contended =
      obs::MetricsRegistry::global().counter("server.stripe.contended");
};

ServerMetrics& server_metrics() {
  static ServerMetrics m;
  return m;
}

/// Publishes one op when the enclosing call returns; every return path
/// writes the service cost through `service_us` first.
class OpPublisher {
 public:
  OpPublisher(const OpSeries& s, const SimMicros* service_us)
      : s_(s), svc_(service_us) {}
  OpPublisher(const OpPublisher&) = delete;
  OpPublisher& operator=(const OpPublisher&) = delete;
  ~OpPublisher() {
    s_.calls.inc();
    s_.service_us.add(static_cast<std::uint64_t>(*svc_));
  }

 private:
  const OpSeries& s_;
  const SimMicros* svc_;
};
}  // namespace

std::size_t BlobServer::stripe_of(std::string_view key) noexcept {
  static_assert((kLockStripes & (kLockStripes - 1)) == 0, "stripe count is a power of two");
  return fnv1a64(key) & (kLockStripes - 1);
}

BlobServer::KeyLock BlobServer::lock_key(std::string_view key) {
  KeyLock lk;
  lk.structure = std::shared_lock(mu_);
  Stripe& s = stripes_[stripe_of(key)];
  auto& m = server_metrics();
  m.stripe_acquisitions.inc();
  // Contention probe: a failed try_lock means another writer holds this
  // stripe right now — the wait that follows is real contention, not just
  // an acquisition.
  lk.stripe = std::unique_lock(s.mu, std::try_to_lock);
  if (!lk.stripe.owns_lock()) {
    m.stripe_contended.inc();
    lk.stripe.lock();
  }
  s.acquisitions.fetch_add(1, std::memory_order_relaxed);
  return lk;
}

BlobServer::MultiKeyLock BlobServer::lock_keys(const std::vector<std::string_view>& keys) {
  MultiKeyLock lk;
  lk.structure = std::shared_lock(mu_);
  // Dedup the batch's stripes and take them in ascending index order — the
  // same total order repeated lock_key() calls would follow, minus the
  // duplicate acquisitions when several chunk keys share a stripe.
  std::array<bool, kLockStripes> want{};
  for (std::string_view key : keys) want[stripe_of(key)] = true;
  auto& m = server_metrics();
  for (std::size_t i = 0; i < kLockStripes; ++i) {
    if (!want[i]) continue;
    Stripe& s = stripes_[i];
    m.stripe_acquisitions.inc();
    std::unique_lock stripe(s.mu, std::try_to_lock);
    if (!stripe.owns_lock()) {
      m.stripe_contended.inc();
      stripe.lock();
    }
    s.acquisitions.fetch_add(1, std::memory_order_relaxed);
    lk.stripes.push_back(std::move(stripe));
  }
  return lk;
}

Status BlobServer::enable_persistence(const std::string& dir, persist::JournalConfig jcfg) {
  std::unique_lock lk(mu_);
  std::scoped_lock elk(engine_mu_);
  auto j = persist::Journal::open(dir, jcfg);
  if (!j.ok()) return j.error();
  journal_ = std::move(j).take();
  persist_dir_ = dir;
  jcfg_ = jcfg;
  engine_.attach_journal(journal_.get());
  if (engine_.object_count() > 0) {
    // Late enable: objects written before the journal existed are only in
    // memory; snapshot them so the log has a durable base.
    auto c = engine_.write_checkpoint();
    if (!c.ok()) return c.error();
  }
  return Status::success();
}

void BlobServer::crash() {
  std::unique_lock lk(mu_);
  std::scoped_lock elk(engine_mu_);
  engine_.attach_journal(nullptr);
  if (journal_) journal_->abandon();  // un-fsynced batch dies with the process
  journal_.reset();
  engine_ = StorageEngine(ecfg_);
  {
    // Hints are process state, not engine state: they die too. Resync is
    // the durable backstop for whatever they would have repaired.
    std::scoped_lock hlk(hints_mu_);
    hints_.clear();
  }
}

Status BlobServer::restart(persist::RecoveryReport* report) {
  std::unique_lock lk(mu_);
  std::scoped_lock elk(engine_mu_);
  if (persist_dir_.empty()) return {Errc::invalid_argument, "persistence not enabled"};
  auto e = StorageEngine::recover(persist_dir_, ecfg_, report);
  if (!e.ok()) return e.error();
  engine_ = std::move(e).take();
  auto j = persist::Journal::open(persist_dir_, jcfg_);
  if (!j.ok()) return j.error();
  journal_ = std::move(j).take();
  engine_.attach_journal(journal_.get());
  return Status::success();
}

Result<std::uint64_t> BlobServer::checkpoint_now(SimMicros* service_us, bool prune_wal) {
  std::unique_lock lk(mu_);
  std::scoped_lock elk(engine_mu_);
  // Checkpointing reads and rewrites every live byte sequentially, plus a
  // journal barrier.
  *service_us = node_->disk().service_us(engine_.live_bytes(), true) +
                costs_.meta_journal_us;
  return engine_.write_checkpoint(prune_wal);
}

Status BlobServer::sync_journal() {
  std::unique_lock lk(mu_);
  std::scoped_lock elk(engine_mu_);
  if (!journal_) return Status::success();
  return journal_->sync();
}

std::array<std::uint64_t, BlobServer::kLockStripes> BlobServer::stripe_acquisitions() const {
  std::array<std::uint64_t, kLockStripes> out{};
  for (std::size_t i = 0; i < kLockStripes; ++i) {
    out[i] = stripes_[i].acquisitions.load(std::memory_order_relaxed);
  }
  return out;
}

Status BlobServer::create(const std::string& key, SimMicros* service_us) {
  OpPublisher pub(server_metrics().create, service_us);
  KeyLock lk = lock_key(key);
  *service_us = svc_metadata();
  std::scoped_lock elk(engine_mu_);
  return engine_.create(key);
}

Status BlobServer::remove(const std::string& key, SimMicros* service_us) {
  OpPublisher pub(server_metrics().remove, service_us);
  KeyLock lk = lock_key(key);
  *service_us = svc_metadata();
  node_->cache().invalidate(fnv1a64(key));
  std::scoped_lock elk(engine_mu_);
  return engine_.remove(key);
}

Result<WriteOutcome> BlobServer::write(const std::string& key, std::uint64_t off,
                                       ByteView data, bool create_if_missing,
                                       SimMicros* service_us) {
  OpPublisher pub(server_metrics().write, service_us);
  KeyLock lk = lock_key(key);
  std::uint64_t obj_size = 0;
  auto r = [&] {
    std::scoped_lock elk(engine_mu_);
    auto rr = engine_.write(key, off, data, create_if_missing);
    if (rr.ok()) obj_size = engine_.size(key).value_or(0);
    return rr;
  }();
  SimMicros t = costs_.cpu_op_us + svc_bytes_cpu(data.size());
  if (r.ok()) {
    // Log-structured append: sequential disk write; write-through cache.
    t += node_->disk().service_us(data.size(), /*sequential=*/true);
    node_->cache().touch_write(fnv1a64(key), obj_size);
    server_metrics().write_bytes.add(data.size());
  }
  *service_us = t;
  return r;
}

Result<ReadOutcome> BlobServer::read(const std::string& key, std::uint64_t off,
                                     std::uint64_t len, SimMicros* service_us) {
  OpPublisher pub(server_metrics().read, service_us);
  std::shared_lock lk(mu_);
  std::uint64_t obj_size = 0;
  auto r = [&] {
    std::scoped_lock elk(engine_mu_);
    auto rr = engine_.read(key, off, len);
    if (rr.ok()) obj_size = engine_.size(key).value_or(0);
    return rr;
  }();
  SimMicros t = costs_.cpu_op_us;
  if (r.ok()) {
    const auto& out = r.value();
    server_metrics().read_bytes.add(out.data.size());
    t += svc_bytes_cpu(out.data.size());
    const bool cached = node_->cache().touch_read(fnv1a64(key), obj_size);
    if (cached || out.extents_touched == 0) {
      // Served from the page cache (or a pure hole): no disk access.
      t += 1;
    } else {
      // First extent pays the seek; subsequent extents are near-sequential
      // in the log and pay a short settle instead of a full stroke.
      const auto& dp = node_->disk().params();
      t += node_->disk().service_us(out.data.size(), /*sequential=*/false);
      t += static_cast<SimMicros>(out.extents_touched - 1) * (dp.rotational_us / 2);
    }
  }
  *service_us = t;
  return r;
}

void BlobServer::read_batch(const ReadSubOp* subs, std::size_t count,
                            ReadSubResult* results, SimMicros* service_us,
                            SimMicros* per_op_us) {
  auto& m = server_metrics();
  // One structure-lock acquisition and one fixed CPU charge for the whole
  // envelope; each sub-op then pays exactly what read()/stat() would have
  // charged for its own data (stat subs ride along for 1µs).
  std::shared_lock lk(mu_);
  SimMicros t = costs_.cpu_op_us;
  // Digest-only subs are answered from the extent index (span_probe folds
  // the stored per-extent checksums) — no payload bytes are read, so a
  // quorum vote costs what a stat does, and the reply carries only
  // (version, digest). probe_payload votes charge the full read cost
  // anyway: they stand in for a real payload serve on a hedged replica.
  for (std::size_t i = 0; i < count; ++i) {
    const ReadSubOp& sub = subs[i];
    ReadSubResult& res = results[i];
    res = {};
    if (sub.stat_only) {
      m.stat.calls.inc();
      t += 1;
      std::scoped_lock elk(engine_mu_);
      auto s = engine_.size(*sub.key);
      if (!s.ok()) {
        res.err = Errc::not_found;
        if (per_op_us) per_op_us[i] = t;
        continue;
      }
      res.size = s.value();
      res.version = engine_.version(*sub.key).value_or(0);
      if (per_op_us) per_op_us[i] = t;
      continue;
    }
    if (sub.digest_only) {
      std::uint64_t obj_size = 0;
      SpanProbeOutcome probe;
      const Errc perr = [&] {
        std::scoped_lock elk(engine_mu_);
        auto pr = engine_.span_probe(*sub.key, sub.off, sub.len);
        if (!pr.ok()) return pr.code();
        probe = pr.value();
        obj_size = engine_.size(*sub.key).value_or(0);
        res.version = engine_.version(*sub.key).value_or(0);
        return Errc::ok;
      }();
      if (perr != Errc::ok) {
        res.err = perr;
        t += 1;
        if (per_op_us) per_op_us[i] = t;
        continue;
      }
      res.digest = probe.digest;
      res.data_len = probe.data_len;  // the payload bytes the vote avoided
      res.covered = probe.covered;
      if (sub.probe_payload) {
        m.read.calls.inc();
        m.read_bytes.add(probe.data_len);
        t += svc_bytes_cpu(probe.data_len);
        const bool cached = node_->cache().touch_read(fnv1a64(*sub.key), obj_size);
        if (cached || probe.extents_touched == 0) {
          t += 1;
        } else {
          const auto& dp = node_->disk().params();
          t += node_->disk().service_us(probe.data_len, /*sequential=*/false);
          t += static_cast<SimMicros>(probe.extents_touched - 1) *
               (dp.rotational_us / 2);
        }
      } else {
        m.stat.calls.inc();
        t += 1;
      }
      if (per_op_us) per_op_us[i] = t;
      continue;
    }
    std::uint64_t obj_size = 0;
    Version obj_version = 0;
    std::uint64_t span_digest = 0;
    auto r = [&] {
      std::scoped_lock elk(engine_mu_);
      auto rr = engine_.read_into(*sub.key, sub.off, sub.dst);
      if (rr.ok()) {
        obj_size = engine_.size(*sub.key).value_or(0);
        obj_version = engine_.version(*sub.key).value_or(0);
        if (sub.want_digest) {
          // Same extent-index fold the digest-only votes use, so both sides
          // of an arbitration compare digests with one definition.
          auto pr = engine_.span_probe(*sub.key, sub.off, sub.dst.size());
          if (pr.ok()) span_digest = pr.value().digest;
        }
      }
      return rr;
    }();
    if (!r.ok()) {
      res.err = r.code();
      if (per_op_us) per_op_us[i] = t;
      continue;
    }
    const auto& out = r.value();
    res.data_len = out.data_len;
    res.covered = out.covered;
    res.version = obj_version;
    res.digest = span_digest;
    m.read.calls.inc();
    m.read_bytes.add(out.data_len);
    t += svc_bytes_cpu(out.data_len);
    const bool cached = node_->cache().touch_read(fnv1a64(*sub.key), obj_size);
    if (cached || out.extents_touched == 0) {
      t += 1;
    } else {
      const auto& dp = node_->disk().params();
      t += node_->disk().service_us(out.data_len, /*sequential=*/false);
      t += static_cast<SimMicros>(out.extents_touched - 1) * (dp.rotational_us / 2);
    }
    if (per_op_us) per_op_us[i] = t;
  }
  *service_us = t;
}

Result<Version> BlobServer::truncate(const std::string& key, std::uint64_t new_size,
                                     SimMicros* service_us) {
  OpPublisher pub(server_metrics().truncate, service_us);
  KeyLock lk = lock_key(key);
  *service_us = svc_metadata();
  std::scoped_lock elk(engine_mu_);
  return engine_.truncate(key, new_size);
}

Result<std::uint64_t> BlobServer::size(const std::string& key, SimMicros* service_us) {
  OpPublisher pub(server_metrics().size, service_us);
  std::shared_lock lk(mu_);
  *service_us = costs_.cpu_op_us;
  std::scoped_lock elk(engine_mu_);
  return engine_.size(key);
}

Result<BlobStat> BlobServer::stat(const std::string& key, SimMicros* service_us) {
  OpPublisher pub(server_metrics().stat, service_us);
  std::shared_lock lk(mu_);
  *service_us = costs_.cpu_op_us;
  std::scoped_lock elk(engine_mu_);
  auto s = engine_.size(key);
  if (!s.ok()) return s.error();
  auto v = engine_.version(key);
  if (!v.ok()) return v.error();
  return BlobStat{key, s.value(), v.value()};
}

std::vector<BlobStat> BlobServer::scan(const std::string& prefix, SimMicros* service_us) {
  OpPublisher pub(server_metrics().scan, service_us);
  std::shared_lock lk(mu_);
  // The flat namespace has no directory index: scan walks every object
  // regardless of how selective the prefix is (§III: "far from optimized").
  std::scoped_lock elk(engine_mu_);
  *service_us = costs_.cpu_op_us +
                static_cast<SimMicros>(std::ceil(static_cast<double>(engine_.object_count()) *
                                                 costs_.scan_per_obj_us));
  return engine_.scan(prefix);
}

Status BlobServer::apply_txn_ops(const std::vector<TxnOp>& ops, SimMicros* service_us) {
  std::vector<OpRef> refs;
  refs.reserve(ops.size());
  for (const auto& op : ops) {
    refs.push_back(OpRef{op.kind, &op.key, op.offset, op.payload(), op.new_size,
                         op.checksum});
  }
  return apply_ops(refs.data(), refs.size(), service_us);
}

Status BlobServer::apply_ops(const OpRef* ops, std::size_t count, SimMicros* service_us,
                             SimMicros* per_op_us) {
  auto& m = server_metrics();
  OpPublisher pub(m.txn, service_us);
  // Every client mutation arrives here (single-op calls are one-op legs), so
  // per-op attribution lives in this loop: each applied op counts against its
  // own server.<op>.calls series, while the envelope-level call + service
  // time stay on server.txn.*. The fixed request-handling CPU is charged
  // once per envelope — k batched sub-ops parse once, not k times.
  // Caller holds lock_exclusive() or a (Multi)KeyLock covering every op's
  // key; the engine itself is guarded by engine_mu_ (per op, so concurrent
  // readers of other keys interleave between ops, never inside one).
  SimMicros t = costs_.cpu_op_us;
  for (std::size_t i = 0; i < count; ++i) {
    const OpRef& op = ops[i];
    switch (op.kind) {
      case TxnOp::Kind::write: {
        std::uint64_t obj_size = 0;
        Status st = [&]() -> Status {
          std::scoped_lock elk(engine_mu_);
          auto r = engine_.write(*op.key, op.offset, op.data, true, op.checksum);
          if (!r.ok()) return r.error();
          obj_size = engine_.size(*op.key).value_or(0);
          return Status::success();
        }();
        if (!st.ok()) {
          *service_us = t;
          return st;
        }
        m.write.calls.inc();
        m.write_bytes.add(op.data.size());
        t += svc_bytes_cpu(op.data.size()) +
             node_->disk().service_us(op.data.size(), true);
        node_->cache().touch_write(fnv1a64(*op.key), obj_size);
        break;
      }
      case TxnOp::Kind::truncate: {
        std::scoped_lock elk(engine_mu_);
        auto r = engine_.truncate(*op.key, op.new_size);
        if (!r.ok()) {
          *service_us = t;
          return r.error();
        }
        m.truncate.calls.inc();
        t += svc_metadata();
        break;
      }
      case TxnOp::Kind::create: {
        std::scoped_lock elk(engine_mu_);
        auto r = engine_.create(*op.key);
        if (!r.ok()) {
          *service_us = t;
          return r;
        }
        m.create.calls.inc();
        t += svc_metadata();
        break;
      }
      case TxnOp::Kind::remove: {
        node_->cache().invalidate(fnv1a64(*op.key));
        std::scoped_lock elk(engine_mu_);
        auto r = engine_.remove(*op.key);
        if (!r.ok()) {
          *service_us = t;
          return r;
        }
        m.remove.calls.inc();
        t += svc_metadata();
        break;
      }
      case TxnOp::Kind::grow: {
        std::scoped_lock elk(engine_mu_);
        auto r = engine_.grow(*op.key, op.new_size);
        if (!r.ok()) {
          *service_us = t;
          return r.error();
        }
        t += svc_metadata();
        break;
      }
    }
    if (per_op_us != nullptr) per_op_us[i] = t;
  }
  *service_us = t;
  return Status::success();
}

bool BlobServer::version_matches(const std::string& key, Version expected) {
  // Caller holds lock_exclusive() or a KeyLock on `key`.
  std::scoped_lock elk(engine_mu_);
  auto v = engine_.version(key);
  if (!v.ok()) return expected == 0;  // "must not exist"
  return v.value() == expected;
}

Result<std::uint64_t> BlobServer::peek_size(const std::string& key) {
  std::scoped_lock elk(engine_mu_);
  return engine_.size(key);
}

Result<Version> BlobServer::peek_version(const std::string& key) {
  std::scoped_lock elk(engine_mu_);
  return engine_.version(key);
}

Status BlobServer::force_version(const std::string& key, Version v) {
  std::scoped_lock elk(engine_mu_);
  return engine_.set_version(key, v);
}

Status BlobServer::install_copy(const std::string& key, ByteView data,
                                std::uint64_t logical_size, Version version,
                                SimMicros* service_us) {
  KeyLock lk = lock_key(key);
  return install_copy_locked(key, data, logical_size, version, service_us);
}

Status BlobServer::install_copy_locked(const std::string& key, ByteView data,
                                       std::uint64_t logical_size, Version version,
                                       SimMicros* service_us) {
  // Caller holds lock_exclusive() or a KeyLock on `key`.
  node_->cache().invalidate(fnv1a64(key));
  Status st = [&]() -> Status {
    std::scoped_lock elk(engine_mu_);
    if (engine_.contains(key)) {
      auto rm = engine_.remove(key);
      if (!rm.ok()) return rm;
    }
    auto w = engine_.write(key, 0, data, /*create_if_missing=*/true);
    if (!w.ok()) return w.error();
    if (logical_size != data.size()) {
      auto t = engine_.truncate(key, logical_size);
      if (!t.ok()) return t.error();
    }
    return engine_.set_version(key, version);
  }();
  SimMicros t = costs_.cpu_op_us + svc_bytes_cpu(data.size());
  if (st.ok()) {
    t += node_->disk().service_us(data.size(), /*sequential=*/true);
    std::uint64_t obj_size = peek_size(key).value_or(0);
    node_->cache().touch_write(fnv1a64(key), obj_size);
  }
  *service_us = t;
  return st;
}

Result<ReadOutcome> BlobServer::read_locked(const std::string& key, std::uint64_t off,
                                            std::uint64_t len, SimMicros* service_us) {
  // Caller holds lock_exclusive() or a KeyLock on `key` — identical to
  // read() minus the structure lock it would re-acquire (self-deadlock on
  // the rebalancer's copy path, which already holds the key's stripes).
  OpPublisher pub(server_metrics().read, service_us);
  std::uint64_t obj_size = 0;
  auto r = [&] {
    std::scoped_lock elk(engine_mu_);
    auto rr = engine_.read(key, off, len);
    if (rr.ok()) obj_size = engine_.size(key).value_or(0);
    return rr;
  }();
  SimMicros t = costs_.cpu_op_us;
  if (r.ok()) {
    const auto& out = r.value();
    server_metrics().read_bytes.add(out.data.size());
    t += svc_bytes_cpu(out.data.size());
    const bool cached = node_->cache().touch_read(fnv1a64(key), obj_size);
    if (cached || out.extents_touched == 0) {
      t += 1;
    } else {
      const auto& dp = node_->disk().params();
      t += node_->disk().service_us(out.data.size(), /*sequential=*/false);
      t += static_cast<SimMicros>(out.extents_touched - 1) * (dp.rotational_us / 2);
    }
  }
  *service_us = t;
  return r;
}

bool BlobServer::add_hint(std::uint32_t target, const BlobKey& key) {
  std::scoped_lock lk(hints_mu_);
  auto& keys = hints_[target];
  for (const BlobKey& k : keys) {
    if (k == key) return false;  // dedup: one hint per (target, key) suffices
  }
  keys.push_back(key);
  return true;
}

std::vector<BlobKey> BlobServer::take_hints_for(std::uint32_t target) {
  std::scoped_lock lk(hints_mu_);
  auto it = hints_.find(target);
  if (it == hints_.end()) return {};
  std::vector<BlobKey> out = std::move(it->second);
  hints_.erase(it);
  return out;
}

std::uint64_t BlobServer::hint_count() const {
  std::scoped_lock lk(hints_mu_);
  std::uint64_t n = 0;
  for (const auto& [target, keys] : hints_) n += keys.size();
  return n;
}

std::uint64_t BlobServer::object_count() {
  std::shared_lock lk(mu_);
  std::scoped_lock elk(engine_mu_);
  return engine_.object_count();
}

std::uint64_t BlobServer::live_bytes() {
  std::shared_lock lk(mu_);
  std::scoped_lock elk(engine_mu_);
  return engine_.live_bytes();
}

std::uint64_t BlobServer::dead_bytes() {
  std::shared_lock lk(mu_);
  std::scoped_lock elk(engine_mu_);
  return engine_.dead_bytes();
}

std::uint64_t BlobServer::compact(SimMicros* service_us) {
  std::unique_lock lk(mu_);
  std::scoped_lock elk(engine_mu_);
  const std::uint64_t live = engine_.live_bytes();
  const std::uint64_t reclaimed = engine_.compact();
  // Compaction reads and rewrites every live byte sequentially.
  *service_us = node_->disk().service_us(live, true) * 2;
  return reclaimed;
}

Status BlobServer::verify_integrity() {
  std::shared_lock lk(mu_);
  std::scoped_lock elk(engine_mu_);
  return engine_.verify_integrity();
}

Status BlobServer::verify_key(const std::string& key) {
  std::shared_lock lk(mu_);
  std::scoped_lock elk(engine_mu_);
  return engine_.verify_object(key);
}

bool BlobServer::corrupt_for_testing(const std::string& key) {
  std::unique_lock lk(mu_);
  std::scoped_lock elk(engine_mu_);
  return engine_.corrupt_for_testing(key);
}

}  // namespace bsc::blob
