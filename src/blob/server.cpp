#include "blob/server.hpp"

#include <cmath>

#include "common/hash.hpp"

namespace bsc::blob {

Status BlobServer::create(const std::string& key, SimMicros* service_us) {
  std::unique_lock lk(mu_);
  *service_us = svc_metadata();
  return engine_.create(key);
}

Status BlobServer::remove(const std::string& key, SimMicros* service_us) {
  std::unique_lock lk(mu_);
  *service_us = svc_metadata();
  node_->cache().invalidate(fnv1a64(key));
  return engine_.remove(key);
}

Result<WriteOutcome> BlobServer::write(const std::string& key, std::uint64_t off,
                                       ByteView data, bool create_if_missing,
                                       SimMicros* service_us) {
  std::unique_lock lk(mu_);
  auto r = engine_.write(key, off, data, create_if_missing);
  SimMicros t = costs_.cpu_op_us + svc_bytes_cpu(data.size());
  if (r.ok()) {
    // Log-structured append: sequential disk write; write-through cache.
    t += node_->disk().service_us(data.size(), /*sequential=*/true);
    node_->cache().touch_write(fnv1a64(key), engine_.size(key).value_or(0));
  }
  *service_us = t;
  return r;
}

Result<ReadOutcome> BlobServer::read(const std::string& key, std::uint64_t off,
                                     std::uint64_t len, SimMicros* service_us) {
  std::shared_lock lk(mu_);
  auto r = engine_.read(key, off, len);
  SimMicros t = costs_.cpu_op_us;
  if (r.ok()) {
    const auto& out = r.value();
    t += svc_bytes_cpu(out.data.size());
    const bool cached =
        node_->cache().touch_read(fnv1a64(key), engine_.size(key).value_or(0));
    if (cached || out.extents_touched == 0) {
      // Served from the page cache (or a pure hole): no disk access.
      t += 1;
    } else {
      // First extent pays the seek; subsequent extents are near-sequential
      // in the log and pay a short settle instead of a full stroke.
      const auto& dp = node_->disk().params();
      t += node_->disk().service_us(out.data.size(), /*sequential=*/false);
      t += static_cast<SimMicros>(out.extents_touched - 1) * (dp.rotational_us / 2);
    }
  }
  *service_us = t;
  return r;
}

Result<Version> BlobServer::truncate(const std::string& key, std::uint64_t new_size,
                                     SimMicros* service_us) {
  std::unique_lock lk(mu_);
  *service_us = svc_metadata();
  return engine_.truncate(key, new_size);
}

Result<std::uint64_t> BlobServer::size(const std::string& key, SimMicros* service_us) {
  std::shared_lock lk(mu_);
  *service_us = costs_.cpu_op_us;
  return engine_.size(key);
}

Result<BlobStat> BlobServer::stat(const std::string& key, SimMicros* service_us) {
  std::shared_lock lk(mu_);
  *service_us = costs_.cpu_op_us;
  auto s = engine_.size(key);
  if (!s.ok()) return s.error();
  auto v = engine_.version(key);
  if (!v.ok()) return v.error();
  return BlobStat{key, s.value(), v.value()};
}

std::vector<BlobStat> BlobServer::scan(const std::string& prefix, SimMicros* service_us) {
  std::shared_lock lk(mu_);
  // The flat namespace has no directory index: scan walks every object
  // regardless of how selective the prefix is (§III: "far from optimized").
  *service_us = costs_.cpu_op_us +
                static_cast<SimMicros>(std::ceil(static_cast<double>(engine_.object_count()) *
                                                 costs_.scan_per_obj_us));
  return engine_.scan(prefix);
}

Status BlobServer::apply_txn_ops(const std::vector<TxnOp>& ops, SimMicros* service_us) {
  // Caller holds lock_exclusive(); engine access is safe.
  SimMicros t = costs_.cpu_op_us;
  for (const auto& op : ops) {
    switch (op.kind) {
      case TxnOp::Kind::write: {
        auto r = engine_.write(op.key, op.offset, as_view(op.data), true);
        if (!r.ok()) {
          *service_us = t;
          return r.error();
        }
        t += svc_bytes_cpu(op.data.size()) +
             node_->disk().service_us(op.data.size(), true);
        node_->cache().touch_write(fnv1a64(op.key), engine_.size(op.key).value_or(0));
        break;
      }
      case TxnOp::Kind::truncate: {
        auto r = engine_.truncate(op.key, op.new_size);
        if (!r.ok()) {
          *service_us = t;
          return r.error();
        }
        t += svc_metadata();
        break;
      }
      case TxnOp::Kind::create: {
        auto r = engine_.create(op.key);
        if (!r.ok()) {
          *service_us = t;
          return r;
        }
        t += svc_metadata();
        break;
      }
      case TxnOp::Kind::remove: {
        node_->cache().invalidate(fnv1a64(op.key));
        auto r = engine_.remove(op.key);
        if (!r.ok()) {
          *service_us = t;
          return r;
        }
        t += svc_metadata();
        break;
      }
    }
  }
  *service_us = t;
  return Status::success();
}

bool BlobServer::version_matches(const std::string& key, Version expected) {
  // Caller holds lock_exclusive().
  auto v = engine_.version(key);
  if (!v.ok()) return expected == 0;  // "must not exist"
  return v.value() == expected;
}

std::uint64_t BlobServer::object_count() {
  std::shared_lock lk(mu_);
  return engine_.object_count();
}

std::uint64_t BlobServer::live_bytes() {
  std::shared_lock lk(mu_);
  return engine_.live_bytes();
}

std::uint64_t BlobServer::dead_bytes() {
  std::shared_lock lk(mu_);
  return engine_.dead_bytes();
}

std::uint64_t BlobServer::compact(SimMicros* service_us) {
  std::unique_lock lk(mu_);
  const std::uint64_t live = engine_.live_bytes();
  const std::uint64_t reclaimed = engine_.compact();
  // Compaction reads and rewrites every live byte sequentially.
  *service_us = node_->disk().service_us(live, true) * 2;
  return reclaimed;
}

Status BlobServer::verify_integrity() {
  std::shared_lock lk(mu_);
  return engine_.verify_integrity();
}

Status BlobServer::verify_key(const std::string& key) {
  std::shared_lock lk(mu_);
  return engine_.verify_object(key);
}

bool BlobServer::corrupt_for_testing(const std::string& key) {
  std::unique_lock lk(mu_);
  return engine_.corrupt_for_testing(key);
}

}  // namespace bsc::blob
