#include "blob/ring.hpp"

#include <algorithm>
#include <cassert>

#include "common/hash.hpp"

namespace bsc::blob {

HashRing::HashRing(std::uint32_t vnodes_per_node)
    : vnodes_(vnodes_per_node ? vnodes_per_node : 1) {}

void HashRing::add_node(std::uint32_t node_id, double weight) {
  if (!(weight > 0.0)) weight = 1.0;  // nonsense weights degrade to default
  if (!nodes_.insert(node_id).second) return;
  // Capacity weighting: the member takes round(weight * vnodes) points, so
  // its expected key share is proportional to weight (each vnode owns an
  // i.i.d. arc of the ring). At least one point — a member with no points
  // would silently hold no data while counting toward replica fan-out.
  const auto count = static_cast<std::uint32_t>(std::max(
      1.0, weight * static_cast<double>(vnodes_) + 0.5));
  for (std::uint32_t v = 0; v < count; ++v) {
    const std::uint64_t point = mix64(hash_combine(mix64(node_id), v));
    ring_.emplace(point, node_id);
  }
  weights_[node_id] = weight;
  epoch_.fetch_add(1, std::memory_order_release);
}

void HashRing::remove_node(std::uint32_t node_id) {
  if (nodes_.erase(node_id) == 0) return;
  weights_.erase(node_id);
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == node_id ? ring_.erase(it) : std::next(it);
  }
  epoch_.fetch_add(1, std::memory_order_release);
}

double HashRing::weight_of(std::uint32_t node_id) const {
  const auto it = weights_.find(node_id);
  return it == weights_.end() ? 1.0 : it->second;
}

bool HashRing::has_node(std::uint32_t node_id) const { return nodes_.count(node_id) != 0; }

std::vector<std::uint32_t> HashRing::locate(std::string_view key,
                                            std::uint32_t replicas) const {
  std::vector<std::uint32_t> out;
  if (ring_.empty() || replicas == 0) return out;
  // FNV-1a alone has weak high-bit avalanche on short keys that differ only
  // in their last characters (each input byte gets few multiplies), which
  // would cluster such keys into one arc of the ring; the splitmix64
  // finalizer restores full diffusion.
  const std::uint64_t h = mix64(fnv1a64(key));
  auto it = ring_.lower_bound(h);
  const std::size_t want = std::min<std::size_t>(replicas, nodes_.size());
  out.reserve(want);
  // Walk clockwise collecting distinct physical nodes.
  for (std::size_t steps = 0; steps < ring_.size() && out.size() < want; ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    const std::uint32_t node = it->second;
    if (std::find(out.begin(), out.end(), node) == out.end()) out.push_back(node);
    ++it;
  }
  return out;
}

std::uint32_t HashRing::primary(std::string_view key) const {
  auto r = locate(key, 1);
  assert(!r.empty());
  return r.front();
}

}  // namespace bsc::blob
