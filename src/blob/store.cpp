#include "blob/store.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/hash.hpp"
#include "obs/metrics.hpp"
#include "persist/checkpoint.hpp"

namespace bsc::blob {

BlobStore::BlobStore(sim::Cluster& cluster, StoreConfig cfg)
    : cluster_(&cluster), cfg_(cfg), transport_(cluster), ring_(cfg.vnodes_per_node) {
  servers_.reserve(cluster.storage_count());
  for (std::size_t i = 0; i < cluster.storage_count(); ++i) {
    servers_.push_back(std::make_unique<BlobServer>(cluster.storage_node(i)));
    ring_.add_node(static_cast<std::uint32_t>(i));
    down_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
  for (auto& s : servers_) s->set_ring_epoch(ring_.epoch());
}

BlobStore::~BlobStore() {
  if (rebalancer_) rebalancer_->join();
}

Placement BlobStore::placement_of(std::string_view key) const {
  if (!migrating_.load(std::memory_order_acquire)) {
    return {ring_.locate(key, cfg_.replication), {}, ring_.epoch()};
  }
  std::shared_lock lk(mig_mu_);
  if (!plan_) {  // window closed between the flag check and the lock
    return {ring_.locate(key, cfg_.replication), {}, ring_.epoch()};
  }
  const auto it = plan_->keys.find(std::string(key));
  if (it == plan_->keys.end()) {
    // Placement unchanged by the membership change, or a key created after
    // it: the target ring is authoritative.
    return {ring_.locate(key, cfg_.replication), {}, ring_.epoch()};
  }
  const MigrationPlan::Entry& e = it->second;
  if (e.state == MigrationPlan::KeyState::migrated) {
    return {e.new_replicas, {}, ring_.epoch()};
  }
  // Pending: the old set keeps serving reads and counting acks; new-only
  // owners are dual-write targets until the copy lands.
  Placement p{e.old_replicas, {}, ring_.epoch()};
  for (std::uint32_t n : e.new_replicas) {
    if (std::find(e.old_replicas.begin(), e.old_replicas.end(), n) ==
        e.old_replicas.end()) {
      p.pending.push_back(n);
    }
  }
  return p;
}

void BlobStore::publish_epoch() {
  const std::uint64_t e = ring_.epoch();
  for (auto& s : servers_) s->set_ring_epoch(e);
  obs::MetricsRegistry::global().gauge("rebalance.epoch").set(
      static_cast<std::int64_t>(e));
  if (!persist_base_dir_.empty()) {
    persist::MembershipRecord rec;
    rec.epoch = e;
    rec.members = ring_.members();
    (void)persist::write_membership(persist_base_dir_, rec);
  }
}

Status BlobStore::recover_membership() {
  if (persist_base_dir_.empty()) return Status::success();
  auto rec = persist::load_membership(persist_base_dir_);
  if (!rec.ok()) {
    return rec.code() == Errc::not_found ? Status::success() : rec.error().code;
  }
  // Removals are re-applied (a decommissioned server must not rejoin the
  // ring just because the process restarted); additions were re-registered
  // by the caller before this. Epoch never moves backwards.
  for (std::uint32_t i = 0; i < servers_.size(); ++i) {
    const bool member = std::find(rec.value().members.begin(),
                                  rec.value().members.end(),
                                  i) != rec.value().members.end();
    if (!member && ring_.has_node(i)) ring_.remove_node(i);
  }
  ring_.set_epoch(rec.value().epoch);
  publish_epoch();
  return Status::success();
}

void BlobStore::fail_server(std::uint32_t index) {
  down_[index]->store(true, std::memory_order_release);
}

void BlobStore::recover_server(std::uint32_t index, sim::SimAgent* agent,
                               HintStats* stats) {
  down_[index]->store(false, std::memory_order_release);
  drain_hints(index, agent, stats);
}

void BlobStore::drain_hints(std::uint32_t index, sim::SimAgent* agent,
                            HintStats* stats) {
  // Every surviving server may hold hints for the recovered one; union the
  // hinted key sets (the same key can be hinted by several coordinators).
  // Drain order is part of the determinism contract: coordinators are
  // visited in ascending server index and the union is drained in sorted
  // key order, so a fixed-seed chaos run issues the identical repair
  // sequence on every platform/sanitizer — even when a membership change
  // interleaved with the outage and reshuffled who hinted what.
  std::vector<std::string> keys;
  for (std::uint32_t j = 0; j < servers_.size(); ++j) {
    if (j == index || is_down(j)) continue;
    for (auto& k : servers_[j]->take_hints_for(index)) keys.push_back(std::move(k));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  if (keys.empty()) return;

  BlobServer& target = *servers_[index];
  for (const auto& key : keys) {
    // Placement-aware ownership check: while a migration window is open the
    // recovered server may own `key` only as a PENDING (new) owner — the
    // hint is still live (the dual write it records was acked against the
    // old set and the migration copy may have happened before the hint's
    // mutation). Dropping it would strand the pending copy stale until
    // finalize's verify pass.
    const Placement p = placement_of(key);
    const bool owner =
        std::find(p.replicas.begin(), p.replicas.end(), index) != p.replicas.end() ||
        std::find(p.pending.begin(), p.pending.end(), index) != p.pending.end();
    if (!owner) {
      continue;  // ring changed while down; rebalance owns this key now
    }
    const auto& replicas = p.replicas;
    // Source = freshest live holder. A hint records *that* a mutation was
    // missed, not its payload, so the repair copies current state — which
    // subsumes any ops missed after the hint was written.
    bool found = false;
    std::uint32_t best = 0;
    Version best_v = 0;
    for (std::uint32_t r : replicas) {
      if (r == index || is_down(r)) continue;
      auto v = servers_[r]->peek_version(key);
      if (!v.ok()) continue;
      if (!found || v.value() > best_v) {
        found = true;
        best = r;
        best_v = v.value();
      }
    }
    if (!found) {
      // No live replica holds the key: it was removed after the hint was
      // recorded. Dropping the recovered server's stale copy (if any) —
      // installing it would resurrect a deleted blob.
      SimMicros svc = 0;
      if (target.stat(key, &svc).ok()) {
        SimMicros rm_svc = 0;
        (void)target.remove(key, &rm_svc);
        svc += rm_svc;
        if (stats) ++stats->removed;
      }
      if (agent) {
        transport_.call_reliable(*agent, target.node(), 64, 64, svc);
      } else {
        target.node().serve(0, svc);
      }
      continue;
    }
    if (target.peek_version(key).value_or(0) >= best_v) {
      continue;  // already as fresh as any live holder (e.g. WAL recovery)
    }
    BlobServer& source = *servers_[best];
    SimMicros svc = 0;
    auto size = source.size(key, &svc);
    if (!size.ok()) continue;
    auto data = source.read(key, 0, size.value(), &svc);
    if (!data.ok()) continue;
    SimMicros put_svc = 0;
    if (!target
             .install_copy(key, as_view(data.value().data), size.value(), best_v,
                           &put_svc)
             .ok()) {
      continue;
    }
    if (agent) {
      transport_.call_reliable(*agent, target.node(), size.value() + 64, 64,
                               svc + put_svc);
    } else {
      target.node().serve(0, svc + put_svc);
    }
    if (stats) ++stats->drained;
  }
}

bool BlobStore::is_down(std::uint32_t index) const {
  return down_[index]->load(std::memory_order_acquire);
}

std::optional<std::uint32_t> BlobStore::first_up(
    const std::vector<std::uint32_t>& replicas) const {
  for (std::uint32_t n : replicas) {
    if (!is_down(n)) return n;
  }
  return std::nullopt;
}

Status BlobStore::enable_persistence(const std::string& base_dir,
                                     persist::JournalConfig jcfg) {
  for (std::uint32_t i = 0; i < servers_.size(); ++i) {
    auto st = servers_[i]->enable_persistence(
        base_dir + "/server-" + std::to_string(i), jcfg);
    if (!st.ok()) return st;
  }
  // Remember the base so servers added later get journals too, and so
  // membership changes can persist their record for recovery.
  const bool have_record = persist::load_membership(base_dir).ok();
  persist_base_dir_ = base_dir;
  persist_jcfg_ = jcfg;
  if (have_record) {
    // A membership record survives from a previous incarnation. Writing one
    // here would stamp the construction-time member set over the removals it
    // encodes, so only propagate the epoch to the servers and leave the file
    // for recover_membership() (or the next membership change) to rewrite.
    const std::uint64_t e = ring_.epoch();
    for (auto& s : servers_) s->set_ring_epoch(e);
    obs::MetricsRegistry::global().gauge("rebalance.epoch").set(
        static_cast<std::int64_t>(e));
  } else {
    publish_epoch();
  }
  return Status::success();
}

void BlobStore::crash_server(std::uint32_t index) {
  fail_server(index);
  servers_[index]->crash();
}

Result<std::uint64_t> BlobStore::restart_server(std::uint32_t index, sim::SimAgent* agent,
                                                persist::RecoveryReport* report,
                                                ResyncStats* stats) {
  auto st = servers_[index]->restart(report);
  if (!st.ok()) return st.error();
  // recover_server drains hinted handoff first (targeted, version-exact);
  // the digest resync below only moves whatever no hint covered.
  recover_server(index, agent);
  // Local recovery already rebuilt everything the WAL captured; the resync
  // pass only moves the delta (updates missed while down, ghost removals).
  return resync_server(index, agent, stats);
}

std::uint64_t BlobStore::resync_server(std::uint32_t index, sim::SimAgent* agent,
                                       ResyncStats* stats) {
  if (is_down(index)) return 0;  // recover first
  // Collect every key that should live on `index`, as seen by any healthy
  // peer (the recovering server's own view may be stale or empty).
  std::map<std::string, std::uint32_t> to_repair;  // key -> source server
  for (std::uint32_t j = 0; j < servers_.size(); ++j) {
    if (j == index || is_down(j)) continue;
    SimMicros svc = 0;
    for (const auto& stat : servers_[j]->scan("", &svc)) {
      const auto replicas = replicas_of(stat.key);
      if (std::find(replicas.begin(), replicas.end(), index) == replicas.end()) continue;
      // Source = the acting primary among healthy peers.
      for (std::uint32_t r : replicas) {
        if (r != index && !is_down(r)) {
          to_repair.emplace(stat.key, r);
          break;
        }
      }
    }
  }
  std::uint64_t repaired = 0;

  // Deletion pass: keys the recovering server still holds but no healthy
  // peer knows were removed while it was down — drop the ghosts, or they
  // would resurrect through scan().
  {
    BlobServer& target = *servers_[index];
    SimMicros svc = 0;
    for (const auto& stat : target.scan("", &svc)) {
      if (to_repair.count(stat.key)) continue;  // will be overwritten anyway
      const auto replicas = replicas_of(stat.key);
      bool any_healthy_peer = false;
      bool held_by_peer = false;
      bool any_down_peer = false;
      for (std::uint32_t r : replicas) {
        if (r == index) continue;
        if (is_down(r)) {
          any_down_peer = true;
          continue;
        }
        any_healthy_peer = true;
        SimMicros peek_svc = 0;
        if (servers_[r]->stat(stat.key, &peek_svc).ok()) held_by_peer = true;
      }
      // Quorum mode cannot tell a ghost (removed while down) from an acked
      // copy whose only other holder is currently down — deleting the
      // latter would hide an acknowledged write until the peer returns.
      // Defer the deletion until the whole replica set is reachable.
      if (cfg_.write_quorum > 0 && any_down_peer) continue;
      if (any_healthy_peer && !held_by_peer) {
        SimMicros rm_svc = 0;
        (void)target.remove(stat.key, &rm_svc);
        target.node().serve(agent ? agent->now() : 0, rm_svc);
        ++repaired;
        if (stats) ++stats->deleted;
      }
    }
  }

  for (const auto& [key, src] : to_repair) {
    BlobServer& source = *servers_[src];
    BlobServer& target = *servers_[index];
    if (stats) ++stats->examined;
    SimMicros svc = 0;
    auto size = source.size(key, &svc);
    if (!size.ok()) continue;
    auto data = source.read(key, 0, size.value(), &svc);
    if (!data.ok()) continue;

    const Version src_version = source.peek_version(key).value_or(1);

    // Never move a replica backward: if the target's copy is FRESHER than
    // this source (it survived a crash holding applies the source missed),
    // overwriting it could erase the last quorum copy of an acked write.
    // Leave it — scrub's freshest-wins pass spreads it the other way.
    if (target.peek_version(key).value_or(0) > src_version) {
      if (stats) ++stats->skipped_identical;
      continue;
    }

    // Delta check: a copy the target already holds (e.g. via local WAL
    // recovery) with identical content needs no recopy — only the digest
    // crosses the wire. Equality is judged on bytes; if the versions drifted
    // apart (quorum-mode misses) the target's is aligned to the source's, so
    // version arbitration keeps implying content equality afterwards.
    {
      SimMicros tsvc = 0;
      auto tsize = target.size(key, &tsvc);
      if (tsize.ok() && tsize.value() == size.value()) {
        auto tdata = target.read(key, 0, tsize.value(), &tsvc);
        if (tdata.ok() && content_checksum(as_view(tdata.value().data)) ==
                              content_checksum(as_view(data.value().data))) {
          if (target.peek_version(key).value_or(0) != src_version) {
            auto lock = target.lock_exclusive();
            (void)target.force_version(key, src_version);
          }
          if (stats) ++stats->skipped_identical;
          if (agent) {
            transport_.call_reliable(*agent, target.node(), 64, 64, tsvc);
          } else {
            target.node().serve(0, tsvc);
          }
          continue;
        }
      }
    }
    // Replace the target's copy wholesale with an exact install — contents,
    // logical size, and the source's version (holes come back as explicit
    // zeros), so the repaired replica is indistinguishable from one that
    // applied the original op stream.
    {
      SimMicros put_svc = 0;
      if (!target
               .install_copy(key, as_view(data.value().data), size.value(),
                             src_version, &put_svc)
               .ok()) {
        continue;
      }
      svc += put_svc;
    }
    if (agent) {
      transport_.call_reliable(*agent, target.node(), size.value() + 64, 64, svc);
    } else {
      target.node().serve(0, svc);
    }
    ++repaired;
    if (stats) {
      ++stats->copied;
      stats->bytes_copied += size.value();
    }
  }
  return repaired;
}

std::unique_ptr<MigrationPlan> BlobStore::build_plan(const HashRing& before) const {
  // Key universe: every live key with a reachable holder. std::map keeps the
  // plan (and thus migration order) deterministic.
  auto plan = std::make_unique<MigrationPlan>();
  std::set<std::string> universe;
  for (std::uint32_t j = 0; j < servers_.size(); ++j) {
    if (!before.has_node(j) || is_down(j)) continue;
    SimMicros svc = 0;
    for (const auto& s : servers_[j]->scan("", &svc)) universe.insert(s.key);
  }
  for (const std::string& key : universe) {
    MigrationPlan::Entry e;
    e.old_replicas = before.locate(key, cfg_.replication);
    e.new_replicas = ring_.locate(key, cfg_.replication);
    if (e.old_replicas == e.new_replicas) continue;  // ~ (N-K)/N of all keys
    plan->keys.emplace(key, std::move(e));
  }
  plan->pending = plan->keys.size();
  return plan;
}

Result<std::uint32_t> BlobStore::begin_add_server(sim::SimNode& node,
                                                  RebalanceConfig rcfg, double weight) {
  if (migrating_.load(std::memory_order_acquire)) {
    return Error{Errc::busy, "a rebalance is already in progress"};
  }
  if (rebalancer_) rebalancer_->join();

  auto before = std::make_unique<HashRing>(ring_);
  const auto index = static_cast<std::uint32_t>(servers_.size());
  servers_.push_back(std::make_unique<BlobServer>(node));
  down_.push_back(std::make_unique<std::atomic<bool>>(false));
  if (!persist_base_dir_.empty()) {
    auto st = servers_[index]->enable_persistence(
        persist_base_dir_ + "/server-" + std::to_string(index), persist_jcfg_);
    if (!st.ok()) return st.error();
  }
  ring_.add_node(index, weight);  // bumps the ring epoch

  auto plan = build_plan(*before);
  {
    std::unique_lock lk(mig_mu_);
    plan_ = std::move(plan);
    old_ring_ = std::move(before);
    migrating_.store(true, std::memory_order_release);
  }
  publish_epoch();
  obs::MetricsRegistry::global().gauge("rebalance.active").set(1);
  rebalancer_ = std::make_unique<Rebalancer>(*this, Rebalancer::Kind::add, index, rcfg);
  return index;
}

Status BlobStore::begin_decommission(std::uint32_t index, RebalanceConfig rcfg) {
  if (index >= servers_.size() || !in_ring(index)) {
    return {Errc::not_found, "server not in ring"};
  }
  if (is_down(index)) return {Errc::busy, "server is down; recover or resync first"};
  if (migrating_.load(std::memory_order_acquire)) {
    return {Errc::busy, "a rebalance is already in progress"};
  }
  if (rebalancer_) rebalancer_->join();

  auto before = std::make_unique<HashRing>(ring_);
  ring_.remove_node(index);  // bumps the ring epoch

  auto plan = build_plan(*before);
  {
    std::unique_lock lk(mig_mu_);
    plan_ = std::move(plan);
    old_ring_ = std::move(before);
    migrating_.store(true, std::memory_order_release);
  }
  publish_epoch();
  obs::MetricsRegistry::global().gauge("rebalance.active").set(1);
  rebalancer_ = std::make_unique<Rebalancer>(*this, Rebalancer::Kind::decommission,
                                             index, rcfg);
  return Status::success();
}

std::uint32_t BlobStore::add_server(sim::SimNode& node, RebalanceStats* stats,
                                    sim::SimAgent* agent) {
  auto r = begin_add_server(node);
  if (!r.ok()) return static_cast<std::uint32_t>(servers_.size());
  (void)rebalancer_->run_to_completion(agent);
  if (stats) {
    const auto p = rebalancer_->progress();
    stats->objects_moved += p.copies_installed;
    stats->bytes_moved += p.bytes_moved;
    stats->objects_dropped += p.copies_dropped;
  }
  return r.value();
}

Status BlobStore::decommission_server(std::uint32_t index, RebalanceStats* stats,
                                      sim::SimAgent* agent) {
  auto st = begin_decommission(index);
  if (!st.ok()) return st;
  st = rebalancer_->run_to_completion(agent);
  if (stats) {
    const auto p = rebalancer_->progress();
    stats->objects_moved += p.copies_installed;
    stats->bytes_moved += p.bytes_moved;
    stats->objects_dropped += p.copies_dropped;
  }
  return st;
}

BlobStore::ScrubReport BlobStore::scrub(bool repair, sim::SimAgent* agent) {
  ScrubReport report;
  // Key universe across all live servers.
  std::map<std::string, bool> keys;
  for (std::uint32_t j = 0; j < servers_.size(); ++j) {
    if (!in_ring(j) || is_down(j)) continue;
    SimMicros svc = 0;
    for (const auto& s : servers_[j]->scan("", &svc)) keys.emplace(s.key, true);
  }

  for (const auto& [key, unused] : keys) {
    (void)unused;
    ++report.objects_checked;
    const auto replicas = replicas_of(key);

    // Gather each live replica's bytes + version + engine checksum verdict.
    struct Copy {
      std::uint32_t server;
      Bytes data;
      std::uint64_t fingerprint;
      bool checksum_ok;
      Version version;
    };
    std::vector<Copy> copies;
    for (std::uint32_t r : replicas) {
      if (is_down(r)) continue;
      BlobServer& srv = *servers_[r];
      SimMicros svc = 0;
      auto st = srv.stat(key, &svc);
      if (!st.ok()) continue;  // missing copy: resync territory, not scrub
      auto data = srv.read(key, 0, st.value().size, &svc);
      if (!data.ok()) continue;
      const bool sum_ok = srv.verify_key(key).ok();
      if (!sum_ok) ++report.checksum_errors;
      // Charge the scrub read (sequential sweep) to the maintenance agent.
      if (agent) transport_.call_reliable(*agent, srv.node(), 64, st.value().size, svc);
      const std::uint64_t fp = content_checksum(as_view(data.value().data));
      copies.push_back({r, std::move(data.value().data), fp, sum_ok, st.value().version});
    }
    if (copies.size() < 2) continue;

    // Authoritative copy: the freshest (highest-version) checksum-clean
    // one. Never a majority vote — under quorum writes a minority replica
    // may be the only one holding an acked mutation, and voting would roll
    // it back. The write path keeps versions identical across replicas
    // that applied the same ops, so "freshest clean copy" is exact.
    const Copy* good = nullptr;
    for (const auto& c : copies) {
      if (c.checksum_ok && (!good || c.version > good->version)) good = &c;
    }
    if (!good) continue;  // everything corrupt: unrecoverable here
    for (const auto& c : copies) {
      if (c.checksum_ok && c.fingerprint == good->fingerprint &&
          c.version == good->version) {
        continue;
      }
      ++report.divergent_replicas;
      if (!repair) continue;
      BlobServer& target = *servers_[c.server];
      SimMicros svc = 0;
      if (target
              .install_copy(key, as_view(good->data), good->data.size(),
                            good->version, &svc)
              .ok()) {
        ++report.repaired;
        if (agent) {
          transport_.call_reliable(*agent, target.node(), good->data.size() + 64, 64,
                                   svc);
        }
      }
    }
  }
  return report;
}

std::uint64_t BlobStore::total_objects() {
  std::uint64_t n = 0;
  for (auto& s : servers_) n += s->object_count();
  return n;
}

std::uint64_t BlobStore::total_live_bytes() {
  std::uint64_t n = 0;
  for (auto& s : servers_) n += s->live_bytes();
  return n;
}

Status BlobStore::verify_all_integrity() {
  for (auto& s : servers_) {
    auto st = s->verify_integrity();
    if (!st.ok()) return st;
  }
  return Status::success();
}

}  // namespace bsc::blob
