#include "blob/store.hpp"

#include <algorithm>
#include <map>

#include "common/hash.hpp"

namespace bsc::blob {

BlobStore::BlobStore(sim::Cluster& cluster, StoreConfig cfg)
    : cluster_(&cluster), cfg_(cfg), transport_(cluster), ring_(cfg.vnodes_per_node) {
  servers_.reserve(cluster.storage_count());
  for (std::size_t i = 0; i < cluster.storage_count(); ++i) {
    servers_.push_back(std::make_unique<BlobServer>(cluster.storage_node(i)));
    ring_.add_node(static_cast<std::uint32_t>(i));
    down_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
}

void BlobStore::fail_server(std::uint32_t index) {
  down_[index]->store(true, std::memory_order_release);
}

void BlobStore::recover_server(std::uint32_t index) {
  down_[index]->store(false, std::memory_order_release);
}

bool BlobStore::is_down(std::uint32_t index) const {
  return down_[index]->load(std::memory_order_acquire);
}

std::optional<std::uint32_t> BlobStore::first_up(
    const std::vector<std::uint32_t>& replicas) const {
  for (std::uint32_t n : replicas) {
    if (!is_down(n)) return n;
  }
  return std::nullopt;
}

Status BlobStore::enable_persistence(const std::string& base_dir,
                                     persist::JournalConfig jcfg) {
  for (std::uint32_t i = 0; i < servers_.size(); ++i) {
    auto st = servers_[i]->enable_persistence(
        base_dir + "/server-" + std::to_string(i), jcfg);
    if (!st.ok()) return st;
  }
  return Status::success();
}

void BlobStore::crash_server(std::uint32_t index) {
  fail_server(index);
  servers_[index]->crash();
}

Result<std::uint64_t> BlobStore::restart_server(std::uint32_t index, sim::SimAgent* agent,
                                                persist::RecoveryReport* report,
                                                ResyncStats* stats) {
  auto st = servers_[index]->restart(report);
  if (!st.ok()) return st.error();
  recover_server(index);
  // Local recovery already rebuilt everything the WAL captured; the resync
  // pass only moves the delta (updates missed while down, ghost removals).
  return resync_server(index, agent, stats);
}

std::uint64_t BlobStore::resync_server(std::uint32_t index, sim::SimAgent* agent,
                                       ResyncStats* stats) {
  if (is_down(index)) return 0;  // recover first
  // Collect every key that should live on `index`, as seen by any healthy
  // peer (the recovering server's own view may be stale or empty).
  std::map<std::string, std::uint32_t> to_repair;  // key -> source server
  for (std::uint32_t j = 0; j < servers_.size(); ++j) {
    if (j == index || is_down(j)) continue;
    SimMicros svc = 0;
    for (const auto& stat : servers_[j]->scan("", &svc)) {
      const auto replicas = replicas_of(stat.key);
      if (std::find(replicas.begin(), replicas.end(), index) == replicas.end()) continue;
      // Source = the acting primary among healthy peers.
      for (std::uint32_t r : replicas) {
        if (r != index && !is_down(r)) {
          to_repair.emplace(stat.key, r);
          break;
        }
      }
    }
  }
  std::uint64_t repaired = 0;

  // Deletion pass: keys the recovering server still holds but no healthy
  // peer knows were removed while it was down — drop the ghosts, or they
  // would resurrect through scan().
  {
    BlobServer& target = *servers_[index];
    SimMicros svc = 0;
    for (const auto& stat : target.scan("", &svc)) {
      if (to_repair.count(stat.key)) continue;  // will be overwritten anyway
      const auto replicas = replicas_of(stat.key);
      bool any_healthy_peer = false;
      bool held_by_peer = false;
      for (std::uint32_t r : replicas) {
        if (r == index || is_down(r)) continue;
        any_healthy_peer = true;
        SimMicros peek_svc = 0;
        if (servers_[r]->stat(stat.key, &peek_svc).ok()) held_by_peer = true;
      }
      if (any_healthy_peer && !held_by_peer) {
        SimMicros rm_svc = 0;
        (void)target.remove(stat.key, &rm_svc);
        target.node().serve(agent ? agent->now() : 0, rm_svc);
        ++repaired;
        if (stats) ++stats->deleted;
      }
    }
  }

  for (const auto& [key, src] : to_repair) {
    BlobServer& source = *servers_[src];
    BlobServer& target = *servers_[index];
    if (stats) ++stats->examined;
    SimMicros svc = 0;
    auto size = source.size(key, &svc);
    if (!size.ok()) continue;
    auto data = source.read(key, 0, size.value(), &svc);
    if (!data.ok()) continue;

    // Delta check: a copy the target already holds (e.g. via local WAL
    // recovery) with identical content needs no recopy — only the digest
    // crosses the wire. Versions may differ across replicas by design, so
    // equality is judged on bytes.
    {
      SimMicros tsvc = 0;
      auto tsize = target.size(key, &tsvc);
      if (tsize.ok() && tsize.value() == size.value()) {
        auto tdata = target.read(key, 0, tsize.value(), &tsvc);
        if (tdata.ok() && content_checksum(as_view(tdata.value().data)) ==
                              content_checksum(as_view(data.value().data))) {
          if (stats) ++stats->skipped_identical;
          if (agent) {
            transport_.call(*agent, target.node(), 64, 64, tsvc);
          } else {
            target.node().serve(0, tsvc);
          }
          continue;
        }
      }
    }
    // Replace the target's copy wholesale; the copy is content-equal (holes
    // come back as explicit zeros) even though versions restart.
    {
      auto lock = target.lock_exclusive();
      std::vector<BlobServer::TxnOp> ops;
      ops.push_back({BlobServer::TxnOp::Kind::remove, key, 0, {}, 0});
      ops.push_back({BlobServer::TxnOp::Kind::write, key, 0,
                     std::move(data.value().data), 0});
      ops.push_back({BlobServer::TxnOp::Kind::truncate, key, 0, {}, size.value()});
      SimMicros apply_svc = 0;
      // remove may fail when the target never had the key; retry without it.
      if (!target.apply_txn_ops(ops, &apply_svc).ok()) {
        ops.erase(ops.begin());
        apply_svc = 0;
        if (!target.apply_txn_ops(ops, &apply_svc).ok()) continue;
      }
      svc += apply_svc;
    }
    if (agent) {
      transport_.call(*agent, target.node(), size.value() + 64, 64, svc);
    } else {
      target.node().serve(0, svc);
    }
    ++repaired;
    if (stats) {
      ++stats->copied;
      stats->bytes_copied += size.value();
    }
  }
  return repaired;
}

namespace {
/// Snapshot of every live key with a reachable holder, taken before a ring
/// change so post-change placements can be compared against it.
struct KeySnapshot {
  std::map<std::string, std::uint32_t> holder;  ///< key -> some live server
};
}  // namespace

std::uint32_t BlobStore::add_server(sim::SimNode& node, RebalanceStats* stats,
                                    sim::SimAgent* agent) {
  // Capture pre-change key universe (any live holder suffices as source).
  KeySnapshot snap;
  for (std::uint32_t j = 0; j < servers_.size(); ++j) {
    if (!in_ring(j) || is_down(j)) continue;
    SimMicros svc = 0;
    for (const auto& s : servers_[j]->scan("", &svc)) snap.holder.emplace(s.key, j);
  }

  const auto index = static_cast<std::uint32_t>(servers_.size());
  servers_.push_back(std::make_unique<BlobServer>(node));
  down_.push_back(std::make_unique<std::atomic<bool>>(false));
  ring_.add_node(index);

  rebalance_after_ring_change(snap.holder, stats, agent);
  return index;
}

Status BlobStore::decommission_server(std::uint32_t index, RebalanceStats* stats,
                                      sim::SimAgent* agent) {
  if (index >= servers_.size() || !in_ring(index)) {
    return {Errc::not_found, "server not in ring"};
  }
  if (is_down(index)) return {Errc::busy, "server is down; recover or resync first"};
  KeySnapshot snap;
  for (std::uint32_t j = 0; j < servers_.size(); ++j) {
    if (!in_ring(j) || is_down(j)) continue;
    SimMicros svc = 0;
    for (const auto& s : servers_[j]->scan("", &svc)) snap.holder.emplace(s.key, j);
  }
  ring_.remove_node(index);
  rebalance_after_ring_change(snap.holder, stats, agent);

  // Drop everything the decommissioned server still holds.
  SimMicros svc = 0;
  for (const auto& s : servers_[index]->scan("", &svc)) {
    SimMicros rm_svc = 0;
    (void)servers_[index]->remove(s.key, &rm_svc);
    if (stats) ++stats->objects_dropped;
  }
  return Status::success();
}

void BlobStore::rebalance_after_ring_change(
    const std::map<std::string, std::uint32_t>& holders, RebalanceStats* stats,
    sim::SimAgent* agent) {
  for (const auto& [key, src_hint] : holders) {
    const auto new_replicas = replicas_of(key);
    // Source: any live server currently holding the key (the hint, unless
    // placement says it should not have it — it still does physically).
    BlobServer& src = *servers_[src_hint];
    SimMicros src_svc = 0;
    auto size = src.size(key, &src_svc);
    if (!size.ok()) continue;

    for (std::uint32_t owner : new_replicas) {
      BlobServer& dst = *servers_[owner];
      if (is_down(owner)) continue;
      SimMicros peek_svc = 0;
      if (dst.stat(key, &peek_svc).ok()) continue;  // already holds a copy
      auto data = src.read(key, 0, size.value(), &src_svc);
      if (!data.ok()) break;
      SimMicros put_svc = 0;
      {
        auto lock = dst.lock_exclusive();
        std::vector<BlobServer::TxnOp> ops;
        ops.push_back({BlobServer::TxnOp::Kind::write, key, 0,
                       std::move(data.value().data), 0});
        ops.push_back({BlobServer::TxnOp::Kind::truncate, key, 0, {}, size.value()});
        if (!dst.apply_txn_ops(ops, &put_svc).ok()) continue;
      }
      if (agent) {
        transport_.call(*agent, dst.node(), size.value() + 64, 64, put_svc);
      } else {
        dst.node().serve(0, put_svc);
      }
      if (stats) {
        ++stats->objects_moved;
        stats->bytes_moved += size.value();
      }
    }

    // Drop copies from servers no longer in the key's replica set (skip the
    // decommission case where the server was already pulled from the ring —
    // its copies are dropped wholesale by the caller).
    for (std::uint32_t j = 0; j < servers_.size(); ++j) {
      if (!in_ring(j) || is_down(j)) continue;
      if (std::find(new_replicas.begin(), new_replicas.end(), j) != new_replicas.end()) {
        continue;
      }
      SimMicros peek_svc = 0;
      if (!servers_[j]->stat(key, &peek_svc).ok()) continue;
      SimMicros rm_svc = 0;
      (void)servers_[j]->remove(key, &rm_svc);
      if (stats) ++stats->objects_dropped;
    }
  }
}

BlobStore::ScrubReport BlobStore::scrub(bool repair, sim::SimAgent* agent) {
  ScrubReport report;
  // Key universe across all live servers.
  std::map<std::string, bool> keys;
  for (std::uint32_t j = 0; j < servers_.size(); ++j) {
    if (!in_ring(j) || is_down(j)) continue;
    SimMicros svc = 0;
    for (const auto& s : servers_[j]->scan("", &svc)) keys.emplace(s.key, true);
  }

  for (const auto& [key, unused] : keys) {
    (void)unused;
    ++report.objects_checked;
    const auto replicas = replicas_of(key);

    // Gather each live replica's bytes + its engine checksum verdict.
    struct Copy {
      std::uint32_t server;
      Bytes data;
      std::uint64_t fingerprint;
      bool checksum_ok;
    };
    std::vector<Copy> copies;
    for (std::uint32_t r : replicas) {
      if (is_down(r)) continue;
      BlobServer& srv = *servers_[r];
      SimMicros svc = 0;
      auto size = srv.size(key, &svc);
      if (!size.ok()) continue;  // missing copy: resync territory, not scrub
      auto data = srv.read(key, 0, size.value(), &svc);
      if (!data.ok()) continue;
      const bool sum_ok = srv.verify_key(key).ok();
      if (!sum_ok) ++report.checksum_errors;
      // Charge the scrub read (sequential sweep) to the maintenance agent.
      if (agent) transport_.call(*agent, srv.node(), 64, size.value(), svc);
      const std::uint64_t fp = content_checksum(as_view(data.value().data));
      copies.push_back({r, std::move(data.value().data), fp, sum_ok});
    }
    if (copies.size() < 2) continue;

    // Quorum content: the fingerprint shared by the most checksum-clean
    // copies (clean copies outrank corrupt ones).
    std::map<std::uint64_t, std::uint32_t> votes;
    for (const auto& c : copies) {
      if (c.checksum_ok) ++votes[c.fingerprint];
    }
    if (votes.empty()) continue;  // everything corrupt: unrecoverable here
    const auto quorum =
        std::max_element(votes.begin(), votes.end(),
                         [](const auto& a, const auto& b) { return a.second < b.second; })
            ->first;
    const Copy* good = nullptr;
    for (const auto& c : copies) {
      if (c.checksum_ok && c.fingerprint == quorum) {
        good = &c;
        break;
      }
    }
    for (const auto& c : copies) {
      if (c.fingerprint == quorum && c.checksum_ok) continue;
      ++report.divergent_replicas;
      if (!repair || !good) continue;
      BlobServer& target = *servers_[c.server];
      auto lock = target.lock_exclusive();
      std::vector<BlobServer::TxnOp> ops;
      ops.push_back({BlobServer::TxnOp::Kind::remove, key, 0, {}, 0});
      ops.push_back({BlobServer::TxnOp::Kind::write, key, 0, good->data, 0});
      ops.push_back(
          {BlobServer::TxnOp::Kind::truncate, key, 0, {}, good->data.size()});
      SimMicros svc = 0;
      if (target.apply_txn_ops(ops, &svc).ok()) {
        ++report.repaired;
        if (agent) transport_.call(*agent, target.node(), good->data.size() + 64, 64, svc);
      }
    }
  }
  return report;
}

std::uint64_t BlobStore::total_objects() {
  std::uint64_t n = 0;
  for (auto& s : servers_) n += s->object_count();
  return n;
}

std::uint64_t BlobStore::total_live_bytes() {
  std::uint64_t n = 0;
  for (auto& s : servers_) n += s->live_bytes();
  return n;
}

Status BlobStore::verify_all_integrity() {
  for (auto& s : servers_) {
    auto st = s->verify_integrity();
    if (!st.ok()) return st;
  }
  return Status::success();
}

}  // namespace bsc::blob
