#include "blob/store.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/hash.hpp"

namespace bsc::blob {

BlobStore::BlobStore(sim::Cluster& cluster, StoreConfig cfg)
    : cluster_(&cluster), cfg_(cfg), transport_(cluster), ring_(cfg.vnodes_per_node) {
  servers_.reserve(cluster.storage_count());
  for (std::size_t i = 0; i < cluster.storage_count(); ++i) {
    servers_.push_back(std::make_unique<BlobServer>(cluster.storage_node(i)));
    ring_.add_node(static_cast<std::uint32_t>(i));
    down_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
}

void BlobStore::fail_server(std::uint32_t index) {
  down_[index]->store(true, std::memory_order_release);
}

void BlobStore::recover_server(std::uint32_t index, sim::SimAgent* agent,
                               HintStats* stats) {
  down_[index]->store(false, std::memory_order_release);
  drain_hints(index, agent, stats);
}

void BlobStore::drain_hints(std::uint32_t index, sim::SimAgent* agent,
                            HintStats* stats) {
  // Every surviving server may hold hints for the recovered one; union the
  // hinted key sets (the same key can be hinted by several coordinators).
  std::set<std::string> keys;
  for (std::uint32_t j = 0; j < servers_.size(); ++j) {
    if (j == index || is_down(j)) continue;
    for (auto& k : servers_[j]->take_hints_for(index)) keys.insert(std::move(k));
  }
  if (keys.empty()) return;

  BlobServer& target = *servers_[index];
  for (const auto& key : keys) {
    const auto replicas = replicas_of(key);
    if (std::find(replicas.begin(), replicas.end(), index) == replicas.end()) {
      continue;  // ring changed while down; rebalance owns this key now
    }
    // Source = freshest live holder. A hint records *that* a mutation was
    // missed, not its payload, so the repair copies current state — which
    // subsumes any ops missed after the hint was written.
    bool found = false;
    std::uint32_t best = 0;
    Version best_v = 0;
    for (std::uint32_t r : replicas) {
      if (r == index || is_down(r)) continue;
      auto v = servers_[r]->peek_version(key);
      if (!v.ok()) continue;
      if (!found || v.value() > best_v) {
        found = true;
        best = r;
        best_v = v.value();
      }
    }
    if (!found) {
      // No live replica holds the key: it was removed after the hint was
      // recorded. Dropping the recovered server's stale copy (if any) —
      // installing it would resurrect a deleted blob.
      SimMicros svc = 0;
      if (target.stat(key, &svc).ok()) {
        SimMicros rm_svc = 0;
        (void)target.remove(key, &rm_svc);
        svc += rm_svc;
        if (stats) ++stats->removed;
      }
      if (agent) {
        transport_.call_reliable(*agent, target.node(), 64, 64, svc);
      } else {
        target.node().serve(0, svc);
      }
      continue;
    }
    if (target.peek_version(key).value_or(0) >= best_v) {
      continue;  // already as fresh as any live holder (e.g. WAL recovery)
    }
    BlobServer& source = *servers_[best];
    SimMicros svc = 0;
    auto size = source.size(key, &svc);
    if (!size.ok()) continue;
    auto data = source.read(key, 0, size.value(), &svc);
    if (!data.ok()) continue;
    SimMicros put_svc = 0;
    if (!target
             .install_copy(key, as_view(data.value().data), size.value(), best_v,
                           &put_svc)
             .ok()) {
      continue;
    }
    if (agent) {
      transport_.call_reliable(*agent, target.node(), size.value() + 64, 64,
                               svc + put_svc);
    } else {
      target.node().serve(0, svc + put_svc);
    }
    if (stats) ++stats->drained;
  }
}

bool BlobStore::is_down(std::uint32_t index) const {
  return down_[index]->load(std::memory_order_acquire);
}

std::optional<std::uint32_t> BlobStore::first_up(
    const std::vector<std::uint32_t>& replicas) const {
  for (std::uint32_t n : replicas) {
    if (!is_down(n)) return n;
  }
  return std::nullopt;
}

Status BlobStore::enable_persistence(const std::string& base_dir,
                                     persist::JournalConfig jcfg) {
  for (std::uint32_t i = 0; i < servers_.size(); ++i) {
    auto st = servers_[i]->enable_persistence(
        base_dir + "/server-" + std::to_string(i), jcfg);
    if (!st.ok()) return st;
  }
  return Status::success();
}

void BlobStore::crash_server(std::uint32_t index) {
  fail_server(index);
  servers_[index]->crash();
}

Result<std::uint64_t> BlobStore::restart_server(std::uint32_t index, sim::SimAgent* agent,
                                                persist::RecoveryReport* report,
                                                ResyncStats* stats) {
  auto st = servers_[index]->restart(report);
  if (!st.ok()) return st.error();
  // recover_server drains hinted handoff first (targeted, version-exact);
  // the digest resync below only moves whatever no hint covered.
  recover_server(index, agent);
  // Local recovery already rebuilt everything the WAL captured; the resync
  // pass only moves the delta (updates missed while down, ghost removals).
  return resync_server(index, agent, stats);
}

std::uint64_t BlobStore::resync_server(std::uint32_t index, sim::SimAgent* agent,
                                       ResyncStats* stats) {
  if (is_down(index)) return 0;  // recover first
  // Collect every key that should live on `index`, as seen by any healthy
  // peer (the recovering server's own view may be stale or empty).
  std::map<std::string, std::uint32_t> to_repair;  // key -> source server
  for (std::uint32_t j = 0; j < servers_.size(); ++j) {
    if (j == index || is_down(j)) continue;
    SimMicros svc = 0;
    for (const auto& stat : servers_[j]->scan("", &svc)) {
      const auto replicas = replicas_of(stat.key);
      if (std::find(replicas.begin(), replicas.end(), index) == replicas.end()) continue;
      // Source = the acting primary among healthy peers.
      for (std::uint32_t r : replicas) {
        if (r != index && !is_down(r)) {
          to_repair.emplace(stat.key, r);
          break;
        }
      }
    }
  }
  std::uint64_t repaired = 0;

  // Deletion pass: keys the recovering server still holds but no healthy
  // peer knows were removed while it was down — drop the ghosts, or they
  // would resurrect through scan().
  {
    BlobServer& target = *servers_[index];
    SimMicros svc = 0;
    for (const auto& stat : target.scan("", &svc)) {
      if (to_repair.count(stat.key)) continue;  // will be overwritten anyway
      const auto replicas = replicas_of(stat.key);
      bool any_healthy_peer = false;
      bool held_by_peer = false;
      bool any_down_peer = false;
      for (std::uint32_t r : replicas) {
        if (r == index) continue;
        if (is_down(r)) {
          any_down_peer = true;
          continue;
        }
        any_healthy_peer = true;
        SimMicros peek_svc = 0;
        if (servers_[r]->stat(stat.key, &peek_svc).ok()) held_by_peer = true;
      }
      // Quorum mode cannot tell a ghost (removed while down) from an acked
      // copy whose only other holder is currently down — deleting the
      // latter would hide an acknowledged write until the peer returns.
      // Defer the deletion until the whole replica set is reachable.
      if (cfg_.write_quorum > 0 && any_down_peer) continue;
      if (any_healthy_peer && !held_by_peer) {
        SimMicros rm_svc = 0;
        (void)target.remove(stat.key, &rm_svc);
        target.node().serve(agent ? agent->now() : 0, rm_svc);
        ++repaired;
        if (stats) ++stats->deleted;
      }
    }
  }

  for (const auto& [key, src] : to_repair) {
    BlobServer& source = *servers_[src];
    BlobServer& target = *servers_[index];
    if (stats) ++stats->examined;
    SimMicros svc = 0;
    auto size = source.size(key, &svc);
    if (!size.ok()) continue;
    auto data = source.read(key, 0, size.value(), &svc);
    if (!data.ok()) continue;

    const Version src_version = source.peek_version(key).value_or(1);

    // Never move a replica backward: if the target's copy is FRESHER than
    // this source (it survived a crash holding applies the source missed),
    // overwriting it could erase the last quorum copy of an acked write.
    // Leave it — scrub's freshest-wins pass spreads it the other way.
    if (target.peek_version(key).value_or(0) > src_version) {
      if (stats) ++stats->skipped_identical;
      continue;
    }

    // Delta check: a copy the target already holds (e.g. via local WAL
    // recovery) with identical content needs no recopy — only the digest
    // crosses the wire. Equality is judged on bytes; if the versions drifted
    // apart (quorum-mode misses) the target's is aligned to the source's, so
    // version arbitration keeps implying content equality afterwards.
    {
      SimMicros tsvc = 0;
      auto tsize = target.size(key, &tsvc);
      if (tsize.ok() && tsize.value() == size.value()) {
        auto tdata = target.read(key, 0, tsize.value(), &tsvc);
        if (tdata.ok() && content_checksum(as_view(tdata.value().data)) ==
                              content_checksum(as_view(data.value().data))) {
          if (target.peek_version(key).value_or(0) != src_version) {
            auto lock = target.lock_exclusive();
            (void)target.force_version(key, src_version);
          }
          if (stats) ++stats->skipped_identical;
          if (agent) {
            transport_.call_reliable(*agent, target.node(), 64, 64, tsvc);
          } else {
            target.node().serve(0, tsvc);
          }
          continue;
        }
      }
    }
    // Replace the target's copy wholesale with an exact install — contents,
    // logical size, and the source's version (holes come back as explicit
    // zeros), so the repaired replica is indistinguishable from one that
    // applied the original op stream.
    {
      SimMicros put_svc = 0;
      if (!target
               .install_copy(key, as_view(data.value().data), size.value(),
                             src_version, &put_svc)
               .ok()) {
        continue;
      }
      svc += put_svc;
    }
    if (agent) {
      transport_.call_reliable(*agent, target.node(), size.value() + 64, 64, svc);
    } else {
      target.node().serve(0, svc);
    }
    ++repaired;
    if (stats) {
      ++stats->copied;
      stats->bytes_copied += size.value();
    }
  }
  return repaired;
}

namespace {
/// Snapshot of every live key with a reachable holder, taken before a ring
/// change so post-change placements can be compared against it.
struct KeySnapshot {
  std::map<std::string, std::uint32_t> holder;  ///< key -> some live server
};
}  // namespace

std::uint32_t BlobStore::add_server(sim::SimNode& node, RebalanceStats* stats,
                                    sim::SimAgent* agent) {
  // Capture pre-change key universe (any live holder suffices as source).
  KeySnapshot snap;
  for (std::uint32_t j = 0; j < servers_.size(); ++j) {
    if (!in_ring(j) || is_down(j)) continue;
    SimMicros svc = 0;
    for (const auto& s : servers_[j]->scan("", &svc)) snap.holder.emplace(s.key, j);
  }

  const auto index = static_cast<std::uint32_t>(servers_.size());
  servers_.push_back(std::make_unique<BlobServer>(node));
  down_.push_back(std::make_unique<std::atomic<bool>>(false));
  ring_.add_node(index);

  rebalance_after_ring_change(snap.holder, stats, agent);
  return index;
}

Status BlobStore::decommission_server(std::uint32_t index, RebalanceStats* stats,
                                      sim::SimAgent* agent) {
  if (index >= servers_.size() || !in_ring(index)) {
    return {Errc::not_found, "server not in ring"};
  }
  if (is_down(index)) return {Errc::busy, "server is down; recover or resync first"};
  KeySnapshot snap;
  for (std::uint32_t j = 0; j < servers_.size(); ++j) {
    if (!in_ring(j) || is_down(j)) continue;
    SimMicros svc = 0;
    for (const auto& s : servers_[j]->scan("", &svc)) snap.holder.emplace(s.key, j);
  }
  ring_.remove_node(index);
  rebalance_after_ring_change(snap.holder, stats, agent);

  // Drop everything the decommissioned server still holds.
  SimMicros svc = 0;
  for (const auto& s : servers_[index]->scan("", &svc)) {
    SimMicros rm_svc = 0;
    (void)servers_[index]->remove(s.key, &rm_svc);
    if (stats) ++stats->objects_dropped;
  }
  return Status::success();
}

void BlobStore::rebalance_after_ring_change(
    const std::map<std::string, std::uint32_t>& holders, RebalanceStats* stats,
    sim::SimAgent* agent) {
  for (const auto& [key, src_hint] : holders) {
    const auto new_replicas = replicas_of(key);
    // Source: any live server currently holding the key (the hint, unless
    // placement says it should not have it — it still does physically).
    BlobServer& src = *servers_[src_hint];
    SimMicros src_svc = 0;
    auto size = src.size(key, &src_svc);
    if (!size.ok()) continue;

    for (std::uint32_t owner : new_replicas) {
      BlobServer& dst = *servers_[owner];
      if (is_down(owner)) continue;
      SimMicros peek_svc = 0;
      if (dst.stat(key, &peek_svc).ok()) continue;  // already holds a copy
      auto data = src.read(key, 0, size.value(), &src_svc);
      if (!data.ok()) break;
      SimMicros put_svc = 0;
      // Exact install (version included): the migrated copy participates in
      // version arbitration exactly like the source it was copied from.
      if (!dst.install_copy(key, as_view(data.value().data), size.value(),
                            src.peek_version(key).value_or(1), &put_svc)
               .ok()) {
        continue;
      }
      if (agent) {
        transport_.call_reliable(*agent, dst.node(), size.value() + 64, 64, put_svc);
      } else {
        dst.node().serve(0, put_svc);
      }
      if (stats) {
        ++stats->objects_moved;
        stats->bytes_moved += size.value();
      }
    }

    // Drop copies from servers no longer in the key's replica set (skip the
    // decommission case where the server was already pulled from the ring —
    // its copies are dropped wholesale by the caller).
    for (std::uint32_t j = 0; j < servers_.size(); ++j) {
      if (!in_ring(j) || is_down(j)) continue;
      if (std::find(new_replicas.begin(), new_replicas.end(), j) != new_replicas.end()) {
        continue;
      }
      SimMicros peek_svc = 0;
      if (!servers_[j]->stat(key, &peek_svc).ok()) continue;
      SimMicros rm_svc = 0;
      (void)servers_[j]->remove(key, &rm_svc);
      if (stats) ++stats->objects_dropped;
    }
  }
}

BlobStore::ScrubReport BlobStore::scrub(bool repair, sim::SimAgent* agent) {
  ScrubReport report;
  // Key universe across all live servers.
  std::map<std::string, bool> keys;
  for (std::uint32_t j = 0; j < servers_.size(); ++j) {
    if (!in_ring(j) || is_down(j)) continue;
    SimMicros svc = 0;
    for (const auto& s : servers_[j]->scan("", &svc)) keys.emplace(s.key, true);
  }

  for (const auto& [key, unused] : keys) {
    (void)unused;
    ++report.objects_checked;
    const auto replicas = replicas_of(key);

    // Gather each live replica's bytes + version + engine checksum verdict.
    struct Copy {
      std::uint32_t server;
      Bytes data;
      std::uint64_t fingerprint;
      bool checksum_ok;
      Version version;
    };
    std::vector<Copy> copies;
    for (std::uint32_t r : replicas) {
      if (is_down(r)) continue;
      BlobServer& srv = *servers_[r];
      SimMicros svc = 0;
      auto st = srv.stat(key, &svc);
      if (!st.ok()) continue;  // missing copy: resync territory, not scrub
      auto data = srv.read(key, 0, st.value().size, &svc);
      if (!data.ok()) continue;
      const bool sum_ok = srv.verify_key(key).ok();
      if (!sum_ok) ++report.checksum_errors;
      // Charge the scrub read (sequential sweep) to the maintenance agent.
      if (agent) transport_.call_reliable(*agent, srv.node(), 64, st.value().size, svc);
      const std::uint64_t fp = content_checksum(as_view(data.value().data));
      copies.push_back({r, std::move(data.value().data), fp, sum_ok, st.value().version});
    }
    if (copies.size() < 2) continue;

    // Authoritative copy: the freshest (highest-version) checksum-clean
    // one. Never a majority vote — under quorum writes a minority replica
    // may be the only one holding an acked mutation, and voting would roll
    // it back. The write path keeps versions identical across replicas
    // that applied the same ops, so "freshest clean copy" is exact.
    const Copy* good = nullptr;
    for (const auto& c : copies) {
      if (c.checksum_ok && (!good || c.version > good->version)) good = &c;
    }
    if (!good) continue;  // everything corrupt: unrecoverable here
    for (const auto& c : copies) {
      if (c.checksum_ok && c.fingerprint == good->fingerprint &&
          c.version == good->version) {
        continue;
      }
      ++report.divergent_replicas;
      if (!repair) continue;
      BlobServer& target = *servers_[c.server];
      SimMicros svc = 0;
      if (target
              .install_copy(key, as_view(good->data), good->data.size(),
                            good->version, &svc)
              .ok()) {
        ++report.repaired;
        if (agent) {
          transport_.call_reliable(*agent, target.node(), good->data.size() + 64, 64,
                                   svc);
        }
      }
    }
  }
  return report;
}

std::uint64_t BlobStore::total_objects() {
  std::uint64_t n = 0;
  for (auto& s : servers_) n += s->object_count();
  return n;
}

std::uint64_t BlobStore::total_live_bytes() {
  std::uint64_t n = 0;
  for (auto& s : servers_) n += s->live_bytes();
  return n;
}

Status BlobStore::verify_all_integrity() {
  for (auto& s : servers_) {
    auto st = s->verify_integrity();
    if (!st.ok()) return st;
  }
  return Status::success();
}

}  // namespace bsc::blob
