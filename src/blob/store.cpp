#include "blob/store.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/hash.hpp"
#include "obs/metrics.hpp"
#include "persist/checkpoint.hpp"

namespace bsc::blob {

BlobStore::BlobStore(sim::Cluster& cluster, StoreConfig cfg)
    : cluster_(&cluster), cfg_(cfg), transport_(cluster), ring_(cfg.vnodes_per_node) {
  servers_.reserve(cluster.storage_count());
  for (std::size_t i = 0; i < cluster.storage_count(); ++i) {
    servers_.push_back(std::make_unique<BlobServer>(cluster.storage_node(i)));
    ring_.add_node(static_cast<std::uint32_t>(i));
    down_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
  for (auto& s : servers_) s->set_ring_epoch(ring_.epoch());
}

BlobStore::~BlobStore() {
  for (auto& r : rebalancers_) r->join();
}

Placement BlobStore::placement_of(std::string_view key) const {
  if (!migrating_.load(std::memory_order_acquire)) {
    return {ring_.locate(key, cfg_.replication), {}, ring_.epoch(), 0};
  }
  std::shared_lock lk(mig_mu_);
  return placement_locked(key);
}

Placement BlobStore::placement_locked(std::string_view key) const {
  // The chain fold, oldest→newest. The OLDEST window holding a pending
  // entry for the key is authoritative: its old set is where acked data
  // lives, so reads, acks and quorum counting stay there. Everything the
  // key is heading toward — that window's new-only owners, every newer
  // window's new-only owners, and the final ring placement — is a
  // dual-write target until the copies land and the windows close.
  const std::string k(key);
  std::size_t first = chain_.size();
  std::uint32_t pending_windows = 0;
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    const auto it = chain_[i]->plan.keys.find(k);
    if (it == chain_[i]->plan.keys.end()) continue;
    if (it->second.state == MigrationPlan::KeyState::pending) {
      ++pending_windows;
      if (first == chain_.size()) first = i;
    }
  }
  if (first == chain_.size()) {
    // No pending entry anywhere: either untouched by every open window, or
    // migrated through all of them — the target ring is authoritative.
    return {ring_.locate(key, cfg_.replication), {}, ring_.epoch(), 0};
  }
  const MigrationPlan::Entry& f = chain_[first]->plan.keys.find(k)->second;
  Placement p{f.old_replicas, {}, ring_.epoch(), pending_windows};
  const auto add_pending = [&p](const std::vector<std::uint32_t>& set) {
    for (std::uint32_t n : set) {
      if (std::find(p.replicas.begin(), p.replicas.end(), n) != p.replicas.end()) {
        continue;
      }
      if (std::find(p.pending.begin(), p.pending.end(), n) != p.pending.end()) {
        continue;
      }
      p.pending.push_back(n);
    }
  };
  add_pending(f.new_replicas);
  for (std::size_t i = first + 1; i < chain_.size(); ++i) {
    const auto it = chain_[i]->plan.keys.find(k);
    if (it == chain_[i]->plan.keys.end()) continue;
    add_pending(it->second.new_replicas);  // migrated entries too: future owners
  }
  add_pending(ring_.locate(key, cfg_.replication));
  return p;
}

std::size_t BlobStore::migration_chain_depth() const {
  std::shared_lock lk(mig_mu_);
  return chain_.size();
}

void BlobStore::publish_epoch() {
  // publish_mu_ serializes concurrent publishers (e.g. two sibling windows
  // finalizing at once): snapshots are taken in lock order and written in
  // that same order, so the record on disk is always the newest consistent
  // snapshot — never an interleaved write, never a resurrection of a window
  // whose cutover already happened.
  std::scoped_lock pub(publish_mu_);
  persist::MembershipRecord rec;
  std::size_t depth = 0;
  std::uint64_t e = 0;
  {
    // Epoch, chain, and membership are read under one mig_mu_ hold so they
    // are mutually consistent: cutover mutates all of them under the
    // exclusive side of this lock.
    std::shared_lock lk(mig_mu_);
    e = ring_.epoch();
    depth = chain_.size();
    if (!persist_base_dir_.empty()) {
      rec.epoch = e;
      rec.members = ring_.members();
      rec.weights.reserve(rec.members.size());
      for (std::uint32_t m : rec.members) rec.weights.push_back(ring_.weight_of(m));
      for (const auto& w : chain_) {
        persist::MembershipRecord::OpenWindow ow;
        ow.id = w->id;
        ow.epoch_at_open = w->epoch_at_open;
        ow.kind = w->kind == MigrationWindow::Kind::add ? 0 : 1;
        ow.subject = w->subject;
        ow.weight = w->weight;
        ow.batch_keys = w->cfg.batch_keys;
        ow.throttle_bytes_per_sec = w->cfg.throttle_bytes_per_sec;
        rec.windows.push_back(ow);
      }
    }
  }
  for (auto& s : servers_) s->set_ring_epoch(e);
  auto& reg = obs::MetricsRegistry::global();
  reg.gauge("rebalance.epoch").set(static_cast<std::int64_t>(e));
  reg.gauge("rebalance.chain_depth").set(static_cast<std::int64_t>(depth));
  reg.gauge("rebalance.active").set(depth > 0 ? 1 : 0);
  if (!persist_base_dir_.empty()) {
    (void)persist::write_membership(persist_base_dir_, rec);
  }
}

Status BlobStore::recover_membership() {
  if (persist_base_dir_.empty()) return Status::success();
  auto rec = persist::load_membership(persist_base_dir_);
  if (!rec.ok()) {
    return rec.code() == Errc::not_found ? Status::success() : rec.error().code;
  }
  const persist::MembershipRecord& r = rec.value();
  // Every recorded member and every open window's subject needs a live
  // server object (they bind to SimNodes and cannot come from disk) —
  // reattach_server registers them for indices past the construction set.
  for (std::uint32_t m : r.members) {
    if (m >= servers_.size()) {
      return {Errc::invalid_argument,
              "member " + std::to_string(m) +
                  " has no server object; reattach_server it first"};
    }
  }
  for (const auto& ow : r.windows) {
    if (ow.subject >= servers_.size()) {
      return {Errc::invalid_argument,
              "window subject " + std::to_string(ow.subject) +
                  " has no server object; reattach_server it first"};
    }
  }
  // Removals are re-applied (a decommissioned server must not rejoin the
  // ring just because the process restarted) and recorded members the
  // fresh ring lacks are re-added at their recorded weight. Epoch never
  // moves backwards.
  for (std::uint32_t i = 0; i < servers_.size(); ++i) {
    const auto it = std::find(r.members.begin(), r.members.end(), i);
    const bool member = it != r.members.end();
    if (!member && ring_.has_node(i)) ring_.remove_node(i);
    if (member && !ring_.has_node(i)) {
      const auto pos = static_cast<std::size_t>(it - r.members.begin());
      const double w = pos < r.weights.size() ? r.weights[pos] : 1.0;
      ring_.add_node(i, w);
    }
  }
  ring_.set_epoch(r.epoch);
  // Reopen every persisted migration window, oldest first: the chain
  // structure comes from the record, the plans are rebuilt from who
  // actually holds the data (a restart mid-migration resumes where the
  // copies left off instead of assuming a single clean window).
  {
    std::unique_lock lk(mig_mu_);
    chain_.clear();
    for (const auto& ow : r.windows) {
      auto win = std::make_shared<MigrationWindow>();
      win->id = ow.id;
      win->epoch_at_open = ow.epoch_at_open;
      win->kind = ow.kind == 0 ? MigrationWindow::Kind::add
                               : MigrationWindow::Kind::decommission;
      win->subject = ow.subject;
      win->weight = ow.weight;
      win->cfg.batch_keys = static_cast<std::size_t>(ow.batch_keys);
      win->cfg.throttle_bytes_per_sec = ow.throttle_bytes_per_sec;
      chain_.push_back(std::move(win));
      next_window_id_ = std::max(next_window_id_, ow.id + 1);
    }
    migrating_.store(!chain_.empty(), std::memory_order_release);
  }
  std::vector<std::shared_ptr<MigrationWindow>> reopened;
  {
    std::shared_lock lk(mig_mu_);
    reopened = chain_;
  }
  if (!reopened.empty()) rebuild_chain_plans();
  for (const auto& w : reopened) {
    // Resume each drain with the config the window was opened with (restored
    // from the record) — not the defaults, which would drop the operator's
    // bandwidth cap.
    rebalancers_.push_back(std::make_unique<Rebalancer>(*this, w, w->cfg));
  }
  publish_epoch();
  return Status::success();
}

void BlobStore::fail_server(std::uint32_t index) {
  down_[index]->store(true, std::memory_order_release);
}

void BlobStore::recover_server(std::uint32_t index, sim::SimAgent* agent,
                               HintStats* stats) {
  down_[index]->store(false, std::memory_order_release);
  drain_hints(index, agent, stats);
}

void BlobStore::drain_hints(std::uint32_t index, sim::SimAgent* agent,
                            HintStats* stats) {
  // Every surviving server may hold hints for the recovered one; union the
  // hinted key sets (the same key can be hinted by several coordinators).
  // Drain order is part of the determinism contract: coordinators are
  // visited in ascending server index and the union is drained in sorted
  // key order, so a fixed-seed chaos run issues the identical repair
  // sequence on every platform/sanitizer — even when a membership change
  // interleaved with the outage and reshuffled who hinted what.
  std::vector<std::string> keys;
  for (std::uint32_t j = 0; j < servers_.size(); ++j) {
    if (j == index || is_down(j)) continue;
    for (auto& k : servers_[j]->take_hints_for(index)) keys.push_back(std::move(k));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  if (keys.empty()) return;

  BlobServer& target = *servers_[index];
  for (const auto& key : keys) {
    // Placement-aware ownership check: while a migration window is open the
    // recovered server may own `key` only as a PENDING (new) owner — the
    // hint is still live (the dual write it records was acked against the
    // old set and the migration copy may have happened before the hint's
    // mutation). Dropping it would strand the pending copy stale until
    // finalize's verify pass.
    const Placement p = placement_of(key);
    const bool owner =
        std::find(p.replicas.begin(), p.replicas.end(), index) != p.replicas.end() ||
        std::find(p.pending.begin(), p.pending.end(), index) != p.pending.end();
    if (!owner) {
      continue;  // ring changed while down; rebalance owns this key now
    }
    const auto& replicas = p.replicas;
    // Source = freshest live holder. A hint records *that* a mutation was
    // missed, not its payload, so the repair copies current state — which
    // subsumes any ops missed after the hint was written.
    bool found = false;
    std::uint32_t best = 0;
    Version best_v = 0;
    for (std::uint32_t r : replicas) {
      if (r == index || is_down(r)) continue;
      auto v = servers_[r]->peek_version(key);
      if (!v.ok()) continue;
      if (!found || v.value() > best_v) {
        found = true;
        best = r;
        best_v = v.value();
      }
    }
    if (!found) {
      // No live replica holds the key: it was removed after the hint was
      // recorded. Dropping the recovered server's stale copy (if any) —
      // installing it would resurrect a deleted blob.
      SimMicros svc = 0;
      if (target.stat(key, &svc).ok()) {
        SimMicros rm_svc = 0;
        (void)target.remove(key, &rm_svc);
        svc += rm_svc;
        if (stats) ++stats->removed;
      }
      if (agent) {
        transport_.call_reliable(*agent, target.node(), 64, 64, svc);
      } else {
        target.node().serve(0, svc);
      }
      continue;
    }
    if (target.peek_version(key).value_or(0) >= best_v) {
      continue;  // already as fresh as any live holder (e.g. WAL recovery)
    }
    BlobServer& source = *servers_[best];
    SimMicros svc = 0;
    auto size = source.size(key, &svc);
    if (!size.ok()) continue;
    auto data = source.read(key, 0, size.value(), &svc);
    if (!data.ok()) continue;
    SimMicros put_svc = 0;
    if (!target
             .install_copy(key, as_view(data.value().data), size.value(), best_v,
                           &put_svc)
             .ok()) {
      continue;
    }
    if (agent) {
      transport_.call_reliable(*agent, target.node(), size.value() + 64, 64,
                               svc + put_svc);
    } else {
      target.node().serve(0, svc + put_svc);
    }
    if (stats) ++stats->drained;
  }
}

bool BlobStore::is_down(std::uint32_t index) const {
  return down_[index]->load(std::memory_order_acquire);
}

std::optional<std::uint32_t> BlobStore::first_up(
    const std::vector<std::uint32_t>& replicas) const {
  for (std::uint32_t n : replicas) {
    if (!is_down(n)) return n;
  }
  return std::nullopt;
}

Status BlobStore::enable_persistence(const std::string& base_dir,
                                     persist::JournalConfig jcfg) {
  for (std::uint32_t i = 0; i < servers_.size(); ++i) {
    auto st = servers_[i]->enable_persistence(
        base_dir + "/server-" + std::to_string(i), jcfg);
    if (!st.ok()) return st;
  }
  // Remember the base so servers added later get journals too, and so
  // membership changes can persist their record for recovery.
  const bool have_record = persist::load_membership(base_dir).ok();
  persist_base_dir_ = base_dir;
  persist_jcfg_ = jcfg;
  if (have_record) {
    // A membership record survives from a previous incarnation. Writing one
    // here would stamp the construction-time member set over the removals it
    // encodes, so only propagate the epoch to the servers and leave the file
    // for recover_membership() (or the next membership change) to rewrite.
    const std::uint64_t e = ring_.epoch();
    for (auto& s : servers_) s->set_ring_epoch(e);
    obs::MetricsRegistry::global().gauge("rebalance.epoch").set(
        static_cast<std::int64_t>(e));
  } else {
    publish_epoch();
  }
  return Status::success();
}

void BlobStore::crash_server(std::uint32_t index) {
  fail_server(index);
  servers_[index]->crash();
}

Result<std::uint64_t> BlobStore::restart_server(std::uint32_t index, sim::SimAgent* agent,
                                                persist::RecoveryReport* report,
                                                ResyncStats* stats) {
  auto st = servers_[index]->restart(report);
  if (!st.ok()) return st.error();
  // recover_server drains hinted handoff first (targeted, version-exact);
  // the digest resync below only moves whatever no hint covered.
  recover_server(index, agent);
  // Local recovery already rebuilt everything the WAL captured; the resync
  // pass only moves the delta (updates missed while down, ghost removals).
  return resync_server(index, agent, stats);
}

std::uint64_t BlobStore::resync_server(std::uint32_t index, sim::SimAgent* agent,
                                       ResyncStats* stats) {
  if (is_down(index)) return 0;  // recover first
  // Collect every key that should live on `index`, as seen by any healthy
  // peer (the recovering server's own view may be stale or empty).
  std::map<std::string, std::uint32_t> to_repair;  // key -> source server
  for (std::uint32_t j = 0; j < servers_.size(); ++j) {
    if (j == index || is_down(j)) continue;
    SimMicros svc = 0;
    for (const auto& stat : servers_[j]->scan("", &svc)) {
      const auto replicas = replicas_of(stat.key);
      if (std::find(replicas.begin(), replicas.end(), index) == replicas.end()) continue;
      // Source = the acting primary among healthy peers.
      for (std::uint32_t r : replicas) {
        if (r != index && !is_down(r)) {
          to_repair.emplace(stat.key, r);
          break;
        }
      }
    }
  }
  std::uint64_t repaired = 0;

  // Deletion pass: keys the recovering server still holds but no healthy
  // peer knows were removed while it was down — drop the ghosts, or they
  // would resurrect through scan().
  {
    BlobServer& target = *servers_[index];
    SimMicros svc = 0;
    for (const auto& stat : target.scan("", &svc)) {
      if (to_repair.count(stat.key)) continue;  // will be overwritten anyway
      const auto replicas = replicas_of(stat.key);
      bool any_healthy_peer = false;
      bool held_by_peer = false;
      bool any_down_peer = false;
      for (std::uint32_t r : replicas) {
        if (r == index) continue;
        if (is_down(r)) {
          any_down_peer = true;
          continue;
        }
        any_healthy_peer = true;
        SimMicros peek_svc = 0;
        if (servers_[r]->stat(stat.key, &peek_svc).ok()) held_by_peer = true;
      }
      // Quorum mode cannot tell a ghost (removed while down) from an acked
      // copy whose only other holder is currently down — deleting the
      // latter would hide an acknowledged write until the peer returns.
      // Defer the deletion until the whole replica set is reachable.
      if (cfg_.write_quorum > 0 && any_down_peer) continue;
      if (any_healthy_peer && !held_by_peer) {
        SimMicros rm_svc = 0;
        (void)target.remove(stat.key, &rm_svc);
        target.node().serve(agent ? agent->now() : 0, rm_svc);
        ++repaired;
        if (stats) ++stats->deleted;
      }
    }
  }

  for (const auto& [key, src] : to_repair) {
    BlobServer& source = *servers_[src];
    BlobServer& target = *servers_[index];
    if (stats) ++stats->examined;
    SimMicros svc = 0;
    auto size = source.size(key, &svc);
    if (!size.ok()) continue;
    auto data = source.read(key, 0, size.value(), &svc);
    if (!data.ok()) continue;

    const Version src_version = source.peek_version(key).value_or(1);

    // Never move a replica backward: if the target's copy is FRESHER than
    // this source (it survived a crash holding applies the source missed),
    // overwriting it could erase the last quorum copy of an acked write.
    // Leave it — scrub's freshest-wins pass spreads it the other way.
    if (target.peek_version(key).value_or(0) > src_version) {
      if (stats) ++stats->skipped_identical;
      continue;
    }

    // Delta check: a copy the target already holds (e.g. via local WAL
    // recovery) with identical content needs no recopy — only the digest
    // crosses the wire. Equality is judged on bytes; if the versions drifted
    // apart (quorum-mode misses) the target's is aligned to the source's, so
    // version arbitration keeps implying content equality afterwards.
    {
      SimMicros tsvc = 0;
      auto tsize = target.size(key, &tsvc);
      if (tsize.ok() && tsize.value() == size.value()) {
        auto tdata = target.read(key, 0, tsize.value(), &tsvc);
        if (tdata.ok() && content_checksum(as_view(tdata.value().data)) ==
                              content_checksum(as_view(data.value().data))) {
          if (target.peek_version(key).value_or(0) != src_version) {
            auto lock = target.lock_exclusive();
            (void)target.force_version(key, src_version);
          }
          if (stats) ++stats->skipped_identical;
          if (agent) {
            transport_.call_reliable(*agent, target.node(), 64, 64, tsvc);
          } else {
            target.node().serve(0, tsvc);
          }
          continue;
        }
      }
    }
    // Replace the target's copy wholesale with an exact install — contents,
    // logical size, and the source's version (holes come back as explicit
    // zeros), so the repaired replica is indistinguishable from one that
    // applied the original op stream.
    {
      SimMicros put_svc = 0;
      if (!target
               .install_copy(key, as_view(data.value().data), size.value(),
                             src_version, &put_svc)
               .ok()) {
        continue;
      }
      svc += put_svc;
    }
    if (agent) {
      transport_.call_reliable(*agent, target.node(), size.value() + 64, 64, svc);
    } else {
      target.node().serve(0, svc);
    }
    ++repaired;
    if (stats) {
      ++stats->copied;
      stats->bytes_copied += size.value();
    }
  }
  return repaired;
}

void BlobStore::build_plan(MigrationPlan& plan, const HashRing& before,
                           const HashRing& after) const {
  // Key universe: every live key with a reachable holder, scanned across
  // ALL registered servers — not just `before` members, because while older
  // windows are open their decommission subjects (already out of the ring)
  // still hold authoritative data. std::map keeps the plan (and thus
  // migration order) deterministic.
  std::set<std::string> universe;
  for (std::uint32_t j = 0; j < servers_.size(); ++j) {
    if (is_down(j)) continue;
    SimMicros svc = 0;
    for (const auto& s : servers_[j]->scan("", &svc)) universe.insert(s.key);
  }
  for (const std::string& key : universe) {
    MigrationPlan::Entry e;
    e.old_replicas = before.locate(key, cfg_.replication);
    e.new_replicas = after.locate(key, cfg_.replication);
    if (e.old_replicas == e.new_replicas) continue;  // ~ (N-K)/N of all keys
    plan.keys.emplace(key, std::move(e));
  }
  plan.pending = plan.keys.size();
}

void BlobStore::assign_plan_states(MigrationPlan& plan) const {
  // Holder-aware states for a rebuilt plan. The fold treats a pending
  // entry's old set as authoritative, so an entry may only stay pending if
  // that old set can actually serve the key: a live old-side holder, or a
  // down old member that might hold the freshest copy (conservative —
  // migration defers until it recovers). A key held only by new-side
  // owners (created after the delta, or migrated before the restart) is
  // migrated; a key nobody holds left no trace to move.
  std::uint64_t pending = 0;
  std::vector<std::string> gone;
  for (auto& [key, e] : plan.keys) {
    bool old_live_holds = false;
    bool old_down = false;
    bool new_live_holds = false;
    for (std::uint32_t r : e.old_replicas) {
      if (is_down(r)) {
        old_down = true;
        continue;
      }
      if (servers_[r]->peek_version(key).ok()) old_live_holds = true;
    }
    for (std::uint32_t r : e.new_replicas) {
      if (is_down(r)) continue;
      if (servers_[r]->peek_version(key).ok()) new_live_holds = true;
    }
    if (old_live_holds || old_down) {
      e.state = MigrationPlan::KeyState::pending;
      ++pending;
    } else if (new_live_holds) {
      e.state = MigrationPlan::KeyState::migrated;
    } else {
      gone.push_back(key);
    }
  }
  for (const auto& k : gone) plan.keys.erase(k);
  plan.pending = pending;
}

void BlobStore::rebuild_chain_plans() {
  std::vector<std::shared_ptr<MigrationWindow>> chain;
  {
    std::shared_lock lk(mig_mu_);
    chain = chain_;
  }
  if (chain.empty()) return;
  // Reconstruct the ring sequence by undoing the open deltas newest→oldest
  // from the current ring: rings[i] is the ring just before chain[i]'s
  // delta, rings[i+1] just after. Open windows have distinct subjects and
  // vnode placement depends only on (id, weight), so the reconstruction is
  // exact regardless of which siblings finalized or aborted in between.
  std::vector<HashRing> rings;
  rings.reserve(chain.size() + 1);
  rings.push_back(ring_);
  for (std::size_t i = chain.size(); i-- > 0;) {
    HashRing r = rings.back();
    if (chain[i]->kind == MigrationWindow::Kind::add) {
      if (r.has_node(chain[i]->subject)) r.remove_node(chain[i]->subject);
    } else {
      if (!r.has_node(chain[i]->subject)) r.add_node(chain[i]->subject, chain[i]->weight);
    }
    rings.push_back(std::move(r));
  }
  std::reverse(rings.begin(), rings.end());
  for (std::size_t i = 0; i < chain.size(); ++i) {
    MigrationPlan plan;
    build_plan(plan, rings[i], rings[i + 1]);
    assign_plan_states(plan);
    std::unique_lock lk(mig_mu_);
    chain[i]->plan = std::move(plan);
  }
}

Rebalancer* BlobStore::open_window(MigrationWindow::Kind kind, std::uint32_t subject,
                                   double weight, const HashRing& before,
                                   RebalanceConfig rcfg) {
  auto win = std::make_shared<MigrationWindow>();
  win->kind = kind;
  win->subject = subject;
  win->weight = weight;
  win->cfg = rcfg;  // persisted with the window so recovered drains keep it
  win->epoch_at_open = ring_.epoch();
  build_plan(win->plan, before, ring_);
  {
    std::unique_lock lk(mig_mu_);
    win->id = next_window_id_++;
    chain_.push_back(win);
    migrating_.store(true, std::memory_order_release);
  }
  publish_epoch();
  rebalancers_.push_back(std::make_unique<Rebalancer>(*this, std::move(win), rcfg));
  return rebalancers_.back().get();
}

Result<std::uint32_t> BlobStore::begin_add_server(sim::SimNode& node,
                                                  RebalanceConfig rcfg, double weight) {
  const auto index = static_cast<std::uint32_t>(servers_.size());
  servers_.push_back(std::make_unique<BlobServer>(node));
  down_.push_back(std::make_unique<std::atomic<bool>>(false));
  if (!persist_base_dir_.empty()) {
    auto st = servers_[index]->enable_persistence(
        persist_base_dir_ + "/server-" + std::to_string(index), persist_jcfg_);
    if (!st.ok()) return st.error();
  }
  const HashRing before(ring_);
  ring_.add_node(index, weight);  // bumps the ring epoch
  open_window(MigrationWindow::Kind::add, index, weight, before, rcfg);
  return index;
}

Status BlobStore::begin_decommission(std::uint32_t index, RebalanceConfig rcfg) {
  {
    // One open window per subject: overlapping deltas on the SAME node have
    // no well-defined chain semantics (and would break the ring-sequence
    // reconstruction rebuilds rely on). Checked before in_ring — an open
    // decommission's subject is already out of the ring, and "busy" is the
    // actionable verdict there, not "not found".
    std::shared_lock lk(mig_mu_);
    for (const auto& w : chain_) {
      if (w->subject == index) {
        return {Errc::busy, "server already has an open migration window"};
      }
    }
  }
  if (index >= servers_.size() || !in_ring(index)) {
    return {Errc::not_found, "server not in ring"};
  }
  if (is_down(index)) return {Errc::busy, "server is down; recover or resync first"};
  const double weight = ring_.weight_of(index);
  const HashRing before(ring_);
  ring_.remove_node(index);  // bumps the ring epoch
  open_window(MigrationWindow::Kind::decommission, index, weight, before, rcfg);
  return Status::success();
}

std::uint32_t BlobStore::add_server(sim::SimNode& node, RebalanceStats* stats,
                                    sim::SimAgent* agent) {
  auto r = begin_add_server(node);
  if (!r.ok()) return static_cast<std::uint32_t>(servers_.size());
  Rebalancer* rb = rebalancer();
  (void)rb->run_to_completion(agent);
  if (stats) {
    const auto p = rb->progress();
    stats->objects_moved += p.copies_installed;
    stats->bytes_moved += p.bytes_moved;
    stats->objects_dropped += p.copies_dropped;
  }
  return r.value();
}

Status BlobStore::decommission_server(std::uint32_t index, RebalanceStats* stats,
                                      sim::SimAgent* agent) {
  auto st = begin_decommission(index);
  if (!st.ok()) return st;
  Rebalancer* rb = rebalancer();
  st = rb->run_to_completion(agent);
  if (stats) {
    const auto p = rb->progress();
    stats->objects_moved += p.copies_installed;
    stats->bytes_moved += p.bytes_moved;
    stats->objects_dropped += p.copies_dropped;
  }
  return st;
}

std::uint32_t BlobStore::reattach_server(sim::SimNode& node) {
  const auto index = static_cast<std::uint32_t>(servers_.size());
  servers_.push_back(std::make_unique<BlobServer>(node));
  down_.push_back(std::make_unique<std::atomic<bool>>(false));
  if (!persist_base_dir_.empty()) {
    (void)servers_[index]->enable_persistence(
        persist_base_dir_ + "/server-" + std::to_string(index), persist_jcfg_);
  }
  servers_[index]->set_ring_epoch(ring_.epoch());
  return index;
}

BlobStore::ScrubReport BlobStore::scrub(bool repair, sim::SimAgent* agent) {
  ScrubReport report;
  // Key universe across all live servers.
  std::map<std::string, bool> keys;
  for (std::uint32_t j = 0; j < servers_.size(); ++j) {
    if (!in_ring(j) || is_down(j)) continue;
    SimMicros svc = 0;
    for (const auto& s : servers_[j]->scan("", &svc)) keys.emplace(s.key, true);
  }

  for (const auto& [key, unused] : keys) {
    (void)unused;
    ++report.objects_checked;
    const auto replicas = replicas_of(key);

    // Gather each live replica's bytes + version + engine checksum verdict.
    struct Copy {
      std::uint32_t server;
      Bytes data;
      std::uint64_t fingerprint;
      bool checksum_ok;
      Version version;
    };
    std::vector<Copy> copies;
    for (std::uint32_t r : replicas) {
      if (is_down(r)) continue;
      BlobServer& srv = *servers_[r];
      SimMicros svc = 0;
      auto st = srv.stat(key, &svc);
      if (!st.ok()) continue;  // missing copy: resync territory, not scrub
      auto data = srv.read(key, 0, st.value().size, &svc);
      if (!data.ok()) continue;
      const bool sum_ok = srv.verify_key(key).ok();
      if (!sum_ok) ++report.checksum_errors;
      // Charge the scrub read (sequential sweep) to the maintenance agent.
      if (agent) transport_.call_reliable(*agent, srv.node(), 64, st.value().size, svc);
      const std::uint64_t fp = content_checksum(as_view(data.value().data));
      copies.push_back({r, std::move(data.value().data), fp, sum_ok, st.value().version});
    }
    if (copies.size() < 2) continue;

    // Authoritative copy: the freshest (highest-version) checksum-clean
    // one. Never a majority vote — under quorum writes a minority replica
    // may be the only one holding an acked mutation, and voting would roll
    // it back. The write path keeps versions identical across replicas
    // that applied the same ops, so "freshest clean copy" is exact.
    const Copy* good = nullptr;
    for (const auto& c : copies) {
      if (c.checksum_ok && (!good || c.version > good->version)) good = &c;
    }
    if (!good) continue;  // everything corrupt: unrecoverable here
    for (const auto& c : copies) {
      if (c.checksum_ok && c.fingerprint == good->fingerprint &&
          c.version == good->version) {
        continue;
      }
      ++report.divergent_replicas;
      if (!repair) continue;
      BlobServer& target = *servers_[c.server];
      SimMicros svc = 0;
      if (target
              .install_copy(key, as_view(good->data), good->data.size(),
                            good->version, &svc)
              .ok()) {
        ++report.repaired;
        if (agent) {
          transport_.call_reliable(*agent, target.node(), good->data.size() + 64, 64,
                                   svc);
        }
      }
    }
  }
  return report;
}

std::uint64_t BlobStore::total_objects() {
  std::uint64_t n = 0;
  for (auto& s : servers_) n += s->object_count();
  return n;
}

std::uint64_t BlobStore::total_live_bytes() {
  std::uint64_t n = 0;
  for (auto& s : servers_) n += s->live_bytes();
  return n;
}

Status BlobStore::verify_all_integrity() {
  for (auto& s : servers_) {
    auto st = s->verify_integrity();
    if (!st.ok()) return st;
  }
  return Status::success();
}

}  // namespace bsc::blob
