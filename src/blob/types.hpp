// Vocabulary types of the blob layer.
//
// A blob is a named, flat-namespace binary object supporting the primitive
// set of the paper's §III:
//   Blob Access:         read(key, off, len), size(key)
//   Blob Manipulation:   write(key, off, data), truncate(key, len)
//   Blob Administration: create(key), remove(key)
//   Namespace Access:    scan()
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace bsc::blob {

/// Blob keys are arbitrary non-empty strings in a single flat namespace.
using BlobKey = std::string;

/// Monotonic per-blob version, bumped on every mutation. Used by the
/// transaction layer for optimistic conflict detection and by tests to
/// assert replica convergence.
using Version = std::uint64_t;

struct BlobStat {
  BlobKey key;
  std::uint64_t size = 0;
  Version version = 0;
};

struct StoreConfig {
  std::uint32_t replication = 3;      ///< replicas per chunk (primary included)
  std::uint64_t chunk_bytes = 1 << 20; ///< striping unit across storage nodes (0 = off)
  std::uint32_t vnodes_per_node = 64; ///< ring virtual nodes
  bool write_creates = true;          ///< RADOS-style implicit create on write
};

// --- chunk striping -------------------------------------------------------
//
// Blobs larger than StoreConfig::chunk_bytes are striped: chunk 0 is stored
// under the application key itself (small blobs never pay for chunking, and
// chunk 0's engine length carries the FULL logical blob size), while chunk
// c >= 1 is stored under an internal key `key SEP c`. Chunk keys are ordinary
// ring keys, so each chunk lands on its own replica set and resync /
// rebalance / scrub handle them with no special casing.

/// Separator between an application key and a chunk index. ASCII "unit
/// separator" — application keys never contain it.
inline constexpr char kChunkKeySep = '\x1f';

/// Engine key holding chunk `chunk` of blob `key` (chunk 0 = the key itself).
inline std::string chunk_engine_key(std::string_view key, std::uint64_t chunk) {
  std::string out{key};
  if (chunk > 0) {
    out += kChunkKeySep;
    out += std::to_string(chunk);
  }
  return out;
}

/// True for internal chunk keys (c >= 1); namespace scans filter these out.
inline bool is_chunk_key(std::string_view key) {
  return key.find(kChunkKeySep) != std::string_view::npos;
}

}  // namespace bsc::blob
