// Vocabulary types of the blob layer.
//
// A blob is a named, flat-namespace binary object supporting the primitive
// set of the paper's §III:
//   Blob Access:         read(key, off, len), size(key)
//   Blob Manipulation:   write(key, off, data), truncate(key, len)
//   Blob Administration: create(key), remove(key)
//   Namespace Access:    scan()
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/units.hpp"

namespace bsc::blob {

/// Blob keys are arbitrary non-empty strings in a single flat namespace.
using BlobKey = std::string;

/// Monotonic per-blob version, bumped on every mutation. Used by the
/// transaction layer for optimistic conflict detection and by tests to
/// assert replica convergence.
using Version = std::uint64_t;

struct BlobStat {
  BlobKey key;
  std::uint64_t size = 0;
  Version version = 0;
};

/// Client-side retry behavior, all in simulated time. Backoff between
/// attempts uses decorrelated jitter (sleep = uniform[base, prev*3], capped)
/// drawn from the client's seeded rng, so runs are deterministic.
struct RetryPolicy {
  std::uint32_t max_attempts = 4;        ///< total tries per replica leg (1 = no retry)
  SimMicros attempt_deadline_us = 2000;  ///< per-attempt deadline (timeout on drop)
  SimMicros backoff_base_us = 100;       ///< first backoff lower bound
  SimMicros backoff_cap_us = 10000;      ///< backoff upper clamp
};

/// Read hedging: after a delivered read leg exceeds the hedge delay, charge
/// a second speculative read to an equally fresh replica and take the
/// faster completion. The delay adapts to the observed p99 of read-leg
/// latency once enough samples exist; before that, `fixed_delay_us` is used
/// (0 disables hedging until the histogram warms up).
struct HedgePolicy {
  bool enabled = false;
  SimMicros fixed_delay_us = 0;         ///< 0 = adaptive only
  std::uint32_t min_samples = 64;       ///< histogram warm-up before p99 kicks in
  double percentile = 99.0;             ///< delay = this percentile of read latency
};

/// End-to-end operation budget + retry-amplification control. The per-op
/// deadline is carried across every retry, failover, hedge, and batch
/// envelope of one client primitive: per-attempt deadlines are clamped to
/// the remaining budget, and once it is spent the operation fails with
/// Errc::deadline_exceeded instead of queueing more work behind a lost
/// cause. The token bucket is client-wide: each fresh operation earns
/// `retry_token_ratio` tokens, each retry spends one — under a correlated
/// outage the bucket drains and retries are suppressed, bounding fleet-wide
/// retry amplification at ~(1 + ratio) of offered load (the classic defense
/// against metastable retry storms).
struct DeadlinePolicy {
  SimMicros op_deadline_us = 0;    ///< total per-operation budget (0 = unbounded)
  double retry_token_ratio = 0.1;  ///< tokens earned per first attempt
  double retry_token_cap = 64.0;   ///< bucket capacity + initial fill (<=0 = off)
};

/// Per-replica gray-failure defense in BlobClient. Every node the client
/// talks to carries an EWMA of delivered-leg latency and a consecutive-
/// failure count (errors, timeouts, and sheds alike); crossing the failure
/// threshold opens a breaker: closed -> open (cooldown, no traffic) ->
/// half_open (single probes) -> closed after `half_open_probes` successes,
/// or straight back to open on a probe failure. Open/half-open nodes are
/// demoted in read-candidate order and hedged against earlier; mutation
/// forwards to an open-breaker replica convert to hinted handoff
/// immediately instead of burning timeouts.
struct BreakerPolicy {
  bool enabled = true;
  std::uint32_t failure_threshold = 5;   ///< consecutive failures to open
  SimMicros open_cooldown_us = 20000;    ///< open -> half_open after this long
  std::uint32_t half_open_probes = 2;    ///< successful probes to close
  double ewma_alpha = 0.2;               ///< latency EWMA smoothing factor
  double suspect_latency_factor = 3.0;   ///< EWMA > factor * fleet mean = suspect
  std::uint32_t suspect_min_samples = 16;///< per-node samples before latency suspicion
};

struct StoreConfig {
  std::uint32_t replication = 3;      ///< replicas per chunk (primary included)
  std::uint64_t chunk_bytes = 1 << 20; ///< striping unit across storage nodes (0 = off)
  std::uint32_t vnodes_per_node = 64; ///< ring virtual nodes
  bool write_creates = true;          ///< RADOS-style implicit create on write

  /// Batched scatter-gather striping: chunk legs destined for the same
  /// replica candidate set travel as one multi-op batch envelope (one
  /// queueing trip, one fault-injection decision, per-sub-op status in the
  /// reply) instead of fully independent per-chunk RPCs. Read quorum > 1
  /// and hedging stay batched too: the envelope carries per-sub version
  /// votes (digest-only replies from the non-payload candidates) so the
  /// client arbitrates freshness per sub-op without shipping R payloads.
  /// Off = the per-leg path (kept for A/B benches and fault fallback).
  bool batched_striping = true;

  /// Client-side metadata cache of {logical size, chunk-0 version} per blob,
  /// verified by a piggybacked stat sub-op (batched path) or an overlapped
  /// stat leg (per-leg path) and invalidated on any local mutation or
  /// version/size drift in a reply. Eliminates the stat round that
  /// otherwise precedes every striped read; size()/stat() answer from it
  /// with zero rounds. Consulted by both striped read paths.
  bool client_meta_cache = true;

  /// Write quorum W. 0 (default) keeps the classic behavior: every *live*
  /// replica must ack (down replicas are repaired by resync). A non-zero
  /// W <= replication makes a mutation succeed once W replicas ack; missed
  /// replicas get hinted-handoff entries, and reads arbitrate freshness
  /// across R = replication - W + 1 replicas by version.
  std::uint32_t write_quorum = 0;

  RetryPolicy retry;
  HedgePolicy hedge;
  DeadlinePolicy deadline;
  BreakerPolicy breaker;

  /// Effective read quorum for the configured write quorum.
  [[nodiscard]] std::uint32_t read_quorum() const noexcept {
    if (write_quorum == 0 || write_quorum >= replication) return 1;
    return replication - write_quorum + 1;
  }
};

// --- chunk striping -------------------------------------------------------
//
// Blobs larger than StoreConfig::chunk_bytes are striped: chunk 0 is stored
// under the application key itself (small blobs never pay for chunking, and
// chunk 0's engine length carries the FULL logical blob size), while chunk
// c >= 1 is stored under an internal key `key SEP c`. Chunk keys are ordinary
// ring keys, so each chunk lands on its own replica set and resync /
// rebalance / scrub handle them with no special casing.

/// Separator between an application key and a chunk index. ASCII "unit
/// separator" — application keys never contain it.
inline constexpr char kChunkKeySep = '\x1f';

/// Engine key holding chunk `chunk` of blob `key` (chunk 0 = the key itself).
inline std::string chunk_engine_key(std::string_view key, std::uint64_t chunk) {
  std::string out{key};
  if (chunk > 0) {
    out += kChunkKeySep;
    out += std::to_string(chunk);
  }
  return out;
}

/// True for internal chunk keys (c >= 1); namespace scans filter these out.
inline bool is_chunk_key(std::string_view key) {
  return key.find(kChunkKeySep) != std::string_view::npos;
}

}  // namespace bsc::blob
