// Vocabulary types of the blob layer.
//
// A blob is a named, flat-namespace binary object supporting the primitive
// set of the paper's §III:
//   Blob Access:         read(key, off, len), size(key)
//   Blob Manipulation:   write(key, off, data), truncate(key, len)
//   Blob Administration: create(key), remove(key)
//   Namespace Access:    scan()
#pragma once

#include <cstdint>
#include <string>

namespace bsc::blob {

/// Blob keys are arbitrary non-empty strings in a single flat namespace.
using BlobKey = std::string;

/// Monotonic per-blob version, bumped on every mutation. Used by the
/// transaction layer for optimistic conflict detection and by tests to
/// assert replica convergence.
using Version = std::uint64_t;

struct BlobStat {
  BlobKey key;
  std::uint64_t size = 0;
  Version version = 0;
};

struct StoreConfig {
  std::uint32_t replication = 3;      ///< replicas per chunk (primary included)
  std::uint64_t chunk_bytes = 1 << 20; ///< striping unit across storage nodes
  std::uint32_t vnodes_per_node = 64; ///< ring virtual nodes
  bool write_creates = true;          ///< RADOS-style implicit create on write
};

}  // namespace bsc::blob
