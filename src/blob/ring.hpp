// Consistent-hashing placement ring with virtual nodes.
//
// Each physical storage node owns `vnodes` points on a 64-bit ring; a key is
// placed on the first `replicas` *distinct* physical nodes at or after
// hash(key). Adding or removing a node relocates only the keys adjacent to
// its vnodes (the property the ring tests assert).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bsc::blob {

class HashRing {
 public:
  explicit HashRing(std::uint32_t vnodes_per_node = 64);

  // Copy/move are explicit because epoch_ is atomic (see below): snapshots
  // of the ring (migration planning, chain rebuilds) carry the epoch value
  // across without tearing.
  HashRing(const HashRing& other)
      : vnodes_(other.vnodes_),
        nodes_(other.nodes_),
        weights_(other.weights_),
        ring_(other.ring_),
        epoch_(other.epoch_.load(std::memory_order_acquire)) {}
  HashRing& operator=(const HashRing& other) {
    if (this != &other) {
      vnodes_ = other.vnodes_;
      nodes_ = other.nodes_;
      weights_ = other.weights_;
      ring_ = other.ring_;
      epoch_.store(other.epoch_.load(std::memory_order_acquire),
                   std::memory_order_release);
    }
    return *this;
  }
  HashRing(HashRing&& other) noexcept
      : vnodes_(other.vnodes_),
        nodes_(std::move(other.nodes_)),
        weights_(std::move(other.weights_)),
        ring_(std::move(other.ring_)),
        epoch_(other.epoch_.load(std::memory_order_acquire)) {}
  HashRing& operator=(HashRing&& other) noexcept {
    if (this != &other) {
      vnodes_ = other.vnodes_;
      nodes_ = std::move(other.nodes_);
      weights_ = std::move(other.weights_);
      ring_ = std::move(other.ring_);
      epoch_.store(other.epoch_.load(std::memory_order_acquire),
                   std::memory_order_release);
    }
    return *this;
  }

  /// Add a member. `weight` scales the member's vnode count (and therefore
  /// its expected key share) relative to a weight-1.0 node: a 2.0 node owns
  /// ~2x the keys of a 1.0 node, a 0.5 node half — heterogeneous capacity,
  /// or a joiner warming up with a small share. Clamped to at least one
  /// vnode; weight changes for an existing member are a no-op (remove and
  /// re-add to change capacity, which correctly bumps the epoch twice).
  void add_node(std::uint32_t node_id, double weight = 1.0);
  void remove_node(std::uint32_t node_id);
  [[nodiscard]] bool has_node(std::uint32_t node_id) const;
  /// Capacity weight the member was added with (1.0 for non-members).
  [[nodiscard]] double weight_of(std::uint32_t node_id) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  /// All member node ids, ascending.
  [[nodiscard]] std::vector<std::uint32_t> members() const {
    return {nodes_.begin(), nodes_.end()};
  }

  // --- epoch-versioned membership ---
  // Every mutation that changes the member set bumps the ring epoch. Servers
  // stamp responses with the epoch they were configured at; clients compare
  // the stamp against the epoch their placement was computed at and refresh
  // on mismatch. The store bumps the epoch a second time when a migration
  // window closes (cutover), so "same epoch" always implies "same placement
  // rules", including the dual-write window.
  // epoch_ is atomic because clients read it LOCK-FREE on the placement fast
  // path (BlobStore::placement_of with no migration open) while a finalize
  // thread bumps it during cutover.
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }
  /// Membership-neutral bump (migration-window cutover).
  void bump_epoch() noexcept { epoch_.fetch_add(1, std::memory_order_release); }
  /// Restore a recovered epoch (never moves backwards).
  void set_epoch(std::uint64_t e) noexcept {
    std::uint64_t cur = epoch_.load(std::memory_order_relaxed);
    while (cur < e && !epoch_.compare_exchange_weak(cur, e, std::memory_order_release,
                                                    std::memory_order_relaxed)) {
    }
  }

  /// The ordered replica set (primary first) for `key`. Returns at most
  /// min(replicas, node_count) distinct nodes; empty when the ring is empty.
  [[nodiscard]] std::vector<std::uint32_t> locate(std::string_view key,
                                                  std::uint32_t replicas) const;

  /// Primary node for `key` (first entry of locate).
  [[nodiscard]] std::uint32_t primary(std::string_view key) const;

 private:
  std::uint32_t vnodes_;
  std::set<std::uint32_t> nodes_;
  std::map<std::uint32_t, double> weights_;      ///< node id -> capacity weight
  std::map<std::uint64_t, std::uint32_t> ring_;  ///< point -> node id
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace bsc::blob
