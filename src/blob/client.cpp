#include "blob/client.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace bsc::blob {

namespace {
/// Wire envelope overhead of a request/response (header, op code, status).
constexpr std::uint64_t kEnvelope = 32;

std::uint64_t req_bytes(std::string_view key, std::uint64_t payload = 0) {
  return kEnvelope + key.size() + payload;
}
}  // namespace

Status BlobClient::mutation_leg(const std::string& ekey,
                                const std::vector<BlobServer::TxnOp>& ops,
                                bool force_create, SimMicros start,
                                SimMicros* completion) {
  *completion = start;
  auto replicas = store_->replicas_of(ekey);
  if (replicas.empty()) return {Errc::no_space, "no storage nodes in ring"};

  // Per-key striped locks on every replica of this key, acquired in
  // ascending node order (the same global order the transaction path uses —
  // no deadlock). Racing writers to one key serialize on its stripe and
  // apply in the same order on every replica; writers to distinct keys
  // proceed in parallel.
  std::vector<std::uint32_t> sorted = replicas;
  std::sort(sorted.begin(), sorted.end());
  std::vector<BlobServer::KeyLock> locks;
  locks.reserve(sorted.size());
  for (std::uint32_t n : sorted) locks.push_back(store_->server(n).lock_key(ekey));

  // Applicability check against the acting primary's current state, so the
  // apply below cannot fail on one replica and succeed on another. Ops in a
  // leg are validated sequentially (later ops see earlier ops' effects).
  // Down replicas are skipped (degraded write); resync repairs them later.
  const auto acting = store_->first_up(replicas);
  if (!acting) return {Errc::io_error, "all replicas down: " + ekey};
  BlobServer& primary = store_->server(*acting);
  bool exists = !primary.version_matches(ekey, 0);
  Status precheck = Status::success();
  std::uint64_t payload = 0;
  for (const auto& op : ops) {
    payload += op.data.size();
    switch (op.kind) {
      case BlobServer::TxnOp::Kind::create:
        if (exists) precheck = {Errc::already_exists, op.key};
        exists = true;
        break;
      case BlobServer::TxnOp::Kind::remove:
        if (!exists) precheck = {Errc::not_found, op.key};
        exists = false;
        break;
      case BlobServer::TxnOp::Kind::truncate:
      case BlobServer::TxnOp::Kind::grow:
        if (!exists) precheck = {Errc::not_found, op.key};
        break;
      case BlobServer::TxnOp::Kind::write:
        if (!exists && !force_create && !store_->config().write_creates) {
          precheck = {Errc::not_found, op.key};
        }
        exists = true;
        break;
    }
    if (!precheck.ok()) break;
  }

  const auto& net = store_->cluster().net();
  const std::uint64_t req = req_bytes(ekey, payload);

  if (!precheck.ok()) {
    // Pay the failed round-trip to the primary.
    const SimMicros done = primary.node().serve(start + net.transfer_us(req), 3);
    *completion = done + net.transfer_us(kEnvelope);
    return precheck;
  }

  // Apply at the acting primary, then forward to the remaining live
  // replicas in parallel; the client's ack waits for the slowest replica
  // (strong durability, as in RADOS).
  SimMicros svc0 = 0;
  Status st = primary.apply_txn_ops(ops, &svc0);
  const SimMicros prim_done = primary.node().serve(start + net.transfer_us(req), svc0);
  SimMicros done = prim_done;
  for (std::uint32_t rid : replicas) {
    if (!st.ok()) break;
    if (rid == *acting || store_->is_down(rid)) continue;
    SimMicros svc = 0;
    BlobServer& rep = store_->server(rid);
    Status rs = rep.apply_txn_ops(ops, &svc);
    if (!rs.ok()) st = {Errc::io_error, "replica divergence: " + rs.message()};
    done = std::max(done, rep.node().serve(prim_done + net.transfer_us(req), svc));
  }
  *completion = done + net.transfer_us(kEnvelope);
  return st;
}

Status BlobClient::replicated_mutation(std::string_view key,
                                       const std::vector<BlobServer::TxnOp>& ops,
                                       bool force_create) {
  const SimMicros start = agent_ ? agent_->now() : 0;
  SimMicros completion = start;
  Status st = mutation_leg(std::string{key}, ops, force_create, start, &completion);
  if (agent_) agent_->advance_to(completion);
  return st;
}

Result<ReadOutcome> BlobClient::read_leg(const std::string& ekey, std::uint64_t off,
                                         std::uint64_t len, SimMicros start,
                                         SimMicros* completion) {
  *completion = start;
  const auto replicas = store_->replicas_of(ekey);
  if (replicas.empty()) return {Errc::no_space, "no storage nodes in ring"};
  // Failover: reads are served by the first live replica.
  const auto acting = store_->first_up(replicas);
  if (!acting) return {Errc::io_error, "all replicas down: " + ekey};
  BlobServer& primary = store_->server(*acting);
  const auto& net = store_->cluster().net();
  SimMicros svc = 0;
  auto r = primary.read(ekey, off, len, &svc);
  const std::uint64_t resp = kEnvelope + (r.ok() ? r.value().data.size() : 0);
  const SimMicros served = primary.node().serve(start + net.transfer_us(req_bytes(ekey)), svc);
  *completion = served + net.transfer_us(resp);
  return r;
}

Result<std::uint64_t> BlobClient::peek_logical_size(const std::string& ekey) {
  const auto replicas = store_->replicas_of(ekey);
  if (replicas.empty()) return {Errc::no_space, "no storage nodes in ring"};
  const auto acting = store_->first_up(replicas);
  if (!acting) return {Errc::io_error, "all replicas down: " + ekey};
  return store_->server(*acting).peek_size(ekey);
}

Status BlobClient::create(std::string_view key) {
  ++counters_.creates;
  if (key.empty()) return {Errc::invalid_argument, "empty blob key"};
  return replicated_mutation(
      key, {{BlobServer::TxnOp::Kind::create, std::string{key}, 0, {}, 0}});
}

Status BlobClient::remove(std::string_view key) {
  ++counters_.removes;
  const std::uint64_t cb = store_->config().chunk_bytes;
  std::uint64_t logical = 0;
  if (cb > 0) {
    if (auto sz = peek_logical_size(std::string{key}); sz.ok()) logical = sz.value();
  }
  if (cb == 0 || logical <= cb) {
    return replicated_mutation(
        key, {{BlobServer::TxnOp::Kind::remove, std::string{key}, 0, {}, 0}});
  }
  // Striped blob: drop chunk 0 and every existing chunk key, scatter-gather.
  const SimMicros start = agent_ ? agent_->now() : 0;
  SimMicros done = start;
  SimMicros comp = start;
  Status st = mutation_leg(std::string{key},
                           {{BlobServer::TxnOp::Kind::remove, std::string{key}, 0, {}, 0}},
                           false, start, &comp);
  done = std::max(done, comp);
  const std::uint64_t chunks = (logical + cb - 1) / cb;
  for (std::uint64_t c = 1; c < chunks && st.ok(); ++c) {
    const std::string ekey = chunk_engine_key(key, c);
    if (!peek_logical_size(ekey).ok()) continue;  // hole chunk: nothing stored
    st = mutation_leg(ekey, {{BlobServer::TxnOp::Kind::remove, ekey, 0, {}, 0}}, false,
                      start, &comp);
    done = std::max(done, comp);
  }
  if (agent_) agent_->advance_to(done);
  return st;
}

Result<Bytes> BlobClient::read(std::string_view key, std::uint64_t offset,
                               std::uint64_t len) {
  ++counters_.reads;
  const std::uint64_t cb = store_->config().chunk_bytes;
  if (cb == 0 || offset + len <= cb) {
    // Single-chunk fast path: one round trip to the acting primary.
    const auto replicas = store_->replicas_of(key);
    if (replicas.empty()) return {Errc::no_space, "no storage nodes in ring"};
    const auto acting = store_->first_up(replicas);
    if (!acting) return {Errc::io_error, "all replicas down: " + std::string{key}};
    BlobServer& primary = store_->server(*acting);
    SimMicros svc = 0;
    auto r = primary.read(std::string{key}, offset, len, &svc);
    const std::uint64_t resp = kEnvelope + (r.ok() ? r.value().data.size() : 0);
    if (agent_) {
      store_->transport().call(*agent_, primary.node(), req_bytes(key), resp, svc);
    } else {
      primary.node().serve(0, svc);
    }
    if (!r.ok()) return r.error();
    counters_.bytes_read += r.value().data.size();
    return std::move(r.value().data);
  }

  // Striped read: clip to the logical size (held by chunk 0), then issue one
  // leg per touched chunk to its own acting primary. Legs fork from the same
  // simulated instant; the call completes at the slowest leg.
  const std::string base{key};
  auto lsz = peek_logical_size(base);
  if (!lsz.ok()) {
    // Blob absent (or ring empty): one failed round trip, as in the fast path.
    const SimMicros start = agent_ ? agent_->now() : 0;
    SimMicros comp = start;
    auto r = read_leg(base, offset, len, start, &comp);
    if (agent_) agent_->advance_to(comp);
    return r.ok() ? Result<Bytes>{Errc::not_found, base} : Result<Bytes>{r.error()};
  }
  const std::uint64_t logical = lsz.value();
  const std::uint64_t rlen = offset < logical ? std::min(len, logical - offset) : 0;

  const SimMicros start = agent_ ? agent_->now() : 0;
  SimMicros done = start;
  Bytes out(rlen, std::byte{0});  // unwritten holes (and absent chunks) read as zero
  if (rlen == 0) {
    // At/after EOF: the engine answers from chunk 0's index alone.
    SimMicros comp = start;
    auto r = read_leg(base, offset, len, start, &comp);
    done = std::max(done, comp);
    if (agent_) agent_->advance_to(done);
    if (!r.ok()) return r.error();
    return out;
  }
  const std::uint64_t end = offset + rlen;
  Status fail = Status::success();
  for (std::uint64_t c = offset / cb; c * cb < end; ++c) {
    const std::uint64_t lo = std::max(offset, c * cb);
    const std::uint64_t hi = std::min(end, (c + 1) * cb);
    const std::string ekey = chunk_engine_key(key, c);
    SimMicros comp = start;
    auto r = read_leg(ekey, lo - c * cb, hi - lo, start, &comp);
    done = std::max(done, comp);
    if (r.ok()) {
      // The leg may return fewer bytes than requested (hole at the chunk's
      // tail): the remainder stays zero.
      const Bytes& part = r.value().data;
      std::copy(part.begin(), part.end(),
                out.begin() + static_cast<std::ptrdiff_t>(lo - offset));
    } else if (r.error().code != Errc::not_found) {
      fail = r.error();
      break;
    }
    // not_found: the whole chunk is a hole — zeros are already in place.
  }
  if (agent_) agent_->advance_to(done);
  if (!fail.ok()) return fail.error();
  counters_.bytes_read += out.size();
  return out;
}

Result<std::uint64_t> BlobClient::size(std::string_view key) {
  ++counters_.sizes;
  const auto replicas = store_->replicas_of(key);
  if (replicas.empty()) return {Errc::no_space, "no storage nodes in ring"};
  const auto acting = store_->first_up(replicas);
  if (!acting) return {Errc::io_error, "all replicas down: " + std::string{key}};
  BlobServer& primary = store_->server(*acting);
  SimMicros svc = 0;
  // Chunk 0 carries the full logical size of a striped blob.
  auto r = primary.size(std::string{key}, &svc);
  if (agent_) store_->transport().call(*agent_, primary.node(), req_bytes(key), kEnvelope, svc);
  return r;
}

Result<BlobStat> BlobClient::stat(std::string_view key) {
  const auto replicas = store_->replicas_of(key);
  if (replicas.empty()) return {Errc::no_space, "no storage nodes in ring"};
  const auto acting = store_->first_up(replicas);
  if (!acting) return {Errc::io_error, "all replicas down: " + std::string{key}};
  BlobServer& primary = store_->server(*acting);
  SimMicros svc = 0;
  auto r = primary.stat(std::string{key}, &svc);
  if (agent_) {
    store_->transport().call(*agent_, primary.node(), req_bytes(key), kEnvelope + 24, svc);
  }
  return r;
}

bool BlobClient::exists(std::string_view key) { return stat(key).ok(); }

Result<std::uint64_t> BlobClient::write(std::string_view key, std::uint64_t offset,
                                        ByteView data) {
  ++counters_.writes;
  if (key.empty()) return {Errc::invalid_argument, "empty blob key"};
  const std::uint64_t cb = store_->config().chunk_bytes;
  const std::uint64_t end = offset + data.size();
  if (cb == 0 || end <= cb) {
    // Single-chunk fast path.
    Status st = replicated_mutation(
        key, {{BlobServer::TxnOp::Kind::write, std::string{key}, offset,
               Bytes(data.begin(), data.end()), 0}});
    if (!st.ok()) return st.error();
    counters_.bytes_written += data.size();
    return data.size();
  }

  // Striped write: slice the range over fixed-size chunks. The base leg
  // (chunk 0) carries its slice — or an empty creating write when the range
  // starts past chunk 0 — plus a grow() keeping the full logical size on the
  // chunk-0 record. It runs first (it owns create semantics); the remaining
  // chunk legs go to their own replica sets and fork from the same
  // simulated instant (scatter-gather: the ack waits for the slowest leg).
  const std::string base{key};
  const SimMicros start = agent_ ? agent_->now() : 0;
  SimMicros done = start;
  SimMicros comp = start;

  std::vector<BlobServer::TxnOp> base_ops;
  if (offset < cb) {
    const std::uint64_t hi = std::min(end, cb);
    base_ops.push_back({BlobServer::TxnOp::Kind::write, base, offset,
                        Bytes(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(
                                                hi - offset)),
                        0});
  } else {
    base_ops.push_back({BlobServer::TxnOp::Kind::write, base, 0, {}, 0});
  }
  base_ops.push_back({BlobServer::TxnOp::Kind::grow, base, 0, {}, end});
  Status st = mutation_leg(base, base_ops, false, start, &comp);
  done = std::max(done, comp);

  for (std::uint64_t c = std::max<std::uint64_t>(1, offset / cb); c * cb < end && st.ok();
       ++c) {
    const std::uint64_t lo = std::max(offset, c * cb);
    const std::uint64_t hi = std::min(end, (c + 1) * cb);
    const std::string ekey = chunk_engine_key(key, c);
    std::vector<BlobServer::TxnOp> ops;
    ops.push_back({BlobServer::TxnOp::Kind::write, ekey, lo - c * cb,
                   Bytes(data.begin() + static_cast<std::ptrdiff_t>(lo - offset),
                         data.begin() + static_cast<std::ptrdiff_t>(hi - offset)),
                   0});
    // Chunk keys of an existing blob are created on demand regardless of the
    // write_creates policy (the application-visible blob already exists).
    st = mutation_leg(ekey, ops, /*force_create=*/true, start, &comp);
    done = std::max(done, comp);
  }
  if (agent_) agent_->advance_to(done);
  if (!st.ok()) return st.error();
  counters_.bytes_written += data.size();
  return data.size();
}

Status BlobClient::truncate(std::string_view key, std::uint64_t new_size) {
  ++counters_.truncates;
  const std::uint64_t cb = store_->config().chunk_bytes;
  std::uint64_t logical = 0;
  bool known = false;
  if (cb > 0) {
    if (auto sz = peek_logical_size(std::string{key}); sz.ok()) {
      logical = sz.value();
      known = true;
    }
  }
  if (cb == 0 || !known || (logical <= cb && new_size <= cb)) {
    // Unchunked blob (or absent: the leg reports not_found with the usual
    // failed-round-trip timing).
    return replicated_mutation(
        key, {{BlobServer::TxnOp::Kind::truncate, std::string{key}, 0, {}, new_size}});
  }

  // Striped truncate. Chunk 0's record carries the logical size, so its leg
  // is a plain truncate to new_size: shrinking below chunk_bytes drops data
  // extents, any other target only moves the logical length (chunk 0 never
  // holds data past chunk_bytes). Chunks entirely past the new end are
  // removed; the chunk straddling it is trimmed locally.
  const std::string base{key};
  const SimMicros start = agent_ ? agent_->now() : 0;
  SimMicros done = start;
  SimMicros comp = start;
  Status st = mutation_leg(
      base, {{BlobServer::TxnOp::Kind::truncate, base, 0, {}, new_size}}, false, start,
      &comp);
  done = std::max(done, comp);
  const std::uint64_t chunks = (std::max(logical, new_size) + cb - 1) / cb;
  for (std::uint64_t c = 1; c < chunks && st.ok(); ++c) {
    const std::uint64_t cstart = c * cb;
    const std::string ekey = chunk_engine_key(key, c);
    if (!peek_logical_size(ekey).ok()) continue;  // hole chunk: nothing stored
    std::vector<BlobServer::TxnOp> ops;
    if (cstart >= new_size) {
      ops.push_back({BlobServer::TxnOp::Kind::remove, ekey, 0, {}, 0});
    } else if (new_size < cstart + cb) {
      ops.push_back({BlobServer::TxnOp::Kind::truncate, ekey, 0, {}, new_size - cstart});
    } else {
      continue;  // chunk fully below the new end
    }
    st = mutation_leg(ekey, ops, false, start, &comp);
    done = std::max(done, comp);
  }
  if (agent_) agent_->advance_to(done);
  return st;
}

Result<std::vector<BlobStat>> BlobClient::scan(std::string_view prefix) {
  ++counters_.scans;
  const auto& net = store_->cluster().net();
  const SimMicros start = agent_ ? agent_->now() : 0;
  const std::string pfx{prefix};

  // Fan out to every server in parallel; merge + dedupe (replicas hold
  // copies of the same key) and present a sorted global namespace view.
  // Internal chunk keys are implementation detail — hidden from the
  // namespace (their bytes are reported via chunk 0's logical size).
  std::map<std::string, BlobStat> merged;
  SimMicros done = start;
  for (std::size_t i = 0; i < store_->server_count(); ++i) {
    if (store_->is_down(static_cast<std::uint32_t>(i))) continue;
    BlobServer& s = store_->server(i);
    SimMicros svc = 0;
    auto part = s.scan(pfx, &svc);
    const SimMicros arr = start + net.transfer_us(req_bytes(prefix));
    std::uint64_t resp = kEnvelope;
    for (auto& bs : part) resp += bs.key.size() + 16;
    const SimMicros fin = s.node().serve(arr, svc) + net.transfer_us(resp);
    done = std::max(done, fin);
    for (auto& bs : part) {
      if (is_chunk_key(bs.key)) continue;
      auto [it, inserted] = merged.try_emplace(bs.key, bs);
      if (!inserted && bs.version > it->second.version) it->second = bs;
    }
  }
  if (agent_) agent_->advance_to(done);

  std::vector<BlobStat> out;
  out.reserve(merged.size());
  for (auto& [k, v] : merged) out.push_back(std::move(v));
  return out;
}

BlobTransaction BlobClient::begin_transaction() { return BlobTransaction(*this); }

// ---------------------------------------------------------------- txn ----

BlobTransaction& BlobTransaction::write(std::string_view key, std::uint64_t offset,
                                        ByteView data) {
  ops_.push_back({BlobServer::TxnOp::Kind::write, std::string{key}, offset,
                  Bytes(data.begin(), data.end()), 0});
  return *this;
}

BlobTransaction& BlobTransaction::truncate(std::string_view key, std::uint64_t new_size) {
  ops_.push_back({BlobServer::TxnOp::Kind::truncate, std::string{key}, 0, {}, new_size});
  return *this;
}

BlobTransaction& BlobTransaction::create(std::string_view key) {
  ops_.push_back({BlobServer::TxnOp::Kind::create, std::string{key}, 0, {}, 0});
  return *this;
}

BlobTransaction& BlobTransaction::remove(std::string_view key) {
  ops_.push_back({BlobServer::TxnOp::Kind::remove, std::string{key}, 0, {}, 0});
  return *this;
}

BlobTransaction& BlobTransaction::expect_version(std::string_view key, Version version) {
  preconditions_.emplace_back(std::string{key}, version);
  return *this;
}

Status BlobTransaction::commit() {
  BlobClient& c = *client_;
  ++c.counters_.txns;
  if (ops_.empty()) return Status::success();
  BlobStore& store = c.store();

  // Involved servers: every replica of every touched key.
  std::set<std::uint32_t> involved;
  std::map<std::uint32_t, std::vector<BlobServer::TxnOp>> per_server;
  std::uint64_t payload = 0;
  for (const auto& op : ops_) {
    payload += op.key.size() + op.data.size() + 24;
    for (std::uint32_t n : store.replicas_of(op.key)) {
      involved.insert(n);
      per_server[n].push_back(op);
    }
  }
  if (involved.empty()) return {Errc::no_space, "no storage nodes in ring"};

  // Lock phase: whole-server exclusive locks in ascending node id order —
  // the one global order shared with the per-key mutation path, which rules
  // out deadlock between concurrent transactions and striped writers alike.
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(involved.size());
  for (std::uint32_t n : involved) locks.push_back(store.server(n).lock_exclusive());

  const auto& net = store.cluster().net();
  sim::SimAgent* agent = c.agent();
  const SimMicros start = agent ? agent->now() : 0;

  // Prepare round: small validation message to every involved server.
  SimMicros prepare_done = start;
  for (std::uint32_t n : involved) {
    const SimMicros arr = start + net.transfer_us(64);
    prepare_done = std::max(prepare_done, store.server(n).node().serve(arr, 3));
  }

  // Precondition validation at the acting primaries.
  for (const auto& [key, expected] : preconditions_) {
    const auto reps = store.replicas_of(key);
    const auto acting = store.first_up(reps);
    if (reps.empty() || !acting ||
        !store.server(*acting).version_matches(key, expected)) {
      if (agent) agent->advance_to(prepare_done + net.transfer_us(32));
      return {Errc::conflict, "precondition failed: " + key};
    }
  }

  // Applicability validation against the pre-transaction state, so the
  // commit round below cannot fail halfway (all-or-nothing). Ops within one
  // transaction apply in order on every server, so a create followed by
  // ops on the same key is fine; validation only checks the initial state.
  std::set<std::string> created_in_txn;
  for (const auto& op : ops_) {
    const auto reps = store.replicas_of(op.key);
    const auto acting = store.first_up(reps);
    if (!acting) {
      if (agent) agent->advance_to(prepare_done + net.transfer_us(32));
      return {Errc::io_error, "all replicas down: " + op.key};
    }
    const bool pre_exists = !store.server(*acting).version_matches(op.key, 0);
    const bool exists = pre_exists || created_in_txn.count(op.key) != 0;
    bool applicable = true;
    switch (op.kind) {
      case BlobServer::TxnOp::Kind::create:
        applicable = !exists;
        created_in_txn.insert(op.key);
        break;
      case BlobServer::TxnOp::Kind::remove:
      case BlobServer::TxnOp::Kind::truncate:
      case BlobServer::TxnOp::Kind::grow:
        applicable = exists;
        break;
      case BlobServer::TxnOp::Kind::write:
        created_in_txn.insert(op.key);  // auto-creates
        break;
    }
    if (!applicable) {
      if (agent) agent->advance_to(prepare_done + net.transfer_us(32));
      return {Errc::conflict, "inapplicable op on: " + op.key};
    }
  }

  // Commit round: apply the batch on every involved server (replicas too).
  SimMicros commit_done = prepare_done;
  Status failure = Status::success();
  for (auto& [n, server_ops] : per_server) {
    if (store.is_down(n)) continue;  // degraded commit; resync repairs later
    SimMicros svc = 0;
    Status st = store.server(n).apply_txn_ops(server_ops, &svc);
    if (!st.ok() && failure.ok()) failure = st;
    const SimMicros arr = prepare_done + net.transfer_us(64 + payload);
    commit_done = std::max(commit_done, store.server(n).node().serve(arr, svc));
  }
  if (agent) agent->advance_to(commit_done + net.transfer_us(32));
  return failure;
}

}  // namespace bsc::blob
