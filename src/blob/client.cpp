#include "blob/client.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace bsc::blob {

namespace {
/// Wire envelope overhead of a request/response (header, op code, status).
constexpr std::uint64_t kEnvelope = 32;

std::uint64_t req_bytes(std::string_view key, std::uint64_t payload = 0) {
  return kEnvelope + key.size() + payload;
}
}  // namespace

Status BlobClient::replicated_mutation(std::string_view key,
                                       const BlobServer::TxnOp& op) {
  auto replicas = store_->replicas_of(key);
  if (replicas.empty()) return {Errc::no_space, "no storage nodes in ring"};

  // Exclusive access to the whole replica set for the duration of the
  // mutation, acquired in ascending node order (the same global order the
  // transaction path uses — no deadlock, and racing writers to one key
  // apply in the same order on every replica).
  std::vector<std::uint32_t> sorted = replicas;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(sorted.size());
  for (std::uint32_t n : sorted) locks.push_back(store_->server(n).lock_exclusive());

  // Applicability check against the acting primary's current state, so the
  // apply below cannot fail on one replica and succeed on another. Down
  // replicas are skipped (degraded write); resync repairs them later.
  const auto acting = store_->first_up(replicas);
  if (!acting) return {Errc::io_error, "all replicas down: " + std::string{key}};
  BlobServer& primary = store_->server(*acting);
  const bool exists = !primary.version_matches(std::string{op.key}, 0);
  Status precheck = Status::success();
  switch (op.kind) {
    case BlobServer::TxnOp::Kind::create:
      if (exists) precheck = {Errc::already_exists, op.key};
      break;
    case BlobServer::TxnOp::Kind::remove:
    case BlobServer::TxnOp::Kind::truncate:
      if (!exists) precheck = {Errc::not_found, op.key};
      break;
    case BlobServer::TxnOp::Kind::write:
      if (!exists && !store_->config().write_creates) {
        precheck = {Errc::not_found, op.key};
      }
      break;
  }

  const auto& net = store_->cluster().net();
  const std::uint64_t req = req_bytes(key, op.data.size());
  const SimMicros start = agent_ ? agent_->now() : 0;

  if (!precheck.ok()) {
    // Pay the failed round-trip to the primary.
    const SimMicros done = primary.node().serve(start + net.transfer_us(req), 3);
    if (agent_) agent_->advance_to(done + net.transfer_us(kEnvelope));
    return precheck;
  }

  // Apply at the acting primary, then forward to the remaining live
  // replicas in parallel; the client's ack waits for the slowest replica
  // (strong durability, as in RADOS).
  const std::vector<BlobServer::TxnOp> ops{op};
  SimMicros svc0 = 0;
  Status st = primary.apply_txn_ops(ops, &svc0);
  const SimMicros prim_done = primary.node().serve(start + net.transfer_us(req), svc0);
  SimMicros done = prim_done;
  for (std::uint32_t rid : replicas) {
    if (!st.ok()) break;
    if (rid == *acting || store_->is_down(rid)) continue;
    SimMicros svc = 0;
    BlobServer& rep = store_->server(rid);
    Status rs = rep.apply_txn_ops(ops, &svc);
    if (!rs.ok()) st = {Errc::io_error, "replica divergence: " + rs.message()};
    done = std::max(done, rep.node().serve(prim_done + net.transfer_us(req), svc));
  }
  if (agent_) agent_->advance_to(done + net.transfer_us(kEnvelope));
  return st;
}

Status BlobClient::create(std::string_view key) {
  ++counters_.creates;
  if (key.empty()) return {Errc::invalid_argument, "empty blob key"};
  return replicated_mutation(
      key, {BlobServer::TxnOp::Kind::create, std::string{key}, 0, {}, 0});
}

Status BlobClient::remove(std::string_view key) {
  ++counters_.removes;
  return replicated_mutation(
      key, {BlobServer::TxnOp::Kind::remove, std::string{key}, 0, {}, 0});
}

Result<Bytes> BlobClient::read(std::string_view key, std::uint64_t offset,
                               std::uint64_t len) {
  ++counters_.reads;
  const auto replicas = store_->replicas_of(key);
  if (replicas.empty()) return {Errc::no_space, "no storage nodes in ring"};
  // Failover: reads are served by the first live replica.
  const auto acting = store_->first_up(replicas);
  if (!acting) return {Errc::io_error, "all replicas down: " + std::string{key}};
  BlobServer& primary = store_->server(*acting);
  SimMicros svc = 0;
  auto r = primary.read(std::string{key}, offset, len, &svc);
  const std::uint64_t resp = kEnvelope + (r.ok() ? r.value().data.size() : 0);
  if (agent_) {
    store_->transport().call(*agent_, primary.node(), req_bytes(key), resp, svc);
  } else {
    primary.node().serve(0, svc);
  }
  if (!r.ok()) return r.error();
  counters_.bytes_read += r.value().data.size();
  return std::move(r.value().data);
}

Result<std::uint64_t> BlobClient::size(std::string_view key) {
  ++counters_.sizes;
  const auto replicas = store_->replicas_of(key);
  if (replicas.empty()) return {Errc::no_space, "no storage nodes in ring"};
  const auto acting = store_->first_up(replicas);
  if (!acting) return {Errc::io_error, "all replicas down: " + std::string{key}};
  BlobServer& primary = store_->server(*acting);
  SimMicros svc = 0;
  auto r = primary.size(std::string{key}, &svc);
  if (agent_) store_->transport().call(*agent_, primary.node(), req_bytes(key), kEnvelope, svc);
  return r;
}

Result<BlobStat> BlobClient::stat(std::string_view key) {
  const auto replicas = store_->replicas_of(key);
  if (replicas.empty()) return {Errc::no_space, "no storage nodes in ring"};
  const auto acting = store_->first_up(replicas);
  if (!acting) return {Errc::io_error, "all replicas down: " + std::string{key}};
  BlobServer& primary = store_->server(*acting);
  SimMicros svc = 0;
  auto r = primary.stat(std::string{key}, &svc);
  if (agent_) {
    store_->transport().call(*agent_, primary.node(), req_bytes(key), kEnvelope + 24, svc);
  }
  return r;
}

bool BlobClient::exists(std::string_view key) { return stat(key).ok(); }

Result<std::uint64_t> BlobClient::write(std::string_view key, std::uint64_t offset,
                                        ByteView data) {
  ++counters_.writes;
  if (key.empty()) return {Errc::invalid_argument, "empty blob key"};
  Status st = replicated_mutation(
      key, {BlobServer::TxnOp::Kind::write, std::string{key}, offset,
            Bytes(data.begin(), data.end()), 0});
  if (!st.ok()) return st.error();
  counters_.bytes_written += data.size();
  return data.size();
}

Status BlobClient::truncate(std::string_view key, std::uint64_t new_size) {
  ++counters_.truncates;
  return replicated_mutation(
      key, {BlobServer::TxnOp::Kind::truncate, std::string{key}, 0, {}, new_size});
}

Result<std::vector<BlobStat>> BlobClient::scan(std::string_view prefix) {
  ++counters_.scans;
  const auto& net = store_->cluster().net();
  const SimMicros start = agent_ ? agent_->now() : 0;
  const std::string pfx{prefix};

  // Fan out to every server in parallel; merge + dedupe (replicas hold
  // copies of the same key) and present a sorted global namespace view.
  std::map<std::string, BlobStat> merged;
  SimMicros done = start;
  for (std::size_t i = 0; i < store_->server_count(); ++i) {
    if (store_->is_down(static_cast<std::uint32_t>(i))) continue;
    BlobServer& s = store_->server(i);
    SimMicros svc = 0;
    auto part = s.scan(pfx, &svc);
    const SimMicros arr = start + net.transfer_us(req_bytes(prefix));
    std::uint64_t resp = kEnvelope;
    for (auto& bs : part) resp += bs.key.size() + 16;
    const SimMicros fin = s.node().serve(arr, svc) + net.transfer_us(resp);
    done = std::max(done, fin);
    for (auto& bs : part) {
      auto [it, inserted] = merged.try_emplace(bs.key, bs);
      if (!inserted && bs.version > it->second.version) it->second = bs;
    }
  }
  if (agent_) agent_->advance_to(done);

  std::vector<BlobStat> out;
  out.reserve(merged.size());
  for (auto& [k, v] : merged) out.push_back(std::move(v));
  return out;
}

BlobTransaction BlobClient::begin_transaction() { return BlobTransaction(*this); }

// ---------------------------------------------------------------- txn ----

BlobTransaction& BlobTransaction::write(std::string_view key, std::uint64_t offset,
                                        ByteView data) {
  ops_.push_back({BlobServer::TxnOp::Kind::write, std::string{key}, offset,
                  Bytes(data.begin(), data.end()), 0});
  return *this;
}

BlobTransaction& BlobTransaction::truncate(std::string_view key, std::uint64_t new_size) {
  ops_.push_back({BlobServer::TxnOp::Kind::truncate, std::string{key}, 0, {}, new_size});
  return *this;
}

BlobTransaction& BlobTransaction::create(std::string_view key) {
  ops_.push_back({BlobServer::TxnOp::Kind::create, std::string{key}, 0, {}, 0});
  return *this;
}

BlobTransaction& BlobTransaction::remove(std::string_view key) {
  ops_.push_back({BlobServer::TxnOp::Kind::remove, std::string{key}, 0, {}, 0});
  return *this;
}

BlobTransaction& BlobTransaction::expect_version(std::string_view key, Version version) {
  preconditions_.emplace_back(std::string{key}, version);
  return *this;
}

Status BlobTransaction::commit() {
  BlobClient& c = *client_;
  ++c.counters_.txns;
  if (ops_.empty()) return Status::success();
  BlobStore& store = c.store();

  // Involved servers: every replica of every touched key.
  std::set<std::uint32_t> involved;
  std::map<std::uint32_t, std::vector<BlobServer::TxnOp>> per_server;
  std::uint64_t payload = 0;
  for (const auto& op : ops_) {
    payload += op.key.size() + op.data.size() + 24;
    for (std::uint32_t n : store.replicas_of(op.key)) {
      involved.insert(n);
      per_server[n].push_back(op);
    }
  }
  if (involved.empty()) return {Errc::no_space, "no storage nodes in ring"};

  // Lock phase: ascending node id order rules out deadlock between
  // concurrent transactions (CP.21 in spirit — one consistent order).
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(involved.size());
  for (std::uint32_t n : involved) locks.push_back(store.server(n).lock_exclusive());

  const auto& net = store.cluster().net();
  sim::SimAgent* agent = c.agent();
  const SimMicros start = agent ? agent->now() : 0;

  // Prepare round: small validation message to every involved server.
  SimMicros prepare_done = start;
  for (std::uint32_t n : involved) {
    const SimMicros arr = start + net.transfer_us(64);
    prepare_done = std::max(prepare_done, store.server(n).node().serve(arr, 3));
  }

  // Precondition validation at the acting primaries.
  for (const auto& [key, expected] : preconditions_) {
    const auto reps = store.replicas_of(key);
    const auto acting = store.first_up(reps);
    if (reps.empty() || !acting ||
        !store.server(*acting).version_matches(key, expected)) {
      if (agent) agent->advance_to(prepare_done + net.transfer_us(32));
      return {Errc::conflict, "precondition failed: " + key};
    }
  }

  // Applicability validation against the pre-transaction state, so the
  // commit round below cannot fail halfway (all-or-nothing). Ops within one
  // transaction apply in order on every server, so a create followed by
  // ops on the same key is fine; validation only checks the initial state.
  std::set<std::string> created_in_txn;
  for (const auto& op : ops_) {
    const auto reps = store.replicas_of(op.key);
    const auto acting = store.first_up(reps);
    if (!acting) {
      if (agent) agent->advance_to(prepare_done + net.transfer_us(32));
      return {Errc::io_error, "all replicas down: " + op.key};
    }
    const bool pre_exists = !store.server(*acting).version_matches(op.key, 0);
    const bool exists = pre_exists || created_in_txn.count(op.key) != 0;
    bool applicable = true;
    switch (op.kind) {
      case BlobServer::TxnOp::Kind::create:
        applicable = !exists;
        created_in_txn.insert(op.key);
        break;
      case BlobServer::TxnOp::Kind::remove:
      case BlobServer::TxnOp::Kind::truncate:
        applicable = exists;
        break;
      case BlobServer::TxnOp::Kind::write:
        created_in_txn.insert(op.key);  // auto-creates
        break;
    }
    if (!applicable) {
      if (agent) agent->advance_to(prepare_done + net.transfer_us(32));
      return {Errc::conflict, "inapplicable op on: " + op.key};
    }
  }

  // Commit round: apply the batch on every involved server (replicas too).
  SimMicros commit_done = prepare_done;
  Status failure = Status::success();
  for (auto& [n, server_ops] : per_server) {
    if (store.is_down(n)) continue;  // degraded commit; resync repairs later
    SimMicros svc = 0;
    Status st = store.server(n).apply_txn_ops(server_ops, &svc);
    if (!st.ok() && failure.ok()) failure = st;
    const SimMicros arr = prepare_done + net.transfer_us(64 + payload);
    commit_done = std::max(commit_done, store.server(n).node().serve(arr, svc));
  }
  if (agent) agent->advance_to(commit_done + net.transfer_us(32));
  return failure;
}

}  // namespace bsc::blob
