#include "blob/client.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <thread>

#include "common/hash.hpp"
#include "rpc/wire.hpp"
#include "trace/taxonomy.hpp"

namespace bsc::blob {

namespace {
/// Wire envelope overhead of a request/response (header, op code, status).
constexpr std::uint64_t kEnvelope = 32;

/// Wire size of a version-probe request/response (stat of one key).
constexpr std::uint64_t kProbeReq = 64;
constexpr std::uint64_t kProbeResp = kEnvelope + 24;

std::uint64_t req_bytes(std::string_view key, std::uint64_t payload = 0) {
  return kEnvelope + key.size() + payload;
}

/// Exact wire bytes of one batch sub-op header (payload excluded). Coalesced
/// runs of consecutive chunks share a single header (`span` chunks, one key);
/// the payload itself is charged once per envelope at the largest-leg rate,
/// matching the per-leg model's parallel-stream assumption.
std::uint64_t batch_header_bytes(std::string_view first_key, rpc::BatchOpKind kind,
                                 std::uint32_t span) {
  rpc::BatchOp op;
  op.kind = kind;
  op.key.assign(first_key);
  op.span = span;
  return rpc::wire_size(op);
}

/// Wire bytes of one per-sub status in a batch reply (payload excluded).
std::uint64_t batch_substatus_bytes() { return rpc::wire_size(rpc::BatchSubStatus{}); }

/// Registry series of one client primitive. The category counter is the
/// paper's §IV taxonomy roll-up, reached through the closest POSIX OpKind:
/// create→open, remove→unlink, size/stat→stat, scan→readdir, txn→sync
/// (read/write/truncate map to themselves).
struct PrimSeries {
  std::string label;  ///< slow-op op name, e.g. "client.read"
  obs::Counter& calls;
  obs::Counter& category;
  obs::ShardedHistogram& latency_us;
};

PrimSeries make_series(const char* prim, trace::OpKind kind) {
  auto& reg = obs::MetricsRegistry::global();
  const std::string base = std::string{"client."} + prim;
  return PrimSeries{base, reg.counter(base + ".calls"),
                    reg.counter(std::string{"client.category."} +
                                std::string{trace::to_string(trace::classify(kind))}),
                    reg.histogram(base + ".latency_us")};
}

/// All client series, resolved once per process (registry references are
/// stable for the process lifetime).
struct ClientMetrics {
  PrimSeries create = make_series("create", trace::OpKind::open);
  PrimSeries remove = make_series("remove", trace::OpKind::unlink);
  PrimSeries read = make_series("read", trace::OpKind::read);
  PrimSeries write = make_series("write", trace::OpKind::write);
  PrimSeries truncate = make_series("truncate", trace::OpKind::truncate);
  PrimSeries size = make_series("size", trace::OpKind::stat);
  PrimSeries stat = make_series("stat", trace::OpKind::stat);
  PrimSeries scan = make_series("scan", trace::OpKind::readdir);
  PrimSeries txn = make_series("txn", trace::OpKind::sync);
  obs::ShardedHistogram& read_bytes =
      obs::MetricsRegistry::global().histogram("client.read.bytes");
  obs::ShardedHistogram& write_bytes =
      obs::MetricsRegistry::global().histogram("client.write.bytes");
  // Batched scatter-gather + metadata cache series.
  obs::ShardedHistogram& read_hole_bytes =
      obs::MetricsRegistry::global().histogram("client.read.hole_bytes");
  obs::ShardedHistogram& batch_size =
      obs::MetricsRegistry::global().histogram("client.batch.size");
  obs::Counter& batch_envelopes =
      obs::MetricsRegistry::global().counter("client.batch.envelopes");
  obs::Counter& batch_coalesced =
      obs::MetricsRegistry::global().counter("client.batch.coalesced");
  obs::Counter& metacache_hits =
      obs::MetricsRegistry::global().counter("client.metacache.hits");
  obs::Counter& metacache_misses =
      obs::MetricsRegistry::global().counter("client.metacache.misses");
  obs::Counter& metacache_invalidations =
      obs::MetricsRegistry::global().counter("client.metacache.invalidations");
  // Quorum-aware batched reads: per-sub version voting in the envelope.
  obs::Counter& quorum_probes =
      obs::MetricsRegistry::global().counter("client.batch.quorum_probes");
  obs::Counter& quorum_winners =
      obs::MetricsRegistry::global().counter("client.batch.quorum_winners");
  obs::Counter& quorum_digest_savings =
      obs::MetricsRegistry::global().counter("client.batch.quorum_digest_savings_bytes");
  obs::Counter& quorum_refetches =
      obs::MetricsRegistry::global().counter("client.batch.quorum_refetches");
  // Elastic membership: the epoch protocol and dual writes. dual_writes is
  // the same registry series the rebalancer interns — one counter tells the
  // whole story of a migration window regardless of which side mirrored.
  obs::Counter& epoch_refreshes =
      obs::MetricsRegistry::global().counter("client.epoch.refreshes");
  obs::Counter& stale_retries =
      obs::MetricsRegistry::global().counter("client.epoch.stale_retries");
  obs::Counter& batch_retries =
      obs::MetricsRegistry::global().counter("client.batch.retries");
  obs::Counter& dual_writes =
      obs::MetricsRegistry::global().counter("rebalance.dual_writes");
  obs::Counter& chain_dual_writes =
      obs::MetricsRegistry::global().counter("rebalance.chain_dual_writes");
  // Overload resilience: end-to-end deadline budgets, the client-wide retry
  // token bucket, and the per-node circuit breakers.
  obs::Counter& deadline_exceeded =
      obs::MetricsRegistry::global().counter("client.deadline.exceeded");
  obs::Counter& deadline_clamped =
      obs::MetricsRegistry::global().counter("client.deadline.clamped_attempts");
  obs::Counter& retries_suppressed =
      obs::MetricsRegistry::global().counter("client.deadline.retries_suppressed");
  obs::Counter& sheds_observed =
      obs::MetricsRegistry::global().counter("client.breaker.sheds_observed");
  obs::Counter& breaker_opens =
      obs::MetricsRegistry::global().counter("client.breaker.opens");
  obs::Counter& breaker_closes =
      obs::MetricsRegistry::global().counter("client.breaker.closes");
  obs::Counter& breaker_probes =
      obs::MetricsRegistry::global().counter("client.breaker.probes");
  obs::Counter& breaker_fast_hints =
      obs::MetricsRegistry::global().counter("client.breaker.fast_hints");
  obs::Counter& breaker_demotions =
      obs::MetricsRegistry::global().counter("client.breaker.demotions");
  obs::Gauge& breaker_open_nodes =
      obs::MetricsRegistry::global().gauge("client.breaker.open_nodes");
};

ClientMetrics& client_metrics() {
  static ClientMetrics m;
  return m;
}

/// Publishes one primitive call on every return path: calls + category
/// counters, the simulated-latency histogram (the agent-clock delta this
/// call cost, scatter-gather legs included), and slow-op admission.
class PrimTimer {
 public:
  PrimTimer(const PrimSeries& s, sim::SimAgent* agent, std::string_view key)
      : s_(s), agent_(agent), key_(key), start_(agent ? agent->now() : 0) {}
  PrimTimer(const PrimTimer&) = delete;
  PrimTimer& operator=(const PrimTimer&) = delete;
  ~PrimTimer() {
    const SimMicros end = agent_ ? agent_->now() : start_;
    const auto latency = static_cast<std::uint64_t>(end - start_);
    s_.calls.inc();
    s_.category.inc();
    s_.latency_us.add(latency);
    obs::MetricsRegistry::global().slow_ops().observe(s_.label, key_, latency,
                                                      static_cast<std::uint64_t>(end));
  }

 private:
  const PrimSeries& s_;
  sim::SimAgent* agent_;
  std::string_view key_;  // outlived by the caller's key argument
  SimMicros start_;
};
}  // namespace

BlobClient::AttemptPlan BlobClient::plan_attempt(BlobServer& srv, SimMicros attempt_start,
                                                 std::uint64_t request_bytes,
                                                 std::uint32_t batch_subs,
                                                 SimMicros attempt_deadline_us) {
  const auto& net = store_->cluster().net();
  rpc::FaultVerdict v =
      batch_subs > 0
          ? store_->transport().admit_batch(srv.node(), attempt_start, batch_subs)
          : store_->transport().admit(srv.node(), attempt_start);
  AttemptPlan plan;
  switch (v.kind) {
    case rpc::FaultVerdict::Kind::deliver:
      plan.delivered = true;
      plan.extra_latency_us = v.extra_latency_us;
      return plan;
    case rpc::FaultVerdict::Kind::drop: {
      // Lost request: indistinguishable from a slow reply, so the client
      // burns the whole per-attempt deadline before concluding timeout.
      // Callers with an op budget pass the remaining-budget clamp in.
      const SimMicros deadline = attempt_deadline_us > 0
                                     ? attempt_deadline_us
                                     : store_->config().retry.attempt_deadline_us;
      plan.failed_at = attempt_start +
                       (deadline > 0 ? deadline : rpc::Transport::kDefaultDropWaitUs);
      plan.err = Errc::timeout;
      return plan;
    }
    case rpc::FaultVerdict::Kind::error:
      // The node answered with a transient error after one short round trip.
      plan.failed_at = attempt_start + 2 * net.transfer_us(request_bytes);
      plan.err = Errc::unavailable;
      return plan;
    case rpc::FaultVerdict::Kind::outage:
      // Connection refused: detected after the send attempt.
      plan.failed_at = attempt_start + net.transfer_us(request_bytes);
      plan.err = Errc::unavailable;
      return plan;
    case rpc::FaultVerdict::Kind::shed:
      // Bounced at the server's backlog bound: request out, tiny reject
      // back — fast fail, not a burned deadline.
      plan.failed_at = attempt_start + 2 * net.transfer_us(request_bytes);
      plan.err = Errc::overloaded;
      counters_.sheds_observed.inc();
      client_metrics().sheds_observed.inc();
      return plan;
  }
  plan.failed_at = attempt_start;
  plan.err = Errc::io_error;
  return plan;
}

SimMicros BlobClient::next_backoff(SimMicros* prev) {
  const RetryPolicy& rp = store_->config().retry;
  const SimMicros lo = rp.backoff_base_us;
  const SimMicros hi = std::max(lo, *prev * 3);
  SimMicros sleep = lo >= hi ? lo
                             : static_cast<SimMicros>(rng_.next_in(
                                   static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
  if (rp.backoff_cap_us > 0) sleep = std::min(sleep, rp.backoff_cap_us);
  *prev = sleep;
  return sleep;
}

// --- overload resilience helpers -------------------------------------------

BlobClient::OpBudget::OpBudget(BlobClient& c, SimMicros start) : c_(&c) {
  const SimMicros budget = c.store_->config().deadline.op_deadline_us;
  if (budget > 0 && c.op_deadline_at_ == 0) {
    c.op_deadline_at_ = start + budget;
    installed_ = true;
  }
}

BlobClient::OpBudget::~OpBudget() {
  if (installed_) c_->op_deadline_at_ = 0;
}

SimMicros BlobClient::attempt_deadline_at(SimMicros t) const noexcept {
  const SimMicros policy = store_->config().retry.attempt_deadline_us;
  if (op_deadline_at_ == 0) return policy;
  const SimMicros remaining =
      op_deadline_at_ > t ? op_deadline_at_ - t : 1;
  if (policy == 0 || remaining < policy) {
    return std::max<SimMicros>(1, remaining);
  }
  return policy;
}

void BlobClient::health_on_success(std::uint32_t node, SimMicros latency_us) {
  if (!store_->config().breaker.enabled) return;
  const BreakerPolicy& bp = store_->config().breaker;
  std::lock_guard<std::mutex> lk(health_mu_);
  NodeHealth& h = health_[node];
  h.consecutive_failures = 0;
  if (latency_us > 0) {  // 0 = delivery confirmation only, no latency sample
    h.ewma_latency_us = h.samples == 0
                            ? static_cast<double>(latency_us)
                            : bp.ewma_alpha * static_cast<double>(latency_us) +
                                  (1.0 - bp.ewma_alpha) * h.ewma_latency_us;
    ++h.samples;
    fleet_ewma_us_ = fleet_samples_ == 0
                         ? static_cast<double>(latency_us)
                         : bp.ewma_alpha * static_cast<double>(latency_us) +
                               (1.0 - bp.ewma_alpha) * fleet_ewma_us_;
    ++fleet_samples_;
  }
  if (h.state == NodeHealth::Breaker::half_open) {
    if (++h.half_open_successes >= bp.half_open_probes) {
      h.state = NodeHealth::Breaker::closed;
      h.half_open_successes = 0;
      counters_.breaker_closes.inc();
      client_metrics().breaker_closes.inc();
      client_metrics().breaker_open_nodes.add(-1);
    }
  }
}

void BlobClient::health_on_failure(std::uint32_t node, SimMicros now) {
  if (!store_->config().breaker.enabled) return;
  const BreakerPolicy& bp = store_->config().breaker;
  std::lock_guard<std::mutex> lk(health_mu_);
  NodeHealth& h = health_[node];
  ++h.consecutive_failures;
  if (h.state == NodeHealth::Breaker::half_open ||
      (h.state == NodeHealth::Breaker::closed &&
       h.consecutive_failures >= bp.failure_threshold)) {
    if (h.state == NodeHealth::Breaker::closed) {
      client_metrics().breaker_open_nodes.add(1);
    }
    h.state = NodeHealth::Breaker::open;
    h.opened_at = now;
    h.half_open_successes = 0;
    counters_.breaker_opens.inc();
    client_metrics().breaker_opens.inc();
  }
}

bool BlobClient::breaker_allows(std::uint32_t node, SimMicros now) {
  if (!store_->config().breaker.enabled) return true;
  const BreakerPolicy& bp = store_->config().breaker;
  std::lock_guard<std::mutex> lk(health_mu_);
  auto it = health_.find(node);
  if (it == health_.end()) return true;
  NodeHealth& h = it->second;
  switch (h.state) {
    case NodeHealth::Breaker::closed:
      return true;
    case NodeHealth::Breaker::open:
      if (now >= h.opened_at + bp.open_cooldown_us) {
        h.state = NodeHealth::Breaker::half_open;
        h.half_open_successes = 0;
        counters_.breaker_probes.inc();
        client_metrics().breaker_probes.inc();
        return true;  // this caller is the first probe
      }
      return false;
    case NodeHealth::Breaker::half_open:
      counters_.breaker_probes.inc();
      client_metrics().breaker_probes.inc();
      return true;  // half-open admits single probes
  }
  return true;
}

bool BlobClient::is_suspect(std::uint32_t node) {
  if (!store_->config().breaker.enabled) return false;
  const BreakerPolicy& bp = store_->config().breaker;
  std::lock_guard<std::mutex> lk(health_mu_);
  auto it = health_.find(node);
  if (it == health_.end()) return false;
  const NodeHealth& h = it->second;
  if (h.state != NodeHealth::Breaker::closed) return true;
  return h.samples >= bp.suspect_min_samples && fleet_samples_ > 0 &&
         h.ewma_latency_us > bp.suspect_latency_factor * fleet_ewma_us_;
}

void BlobClient::demote_suspects(std::vector<std::uint32_t>& candidates) {
  if (!store_->config().breaker.enabled || candidates.size() < 2) return;
  // Candidates are server indices; health is keyed by SimNode id.
  const auto suspect_idx = [this](std::uint32_t server_index) {
    return is_suspect(store_->server(server_index).node().id());
  };
  const auto first_suspect =
      std::find_if(candidates.begin(), candidates.end(), suspect_idx);
  if (first_suspect == candidates.end()) return;
  std::stable_partition(
      candidates.begin(), candidates.end(),
      [&suspect_idx](std::uint32_t n) { return !suspect_idx(n); });
  counters_.breaker_demotions.inc();
  client_metrics().breaker_demotions.inc();
}

BlobClient::NodeHealth::Breaker BlobClient::breaker_state(std::uint32_t node) {
  std::lock_guard<std::mutex> lk(health_mu_);
  auto it = health_.find(node);
  return it == health_.end() ? NodeHealth::Breaker::closed : it->second.state;
}

BlobClient::LegDelivery BlobClient::try_deliver(BlobServer& srv, SimMicros start,
                                                std::uint64_t request_bytes,
                                                std::uint32_t batch_subs) {
  const RetryPolicy& rp = store_->config().retry;
  const DeadlinePolicy& dp = store_->config().deadline;
  const std::uint32_t attempts = std::max<std::uint32_t>(1, rp.max_attempts);
  const std::uint32_t node = srv.node().id();
  SimMicros t = start;
  SimMicros prev = rp.backoff_base_us;
  LegDelivery out;
  // Each fresh leg earns retry tokens; each retry below spends one. The
  // bucket is client-wide, so a correlated failure drains it and retries
  // stop fleet-wide instead of amplifying the overload.
  const bool bucket_on = dp.retry_token_cap > 0.0;
  if (bucket_on) {
    if (retry_tokens_ < 0.0) retry_tokens_ = dp.retry_token_cap;  // initial fill
    retry_tokens_ = std::min(dp.retry_token_cap, retry_tokens_ + dp.retry_token_ratio);
  }
  for (std::uint32_t a = 0; a < attempts; ++a) {
    if (a > 0) {
      if (bucket_on && retry_tokens_ < 1.0) {
        counters_.retries_suppressed.inc();
        client_metrics().retries_suppressed.inc();
        break;
      }
      if (bucket_on) retry_tokens_ -= 1.0;
      t += next_backoff(&prev);
      counters_.retries.inc();
    }
    // End-to-end budget: stop before sending an attempt the op can no
    // longer afford (spent budget means the caller already missed its
    // deadline — more attempts are pure retry amplification).
    if (op_deadline_at_ > 0 && t >= op_deadline_at_) {
      out.err = Errc::deadline_exceeded;
      counters_.deadline_exceeded.inc();
      client_metrics().deadline_exceeded.inc();
      break;
    }
    SimMicros attempt_deadline = 0;
    if (op_deadline_at_ > 0) {
      attempt_deadline = attempt_deadline_at(t);
      if (attempt_deadline < rp.attempt_deadline_us) {
        client_metrics().deadline_clamped.inc();
      }
    }
    AttemptPlan p = plan_attempt(srv, t, request_bytes, batch_subs, attempt_deadline);
    if (p.delivered) {
      out.ok = true;
      out.attempt_start = t;
      out.extra_latency_us = p.extra_latency_us;
      health_on_success(node, 0);  // latency EWMA is fed at leg completion
      return out;
    }
    health_on_failure(node, p.failed_at);
    t = p.failed_at;
    out.err = p.err;
  }
  out.failed_at = t;
  return out;
}

Status BlobClient::mutation_leg(const std::string& ekey,
                                const std::vector<BlobServer::TxnOp>& ops,
                                bool force_create, SimMicros start,
                                SimMicros* completion, LegInfo* info) {
  *completion = start;

  // Placement loop: resolve (possibly from the placement cache), lock, then
  // re-resolve under the held stripes. The rebalancer flips a key's
  // migration state under those same stripes, so a placement that re-reads
  // identically is stable for the rest of the leg; a mismatch means the
  // cached entry went stale (membership moved) — flush it, pay one refresh
  // round trip, and retry against the authoritative placement. The final
  // pass proceeds on whatever it locked: finalize()'s verify sweep repairs
  // any drift a pathological race could leave behind.
  Placement p;
  std::vector<BlobServer::KeyLock> locks;
  for (int pass = 0;; ++pass) {
    p = pass == 0 ? locate(ekey) : store_->placement_of(ekey);
    if (p.replicas.empty()) return {Errc::no_space, "no storage nodes in ring"};

    // Per-key striped locks on every replica AND dual-write target of this
    // key, acquired in ascending node order (the same global order the
    // transaction path and the rebalancer use — no deadlock). Racing
    // writers to one key serialize on its stripe and apply in the same
    // order on every replica; writers to distinct keys proceed in parallel.
    std::vector<std::uint32_t> sorted = p.replicas;
    sorted.insert(sorted.end(), p.pending.begin(), p.pending.end());
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    locks.clear();
    locks.reserve(sorted.size());
    for (std::uint32_t n : sorted) locks.push_back(store_->server(n).lock_key(ekey));

    const Placement fresh = store_->placement_of(ekey);
    if (fresh.replicas == p.replicas && fresh.pending == p.pending) break;
    place_flush(ekey);
    counters_.epoch_refreshes.inc();
    client_metrics().epoch_refreshes.inc();
    if (pass >= 2) break;
    counters_.stale_epoch_retries.inc();
    client_metrics().stale_retries.inc();
    start += 2 * store_->cluster().net().transfer_us(kProbeReq);
  }
  const std::vector<std::uint32_t>& replicas = p.replicas;

  // Applicability check against the acting primary's current state, so the
  // apply below cannot fail on one replica and succeed on another. Ops in a
  // leg are validated sequentially (later ops see earlier ops' effects).
  const auto acting = store_->first_up(replicas);
  if (!acting) return {Errc::unavailable, "all replicas down: " + ekey};
  BlobServer& primary = store_->server(*acting);
  bool exists = !primary.version_matches(ekey, 0);
  const bool pre_exists = exists;
  if (info != nullptr) {
    // Piggyback the pre-leg size on the lock round already holding every
    // replica — the striped paths use it for chunk layout instead of a
    // separate stat round. In quorum mode the freshest live replica is
    // authoritative (a stale primary may have missed acked writes).
    info->pre_exists = pre_exists;
    info->pre_size = 0;
    if (pre_exists) {
      if (store_->config().write_quorum == 0) {
        info->pre_size = primary.peek_size(ekey).value_or(0);
      } else {
        bool found = false;
        Version best_v = 0;
        for (std::uint32_t rid : replicas) {
          if (store_->is_down(rid)) continue;
          BlobServer& srv = store_->server(rid);
          auto v = srv.peek_version(ekey);
          if (v.ok() && (!found || v.value() > best_v)) {
            found = true;
            best_v = v.value();
            info->pre_size = srv.peek_size(ekey).value_or(0);
          }
        }
      }
    }
  }
  Status precheck = Status::success();
  std::uint64_t payload = 0;
  bool ends_removed = exists;
  for (const auto& op : ops) {
    payload += op.payload().size();
    switch (op.kind) {
      case BlobServer::TxnOp::Kind::create:
        if (exists) precheck = {Errc::already_exists, op.key};
        exists = true;
        break;
      case BlobServer::TxnOp::Kind::remove:
        if (!exists) precheck = {Errc::not_found, op.key};
        exists = false;
        break;
      case BlobServer::TxnOp::Kind::truncate:
      case BlobServer::TxnOp::Kind::grow:
        if (!exists) precheck = {Errc::not_found, op.key};
        break;
      case BlobServer::TxnOp::Kind::write:
        if (!exists && !force_create && !store_->config().write_creates) {
          precheck = {Errc::not_found, op.key};
        }
        exists = true;
        break;
    }
    if (!precheck.ok()) break;
  }
  ends_removed = !exists;

  const auto& net = store_->cluster().net();
  const std::uint64_t req = req_bytes(ekey, payload);

  if (!precheck.ok()) {
    // Pay the failed round-trip to the primary (the rejection itself is a
    // tiny, delivered reply — a faulted leg would surface below anyway).
    const SimMicros done = primary.node().serve(start + net.transfer_us(req), 3);
    *completion = done + net.transfer_us(kEnvelope);
    return precheck;
  }

  // Replica-version bookkeeping. `pre_version` is the authoritative base a
  // replica must be at to apply this leg (else it missed earlier ops and
  // would diverge — it gets a hint instead). `base` is the highest version
  // any live replica holds: the post-apply version continues above it so
  // versions never regress across remove/recreate cycles, keeping
  // "max version = freshest" true for quorum arbitration. The version
  // exchange piggybacks on the lock round already holding every replica.
  const Version pre_version =
      pre_exists ? primary.peek_version(ekey).value_or(0) : 0;
  Version base = pre_version;
  for (std::uint32_t rid : replicas) {
    if (store_->is_down(rid)) continue;
    base = std::max(base, store_->server(rid).peek_version(ekey).value_or(0));
  }
  const Version new_version = base + ops.size();
  const bool continue_versions = base > pre_version;
  if (info != nullptr) info->new_version = new_version;

  // Coordinator leg: the acting primary must ack, with retries. Nothing has
  // been applied anywhere if this fails — the mutation is atomically absent.
  LegDelivery prim = try_deliver(primary, start, req);
  if (!prim.ok) {
    *completion = prim.failed_at;
    return {prim.err, "primary unreachable: " + ekey};
  }
  SimMicros svc0 = 0;
  Status st = primary.apply_txn_ops(ops, &svc0);
  if (continue_versions && st.ok() && !ends_removed) {
    (void)primary.force_version(ekey, new_version);
  }
  const SimMicros prim_arrival =
      prim.attempt_start + net.transfer_us(req) + prim.extra_latency_us;
  const SimMicros prim_done = primary.node().serve(prim_arrival, svc0);
  SimMicros done =
      prim_done + net.transfer_us(kEnvelope) + prim.extra_latency_us;
  if (!st.ok()) {
    *completion = done;
    return st;
  }

  // Forward to the remaining replicas in parallel (pipelined off the
  // primary's apply). Down, stale, or unreachable replicas are misses.
  std::uint32_t acks = 1;
  std::vector<std::uint32_t> missed;
  Errc miss_err = Errc::unavailable;
  for (std::uint32_t rid : replicas) {
    if (rid == *acting) continue;
    if (store_->is_down(rid)) {
      missed.push_back(rid);
      continue;
    }
    BlobServer& rep = store_->server(rid);
    if (!rep.version_matches(ekey, pre_version)) {
      // Behind (missed earlier ops): applying would interleave histories.
      missed.push_back(rid);
      continue;
    }
    if (store_->config().write_quorum > 0 &&
        !breaker_allows(store_->server(rid).node().id(), prim_done)) {
      // Open breaker on a quorum-mode forward: convert straight to a hint
      // (recorded with the other misses below) instead of burning the
      // retry/timeout ladder against a replica already known to be failing.
      // Classic mode (W=0) keeps trying — there every live replica must ack
      // and there is no hint repair path to absorb the miss.
      missed.push_back(rid);
      counters_.breaker_fast_hints.inc();
      client_metrics().breaker_fast_hints.inc();
      continue;
    }
    LegDelivery d = try_deliver(rep, prim_done, req);
    if (!d.ok) {
      missed.push_back(rid);
      miss_err = d.err;
      done = std::max(done, d.failed_at);
      continue;
    }
    SimMicros svc = 0;
    Status rs = rep.apply_txn_ops(ops, &svc);
    if (!rs.ok()) {
      st = {Errc::io_error, "replica divergence: " + rs.message()};
      break;
    }
    if (continue_versions && !ends_removed) (void)rep.force_version(ekey, new_version);
    ++acks;
    const SimMicros arr = prim_done + net.transfer_us(req) + d.extra_latency_us;
    done = std::max(done,
                    rep.node().serve(arr, svc) + net.transfer_us(kEnvelope) +
                        d.extra_latency_us);
  }
  if (!st.ok()) {
    *completion = done;
    return st;
  }

  // Dual-write targets (open migration window): the new-only owners get the
  // leg's ops too, version-gated exactly like forwarding replicas so an
  // out-of-order migration copy can never interleave histories. They are
  // NOT acks — the old set stays authoritative for quorum — and a missed or
  // down target gets a hint; finalize()'s verify sweep repairs whatever the
  // hints don't. This is what makes the write-vs-copy race safe in both
  // orders: copy-then-write lands here, write-then-copy is picked up by the
  // copy itself.
  for (std::uint32_t tid : p.pending) {
    if (store_->is_down(tid)) {
      if (primary.add_hint(tid, ekey)) counters_.hints_written.inc();
      continue;
    }
    BlobServer& tgt = store_->server(tid);
    if (!tgt.version_matches(ekey, pre_version)) continue;  // copy not landed yet
    LegDelivery dd = try_deliver(tgt, prim_done, req);
    if (!dd.ok) {
      if (primary.add_hint(tid, ekey)) counters_.hints_written.inc();
      done = std::max(done, dd.failed_at);
      continue;
    }
    SimMicros dsvc = 0;
    if (!tgt.apply_txn_ops(ops, &dsvc).ok()) continue;
    if (continue_versions && !ends_removed) (void)tgt.force_version(ekey, new_version);
    counters_.dual_writes.inc();
    client_metrics().dual_writes.inc();
    if (p.windows >= 2) {
      counters_.chain_dual_writes.inc();
      client_metrics().chain_dual_writes.inc();
    }
    const SimMicros arr = prim_done + net.transfer_us(req) + dd.extra_latency_us;
    done = std::max(done, tgt.node().serve(arr, dsvc) + net.transfer_us(kEnvelope) +
                              dd.extra_latency_us);
  }
  *completion = done;

  // The op is now applied at the primary regardless of the quorum outcome;
  // in quorum mode, hint every miss so the repair path knows exactly what
  // to fix. Classic mode (W=0) keeps its original contract: the full
  // digest resync repairs a recovered replica, no hints involved.
  const std::uint32_t W = store_->config().write_quorum;
  if (W > 0) {
    for (std::uint32_t rid : missed) {
      if (primary.add_hint(rid, ekey)) counters_.hints_written.inc();
    }
  }

  // Quorum evaluation. W=0 — classic all-live-replicas semantics. W>0 —
  // W acks suffice, except for legs that END with the key removed: a
  // removal must reach every live replica, or a stale copy could win
  // version arbitration against "absent" (there are no tombstones).
  bool quorum_met;
  if (W == 0 || ends_removed) {
    quorum_met = true;
    for (std::uint32_t rid : missed) {
      if (!store_->is_down(rid)) quorum_met = false;
    }
  } else {
    quorum_met = acks >= std::min<std::uint32_t>(W, replicas.size());
  }
  if (!quorum_met) {
    return {miss_err, "insufficient acks: " + ekey};
  }
  if (!missed.empty()) counters_.quorum_degraded_writes.inc();
  return Status::success();
}

Status BlobClient::replicated_mutation(std::string_view key,
                                       const std::vector<BlobServer::TxnOp>& ops,
                                       bool force_create) {
  const SimMicros start = agent_ ? agent_->now() : 0;
  SimMicros completion = start;
  Status st = mutation_leg(std::string{key}, ops, force_create, start, &completion);
  if (agent_) agent_->advance_to(completion);
  return st;
}

// ----------------------------------------------- batched striping ------

void BlobClient::cache_put(const std::string& key, MetaEntry e) {
  if (!store_->config().client_meta_cache) return;
  if (meta_cache_.size() >= kMetaCacheCap &&
      meta_cache_.find(key) == meta_cache_.end()) {
    // Blunt cap: entries are tiny and stat-verified on use, so a full reset
    // costs one extra stat round per blob, not correctness.
    meta_cache_.clear();
  }
  meta_cache_[key] = e;
}

void BlobClient::cache_erase(const std::string& key) {
  if (meta_cache_.erase(key) > 0) {
    counters_.metacache_invalidations.inc();
    client_metrics().metacache_invalidations.inc();
  }
}

Placement BlobClient::locate(const std::string& ekey) {
  if (const auto it = place_cache_.find(ekey); it != place_cache_.end()) {
    return it->second;
  }
  Placement p = store_->placement_of(ekey);
  // Only window-free placements are cacheable: a cached entry never carries
  // dual-write targets, and the stamp check catches it going stale.
  if (p.pending.empty()) {
    if (place_cache_.size() >= kMetaCacheCap &&
        place_cache_.find(ekey) == place_cache_.end()) {
      place_cache_.clear();  // same blunt cap policy as the metadata cache
    }
    place_cache_[ekey] = p;
  }
  return p;
}

void BlobClient::place_flush(const std::string& ekey) { place_cache_.erase(ekey); }

ThreadPool& BlobClient::pool() {
  if (!pool_) {
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    pool_ = std::make_unique<ThreadPool>(std::min<std::size_t>(8, hw));
  }
  return *pool_;
}

namespace {
rpc::BatchOpKind to_wire_kind(BlobServer::TxnOp::Kind k) {
  switch (k) {
    case BlobServer::TxnOp::Kind::write: return rpc::BatchOpKind::write;
    case BlobServer::TxnOp::Kind::truncate: return rpc::BatchOpKind::truncate;
    case BlobServer::TxnOp::Kind::create: return rpc::BatchOpKind::create;
    case BlobServer::TxnOp::Kind::remove: return rpc::BatchOpKind::remove;
    case BlobServer::TxnOp::Kind::grow: return rpc::BatchOpKind::grow;
  }
  return rpc::BatchOpKind::write;
}
}  // namespace

Status BlobClient::mutation_group_leg(std::vector<BatchSub*>& subs,
                                      std::uint32_t primary_id, SimMicros start,
                                      SimMicros* completion) {
  *completion = start;
  const auto& net = store_->cluster().net();
  BlobServer& primary = store_->server(primary_id);

  struct SubState {
    std::vector<std::uint32_t> replicas;
    std::vector<std::uint32_t> pending;  ///< dual-write targets (migration)
    std::uint32_t windows = 0;           ///< open windows with this key pending
    bool skip = false;  ///< tolerated not_found: the chunk is a hole
    Version pre_version = 0;
    Version new_version = 0;
    bool continue_versions = false;
    bool ends_removed = false;
    std::uint32_t acks = 1;  ///< the primary's ack, counted below
    std::vector<std::uint32_t> missed;
  };
  std::vector<SubState> st(subs.size());

  // One MultiKeyLock per involved node (ascending id), covering every group
  // key replicated OR dual-targeted there: the same lexicographic
  // (node, stripe) global order as per-leg lock_key rounds and transaction
  // commits, so the three paths cannot deadlock — this is the "single
  // striped-lock acquisition round". Placements are re-resolved under the
  // held stripes (the rebalancer flips migration state under the same
  // stripes), retrying the round when a cutover moved a key in between.
  std::map<std::uint32_t, std::vector<std::string_view>> node_keys;
  std::vector<BlobServer::MultiKeyLock> locks;
  for (int pass = 0;; ++pass) {
    node_keys.clear();
    for (std::size_t i = 0; i < subs.size(); ++i) {
      const Placement p = store_->placement_of(subs[i]->ekey);
      if (p.replicas.empty()) return {Errc::no_space, "no storage nodes in ring"};
      st[i].replicas = p.replicas;
      st[i].pending = p.pending;
      st[i].windows = p.windows;
      for (std::uint32_t n : p.replicas) node_keys[n].push_back(subs[i]->ekey);
      for (std::uint32_t n : p.pending) node_keys[n].push_back(subs[i]->ekey);
    }
    locks.clear();
    locks.reserve(node_keys.size());
    for (auto& [n, keys] : node_keys) locks.push_back(store_->server(n).lock_keys(keys));
    bool stable = true;
    for (std::size_t i = 0; i < subs.size() && stable; ++i) {
      const Placement p = store_->placement_of(subs[i]->ekey);
      stable = p.replicas == st[i].replicas && p.pending == st[i].pending;
    }
    if (stable || pass >= 2) break;
    counters_.stale_epoch_retries.inc();
    client_metrics().stale_retries.inc();
  }

  // The wave grouped these subs under `primary_id` from pre-lock placements;
  // if a cutover moved a sub off this primary in between, the caller must
  // re-group — applying through a non-owner could strand an acked write on
  // servers about to drop it.
  for (std::size_t i = 0; i < subs.size(); ++i) {
    if (std::find(st[i].replicas.begin(), st[i].replicas.end(), primary_id) ==
        st[i].replicas.end()) {
      return {Errc::busy, "placement moved during batch: " + subs[i]->ekey};
    }
  }

  // Prechecks + one version exchange per key, all under the held locks.
  // Wave-2 writes create chunk keys on demand (the application-visible blob
  // already exists); absent targets of tolerated truncate/remove subs are
  // holes — skipped, not errors.
  for (std::size_t i = 0; i < subs.size(); ++i) {
    BatchSub& sub = *subs[i];
    const bool exists = !primary.version_matches(sub.ekey, 0);
    if (!exists && sub.op.kind != BlobServer::TxnOp::Kind::write) {
      if (sub.tolerate_not_found) {
        st[i].skip = true;
        continue;
      }
      // Pay one failed round trip, as the per-leg precheck path does.
      const SimMicros done =
          primary.node().serve(start + net.transfer_us(req_bytes(sub.ekey)), 3);
      *completion = done + net.transfer_us(kEnvelope);
      return {Errc::not_found, sub.ekey};
    }
    st[i].ends_removed = sub.op.kind == BlobServer::TxnOp::Kind::remove;
    st[i].pre_version = exists ? primary.peek_version(sub.ekey).value_or(0) : 0;
    Version base = st[i].pre_version;
    for (std::uint32_t rid : st[i].replicas) {
      if (store_->is_down(rid)) continue;
      base = std::max(base, store_->server(rid).peek_version(sub.ekey).value_or(0));
    }
    st[i].new_version = base + 1;
    st[i].continue_versions = base > st[i].pre_version;
  }

  std::vector<std::size_t> run_idx;
  run_idx.reserve(subs.size());
  for (std::size_t i = 0; i < subs.size(); ++i) {
    if (!st[i].skip) run_idx.push_back(i);
  }
  if (run_idx.empty()) return Status::success();  // all holes: nothing to send

  // Envelope sizing: one header per coalesced run of consecutive same-kind
  // chunks. Chunk payloads stream in parallel exactly as the per-leg model
  // they replace — a vectored run is scattered at the NIC, so it is charged
  // at the largest single chunk, not the run's sum; what coalescing saves
  // is header bytes and per-sub fixed costs.
  std::uint64_t req_meta = kEnvelope;
  std::uint64_t max_payload = 0;
  {
    std::size_t r = 0;
    while (r < run_idx.size()) {
      const BatchSub& first = *subs[run_idx[r]];
      std::size_t e = r + 1;
      std::uint64_t run_max = first.op.data.size();
      while (e < run_idx.size() &&
             subs[run_idx[e]]->op.kind == first.op.kind &&
             subs[run_idx[e]]->chunk == subs[run_idx[e - 1]]->chunk + 1) {
        run_max = std::max<std::uint64_t>(run_max, subs[run_idx[e]]->op.data.size());
        ++e;
      }
      const auto span = static_cast<std::uint32_t>(e - r);
      req_meta += batch_header_bytes(first.ekey, to_wire_kind(first.op.kind), span);
      if (span >= 2) {
        counters_.coalesced_ops.inc();
        client_metrics().batch_coalesced.inc();
      }
      max_payload = std::max(max_payload, run_max);
      r = e;
    }
  }
  const std::uint64_t req = req_meta + max_payload;
  const std::uint64_t reply_meta =
      kEnvelope + run_idx.size() * batch_substatus_bytes();
  counters_.batch_envelopes.inc();
  client_metrics().batch_envelopes.inc();
  client_metrics().batch_size.add(run_idx.size());

  // Coordinator trip: one envelope, one fault decision, one apply_ops, one
  // queueing trip. Nothing is applied anywhere if it fails — the whole
  // group is atomically absent.
  LegDelivery prim =
      try_deliver(primary, start, req, static_cast<std::uint32_t>(run_idx.size()));
  if (!prim.ok) {
    // One whole-envelope re-send after a fresh backoff before giving up: a
    // batch envelope represents many legs, so it earns one extra attempt
    // beyond the per-attempt retry policy (ROADMAP "batch-envelope retry
    // semantics").
    counters_.batch_retries.inc();
    client_metrics().batch_retries.inc();
    SimMicros prev = store_->config().retry.backoff_base_us;
    prim = try_deliver(primary, prim.failed_at + next_backoff(&prev), req,
                       static_cast<std::uint32_t>(run_idx.size()));
  }
  if (!prim.ok) {
    *completion = prim.failed_at;
    return {prim.err, "primary unreachable: " + subs.front()->ekey};
  }
  std::vector<BlobServer::OpRef> refs;
  refs.reserve(run_idx.size());
  for (std::size_t i : run_idx) refs.push_back(subs[i]->op);
  SimMicros svc0 = 0;
  std::vector<SimMicros> marks(run_idx.size(), 0);
  Status ast = primary.apply_ops(refs.data(), refs.size(), &svc0, marks.data());
  if (ast.ok()) {
    for (std::size_t i : run_idx) {
      if (st[i].continue_versions && !st[i].ends_removed) {
        (void)primary.force_version(subs[i]->ekey, st[i].new_version);
      }
    }
  }
  const SimMicros prim_arrival =
      prim.attempt_start + net.transfer_us(req) + prim.extra_latency_us;
  if (!ast.ok()) {
    const SimMicros pd = primary.node().serve(prim_arrival, svc0);
    *completion = pd + net.transfer_us(reply_meta) + prim.extra_latency_us;
    return ast;
  }
  // The batch is ONE queueing trip, but sub-ops stream out of the primary as
  // their slice of the service completes: sub j finishes at serve-start +
  // marks[j] and its replica forwards launch right then — the same
  // pipelining the per-leg path gets from independent legs, without paying
  // per-leg envelopes. Chained serve() calls (same arrival, per-op deltas)
  // leave the node's FCFS busy-until identical to one serve(total).
  std::vector<SimMicros> prim_sub_done(run_idx.size(), prim_arrival);
  SimMicros prim_done = prim_arrival;
  {
    SimMicros prev = 0;
    for (std::size_t j = 0; j < run_idx.size(); ++j) {
      prim_done = primary.node().serve(prim_arrival, marks[j] - prev);
      prim_sub_done[j] = prim_done;
      prev = marks[j];
    }
  }
  SimMicros done = prim_done + net.transfer_us(reply_meta) + prim.extra_latency_us;

  // Forward to the remaining replicas: one envelope per distinct node,
  // pipelined off the primary's apply, with the per-key freshness gate.
  Errc miss_err = Errc::unavailable;
  Status fail = Status::success();
  for (auto& [rid, keys] : node_keys) {
    if (rid == primary_id) continue;
    auto replicated_here = [&](std::size_t i) {
      return std::find(st[i].replicas.begin(), st[i].replicas.end(), rid) !=
             st[i].replicas.end();
    };
    if (store_->is_down(rid)) {
      for (std::size_t i : run_idx) {
        if (replicated_here(i)) st[i].missed.push_back(rid);
      }
      continue;
    }
    BlobServer& rep = store_->server(rid);
    std::vector<std::size_t> fwd;  // positions into run_idx
    for (std::size_t j = 0; j < run_idx.size(); ++j) {
      const std::size_t i = run_idx[j];
      if (!replicated_here(i)) continue;
      if (!rep.version_matches(subs[i]->ekey, st[i].pre_version)) {
        st[i].missed.push_back(rid);  // behind: applying would interleave
      } else {
        fwd.push_back(j);
      }
    }
    if (fwd.empty()) continue;
    if (store_->config().write_quorum > 0 &&
        !breaker_allows(store_->server(rid).node().id(),
                        prim_sub_done[fwd.front()])) {
      // Open breaker on a quorum-mode forward: hint instead of burning the
      // retry ladder (same gate as the per-leg path in mutation_leg).
      for (std::size_t j : fwd) st[run_idx[j]].missed.push_back(rid);
      counters_.breaker_fast_hints.inc();
      client_metrics().breaker_fast_hints.inc();
      continue;
    }
    // One forward envelope per node (one fault decision), opened when the
    // FIRST forwarded sub streams out of the primary.
    LegDelivery d = try_deliver(rep, prim_sub_done[fwd.front()], req,
                                static_cast<std::uint32_t>(fwd.size()));
    if (!d.ok) {
      for (std::size_t j : fwd) st[run_idx[j]].missed.push_back(rid);
      miss_err = d.err;
      done = std::max(done, d.failed_at);
      continue;
    }
    std::vector<BlobServer::OpRef> frefs;
    frefs.reserve(fwd.size());
    for (std::size_t j : fwd) frefs.push_back(subs[run_idx[j]]->op);
    SimMicros svc = 0;
    std::vector<SimMicros> fmarks(fwd.size(), 0);
    Status rs = rep.apply_ops(frefs.data(), frefs.size(), &svc, fmarks.data());
    if (!rs.ok()) {
      fail = {Errc::io_error, "replica divergence: " + rs.message()};
      break;
    }
    for (std::size_t j : fwd) {
      const std::size_t i = run_idx[j];
      if (st[i].continue_versions && !st[i].ends_removed) {
        (void)rep.force_version(subs[i]->ekey, st[i].new_version);
      }
      ++st[i].acks;
    }
    // Pipelined forwarding, mirroring the per-leg path: sub j's payload
    // leaves the primary at prim_sub_done[j] (not at the whole group's
    // prim_done), so later subs' primary serves overlap earlier subs'
    // replica serves. The replica applies each sub FCFS as it lands.
    SimMicros rep_done = 0;
    SimMicros prev = 0;
    for (std::size_t k = 0; k < fwd.size(); ++k) {
      const std::size_t j = fwd[k];
      const BatchSub& sub = *subs[run_idx[j]];
      std::uint64_t sub_req =
          batch_header_bytes(sub.ekey, to_wire_kind(sub.op.kind), 1) +
          sub.op.data.size();
      if (k == 0) sub_req += kEnvelope;
      const SimMicros launch = std::max(d.attempt_start, prim_sub_done[j]);
      const SimMicros arr =
          launch + net.transfer_us(sub_req) + d.extra_latency_us;
      rep_done = rep.node().serve(arr, fmarks[k] - prev);
      prev = fmarks[k];
    }
    done = std::max(done, rep_done + net.transfer_us(reply_meta) +
                              d.extra_latency_us);
  }
  if (!fail.ok()) {
    *completion = done;
    return fail;
  }

  // Dual-write targets per sub (open migration window): mirror each applied
  // sub onto its pending new owners, version-gated, never counted as acks.
  // See mutation_leg for the write-vs-copy race argument.
  for (std::size_t i : run_idx) {
    for (std::uint32_t tid : st[i].pending) {
      if (store_->is_down(tid)) {
        if (primary.add_hint(tid, subs[i]->ekey)) counters_.hints_written.inc();
        continue;
      }
      BlobServer& tgt = store_->server(tid);
      if (!tgt.version_matches(subs[i]->ekey, st[i].pre_version)) continue;
      const std::uint64_t dreq = req_bytes(subs[i]->ekey, subs[i]->op.data.size());
      LegDelivery dd = try_deliver(tgt, prim_done, dreq);
      if (!dd.ok) {
        if (primary.add_hint(tid, subs[i]->ekey)) counters_.hints_written.inc();
        done = std::max(done, dd.failed_at);
        continue;
      }
      BlobServer::OpRef ref = subs[i]->op;
      SimMicros dsvc = 0;
      SimMicros dmark = 0;
      if (!tgt.apply_ops(&ref, 1, &dsvc, &dmark).ok()) continue;
      if (st[i].continue_versions && !st[i].ends_removed) {
        (void)tgt.force_version(subs[i]->ekey, st[i].new_version);
      }
      counters_.dual_writes.inc();
      client_metrics().dual_writes.inc();
      if (st[i].windows >= 2) {
        counters_.chain_dual_writes.inc();
        client_metrics().chain_dual_writes.inc();
      }
      const SimMicros arr = prim_done + net.transfer_us(dreq) + dd.extra_latency_us;
      done = std::max(done, tgt.node().serve(arr, dsvc) + net.transfer_us(kEnvelope) +
                                dd.extra_latency_us);
    }
  }
  *completion = done;

  // Hints + per-key quorum evaluation, exactly as the per-leg path.
  const std::uint32_t W = store_->config().write_quorum;
  for (std::size_t i : run_idx) {
    if (W > 0) {
      for (std::uint32_t rid : st[i].missed) {
        if (primary.add_hint(rid, subs[i]->ekey)) counters_.hints_written.inc();
      }
    }
    bool quorum_met;
    if (W == 0 || st[i].ends_removed) {
      quorum_met = true;
      for (std::uint32_t rid : st[i].missed) {
        if (!store_->is_down(rid)) quorum_met = false;
      }
    } else {
      quorum_met = st[i].acks >=
                   std::min<std::uint32_t>(W, static_cast<std::uint32_t>(
                                                  st[i].replicas.size()));
    }
    if (!quorum_met) return {miss_err, "insufficient acks: " + subs[i]->ekey};
    if (!st[i].missed.empty()) counters_.quorum_degraded_writes.inc();
  }
  return Status::success();
}

Status BlobClient::batched_mutation_wave(std::vector<BatchSub>& subs, SimMicros start,
                                         SimMicros* done) {
  *done = start;
  if (subs.empty()) return Status::success();
  for (auto& s : subs) s.op.key = &s.ekey;  // pointers are stable only now

  for (int pass = 0;; ++pass) {
  const std::uint64_t epoch0 = store_->ring_epoch();
  // Group by acting primary; groups are formed and ordered by chunk index —
  // deterministic batch formation, independent of execution timing.
  std::map<std::uint32_t, std::vector<BatchSub*>> by_primary;
  for (auto& s : subs) {
    const auto replicas = store_->replicas_of(s.ekey);
    if (replicas.empty()) return {Errc::no_space, "no storage nodes in ring"};
    const auto acting = store_->first_up(replicas);
    if (!acting) return {Errc::unavailable, "all replicas down: " + s.ekey};
    by_primary[*acting].push_back(&s);
  }
  struct Group {
    std::uint32_t primary = 0;
    std::vector<BatchSub*> subs;
    Status status = Status::success();
    SimMicros completion = 0;
  };
  std::vector<Group> groups;
  groups.reserve(by_primary.size());
  for (auto& [p, v] : by_primary) groups.push_back({p, std::move(v)});
  std::sort(groups.begin(), groups.end(), [](const Group& a, const Group& b) {
    return a.subs.front()->chunk < b.subs.front()->chunk;
  });

  // Wall-clock fan-out across per-primary groups. Simulated time is
  // max-of-legs either way (every group forks from `start`), so parallel
  // and sequential execution yield identical simulated traces; with a fault
  // injector installed, the sequential order keeps verdict draws
  // deterministic.
  const bool parallel = groups.size() > 1 &&
                        store_->transport().fault_injector() == nullptr &&
                        std::thread::hardware_concurrency() > 1;
  if (parallel) {
    pool().parallel_for(groups.size(), [&](std::size_t gi) {
      Group& g = groups[gi];
      g.status = mutation_group_leg(g.subs, g.primary, start, &g.completion);
    });
  } else {
    for (Group& g : groups) {
      g.status = mutation_group_leg(g.subs, g.primary, start, &g.completion);
    }
  }
  Status st = Status::success();
  for (Group& g : groups) {
    *done = std::max(*done, g.completion);
    if (st.ok() && !g.status.ok()) st = g.status;
  }
  // A group that saw its placement move under it (membership cutover racing
  // the wave) asks for a re-group: re-place every sub on the new ring and
  // re-run. Sub ops are content-idempotent, so re-applying an already-
  // applied sub only advances its version.
  if (st.code() == Errc::busy && store_->ring_epoch() != epoch0 && pass < 1) {
    counters_.stale_epoch_retries.inc();
    client_metrics().stale_retries.inc();
    continue;
  }
  return st;
  }
}

Status BlobClient::read_group_leg(std::vector<ReadSub*>& subs,
                                  const std::vector<std::uint32_t>& candidates,
                                  SimMicros start, SimMicros* completion) {
  *completion = start;
  const auto& net = store_->cluster().net();
  const StoreConfig& cfg = store_->config();
  // Quorum candidates actually voted: the group's candidate tuple is sized
  // for max(R, hedge target), so clamp to R for the vote fan-out.
  const std::uint32_t R = std::min<std::uint32_t>(
      cfg.read_quorum(), static_cast<std::uint32_t>(candidates.size()));

  // Request descriptor bytes: one header per coalesced run (stat subs never
  // coalesce). The same descriptor layout goes to every quorum candidate;
  // payload-vs-digest reply mode rides in the envelope flags byte, which is
  // part of the kEnvelope overhead.
  auto envelope_bytes = [](const std::vector<ReadSub*>& list,
                           std::uint32_t* coalesced) {
    std::uint64_t req = kEnvelope;
    *coalesced = 0;
    std::size_t r = 0;
    while (r < list.size()) {
      std::size_t e = r + 1;
      while (e < list.size() && !list[r]->stat_only && !list[e]->stat_only &&
             list[e]->chunk == list[e - 1]->chunk + 1) {
        ++e;
      }
      const auto span = static_cast<std::uint32_t>(e - r);
      req += batch_header_bytes(list[r]->ekey,
                                list[r]->stat_only ? rpc::BatchOpKind::stat
                                                   : rpc::BatchOpKind::read,
                                span);
      if (span >= 2) ++(*coalesced);
      r = e;
    }
    return req;
  };
  std::uint32_t coalesced = 0;
  const std::uint64_t req = envelope_bytes(subs, &coalesced);

  // One batched envelope against one candidate: deliver (one whole-envelope
  // re-send after a fresh backoff before giving up — the per-leg fallback
  // pays one round trip per sub, so a single extra envelope attempt is the
  // cheaper first response to a transient fault), serve the subs with
  // per-sub completion marks, charge the reply. Digest-mode envelopes are
  // answered from the server's extent index — a vote costs a stat, not a
  // read — and ship (version, digest) instead of payload.
  struct CandRun {
    bool delivered = false;
    Errc err = Errc::unavailable;
    SimMicros failed_at = 0;
    SimMicros attempt_start = 0;
    SimMicros comp = 0;
    std::vector<BlobServer::ReadSubResult> results;
    std::vector<SimMicros> sub_done;  ///< per-sub availability at the client
  };
  auto run_envelope = [&](std::uint32_t rid, const std::vector<ReadSub*>& list,
                          std::uint64_t reqb, std::uint32_t ncoal,
                          bool digest_mode, bool want_digest, SimMicros at) {
    CandRun run;
    BlobServer& srv = store_->server(rid);
    counters_.batch_envelopes.inc();
    client_metrics().batch_envelopes.inc();
    client_metrics().batch_size.add(list.size());
    for (std::uint32_t c = 0; c < ncoal; ++c) {
      counters_.coalesced_ops.inc();
      client_metrics().batch_coalesced.inc();
    }
    LegDelivery d =
        try_deliver(srv, at, reqb, static_cast<std::uint32_t>(list.size()));
    if (!d.ok) {
      counters_.batch_retries.inc();
      client_metrics().batch_retries.inc();
      SimMicros prev = cfg.retry.backoff_base_us;
      d = try_deliver(srv, d.failed_at + next_backoff(&prev), reqb,
                      static_cast<std::uint32_t>(list.size()));
    }
    if (!d.ok) {
      run.err = d.err;
      run.failed_at = d.failed_at;
      return run;
    }
    run.delivered = true;
    run.attempt_start = d.attempt_start;
    std::vector<BlobServer::ReadSubOp> ops;
    ops.reserve(list.size());
    for (ReadSub* sub : list) {
      BlobServer::ReadSubOp op;
      op.key = &sub->ekey;
      op.off = sub->off;
      op.stat_only = sub->stat_only;
      if (digest_mode && !sub->stat_only) {
        op.digest_only = true;
        op.len = sub->dst.size();
      } else {
        op.dst = sub->dst;
        op.want_digest = want_digest && !sub->stat_only;
      }
      ops.push_back(op);
    }
    run.results.resize(list.size());
    std::vector<SimMicros> marks(list.size(), 0);
    SimMicros svc = 0;
    srv.read_batch(ops.data(), ops.size(), run.results.data(), &svc, marks.data());

    // Reply: per-sub statuses, plus the largest single chunk's payload on a
    // payload envelope (chunk payloads stream back in parallel, like the
    // per-leg replies they replace — a vectored run gathers at the NIC, it
    // does not serialize). Digest replies ship marks only.
    std::uint64_t reply =
        kEnvelope + list.size() * batch_substatus_bytes();
    if (!digest_mode) {
      std::uint64_t max_chunk = 0;
      for (const auto& res : run.results) {
        max_chunk = std::max(max_chunk, res.data_len);
      }
      reply += max_chunk;
    }
    // Chained serve: per-sub deltas leave the node's FCFS busy-until
    // identical to one serve(total); sub j streams out at its own mark
    // (same pipelining argument as mutation_group_leg).
    const SimMicros arr = d.attempt_start + net.transfer_us(reqb) + d.extra_latency_us;
    run.sub_done.resize(list.size(), arr);
    SimMicros node_done = arr;
    SimMicros prev_mark = 0;
    for (std::size_t j = 0; j < list.size(); ++j) {
      node_done = srv.node().serve(arr, marks[j] - prev_mark);
      prev_mark = marks[j];
      run.sub_done[j] = node_done + net.transfer_us(reply) + d.extra_latency_us;
    }
    run.comp = node_done + net.transfer_us(reply) + d.extra_latency_us;
    return run;
  };

  // Whole-group degradation to per-leg legs (replica failover and quorum
  // arbitration live inside read_leg/stat_leg). Only reachable with a fault
  // injector installed — always sequential. Destinations are re-zeroed
  // because an earlier candidate envelope may have partially gathered.
  auto per_leg_fallback = [&](SimMicros t) -> Status {
    SimMicros done = t;
    for (ReadSub* sub : subs) {
      SimMicros comp = t;
      if (sub->stat_only) {
        auto s = stat_leg(sub->ekey, t, &comp);
        done = std::max(done, comp);
        if (s.ok()) {
          sub->err = Errc::ok;
          sub->size = s.value().size;
          sub->version = s.value().version;
        } else if (s.error().code == Errc::not_found) {
          sub->err = Errc::not_found;
        } else {
          *completion = done;
          return s.error();
        }
        continue;
      }
      std::fill(sub->dst.begin(), sub->dst.end(), std::byte{0});
      sub->latency_us = 0;  // read_leg feeds read_latency_ itself
      auto r = read_leg(sub->ekey, sub->off, sub->dst.size(), t, &comp);
      done = std::max(done, comp);
      if (r.ok()) {
        const Bytes& part = r.value().data;
        std::copy(part.begin(), part.end(), sub->dst.begin());
        sub->err = Errc::ok;
        sub->data_len = part.size();
        sub->covered = r.value().covered;
      } else if (r.error().code == Errc::not_found) {
        sub->err = Errc::not_found;  // whole chunk is a hole
      } else {
        *completion = done;
        return r.error();
      }
    }
    *completion = done;
    return Status::success();
  };

  // Fan one envelope to each of the R quorum candidates: full payload from
  // candidates[0], digest-only version votes from the rest, all forked from
  // the same instant — the single-envelope-per-primary path survives R > 1
  // with ~1x payload bytes on the wire instead of Rx.
  std::vector<CandRun> cand(R);
  for (std::uint32_t j = 0; j < R; ++j) {
    cand[j] = run_envelope(candidates[j], subs, req, coalesced,
                           /*digest_mode=*/j > 0, /*want_digest=*/R > 1, start);
    if (!cand[j].delivered) return per_leg_fallback(cand[j].failed_at);
    if (j > 0) {
      counters_.quorum_probes.inc();
      client_metrics().quorum_probes.inc();
      std::uint64_t avoided = 0;
      for (const auto& res : cand[j].results) {
        avoided = std::max(avoided, res.data_len);
      }
      counters_.quorum_digest_savings_bytes.add(avoided);
      client_metrics().quorum_digest_savings.add(avoided);
    }
  }

  // Hedging composes on the batched path: a payload envelope running past
  // the hedge delay arms a duplicate payload-sized request to candidates[1]
  // at attempt_start + delay, and the client takes the earlier completion
  // when the hedged replica's per-sub versions prove its payload
  // byte-identical (at R == 1 every live replica holds every acked write,
  // so matching versions are the common case). The hedge serve runs in
  // digest mode so the caller's buffer keeps a single writer, but with
  // probe_payload set it is charged like the real payload read it stands in
  // for, and the reply is charged at full payload size — it is the payload
  // that would have won.
  {
    BlobServer& prim_srv = store_->server(candidates[0]);
    SimMicros delay = hedge_delay();
    if (delay > 1 && is_suspect(prim_srv.node().id())) delay /= 2;
    if (delay > 0 && candidates.size() > 1 &&
        cand[0].comp - cand[0].attempt_start > delay) {
      counters_.hedges.inc();
      BlobServer& alt = store_->server(candidates[1]);
      const SimMicros h_start = cand[0].attempt_start + delay;
      AttemptPlan hp =
          plan_attempt(alt, h_start, req, static_cast<std::uint32_t>(subs.size()));
      if (hp.delivered) {
        std::vector<BlobServer::ReadSubOp> hops;
        hops.reserve(subs.size());
        for (ReadSub* sub : subs) {
          BlobServer::ReadSubOp op;
          op.key = &sub->ekey;
          op.off = sub->off;
          op.stat_only = sub->stat_only;
          if (!sub->stat_only) {
            op.digest_only = true;
            op.probe_payload = true;
            op.len = sub->dst.size();
          }
          hops.push_back(op);
        }
        std::vector<BlobServer::ReadSubResult> hres(subs.size());
        std::vector<SimMicros> hmarks(subs.size(), 0);
        SimMicros hsvc = 0;
        alt.read_batch(hops.data(), hops.size(), hres.data(), &hsvc, hmarks.data());
        bool same = true;
        for (std::size_t k = 0; k < subs.size(); ++k) {
          if (subs[k]->stat_only) continue;
          if (hres[k].err != cand[0].results[k].err ||
              hres[k].version != cand[0].results[k].version) {
            same = false;
          }
        }
        if (same) {
          std::uint64_t reply = kEnvelope + subs.size() * batch_substatus_bytes();
          std::uint64_t max_chunk = 0;
          for (const auto& res : hres) max_chunk = std::max(max_chunk, res.data_len);
          reply += max_chunk;
          const SimMicros harr = h_start + net.transfer_us(req) + hp.extra_latency_us;
          SimMicros hdone = harr;
          SimMicros prev_mark = 0;
          for (std::size_t k = 0; k < subs.size(); ++k) {
            hdone = alt.node().serve(harr, hmarks[k] - prev_mark);
            prev_mark = hmarks[k];
            const SimMicros avail =
                hdone + net.transfer_us(reply) + hp.extra_latency_us;
            cand[0].sub_done[k] = std::min(cand[0].sub_done[k], avail);
          }
          cand[0].comp = std::min(
              cand[0].comp, hdone + net.transfer_us(reply) + hp.extra_latency_us);
        }
      }
    }
  }

  // Default every sub to the payload candidate's result (the payload is
  // already gathered in place).
  for (std::size_t k = 0; k < subs.size(); ++k) {
    ReadSub* sub = subs[k];
    const auto& res = cand[0].results[k];
    sub->err = res.err;
    sub->data_len = res.data_len;
    sub->covered = res.covered;
    sub->size = res.size;
    sub->version = res.version;
    sub->latency_us = cand[0].sub_done[k] > cand[0].attempt_start
                          ? cand[0].sub_done[k] - cand[0].attempt_start
                          : 0;
  }
  SimMicros done = start;
  for (const CandRun& c : cand) done = std::max(done, c.comp);

  if (R > 1) {
    // Per-sub version vote across the R replies. The payload wins at the
    // max version, or below it with a byte-identical span digest (a version
    // bump that did not change this span); otherwise the sub is stale and
    // is re-fetched — one payload envelope per winning replica, forked at
    // the vote barrier, so the winning payload still crosses the wire once.
    std::map<std::uint32_t, std::vector<ReadSub*>> refetch;  // cand idx -> subs
    for (std::size_t k = 0; k < subs.size(); ++k) {
      ReadSub* sub = subs[k];
      // A sub's reply is arbitrated once every vote for it has landed.
      SimMicros avail = 0;
      for (std::uint32_t j = 0; j < R; ++j) {
        avail = std::max(avail, cand[j].sub_done[k]);
      }
      sub->latency_us =
          avail > cand[0].attempt_start ? avail - cand[0].attempt_start : 0;
      Version maxv = 0;
      std::uint32_t win = 0;
      bool any = false;
      for (std::uint32_t j = 0; j < R; ++j) {
        const auto& r = cand[j].results[k];
        if (r.err != Errc::ok) continue;
        if (!any || r.version > maxv) {
          any = true;
          maxv = r.version;
          win = j;
        }
      }
      if (sub->stat_only) {
        // Mirror quorum_probe: the max-version responder's stat wins;
        // absent only when every responder reports absent.
        if (!any) {
          sub->err = Errc::not_found;
          sub->size = 0;
          sub->version = 0;
        } else {
          sub->err = Errc::ok;
          sub->size = cand[win].results[k].size;
          sub->version = maxv;
        }
        continue;
      }
      if (!any) continue;  // absent everywhere: the chunk is a hole
      const auto& r0 = cand[0].results[k];
      if (r0.err == Errc::ok && r0.version >= maxv) {
        counters_.quorum_winners.inc();
        client_metrics().quorum_winners.inc();
        continue;
      }
      if (r0.err == Errc::ok && r0.digest != 0 &&
          r0.digest == cand[win].results[k].digest) {
        sub->version = maxv;
        counters_.quorum_winners.inc();
        client_metrics().quorum_winners.inc();
        continue;
      }
      refetch[win].push_back(sub);
    }

    for (auto& [win, list] : refetch) {
      // The stale payload may cover spans the fresh version leaves as
      // holes; re-zero before gathering so read_into's pre-zeroed-dst
      // contract holds.
      for (ReadSub* sub : list) {
        std::fill(sub->dst.begin(), sub->dst.end(), std::byte{0});
      }
      std::uint32_t rcoal = 0;
      const std::uint64_t rreq = envelope_bytes(list, &rcoal);
      CandRun rr = run_envelope(candidates[win], list, rreq, rcoal,
                                /*digest_mode=*/false, /*want_digest=*/false,
                                done);
      if (!rr.delivered) {
        // Injector-only: degrade the stale subs to per-leg reads.
        SimMicros t = rr.failed_at;
        for (ReadSub* sub : list) {
          std::fill(sub->dst.begin(), sub->dst.end(), std::byte{0});
          SimMicros comp = t;
          auto rl = read_leg(sub->ekey, sub->off, sub->dst.size(), t, &comp);
          done = std::max(done, comp);
          counters_.quorum_refetches.inc();
          client_metrics().quorum_refetches.inc();
          sub->latency_us = 0;  // read_leg feeds read_latency_ itself
          if (rl.ok()) {
            const Bytes& part = rl.value().data;
            std::copy(part.begin(), part.end(), sub->dst.begin());
            sub->err = Errc::ok;
            sub->data_len = part.size();
            sub->covered = rl.value().covered;
          } else if (rl.error().code == Errc::not_found) {
            sub->err = Errc::not_found;
          } else {
            *completion = done;
            return rl.error();
          }
        }
        continue;
      }
      for (std::size_t i = 0; i < list.size(); ++i) {
        ReadSub* sub = list[i];
        const auto& r = rr.results[i];
        sub->err = r.err;
        sub->data_len = r.data_len;
        sub->covered = r.covered;
        sub->version = r.version;
        sub->latency_us = rr.sub_done[i] > cand[0].attempt_start
                              ? rr.sub_done[i] - cand[0].attempt_start
                              : 0;
        counters_.quorum_refetches.inc();
        client_metrics().quorum_refetches.inc();
      }
      done = std::max(done, rr.comp);
    }
  }

  *completion = done;
  return Status::success();
}

Result<Bytes> BlobClient::batched_striped_read(std::string_view key,
                                               std::uint64_t offset,
                                               std::uint64_t len) {
  const std::uint64_t cb = store_->config().chunk_bytes;
  const std::string base{key};
  const bool use_cache = store_->config().client_meta_cache;

  MetaEntry entry;
  bool have = false;
  if (use_cache) {
    auto it = meta_cache_.find(base);
    if (it != meta_cache_.end()) {
      entry = it->second;
      have = true;
      counters_.metacache_hits.inc();
      client_metrics().metacache_hits.inc();
    } else {
      counters_.metacache_misses.inc();
      client_metrics().metacache_misses.inc();
    }
  }
  if (!have) {
    // One charged stat round primes the cache — and is the complete answer
    // for an absent blob (a single round trip; the per-leg path used to pay
    // a second, full-length probe leg on top).
    const SimMicros s0 = agent_ ? agent_->now() : 0;
    SimMicros comp = s0;
    auto s = stat_leg(base, s0, &comp);
    if (agent_) agent_->advance_to(comp);
    if (!s.ok()) return s.error();
    entry = {s.value().size, s.value().version};
    cache_put(base, entry);
  }

  for (int attempt = 0;; ++attempt) {
    const std::uint64_t logical = entry.logical;
    const std::uint64_t rlen =
        offset < logical ? std::min(len, logical - offset) : 0;
    if (rlen == 0) {
      // At/after EOF per the cached size: verify with one charged stat round
      // (there is no data envelope to piggyback on) instead of shipping a
      // full-length probe leg.
      const SimMicros s0 = agent_ ? agent_->now() : 0;
      SimMicros comp = s0;
      auto s = stat_leg(base, s0, &comp);
      if (agent_) agent_->advance_to(comp);
      if (!s.ok()) {
        cache_erase(base);
        return s.error();
      }
      cache_put(base, {s.value().size, s.value().version});
      if (attempt < 2 && offset < s.value().size) {
        entry = {s.value().size, s.value().version};
        continue;  // cached size was stale: there is data after all
      }
      client_metrics().read_bytes.add(0);
      return Bytes{};
    }

    const SimMicros start = agent_ ? agent_->now() : 0;
    const std::uint64_t epoch0 = store_->ring_epoch();
    Bytes out(rlen, std::byte{0});  // holes and absent chunks read as zero
    const std::uint64_t end = offset + rlen;
    std::vector<ReadSub> subs;
    subs.reserve(end / cb - offset / cb + 2);
    for (std::uint64_t c = offset / cb; c * cb < end; ++c) {
      const std::uint64_t lo = std::max(offset, c * cb);
      const std::uint64_t hi = std::min(end, (c + 1) * cb);
      ReadSub sub;
      sub.ekey = chunk_engine_key(key, c);
      sub.chunk = c;
      sub.off = lo - c * cb;
      sub.dst = MutableByteView{out}.subspan(lo - offset, hi - lo);
      subs.push_back(std::move(sub));
    }
    {
      // Cache-verification stat of the base key, piggybacked on the group
      // whose primary holds chunk 0 (or a mini-group of its own otherwise).
      ReadSub sub;
      sub.ekey = base;
      sub.chunk = ~0ULL;  // sentinel: never coalesces, stays last in its group
      sub.stat_only = true;
      subs.push_back(std::move(sub));
    }

    // Group subs by their ordered candidate tuple: the first K live
    // replicas in replica order, K sized for the quorum fan-out plus the
    // hedge target. At R == 1 without hedging this degenerates to grouping
    // by acting primary — exactly the pre-quorum batching. Subs sharing a
    // tuple share all K envelopes, so a group costs K queueing trips total
    // regardless of its sub count.
    const std::uint32_t R = store_->config().read_quorum();
    const std::uint32_t K =
        std::max<std::uint32_t>(R, store_->config().hedge.enabled ? 2 : 1);
    std::map<std::vector<std::uint32_t>, std::vector<ReadSub*>> by_cands;
    for (auto& s : subs) {
      const auto replicas = store_->replicas_of(s.ekey);
      if (replicas.empty()) return {Errc::no_space, "no storage nodes in ring"};
      std::vector<std::uint32_t> cands;
      for (std::uint32_t rid : replicas) {
        if (store_->is_down(rid)) continue;
        cands.push_back(rid);
        if (cands.size() >= K) break;
      }
      if (cands.empty()) return {Errc::unavailable, "all replicas down: " + s.ekey};
      by_cands[std::move(cands)].push_back(&s);
    }
    struct Group {
      std::vector<std::uint32_t> candidates;
      std::vector<ReadSub*> subs;
      Status status = Status::success();
      SimMicros completion = 0;
    };
    std::vector<Group> groups;
    groups.reserve(by_cands.size());
    for (auto& [c, v] : by_cands) groups.push_back({c, std::move(v)});
    std::sort(groups.begin(), groups.end(), [](const Group& a, const Group& b) {
      return a.subs.front()->chunk < b.subs.front()->chunk;
    });

    const bool parallel = groups.size() > 1 &&
                          store_->transport().fault_injector() == nullptr &&
                          std::thread::hardware_concurrency() > 1;
    if (parallel) {
      pool().parallel_for(groups.size(), [&](std::size_t gi) {
        Group& g = groups[gi];
        g.status = read_group_leg(g.subs, g.candidates, start, &g.completion);
      });
    } else {
      for (Group& g : groups) {
        g.status = read_group_leg(g.subs, g.candidates, start, &g.completion);
      }
    }
    SimMicros done = start;
    Status fail = Status::success();
    for (Group& g : groups) {
      done = std::max(done, g.completion);
      if (fail.ok() && !g.status.ok()) fail = g.status;
    }
    if (agent_) agent_->advance_to(done);
    // Batched completion marks feed the hedging histogram AFTER the group
    // barrier, on the caller's thread (the histogram is not thread-safe and
    // groups may fan out on the pool). Subs answered by an internal
    // read_leg fallback carry latency 0 — read_leg recorded its own sample.
    for (const auto& s : subs) {
      if (!s.stat_only && s.latency_us > 0) {
        read_latency_.add(static_cast<std::uint64_t>(s.latency_us));
      }
    }
    if (!fail.ok()) return fail.error();

    // Membership cutover mid-wave: chunks the wave read from old owners may
    // already be dropped (read as holes). Cheap insurance: re-run the wave
    // on the post-cutover placement.
    if (store_->ring_epoch() != epoch0 && attempt < 2) {
      counters_.stale_epoch_retries.inc();
      client_metrics().stale_retries.inc();
      continue;
    }

    // Cache verification from the piggybacked stat.
    const ReadSub* vstat = nullptr;
    for (const auto& s : subs) {
      if (s.stat_only) vstat = &s;
    }
    if (vstat->err == Errc::not_found) {
      cache_erase(base);
      return {Errc::not_found, base};
    }
    if (vstat->size != logical && attempt < 2) {
      // Size drifted (concurrent truncate/recreate): relayout and re-read.
      counters_.metacache_invalidations.inc();
      client_metrics().metacache_invalidations.inc();
      entry = {vstat->size, vstat->version};
      cache_put(base, entry);
      continue;
    }
    if (vstat->version != entry.v0 || vstat->size != logical) {
      // Version-only drift (or a still-moving size on the final attempt):
      // the chunk data just read is current as of its serve; refresh the
      // entry and accept.
      cache_put(base, {vstat->size, vstat->version});
    }

    std::uint64_t covered = 0;
    for (const auto& s : subs) {
      if (s.stat_only) continue;
      if (s.err != Errc::ok && s.err != Errc::not_found) return {s.err, s.ekey};
      covered += s.covered;
    }
    counters_.bytes_read.add(covered);
    counters_.read_hole_bytes.add(rlen - covered);
    client_metrics().read_bytes.add(rlen);
    client_metrics().read_hole_bytes.add(rlen - covered);
    return out;
  }
}

BlobClient::ProbeRound BlobClient::quorum_probe(const std::string& ekey,
                                                const std::vector<std::uint32_t>& lives,
                                                std::uint32_t quorum, SimMicros start) {
  const auto& net = store_->cluster().net();
  ProbeRound out;
  struct Probe {
    std::uint32_t rid;
    Version v;
    SimMicros done;
    BlobStat stat;
    bool found;
  };
  std::vector<Probe> got;
  SimMicros slowest = start;
  Errc last_err = Errc::unavailable;
  for (std::uint32_t rid : lives) {
    if (got.size() >= quorum) break;
    BlobServer& srv = store_->server(rid);
    LegDelivery d = try_deliver(srv, start, kProbeReq);
    if (!d.ok) {
      slowest = std::max(slowest, d.failed_at);
      last_err = d.err;
      continue;
    }
    SimMicros svc = 0;
    auto s = srv.stat(ekey, &svc);
    const SimMicros arr = d.attempt_start + net.transfer_us(kProbeReq) + d.extra_latency_us;
    const SimMicros pdone =
        srv.node().serve(arr, svc) + net.transfer_us(kProbeResp) + d.extra_latency_us;
    got.push_back({rid, s.ok() ? s.value().version : 0, pdone,
                   s.ok() ? s.value() : BlobStat{ekey, 0, 0}, s.ok()});
  }
  if (got.size() < quorum) {
    out.done = slowest;
    out.err = last_err;
    return out;
  }
  out.ok = true;
  out.done = start;
  Version maxv = 0;
  bool any_found = false;
  for (const Probe& p : got) {
    out.done = std::max(out.done, p.done);
    any_found = any_found || p.found;
    maxv = std::max(maxv, p.v);
  }
  out.found = any_found;
  for (const Probe& p : got) {
    if (p.found && p.v == maxv) {
      if (out.fresh.empty()) out.stat = p.stat;
      out.fresh.push_back(p.rid);
    }
  }
  return out;
}

SimMicros BlobClient::hedge_delay() const {
  const HedgePolicy& h = store_->config().hedge;
  if (!h.enabled) return 0;
  if (read_latency_.count() >= h.min_samples) {
    return static_cast<SimMicros>(read_latency_.percentile(h.percentile));
  }
  return h.fixed_delay_us;
}

Result<ReadOutcome> BlobClient::read_leg(const std::string& ekey, std::uint64_t off,
                                         std::uint64_t len, SimMicros start,
                                         SimMicros* completion) {
  *completion = start;
  const auto& net = store_->cluster().net();
  const std::uint64_t req = req_bytes(ekey);
  const std::uint32_t R = store_->config().read_quorum();

  // Stale-epoch retry loop: a delivered reply stamped with a ring epoch
  // newer than the one this leg's placement was computed at means
  // membership moved under the cached entry — the data may have migrated
  // off the contacted replica entirely. Flush the entry, refetch the
  // placement, and re-run the leg from the stale round's completion time
  // (the wasted round trip is paid, not hidden).
  for (int pass = 0;; ++pass) {
    const Placement p =
        pass == 0 ? locate(ekey) : store_->placement_of(ekey);
    if (p.replicas.empty()) return {Errc::no_space, "no storage nodes in ring"};
    std::vector<std::uint32_t> lives;
    for (std::uint32_t rid : p.replicas) {
      if (!store_->is_down(rid)) lives.push_back(rid);
    }
    if (lives.empty()) return {Errc::unavailable, "all replicas down: " + ekey};

    // Candidate servers to read from, in preference order. With R == 1
    // every live replica is equally fresh (writes ack on all live
    // replicas); with R > 1 a version-probe round first finds the freshest
    // responders. Suspect replicas (open/half-open breaker, or a latency
    // EWMA far above the fleet — gray failure) are demoted to the back:
    // still reachable for availability, tried last.
    std::vector<std::uint32_t> candidates = lives;
    SimMicros t = start;
    if (R > 1) {
      ProbeRound probe = quorum_probe(
          ekey, lives, std::min<std::uint32_t>(R, lives.size()), start);
      if (!probe.ok) {
        *completion = probe.done;
        return {probe.err, "read quorum unreachable: " + ekey};
      }
      t = probe.done;  // barrier: arbitration needs all R probe replies
      if (!probe.found) {
        *completion = t;
        return {Errc::not_found, ekey};
      }
      candidates = probe.fresh;
    }
    demote_suspects(candidates);

    bool stale = false;
    Error last{Errc::unavailable, "unreachable: " + ekey};
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (i > 0) counters_.failovers.inc();
      BlobServer& srv = store_->server(candidates[i]);
      LegDelivery d = try_deliver(srv, t, req);
      if (!d.ok) {
        t = d.failed_at;
        last = {d.err, "unreachable: " + ekey};
        continue;
      }
      SimMicros svc = 0;
      auto r = srv.read(ekey, off, len, &svc);
      const std::uint64_t resp = kEnvelope + (r.ok() ? r.value().data.size() : 0);
      const SimMicros arr = d.attempt_start + net.transfer_us(req) + d.extra_latency_us;
      SimMicros comp =
          srv.node().serve(arr, svc) + net.transfer_us(resp) + d.extra_latency_us;

      // Stale-epoch stamp check, before the reply is trusted: the replica
      // answered, but from a membership the client no longer shares.
      if (srv.ring_epoch() > p.epoch && pass < 2) {
        place_flush(ekey);
        counters_.epoch_refreshes.inc();
        client_metrics().epoch_refreshes.inc();
        counters_.stale_epoch_retries.inc();
        client_metrics().stale_retries.inc();
        start = comp;
        stale = true;
        break;
      }

      // Hedging: when this leg ran past the hedge delay, a speculative copy
      // of the request goes to the next equally fresh candidate, and the
      // caller takes whichever reply lands first (contents are identical).
      // A suspect serving replica is hedged against at half the delay — the
      // whole point of tracking gray failure is not waiting the full p99
      // on a node already known to be slow.
      SimMicros delay = hedge_delay();
      if (delay > 1 && is_suspect(srv.node().id())) delay /= 2;
      if (delay > 0 && comp - d.attempt_start > delay && i + 1 < candidates.size()) {
        counters_.hedges.inc();
        BlobServer& alt = store_->server(candidates[i + 1]);
        const SimMicros h_start = d.attempt_start + delay;
        AttemptPlan hp = plan_attempt(alt, h_start, req);
        if (hp.delivered) {
          SimMicros hsvc = 0;
          auto hr = alt.read(ekey, off, len, &hsvc);
          if (hr.ok() == r.ok()) {
            const SimMicros h_arr =
                h_start + net.transfer_us(req) + hp.extra_latency_us;
            const SimMicros h_comp = alt.node().serve(h_arr, hsvc) +
                                     net.transfer_us(resp) + hp.extra_latency_us;
            comp = std::min(comp, h_comp);
          }
        }
      }
      read_latency_.add(static_cast<std::uint64_t>(comp - d.attempt_start));
      health_on_success(srv.node().id(), comp - d.attempt_start);
      *completion = comp;
      return r;  // a delivered reply is authoritative, not_found included
    }
    if (stale) continue;
    *completion = t;
    return last;
  }
}

Result<BlobStat> BlobClient::stat_leg(const std::string& ekey, SimMicros start,
                                      SimMicros* completion) {
  *completion = start;
  const std::uint32_t R = store_->config().read_quorum();
  const auto& net = store_->cluster().net();

  // Same stale-epoch retry loop as read_leg (see there for the argument).
  for (int pass = 0;; ++pass) {
    const Placement p =
        pass == 0 ? locate(ekey) : store_->placement_of(ekey);
    if (p.replicas.empty()) return {Errc::no_space, "no storage nodes in ring"};
    std::vector<std::uint32_t> lives;
    for (std::uint32_t rid : p.replicas) {
      if (!store_->is_down(rid)) lives.push_back(rid);
    }
    if (lives.empty()) return {Errc::unavailable, "all replicas down: " + ekey};

    if (R > 1) {
      ProbeRound probe = quorum_probe(
          ekey, lives, std::min<std::uint32_t>(R, lives.size()), start);
      *completion = probe.done;
      if (probe.ok && store_->server(lives.front()).ring_epoch() > p.epoch &&
          pass < 2) {
        place_flush(ekey);
        counters_.epoch_refreshes.inc();
        client_metrics().epoch_refreshes.inc();
        counters_.stale_epoch_retries.inc();
        client_metrics().stale_retries.inc();
        start = probe.done;
        continue;
      }
      if (!probe.ok) return {probe.err, "read quorum unreachable: " + ekey};
      if (!probe.found) return {Errc::not_found, ekey};
      return probe.stat;
    }

    bool stale = false;
    SimMicros t = start;
    Error last{Errc::unavailable, "unreachable: " + ekey};
    for (std::size_t i = 0; i < lives.size(); ++i) {
      if (i > 0) counters_.failovers.inc();
      BlobServer& srv = store_->server(lives[i]);
      LegDelivery d = try_deliver(srv, t, kProbeReq);
      if (!d.ok) {
        t = d.failed_at;
        last = {d.err, "unreachable: " + ekey};
        continue;
      }
      SimMicros svc = 0;
      auto s = srv.stat(ekey, &svc);
      const SimMicros arr =
          d.attempt_start + net.transfer_us(kProbeReq) + d.extra_latency_us;
      *completion =
          srv.node().serve(arr, svc) + net.transfer_us(kProbeResp) + d.extra_latency_us;
      if (srv.ring_epoch() > p.epoch && pass < 2) {
        place_flush(ekey);
        counters_.epoch_refreshes.inc();
        client_metrics().epoch_refreshes.inc();
        counters_.stale_epoch_retries.inc();
        client_metrics().stale_retries.inc();
        start = *completion;
        stale = true;
        break;
      }
      if (!s.ok()) return s.error();
      return s;
    }
    if (stale) continue;
    *completion = t;
    return last;
  }
}

Result<std::uint64_t> BlobClient::peek_logical_size(const std::string& ekey) {
  const auto replicas = store_->replicas_of(ekey);
  if (replicas.empty()) return {Errc::no_space, "no storage nodes in ring"};
  const auto acting = store_->first_up(replicas);
  if (!acting) return {Errc::unavailable, "all replicas down: " + ekey};
  if (store_->config().write_quorum == 0) {
    // Classic mode: every live replica holds every acked op, the acting
    // primary included.
    return store_->server(*acting).peek_size(ekey);
  }
  // Quorum mode: the freshest live replica wins (a stale primary may have
  // missed acked writes that went through a previous acting primary).
  bool found = false;
  Version best_v = 0;
  std::uint64_t best_size = 0;
  for (std::uint32_t rid : replicas) {
    if (store_->is_down(rid)) continue;
    BlobServer& srv = store_->server(rid);
    auto v = srv.peek_version(ekey);
    if (!v.ok()) continue;
    if (!found || v.value() > best_v) {
      found = true;
      best_v = v.value();
      best_size = srv.peek_size(ekey).value_or(0);
    }
  }
  if (!found) return {Errc::not_found, ekey};
  return best_size;
}

Status BlobClient::create(std::string_view key) {
  counters_.creates.inc();
  PrimTimer timer(client_metrics().create, agent_, key);
  OpBudget budget(*this, agent_ ? agent_->now() : 0);
  if (key.empty()) return {Errc::invalid_argument, "empty blob key"};
  cache_erase(std::string{key});
  return replicated_mutation(
      key, {{BlobServer::TxnOp::Kind::create, std::string{key}, 0, {}, 0}});
}

Status BlobClient::remove(std::string_view key) {
  counters_.removes.inc();
  PrimTimer timer(client_metrics().remove, agent_, key);
  OpBudget budget(*this, agent_ ? agent_->now() : 0);
  const std::uint64_t cb = store_->config().chunk_bytes;
  const std::string base{key};

  if (store_->config().batched_striping && cb > 0) {
    // Batched path: remove chunk 0 first (its leg reports the pre-image
    // logical size, replacing the peek round), then sweep the chunk keys in
    // per-primary batch envelopes with tolerated not_found (hole chunks).
    const SimMicros start = agent_ ? agent_->now() : 0;
    SimMicros done = start;
    SimMicros comp = start;
    LegInfo li;
    Status st = mutation_leg(
        base, {{BlobServer::TxnOp::Kind::remove, base, 0, {}, 0}}, false, start,
        &comp, &li);
    done = std::max(done, comp);
    if (st.ok() && li.pre_size > cb) {
      std::vector<BatchSub> subs;
      const std::uint64_t chunks = (li.pre_size + cb - 1) / cb;
      for (std::uint64_t c = 1; c < chunks; ++c) {
        BatchSub sub;
        sub.ekey = chunk_engine_key(key, c);
        sub.chunk = c;
        sub.tolerate_not_found = true;
        sub.op = {BlobServer::TxnOp::Kind::remove, nullptr, 0, {}, 0, 0};
        subs.push_back(std::move(sub));
      }
      SimMicros wdone = start;
      Status ws = batched_mutation_wave(subs, start, &wdone);
      done = std::max(done, wdone);
      st = ws;
    }
    if (agent_) agent_->advance_to(done);
    cache_erase(base);
    return st;
  }

  cache_erase(base);
  std::uint64_t logical = 0;
  if (cb > 0) {
    if (auto sz = peek_logical_size(std::string{key}); sz.ok()) logical = sz.value();
  }
  if (cb == 0 || logical <= cb) {
    return replicated_mutation(
        key, {{BlobServer::TxnOp::Kind::remove, std::string{key}, 0, {}, 0}});
  }
  // Striped blob: drop chunk 0 and every existing chunk key, scatter-gather.
  const SimMicros start = agent_ ? agent_->now() : 0;
  SimMicros done = start;
  SimMicros comp = start;
  Status st = mutation_leg(std::string{key},
                           {{BlobServer::TxnOp::Kind::remove, std::string{key}, 0, {}, 0}},
                           false, start, &comp);
  done = std::max(done, comp);
  const std::uint64_t chunks = (logical + cb - 1) / cb;
  for (std::uint64_t c = 1; c < chunks && st.ok(); ++c) {
    const std::string ekey = chunk_engine_key(key, c);
    if (!peek_logical_size(ekey).ok()) continue;  // hole chunk: nothing stored
    st = mutation_leg(ekey, {{BlobServer::TxnOp::Kind::remove, ekey, 0, {}, 0}}, false,
                      start, &comp);
    done = std::max(done, comp);
  }
  if (agent_) agent_->advance_to(done);
  return st;
}

Result<Bytes> BlobClient::read(std::string_view key, std::uint64_t offset,
                               std::uint64_t len) {
  counters_.reads.inc();
  PrimTimer timer(client_metrics().read, agent_, key);
  OpBudget budget(*this, agent_ ? agent_->now() : 0);
  const std::uint64_t cb = store_->config().chunk_bytes;
  if (cb == 0 || offset + len <= cb) {
    // Single-chunk fast path: one leg (failover/quorum logic inside).
    const SimMicros start = agent_ ? agent_->now() : 0;
    SimMicros comp = start;
    auto r = read_leg(std::string{key}, offset, len, start, &comp);
    if (agent_) agent_->advance_to(comp);
    if (!r.ok()) return r.error();
    // bytes_read counts extent-backed bytes only; zero-filled hole bytes in
    // the returned span are accounted separately in read_hole_bytes.
    const std::uint64_t covered = r.value().covered;
    counters_.bytes_read.add(covered);
    counters_.read_hole_bytes.add(r.value().data.size() - covered);
    client_metrics().read_bytes.add(r.value().data.size());
    client_metrics().read_hole_bytes.add(r.value().data.size() - covered);
    return std::move(r.value().data);
  }

  // Batched scatter-gather path: per-candidate-set multi-op envelopes plus
  // the client metadata cache. R > 1 and hedged reads stay on it too — the
  // envelopes carry per-sub version votes (see read_group_leg).
  const auto& cfg = store_->config();
  if (cfg.batched_striping) {
    return batched_striped_read(key, offset, len);
  }

  // Per-leg striped read: clip to the logical size (held by chunk 0), then
  // issue one leg per touched chunk to its own acting primary. Legs fork
  // from the same simulated instant; the call completes at the slowest leg.
  // A version-validated metadata-cache entry replaces the serialized
  // up-front stat round: the chunk legs fork immediately, and a
  // verification stat leg runs in parallel with them — the round is still
  // charged, it just no longer gates the data path (mismatch = relayout and
  // re-read, same discipline as the batched path's piggybacked stat sub).
  const std::string base{key};
  const bool use_cache = cfg.client_meta_cache;
  MetaEntry entry;
  bool from_cache = false;
  if (use_cache) {
    auto it = meta_cache_.find(base);
    if (it != meta_cache_.end()) {
      entry = it->second;
      from_cache = true;
      counters_.metacache_hits.inc();
      client_metrics().metacache_hits.inc();
    } else {
      counters_.metacache_misses.inc();
      client_metrics().metacache_misses.inc();
    }
  }
  if (!from_cache) {
    const SimMicros start = agent_ ? agent_->now() : 0;
    SimMicros comp = start;
    auto s = stat_leg(base, start, &comp);
    if (agent_) agent_->advance_to(comp);
    // Absent blob: the stat round is the complete (failed) answer — one
    // round trip, no second full-length probe leg.
    if (!s.ok()) return s.error();
    entry = {s.value().size, s.value().version};
    cache_put(base, entry);
  }

  for (int attempt = 0;; ++attempt) {
    const std::uint64_t logical = entry.logical;
    const std::uint64_t rlen = offset < logical ? std::min(len, logical - offset) : 0;
    if (rlen == 0) {
      // At/after EOF per the (possibly cached) size. A cache hit still
      // verifies with one charged stat round — there is no data leg to
      // overlap it with — retrying once if the cached size was stale-low.
      if (!from_cache) return Bytes{};
      const SimMicros start = agent_ ? agent_->now() : 0;
      SimMicros comp = start;
      auto s = stat_leg(base, start, &comp);
      if (agent_) agent_->advance_to(comp);
      if (!s.ok()) {
        cache_erase(base);
        return s.error();
      }
      cache_put(base, {s.value().size, s.value().version});
      if (attempt < 2 && offset < s.value().size) {
        entry = {s.value().size, s.value().version};
        from_cache = false;  // entry is now authoritative
        continue;
      }
      return Bytes{};
    }

    const SimMicros t0 = agent_ ? agent_->now() : 0;
    SimMicros done = t0;
    Bytes out(rlen, std::byte{0});  // unwritten holes (and absent chunks) read as zero
    const std::uint64_t end = offset + rlen;
    std::uint64_t covered_total = 0;
    Status fail = Status::success();
    // Cache-hit verification stat, overlapped with the chunk legs.
    Result<BlobStat> vstat = BlobStat{};
    if (from_cache) {
      SimMicros comp2 = t0;
      vstat = stat_leg(base, t0, &comp2);
      done = std::max(done, comp2);
    }
    for (std::uint64_t c = offset / cb; c * cb < end; ++c) {
      const std::uint64_t lo = std::max(offset, c * cb);
      const std::uint64_t hi = std::min(end, (c + 1) * cb);
      const std::string ekey = chunk_engine_key(key, c);
      SimMicros comp2 = t0;
      auto r = read_leg(ekey, lo - c * cb, hi - lo, t0, &comp2);
      done = std::max(done, comp2);
      if (r.ok()) {
        // The leg may return fewer bytes than requested (hole at the chunk's
        // tail): the remainder stays zero.
        const Bytes& part = r.value().data;
        std::copy(part.begin(), part.end(),
                  out.begin() + static_cast<std::ptrdiff_t>(lo - offset));
        covered_total += r.value().covered;
      } else if (r.error().code != Errc::not_found) {
        fail = r.error();
        break;
      }
      // not_found: the whole chunk is a hole — zeros are already in place.
    }
    if (agent_) agent_->advance_to(done);
    if (!fail.ok()) return fail.error();
    if (from_cache) {
      if (!vstat.ok()) {
        cache_erase(base);
        return vstat.error();
      }
      if (vstat.value().size != logical && attempt < 2) {
        // Size drifted (concurrent truncate/recreate): the layout the legs
        // used is wrong — relayout and re-read.
        counters_.metacache_invalidations.inc();
        client_metrics().metacache_invalidations.inc();
        entry = {vstat.value().size, vstat.value().version};
        cache_put(base, entry);
        continue;
      }
      if (vstat.value().version != entry.v0 || vstat.value().size != logical) {
        // Version-only drift (or a still-moving size on the final attempt):
        // the chunk data just read is current as of its serve; refresh.
        cache_put(base, {vstat.value().size, vstat.value().version});
      }
    }
    counters_.bytes_read.add(covered_total);
    counters_.read_hole_bytes.add(rlen - covered_total);
    client_metrics().read_bytes.add(rlen);
    client_metrics().read_hole_bytes.add(rlen - covered_total);
    return out;
  }
}

Result<BlobStat> BlobClient::cached_stat(const std::string& base) {
  // Same cache lookup/invalidate discipline as the read paths: a hit
  // answers from the client-held {logical size, chunk-0 version} entry with
  // zero rounds (the entry is erased by every local mutation and verified
  // against a replica by every striped read); a miss pays one charged stat
  // round and primes the cache. Absent blobs are not cached — a stat after
  // a failed stat pays the round again, matching read-path probe economy.
  if (store_->config().client_meta_cache) {
    auto it = meta_cache_.find(base);
    if (it != meta_cache_.end()) {
      counters_.metacache_hits.inc();
      client_metrics().metacache_hits.inc();
      return BlobStat{base, it->second.logical, it->second.v0};
    }
    counters_.metacache_misses.inc();
    client_metrics().metacache_misses.inc();
  }
  const SimMicros start = agent_ ? agent_->now() : 0;
  SimMicros comp = start;
  auto s = stat_leg(base, start, &comp);
  if (agent_) agent_->advance_to(comp);
  if (s.ok()) cache_put(base, {s.value().size, s.value().version});
  return s;
}

Result<std::uint64_t> BlobClient::size(std::string_view key) {
  counters_.sizes.inc();
  PrimTimer timer(client_metrics().size, agent_, key);
  OpBudget budget(*this, agent_ ? agent_->now() : 0);
  // Chunk 0 carries the full logical size of a striped blob.
  auto s = cached_stat(std::string{key});
  if (!s.ok()) return s.error();
  return s.value().size;
}

Result<BlobStat> BlobClient::stat(std::string_view key) {
  PrimTimer timer(client_metrics().stat, agent_, key);
  OpBudget budget(*this, agent_ ? agent_->now() : 0);
  return cached_stat(std::string{key});
}

bool BlobClient::exists(std::string_view key) { return stat(key).ok(); }

Result<std::uint64_t> BlobClient::write(std::string_view key, std::uint64_t offset,
                                        ByteView data) {
  counters_.writes.inc();
  PrimTimer timer(client_metrics().write, agent_, key);
  OpBudget budget(*this, agent_ ? agent_->now() : 0);
  if (key.empty()) return {Errc::invalid_argument, "empty blob key"};
  const std::uint64_t cb = store_->config().chunk_bytes;
  const std::uint64_t end = offset + data.size();
  if (cb == 0 || end <= cb) {
    // Single-chunk fast path. Any cached size/version for this key is stale
    // the moment the mutation lands.
    cache_erase(std::string{key});
    Status st = replicated_mutation(
        key, {{BlobServer::TxnOp::Kind::write, std::string{key}, offset,
               Bytes(data.begin(), data.end()), 0}});
    if (!st.ok()) return st.error();
    counters_.bytes_written.add(data.size());
    client_metrics().write_bytes.add(data.size());
    return data.size();
  }

  // Striped write: slice the range over fixed-size chunks. The base leg
  // (chunk 0) carries its slice — or an empty creating write when the range
  // starts past chunk 0 — plus a grow() keeping the full logical size on the
  // chunk-0 record. It runs first (it owns create semantics); the remaining
  // chunk legs go to their own replica sets and fork from the same
  // simulated instant (scatter-gather: the ack waits for the slowest leg).
  const std::string base{key};
  const SimMicros start = agent_ ? agent_->now() : 0;
  SimMicros done = start;
  SimMicros comp = start;

  const bool batched = store_->config().batched_striping;
  std::vector<BlobServer::TxnOp> base_ops;
  if (offset < cb) {
    const std::uint64_t hi = std::min(end, cb);
    if (batched) {
      // Batched mode ships the chunk-0 slice as a zero-copy iovec view plus
      // a client-computed end-to-end checksum, so the base leg neither
      // marshals a payload copy nor makes replicas re-hash it.
      const ByteView slice = data.subspan(0, hi - offset);
      BlobServer::TxnOp op{BlobServer::TxnOp::Kind::write, base, offset, {}, 0,
                           content_checksum(slice)};
      op.view = slice;
      base_ops.push_back(std::move(op));
    } else {
      base_ops.push_back(
          {BlobServer::TxnOp::Kind::write, base, offset,
           Bytes(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(hi - offset)),
           0});
    }
  } else {
    base_ops.push_back({BlobServer::TxnOp::Kind::write, base, 0, {}, 0});
  }
  base_ops.push_back({BlobServer::TxnOp::Kind::grow, base, 0, {}, end});
  LegInfo li;
  Status st = mutation_leg(base, base_ops, false, start, &comp, &li);
  done = std::max(done, comp);

  if (batched) {
    // Chunk legs c >= 1 travel as per-primary batch envelopes: one queueing
    // trip, one lock round, one fault decision per acting primary.
    if (st.ok() && end > cb) {
      std::vector<BatchSub> subs;
      for (std::uint64_t c = std::max<std::uint64_t>(1, offset / cb); c * cb < end;
           ++c) {
        const std::uint64_t lo = std::max(offset, c * cb);
        const std::uint64_t hi = std::min(end, (c + 1) * cb);
        const ByteView slice = data.subspan(lo - offset, hi - lo);
        BatchSub sub;
        sub.ekey = chunk_engine_key(key, c);
        sub.chunk = c;
        sub.op = {BlobServer::TxnOp::Kind::write, nullptr, lo - c * cb, slice, 0,
                  content_checksum(slice)};
        subs.push_back(std::move(sub));
      }
      SimMicros wdone = start;
      st = batched_mutation_wave(subs, start, &wdone);
      done = std::max(done, wdone);
    }
  } else {
    for (std::uint64_t c = std::max<std::uint64_t>(1, offset / cb);
         c * cb < end && st.ok(); ++c) {
      const std::uint64_t lo = std::max(offset, c * cb);
      const std::uint64_t hi = std::min(end, (c + 1) * cb);
      const std::string ekey = chunk_engine_key(key, c);
      std::vector<BlobServer::TxnOp> ops;
      ops.push_back({BlobServer::TxnOp::Kind::write, ekey, lo - c * cb,
                     Bytes(data.begin() + static_cast<std::ptrdiff_t>(lo - offset),
                           data.begin() + static_cast<std::ptrdiff_t>(hi - offset)),
                     0});
      // Chunk keys of an existing blob are created on demand regardless of the
      // write_creates policy (the application-visible blob already exists).
      st = mutation_leg(ekey, ops, /*force_create=*/true, start, &comp);
      done = std::max(done, comp);
    }
  }
  if (agent_) agent_->advance_to(done);
  if (!st.ok()) {
    cache_erase(base);
    return st.error();
  }
  // The base leg told us the pre-image size and the version it installed:
  // enough to refresh the metadata cache without another round.
  cache_put(base, {std::max(li.pre_size, end), li.new_version});
  counters_.bytes_written.add(data.size());
  client_metrics().write_bytes.add(data.size());
  return data.size();
}

Status BlobClient::truncate(std::string_view key, std::uint64_t new_size) {
  counters_.truncates.inc();
  PrimTimer timer(client_metrics().truncate, agent_, key);
  OpBudget budget(*this, agent_ ? agent_->now() : 0);
  const std::uint64_t cb = store_->config().chunk_bytes;
  const std::string base{key};

  if (store_->config().batched_striping && cb > 0) {
    // Batched path: the base leg is a plain truncate to new_size (chunk 0's
    // record carries the logical size) and reports the pre-image size, so no
    // peek round is needed to plan the chunk wave. Chunks entirely past the
    // new end become tolerated removes; the straddling chunk is trimmed.
    const SimMicros start = agent_ ? agent_->now() : 0;
    SimMicros done = start;
    SimMicros comp = start;
    LegInfo li;
    Status st = mutation_leg(
        base, {{BlobServer::TxnOp::Kind::truncate, base, 0, {}, new_size}}, false,
        start, &comp, &li);
    done = std::max(done, comp);
    if (st.ok()) {
      const std::uint64_t chunks = (std::max(li.pre_size, new_size) + cb - 1) / cb;
      if (chunks > 1) {
        std::vector<BatchSub> subs;
        for (std::uint64_t c = 1; c < chunks; ++c) {
          const std::uint64_t cstart = c * cb;
          BatchSub sub;
          sub.ekey = chunk_engine_key(key, c);
          sub.chunk = c;
          sub.tolerate_not_found = true;  // hole chunks have no stored key
          if (cstart >= new_size) {
            sub.op = {BlobServer::TxnOp::Kind::remove, nullptr, 0, {}, 0, 0};
          } else if (new_size < cstart + cb) {
            sub.op = {BlobServer::TxnOp::Kind::truncate, nullptr, 0, {},
                      new_size - cstart, 0};
          } else {
            continue;  // chunk fully below the new end
          }
          subs.push_back(std::move(sub));
        }
        SimMicros wdone = start;
        Status ws = batched_mutation_wave(subs, start, &wdone);
        done = std::max(done, wdone);
        if (st.ok()) st = ws;
      }
    }
    if (agent_) agent_->advance_to(done);
    if (!st.ok()) {
      cache_erase(base);
      return st;
    }
    cache_put(base, {new_size, li.new_version});
    return st;
  }

  std::uint64_t logical = 0;
  bool known = false;
  cache_erase(base);
  if (cb > 0) {
    if (auto sz = peek_logical_size(std::string{key}); sz.ok()) {
      logical = sz.value();
      known = true;
    }
  }
  if (cb == 0 || !known || (logical <= cb && new_size <= cb)) {
    // Unchunked blob (or absent: the leg reports not_found with the usual
    // failed-round-trip timing).
    return replicated_mutation(
        key, {{BlobServer::TxnOp::Kind::truncate, std::string{key}, 0, {}, new_size}});
  }

  // Striped truncate. Chunk 0's record carries the logical size, so its leg
  // is a plain truncate to new_size: shrinking below chunk_bytes drops data
  // extents, any other target only moves the logical length (chunk 0 never
  // holds data past chunk_bytes). Chunks entirely past the new end are
  // removed; the chunk straddling it is trimmed locally.
  const SimMicros start = agent_ ? agent_->now() : 0;
  SimMicros done = start;
  SimMicros comp = start;
  Status st = mutation_leg(
      base, {{BlobServer::TxnOp::Kind::truncate, base, 0, {}, new_size}}, false, start,
      &comp);
  done = std::max(done, comp);
  const std::uint64_t chunks = (std::max(logical, new_size) + cb - 1) / cb;
  for (std::uint64_t c = 1; c < chunks && st.ok(); ++c) {
    const std::uint64_t cstart = c * cb;
    const std::string ekey = chunk_engine_key(key, c);
    if (!peek_logical_size(ekey).ok()) continue;  // hole chunk: nothing stored
    std::vector<BlobServer::TxnOp> ops;
    if (cstart >= new_size) {
      ops.push_back({BlobServer::TxnOp::Kind::remove, ekey, 0, {}, 0});
    } else if (new_size < cstart + cb) {
      ops.push_back({BlobServer::TxnOp::Kind::truncate, ekey, 0, {}, new_size - cstart});
    } else {
      continue;  // chunk fully below the new end
    }
    st = mutation_leg(ekey, ops, false, start, &comp);
    done = std::max(done, comp);
  }
  if (agent_) agent_->advance_to(done);
  return st;
}

Result<std::vector<BlobStat>> BlobClient::scan(std::string_view prefix) {
  counters_.scans.inc();
  PrimTimer timer(client_metrics().scan, agent_, prefix);
  OpBudget budget(*this, agent_ ? agent_->now() : 0);
  const auto& net = store_->cluster().net();
  const SimMicros start = agent_ ? agent_->now() : 0;
  const std::string pfx{prefix};

  // Fan out to every server in parallel; merge + dedupe (replicas hold
  // copies of the same key) and present a sorted global namespace view.
  // Internal chunk keys are implementation detail — hidden from the
  // namespace (their bytes are reported via chunk 0's logical size).
  // Namespace enumeration is management-plane traffic on the reliable
  // channel: a scan's answer is best-effort by nature (it merges whatever
  // the live servers hold), so injected faults add nothing to test here.
  std::map<std::string, BlobStat> merged;
  SimMicros done = start;
  for (std::size_t i = 0; i < store_->server_count(); ++i) {
    if (store_->is_down(static_cast<std::uint32_t>(i))) continue;
    BlobServer& s = store_->server(i);
    SimMicros svc = 0;
    auto part = s.scan(pfx, &svc);
    const SimMicros arr = start + net.transfer_us(req_bytes(prefix));
    std::uint64_t resp = kEnvelope;
    for (auto& bs : part) resp += bs.key.size() + 16;
    const SimMicros fin = s.node().serve(arr, svc) + net.transfer_us(resp);
    done = std::max(done, fin);
    for (auto& bs : part) {
      if (is_chunk_key(bs.key)) continue;
      auto [it, inserted] = merged.try_emplace(bs.key, bs);
      if (!inserted && bs.version > it->second.version) it->second = bs;
    }
  }
  if (agent_) agent_->advance_to(done);

  std::vector<BlobStat> out;
  out.reserve(merged.size());
  for (auto& [k, v] : merged) out.push_back(std::move(v));
  return out;
}

BlobTransaction BlobClient::begin_transaction() { return BlobTransaction(*this); }

// ---------------------------------------------------------------- txn ----

BlobTransaction& BlobTransaction::write(std::string_view key, std::uint64_t offset,
                                        ByteView data) {
  ops_.push_back({BlobServer::TxnOp::Kind::write, std::string{key}, offset,
                  Bytes(data.begin(), data.end()), 0});
  return *this;
}

BlobTransaction& BlobTransaction::truncate(std::string_view key, std::uint64_t new_size) {
  ops_.push_back({BlobServer::TxnOp::Kind::truncate, std::string{key}, 0, {}, new_size});
  return *this;
}

BlobTransaction& BlobTransaction::create(std::string_view key) {
  ops_.push_back({BlobServer::TxnOp::Kind::create, std::string{key}, 0, {}, 0});
  return *this;
}

BlobTransaction& BlobTransaction::remove(std::string_view key) {
  ops_.push_back({BlobServer::TxnOp::Kind::remove, std::string{key}, 0, {}, 0});
  return *this;
}

BlobTransaction& BlobTransaction::expect_version(std::string_view key, Version version) {
  preconditions_.emplace_back(std::string{key}, version);
  return *this;
}

Status BlobTransaction::commit() {
  BlobClient& c = *client_;
  c.counters_.txns.inc();
  BlobClient::OpBudget budget(c, c.agent() ? c.agent()->now() : 0);
  // Both branches must already be string_views: a ""/std::string ternary
  // would materialize a temporary string that dies here while the timer's
  // view of it lives until end of commit().
  PrimTimer timer(client_metrics().txn, c.agent(),
                  ops_.empty() ? std::string_view{}
                               : std::string_view{ops_.front().key});
  if (ops_.empty()) return Status::success();
  BlobStore& store = c.store();
  const std::uint32_t W = store.config().write_quorum;

  // Involved servers: every replica of every touched key.
  std::set<std::uint32_t> involved;
  std::map<std::uint32_t, std::vector<BlobServer::TxnOp>> per_server;
  std::uint64_t payload = 0;
  for (const auto& op : ops_) {
    payload += op.key.size() + op.data.size() + 24;
    for (std::uint32_t n : store.replicas_of(op.key)) {
      involved.insert(n);
      per_server[n].push_back(op);
    }
  }
  if (involved.empty()) return {Errc::no_space, "no storage nodes in ring"};

  // Lock phase: whole-server exclusive locks in ascending node id order —
  // the one global order shared with the per-key mutation path, which rules
  // out deadlock between concurrent transactions and striped writers alike.
  // The commit protocol itself runs on the reliable channel (Týr's commit
  // rounds carry their own acknowledgment/retry machinery); what failures
  // leave behind is modeled by the version gating below.
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(involved.size());
  for (std::uint32_t n : involved) locks.push_back(store.server(n).lock_exclusive());

  const auto& net = store.cluster().net();
  sim::SimAgent* agent = c.agent();
  const SimMicros start = agent ? agent->now() : 0;

  // Prepare round: small validation message to every involved server.
  SimMicros prepare_done = start;
  for (std::uint32_t n : involved) {
    const SimMicros arr = start + net.transfer_us(64);
    prepare_done = std::max(prepare_done, store.server(n).node().serve(arr, 3));
  }

  // Authoritative per-key version: the freshest live replica (in classic
  // mode every live replica agrees; in quorum mode stale replicas may lag).
  std::set<std::string> touched;
  for (const auto& op : ops_) touched.insert(op.key);
  // A committed transaction bumps versions behind the metadata cache's back;
  // dropping the entries before application covers every outcome.
  for (const std::string& k : touched) c.cache_erase(k);
  std::map<std::string, Version> auth;
  std::map<std::string, std::uint32_t> auth_holder;
  for (const std::string& key : touched) {
    const auto reps = store.replicas_of(key);
    const auto acting = store.first_up(reps);
    if (!acting) {
      if (agent) agent->advance_to(prepare_done + net.transfer_us(32));
      return {Errc::unavailable, "all replicas down: " + key};
    }
    Version v = 0;
    std::uint32_t holder = *acting;
    for (std::uint32_t r : reps) {
      if (store.is_down(r)) continue;
      auto rv = store.server(r).peek_version(key);
      if (rv.ok() && rv.value() > v) {
        v = rv.value();
        holder = r;
      }
    }
    auth[key] = v;
    auth_holder[key] = holder;
  }

  // Precondition validation against the authoritative versions.
  for (const auto& [key, expected] : preconditions_) {
    const Version have = auth.count(key) ? auth[key] : [&] {
      Version v = 0;
      for (std::uint32_t r : store.replicas_of(key)) {
        if (store.is_down(r)) continue;
        auto rv = store.server(r).peek_version(key);
        if (rv.ok()) v = std::max(v, rv.value());
      }
      return v;
    }();
    if (have != expected) {
      if (agent) agent->advance_to(prepare_done + net.transfer_us(32));
      return {Errc::conflict, "precondition failed: " + key};
    }
  }

  // Applicability validation against the pre-transaction state, so the
  // commit round below cannot fail halfway (all-or-nothing). Ops within one
  // transaction apply in order on every server, so a create followed by
  // ops on the same key is fine; validation only checks the initial state.
  std::set<std::string> created_in_txn;
  for (const auto& op : ops_) {
    const bool pre_exists = [&] {
      const std::uint32_t holder = auth_holder[op.key];
      return !store.server(holder).version_matches(op.key, 0);
    }();
    const bool exists = pre_exists || created_in_txn.count(op.key) != 0;
    bool applicable = true;
    switch (op.kind) {
      case BlobServer::TxnOp::Kind::create:
        applicable = !exists;
        created_in_txn.insert(op.key);
        break;
      case BlobServer::TxnOp::Kind::remove:
      case BlobServer::TxnOp::Kind::truncate:
      case BlobServer::TxnOp::Kind::grow:
        applicable = exists;
        break;
      case BlobServer::TxnOp::Kind::write:
        created_in_txn.insert(op.key);  // auto-creates
        break;
    }
    if (!applicable) {
      if (agent) agent->advance_to(prepare_done + net.transfer_us(32));
      return {Errc::conflict, "inapplicable op on: " + op.key};
    }
  }

  // Freshness gate: a replica applies a key's ops only from the
  // authoritative version (else histories would interleave). Because the
  // exclusive locks freeze every version, ack counts are known BEFORE
  // anything applies — an under-replicated key aborts the whole
  // transaction atomically instead of committing partially.
  std::map<std::uint32_t, std::set<std::string>> stale;  // server -> gated keys
  for (const std::string& key : touched) {
    std::uint32_t acks = 0;
    std::uint32_t live = 0;
    const auto reps = store.replicas_of(key);
    for (std::uint32_t r : reps) {
      if (store.is_down(r)) continue;
      ++live;
      auto rv = store.server(r).peek_version(key);
      const Version have = rv.ok() ? rv.value() : 0;
      if (have == auth[key]) {
        ++acks;
      } else {
        stale[r].insert(key);
      }
    }
    const std::uint32_t need =
        (W == 0) ? live : std::min<std::uint32_t>(W, static_cast<std::uint32_t>(reps.size()));
    if (acks < need || acks == 0) {
      if (agent) agent->advance_to(prepare_done + net.transfer_us(32));
      return {Errc::unavailable, "insufficient fresh replicas: " + key};
    }
  }

  // Commit round: apply the batch on every involved fresh server; gated
  // (stale) replicas are hinted for repair instead.
  SimMicros commit_done = prepare_done;
  Status failure = Status::success();
  std::map<std::string, std::uint64_t> key_op_count;
  for (const auto& op : ops_) ++key_op_count[op.key];
  for (auto& [n, server_ops] : per_server) {
    if (store.is_down(n)) continue;  // degraded commit; resync repairs later
    std::vector<BlobServer::TxnOp> runnable;
    const auto& gated = stale.count(n) ? stale[n] : std::set<std::string>{};
    for (const auto& op : server_ops) {
      if (!gated.count(op.key)) runnable.push_back(op);
    }
    for (const std::string& key : gated) {
      if (W > 0 && store.server(auth_holder[key]).add_hint(n, key)) {
        c.counters_.hints_written.inc();
      }
    }
    if (runnable.empty()) continue;
    SimMicros svc = 0;
    Status st = store.server(n).apply_txn_ops(runnable, &svc);
    if (!st.ok() && failure.ok()) failure = st;
    // Version continuation: a remove+recreate inside the transaction resets
    // the engine version, which could lose arbitration against a stale
    // copy. Lift such keys to a floor above every pre-commit version. Plain
    // mutations already land above the floor — no extra journaling.
    if (st.ok()) {
      std::set<std::string> seen;
      for (const auto& op : runnable) {
        if (!seen.insert(op.key).second) continue;
        const Version floor = auth[op.key] + key_op_count[op.key];
        auto pv = store.server(n).peek_version(op.key);
        if (pv.ok() && pv.value() < floor) {
          (void)store.server(n).force_version(op.key, floor);
        }
      }
    }
    const SimMicros arr = prepare_done + net.transfer_us(64 + payload);
    commit_done = std::max(commit_done, store.server(n).node().serve(arr, svc));
  }
  if (agent) agent->advance_to(commit_done + net.transfer_us(32));
  return failure;
}

}  // namespace bsc::blob
