// BpLite — an ADIOS-BP-style log-structured output format on MPI-IO, the
// second intermediate I/O library of the paper's §II-A stack ("either
// directly or via intermediate libraries such as HDF5 or ADIOS").
//
// Where H5Lite lays datasets out contiguously (read-optimized, offsets fixed
// at definition time), BpLite is write-optimized the way ADIOS BP is:
//
//   * each rank buffers its variables locally during a step;
//   * at end_step, ranks allgather their buffered block sizes, compute
//     disjoint offsets with a prefix sum, and every rank issues ONE large
//     contiguous write of its process-group block — no data exchange, no
//     shared-region locking, append-only file growth;
//   * close() has rank 0 append the global index (step -> rank -> variable
//     -> extent) and stamp the header.
//
// Readers open the index and fetch a variable's per-rank chunks directly.
//
// File layout:
//   [header: magic, index_offset, index_bytes]
//   [step 0: rank-0 PG][step 0: rank-1 PG]... [step 1: rank-0 PG]...
//   [index]
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "mpiio/mpi_file.hpp"

namespace bsc::bplite {

/// One variable chunk as recorded in the index.
struct VarExtent {
  std::uint32_t step = 0;
  std::uint32_t rank = 0;
  std::string name;
  std::uint64_t file_offset = 0;
  std::uint64_t bytes = 0;
};

class BpWriter {
 public:
  /// Collective open-for-write.
  static Result<BpWriter> open(mpiio::MpiIo& io, std::string_view path);

  /// Buffer one variable's bytes for the current step (local, no I/O).
  Status put(std::string_view var, ByteView data);

  /// Collective: write every rank's buffered block at coordinated offsets.
  Status end_step();

  /// Collective close: rank 0 appends the index and stamps the header.
  Status close();

  [[nodiscard]] std::uint32_t current_step() const noexcept { return step_; }

 private:
  BpWriter(mpiio::MpiIo& io, vfs::FileHandle fh) : io_(&io), fh_(fh) {}

  static constexpr std::uint64_t kMagic = 0x4250'4C49'5445'0001ULL;  // "BPLITE\1"
  static constexpr std::uint64_t kHeaderBytes = 32;

  mpiio::MpiIo* io_;
  vfs::FileHandle fh_ = vfs::kInvalidHandle;
  bool closed_ = false;
  std::uint32_t step_ = 0;
  std::uint64_t file_cursor_ = kHeaderBytes;  ///< identical on every rank
  Bytes step_buffer_;                          ///< this rank's pending PG block
  std::vector<VarExtent> pending_;             ///< extents within step_buffer_
  std::vector<VarExtent> local_index_;         ///< this rank's committed extents
};

class BpReader {
 public:
  /// Collective open-for-read: loads the index on every rank.
  static Result<BpReader> open(mpiio::MpiIo& io, std::string_view path);

  [[nodiscard]] std::uint32_t steps() const noexcept { return steps_; }
  [[nodiscard]] const std::vector<VarExtent>& index() const noexcept { return index_; }
  [[nodiscard]] std::vector<std::string> variables() const;

  /// All chunks of `var` at `step`, concatenated in rank order.
  Result<Bytes> read_var(std::uint32_t step, std::string_view var);

  /// One rank's chunk only.
  Result<Bytes> read_var_rank(std::uint32_t step, std::uint32_t rank,
                              std::string_view var);

  Status close();

 private:
  BpReader(mpiio::MpiIo& io, vfs::FileHandle fh) : io_(&io), fh_(fh) {}

  mpiio::MpiIo* io_;
  vfs::FileHandle fh_ = vfs::kInvalidHandle;
  std::uint32_t steps_ = 0;
  std::vector<VarExtent> index_;
};

}  // namespace bsc::bplite
