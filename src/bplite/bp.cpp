#include "bplite/bp.hpp"

#include <algorithm>

#include "rpc/wire.hpp"

namespace bsc::bplite {

namespace {

Bytes encode_index(std::uint32_t steps, const std::vector<VarExtent>& index) {
  rpc::WireWriter w;
  w.put_u32(steps);
  w.put_u32(static_cast<std::uint32_t>(index.size()));
  for (const auto& e : index) {
    w.put_u32(e.step);
    w.put_u32(e.rank);
    w.put_string(e.name);
    w.put_u64(e.file_offset);
    w.put_u64(e.bytes);
  }
  return std::move(w).take();
}

Status decode_index(ByteView data, std::uint32_t* steps, std::vector<VarExtent>* index) {
  rpc::WireReader r(data);
  auto s = r.get_u32();
  auto n = r.get_u32();
  if (!s.ok() || !n.ok()) return {Errc::io_error, "corrupt BP index header"};
  *steps = s.value();
  index->clear();
  index->reserve(n.value());
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    VarExtent e;
    auto step = r.get_u32();
    auto rank = r.get_u32();
    auto name = r.get_string();
    auto off = r.get_u64();
    auto bytes = r.get_u64();
    if (!step.ok() || !rank.ok() || !name.ok() || !off.ok() || !bytes.ok()) {
      return {Errc::io_error, "corrupt BP index entry"};
    }
    e.step = step.value();
    e.rank = rank.value();
    e.name = std::move(name).take();
    e.file_offset = off.value();
    e.bytes = bytes.value();
    index->push_back(std::move(e));
  }
  return Status::success();
}

}  // namespace

Result<BpWriter> BpWriter::open(mpiio::MpiIo& io, std::string_view path) {
  auto fh = io.file_open(path, mpiio::AccessMode::rdwr_create());
  if (!fh.ok()) return fh.error();
  return BpWriter(io, fh.value());
}

Status BpWriter::put(std::string_view var, ByteView data) {
  if (closed_) return {Errc::closed, "writer closed"};
  VarExtent e;
  e.step = step_;
  e.rank = io_->rank();
  e.name = std::string{var};
  e.file_offset = step_buffer_.size();  // relative until end_step
  e.bytes = data.size();
  pending_.push_back(std::move(e));
  append(step_buffer_, data);
  return Status::success();
}

Status BpWriter::end_step() {
  if (closed_) return {Errc::closed, "writer closed"};
  // Offset coordination: one allgather of block sizes, then every rank
  // issues exactly one contiguous write — the BP write path.
  const auto sizes =
      io_->comm().allgather_u64(io_->rank(), *io_->ctx().agent, step_buffer_.size());
  std::uint64_t my_offset = file_cursor_;
  for (std::uint32_t r = 0; r < io_->rank(); ++r) my_offset += sizes[r];
  std::uint64_t total = 0;
  for (const std::uint64_t s : sizes) total += s;

  if (!step_buffer_.empty()) {
    auto w = io_->write_at(fh_, my_offset, as_view(step_buffer_));
    if (!w.ok()) return w.error();
  }
  for (VarExtent& e : pending_) {
    e.file_offset += my_offset;
    local_index_.push_back(std::move(e));
  }
  pending_.clear();
  step_buffer_.clear();
  file_cursor_ += total;  // identical on every rank
  ++step_;
  return Status::success();
}

Status BpWriter::close() {
  if (closed_) return {Errc::closed, "writer closed"};
  if (!pending_.empty() || !step_buffer_.empty()) {
    auto st = end_step();  // implicit final step flush
    if (!st.ok()) return st;
  }
  closed_ = true;

  // Gather every rank's index fragments at rank 0.
  mpiio::Communicator::Piece mine;
  mine.rank = io_->rank();
  mine.data = encode_index(step_, local_index_);
  auto fragments =
      io_->comm().gather_pieces(io_->rank(), *io_->ctx().agent, std::move(mine));

  if (io_->rank() == 0) {
    std::vector<VarExtent> merged;
    std::uint32_t steps = 0;
    for (const auto& frag : fragments) {
      std::uint32_t s = 0;
      std::vector<VarExtent> part;
      auto st = decode_index(as_view(frag.data), &s, &part);
      if (!st.ok()) return st;
      steps = std::max(steps, s);
      for (auto& e : part) merged.push_back(std::move(e));
    }
    std::sort(merged.begin(), merged.end(), [](const VarExtent& a, const VarExtent& b) {
      return std::tie(a.step, a.name, a.rank) < std::tie(b.step, b.name, b.rank);
    });
    const Bytes index = encode_index(steps, merged);
    auto w = io_->write_at(fh_, file_cursor_, as_view(index));
    if (!w.ok()) return w.error();
    rpc::WireWriter hdr;
    hdr.put_u64(kMagic);
    hdr.put_u64(file_cursor_);
    hdr.put_u64(index.size());
    hdr.put_u64(0);  // reserved
    auto w2 = io_->write_at(fh_, 0, as_view(hdr.buffer()));
    if (!w2.ok()) return w2.error();
  }
  auto st = io_->file_sync(fh_);
  if (!st.ok()) return st;
  return io_->file_close(fh_);
}

Result<BpReader> BpReader::open(mpiio::MpiIo& io, std::string_view path) {
  auto fh = io.file_open(path, mpiio::AccessMode::read_only());
  if (!fh.ok()) return fh.error();
  BpReader reader(io, fh.value());
  auto hdr = io.read_at(fh.value(), 0, 32);
  if (!hdr.ok()) return hdr.error();
  rpc::WireReader r(as_view(hdr.value()));
  auto magic = r.get_u64();
  auto index_off = r.get_u64();
  auto index_len = r.get_u64();
  if (!magic.ok() || magic.value() != 0x4250'4C49'5445'0001ULL || !index_off.ok() ||
      !index_len.ok()) {
    (void)io.file_close(fh.value());
    return {Errc::io_error, "not a BpLite file: " + std::string{path}};
  }
  auto index = io.read_at(fh.value(), index_off.value(), index_len.value());
  if (!index.ok()) return index.error();
  auto st = decode_index(as_view(index.value()), &reader.steps_, &reader.index_);
  if (!st.ok()) return st.error();
  return reader;
}

std::vector<std::string> BpReader::variables() const {
  std::vector<std::string> names;
  for (const auto& e : index_) names.push_back(e.name);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

Result<Bytes> BpReader::read_var(std::uint32_t step, std::string_view var) {
  std::vector<const VarExtent*> hits;
  for (const auto& e : index_) {
    if (e.step == step && e.name == var) hits.push_back(&e);
  }
  if (hits.empty()) return {Errc::not_found, std::string{var}};
  std::sort(hits.begin(), hits.end(),
            [](const VarExtent* a, const VarExtent* b) { return a->rank < b->rank; });
  Bytes out;
  for (const VarExtent* e : hits) {
    auto chunk = io_->read_at(fh_, e->file_offset, e->bytes);
    if (!chunk.ok()) return chunk.error();
    append(out, as_view(chunk.value()));
  }
  return out;
}

Result<Bytes> BpReader::read_var_rank(std::uint32_t step, std::uint32_t rank,
                                      std::string_view var) {
  for (const auto& e : index_) {
    if (e.step == step && e.rank == rank && e.name == var) {
      return io_->read_at(fh_, e.file_offset, e.bytes);
    }
  }
  return {Errc::not_found, std::string{var}};
}

Status BpReader::close() { return io_->file_close(fh_); }

}  // namespace bsc::bplite
