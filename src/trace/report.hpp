// Report renderers: print the same rows/series as the paper's tables and
// figures from collected censuses. Used by the bench binaries.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "trace/recorder.hpp"

namespace bsc::trace {

/// One traced application run.
struct AppCensus {
  std::string name;      ///< e.g. "BLAST"
  std::string platform;  ///< "HPC / MPI" or "Cloud / Spark"
  std::string usage;     ///< e.g. "Protein docking"
  Census census;
  SimMicros sim_time = 0;
};

/// I/O-profile classification used in Table I's last column.
[[nodiscard]] std::string classify_profile(double rw_ratio);

/// Format a read/write ratio the way Table I prints it (scientific for
/// extreme ratios, plain otherwise).
[[nodiscard]] std::string format_ratio(double rw_ratio);

/// Table I: platform, application, usage, total reads, total writes,
/// R/W ratio, profile.
[[nodiscard]] std::string render_table1(const std::vector<AppCensus>& apps);

/// Figures 1-2: per-application relative storage-call percentages in the
/// four categories, as an aligned table plus ASCII bars.
[[nodiscard]] std::string render_call_ratio_figure(const std::string& title,
                                                   const std::vector<AppCensus>& apps);

/// Table II: Spark directory-operation breakdown.
struct DirOpBreakdown {
  std::uint64_t mkdir = 0;
  std::uint64_t rmdir = 0;
  std::uint64_t opendir_input = 0;  ///< input-data directory listings
  std::uint64_t opendir_other = 0;  ///< every other directory listing
};
[[nodiscard]] std::string render_table2(const DirOpBreakdown& ops);

/// Raw per-OpKind dump for one census (debugging / EXPERIMENTS.md evidence).
[[nodiscard]] std::string render_census_detail(const std::string& name, const Census& c);

}  // namespace bsc::trace
