// TracingFs — the FUSE-interceptor stand-in: a FileSystem decorator that
// forwards every call to the wrapped backend and records (kind, bytes,
// simulated latency, outcome) into a TraceRecorder. Wrapping is transparent;
// applications run unmodified, exactly as in the paper's methodology
// (§IV-B: "We log these calls ... using a FUSE interceptor" / "modifying
// Hadoop / HDFS to intercept all storage calls made by Spark").
#pragma once

#include <memory>

#include "trace/call_log.hpp"
#include "trace/recorder.hpp"
#include "vfs/file_system.hpp"

namespace bsc::trace {

class TracingFs final : public vfs::FileSystem {
 public:
  /// Does not own `inner` or `recorder`; both must outlive the tracer.
  TracingFs(vfs::FileSystem& inner, TraceRecorder& recorder)
      : inner_(&inner), recorder_(&recorder) {}

  [[nodiscard]] std::string backend_name() const override {
    return "traced:" + inner_->backend_name();
  }

  Result<vfs::FileHandle> open(const vfs::IoCtx& ctx, std::string_view path,
                               vfs::OpenFlags flags,
                               vfs::Mode mode = vfs::kDefaultFileMode) override;
  Status close(const vfs::IoCtx& ctx, vfs::FileHandle fh) override;
  Result<Bytes> read(const vfs::IoCtx& ctx, vfs::FileHandle fh, std::uint64_t offset,
                     std::uint64_t len) override;
  Result<std::uint64_t> write(const vfs::IoCtx& ctx, vfs::FileHandle fh,
                              std::uint64_t offset, ByteView data) override;
  Status sync(const vfs::IoCtx& ctx, vfs::FileHandle fh) override;
  Status truncate(const vfs::IoCtx& ctx, std::string_view path,
                  std::uint64_t new_size) override;
  Status unlink(const vfs::IoCtx& ctx, std::string_view path) override;
  Status mkdir(const vfs::IoCtx& ctx, std::string_view path,
               vfs::Mode mode = vfs::kDefaultDirMode) override;
  Status rmdir(const vfs::IoCtx& ctx, std::string_view path) override;
  Result<std::vector<vfs::DirEntry>> readdir(const vfs::IoCtx& ctx,
                                             std::string_view path) override;
  Result<vfs::FileInfo> stat(const vfs::IoCtx& ctx, std::string_view path) override;
  Status rename(const vfs::IoCtx& ctx, std::string_view from, std::string_view to) override;
  Status chmod(const vfs::IoCtx& ctx, std::string_view path, vfs::Mode mode) override;
  Result<std::string> getxattr(const vfs::IoCtx& ctx, std::string_view path,
                               std::string_view name) override;
  Status setxattr(const vfs::IoCtx& ctx, std::string_view path, std::string_view name,
                  std::string_view value) override;

  [[nodiscard]] TraceRecorder& recorder() noexcept { return *recorder_; }
  [[nodiscard]] vfs::FileSystem& inner() noexcept { return *inner_; }

  /// Optionally mirror every call into a per-call log (CSV-exportable).
  /// The log is not owned and may be null (aggregation-only tracing).
  void attach_log(CallLog* log) noexcept { log_ = log; }
  [[nodiscard]] CallLog* log() noexcept { return log_; }

 private:
  [[nodiscard]] static SimMicros elapsed(const vfs::IoCtx& ctx, SimMicros start) noexcept {
    return ctx.agent ? ctx.now() - start : -1;
  }

  /// Record into the aggregate recorder and, when attached, the call log.
  void note(OpKind op, std::uint64_t bytes, const vfs::IoCtx& ctx, SimMicros t0, bool ok,
            std::string_view path) {
    const SimMicros lat = elapsed(ctx, t0);
    recorder_->record(op, bytes, lat, ok);
    if (log_) {
      CallRecord rec;
      rec.op = op;
      rec.bytes = bytes;
      rec.start_us = t0;
      rec.latency_us = lat < 0 ? 0 : lat;
      rec.ok = ok;
      rec.set_path(path);
      log_->record(rec);
    }
  }

  vfs::FileSystem* inner_;
  TraceRecorder* recorder_;
  CallLog* log_ = nullptr;
};

}  // namespace bsc::trace
