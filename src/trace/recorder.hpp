// Thread-safe storage-call recorder: per-OpKind counters, byte totals,
// latency histograms per category. This is the aggregation the paper builds
// Figures 1-2 and Tables I-II from.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "trace/taxonomy.hpp"

namespace bsc::trace {

/// Immutable snapshot of a recorder's state.
struct Census {
  std::array<std::uint64_t, kOpKindCount> op_counts{};
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  [[nodiscard]] std::uint64_t count(OpKind k) const noexcept {
    return op_counts[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t category_count(Category c) const noexcept;
  [[nodiscard]] std::uint64_t total_calls() const noexcept;
  /// Percentage of all calls falling into `c` (0 when no calls).
  [[nodiscard]] double category_pct(Category c) const noexcept;

  Census& operator+=(const Census& other) noexcept;
};

class TraceRecorder {
 public:
  TraceRecorder() = default;

  void record(OpKind op, std::uint64_t bytes, SimMicros latency_us, bool ok) noexcept;

  [[nodiscard]] Census census() const noexcept;
  [[nodiscard]] std::uint64_t failures() const noexcept {
    return failures_.load(std::memory_order_relaxed);
  }
  /// Latency distribution of one category (locked copy).
  [[nodiscard]] Histogram latency(Category c) const;

  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kOpKindCount> op_counts_{};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> failures_{0};
  mutable std::mutex hist_mu_;
  std::array<Histogram, kCategoryCount> latency_{};
};

}  // namespace bsc::trace
