#include "trace/call_log.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/strings.hpp"

namespace bsc::trace {

void CallRecord::set_path(std::string_view p) noexcept {
  const std::size_t n = std::min(p.size(), sizeof(path) - 1);
  std::memcpy(path, p.data(), n);
  path[n] = '\0';
}

CallLog::CallLog(std::size_t capacity) : capacity_(capacity ? capacity : 1) {
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void CallLog::record(const CallRecord& rec) {
  std::scoped_lock lk(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(rec);
  } else {
    ring_[next_ % capacity_] = rec;
  }
  ++next_;
  ++total_;
}

std::vector<CallRecord> CallLog::snapshot() const {
  std::scoped_lock lk(mu_);
  std::vector<CallRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Oldest surviving record sits at next_ % capacity_.
    const std::size_t head = next_ % capacity_;
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return out;
}

std::uint64_t CallLog::recorded() const {
  std::scoped_lock lk(mu_);
  return total_;
}

std::uint64_t CallLog::dropped() const {
  std::scoped_lock lk(mu_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

void CallLog::clear() {
  std::scoped_lock lk(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

std::string CallLog::to_csv() const {
  const auto records = snapshot();
  std::ostringstream os;
  os << "op,category,path,bytes,start_us,latency_us,ok\n";
  for (const auto& r : records) {
    // `path` is application-controlled and may contain commas/quotes; every
    // other field is an identifier or a number. RFC-4180-quote the path so a
    // hostile path cannot shift the remaining columns.
    os << to_string(r.op) << ',' << to_string(classify(r.op)) << ','
       << csv_field(r.path) << ',' << r.bytes << ',' << r.start_us << ','
       << r.latency_us << ',' << (r.ok ? 1 : 0) << '\n';
  }
  return os.str();
}

}  // namespace bsc::trace
