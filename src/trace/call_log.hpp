// CallLog — the persisted artifact of the paper's tracing methodology: a
// bounded, thread-safe log of individual storage calls, exportable as CSV
// for offline analysis (the paper's authors analyzed exactly such logs to
// produce Tables I-II and Figures 1-2).
//
// The log is a ring buffer: when full, the oldest records are overwritten
// and `dropped()` counts what was lost — tracing must never stall the
// traced application.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "trace/taxonomy.hpp"

namespace bsc::trace {

struct CallRecord {
  OpKind op = OpKind::open;
  std::uint64_t bytes = 0;       ///< payload bytes (read/write only)
  SimMicros start_us = 0;        ///< simulated start time
  SimMicros latency_us = 0;      ///< simulated duration
  bool ok = true;
  char path[48] = {};            ///< truncated path/target (fixed width, no alloc)

  void set_path(std::string_view p) noexcept;
};

class CallLog {
 public:
  explicit CallLog(std::size_t capacity = 65536);

  void record(const CallRecord& rec);

  /// Records in arrival order (oldest surviving first).
  [[nodiscard]] std::vector<CallRecord> snapshot() const;

  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  void clear();

  /// CSV export: header + one line per record.
  [[nodiscard]] std::string to_csv() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<CallRecord> ring_;
  std::size_t next_ = 0;      ///< next slot to write
  std::uint64_t total_ = 0;   ///< records ever written
};

}  // namespace bsc::trace
