#include "trace/recorder.hpp"

namespace bsc::trace {

std::uint64_t Census::category_count(Category c) const noexcept {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < kOpKindCount; ++i) {
    if (classify(static_cast<OpKind>(i)) == c) n += op_counts[i];
  }
  return n;
}

std::uint64_t Census::total_calls() const noexcept {
  std::uint64_t n = 0;
  for (auto c : op_counts) n += c;
  return n;
}

double Census::category_pct(Category c) const noexcept {
  const std::uint64_t total = total_calls();
  if (total == 0) return 0.0;
  return 100.0 * static_cast<double>(category_count(c)) / static_cast<double>(total);
}

Census& Census::operator+=(const Census& other) noexcept {
  for (std::size_t i = 0; i < kOpKindCount; ++i) op_counts[i] += other.op_counts[i];
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  return *this;
}

void TraceRecorder::record(OpKind op, std::uint64_t bytes, SimMicros latency_us,
                           bool ok) noexcept {
  op_counts_[static_cast<std::size_t>(op)].fetch_add(1, std::memory_order_relaxed);
  if (op == OpKind::read) bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  if (op == OpKind::write) bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  if (!ok) failures_.fetch_add(1, std::memory_order_relaxed);
  if (latency_us >= 0) {
    std::scoped_lock lk(hist_mu_);
    latency_[static_cast<std::size_t>(classify(op))].add(
        static_cast<std::uint64_t>(latency_us));
  }
}

Census TraceRecorder::census() const noexcept {
  Census c;
  for (std::size_t i = 0; i < kOpKindCount; ++i) {
    c.op_counts[i] = op_counts_[i].load(std::memory_order_relaxed);
  }
  c.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  c.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  return c;
}

Histogram TraceRecorder::latency(Category c) const {
  std::scoped_lock lk(hist_mu_);
  return latency_[static_cast<std::size_t>(c)];
}

void TraceRecorder::reset() noexcept {
  for (auto& c : op_counts_) c.store(0, std::memory_order_relaxed);
  bytes_read_.store(0, std::memory_order_relaxed);
  bytes_written_.store(0, std::memory_order_relaxed);
  failures_.store(0, std::memory_order_relaxed);
  std::scoped_lock lk(hist_mu_);
  for (auto& h : latency_) h = Histogram{};
}

}  // namespace bsc::trace
