#include "trace/recorder.hpp"

#include "obs/metrics.hpp"

namespace bsc::trace {

namespace {
/// Registry mirror of the recorder's census: one counter per paper category
/// plus totals, so a registry snapshot reproduces the trace-layer call mix
/// without touching any TraceRecorder instance (cross-checked by
/// bench/fig1_hpc_calls).
struct TraceMetrics {
  obs::Counter* categories[kCategoryCount];
  obs::Counter& total;
  obs::Counter& bytes_read;
  obs::Counter& bytes_written;
  obs::Counter& failures;
};

TraceMetrics& trace_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static TraceMetrics m{
      {&reg.counter("trace.calls.file_read"), &reg.counter("trace.calls.file_write"),
       &reg.counter("trace.calls.directory"), &reg.counter("trace.calls.other")},
      reg.counter("trace.calls.total"),
      reg.counter("trace.bytes_read"),
      reg.counter("trace.bytes_written"),
      reg.counter("trace.failures")};
  return m;
}
}  // namespace

std::uint64_t Census::category_count(Category c) const noexcept {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < kOpKindCount; ++i) {
    if (classify(static_cast<OpKind>(i)) == c) n += op_counts[i];
  }
  return n;
}

std::uint64_t Census::total_calls() const noexcept {
  std::uint64_t n = 0;
  for (auto c : op_counts) n += c;
  return n;
}

double Census::category_pct(Category c) const noexcept {
  const std::uint64_t total = total_calls();
  if (total == 0) return 0.0;
  return 100.0 * static_cast<double>(category_count(c)) / static_cast<double>(total);
}

Census& Census::operator+=(const Census& other) noexcept {
  for (std::size_t i = 0; i < kOpKindCount; ++i) op_counts[i] += other.op_counts[i];
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  return *this;
}

void TraceRecorder::record(OpKind op, std::uint64_t bytes, SimMicros latency_us,
                           bool ok) noexcept {
  op_counts_[static_cast<std::size_t>(op)].fetch_add(1, std::memory_order_relaxed);
  if (op == OpKind::read) bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  if (op == OpKind::write) bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  if (!ok) failures_.fetch_add(1, std::memory_order_relaxed);
  auto& m = trace_metrics();
  m.categories[static_cast<std::size_t>(classify(op))]->inc();
  m.total.inc();
  if (op == OpKind::read) m.bytes_read.add(bytes);
  if (op == OpKind::write) m.bytes_written.add(bytes);
  if (!ok) m.failures.inc();
  if (latency_us >= 0) {
    std::scoped_lock lk(hist_mu_);
    latency_[static_cast<std::size_t>(classify(op))].add(
        static_cast<std::uint64_t>(latency_us));
  }
}

Census TraceRecorder::census() const noexcept {
  Census c;
  for (std::size_t i = 0; i < kOpKindCount; ++i) {
    c.op_counts[i] = op_counts_[i].load(std::memory_order_relaxed);
  }
  c.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  c.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  return c;
}

Histogram TraceRecorder::latency(Category c) const {
  std::scoped_lock lk(hist_mu_);
  return latency_[static_cast<std::size_t>(c)];
}

void TraceRecorder::reset() noexcept {
  for (auto& c : op_counts_) c.store(0, std::memory_order_relaxed);
  bytes_read_.store(0, std::memory_order_relaxed);
  bytes_written_.store(0, std::memory_order_relaxed);
  failures_.store(0, std::memory_order_relaxed);
  std::scoped_lock lk(hist_mu_);
  for (auto& h : latency_) h = Histogram{};
}

}  // namespace bsc::trace
