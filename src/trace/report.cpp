#include "trace/report.hpp"

#include <cmath>
#include <sstream>

#include "common/strings.hpp"

namespace bsc::trace {

std::string classify_profile(double rw_ratio) {
  if (rw_ratio > 2.0) return "Read-intensive";
  if (rw_ratio < 0.5) return "Write-intensive";
  return "Balanced";
}

std::string format_ratio(double rw_ratio) {
  if (rw_ratio >= 100.0 || (rw_ratio > 0 && rw_ratio < 0.1)) {
    const int exp = static_cast<int>(std::floor(std::log10(rw_ratio)));
    const double mant = rw_ratio / std::pow(10.0, exp);
    return strfmt("%.1f x 10^%d", mant, exp);
  }
  return strfmt("%.2f", rw_ratio);
}

std::string render_table1(const std::vector<AppCensus>& apps) {
  std::ostringstream os;
  os << strfmt("%-14s %-12s %-22s %12s %12s %14s %-16s\n", "Platform", "Application",
               "Usage", "Total reads", "Total writes", "R/W ratio", "Profile");
  os << std::string(108, '-') << '\n';
  for (const auto& a : apps) {
    const double ratio =
        a.census.bytes_written == 0
            ? static_cast<double>(a.census.bytes_read)
            : static_cast<double>(a.census.bytes_read) /
                  static_cast<double>(a.census.bytes_written);
    os << strfmt("%-14s %-12s %-22s %12s %12s %14s %-16s\n", a.platform.c_str(),
                 a.name.c_str(), a.usage.c_str(),
                 format_bytes(a.census.bytes_read).c_str(),
                 format_bytes(a.census.bytes_written).c_str(), format_ratio(ratio).c_str(),
                 classify_profile(ratio).c_str());
  }
  return os.str();
}

namespace {
std::string bar(double pct, std::size_t width = 40) {
  const auto n = static_cast<std::size_t>(pct / 100.0 * static_cast<double>(width) + 0.5);
  return std::string(n, '#') + std::string(width - std::min(n, width), '.');
}
}  // namespace

std::string render_call_ratio_figure(const std::string& title,
                                     const std::vector<AppCensus>& apps) {
  std::ostringstream os;
  os << title << '\n';
  os << strfmt("%-10s %10s %10s %10s %10s %12s\n", "App", "read%", "write%", "dir%",
               "other%", "total calls");
  os << std::string(68, '-') << '\n';
  for (const auto& a : apps) {
    os << strfmt("%-10s %10.2f %10.2f %10.2f %10.2f %12llu\n", a.name.c_str(),
                 a.census.category_pct(Category::file_read),
                 a.census.category_pct(Category::file_write),
                 a.census.category_pct(Category::directory),
                 a.census.category_pct(Category::other),
                 static_cast<unsigned long long>(a.census.total_calls()));
  }
  os << '\n';
  for (const auto& a : apps) {
    os << strfmt("%-10s read  |%s| %6.2f%%\n", a.name.c_str(),
                 bar(a.census.category_pct(Category::file_read)).c_str(),
                 a.census.category_pct(Category::file_read));
    os << strfmt("%-10s write |%s| %6.2f%%\n", "",
                 bar(a.census.category_pct(Category::file_write)).c_str(),
                 a.census.category_pct(Category::file_write));
  }
  return os.str();
}

std::string render_table2(const DirOpBreakdown& ops) {
  std::ostringstream os;
  os << strfmt("%-32s %-24s %16s\n", "Operation", "Action", "Operation count");
  os << std::string(74, '-') << '\n';
  os << strfmt("%-32s %-24s %16llu\n", "mkdir", "Create directory",
               static_cast<unsigned long long>(ops.mkdir));
  os << strfmt("%-32s %-24s %16llu\n", "rmdir", "Remove directory",
               static_cast<unsigned long long>(ops.rmdir));
  os << strfmt("%-32s %-24s %16llu\n", "opendir (Input data directory)",
               "Open / List directory",
               static_cast<unsigned long long>(ops.opendir_input));
  os << strfmt("%-32s %-24s %16llu\n", "opendir (Other directories)",
               "Open / List directory",
               static_cast<unsigned long long>(ops.opendir_other));
  return os.str();
}

std::string render_census_detail(const std::string& name, const Census& c) {
  std::ostringstream os;
  os << "census[" << name << "]:";
  for (std::size_t i = 0; i < kOpKindCount; ++i) {
    if (c.op_counts[i] == 0) continue;
    os << ' ' << to_string(static_cast<OpKind>(i)) << '=' << c.op_counts[i];
  }
  os << " bytes_read=" << c.bytes_read << " bytes_written=" << c.bytes_written;
  return os.str();
}

}  // namespace bsc::trace
