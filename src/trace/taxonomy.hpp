// Storage-call taxonomy of the paper's §IV.
//
// Every FileSystem call is one OpKind; each OpKind rolls up into one of the
// four categories of Figures 1-2: file reads, file writes, directory
// operations, and "other" (open/close/sync/stat/xattr/rename/... — the paper
// classifies open and unlink as file operations for the blob-mapping
// argument of §III, but the traced figures bucket everything that is neither
// a data read, a data write, nor a directory operation under "Other").
#pragma once

#include <cstdint>
#include <string_view>

namespace bsc::trace {

enum class OpKind : std::uint8_t {
  open = 0,
  close,
  read,
  write,
  sync,
  truncate,
  unlink,
  mkdir,
  rmdir,
  readdir,
  stat,
  rename,
  chmod,
  getxattr,
  setxattr,
  kCount_,
};
inline constexpr std::size_t kOpKindCount = static_cast<std::size_t>(OpKind::kCount_);

enum class Category : std::uint8_t {
  file_read = 0,
  file_write,
  directory,
  other,
  kCount_,
};
inline constexpr std::size_t kCategoryCount = static_cast<std::size_t>(Category::kCount_);

constexpr Category classify(OpKind op) noexcept {
  switch (op) {
    case OpKind::read:
      return Category::file_read;
    case OpKind::write:
      return Category::file_write;
    case OpKind::mkdir:
    case OpKind::rmdir:
    case OpKind::readdir:
      return Category::directory;
    default:
      return Category::other;
  }
}

constexpr std::string_view to_string(OpKind op) noexcept {
  switch (op) {
    case OpKind::open: return "open";
    case OpKind::close: return "close";
    case OpKind::read: return "read";
    case OpKind::write: return "write";
    case OpKind::sync: return "sync";
    case OpKind::truncate: return "truncate";
    case OpKind::unlink: return "unlink";
    case OpKind::mkdir: return "mkdir";
    case OpKind::rmdir: return "rmdir";
    case OpKind::readdir: return "readdir";
    case OpKind::stat: return "stat";
    case OpKind::rename: return "rename";
    case OpKind::chmod: return "chmod";
    case OpKind::getxattr: return "getxattr";
    case OpKind::setxattr: return "setxattr";
    case OpKind::kCount_: break;
  }
  return "?";
}

constexpr std::string_view to_string(Category c) noexcept {
  switch (c) {
    case Category::file_read: return "file_read";
    case Category::file_write: return "file_write";
    case Category::directory: return "directory";
    case Category::other: return "other";
    case Category::kCount_: break;
  }
  return "?";
}

}  // namespace bsc::trace
