#include "trace/tracing_fs.hpp"

namespace bsc::trace {

Result<vfs::FileHandle> TracingFs::open(const vfs::IoCtx& ctx, std::string_view path,
                                        vfs::OpenFlags flags, vfs::Mode mode) {
  const SimMicros t0 = ctx.now();
  auto r = inner_->open(ctx, path, flags, mode);
  note(OpKind::open, 0, ctx, t0, r.ok(), path);
  return r;
}

Status TracingFs::close(const vfs::IoCtx& ctx, vfs::FileHandle fh) {
  const SimMicros t0 = ctx.now();
  auto r = inner_->close(ctx, fh);
  note(OpKind::close, 0, ctx, t0, r.ok(), {});
  return r;
}

Result<Bytes> TracingFs::read(const vfs::IoCtx& ctx, vfs::FileHandle fh,
                              std::uint64_t offset, std::uint64_t len) {
  const SimMicros t0 = ctx.now();
  auto r = inner_->read(ctx, fh, offset, len);
  note(OpKind::read, r.ok() ? r.value().size() : 0, ctx, t0, r.ok(), {});
  return r;
}

Result<std::uint64_t> TracingFs::write(const vfs::IoCtx& ctx, vfs::FileHandle fh,
                                       std::uint64_t offset, ByteView data) {
  const SimMicros t0 = ctx.now();
  auto r = inner_->write(ctx, fh, offset, data);
  note(OpKind::write, r.ok() ? r.value() : 0, ctx, t0, r.ok(), {});
  return r;
}

Status TracingFs::sync(const vfs::IoCtx& ctx, vfs::FileHandle fh) {
  const SimMicros t0 = ctx.now();
  auto r = inner_->sync(ctx, fh);
  note(OpKind::sync, 0, ctx, t0, r.ok(), {});
  return r;
}

Status TracingFs::truncate(const vfs::IoCtx& ctx, std::string_view path,
                           std::uint64_t new_size) {
  const SimMicros t0 = ctx.now();
  auto r = inner_->truncate(ctx, path, new_size);
  note(OpKind::truncate, 0, ctx, t0, r.ok(), path);
  return r;
}

Status TracingFs::unlink(const vfs::IoCtx& ctx, std::string_view path) {
  const SimMicros t0 = ctx.now();
  auto r = inner_->unlink(ctx, path);
  note(OpKind::unlink, 0, ctx, t0, r.ok(), path);
  return r;
}

Status TracingFs::mkdir(const vfs::IoCtx& ctx, std::string_view path, vfs::Mode mode) {
  const SimMicros t0 = ctx.now();
  auto r = inner_->mkdir(ctx, path, mode);
  note(OpKind::mkdir, 0, ctx, t0, r.ok(), path);
  return r;
}

Status TracingFs::rmdir(const vfs::IoCtx& ctx, std::string_view path) {
  const SimMicros t0 = ctx.now();
  auto r = inner_->rmdir(ctx, path);
  note(OpKind::rmdir, 0, ctx, t0, r.ok(), path);
  return r;
}

Result<std::vector<vfs::DirEntry>> TracingFs::readdir(const vfs::IoCtx& ctx,
                                                      std::string_view path) {
  const SimMicros t0 = ctx.now();
  auto r = inner_->readdir(ctx, path);
  note(OpKind::readdir, 0, ctx, t0, r.ok(), path);
  return r;
}

Result<vfs::FileInfo> TracingFs::stat(const vfs::IoCtx& ctx, std::string_view path) {
  const SimMicros t0 = ctx.now();
  auto r = inner_->stat(ctx, path);
  note(OpKind::stat, 0, ctx, t0, r.ok(), path);
  return r;
}

Status TracingFs::rename(const vfs::IoCtx& ctx, std::string_view from,
                         std::string_view to) {
  const SimMicros t0 = ctx.now();
  auto r = inner_->rename(ctx, from, to);
  note(OpKind::rename, 0, ctx, t0, r.ok(), from);
  return r;
}

Status TracingFs::chmod(const vfs::IoCtx& ctx, std::string_view path, vfs::Mode mode) {
  const SimMicros t0 = ctx.now();
  auto r = inner_->chmod(ctx, path, mode);
  note(OpKind::chmod, 0, ctx, t0, r.ok(), path);
  return r;
}

Result<std::string> TracingFs::getxattr(const vfs::IoCtx& ctx, std::string_view path,
                                        std::string_view name) {
  const SimMicros t0 = ctx.now();
  auto r = inner_->getxattr(ctx, path, name);
  note(OpKind::getxattr, 0, ctx, t0, r.ok(), path);
  return r;
}

Status TracingFs::setxattr(const vfs::IoCtx& ctx, std::string_view path,
                           std::string_view name, std::string_view value) {
  const SimMicros t0 = ctx.now();
  auto r = inner_->setxattr(ctx, path, name, value);
  note(OpKind::setxattr, 0, ctx, t0, r.ok(), path);
  return r;
}

}  // namespace bsc::trace
