#include "spark/engine.hpp"

#include <algorithm>
#include <mutex>

#include "common/hash.hpp"
#include "common/strings.hpp"

namespace bsc::spark {

SparkCluster::SparkCluster(vfs::FileSystem& fs, sim::Cluster& sim_cluster, ThreadPool& pool,
                           SparkConfig cfg)
    : fs_(&fs), sim_cluster_(&sim_cluster), pool_(&pool), cfg_(std::move(cfg)) {}

Status SparkCluster::setup(sim::SimAgent& agent) {
  vfs::IoCtx ctx{&agent, 1000, 1000};
  // The user's home chain (/user/<name>) is provisioned by the platform,
  // outside the traced application activity.
  vfs::IoCtx untraced{nullptr, 0, 0};
  // setup() is called on the *traced* fs by the runner after provisioning;
  // here we only create the three session directories Spark itself makes:
  // the staging base, the event-log base and the SQL warehouse.
  auto st = fs_->mkdir(ctx, cfg_.staging_base);
  if (!st.ok()) return st;
  st = fs_->mkdir(ctx, cfg_.log_base);
  if (!st.ok()) return st;
  st = fs_->mkdir(ctx, "/spark-warehouse");
  if (!st.ok()) return st;
  (void)untraced;
  return Status::success();
}

Status SparkCluster::teardown(sim::SimAgent& agent) {
  vfs::IoCtx ctx{&agent, 1000, 1000};
  auto st = fs_->rmdir(ctx, "/spark-warehouse");
  if (!st.ok()) return st;
  st = fs_->rmdir(ctx, cfg_.log_base);
  if (!st.ok()) return st;
  return fs_->rmdir(ctx, cfg_.staging_base);
}

SparkApp::SparkApp(SparkCluster& cluster, std::string name, std::uint32_t app_id)
    : cluster_(&cluster),
      name_(std::move(name)),
      app_id_(app_id),
      rng_(cluster.config().seed ^ (0x5a17ULL * app_id)) {
  const std::string app_tag = strfmt("application_%04u", app_id_);
  staging_dir_ = join_path(cluster_->config().staging_base, app_tag);
  log_dir_ = join_path(cluster_->config().log_base, app_tag);
  event_log_path_ = join_path(log_dir_, "events.log");
}

Status SparkApp::submit(sim::SimAgent& driver) {
  vfs::FileSystem& fs = cluster_->fs();
  vfs::IoCtx ctx{&driver, 1000, 1000};
  const SparkConfig& cfg = cluster_->config();

  // Staging directory + jar upload (framework jar, application jar).
  auto st = fs.mkdir(ctx, staging_dir_);
  if (!st.ok()) return st;
  const Bytes spark_jar = make_payload(cfg.seed ^ 0x7a51, 0, cfg.framework_jar_bytes);
  st = vfs::write_file(fs, ctx, join_path(staging_dir_, "__spark_libs__.jar"),
                       as_view(spark_jar), 64 * 1024);
  if (!st.ok()) return st;
  const Bytes app_jar = make_payload(cfg.seed ^ app_id_, 0, cfg.app_jar_bytes);
  st = vfs::write_file(fs, ctx, join_path(staging_dir_, name_ + ".jar"),
                       as_view(app_jar), 64 * 1024);
  if (!st.ok()) return st;

  // Per-application log tree: app dir + one dir per container.
  st = fs.mkdir(ctx, log_dir_);
  if (!st.ok()) return st;
  st = fs.mkdir(ctx, join_path(log_dir_, "driver"));
  if (!st.ok()) return st;
  for (std::uint32_t e = 1; e <= cfg.executors; ++e) {
    st = fs.mkdir(ctx, join_path(log_dir_, strfmt("executor-%u", e)));
    if (!st.ok()) return st;
  }

  // Event log: opened for the lifetime of the application.
  auto fh = fs.open(ctx, event_log_path_, {.write = true, .create = true});
  if (!fh.ok()) return fh.error();
  event_log_ = fh.value();
  event_pos_ = 0;
  return append_event(driver, "SparkListenerApplicationStart");
}

Status SparkApp::append_event(sim::SimAgent& driver, std::string_view what) {
  vfs::IoCtx ctx{&driver, 1000, 1000};
  const std::string line =
      strfmt("{\"event\":\"%.*s\",\"app\":\"%s\"}\n", static_cast<int>(what.size()),
             what.data(), name_.c_str());
  auto w = cluster_->fs().write(ctx, event_log_, event_pos_, as_view(to_bytes(line)));
  if (!w.ok()) return w.error();
  event_pos_ += w.value();
  return Status::success();
}

Result<std::vector<InputSplit>> SparkApp::plan_input(sim::SimAgent& driver,
                                                     std::string_view dir,
                                                     std::uint64_t split_bytes) {
  vfs::FileSystem& fs = cluster_->fs();
  vfs::IoCtx ctx{&driver, 1000, 1000};
  // The single input-data directory listing of Table II.
  auto entries = fs.readdir(ctx, dir);
  if (!entries.ok()) return entries.error();
  cluster_->count_input_listing();
  std::vector<InputSplit> splits;
  for (const auto& e : entries.value()) {
    if (e.type != vfs::FileType::regular) continue;
    const std::string path = join_path(dir, e.name);
    auto info = fs.stat(ctx, path);
    if (!info.ok()) return info.error();
    for (std::uint64_t off = 0; off < info.value().size; off += split_bytes) {
      splits.push_back(
          {path, off, std::min(split_bytes, info.value().size - off)});
    }
    if (info.value().size == 0) splits.push_back({path, 0, 0});
  }
  return splits;
}

Status SparkApp::run_stage(sim::SimAgent& driver, std::string_view stage_name,
                           std::uint32_t tasks,
                           const std::function<Status(TaskContext&)>& body) {
  auto st = append_event(driver, strfmt("SparkListenerStageSubmitted:%.*s",
                                        static_cast<int>(stage_name.size()),
                                        stage_name.data()));
  if (!st.ok()) return st;

  // Task launch overhead on the driver, then fan out over the executor pool.
  driver.charge(200);
  std::vector<sim::SimAgent> agents(tasks, driver.fork());
  std::mutex fail_mu;
  Status failure = Status::success();
  cluster_->pool().parallel_for(tasks, [&](std::size_t i) {
    TaskContext tc;
    tc.task_id = static_cast<std::uint32_t>(i);
    tc.fs = &cluster_->fs();
    tc.io = vfs::IoCtx{&agents[i], 1000, 1000};
    tc.rng = Rng(cluster_->config().seed ^ hash_combine(app_id_, i));
    auto ts = body(tc);
    if (!ts.ok()) {
      std::scoped_lock lk(fail_mu);
      if (failure.ok()) failure = ts;
    }
  });
  for (const auto& a : agents) driver.join(a);
  if (!failure.ok()) return failure;
  return append_event(driver, "SparkListenerStageCompleted");
}

void SparkApp::charge_shuffle(sim::SimAgent& driver, std::uint64_t bytes) {
  // All-to-all exchange across executors: each executor ships and receives
  // bytes/executors; the stage waits for the slowest lane. Shuffle blocks
  // live on executor-local disks, so no storage calls are issued here.
  const auto& net = cluster_->sim_cluster().net();
  const std::uint32_t e = std::max<std::uint32_t>(1, cluster_->config().executors);
  driver.charge(2 * net.transfer_us(bytes / e));
}

Status SparkApp::finish(sim::SimAgent& driver) {
  vfs::FileSystem& fs = cluster_->fs();
  vfs::IoCtx ctx{&driver, 1000, 1000};
  auto st = append_event(driver, "SparkListenerApplicationEnd");
  if (!st.ok()) return st;
  st = fs.close(ctx, event_log_);
  if (!st.ok()) return st;
  event_log_ = vfs::kInvalidHandle;

  // Log aggregation: merge the per-container logs into one archive file,
  // then remove the container dirs and the application log dir.
  const SparkConfig& cfg = cluster_->config();
  const std::string archive =
      join_path(cfg.archive_base, name_ + strfmt("_%04u.log", app_id_));
  Bytes merged = to_bytes(strfmt("== aggregated logs of %s ==\n", name_.c_str()));
  std::vector<std::string> container_dirs{join_path(log_dir_, "driver")};
  for (std::uint32_t e = 1; e <= cfg.executors; ++e) {
    container_dirs.push_back(join_path(log_dir_, strfmt("executor-%u", e)));
  }
  for (const auto& cdir : container_dirs) {
    // Containers may or may not have produced files; aggregate what exists.
    // Files inside container dirs are accessed by direct path (stderr/
    // stdout), not by listing — Table II's opendir(other) stays 0.
    for (const char* f : {"stdout", "stderr"}) {
      const std::string p = join_path(cdir, f);
      auto data = vfs::read_file(fs, ctx, p);
      if (data.ok()) {
        append(merged, as_view(data.value()));
        st = fs.unlink(ctx, p);
        if (!st.ok()) return st;
      }
    }
  }
  auto el = vfs::read_file(fs, ctx, event_log_path_);
  if (el.ok()) append(merged, as_view(el.value()));
  st = vfs::write_file(fs, ctx, archive, as_view(merged));
  if (!st.ok()) return st;
  st = fs.unlink(ctx, event_log_path_);
  if (!st.ok()) return st;
  for (const auto& cdir : container_dirs) {
    st = fs.rmdir(ctx, cdir);
    if (!st.ok()) return st;
  }
  st = fs.rmdir(ctx, log_dir_);
  if (!st.ok()) return st;

  // Staging cleanup: delete the jars by direct path, remove the directory.
  st = fs.unlink(ctx, join_path(staging_dir_, "__spark_libs__.jar"));
  if (!st.ok()) return st;
  st = fs.unlink(ctx, join_path(staging_dir_, name_ + ".jar"));
  if (!st.ok()) return st;
  return fs.rmdir(ctx, staging_dir_);
}

}  // namespace bsc::spark
