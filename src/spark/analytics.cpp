#include "spark/analytics.hpp"

#include <algorithm>
#include <cstring>

#include "common/strings.hpp"

namespace bsc::spark {

Bytes generate_text(std::uint64_t seed, std::uint64_t bytes, std::uint32_t vocabulary) {
  Rng rng(seed);
  Zipf zipf(vocabulary, 0.9);  // natural-ish word frequency skew
  Bytes out;
  out.reserve(bytes);
  while (out.size() < bytes) {
    const std::uint64_t word_id = zipf.sample(rng);
    const std::string word = strfmt("w%llu", static_cast<unsigned long long>(word_id));
    for (char c : word) {
      if (out.size() >= bytes) break;
      out.push_back(static_cast<std::byte>(c));
    }
    if (out.size() < bytes) {
      out.push_back(static_cast<std::byte>(rng.chance(0.1) ? '\n' : ' '));
    }
  }
  return out;
}

Bytes generate_edges(std::uint64_t seed, std::uint32_t nodes, std::uint32_t edges) {
  Rng rng(seed);
  Bytes out(static_cast<std::size_t>(edges) * 8);
  for (std::uint32_t e = 0; e < edges; ++e) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(nodes));
    const auto v = static_cast<std::uint32_t>(rng.next_below(nodes));
    std::memcpy(out.data() + e * 8ULL, &u, 4);
    std::memcpy(out.data() + e * 8ULL + 4, &v, 4);
  }
  return out;
}

Bytes generate_features(std::uint64_t seed, std::uint32_t rows, std::uint32_t features) {
  Rng rng(seed);
  Bytes out(static_cast<std::size_t>(rows) * features * 8);
  std::size_t off = 0;
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t f = 0; f < features; ++f) {
      const double v = rng.next_double() * 100.0;
      std::memcpy(out.data() + off, &v, 8);
      off += 8;
    }
  }
  return out;
}

std::uint64_t grep_count(ByteView text, std::string_view pattern) {
  if (pattern.empty() || text.size() < pattern.size()) return 0;
  std::uint64_t count = 0;
  const char* hay = reinterpret_cast<const char*>(text.data());
  std::size_t pos = 0;
  while (pos + pattern.size() <= text.size()) {
    const void* hit = std::memchr(hay + pos, pattern.front(), text.size() - pos);
    if (!hit) break;
    pos = static_cast<std::size_t>(static_cast<const char*>(hit) - hay);
    if (pos + pattern.size() > text.size()) break;
    if (std::memcmp(hay + pos, pattern.data(), pattern.size()) == 0) {
      ++count;
      pos += pattern.size();
    } else {
      ++pos;
    }
  }
  return count;
}

namespace {
constexpr bool is_space(std::byte b) noexcept {
  return b == std::byte{' '} || b == std::byte{'\n'} || b == std::byte{'\t'} ||
         b == std::byte{'\r'};
}
}  // namespace

std::uint64_t tokenize(ByteView text, Bytes* out) {
  std::uint64_t tokens = 0;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) ++i;
    const std::size_t start = i;
    while (i < text.size() && !is_space(text[i])) ++i;
    if (i > start) {
      ++tokens;
      if (out) {
        out->insert(out->end(), text.begin() + static_cast<std::ptrdiff_t>(start),
                    text.begin() + static_cast<std::ptrdiff_t>(i));
        out->push_back(std::byte{'\n'});
      }
    }
  }
  return tokens;
}

std::unordered_map<std::string, std::uint64_t> word_frequencies(ByteView text) {
  std::unordered_map<std::string, std::uint64_t> freq;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) ++i;
    const std::size_t start = i;
    while (i < text.size() && !is_space(text[i])) ++i;
    if (i > start) {
      ++freq[std::string(reinterpret_cast<const char*>(text.data()) + start, i - start)];
    }
  }
  return freq;
}

std::vector<std::uint64_t> sample_sort_keys(ByteView data, std::uint32_t stride) {
  std::vector<std::uint64_t> keys;
  if (stride == 0) stride = 1;
  for (std::size_t off = 0; off + 8 <= data.size();
       off += static_cast<std::size_t>(stride) * 8) {
    std::uint64_t k = 0;
    std::memcpy(&k, data.data() + off, 8);
    keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::uint64_t label_propagation_sweep(ByteView edges, std::vector<std::uint32_t>* labels) {
  std::uint64_t changed = 0;
  auto& lab = *labels;
  for (std::size_t off = 0; off + 8 <= edges.size(); off += 8) {
    std::uint32_t u = 0;
    std::uint32_t v = 0;
    std::memcpy(&u, edges.data() + off, 4);
    std::memcpy(&v, edges.data() + off + 4, 4);
    if (u >= lab.size() || v >= lab.size()) continue;
    const std::uint32_t m = std::min(lab[u], lab[v]);
    if (lab[u] != m) {
      lab[u] = m;
      ++changed;
    }
    if (lab[v] != m) {
      lab[v] = m;
      ++changed;
    }
  }
  return changed;
}

std::uint32_t connected_components(ByteView edges, std::uint32_t nodes) {
  std::vector<std::uint32_t> labels(nodes);
  for (std::uint32_t i = 0; i < nodes; ++i) labels[i] = i;
  while (label_propagation_sweep(edges, &labels) != 0) {
  }
  std::vector<std::uint32_t> roots = labels;
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  return static_cast<std::uint32_t>(roots.size());
}

std::vector<FeatureStats> feature_stats(ByteView rows, std::uint32_t features) {
  std::vector<FeatureStats> stats(features);
  if (features == 0) return stats;
  std::vector<double> sums(features, 0.0);
  std::uint64_t nrows = 0;
  const std::size_t row_bytes = static_cast<std::size_t>(features) * 8;
  for (std::size_t off = 0; off + row_bytes <= rows.size(); off += row_bytes) {
    for (std::uint32_t f = 0; f < features; ++f) {
      double v = 0.0;
      std::memcpy(&v, rows.data() + off + f * 8ULL, 8);
      if (nrows == 0) {
        stats[f].min = stats[f].max = v;
      } else {
        stats[f].min = std::min(stats[f].min, v);
        stats[f].max = std::max(stats[f].max, v);
      }
      sums[f] += v;
    }
    ++nrows;
  }
  for (std::uint32_t f = 0; f < features; ++f) {
    stats[f].mean = nrows ? sums[f] / static_cast<double>(nrows) : 0.0;
  }
  return stats;
}

}  // namespace bsc::spark
