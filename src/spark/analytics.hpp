// Analytics kernels and dataset generators for the Spark workload models.
//
// The traced applications come from SparkBench (§IV-A); their storage-call
// footprint is what the paper measures, but the *computation* between calls
// is real analytics. These kernels give the task bodies genuine work on the
// bytes they read: the text apps parse a generated corpus, CC runs label
// propagation over a generated edge list, DT aggregates feature statistics.
// All generators are deterministic in their seed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace bsc::spark {

// --- dataset generators -------------------------------------------------

/// Whitespace/newline-separated text with a Zipf-distributed vocabulary
/// (natural-language-ish word frequencies). Exactly `bytes` long.
[[nodiscard]] Bytes generate_text(std::uint64_t seed, std::uint64_t bytes,
                                  std::uint32_t vocabulary = 4096);

/// Edge list of a random graph over `nodes` vertices: little-endian
/// (u32 src, u32 dst) pairs, `edges` of them.
[[nodiscard]] Bytes generate_edges(std::uint64_t seed, std::uint32_t nodes,
                                   std::uint32_t edges);

/// Numeric feature rows: `rows` records of `features` little-endian doubles.
[[nodiscard]] Bytes generate_features(std::uint64_t seed, std::uint32_t rows,
                                      std::uint32_t features);

// --- kernels -------------------------------------------------------------

/// Count non-overlapping occurrences of `pattern` (Grep's inner loop).
[[nodiscard]] std::uint64_t grep_count(ByteView text, std::string_view pattern);

/// Split into whitespace-delimited tokens; returns token count and, via
/// `out` (optional), the concatenated "token\n" stream (Tokenizer's output).
std::uint64_t tokenize(ByteView text, Bytes* out);

/// Word-frequency table over the text (the classic WordCount reducer state).
[[nodiscard]] std::unordered_map<std::string, std::uint64_t> word_frequencies(
    ByteView text);

/// Sample every `stride`-th 8-byte key and return them sorted (Sort's
/// range-partitioner sampling pass).
[[nodiscard]] std::vector<std::uint64_t> sample_sort_keys(ByteView data,
                                                          std::uint32_t stride);

/// One label-propagation sweep over an edge partition: labels[v] becomes
/// min(labels[v], labels[u]) for every edge (u,v) and (v,u). Returns the
/// number of labels that changed (CC iterates until this reaches 0).
std::uint64_t label_propagation_sweep(ByteView edges,
                                      std::vector<std::uint32_t>* labels);

/// Run CC to convergence on a full edge list over `nodes` vertices;
/// returns the number of connected components.
[[nodiscard]] std::uint32_t connected_components(ByteView edges, std::uint32_t nodes);

/// Per-feature mean/min/max over feature rows (DT's split-evaluation pass).
struct FeatureStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
};
[[nodiscard]] std::vector<FeatureStats> feature_stats(ByteView rows,
                                                      std::uint32_t features);

}  // namespace bsc::spark
