// Statistics collection: streaming summaries and log-bucketed histograms.
// Used by the trace layer for call-latency distributions and by the benches
// to print the paper's tables.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace bsc {

/// Streaming count/sum/min/max/mean/variance (Welford).
class StatSummary {
 public:
  void add(double x) noexcept;
  void merge(const StatSummary& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Summarize a batch of counter readings (e.g. per-stripe lock acquisition
/// counts or per-shard cache occupancy) into a StatSummary.
[[nodiscard]] StatSummary summarize(const std::vector<std::uint64_t>& values) noexcept;

/// Histogram with power-of-two-ish buckets (2 sub-buckets per octave)
/// covering [1, ~2^62]. Approximate percentiles with bounded error.
class Histogram {
 public:
  Histogram();

  void add(std::uint64_t value) noexcept;
  void merge(const Histogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  /// Approximate p-th percentile (p in [0, 100]).
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept;
  [[nodiscard]] double mean() const noexcept;

  /// Render as "count=N mean=X p50=.. p99=.. max=..".
  [[nodiscard]] std::string summary() const;

 private:
  static std::size_t bucket_of(std::uint64_t v) noexcept;
  static std::uint64_t bucket_upper(std::size_t b) noexcept;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  std::uint64_t max_ = 0;
};

}  // namespace bsc
