// Statistics collection: streaming summaries and log-bucketed histograms.
// Used by the trace layer for call-latency distributions and by the benches
// to print the paper's tables.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace bsc {

/// Streaming count/sum/min/max/mean/variance (Welford).
class StatSummary {
 public:
  void add(double x) noexcept;
  void merge(const StatSummary& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Summarize a batch of counter readings (e.g. per-stripe lock acquisition
/// counts or per-shard cache occupancy) into a StatSummary.
[[nodiscard]] StatSummary summarize(const std::vector<std::uint64_t>& values) noexcept;

/// Histogram with power-of-two-ish buckets (2 sub-buckets per octave)
/// covering [1, ~2^62]. Approximate percentiles with bounded error.
class Histogram {
 public:
  Histogram();

  void add(std::uint64_t value) noexcept;
  void merge(const Histogram& other) noexcept;

  /// Remove an earlier snapshot's contents (bucket-wise, clamped at zero):
  /// `now.subtract(before)` leaves the distribution of what was added in
  /// between. `max()`-derived values keep the cumulative maximum — an upper
  /// bound for the interval.
  void subtract(const Histogram& earlier) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  /// Approximate p-th percentile (p in [0, 100]).
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept;
  [[nodiscard]] double mean() const noexcept;

  /// Render as "count=N mean=X p50=.. p99=.. max=..".
  [[nodiscard]] std::string summary() const;

  /// Bucket geometry, exposed for external recorders (obs::ShardedHistogram)
  /// that keep their own per-thread bucket arrays in this histogram's layout
  /// and fold them back in via accumulate(). Constexpr so recorders can size
  /// arrays and compute indices without a call.
  static constexpr int kSubBucketsLog2 = 1;  // 2 sub-buckets per octave
  static constexpr std::size_t kBucketCount = 63 << kSubBucketsLog2;

  [[nodiscard]] static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < 2) return v;  // 0 and 1 get exact buckets at the bottom
    const int octave = 63 - std::countl_zero(v);
    const auto sub = static_cast<std::size_t>((v >> (octave - kSubBucketsLog2)) &
                                              ((1u << kSubBucketsLog2) - 1));
    const auto idx = (static_cast<std::size_t>(octave) << kSubBucketsLog2) + sub;
    return idx < kBucketCount - 1 ? idx : kBucketCount - 1;
  }

  /// Merge raw parts produced against this histogram's bucket layout:
  /// bucket_counts[0..n) add bucket-wise (n may be smaller than
  /// bucket_count()), the total derives from the counts, and sum/max fold
  /// into the running aggregates.
  void accumulate(const std::uint64_t* bucket_counts, std::size_t n, double sum,
                  std::uint64_t max) noexcept;

 private:
  static std::uint64_t bucket_upper(std::size_t b) noexcept;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  std::uint64_t max_ = 0;
};

}  // namespace bsc
