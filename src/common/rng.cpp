#include "common/rng.hpp"

#include <cmath>

#include "common/hash.hpp"

namespace bsc {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // splitmix64 expansion of the seed into the xoshiro state; guarantees a
  // non-zero state for every seed including 0.
  std::uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    s = mix64(x);
  }
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept { return next_double() < p; }

double Rng::next_exponential(double mean) noexcept {
  double u = next_double();
  if (u >= 1.0) u = 0.9999999999;
  return -mean * std::log1p(-u);
}

Rng Rng::fork() noexcept { return Rng(mix64(next())); }

Zipf::Zipf(std::uint64_t n, double theta) : n_(n ? n : 1), theta_(theta) {
  alpha_ = 1.0 / (1.0 - theta_);
  zetan_ = 0.0;
  for (std::uint64_t i = 1; i <= n_; ++i) zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
  double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) / (1.0 - zeta2 / zetan_);
}

std::uint64_t Zipf::sample(Rng& rng) const noexcept {
  // Gray et al. "Quickly generating billion-record synthetic databases".
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto v = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

std::byte payload_byte(std::uint64_t seed, std::uint64_t off) noexcept {
  // One mix per 8-byte word; cheap enough to generate payloads at line rate.
  const std::uint64_t word = mix64(hash_combine(seed, off >> 3));
  return static_cast<std::byte>((word >> ((off & 7) * 8)) & 0xff);
}

Bytes make_payload(std::uint64_t seed, std::uint64_t offset, std::size_t len) {
  Bytes out(len);
  for (std::size_t i = 0; i < len; ++i) out[i] = payload_byte(seed, offset + i);
  return out;
}

bool check_payload(std::uint64_t seed, std::uint64_t offset, ByteView data) noexcept {
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] != payload_byte(seed, offset + i)) return false;
  }
  return true;
}

}  // namespace bsc
