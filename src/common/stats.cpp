#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace bsc {

void StatSummary::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StatSummary::merge(const StatSummary& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / n;
  mean_ = (mean_ * static_cast<double>(n_) + other.mean_ * static_cast<double>(other.n_)) / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

StatSummary summarize(const std::vector<std::uint64_t>& values) noexcept {
  StatSummary s;
  for (std::uint64_t v : values) s.add(static_cast<double>(v));
  return s;
}

double StatSummary::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double StatSummary::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram() : buckets_(kBucketCount, 0) {}

std::uint64_t Histogram::bucket_upper(std::size_t b) noexcept {
  if (b < 2) return b;
  const auto octave = b >> kSubBucketsLog2;
  const auto sub = b & ((1u << kSubBucketsLog2) - 1);
  return (1ULL << octave) + ((sub + 1) << (octave - kSubBucketsLog2)) - 1;
}

void Histogram::add(std::uint64_t value) noexcept {
  ++buckets_[bucket_index(value)];
  ++total_;
  sum_ += static_cast<double>(value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) noexcept {
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  total_ += other.total_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void Histogram::subtract(const Histogram& earlier) noexcept {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] -= std::min(buckets_[i], earlier.buckets_[i]);
  }
  total_ -= std::min(total_, earlier.total_);
  sum_ = std::max(0.0, sum_ - earlier.sum_);
  // max_ stays: the cumulative maximum is an upper bound for the interval
  // (the true interval max is not recoverable from bucket counts alone).
}

std::uint64_t Histogram::percentile(double p) const noexcept {
  if (total_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank is clamped to [1, total]: a rank of 0 would satisfy `seen >= rank`
  // on the very first (possibly empty) bucket, making percentile(0) report
  // bucket 0's bound even when no sample ever landed there. Rank 1 walks to
  // the first non-empty bucket instead — the true minimum bucket.
  const auto rank = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(total_))), 1,
      total_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) return std::min(bucket_upper(i), max_);
  }
  return max_;
}

void Histogram::accumulate(const std::uint64_t* bucket_counts, std::size_t n,
                           double sum, std::uint64_t max) noexcept {
  const std::size_t m = std::min(n, buckets_.size());
  for (std::size_t i = 0; i < m; ++i) {
    buckets_[i] += bucket_counts[i];
    total_ += bucket_counts[i];
  }
  sum_ += sum;
  max_ = std::max(max_, max);
}

double Histogram::mean() const noexcept {
  return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

std::string Histogram::summary() const {
  std::ostringstream os;
  os << "count=" << total_ << " mean=" << mean() << " p50=" << percentile(50)
     << " p99=" << percentile(99) << " max=" << max_;
  return os.str();
}

}  // namespace bsc
