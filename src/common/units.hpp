// Size and time unit helpers. All simulated time in this codebase is carried
// as integral microseconds (SimMicros) to keep cross-thread accounting exact.
#pragma once

#include <cstdint>
#include <string>

namespace bsc {

inline constexpr std::uint64_t KiB = 1024ULL;
inline constexpr std::uint64_t MiB = 1024ULL * KiB;
inline constexpr std::uint64_t GiB = 1024ULL * MiB;

/// Simulated time, microseconds.
using SimMicros = std::int64_t;

inline constexpr SimMicros sim_us(std::int64_t v) { return v; }
inline constexpr SimMicros sim_ms(std::int64_t v) { return v * 1000; }
inline constexpr SimMicros sim_s(std::int64_t v) { return v * 1000 * 1000; }

/// Render a byte count the way the paper's Table I does ("27.7 GB", "12.8 MB").
std::string format_bytes(std::uint64_t bytes);

/// Render simulated microseconds as a human-readable duration.
std::string format_sim_time(SimMicros us);

}  // namespace bsc
