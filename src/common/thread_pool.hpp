// Fixed-size thread pool used to run simulated compute tasks (MPI ranks,
// Spark tasks) concurrently. Tasks over threads (CP.4); the pool is created
// once per experiment and joined on destruction (CP.23/25).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace bsc {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n) across the pool and wait for all of them.
  /// Exceptions from tasks propagate (the first one) to the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace bsc
