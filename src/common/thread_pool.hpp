// Work-stealing thread pool used to run simulated compute tasks (MPI ranks,
// Spark tasks) concurrently. Tasks over threads (CP.4); the pool is created
// once per experiment and joined on destruction (CP.23/25).
//
// Each worker owns a deque guarded by its own mutex: external submissions are
// distributed round-robin, a worker pops from the front of its own deque and
// steals from the back of a victim's when it runs dry. Thousands of small
// Spark tasks therefore contend on per-worker locks instead of one global
// mutex; a shared condition variable is only touched by workers that found
// the whole pool empty.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bsc {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its completion. Tasks submitted
  /// from inside a worker go to that worker's own deque (locality); external
  /// submissions round-robin across workers.
  ///
  /// Do NOT block on the returned future from inside a worker task: a
  /// blocked worker cannot drain its own deque, and if every worker blocks
  /// on work only the pool can run, the pool deadlocks. Join from the
  /// outside, or structure nested work as fire-and-forget.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n) across the pool and wait for all of them.
  /// Exceptions from tasks propagate (the first one) to the caller.
  /// Same caveat as submit(): call from outside the pool, not from a worker.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Total tasks a worker claimed from another worker's deque (observability:
  /// a high ratio of steals/executed means the submission pattern is skewed).
  [[nodiscard]] std::uint64_t steals() const noexcept;
  [[nodiscard]] std::uint64_t tasks_executed() const noexcept;

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::packaged_task<void()>> tasks;
    std::atomic<std::uint64_t> steals{0};    ///< tasks this worker stole
    std::atomic<std::uint64_t> executed{0};  ///< tasks this worker ran
  };

  void worker_loop(std::size_t self);
  /// Pop from own deque front, else steal from the back of the next
  /// non-empty victim. Returns false when every deque is empty.
  bool try_claim(std::size_t self, std::packaged_task<void()>* out);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::atomic<std::size_t> next_queue_{0};  ///< round-robin external target
  std::atomic<std::size_t> pending_{0};     ///< queued, not yet claimed

  std::mutex sleep_mu_;
  std::condition_variable cv_;
  bool stop_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace bsc
