#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace bsc {

namespace {
std::atomic<LogLevel> g_level{LogLevel::warn};
std::mutex g_log_mu;

constexpr const char* level_name(LogLevel l) noexcept {
  switch (l) {
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, std::string_view component, std::string_view message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::scoped_lock lk(g_log_mu);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace bsc
