// Deterministic random number generation for workload models.
//
// Every workload in src/apps is seeded, so a given experiment configuration
// always produces the identical storage-call trace — a requirement for the
// census experiments (Figs 1-2, Tables I-II) to be reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace bsc {

/// xoshiro256** — fast, high-quality, deterministic. Not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform in [0, bound) — bound must be > 0. Uses Lemire reduction.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Bernoulli trial.
  bool chance(double p) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  double next_exponential(double mean) noexcept;

  /// Fork an independent stream (for per-task generators in parallel runs).
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
};

/// Zipf-distributed integer sampler over {0, .., n-1} with exponent `theta`.
/// Used for skewed access patterns (hot files / hot blobs).
class Zipf {
 public:
  Zipf(std::uint64_t n, double theta);

  std::uint64_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::uint64_t domain() const noexcept { return n_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

/// Deterministic payload: the byte at absolute offset `off` of stream `seed`.
/// Lets tests verify multi-gigabyte-scale reads without storing expected data.
[[nodiscard]] std::byte payload_byte(std::uint64_t seed, std::uint64_t off) noexcept;

/// Materialize [offset, offset+len) of the deterministic payload stream.
[[nodiscard]] Bytes make_payload(std::uint64_t seed, std::uint64_t offset, std::size_t len);

/// Verify that `data` equals the payload stream at `offset`.
[[nodiscard]] bool check_payload(std::uint64_t seed, std::uint64_t offset, ByteView data) noexcept;

}  // namespace bsc
