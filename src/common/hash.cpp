#include "common/hash.hpp"

#include <cstring>

namespace bsc {

namespace {
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
}  // namespace

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = kFnvOffset;
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a64(ByteView data) noexcept {
  std::uint64_t h = kFnvOffset;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t content_checksum(ByteView data) noexcept {
  // Four independent FNV-style lanes over 64-bit words, folded through
  // mix64. The byte-serial FNV multiply chain (~5 cycles/byte of latency)
  // was the single largest CPU cost of the blob write path — it runs under
  // the per-key lock once per replica. Word-wide lanes give the superscalar
  // core independent multiplies; any flipped bit still flips its lane.
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  const std::size_t n = data.size();
  std::uint64_t h0 = kFnvOffset;
  std::uint64_t h1 = kFnvOffset ^ 0x9e3779b97f4a7c15ULL;
  std::uint64_t h2 = kFnvOffset ^ 0xbf58476d1ce4e5b9ULL;
  std::uint64_t h3 = kFnvOffset ^ 0x94d049bb133111ebULL;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    std::uint64_t w0, w1, w2, w3;
    std::memcpy(&w0, p + i, 8);
    std::memcpy(&w1, p + i + 8, 8);
    std::memcpy(&w2, p + i + 16, 8);
    std::memcpy(&w3, p + i + 24, 8);
    h0 = (h0 ^ w0) * kFnvPrime;
    h1 = (h1 ^ w1) * kFnvPrime;
    h2 = (h2 ^ w2) * kFnvPrime;
    h3 = (h3 ^ w3) * kFnvPrime;
  }
  for (; i < n; ++i) {
    h0 ^= p[i];
    h0 *= kFnvPrime;
  }
  const std::uint64_t folded =
      mix64(h0) ^ hash_combine(mix64(h1), hash_combine(mix64(h2), mix64(h3)));
  return hash_combine(folded, mix64(n));
}

}  // namespace bsc
