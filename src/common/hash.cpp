#include "common/hash.hpp"

namespace bsc {

namespace {
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
}  // namespace

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = kFnvOffset;
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a64(ByteView data) noexcept {
  std::uint64_t h = kFnvOffset;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t content_checksum(ByteView data) noexcept {
  return hash_combine(fnv1a64(data), mix64(data.size()));
}

}  // namespace bsc
