// Minimal leveled logger. Off by default at debug level so experiments stay
// quiet; benches flip the level when narrating runs.
#pragma once

#include <string_view>

namespace bsc {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

void log(LogLevel level, std::string_view component, std::string_view message);

inline void log_debug(std::string_view c, std::string_view m) { log(LogLevel::debug, c, m); }
inline void log_info(std::string_view c, std::string_view m) { log(LogLevel::info, c, m); }
inline void log_warn(std::string_view c, std::string_view m) { log(LogLevel::warn, c, m); }
inline void log_error(std::string_view c, std::string_view m) { log(LogLevel::error, c, m); }

}  // namespace bsc
