// Lightweight Result<T> / error-code vocabulary used across all bsc modules.
//
// Storage systems in this codebase never throw across module boundaries:
// every fallible operation returns Result<T> (or Status = Result<void>).
// The error taxonomy intentionally mirrors POSIX errno names so that the
// POSIX file-system layers (src/pfs, src/hdfs, src/adapter) can map their
// failures one-to-one onto familiar codes.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace bsc {

enum class Errc {
  ok = 0,
  not_found,        // ENOENT
  already_exists,   // EEXIST
  not_a_directory,  // ENOTDIR
  is_a_directory,   // EISDIR
  not_empty,        // ENOTEMPTY
  permission,       // EACCES
  invalid_argument, // EINVAL
  out_of_range,     // offset/length outside object
  read_only,        // EROFS / write-once violation
  busy,             // EBUSY (open handles, lock conflicts)
  no_space,         // ENOSPC
  io_error,         // EIO
  unsupported,      // ENOTSUP
  conflict,         // transaction / optimistic-concurrency conflict
  closed,           // handle already closed
  timeout,          // deadline exceeded waiting for a reply (request may be lost)
  unavailable,      // peer unreachable / out of service (whole replica set, outage)
  // Appended codes only (BatchSubStatus carries Errc as a numeric u8 on the
  // wire; reordering existing values would silently re-map old payloads).
  overloaded,        // server shed the request (bounded backlog exceeded)
  deadline_exceeded, // end-to-end operation budget spent across attempts
};

/// Human-readable name for an error code (stable, used in logs and tests).
constexpr std::string_view to_string(Errc e) noexcept {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::not_a_directory: return "not_a_directory";
    case Errc::is_a_directory: return "is_a_directory";
    case Errc::not_empty: return "not_empty";
    case Errc::permission: return "permission";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::out_of_range: return "out_of_range";
    case Errc::read_only: return "read_only";
    case Errc::busy: return "busy";
    case Errc::no_space: return "no_space";
    case Errc::io_error: return "io_error";
    case Errc::unsupported: return "unsupported";
    case Errc::conflict: return "conflict";
    case Errc::closed: return "closed";
    case Errc::timeout: return "timeout";
    case Errc::unavailable: return "unavailable";
    case Errc::overloaded: return "overloaded";
    case Errc::deadline_exceeded: return "deadline_exceeded";
  }
  return "unknown";
}

/// Error value: a code plus optional context (path, key, detail).
struct Error {
  Errc code = Errc::io_error;
  std::string context;

  [[nodiscard]] std::string message() const {
    std::string m{to_string(code)};
    if (!context.empty()) {
      m += ": ";
      m += context;
    }
    return m;
  }
};

/// Result<T>: either a value or an Error. Deliberately minimal — only what
/// the storage stack needs; no monadic chaining beyond value_or/map.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}             // NOLINT(google-explicit-constructor)
  Result(Error err) : state_(std::move(err)) {}             // NOLINT(google-explicit-constructor)
  Result(Errc code, std::string context = {})               // NOLINT(google-explicit-constructor)
      : state_(Error{code, std::move(context)}) {}

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(state_); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& take() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

  [[nodiscard]] const Error& error() const& {
    assert(!ok());
    return std::get<Error>(state_);
  }
  [[nodiscard]] Errc code() const noexcept {
    return ok() ? Errc::ok : std::get<Error>(state_).code;
  }

 private:
  std::variant<T, Error> state_;
};

/// Status: Result for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  Status(Error err) : err_(std::move(err)) {}  // NOLINT(google-explicit-constructor)
  Status(Errc code, std::string context = {}) {  // NOLINT(google-explicit-constructor)
    if (code != Errc::ok) err_ = Error{code, std::move(context)};
  }

  [[nodiscard]] bool ok() const noexcept { return !err_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const Error& error() const& {
    assert(!ok());
    return *err_;
  }
  [[nodiscard]] Errc code() const noexcept { return ok() ? Errc::ok : err_->code; }
  [[nodiscard]] std::string message() const { return ok() ? "ok" : err_->message(); }

  static Status success() { return {}; }

 private:
  std::optional<Error> err_;
};

}  // namespace bsc
