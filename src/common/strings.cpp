#include "common/strings.hpp"

#include <cstdarg>
#include <cstdio>

#include "common/units.hpp"

namespace bsc {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.push_back(sep);
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string normalize_path(std::string_view path) {
  std::vector<std::string> stack;
  for (const auto& part : split(path, '/')) {
    if (part.empty() || part == ".") continue;
    if (part == "..") {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    stack.push_back(part);
  }
  if (stack.empty()) return "/";
  std::string out;
  for (const auto& p : stack) {
    out.push_back('/');
    out += p;
  }
  return out;
}

std::vector<std::string> path_components(std::string_view path) {
  std::vector<std::string> out;
  for (const auto& part : split(path, '/')) {
    if (!part.empty() && part != ".") out.push_back(part);
  }
  return out;
}

std::string parent_path(std::string_view path) {
  const std::string norm = normalize_path(path);
  const auto pos = norm.find_last_of('/');
  if (pos == 0) return "/";
  return norm.substr(0, pos);
}

std::string base_name(std::string_view path) {
  const std::string norm = normalize_path(path);
  if (norm == "/") return "";
  return norm.substr(norm.find_last_of('/') + 1);
}

std::string join_path(std::string_view dir, std::string_view child) {
  std::string out{dir};
  if (out.empty() || out.back() != '/') out.push_back('/');
  while (!child.empty() && child.front() == '/') child.remove_prefix(1);
  out += child;
  return normalize_path(out);
}

std::string strfmt(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string format_bytes(std::uint64_t bytes) {
  const auto b = static_cast<double>(bytes);
  if (bytes >= GiB) return strfmt("%.1f GB", b / static_cast<double>(GiB));
  if (bytes >= MiB) return strfmt("%.1f MB", b / static_cast<double>(MiB));
  if (bytes >= KiB) return strfmt("%.1f KB", b / static_cast<double>(KiB));
  return strfmt("%llu B", static_cast<unsigned long long>(bytes));
}

std::string csv_field(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quoting) return std::string{field};
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string format_sim_time(SimMicros us) {
  if (us >= 1000LL * 1000 * 60) return strfmt("%.2f min", static_cast<double>(us) / 60e6);
  if (us >= 1000LL * 1000) return strfmt("%.2f s", static_cast<double>(us) / 1e6);
  if (us >= 1000) return strfmt("%.2f ms", static_cast<double>(us) / 1e3);
  return strfmt("%lld us", static_cast<long long>(us));
}

}  // namespace bsc
