// Hashing primitives used by the blob placement ring, block maps, and
// deterministic payload generation/verification.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"

namespace bsc {

/// FNV-1a 64-bit — stable, endian-independent; used for key → ring placement.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view s) noexcept;
[[nodiscard]] std::uint64_t fnv1a64(ByteView data) noexcept;

/// 64-bit avalanche mixer (splitmix64 finalizer). Used to derive independent
/// hash streams (e.g., replica ranks on the ring) from one base hash.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two 64-bit hashes (boost-style).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

/// Content checksum for integrity verification in the storage engines.
/// Word-wide multi-lane FNV folded through mix64 — computed under per-key
/// locks on the write path, so throughput matters. The value is only ever
/// compared within one process run; the algorithm may change across versions.
[[nodiscard]] std::uint64_t content_checksum(ByteView data) noexcept;

}  // namespace bsc
