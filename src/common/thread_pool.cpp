#include "common/thread_pool.hpp"

#include <algorithm>

namespace bsc {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  {
    std::scoped_lock lk(mu_);
    queue_.push_back(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futs;
  futs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futs.push_back(submit([&fn, i] { fn(i); }));
  }
  // get() (not wait()) so that a task exception propagates to the caller.
  for (auto& f : futs) f.get();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ must be true
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace bsc
