#include "common/thread_pool.hpp"

#include <algorithm>

namespace bsc {

namespace {
/// Identity of the current thread within its pool, for locality-aware submit.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_worker = 0;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) queues_.push_back(std::make_unique<Worker>());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lk(sleep_mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  // A worker submitting new work keeps it local; external threads spread
  // submissions round-robin. Stealing rebalances either way.
  const std::size_t target =
      tl_pool == this ? tl_worker
                      : next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::scoped_lock lk(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(pt));
  }
  pending_.fetch_add(1, std::memory_order_release);
  // Empty critical section: a worker between its wait-predicate check and
  // blocking still holds sleep_mu_, so locking here (then notifying) cannot
  // slip into that window — no lost wakeup.
  { std::scoped_lock lk(sleep_mu_); }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futs;
  futs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futs.push_back(submit([&fn, i] { fn(i); }));
  }
  // get() (not wait()) so that a task exception propagates to the caller.
  for (auto& f : futs) f.get();
}

std::uint64_t ThreadPool::steals() const noexcept {
  std::uint64_t total = 0;
  for (const auto& q : queues_) total += q->steals.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t ThreadPool::tasks_executed() const noexcept {
  std::uint64_t total = 0;
  for (const auto& q : queues_) total += q->executed.load(std::memory_order_relaxed);
  return total;
}

bool ThreadPool::try_claim(std::size_t self, std::packaged_task<void()>* out) {
  // Own deque first (front: FIFO within a worker), then sweep the victims
  // from the back (the work least likely to be cache-warm at its owner).
  {
    Worker& own = *queues_[self];
    std::scoped_lock lk(own.mu);
    if (!own.tasks.empty()) {
      *out = std::move(own.tasks.front());
      own.tasks.pop_front();
      own.executed.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    const std::size_t victim = (self + k) % queues_.size();
    Worker& v = *queues_[victim];
    std::scoped_lock lk(v.mu);  // never hold two deque locks at once
    if (!v.tasks.empty()) {
      *out = std::move(v.tasks.back());
      v.tasks.pop_back();
      Worker& own = *queues_[self];
      own.steals.fetch_add(1, std::memory_order_relaxed);
      own.executed.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  tl_pool = this;
  tl_worker = self;
  for (;;) {
    std::packaged_task<void()> task;
    if (try_claim(self, &task)) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      task();
      continue;
    }
    std::unique_lock lk(sleep_mu_);
    if (stop_ && pending_.load(std::memory_order_acquire) == 0) return;
    cv_.wait(lk, [this] { return stop_ || pending_.load(std::memory_order_acquire) > 0; });
    if (stop_ && pending_.load(std::memory_order_acquire) == 0) return;
  }
}

}  // namespace bsc
