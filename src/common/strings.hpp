// Small string/path helpers shared by the namespace implementations.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bsc {

[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);
[[nodiscard]] std::string join(const std::vector<std::string>& parts, char sep);
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Normalize an absolute POSIX path: collapse "//", resolve "." and "..",
/// strip trailing slash (except for "/"). Returns "/" for empty input.
[[nodiscard]] std::string normalize_path(std::string_view path);

/// Split a normalized absolute path into components ("/a/b" -> {"a","b"}).
[[nodiscard]] std::vector<std::string> path_components(std::string_view path);

/// Parent directory of a normalized absolute path ("/a/b" -> "/a", "/" -> "/").
[[nodiscard]] std::string parent_path(std::string_view path);

/// Final component of a normalized absolute path ("/a/b" -> "b", "/" -> "").
[[nodiscard]] std::string base_name(std::string_view path);

/// Join a directory and a child name with exactly one slash.
[[nodiscard]] std::string join_path(std::string_view dir, std::string_view child);

/// printf-style formatting into std::string.
[[nodiscard]] std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// RFC-4180 CSV field encoding: a field containing a comma, a double quote,
/// or a line break is wrapped in double quotes with embedded quotes doubled;
/// anything else passes through verbatim.
[[nodiscard]] std::string csv_field(std::string_view field);

}  // namespace bsc
