// Byte-buffer vocabulary types shared by every storage layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bsc {

using Bytes = std::vector<std::byte>;
using ByteView = std::span<const std::byte>;
using MutableByteView = std::span<std::byte>;

inline Bytes to_bytes(std::string_view s) {
  Bytes b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

inline std::string to_string(ByteView b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

inline ByteView as_view(const Bytes& b) noexcept { return {b.data(), b.size()}; }

inline ByteView subview(ByteView b, std::size_t offset, std::size_t len) noexcept {
  if (offset >= b.size()) return {};
  return b.subspan(offset, std::min(len, b.size() - offset));
}

inline bool equal(ByteView a, ByteView b) noexcept {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

/// Append `src` to `dst`.
inline void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Write `src` into `dst` at `offset`, growing `dst` (zero-filled) if needed.
/// This is the semantic core of random-access object writes.
inline void write_at(Bytes& dst, std::size_t offset, ByteView src) {
  if (offset + src.size() > dst.size()) dst.resize(offset + src.size());
  if (!src.empty()) std::memcpy(dst.data() + offset, src.data(), src.size());
}

}  // namespace bsc
