#include "mpiio/communicator.hpp"

#include <bit>
#include <utility>

namespace bsc::mpiio {

Communicator::Communicator(std::uint32_t size, const sim::NetModel& net)
    : size_(size ? size : 1),
      net_(&net),
      bar_(static_cast<std::ptrdiff_t>(size_), [this] {
        // Completion runs exactly once per phase, after all ranks arrived
        // and before any is released: publish the phase maximum and stage
        // the gathered pieces, then clear the accumulators for the next
        // phase. Published values stay stable until every rank re-enters
        // a later phase, which cannot happen before it has read them.
        max_published_ = max_pending_;
        max_pending_ = 0;
        gather_out_ = std::move(gather_buf_);
        gather_buf_.clear();
        gather_bytes_published_ = gather_bytes_total_;
        gather_bytes_total_ = 0;
        ag_out_ = std::move(ag_buf_);
        ag_buf_.assign(size_, 0);
      }) {
  ag_buf_.assign(size_, 0);
}

std::vector<std::uint64_t> Communicator::allgather_u64(std::uint32_t rank,
                                                       sim::SimAgent& agent,
                                                       std::uint64_t value) {
  {
    std::scoped_lock lk(mu_);
    max_pending_ = std::max(max_pending_, agent.now());
    if (ag_buf_.size() != size_) ag_buf_.assign(size_, 0);
    ag_buf_[rank] = value;
  }
  bar_.arrive_and_wait();
  // Ring/recursive-doubling cost, like the barrier plus one word per rank.
  agent.advance_to(max_published_ + barrier_cost() +
                   net_->transfer_us(8ULL * size_));
  std::scoped_lock lk(mu_);
  return ag_out_;
}

SimMicros Communicator::barrier_cost() const noexcept {
  const auto rounds = static_cast<SimMicros>(std::bit_width(size_ - 1));
  return rounds * net_->profile().rtt_us;
}

void Communicator::barrier(sim::SimAgent& agent) {
  {
    std::scoped_lock lk(mu_);
    max_pending_ = std::max(max_pending_, agent.now());
  }
  bar_.arrive_and_wait();
  agent.advance_to(max_published_ + barrier_cost());
}

std::vector<Communicator::Piece> Communicator::gather_pieces(std::uint32_t rank,
                                                             sim::SimAgent& agent,
                                                             Piece piece) {
  const std::uint64_t bytes = piece.data.size();
  {
    std::scoped_lock lk(mu_);
    max_pending_ = std::max(max_pending_, agent.now() + net_->transfer_us(bytes));
    gather_bytes_total_ += bytes;
    gather_buf_.push_back(std::move(piece));
  }
  // Senders pay their own transfer before blocking.
  agent.charge(net_->transfer_us(rank == 0 ? 0 : bytes));
  bar_.arrive_and_wait();
  agent.advance_to(max_published_);
  std::vector<Piece> out;
  if (rank == 0) {
    {
      std::scoped_lock lk(mu_);
      out = std::move(gather_out_);
    }
    // Root additionally pays the serialized share of the aggregate receive.
    agent.charge(net_->transfer_us(gather_bytes_published_) /
                 std::max<std::uint32_t>(1, size_));
  }
  return out;
}

}  // namespace bsc::mpiio
