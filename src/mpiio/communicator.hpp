// A minimal MPI-like communicator for the workload models: real threads are
// the ranks; barriers synchronize both the threads (std::barrier) and their
// simulated clocks (everyone advances to the latest arrival plus the
// simulated cost of the barrier's reduction tree).
#pragma once

#include <barrier>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/bytes.hpp"
#include "sim/net_model.hpp"
#include "sim/sim_clock.hpp"

namespace bsc::mpiio {

class Communicator {
 public:
  /// `net` models the interconnect used for barriers/exchanges.
  Communicator(std::uint32_t size, const sim::NetModel& net);

  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }

  /// MPI_Barrier: blocks the calling thread until all ranks arrive; advances
  /// every agent to the slowest arrival plus a log2(n) reduction-tree cost.
  void barrier(sim::SimAgent& agent);

  /// Gather (offset, payload) pairs at rank 0 — the data exchange of
  /// two-phase collective I/O. Every rank must call it. Returns, at rank 0
  /// only, all deposited pieces; other ranks get an empty vector. Charges
  /// the senders their transfer cost and rank 0 the receive cost.
  struct Piece {
    std::uint32_t rank = 0;
    std::uint64_t offset = 0;
    Bytes data;
  };
  std::vector<Piece> gather_pieces(std::uint32_t rank, sim::SimAgent& agent, Piece piece);

  /// Allgather of one u64 per rank (e.g. local block sizes for offset
  /// coordination). Returns the vector indexed by rank, on every rank.
  std::vector<std::uint64_t> allgather_u64(std::uint32_t rank, sim::SimAgent& agent,
                                           std::uint64_t value);

  [[nodiscard]] SimMicros barrier_cost() const noexcept;

 private:
  std::uint32_t size_;
  const sim::NetModel* net_;

  std::mutex mu_;
  SimMicros max_pending_ = 0;
  SimMicros max_published_ = 0;
  std::vector<Piece> gather_buf_;
  std::vector<Piece> gather_out_;
  std::vector<std::uint64_t> ag_buf_;
  std::vector<std::uint64_t> ag_out_;
  std::uint64_t gather_bytes_total_ = 0;
  std::uint64_t gather_bytes_published_ = 0;
  std::barrier<std::function<void()>> bar_;
};

}  // namespace bsc::mpiio
