// MPI-IO-style file access library (the stack HPC applications actually
// program against — §II-A). Key properties the paper leans on:
//
//   * the API exposes *only* file data operations — no directory listings,
//     no permissions, no hierarchy; exactly the surface a blob store covers;
//   * semantics are relaxed: a write is only guaranteed visible to other
//     ranks after sync/close (our backends may be stronger; the library
//     never *requires* more);
//   * collective I/O (two-phase): ranks exchange pieces and an aggregator
//     issues large contiguous writes — fewer, bigger storage calls.
//
// One MpiIo facade per rank; all ranks of a communicator share a
// CollectiveContext created by MpiIo::make_shared_state.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.hpp"
#include "mpiio/communicator.hpp"
#include "vfs/file_system.hpp"

namespace bsc::mpiio {

/// MPI_MODE_* subset.
struct AccessMode {
  bool rdonly = false;
  bool wronly = false;
  bool rdwr = false;
  bool create = false;
  bool excl = false;
  bool append = false;

  static AccessMode read_only() { return {.rdonly = true}; }
  static AccessMode write_create() { return {.wronly = true, .create = true}; }
  static AccessMode rdwr_create() { return {.rdwr = true, .create = true}; }
};

/// Per-rank MPI-IO facade.
class MpiIo {
 public:
  MpiIo(Communicator& comm, std::uint32_t rank, vfs::FileSystem& fs, vfs::IoCtx ctx)
      : comm_(&comm), rank_(rank), fs_(&fs), ctx_(ctx) {}

  [[nodiscard]] std::uint32_t rank() const noexcept { return rank_; }
  [[nodiscard]] Communicator& comm() noexcept { return *comm_; }
  [[nodiscard]] vfs::IoCtx& ctx() noexcept { return ctx_; }

  /// MPI_File_open — collective: all ranks call, each gets its own handle.
  Result<vfs::FileHandle> file_open(std::string_view path, AccessMode amode);
  /// MPI_File_close — collective.
  Status file_close(vfs::FileHandle fh);
  /// MPI_File_sync — collective; after it, all prior writes are visible.
  Status file_sync(vfs::FileHandle fh);

  /// MPI_File_set_view (displacement only; etype is bytes).
  void set_view(vfs::FileHandle fh, std::uint64_t displacement) {
    displacement_ = displacement;
    viewed_handle_ = fh;
  }

  /// Independent I/O.
  Result<Bytes> read_at(vfs::FileHandle fh, std::uint64_t offset, std::uint64_t len);
  Result<std::uint64_t> write_at(vfs::FileHandle fh, std::uint64_t offset, ByteView data);

  /// Collective I/O (two-phase): all ranks call with their own piece;
  /// rank 0 aggregates contiguous runs and issues the storage writes.
  Result<std::uint64_t> write_at_all(vfs::FileHandle fh, std::uint64_t offset,
                                     ByteView data);
  /// Collective read: all ranks call; reads stay independent (ROMIO skips
  /// aggregation when ranges are disjoint) but ranks synchronize.
  Result<Bytes> read_at_all(vfs::FileHandle fh, std::uint64_t offset, std::uint64_t len);

 private:
  [[nodiscard]] std::uint64_t viewed(vfs::FileHandle fh, std::uint64_t offset) const {
    return offset + (fh == viewed_handle_ ? displacement_ : 0);
  }

  Communicator* comm_;
  std::uint32_t rank_;
  vfs::FileSystem* fs_;
  vfs::IoCtx ctx_;
  std::uint64_t displacement_ = 0;
  vfs::FileHandle viewed_handle_ = vfs::kInvalidHandle;
};

}  // namespace bsc::mpiio
