#include "mpiio/mpi_file.hpp"

#include <algorithm>

namespace bsc::mpiio {

namespace {
vfs::OpenFlags to_flags(AccessMode m) {
  vfs::OpenFlags f;
  f.read = m.rdonly || m.rdwr;
  f.write = m.wronly || m.rdwr;
  f.create = m.create;
  f.exclusive = m.excl;
  f.append = m.append;
  // MPI-IO has no O_TRUNC: files are truncated explicitly via
  // MPI_File_set_size, never implicitly on open.
  f.truncate = false;
  return f;
}
}  // namespace

Result<vfs::FileHandle> MpiIo::file_open(std::string_view path, AccessMode amode) {
  comm_->barrier(*ctx_.agent);
  auto fh = fs_->open(ctx_, path, to_flags(amode), vfs::kDefaultFileMode);
  // Collective completion: nobody proceeds until every rank's open landed.
  comm_->barrier(*ctx_.agent);
  return fh;
}

Status MpiIo::file_close(vfs::FileHandle fh) {
  auto st = fs_->close(ctx_, fh);
  comm_->barrier(*ctx_.agent);
  return st;
}

Status MpiIo::file_sync(vfs::FileHandle fh) {
  auto st = fs_->sync(ctx_, fh);
  comm_->barrier(*ctx_.agent);
  return st;
}

Result<Bytes> MpiIo::read_at(vfs::FileHandle fh, std::uint64_t offset, std::uint64_t len) {
  return fs_->read(ctx_, fh, viewed(fh, offset), len);
}

Result<std::uint64_t> MpiIo::write_at(vfs::FileHandle fh, std::uint64_t offset,
                                      ByteView data) {
  return fs_->write(ctx_, fh, viewed(fh, offset), data);
}

Result<std::uint64_t> MpiIo::write_at_all(vfs::FileHandle fh, std::uint64_t offset,
                                          ByteView data) {
  // Phase 1: exchange — every rank ships its piece toward the aggregator.
  Communicator::Piece mine;
  mine.rank = rank_;
  mine.offset = viewed(fh, offset);
  mine.data.assign(data.begin(), data.end());
  auto pieces = comm_->gather_pieces(rank_, *ctx_.agent, std::move(mine));

  // Phase 2: rank 0 coalesces adjacent pieces into contiguous runs and
  // issues one storage write per run (this is where collective I/O wins:
  // few large sequential calls instead of many strided ones).
  Status failure = Status::success();
  if (rank_ == 0) {
    std::sort(pieces.begin(), pieces.end(),
              [](const auto& a, const auto& b) { return a.offset < b.offset; });
    std::size_t i = 0;
    while (i < pieces.size()) {
      std::uint64_t run_off = pieces[i].offset;
      Bytes run = std::move(pieces[i].data);
      std::size_t j = i + 1;
      while (j < pieces.size() && pieces[j].offset == run_off + run.size()) {
        append(run, as_view(pieces[j].data));
        ++j;
      }
      auto w = fs_->write(ctx_, fh, run_off, as_view(run));
      if (!w.ok() && failure.ok()) failure = w.error();
      i = j;
    }
  }
  // Collective completion barrier: everyone observes the aggregated writes.
  comm_->barrier(*ctx_.agent);
  if (!failure.ok()) return failure.error();
  return data.size();
}

Result<Bytes> MpiIo::read_at_all(vfs::FileHandle fh, std::uint64_t offset,
                                 std::uint64_t len) {
  comm_->barrier(*ctx_.agent);
  auto r = fs_->read(ctx_, fh, viewed(fh, offset), len);
  comm_->barrier(*ctx_.agent);
  return r;
}

}  // namespace bsc::mpiio
