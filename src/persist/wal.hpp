// Write-ahead log for the blob storage engine.
//
// The WAL is the durable half of blob::StorageEngine: every successful
// mutation (create / remove / write / truncate / grow — exactly the engine's
// op set) is serialized as one checksummed, length-prefixed record and
// appended to `<dir>/wal.log`. Recovery replays records after the newest
// valid checkpoint and stops cleanly at the first torn or corrupt record,
// so a crash mid-append loses at most the un-fsynced tail, never corrupts
// the prefix.
//
// Record wire format (all integers little-endian):
//
//   u32 body_len | u64 body_checksum | body
//   body = u8 op | u64 lsn | u32 key_len | key bytes
//        | u64 offset | u64 size | u8 flags | payload bytes
//
// `offset`/`payload` are meaningful for write records, `size` for
// truncate/grow; the fixed body header is carried by every record type to
// keep parsing single-shape. `body_checksum` covers the whole body; a
// mismatch (bit flip) or a short read (torn write) ends the valid log.
//
// Durability policy (group commit):
//   * always — write(2) + fsync(2) per record: nothing is ever lost.
//   * group  — records buffer in user space and are flushed + fsynced when
//              the batch reaches `group_records`/`group_bytes` or on an
//              explicit sync(); a crash loses at most one open batch.
//   * none   — write(2) per record, never fsync: the OS decides.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace bsc::persist {

// --- little-endian wire helpers (shared with the checkpoint format) -------

inline void put_u8(Bytes& b, std::uint8_t v) { b.push_back(std::byte{v}); }

inline void put_u32(Bytes& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(std::byte{static_cast<std::uint8_t>(v >> (8 * i))});
}

inline void put_u64(Bytes& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(std::byte{static_cast<std::uint8_t>(v >> (8 * i))});
}

/// Bounds-checked sequential reader; any out-of-range access latches
/// `ok = false` and returns zeros thereafter.
struct Cursor {
  ByteView buf;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (pos + 1 > buf.size()) { ok = false; return 0; }
    return static_cast<std::uint8_t>(buf[pos++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    if (pos + 4 > buf.size()) { ok = false; return 0; }
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf[pos++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    if (pos + 8 > buf.size()) { ok = false; return 0; }
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[pos++]) << (8 * i);
    return v;
  }
  ByteView take(std::size_t n) {
    if (pos + n > buf.size()) { ok = false; return {}; }
    ByteView out = buf.subspan(pos, n);
    pos += n;
    return out;
  }
  [[nodiscard]] std::size_t remaining() const noexcept { return buf.size() - pos; }
};

// --- WAL records ----------------------------------------------------------

/// One journaled engine mutation. Matches blob::StorageEngine's op set 1:1.
enum class WalOp : std::uint8_t {
  create = 1,
  remove = 2,
  write = 3,
  truncate = 4,
  grow = 5,
  set_version = 6,  ///< repair/hint-drain installs a copy at the source's version
};

struct WalRecord {
  WalOp op = WalOp::create;
  std::uint64_t lsn = 0;  ///< assigned by Journal::append, strictly increasing
  std::string key;
  std::uint64_t offset = 0;        ///< write only
  std::uint64_t size = 0;          ///< truncate / grow target
  bool create_if_missing = false;  ///< write only
  Bytes data;                      ///< write payload
};

/// Serialize one record (header + checksummed body) onto `out`.
void encode_record(const WalRecord& rec, Bytes& out);

/// Result of scanning a WAL file front to back.
struct WalScanResult {
  std::vector<WalRecord> records;        ///< every valid record, in order
  std::vector<std::uint64_t> record_ends;///< file offset just past record i
  std::uint64_t valid_bytes = 0;         ///< prefix length that parsed clean
  bool tail_torn = false;                ///< file continues past valid_bytes
  std::string tail_reason;               ///< why parsing stopped (when torn)
};

/// Path of the log file inside a persistence directory.
[[nodiscard]] std::string wal_path(const std::string& dir);

/// Parse `path` until EOF or the first invalid record (torn length prefix,
/// short body, checksum mismatch, or non-monotonic LSN). A missing file is
/// an empty, un-torn log.
[[nodiscard]] WalScanResult scan_wal(const std::string& path);

// --- recovery report ------------------------------------------------------

/// What StorageEngine::recover found and did; consumed by tests, benches,
/// and operator logging.
struct RecoveryReport {
  std::uint64_t checkpoint_lsn = 0;      ///< 0 = recovered from WAL alone
  std::uint32_t checkpoints_skipped = 0; ///< corrupt/unparseable snapshots
  std::uint64_t records_replayed = 0;
  std::uint64_t records_skipped = 0;     ///< LSN already covered by checkpoint
  bool tail_torn = false;                ///< log ended in a torn/corrupt record
  std::string tail_reason;
  std::uint64_t wal_valid_bytes = 0;     ///< log was truncated to this length
};

// --- the journal ----------------------------------------------------------

enum class FsyncPolicy { always, group, none };

[[nodiscard]] constexpr std::string_view to_string(FsyncPolicy p) noexcept {
  switch (p) {
    case FsyncPolicy::always: return "always";
    case FsyncPolicy::group: return "group";
    case FsyncPolicy::none: return "none";
  }
  return "?";
}

struct JournalConfig {
  FsyncPolicy fsync = FsyncPolicy::group;
  std::uint64_t group_records = 64;        ///< flush after this many records
  std::uint64_t group_bytes = 256 * 1024;  ///< ... or this many buffered bytes
};

/// Append-only journal over `<dir>/wal.log`. Not thread-safe: the engine
/// only appends with its own mutex held (same contract as the engine).
class Journal {
 public:
  /// Open (creating `dir` if needed). An existing log is scanned to
  /// continue the LSN sequence; a torn tail is truncated away so new
  /// appends extend a clean prefix. LSNs also advance past any existing
  /// checkpoint so post-checkpoint records always sort after it.
  static Result<std::unique_ptr<Journal>> open(const std::string& dir,
                                               JournalConfig cfg = {});
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Stamp `rec` with the next LSN and append it (buffered per policy).
  Status append(WalRecord rec);

  /// Flush the group-commit buffer and fsync the log.
  Status sync();

  /// Crash simulation: drop the un-flushed buffer and close the fd without
  /// flushing — exactly what process death does to user-space state.
  void abandon();

  /// Drop the whole log (buffer included). Only valid immediately after a
  /// checkpoint covering every assigned LSN; see
  /// StorageEngine::write_checkpoint(prune_wal).
  Status truncate_log();

  [[nodiscard]] std::uint64_t next_lsn() const noexcept { return next_lsn_; }
  [[nodiscard]] std::uint64_t last_assigned_lsn() const noexcept { return next_lsn_ - 1; }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] const JournalConfig& config() const noexcept { return cfg_; }

  // Counters for benches / observability.
  [[nodiscard]] std::uint64_t appended_records() const noexcept { return append_count_; }
  [[nodiscard]] std::uint64_t fsync_count() const noexcept { return fsync_count_; }
  [[nodiscard]] std::uint64_t buffered_bytes() const noexcept { return buf_.size(); }

 private:
  Journal(std::string dir, JournalConfig cfg, int fd, std::uint64_t next_lsn)
      : dir_(std::move(dir)), cfg_(cfg), fd_(fd), next_lsn_(next_lsn) {}

  Status flush_buffer(bool do_fsync);

  std::string dir_;
  JournalConfig cfg_;
  int fd_ = -1;
  std::uint64_t next_lsn_ = 1;
  Bytes buf_;
  std::uint64_t buf_records_ = 0;
  std::uint64_t append_count_ = 0;
  std::uint64_t fsync_count_ = 0;
};

}  // namespace bsc::persist
