// Checkpoint files: point-in-time snapshots of a storage engine's object
// table (keys, logical lengths, versions) and extent data, so recovery can
// bound WAL replay.
//
// File layout (`<dir>/checkpoint-<lsn>.ckpt`, integers little-endian):
//
//   magic "BSCCKPT1" (8 bytes) | u32 format_version | u64 lsn | u64 count
//   count x object:
//     u32 key_len | key | u64 length | u64 version | u32 run_count
//     run_count x run: u64 log_off | u64 data_len | u64 checksum | data
//   u64 file_checksum       (content_checksum of everything before it)
//
// Runs are the object's live extents in ascending log_off order; holes are
// simply absent (so sparse objects stay sparse across recovery). The file
// is written to a `.tmp` sibling, fsynced, then renamed — a crash mid-write
// never leaves a half-checkpoint under the live name, and the trailing
// whole-file checksum rejects bit flips. Recovery walks checkpoints newest
// first and skips any that fail validation.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace bsc::persist {

/// One contiguous run of object data at logical offset `log_off`.
struct CheckpointRun {
  std::uint64_t log_off = 0;
  Bytes data;
  std::uint64_t checksum = 0;  ///< content_checksum(data)
};

struct CheckpointObject {
  std::string key;
  std::uint64_t length = 0;   ///< logical length (>= last run end for sparse tails)
  std::uint64_t version = 0;
  std::vector<CheckpointRun> runs;  ///< ascending log_off, non-overlapping
};

/// A parsed checkpoint (or the absence of one).
struct CheckpointState {
  bool found = false;
  std::uint64_t lsn = 0;  ///< WAL records with lsn <= this are covered
  std::vector<CheckpointObject> objects;
  std::uint32_t skipped = 0;  ///< newer checkpoints rejected as corrupt
};

/// Write `checkpoint-<lsn>.ckpt` into `dir` (atomically via tmp + rename).
Status write_checkpoint(const std::string& dir, std::uint64_t lsn,
                        const std::vector<CheckpointObject>& objects);

/// All checkpoint files in `dir` as (lsn, path), newest first. Based on
/// file names only — validation happens at load time.
[[nodiscard]] std::vector<std::pair<std::uint64_t, std::string>> list_checkpoints(
    const std::string& dir);

/// Highest checkpoint LSN present by file name (0 when none). Upper bound
/// only; used to keep journal LSNs advancing past pruned history.
[[nodiscard]] std::uint64_t newest_checkpoint_lsn(const std::string& dir);

/// Load the newest checkpoint that passes validation (magic, format,
/// whole-file checksum, structural parse), skipping corrupt ones.
/// `found == false` (with `skipped` populated) when none survives.
[[nodiscard]] CheckpointState load_newest_checkpoint(const std::string& dir);

// --- cluster membership record ----------------------------------------------
//
// One small record per store (`<dir>/membership.bsm`) holding the ring epoch,
// the in-ring member set (with ring weights), and the chain of still-open
// migration windows, rewritten atomically (tmp + fsync + rename, whole-file
// checksum — same discipline as checkpoints) on every epoch change. Recovery
// restores the epoch, re-applies removals so a restarted cluster does not
// resurrect decommissioned placement, and reopens every unfinalized window so
// in-flight migrations resume instead of silently vanishing.
//
//   magic "BSCMBR01" (8) | u32 format_version(=3) | u64 epoch | u64 count
//   count x (u32 member_index | f64-as-u64 weight)
//   u64 window_count
//   window_count x (u64 id | u64 epoch_at_open | u32 kind | u32 subject
//                   | f64-as-u64 weight
//                   | u64 batch_keys | u64 throttle_bytes_per_sec)
//   u64 file_checksum
//
// Format 1 (no weights, no windows) and format 2 (no per-window drain
// config) are still accepted on load: v1 members decode at weight 1.0 with
// an empty window chain; v2 windows decode with the default drain config.

struct MembershipRecord {
  /// One persisted open migration window (an epoch of the chain). The per-key
  /// plan is NOT persisted — recovery rebuilds it from who actually holds the
  /// data, which also reflects any copies that landed before the restart.
  struct OpenWindow {
    std::uint64_t id = 0;
    std::uint64_t epoch_at_open = 0;
    std::uint8_t kind = 0;  ///< 0 = add, 1 = decommission
    std::uint32_t subject = 0;
    double weight = 1.0;
    /// Drain tuning (blob::RebalanceConfig) the window was opened with, so a
    /// restarted drain keeps the operator's batch size and bandwidth cap.
    std::uint64_t batch_keys = 16;
    std::uint64_t throttle_bytes_per_sec = 0;
  };

  std::uint64_t epoch = 0;
  std::vector<std::uint32_t> members;  ///< in-ring server indices, ascending
  std::vector<double> weights;         ///< parallel to members (1.0 for v1 files)
  std::vector<OpenWindow> windows;     ///< open migration chain, oldest first
};

/// Atomically (re)write `<dir>/membership.bsm`.
Status write_membership(const std::string& dir, const MembershipRecord& rec);

/// Load the membership record; Errc::not_found when absent, Errc::io_error
/// when present but failing validation.
[[nodiscard]] Result<MembershipRecord> load_membership(const std::string& dir);

}  // namespace bsc::persist
