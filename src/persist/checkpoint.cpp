#include "persist/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>

#include "common/hash.hpp"
#include "common/strings.hpp"
#include "persist/wal.hpp"

namespace bsc::persist {

namespace {

constexpr char kMagic[8] = {'B', 'S', 'C', 'C', 'K', 'P', 'T', '1'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr char kPrefix[] = "checkpoint-";
constexpr char kSuffix[] = ".ckpt";

std::string checkpoint_path(const std::string& dir, std::uint64_t lsn) {
  return dir + "/" + kPrefix +
         strfmt("%020llu", static_cast<unsigned long long>(lsn)) + kSuffix;
}

/// Parse a fully-read checkpoint file; nullopt on any validation failure.
std::optional<CheckpointState> parse_checkpoint(ByteView buf) {
  if (buf.size() < sizeof(kMagic) + 4 + 8 + 8 + 8) return std::nullopt;
  if (std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0) return std::nullopt;
  const ByteView body = buf.first(buf.size() - 8);
  Cursor trailer{buf, buf.size() - 8};
  if (content_checksum(body) != trailer.u64()) return std::nullopt;

  Cursor c{body, sizeof(kMagic)};
  if (c.u32() != kFormatVersion) return std::nullopt;
  CheckpointState state;
  state.found = true;
  state.lsn = c.u64();
  const std::uint64_t count = c.u64();
  state.objects.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    CheckpointObject obj;
    const std::uint32_t key_len = c.u32();
    if (key_len > c.remaining()) return std::nullopt;
    obj.key = bsc::to_string(c.take(key_len));
    obj.length = c.u64();
    obj.version = c.u64();
    const std::uint32_t run_count = c.u32();
    if (!c.ok) return std::nullopt;
    obj.runs.reserve(run_count);
    for (std::uint32_t r = 0; r < run_count; ++r) {
      CheckpointRun run;
      run.log_off = c.u64();
      const std::uint64_t len = c.u64();
      run.checksum = c.u64();
      if (!c.ok || len > c.remaining()) return std::nullopt;
      const ByteView data = c.take(len);
      if (content_checksum(data) != run.checksum) return std::nullopt;
      run.data.assign(data.begin(), data.end());
      obj.runs.push_back(std::move(run));
    }
    state.objects.push_back(std::move(obj));
  }
  if (!c.ok || c.remaining() != 0) return std::nullopt;  // trailing garbage
  return state;
}

}  // namespace

Status write_checkpoint(const std::string& dir, std::uint64_t lsn,
                        const std::vector<CheckpointObject>& objects) {
  Bytes buf;
  buf.resize(sizeof(kMagic));
  std::memcpy(buf.data(), kMagic, sizeof(kMagic));
  put_u32(buf, kFormatVersion);
  put_u64(buf, lsn);
  put_u64(buf, objects.size());
  for (const CheckpointObject& obj : objects) {
    put_u32(buf, static_cast<std::uint32_t>(obj.key.size()));
    append(buf, as_view(to_bytes(obj.key)));
    put_u64(buf, obj.length);
    put_u64(buf, obj.version);
    put_u32(buf, static_cast<std::uint32_t>(obj.runs.size()));
    for (const CheckpointRun& run : obj.runs) {
      put_u64(buf, run.log_off);
      put_u64(buf, run.data.size());
      put_u64(buf, run.checksum);
      append(buf, as_view(run.data));
    }
  }
  put_u64(buf, content_checksum(as_view(buf)));

  const std::string final_path = checkpoint_path(dir, lsn);
  const std::string tmp_path = final_path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return {Errc::io_error, tmp_path + ": " + std::strerror(errno)};
  const std::byte* p = buf.data();
  std::size_t left = buf.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return {Errc::io_error, std::string("checkpoint write: ") + std::strerror(errno)};
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return {Errc::io_error, std::string("checkpoint fsync: ") + std::strerror(errno)};
  }
  ::close(fd);
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) return {Errc::io_error, "checkpoint rename: " + ec.message()};
  return Status::success();
}

std::vector<std::pair<std::uint64_t, std::string>> list_checkpoints(const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= sizeof(kPrefix) - 1 + sizeof(kSuffix) - 1) continue;
    if (name.compare(0, sizeof(kPrefix) - 1, kPrefix) != 0) continue;
    if (name.compare(name.size() - (sizeof(kSuffix) - 1), sizeof(kSuffix) - 1, kSuffix) != 0) {
      continue;
    }
    const std::string digits = name.substr(
        sizeof(kPrefix) - 1, name.size() - (sizeof(kPrefix) - 1) - (sizeof(kSuffix) - 1));
    char* end = nullptr;
    const std::uint64_t lsn = std::strtoull(digits.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') continue;
    out.emplace_back(lsn, entry.path().string());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

std::uint64_t newest_checkpoint_lsn(const std::string& dir) {
  const auto all = list_checkpoints(dir);
  return all.empty() ? 0 : all.front().first;
}

namespace {
constexpr char kMembershipMagic[8] = {'B', 'S', 'C', 'M', 'B', 'R', '0', '1'};
constexpr std::uint32_t kMembershipFormat = 3;  // v1/v2 still load (see header)

// Ring weights ride in the record as IEEE-754 bit patterns — exact
// round-trip, no text formatting ambiguity.
std::uint64_t f64_bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}
double bits_f64(std::uint64_t u) {
  double d = 0;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

std::string membership_path(const std::string& dir) { return dir + "/membership.bsm"; }
}  // namespace

Status write_membership(const std::string& dir, const MembershipRecord& rec) {
  Bytes buf;
  buf.resize(sizeof(kMembershipMagic));
  std::memcpy(buf.data(), kMembershipMagic, sizeof(kMembershipMagic));
  put_u32(buf, kMembershipFormat);
  put_u64(buf, rec.epoch);
  put_u64(buf, rec.members.size());
  for (std::size_t i = 0; i < rec.members.size(); ++i) {
    put_u32(buf, rec.members[i]);
    put_u64(buf, f64_bits(i < rec.weights.size() ? rec.weights[i] : 1.0));
  }
  put_u64(buf, rec.windows.size());
  for (const auto& w : rec.windows) {
    put_u64(buf, w.id);
    put_u64(buf, w.epoch_at_open);
    put_u32(buf, w.kind);  // u8 widened; keeps the cursor helpers uniform
    put_u32(buf, w.subject);
    put_u64(buf, f64_bits(w.weight));
    put_u64(buf, w.batch_keys);
    put_u64(buf, w.throttle_bytes_per_sec);
  }
  put_u64(buf, content_checksum(as_view(buf)));

  const std::string final_path = membership_path(dir);
  // Per-call unique tmp name: even if two writers race (callers are expected
  // to serialize, but separate store objects on one dir are not), neither
  // can interleave bytes into the other's tmp file before the atomic rename.
  static std::atomic<std::uint64_t> tmp_seq{0};
  const std::string tmp_path =
      final_path + ".tmp." +
      std::to_string(tmp_seq.fetch_add(1, std::memory_order_relaxed));
  const int fd = ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return {Errc::io_error, tmp_path + ": " + std::strerror(errno)};
  const std::byte* p = buf.data();
  std::size_t left = buf.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return {Errc::io_error, std::string("membership write: ") + std::strerror(errno)};
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return {Errc::io_error, std::string("membership fsync: ") + std::strerror(errno)};
  }
  ::close(fd);
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) return {Errc::io_error, "membership rename: " + ec.message()};
  return Status::success();
}

Result<MembershipRecord> load_membership(const std::string& dir) {
  const std::string path = membership_path(dir);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Error{Errc::not_found, "no membership record"};
  std::fseek(f, 0, SEEK_END);
  const long sz = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  Bytes buf(sz > 0 ? static_cast<std::size_t>(sz) : 0);
  const bool read_ok =
      buf.empty() || std::fread(buf.data(), 1, buf.size(), f) == buf.size();
  std::fclose(f);
  if (!read_ok) return Error{Errc::io_error, "membership read failed"};

  const ByteView view = as_view(buf);
  if (view.size() < sizeof(kMembershipMagic) + 4 + 8 + 8 + 8 ||
      std::memcmp(view.data(), kMembershipMagic, sizeof(kMembershipMagic)) != 0) {
    return Error{Errc::io_error, "membership record malformed"};
  }
  const ByteView body = view.first(view.size() - 8);
  Cursor trailer{view, view.size() - 8};
  if (content_checksum(body) != trailer.u64()) {
    return Error{Errc::io_error, "membership checksum mismatch"};
  }
  Cursor c{body, sizeof(kMembershipMagic)};
  const std::uint32_t format = c.u32();
  if (format < 1 || format > kMembershipFormat) {
    return Error{Errc::io_error, "membership format version unsupported"};
  }
  MembershipRecord rec;
  rec.epoch = c.u64();
  const std::uint64_t count = c.u64();
  if (format == 1) {
    // v1: bare member list, implicit weight 1.0, no migration chain.
    if (!c.ok || count * 4 != c.remaining()) {
      return Error{Errc::io_error, "membership record truncated"};
    }
    rec.members.reserve(count);
    rec.weights.assign(count, 1.0);
    for (std::uint64_t i = 0; i < count; ++i) rec.members.push_back(c.u32());
    if (!c.ok) return Error{Errc::io_error, "membership record truncated"};
    return rec;
  }
  if (!c.ok || count > c.remaining() / 12) {
    return Error{Errc::io_error, "membership record truncated"};
  }
  rec.members.reserve(count);
  rec.weights.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    rec.members.push_back(c.u32());
    rec.weights.push_back(bits_f64(c.u64()));
  }
  const std::uint64_t nwin = c.u64();
  const std::uint64_t win_bytes = format >= 3 ? 48 : 32;  // v3 adds drain config
  if (!c.ok || nwin > c.remaining() / win_bytes) {
    return Error{Errc::io_error, "membership record truncated"};
  }
  rec.windows.reserve(nwin);
  for (std::uint64_t i = 0; i < nwin; ++i) {
    MembershipRecord::OpenWindow w;
    w.id = c.u64();
    w.epoch_at_open = c.u64();
    w.kind = static_cast<std::uint8_t>(c.u32());
    w.subject = c.u32();
    w.weight = bits_f64(c.u64());
    if (format >= 3) {
      w.batch_keys = c.u64();
      w.throttle_bytes_per_sec = c.u64();
    }
    rec.windows.push_back(w);
  }
  if (!c.ok || c.remaining() != 0) {
    return Error{Errc::io_error, "membership record truncated"};
  }
  return rec;
}

CheckpointState load_newest_checkpoint(const std::string& dir) {
  CheckpointState none;
  for (const auto& [lsn, path] : list_checkpoints(dir)) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) {
      ++none.skipped;
      continue;
    }
    std::fseek(f, 0, SEEK_END);
    const long sz = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    Bytes buf(sz > 0 ? static_cast<std::size_t>(sz) : 0);
    const bool read_ok =
        buf.empty() || std::fread(buf.data(), 1, buf.size(), f) == buf.size();
    std::fclose(f);
    if (read_ok) {
      if (auto state = parse_checkpoint(as_view(buf))) {
        state->skipped = none.skipped;
        return *std::move(state);
      }
    }
    ++none.skipped;
  }
  return none;
}

}  // namespace bsc::persist
