// Crash-injection harness for the persistence tests and benches.
//
// FaultFile mutates an on-disk file the way real failures do:
//   * truncate_to — a torn write / crash mid-append (the tail vanishes),
//   * flip_byte   — silent media corruption (one bit pattern inverted),
//   * append_garbage — a partial fsync that left junk past the last record.
//
// TempDir is the matching scratch-directory guard (mkdtemp + recursive
// remove on destruction) so every test/bench run gets an isolated
// persistence directory.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.hpp"

namespace bsc::persist {

class FaultFile {
 public:
  explicit FaultFile(std::string path) : path_(std::move(path)) {}

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] Result<std::uint64_t> size() const;

  /// Cut the file to `new_size` bytes (no-op if already shorter).
  Status truncate_to(std::uint64_t new_size);

  /// XOR the byte at `offset` with 0xff.
  Status flip_byte(std::uint64_t offset);

  /// Append `n` bytes of non-zero junk.
  Status append_garbage(std::uint64_t n);

 private:
  std::string path_;
};

/// Scratch directory under the system temp root; removed on destruction.
class TempDir {
 public:
  TempDir();
  ~TempDir();
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

}  // namespace bsc::persist
