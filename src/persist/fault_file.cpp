#include "persist/fault_file.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

namespace bsc::persist {

Result<std::uint64_t> FaultFile::size() const {
  std::error_code ec;
  const auto n = std::filesystem::file_size(path_, ec);
  if (ec) return {Errc::not_found, path_ + ": " + ec.message()};
  return static_cast<std::uint64_t>(n);
}

Status FaultFile::truncate_to(std::uint64_t new_size) {
  auto cur = size();
  if (!cur.ok()) return cur.error();
  if (new_size >= cur.value()) return Status::success();
  std::error_code ec;
  std::filesystem::resize_file(path_, new_size, ec);
  if (ec) return {Errc::io_error, path_ + ": " + ec.message()};
  return Status::success();
}

Status FaultFile::flip_byte(std::uint64_t offset) {
  std::FILE* f = std::fopen(path_.c_str(), "r+b");
  if (!f) return {Errc::not_found, path_};
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
    std::fclose(f);
    return {Errc::out_of_range, path_};
  }
  const int c = std::fgetc(f);
  if (c == EOF) {
    std::fclose(f);
    return {Errc::out_of_range, path_};
  }
  std::fseek(f, static_cast<long>(offset), SEEK_SET);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);
  return Status::success();
}

Status FaultFile::append_garbage(std::uint64_t n) {
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (!f) return {Errc::not_found, path_};
  for (std::uint64_t i = 0; i < n; ++i) std::fputc(0xa5, f);
  std::fclose(f);
  return Status::success();
}

TempDir::TempDir() {
  std::string tmpl =
      (std::filesystem::temp_directory_path() / "bsc-persist-XXXXXX").string();
  char* made = ::mkdtemp(tmpl.data());
  path_ = made ? made : tmpl;  // mkdtemp failure surfaces as open() errors later
}

TempDir::~TempDir() {
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
}

}  // namespace bsc::persist
