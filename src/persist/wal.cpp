#include "persist/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/hash.hpp"
#include "obs/metrics.hpp"
#include "persist/checkpoint.hpp"

namespace bsc::persist {

namespace {

/// Hard cap on one record's body; anything larger is treated as corruption
/// (a garbage length prefix must not make the scanner allocate gigabytes).
constexpr std::uint64_t kMaxBodyBytes = 1ULL << 30;

/// Journal series. Unlike the simulated-time series elsewhere, append/fsync
/// latencies here are real wall-clock microseconds — the WAL does real I/O.
struct WalMetrics {
  obs::Counter& appends;
  obs::Counter& flushes;
  obs::Counter& flushed_bytes;
  obs::Counter& fsyncs;
  obs::ShardedHistogram& append_us;
  obs::ShardedHistogram& fsync_us;
  obs::ShardedHistogram& batch_records;  ///< group-commit batch sizes
};

WalMetrics& wal_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static WalMetrics m{reg.counter("wal.appends"),       reg.counter("wal.flushes"),
                      reg.counter("wal.flushed_bytes"), reg.counter("wal.fsyncs"),
                      reg.histogram("wal.append_us"),   reg.histogram("wal.fsync_us"),
                      reg.histogram("wal.batch_records")};
  return m;
}

std::uint64_t wall_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr std::size_t kRecordHeaderBytes = 12;  // u32 len + u64 checksum

/// Fixed body fields: op(1) lsn(8) key_len(4) offset(8) size(8) flags(1).
constexpr std::size_t kBodyFixedBytes = 30;

Result<Bytes> read_whole_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return {Errc::not_found, path};
  std::fseek(f, 0, SEEK_END);
  const long sz = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  Bytes out(sz > 0 ? static_cast<std::size_t>(sz) : 0);
  if (!out.empty() && std::fread(out.data(), 1, out.size(), f) != out.size()) {
    std::fclose(f);
    return {Errc::io_error, "short read: " + path};
  }
  std::fclose(f);
  return out;
}

}  // namespace

std::string wal_path(const std::string& dir) { return dir + "/wal.log"; }

void encode_record(const WalRecord& rec, Bytes& out) {
  Bytes body;
  body.reserve(kBodyFixedBytes + rec.key.size() + rec.data.size());
  put_u8(body, static_cast<std::uint8_t>(rec.op));
  put_u64(body, rec.lsn);
  put_u32(body, static_cast<std::uint32_t>(rec.key.size()));
  append(body, as_view(to_bytes(rec.key)));
  put_u64(body, rec.offset);
  put_u64(body, rec.size);
  put_u8(body, rec.create_if_missing ? 1 : 0);
  append(body, as_view(rec.data));

  put_u32(out, static_cast<std::uint32_t>(body.size()));
  put_u64(out, content_checksum(as_view(body)));
  append(out, as_view(body));
}

WalScanResult scan_wal(const std::string& path) {
  WalScanResult out;
  auto file = read_whole_file(path);
  if (!file.ok()) return out;  // missing log = empty log
  const ByteView buf = as_view(file.value());

  std::uint64_t pos = 0;
  std::uint64_t prev_lsn = 0;
  while (pos < buf.size()) {
    Cursor hdr{buf, static_cast<std::size_t>(pos)};
    if (buf.size() - pos < kRecordHeaderBytes) {
      out.tail_torn = true;
      out.tail_reason = "short record header";
      break;
    }
    const std::uint32_t body_len = hdr.u32();
    const std::uint64_t checksum = hdr.u64();
    if (body_len < kBodyFixedBytes || body_len > kMaxBodyBytes) {
      out.tail_torn = true;
      out.tail_reason = "implausible record length";
      break;
    }
    if (buf.size() - hdr.pos < body_len) {
      out.tail_torn = true;
      out.tail_reason = "torn record body";
      break;
    }
    const ByteView body = buf.subspan(hdr.pos, body_len);
    if (content_checksum(body) != checksum) {
      out.tail_torn = true;
      out.tail_reason = "record checksum mismatch";
      break;
    }

    Cursor c{body};
    WalRecord rec;
    rec.op = static_cast<WalOp>(c.u8());
    rec.lsn = c.u64();
    const std::uint32_t key_len = c.u32();
    if (key_len > c.remaining()) {
      out.tail_torn = true;
      out.tail_reason = "key length past body";
      break;
    }
    rec.key = bsc::to_string(c.take(key_len));
    rec.offset = c.u64();
    rec.size = c.u64();
    rec.create_if_missing = c.u8() != 0;
    if (!c.ok) {
      out.tail_torn = true;
      out.tail_reason = "malformed record body";
      break;
    }
    const ByteView payload = c.take(c.remaining());
    rec.data.assign(payload.begin(), payload.end());
    if (rec.op < WalOp::create || rec.op > WalOp::set_version || rec.lsn <= prev_lsn) {
      out.tail_torn = true;
      out.tail_reason = rec.lsn <= prev_lsn ? "non-monotonic lsn" : "unknown op";
      break;
    }
    prev_lsn = rec.lsn;
    pos = hdr.pos + body_len;
    out.records.push_back(std::move(rec));
    out.record_ends.push_back(pos);
  }
  out.valid_bytes = pos;
  return out;
}

Result<std::unique_ptr<Journal>> Journal::open(const std::string& dir, JournalConfig cfg) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return {Errc::io_error, "cannot create " + dir + ": " + ec.message()};

  const std::string path = wal_path(dir);
  std::uint64_t last_lsn = 0;
  if (std::filesystem::exists(path)) {
    WalScanResult scan = scan_wal(path);
    if (!scan.records.empty()) last_lsn = scan.records.back().lsn;
    if (scan.tail_torn) {
      // Drop the torn tail so new appends extend a clean prefix.
      std::filesystem::resize_file(path, scan.valid_bytes, ec);
      if (ec) return {Errc::io_error, "cannot truncate torn tail: " + ec.message()};
    }
  }
  // Post-checkpoint records must sort after the checkpoint even when the
  // log was pruned, so the sequence also advances past any snapshot.
  last_lsn = std::max(last_lsn, newest_checkpoint_lsn(dir));

  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) return {Errc::io_error, path + ": " + std::strerror(errno)};
  return std::unique_ptr<Journal>(new Journal(dir, cfg, fd, last_lsn + 1));
}

Journal::~Journal() {
  if (fd_ >= 0) {
    (void)flush_buffer(/*do_fsync=*/cfg_.fsync != FsyncPolicy::none);  // clean shutdown
    ::close(fd_);
  }
}

Status Journal::flush_buffer(bool do_fsync) {
  if (fd_ < 0) return {Errc::closed, "journal closed"};
  const std::uint64_t flushing = buf_.size();
  const std::uint64_t batch = buf_records_;
  const std::byte* p = buf_.data();
  std::size_t left = buf_.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return {Errc::io_error, std::string("wal write: ") + std::strerror(errno)};
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  buf_.clear();
  buf_records_ = 0;
  auto& m = wal_metrics();
  if (flushing > 0) {
    m.flushes.inc();
    m.flushed_bytes.add(flushing);
    m.batch_records.add(batch);
  }
  if (do_fsync) {
    const bool timed = obs::metrics_enabled();
    const std::uint64_t t0 = timed ? wall_now_us() : 0;
    if (::fsync(fd_) != 0) {
      return {Errc::io_error, std::string("wal fsync: ") + std::strerror(errno)};
    }
    ++fsync_count_;
    m.fsyncs.inc();
    if (timed) m.fsync_us.add(wall_now_us() - t0);
  }
  return Status::success();
}

Status Journal::append(WalRecord rec) {
  if (fd_ < 0) return {Errc::closed, "journal closed"};
  const bool timed = obs::metrics_enabled();
  const std::uint64_t t0 = timed ? wall_now_us() : 0;
  rec.lsn = next_lsn_++;
  encode_record(rec, buf_);
  ++buf_records_;
  ++append_count_;
  Status st = [&]() -> Status {
    switch (cfg_.fsync) {
      case FsyncPolicy::always:
        return flush_buffer(true);
      case FsyncPolicy::none:
        return flush_buffer(false);
      case FsyncPolicy::group:
        if (buf_records_ >= cfg_.group_records || buf_.size() >= cfg_.group_bytes) {
          return flush_buffer(true);
        }
        return Status::success();
    }
    return Status::success();
  }();
  auto& m = wal_metrics();
  m.appends.inc();
  if (timed) m.append_us.add(wall_now_us() - t0);
  return st;
}

Status Journal::sync() { return flush_buffer(true); }

void Journal::abandon() {
  buf_.clear();
  buf_records_ = 0;
  if (fd_ >= 0) {
    ::close(fd_);  // no flush, no fsync: the crash loses the open batch
    fd_ = -1;
  }
}

Status Journal::truncate_log() {
  if (fd_ < 0) return {Errc::closed, "journal closed"};
  buf_.clear();
  buf_records_ = 0;
  if (::ftruncate(fd_, 0) != 0) {
    return {Errc::io_error, std::string("wal truncate: ") + std::strerror(errno)};
  }
  if (::fsync(fd_) != 0) {
    return {Errc::io_error, std::string("wal fsync: ") + std::strerror(errno)};
  }
  ++fsync_count_;
  return Status::success();
}

}  // namespace bsc::persist
