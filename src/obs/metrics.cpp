#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

namespace bsc::obs {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

bool metrics_enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_metrics_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

// --- ShardedHistogram -----------------------------------------------------

ShardedHistogram::~ShardedHistogram() {
  for (auto& p : slots_) delete p.load(std::memory_order_acquire);
}

ShardedHistogram::Slot* ShardedHistogram::claim_slot(std::size_t tid) noexcept {
  // Only the thread with id `tid` ever writes slots_[tid], so no CAS race:
  // the release store publishes the zero-initialized slot to readers.
  Slot* s = new Slot();
  slots_[tid].store(s, std::memory_order_release);
  return s;
}

void ShardedHistogram::add_overflow(std::uint64_t value) noexcept {
  while (overflow_busy_.test_and_set(std::memory_order_acquire)) {}
  overflow_.add(value);
  overflow_busy_.clear(std::memory_order_release);
}

Histogram ShardedHistogram::merged() const {
  Histogram out;
  constexpr std::size_t n = Histogram::kBucketCount;
  std::vector<std::uint64_t> counts(n);
  for (const auto& p : slots_) {
    const Slot* s = p.load(std::memory_order_acquire);
    if (s == nullptr) continue;
    for (std::size_t i = 0; i < n; ++i) {
      counts[i] = s->buckets[i].load(std::memory_order_relaxed);
    }
    out.accumulate(counts.data(), n, s->sum.load(std::memory_order_relaxed),
                   s->max.load(std::memory_order_relaxed));
  }
  while (overflow_busy_.test_and_set(std::memory_order_acquire)) {}
  out.merge(overflow_);
  overflow_busy_.clear(std::memory_order_release);
  return out;
}

std::uint64_t ShardedHistogram::count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& p : slots_) {
    const Slot* s = p.load(std::memory_order_acquire);
    if (s != nullptr) n += s->total.load(std::memory_order_relaxed);
  }
  while (overflow_busy_.test_and_set(std::memory_order_acquire)) {}
  n += overflow_.count();
  overflow_busy_.clear(std::memory_order_release);
  return n;
}

void ShardedHistogram::reset() noexcept {
  constexpr std::size_t n = Histogram::kBucketCount;
  for (auto& p : slots_) {
    Slot* s = p.load(std::memory_order_acquire);
    if (s == nullptr) continue;
    for (std::size_t i = 0; i < n; ++i) {
      s->buckets[i].store(0, std::memory_order_relaxed);
    }
    s->total.store(0, std::memory_order_relaxed);
    s->sum.store(0.0, std::memory_order_relaxed);
    s->max.store(0, std::memory_order_relaxed);
  }
  while (overflow_busy_.test_and_set(std::memory_order_acquire)) {}
  overflow_ = Histogram{};
  overflow_busy_.clear(std::memory_order_release);
}

// --- SlowOpLog ------------------------------------------------------------

namespace {
/// Min-heap comparator: the entry with the SMALLEST latency sits on top so
/// it is the first evicted when a slower call arrives.
bool slower(const SlowOp& a, const SlowOp& b) noexcept {
  return a.latency_us > b.latency_us;
}
}  // namespace

void SlowOpLog::refresh_gate() noexcept {
  std::uint64_t gate = threshold_us_;
  if (heap_.size() >= capacity_) {
    // A full heap admits only calls strictly slower than the cheapest
    // survivor; saturate rather than wrap at the (theoretical) ceiling.
    const std::uint64_t floor = heap_.front().latency_us;
    gate = std::max(gate, floor == UINT64_MAX ? floor : floor + 1);
  }
  gate_us_.store(gate, std::memory_order_relaxed);
}

void SlowOpLog::configure(std::size_t capacity, std::uint64_t threshold_us) {
  std::scoped_lock lk(mu_);
  capacity_ = capacity ? capacity : 1;
  threshold_us_ = threshold_us;
  while (heap_.size() > capacity_) {
    std::pop_heap(heap_.begin(), heap_.end(), slower);
    heap_.pop_back();
  }
  refresh_gate();
}

void SlowOpLog::observe(std::string_view op, std::string_view key,
                        std::uint64_t latency_us, std::uint64_t at_us) {
  if (!metrics_enabled()) return;
  // Lock-free rejection for the steady state (call is not among the worst).
  // The gate may briefly lag the true floor; the checks under the lock stay
  // authoritative.
  if (latency_us < gate_us_.load(std::memory_order_relaxed)) return;
  std::scoped_lock lk(mu_);
  if (latency_us < threshold_us_) return;
  if (heap_.size() >= capacity_) {
    if (latency_us <= heap_.front().latency_us) return;  // not among the worst
    std::pop_heap(heap_.begin(), heap_.end(), slower);
    heap_.pop_back();
  }
  heap_.push_back({std::string{op}, std::string{key}, latency_us, at_us});
  std::push_heap(heap_.begin(), heap_.end(), slower);
  refresh_gate();
}

std::vector<SlowOp> SlowOpLog::worst() const {
  std::vector<SlowOp> out;
  {
    std::scoped_lock lk(mu_);
    out = heap_;
  }
  std::sort(out.begin(), out.end(),
            [](const SlowOp& a, const SlowOp& b) { return a.latency_us > b.latency_us; });
  return out;
}

std::uint64_t SlowOpLog::threshold_us() const {
  std::scoped_lock lk(mu_);
  return threshold_us_;
}

std::size_t SlowOpLog::capacity() const {
  std::scoped_lock lk(mu_);
  return capacity_;
}

void SlowOpLog::clear() {
  std::scoped_lock lk(mu_);
  heap_.clear();
  refresh_gate();
}

// --- MetricsSnapshot ------------------------------------------------------

HistogramStats MetricsSnapshot::histogram_stats(const std::string& name) const {
  HistogramStats s;
  auto it = histograms.find(name);
  if (it == histograms.end()) return s;
  const Histogram& h = it->second;
  s.count = h.count();
  s.mean = h.mean();
  s.p50 = h.percentile(50);
  s.p99 = h.percentile(99);
  s.max = h.percentile(100);
  return s;
}

MetricsSnapshot MetricsSnapshot::delta_since(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out = *this;
  for (auto& [name, v] : out.counters) {
    auto it = earlier.counters.find(name);
    if (it != earlier.counters.end()) v = v >= it->second ? v - it->second : 0;
  }
  for (auto& [name, h] : out.histograms) {
    auto it = earlier.histograms.find(name);
    if (it != earlier.histograms.end()) h.subtract(it->second);
  }
  // Gauges are point-in-time readings and slow ops a cumulative worst-list:
  // both keep the newer state.
  return out;
}

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string prom_name(std::string_view name) {
  std::string out = "bsc_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"meta\": {\"source\": \"bsc-metrics\", \"schema_version\": 1},\n";

  os << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": " << v;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": " << v;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    HistogramStats s = histogram_stats(name);
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": {\"count\": "
       << s.count << ", \"mean\": " << s.mean << ", \"p50\": " << s.p50
       << ", \"p99\": " << s.p99 << ", \"max\": " << s.max << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"slow_ops\": [";
  first = true;
  for (const SlowOp& op : slow_ops) {
    os << (first ? "\n" : ",\n") << "    {\"op\": \"" << json_escape(op.op)
       << "\", \"key\": \"" << json_escape(op.key)
       << "\", \"latency_us\": " << op.latency_us << ", \"at_us\": " << op.at_us << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "]\n";
  os << "}\n";
  return os.str();
}

std::string MetricsSnapshot::to_prometheus() const {
  std::ostringstream os;
  for (const auto& [name, v] : counters) {
    const std::string p = prom_name(name);
    os << "# TYPE " << p << " counter\n" << p << " " << v << "\n";
  }
  for (const auto& [name, v] : gauges) {
    const std::string p = prom_name(name);
    os << "# TYPE " << p << " gauge\n" << p << " " << v << "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string p = prom_name(name);
    HistogramStats s = histogram_stats(name);
    os << "# TYPE " << p << " summary\n";
    os << p << "{quantile=\"0.5\"} " << s.p50 << "\n";
    os << p << "{quantile=\"0.99\"} " << s.p99 << "\n";
    os << p << "{quantile=\"1\"} " << s.max << "\n";
    os << p << "_sum " << s.mean * static_cast<double>(s.count) << "\n";
    os << p << "_count " << s.count << "\n";
  }
  return os.str();
}

// --- MetricsRegistry ------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: publishers cache references in function-local statics
  // and may fire during static destruction.
  static MetricsRegistry* reg = new MetricsRegistry();
  return *reg;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::scoped_lock lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string{name}, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::scoped_lock lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string{name}, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

ShardedHistogram& MetricsRegistry::histogram(std::string_view name) {
  std::scoped_lock lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string{name}, std::make_unique<ShardedHistogram>()).first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::scoped_lock lk(mu_);
  for (const auto& [name, c] : counters_) out.counters.emplace(name, c->value());
  for (const auto& [name, g] : gauges_) out.gauges.emplace(name, g->value());
  for (const auto& [name, h] : histograms_) out.histograms.emplace(name, h->merged());
  out.slow_ops = slow_ops_.worst();
  return out;
}

void MetricsRegistry::reset() {
  std::scoped_lock lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  slow_ops_.clear();
}

}  // namespace bsc::obs
