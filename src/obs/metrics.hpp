// Unified observability layer: a process-wide registry of named counters,
// gauges, and sharded latency/size histograms, with point-in-time snapshot
// and delta semantics plus two exporters (structured JSON in the spirit of
// the bench --json schema, and Prometheus-style text).
//
// The paper's whole argument is a storage-call census; this layer makes that
// census an always-on runtime artifact instead of an offline trace product.
// Every storage layer (BlobClient, BlobServer, StorageEngine, page cache,
// persist::Journal, rpc::Transport, trace::TraceRecorder) publishes into the
// one global registry under a dotted naming scheme:
//
//   client.<primitive>.{calls,latency_us,bytes}   blob API primitives (§III)
//   client.category.<category>                    paper taxonomy roll-up
//   server.<op>.{calls,service_us}                per-server service times
//   server.stripe.{acquisitions,contended}        lock-stripe contention
//   engine.op.<kind> / engine.bytes_*             storage-engine op counts
//   cache.{hits,misses,evictions}                 page-cache aggregate
//   wal.{appends,fsyncs,append_us,fsync_us,...}   journal / group commit
//   rpc.{attempts,drops,errors,outages,...}       transport fault verdicts
//   trace.calls.<category> / trace.bytes_*        offline-trace census mirror
//
// Design constraints: registration is rare and locked; the hot path is an
// atomic add (counter/gauge) or one striped mutex + array increment
// (histogram). Entries are never removed, so references returned by the
// registry stay valid for the process lifetime — callers cache them in
// function-local statics. A process-wide enable flag turns every publisher
// into a cheap early-out so the instrumentation tax can be measured (see
// bench/micro_obs) and switched off wholesale.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"

namespace bsc::obs {

/// Process-wide metrics switch. Default on; bench/micro_obs flips it to
/// price the instrumentation. Publishers early-out when disabled (readings
/// freeze; nothing is lost structurally).
[[nodiscard]] bool metrics_enabled() noexcept;
void set_metrics_enabled(bool on) noexcept;

/// Per-thread slot capacity shared by Counter and ShardedHistogram: each
/// thread leases a process-wide small integer id on first publish and
/// returns it at thread exit; ids below kThreadSlots index a private cell
/// (single-writer, so updates are plain relaxed load+store — no RMW on the
/// hot path). Only when more than kThreadSlots threads publish
/// *concurrently* do the extras fall back to a shared RMW cell: still
/// correct, just not wait-free.
inline constexpr std::size_t kThreadSlots = 64;

/// Cache-line size used to pad per-thread counter stripes: without padding,
/// neighbouring slot ids write the same line on every add() and the false
/// sharing serializes the stripes, defeating the whole design under
/// multithreaded load.
inline constexpr std::size_t kCacheLineBytes = 64;

namespace detail {
/// Process-wide slot-id pool with recycling: a thread takes an id on first
/// publish and its thread_local lease returns it at thread exit, so bounded
/// worker pools — however often they churn — keep reusing the same
/// kThreadSlots private cells instead of permanently exhausting them.
/// Handing a recycled id to a successor thread is safe: the predecessor has
/// exited, and the pool mutex orders its final relaxed stores before the
/// successor's first, so cells stay single-writer *over time*. Threads that
/// start while every id is leased get the kThreadSlots sentinel (shared
/// overflow path); `overflow_threads` records each such thread so the
/// degradation is observable rather than silent.
struct SlotIdPool {
  std::mutex mu;
  std::vector<std::size_t> free_ids;
  std::size_t next_fresh = 0;
  std::uint64_t overflow_threads = 0;

  SlotIdPool() { free_ids.reserve(kThreadSlots); }  // release() never allocates

  static SlotIdPool& instance() {
    // Leaked on purpose: thread exits (lease destructors) can outlive
    // static destruction of ordinary globals.
    static SlotIdPool* pool = new SlotIdPool();
    return *pool;
  }

  std::size_t acquire() noexcept {
    std::scoped_lock lk(mu);
    if (!free_ids.empty()) {
      const std::size_t id = free_ids.back();
      free_ids.pop_back();
      return id;
    }
    if (next_fresh < kThreadSlots) return next_fresh++;
    ++overflow_threads;
    return kThreadSlots;  // sentinel: routes every publisher to its overflow path
  }

  void release(std::size_t id) noexcept {
    if (id >= kThreadSlots) return;
    std::scoped_lock lk(mu);
    free_ids.push_back(id);
  }
};

/// RAII lease binding one slot id to the current thread for its lifetime.
struct ThreadSlotLease {
  const std::size_t id = SlotIdPool::instance().acquire();
  ~ThreadSlotLease() { SlotIdPool::instance().release(id); }
};

inline std::size_t thread_slot_id() noexcept {
  static thread_local const ThreadSlotLease lease;
  return lease.id;
}
}  // namespace detail

/// Number of threads that ever started publishing while all kThreadSlots
/// ids were leased to live threads — i.e. how often the wait-free private
/// path was unavailable and the shared RMW/overflow path was used instead.
[[nodiscard]] inline std::uint64_t overflowed_thread_count() {
  auto& pool = detail::SlotIdPool::instance();
  std::scoped_lock lk(pool.mu);
  return pool.overflow_threads;
}

/// Monotonic counter, striped per thread (see kThreadSlots): add() is a
/// relaxed load+store on a cache-line-padded cell only this thread writes,
/// value() sums the stripes. Implicitly readable as an integer so that
/// registry-backed counters can replace plain uint64_t struct fields
/// without touching their consumers. A read concurrent with writers may
/// miss in-flight adds; after writers quiesce it is exact. Gated on
/// metrics_enabled(): readings freeze while the switch is off — use
/// LocalCounter for functional accounting that must never stop.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta) noexcept {
    if (!metrics_enabled()) return;
    const std::size_t tid = detail::thread_slot_id();
    if (tid < kThreadSlots) {
      auto& c = slots_[tid].v;
      c.store(c.load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
    } else {
      overflow_.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  void inc() noexcept { add(1); }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t v = overflow_.load(std::memory_order_relaxed);
    for (const auto& c : slots_) v += c.v.load(std::memory_order_relaxed);
    return v;
  }
  operator std::uint64_t() const noexcept { return value(); }  // NOLINT(google-explicit-constructor)

  /// Not linearizable against concurrent writers (for tests and benches).
  void reset() noexcept {
    for (auto& c : slots_) c.v.store(0, std::memory_order_relaxed);
    overflow_.store(0, std::memory_order_relaxed);
  }

 private:
  /// One stripe per slot id, padded so neighbouring ids never share a line.
  struct alignas(kCacheLineBytes) Cell {
    std::atomic<std::uint64_t> v{0};
  };

  Cell slots_[kThreadSlots];
  std::atomic<std::uint64_t> overflow_{0};
};

/// Always-on single-cell relaxed atomic counter for *functional* accounting
/// that must keep counting while the metrics switch is off (obs::Counter
/// early-outs when disabled). blob::ClientCounters uses this for its
/// fault-tolerance bookkeeping — retries, hints, quorum shortfalls — which
/// feeds repair decisions and test oracles, not dashboards. fetch_add is an
/// RMW, but these objects are per-client, so contention is bounded by
/// design.
class LocalCounter {
 public:
  LocalCounter() = default;
  LocalCounter(const LocalCounter&) = delete;
  LocalCounter& operator=(const LocalCounter&) = delete;

  void add(std::uint64_t delta) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  operator std::uint64_t() const noexcept { return value(); }  // NOLINT(google-explicit-constructor)

  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time signed value (queue depths, open handles, buffered bytes).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept {
    if (metrics_enabled()) v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    if (metrics_enabled()) v_.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Thread-safe latency/size histogram with a wait-free write path: each
/// thread owns a private slot (lazily allocated, indexed by a process-wide
/// per-thread id), so add() is plain relaxed loads/stores on cells no other
/// thread writes — no lock, no RMW. merged() folds every slot back into one
/// bsc::Histogram. A snapshot taken while writers are mid-add may lag by the
/// in-flight operations; once writers quiesce (join), it is exact.
///
/// Threads that start while all kSlots ids are leased to live threads
/// (slot ids are recycled at thread exit, so only genuine >kSlots
/// concurrency gets here) share a spinlocked overflow histogram — correct,
/// just not wait-free.
class ShardedHistogram {
 public:
  static constexpr std::size_t kSlots = kThreadSlots;

  ShardedHistogram() = default;
  ~ShardedHistogram();
  ShardedHistogram(const ShardedHistogram&) = delete;
  ShardedHistogram& operator=(const ShardedHistogram&) = delete;

  void add(std::uint64_t value) noexcept {
    if (!metrics_enabled()) return;
    const std::size_t tid = detail::thread_slot_id();
    if (tid >= kSlots) {
      add_overflow(value);
      return;
    }
    Slot* s = slots_[tid].load(std::memory_order_relaxed);  // own prior store
    if (s == nullptr) s = claim_slot(tid);
    // Single-writer cells: load+store, no RMW — this is the whole reason the
    // hot path is wait-free.
    auto& cell = s->buckets[Histogram::bucket_index(value)];
    cell.store(cell.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    s->total.store(s->total.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
    s->sum.store(s->sum.load(std::memory_order_relaxed) + static_cast<double>(value),
                 std::memory_order_relaxed);
    if (value > s->max.load(std::memory_order_relaxed)) {
      s->max.store(value, std::memory_order_relaxed);
    }
  }

  /// Fold all slots into one histogram (bucket-wise sums).
  [[nodiscard]] Histogram merged() const;
  [[nodiscard]] std::uint64_t count() const noexcept;

  /// Zero every slot. Not linearizable against concurrent writers (an
  /// in-flight add may survive); for tests and bench-phase isolation.
  void reset() noexcept;

 private:
  /// One thread's private recorder: atomics for reader visibility, but only
  /// the owning thread ever writes, so updates are load+store, never RMW.
  /// Cache-line aligned so separately-claimed slots never share a line.
  struct alignas(kCacheLineBytes) Slot {
    std::atomic<std::uint64_t> buckets[Histogram::kBucketCount] = {};
    std::atomic<std::uint64_t> total{0};
    std::atomic<double> sum{0.0};
    std::atomic<std::uint64_t> max{0};
  };

  Slot* claim_slot(std::size_t tid) noexcept;
  void add_overflow(std::uint64_t value) noexcept;

  std::atomic<Slot*> slots_[kSlots] = {};
  mutable std::atomic_flag overflow_busy_ = ATOMIC_FLAG_INIT;
  Histogram overflow_;
};

/// One admitted slow operation.
struct SlowOp {
  std::string op;            ///< metric-style op name, e.g. "client.read"
  std::string key;           ///< blob key / path the call targeted
  std::uint64_t latency_us = 0;
  std::uint64_t at_us = 0;   ///< (simulated) completion time of the call
};

/// Threshold-configurable ring of the worst-latency calls seen so far: a
/// bounded min-heap on latency, so the cheapest survivor is evicted first.
/// The hot path is one relaxed atomic load: `gate_us_` caches the current
/// admission floor (max of the threshold and, once the heap is full, the
/// cheapest survivor), so calls that cannot qualify return without taking
/// the mutex. The gate is a hint — admission is re-checked under the lock.
class SlowOpLog {
 public:
  void configure(std::size_t capacity, std::uint64_t threshold_us);
  void observe(std::string_view op, std::string_view key, std::uint64_t latency_us,
               std::uint64_t at_us);

  /// Worst-first (descending latency).
  [[nodiscard]] std::vector<SlowOp> worst() const;
  [[nodiscard]] std::uint64_t threshold_us() const;
  [[nodiscard]] std::size_t capacity() const;
  void clear();

 private:
  /// Recompute `gate_us_` from the heap state. Caller holds `mu_`.
  void refresh_gate() noexcept;

  mutable std::mutex mu_;
  std::atomic<std::uint64_t> gate_us_{0};  ///< lock-free admission floor
  std::size_t capacity_ = 64;
  std::uint64_t threshold_us_ = 0;  ///< 0 = admit everything (worst-N still bounds)
  std::vector<SlowOp> heap_;        ///< min-heap by latency_us
};

/// Derived summary of one histogram series inside a snapshot.
struct HistogramStats {
  std::uint64_t count = 0;
  double mean = 0.0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t max = 0;
};

/// Point-in-time copy of every registered series. Counters and histogram
/// contents are subtractable (`delta_since`) so a bench phase can be
/// isolated from whatever ran before it.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, Histogram> histograms;
  std::vector<SlowOp> slow_ops;  ///< worst-first

  [[nodiscard]] HistogramStats histogram_stats(const std::string& name) const;

  /// Series-wise difference vs an `earlier` snapshot of the same registry:
  /// counters subtract (clamped at zero), histograms subtract bucket-wise
  /// (percentiles of the delta are exact; `max` is the newer cumulative max,
  /// an upper bound for the interval), gauges keep their newer point-in-time
  /// value, and slow ops keep the newer worst-list.
  [[nodiscard]] MetricsSnapshot delta_since(const MetricsSnapshot& earlier) const;

  /// Structured JSON export, shaped like the bench --json files: a `meta`
  /// object plus flat series maps (schema in EXPERIMENTS.md).
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition: dots become underscores, histograms export
  /// as summaries (quantile-labelled gauges plus _count/_sum).
  [[nodiscard]] std::string to_prometheus() const;
};

/// The process-wide registry. Lookup-or-create is locked and allocates; the
/// returned references are stable for the process lifetime (entries are
/// zeroed by reset(), never destroyed), so hot paths cache them.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  ShardedHistogram& histogram(std::string_view name);
  SlowOpLog& slow_ops() noexcept { return slow_ops_; }

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every registered series (references stay valid). Slow-op log is
  /// cleared too. For tests and bench phase isolation.
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<ShardedHistogram>, std::less<>> histograms_;
  SlowOpLog slow_ops_;
};

}  // namespace bsc::obs
