#include "kvstore/kv.hpp"

#include <algorithm>
#include <map>

#include "common/hash.hpp"
#include "common/strings.hpp"
#include "rpc/wire.hpp"

namespace bsc::kvstore {

KvStore::KvStore(blob::BlobStore& store, std::string name, KvConfig cfg)
    : store_(&store), name_(std::move(name)), cfg_(cfg) {
  if (cfg_.buckets == 0) cfg_.buckets = 1;
}

std::string KvStore::bucket_key(std::uint32_t bucket) const {
  return strfmt("kv!%s!bucket-%04u", name_.c_str(), bucket);
}

std::uint32_t KvStore::bucket_of(std::string_view key) const {
  return static_cast<std::uint32_t>(fnv1a64(key) % cfg_.buckets);
}

Bytes KvStore::encode_bucket(const Entries& entries) {
  rpc::WireWriter w;
  w.put_u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [k, v] : entries) {
    w.put_string(k);
    w.put_string(v);
  }
  return std::move(w).take();
}

Result<KvStore::Entries> KvStore::load_bucket(blob::BlobClient& client,
                                              std::uint32_t bucket,
                                              blob::Version* version) {
  // stat and read are two separate blob ops: a commit landing between them
  // hands us the size of one bucket incarnation and the bytes of another,
  // and the truncated-or-padded encoding decodes as garbage. Such a torn
  // snapshot is indistinguishable from real corruption here, but unlike
  // corruption it heals on reload (each tear requires a fresh concurrent
  // commit), so retry before concluding the bucket is damaged. A same-size
  // overwrite decodes fine with a stale version and is caught later by the
  // transaction's expect_version.
  constexpr std::uint32_t kTornLoadRetries = 8;
  Error torn{Errc::io_error, "corrupt bucket"};
  for (std::uint32_t attempt = 0; attempt < kTornLoadRetries; ++attempt) {
    auto st = client.stat(bucket_key(bucket));
    if (!st.ok()) {
      if (version) *version = 0;  // bucket blob not created yet
      return Entries{};
    }
    if (version) *version = st.value().version;
    auto data = client.read(bucket_key(bucket), 0, st.value().size);
    if (!data.ok()) return data.error();
    rpc::WireReader r(as_view(data.value()));
    auto count = r.get_u32();
    if (!count.ok()) {
      torn = {Errc::io_error, "corrupt bucket header"};
      continue;
    }
    Entries entries;
    entries.reserve(count.value());
    bool decoded = true;
    for (std::uint32_t i = 0; i < count.value(); ++i) {
      auto k = r.get_string();
      auto v = r.get_string();
      if (!k.ok() || !v.ok()) {
        torn = {Errc::io_error, "corrupt bucket entry"};
        decoded = false;
        break;
      }
      entries.emplace_back(std::move(k).take(), std::move(v).take());
    }
    if (decoded) return entries;
  }
  return {torn.code, std::move(torn.context)};
}

template <typename MutateFn>
Status KvStore::update_bucket(sim::SimAgent& agent, std::uint32_t bucket,
                              MutateFn&& mutate) {
  blob::BlobClient client(*store_, &agent);
  for (std::uint32_t attempt = 0; attempt < cfg_.max_txn_retries; ++attempt) {
    blob::Version version = 0;
    auto entries = load_bucket(client, bucket, &version);
    if (!entries.ok()) return entries.error();
    Status verdict = mutate(entries.value());
    if (!verdict.ok()) return verdict;  // e.g. erase of a missing key
    const Bytes encoded = encode_bucket(entries.value());
    auto txn = client.begin_transaction();
    txn.expect_version(bucket_key(bucket), version);
    // Replace content exactly: shrink first when the bucket got smaller.
    if (version != 0) txn.truncate(bucket_key(bucket), encoded.size());
    txn.write(bucket_key(bucket), 0, as_view(encoded));
    auto st = txn.commit();
    if (st.ok()) return Status::success();
    if (st.code() != Errc::conflict) return st;
    // Conflict: another writer landed first; reload and retry.
  }
  return {Errc::conflict, "bucket update retries exhausted"};
}

Status KvStore::put(sim::SimAgent& agent, std::string_view key, std::string_view value) {
  return update_bucket(agent, bucket_of(key), [&](Entries& entries) {
    for (auto& [k, v] : entries) {
      if (k == key) {
        v = std::string{value};
        return Status::success();
      }
    }
    entries.emplace_back(std::string{key}, std::string{value});
    return Status::success();
  });
}

Result<std::string> KvStore::get(sim::SimAgent& agent, std::string_view key) {
  blob::BlobClient client(*store_, &agent);
  auto entries = load_bucket(client, bucket_of(key), nullptr);
  if (!entries.ok()) return entries.error();
  for (const auto& [k, v] : entries.value()) {
    if (k == key) return v;
  }
  return {Errc::not_found, std::string{key}};
}

Status KvStore::erase(sim::SimAgent& agent, std::string_view key) {
  return update_bucket(agent, bucket_of(key), [&](Entries& entries) {
    const auto before = entries.size();
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&](const auto& kv) { return kv.first == key; }),
                  entries.end());
    if (entries.size() == before) return Status{Errc::not_found, std::string{key}};
    return Status::success();
  });
}

bool KvStore::contains(sim::SimAgent& agent, std::string_view key) {
  return get(agent, key).ok();
}

Status KvStore::put_many(sim::SimAgent& agent,
                         const std::vector<std::pair<std::string, std::string>>& pairs) {
  if (pairs.empty()) return Status::success();
  blob::BlobClient client(*store_, &agent);
  for (std::uint32_t attempt = 0; attempt < cfg_.max_txn_retries; ++attempt) {
    // Group by bucket, load each involved bucket, apply all mutations, then
    // commit every bucket image in ONE transaction with version guards —
    // all-or-nothing across the whole batch.
    std::map<std::uint32_t, Entries> images;
    std::map<std::uint32_t, blob::Version> versions;
    bool load_failed = false;
    for (const auto& [key, value] : pairs) {
      const std::uint32_t b = bucket_of(key);
      if (!images.count(b)) {
        blob::Version ver = 0;
        auto entries = load_bucket(client, b, &ver);
        if (!entries.ok()) {
          load_failed = true;
          break;
        }
        images.emplace(b, std::move(entries).take());
        versions.emplace(b, ver);
      }
      Entries& entries = images[b];
      bool replaced = false;
      for (auto& [k, v] : entries) {
        if (k == key) {
          v = value;
          replaced = true;
          break;
        }
      }
      if (!replaced) entries.emplace_back(key, value);
    }
    if (load_failed) return {Errc::io_error, "bucket load failed"};

    auto txn = client.begin_transaction();
    for (const auto& [b, entries] : images) {
      const Bytes encoded = encode_bucket(entries);
      txn.expect_version(bucket_key(b), versions[b]);
      if (versions[b] != 0) txn.truncate(bucket_key(b), encoded.size());
      txn.write(bucket_key(b), 0, as_view(encoded));
    }
    auto st = txn.commit();
    if (st.ok()) return Status::success();
    if (st.code() != Errc::conflict) return st;
  }
  return {Errc::conflict, "put_many retries exhausted"};
}

Result<std::vector<std::pair<std::string, std::string>>> KvStore::items(
    sim::SimAgent& agent) {
  blob::BlobClient client(*store_, &agent);
  Entries all;
  for (std::uint32_t b = 0; b < cfg_.buckets; ++b) {
    auto entries = load_bucket(client, b, nullptr);
    if (!entries.ok()) return entries.error();
    for (auto& kv : entries.value()) all.push_back(std::move(kv));
  }
  std::sort(all.begin(), all.end());
  return all;
}

std::uint64_t KvStore::approximate_count(sim::SimAgent& agent) {
  auto all = items(agent);
  return all.ok() ? all.value().size() : 0;
}

}  // namespace bsc::kvstore
