// KvStore — a key-value abstraction layered on the blob store.
//
// The paper motivates blobs "as a base for storage abstractions like
// key-value stores or time-series databases" (§I); Týr itself was built to
// host transactional KV workloads. This store demonstrates the layering:
//
//   * the key space is hash-partitioned into fixed buckets, one blob each
//     ("kv!<store>!bucket-NNNN"), so lookups touch exactly one blob;
//   * updates are optimistic read-modify-write cycles committed with a Týr
//     transaction carrying a version precondition — concurrent writers to
//     the same bucket retry instead of losing updates;
//   * no directories, no inodes: the entire store is a handful of blobs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "blob/client.hpp"
#include "common/result.hpp"

namespace bsc::kvstore {

struct KvConfig {
  std::uint32_t buckets = 64;
  std::uint32_t max_txn_retries = 64;
};

class KvStore {
 public:
  /// Binds to (does not own) a blob store; `name` scopes the bucket keys so
  /// multiple KvStores can share one blob namespace.
  KvStore(blob::BlobStore& store, std::string name, KvConfig cfg = {});

  /// Insert or overwrite. Retries on concurrent-writer conflicts.
  Status put(sim::SimAgent& agent, std::string_view key, std::string_view value);

  /// Point lookup.
  Result<std::string> get(sim::SimAgent& agent, std::string_view key);

  /// Delete; not_found when the key was absent.
  Status erase(sim::SimAgent& agent, std::string_view key);

  [[nodiscard]] bool contains(sim::SimAgent& agent, std::string_view key);

  /// Atomically put every pair (all-or-nothing across buckets) — the
  /// multi-blob transaction use case.
  Status put_many(sim::SimAgent& agent,
                  const std::vector<std::pair<std::string, std::string>>& pairs);

  /// All pairs, sorted by key (full store walk).
  Result<std::vector<std::pair<std::string, std::string>>> items(sim::SimAgent& agent);

  [[nodiscard]] std::uint64_t approximate_count(sim::SimAgent& agent);

  [[nodiscard]] const KvConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  using Entries = std::vector<std::pair<std::string, std::string>>;

  [[nodiscard]] std::string bucket_key(std::uint32_t bucket) const;
  [[nodiscard]] std::uint32_t bucket_of(std::string_view key) const;

  /// Decode a bucket blob ({count}[len-prefixed k,v]*); missing blob = empty.
  Result<Entries> load_bucket(blob::BlobClient& client, std::uint32_t bucket,
                              blob::Version* version);
  [[nodiscard]] static Bytes encode_bucket(const Entries& entries);

  /// One optimistic update cycle on a bucket; retried on conflict.
  template <typename MutateFn>
  Status update_bucket(sim::SimAgent& agent, std::uint32_t bucket, MutateFn&& mutate);

  blob::BlobStore* store_;
  std::string name_;
  KvConfig cfg_;
};

}  // namespace bsc::kvstore
