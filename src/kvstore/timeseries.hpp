// TimeSeriesStore — an append-oriented time-series database on blobs (the
// second abstraction the paper's §I motivates).
//
// Layout:
//   * points are fixed 16-byte records (timestamp, value) appended in time
//     order into segment blobs "ts!<store>!<series>!seg-NNNNNN", each
//     holding at most `points_per_segment` records;
//   * a small descriptor blob "ts!<store>!<series>" tracks the segment
//     count and the fill of the open segment; every append commits the
//     point and the descriptor update in one Týr transaction, so a reader
//     never observes a descriptor pointing past real data;
//   * range queries binary-search the ordered segments and scan only the
//     overlapping ones.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "blob/client.hpp"
#include "common/result.hpp"

namespace bsc::kvstore {

struct TsPoint {
  std::int64_t timestamp = 0;  ///< caller-defined units, must be non-decreasing
  double value = 0.0;
};

struct TsConfig {
  std::uint32_t points_per_segment = 1024;
  std::uint32_t max_txn_retries = 64;
};

struct TsAggregate {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

class TimeSeriesStore {
 public:
  TimeSeriesStore(blob::BlobStore& store, std::string name, TsConfig cfg = {});

  /// Append one point; timestamps must be non-decreasing per series.
  Status append(sim::SimAgent& agent, std::string_view series, TsPoint point);

  /// Append a batch (one transaction per touched segment boundary).
  Status append_batch(sim::SimAgent& agent, std::string_view series,
                      const std::vector<TsPoint>& points);

  /// All points with t0 <= timestamp <= t1, in time order.
  Result<std::vector<TsPoint>> query(sim::SimAgent& agent, std::string_view series,
                                     std::int64_t t0, std::int64_t t1);

  /// min/max/mean over a range without materializing every point upstream.
  Result<TsAggregate> aggregate(sim::SimAgent& agent, std::string_view series,
                                std::int64_t t0, std::int64_t t1);

  [[nodiscard]] Result<std::uint64_t> point_count(sim::SimAgent& agent,
                                                  std::string_view series);

  /// Series names present in the store (descriptor scan).
  Result<std::vector<std::string>> list_series(sim::SimAgent& agent);

  [[nodiscard]] const TsConfig& config() const noexcept { return cfg_; }

 private:
  struct Descriptor {
    std::uint64_t segments = 0;   ///< sealed + open
    std::uint64_t last_fill = 0;  ///< points in the open (last) segment
    std::int64_t last_timestamp = 0;
  };
  static constexpr std::uint64_t kPointBytes = 16;

  [[nodiscard]] std::string desc_key(std::string_view series) const;
  [[nodiscard]] std::string seg_key(std::string_view series, std::uint64_t seg) const;

  Result<Descriptor> load_descriptor(blob::BlobClient& client, std::string_view series,
                                     blob::Version* version);
  [[nodiscard]] static Bytes encode_descriptor(const Descriptor& d);
  [[nodiscard]] static Bytes encode_points(const std::vector<TsPoint>& pts,
                                           std::size_t from, std::size_t n);
  Result<std::vector<TsPoint>> read_segment(blob::BlobClient& client,
                                            std::string_view series, std::uint64_t seg,
                                            std::uint64_t fill);

  blob::BlobStore* store_;
  std::string name_;
  TsConfig cfg_;
};

}  // namespace bsc::kvstore
