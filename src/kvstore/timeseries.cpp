#include "kvstore/timeseries.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/strings.hpp"
#include "rpc/wire.hpp"

namespace bsc::kvstore {

TimeSeriesStore::TimeSeriesStore(blob::BlobStore& store, std::string name, TsConfig cfg)
    : store_(&store), name_(std::move(name)), cfg_(cfg) {
  if (cfg_.points_per_segment == 0) cfg_.points_per_segment = 1;
}

std::string TimeSeriesStore::desc_key(std::string_view series) const {
  return strfmt("ts!%s!%.*s", name_.c_str(), static_cast<int>(series.size()),
                series.data());
}

std::string TimeSeriesStore::seg_key(std::string_view series, std::uint64_t seg) const {
  return strfmt("ts!%s!%.*s!seg-%06llu", name_.c_str(), static_cast<int>(series.size()),
                series.data(), static_cast<unsigned long long>(seg));
}

Bytes TimeSeriesStore::encode_descriptor(const Descriptor& d) {
  rpc::WireWriter w;
  w.put_u64(d.segments);
  w.put_u64(d.last_fill);
  w.put_i64(d.last_timestamp);
  return std::move(w).take();
}

Result<TimeSeriesStore::Descriptor> TimeSeriesStore::load_descriptor(
    blob::BlobClient& client, std::string_view series, blob::Version* version) {
  auto st = client.stat(desc_key(series));
  if (!st.ok()) {
    if (version) *version = 0;
    return Descriptor{};
  }
  if (version) *version = st.value().version;
  auto data = client.read(desc_key(series), 0, st.value().size);
  if (!data.ok()) return data.error();
  rpc::WireReader r(as_view(data.value()));
  auto segments = r.get_u64();
  auto fill = r.get_u64();
  auto last_ts = r.get_i64();
  if (!segments.ok() || !fill.ok() || !last_ts.ok()) {
    return {Errc::io_error, "corrupt series descriptor"};
  }
  return Descriptor{segments.value(), fill.value(), last_ts.value()};
}

Bytes TimeSeriesStore::encode_points(const std::vector<TsPoint>& pts, std::size_t from,
                                     std::size_t n) {
  Bytes out(n * kPointBytes);
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(out.data() + i * kPointBytes, &pts[from + i].timestamp, 8);
    std::memcpy(out.data() + i * kPointBytes + 8, &pts[from + i].value, 8);
  }
  return out;
}

Result<std::vector<TsPoint>> TimeSeriesStore::read_segment(blob::BlobClient& client,
                                                           std::string_view series,
                                                           std::uint64_t seg,
                                                           std::uint64_t fill) {
  auto data = client.read(seg_key(series, seg), 0, fill * kPointBytes);
  if (!data.ok()) return data.error();
  const std::uint64_t n = data.value().size() / kPointBytes;
  std::vector<TsPoint> pts(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::memcpy(&pts[i].timestamp, data.value().data() + i * kPointBytes, 8);
    std::memcpy(&pts[i].value, data.value().data() + i * kPointBytes + 8, 8);
  }
  return pts;
}

Status TimeSeriesStore::append(sim::SimAgent& agent, std::string_view series,
                               TsPoint point) {
  return append_batch(agent, series, {point});
}

Status TimeSeriesStore::append_batch(sim::SimAgent& agent, std::string_view series,
                                     const std::vector<TsPoint>& points) {
  if (points.empty()) return Status::success();
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].timestamp < points[i - 1].timestamp) {
      return {Errc::invalid_argument, "timestamps must be non-decreasing"};
    }
  }
  blob::BlobClient client(*store_, &agent);
  for (std::uint32_t attempt = 0; attempt < cfg_.max_txn_retries; ++attempt) {
    blob::Version version = 0;
    auto desc_r = load_descriptor(client, series, &version);
    if (!desc_r.ok()) return desc_r.error();
    Descriptor d = desc_r.value();
    if (points.front().timestamp < d.last_timestamp) {
      return {Errc::invalid_argument, "timestamps must be non-decreasing"};
    }

    // Lay the batch into segments, committing point data + descriptor in
    // one transaction.
    auto txn = client.begin_transaction();
    std::size_t written = 0;
    Descriptor nd = d;
    if (nd.segments == 0) {
      nd.segments = 1;
      nd.last_fill = 0;
    }
    while (written < points.size()) {
      if (nd.last_fill == cfg_.points_per_segment) {
        ++nd.segments;
        nd.last_fill = 0;
      }
      const std::size_t room = cfg_.points_per_segment - nd.last_fill;
      const std::size_t n = std::min(room, points.size() - written);
      txn.write(seg_key(series, nd.segments - 1), nd.last_fill * kPointBytes,
                as_view(encode_points(points, written, n)));
      nd.last_fill += n;
      written += n;
    }
    nd.last_timestamp = points.back().timestamp;
    txn.expect_version(desc_key(series), version);
    txn.write(desc_key(series), 0, as_view(encode_descriptor(nd)));
    auto st = txn.commit();
    if (st.ok()) return Status::success();
    if (st.code() != Errc::conflict) return st;
  }
  return {Errc::conflict, "append retries exhausted"};
}

Result<std::vector<TsPoint>> TimeSeriesStore::query(sim::SimAgent& agent,
                                                    std::string_view series,
                                                    std::int64_t t0, std::int64_t t1) {
  blob::BlobClient client(*store_, &agent);
  auto desc_r = load_descriptor(client, series, nullptr);
  if (!desc_r.ok()) return desc_r.error();
  const Descriptor d = desc_r.value();
  std::vector<TsPoint> out;
  if (d.segments == 0 || t1 < t0) return out;

  // Segments are time-ordered; skip those entirely outside the range by
  // peeking at their first timestamp (cheap 16-byte reads).
  for (std::uint64_t seg = 0; seg < d.segments; ++seg) {
    const std::uint64_t fill =
        seg + 1 == d.segments ? d.last_fill : cfg_.points_per_segment;
    if (fill == 0) continue;
    auto head = client.read(seg_key(series, seg), 0, kPointBytes);
    if (!head.ok()) return head.error();
    std::int64_t first_ts = 0;
    std::memcpy(&first_ts, head.value().data(), 8);
    if (first_ts > t1) break;  // everything later is out of range
    auto pts = read_segment(client, series, seg, fill);
    if (!pts.ok()) return pts.error();
    if (!pts.value().empty() && pts.value().back().timestamp < t0) continue;
    for (const TsPoint& p : pts.value()) {
      if (p.timestamp >= t0 && p.timestamp <= t1) out.push_back(p);
    }
  }
  return out;
}

Result<TsAggregate> TimeSeriesStore::aggregate(sim::SimAgent& agent,
                                               std::string_view series, std::int64_t t0,
                                               std::int64_t t1) {
  auto pts = query(agent, series, t0, t1);
  if (!pts.ok()) return pts.error();
  TsAggregate agg;
  agg.min = std::numeric_limits<double>::infinity();
  agg.max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (const TsPoint& p : pts.value()) {
    ++agg.count;
    sum += p.value;
    agg.min = std::min(agg.min, p.value);
    agg.max = std::max(agg.max, p.value);
  }
  if (agg.count == 0) {
    agg.min = agg.max = 0.0;
  } else {
    agg.mean = sum / static_cast<double>(agg.count);
  }
  return agg;
}

Result<std::uint64_t> TimeSeriesStore::point_count(sim::SimAgent& agent,
                                                   std::string_view series) {
  blob::BlobClient client(*store_, &agent);
  auto desc_r = load_descriptor(client, series, nullptr);
  if (!desc_r.ok()) return desc_r.error();
  const Descriptor d = desc_r.value();
  if (d.segments == 0) return std::uint64_t{0};
  return (d.segments - 1) * cfg_.points_per_segment + d.last_fill;
}

Result<std::vector<std::string>> TimeSeriesStore::list_series(sim::SimAgent& agent) {
  blob::BlobClient client(*store_, &agent);
  const std::string prefix = strfmt("ts!%s!", name_.c_str());
  auto blobs = client.scan(prefix);
  if (!blobs.ok()) return blobs.error();
  std::vector<std::string> out;
  for (const auto& b : blobs.value()) {
    std::string_view rest{b.key};
    rest.remove_prefix(prefix.size());
    if (rest.find("!seg-") != std::string_view::npos) continue;  // segment blob
    out.emplace_back(rest);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bsc::kvstore
