#include "h5lite/h5file.hpp"

#include <algorithm>

#include "rpc/wire.hpp"

namespace bsc::h5lite {

Result<H5File> H5File::create(mpiio::MpiIo& io, std::string_view path) {
  auto fh = io.file_open(path, mpiio::AccessMode::rdwr_create());
  if (!fh.ok()) return fh.error();
  return H5File(io, fh.value(), /*writable=*/true);
}

Result<H5File> H5File::open(mpiio::MpiIo& io, std::string_view path) {
  auto fh = io.file_open(path, mpiio::AccessMode::read_only());
  if (!fh.ok()) return fh.error();
  H5File file(io, fh.value(), /*writable=*/false);
  auto super = io.read_at(fh.value(), 0, kSuperblockBytes);
  if (!super.ok()) return super.error();
  rpc::WireReader r(as_view(super.value()));
  auto magic = r.get_u64();
  auto index_off = r.get_u64();
  auto index_len = r.get_u64();
  if (!magic.ok() || magic.value() != kMagic || !index_off.ok() || !index_len.ok()) {
    (void)io.file_close(fh.value());
    return {Errc::io_error, "not an H5Lite file: " + std::string{path}};
  }
  auto index = io.read_at(fh.value(), index_off.value(), index_len.value());
  if (!index.ok()) return index.error();
  auto st = file.decode_index(as_view(index.value()));
  if (!st.ok()) return st.error();
  return file;
}

std::uint64_t H5File::data_end() const {
  std::uint64_t end = kSuperblockBytes;
  for (const auto& d : datasets_) {
    end = std::max(end, d.file_offset + d.payload_bytes());
  }
  return end;
}

Result<std::size_t> H5File::create_dataset(std::string_view name, std::uint64_t rows,
                                           std::uint64_t cols, std::uint64_t elem_bytes) {
  if (!writable_ || closed_) return {Errc::read_only, "file not writable"};
  if (rows == 0 || cols == 0 || elem_bytes == 0) {
    return {Errc::invalid_argument, "empty dataset shape"};
  }
  if (dataset_by_name(name).ok()) return {Errc::already_exists, std::string{name}};
  DatasetInfo d;
  d.name = std::string{name};
  d.rows = rows;
  d.cols = cols;
  d.elem_bytes = elem_bytes;
  d.file_offset = data_end();  // deterministic: identical on every rank
  datasets_.push_back(std::move(d));
  return datasets_.size() - 1;
}

Status H5File::write_rows(std::size_t dataset, std::uint64_t row0, std::uint64_t nrows,
                          ByteView data) {
  if (!writable_ || closed_) return {Errc::read_only, "file not writable"};
  if (dataset >= datasets_.size()) return {Errc::not_found, "dataset id"};
  const DatasetInfo& d = datasets_[dataset];
  if (row0 + nrows > d.rows) return {Errc::out_of_range, d.name};
  if (data.size() != nrows * d.row_bytes()) {
    return {Errc::invalid_argument, "data size != nrows * row_bytes"};
  }
  auto w = io_->write_at(fh_, d.file_offset + row0 * d.row_bytes(), data);
  return w.ok() ? Status::success() : Status{w.error()};
}

Status H5File::write_rows_all(std::size_t dataset, std::uint64_t row0, std::uint64_t nrows,
                              ByteView data) {
  if (!writable_ || closed_) return {Errc::read_only, "file not writable"};
  if (dataset >= datasets_.size()) return {Errc::not_found, "dataset id"};
  const DatasetInfo& d = datasets_[dataset];
  if (row0 + nrows > d.rows) return {Errc::out_of_range, d.name};
  if (data.size() != nrows * d.row_bytes()) {
    return {Errc::invalid_argument, "data size != nrows * row_bytes"};
  }
  auto w = io_->write_at_all(fh_, d.file_offset + row0 * d.row_bytes(), data);
  return w.ok() ? Status::success() : Status{w.error()};
}

Result<Bytes> H5File::read_rows(std::size_t dataset, std::uint64_t row0,
                                std::uint64_t nrows) {
  if (dataset >= datasets_.size()) return {Errc::not_found, "dataset id"};
  const DatasetInfo& d = datasets_[dataset];
  if (row0 + nrows > d.rows) return {Errc::out_of_range, d.name};
  return io_->read_at(fh_, d.file_offset + row0 * d.row_bytes(),
                      nrows * d.row_bytes());
}

Status H5File::set_attribute(std::string_view name, std::string_view value) {
  if (!writable_ || closed_) return {Errc::read_only, "file not writable"};
  for (auto& [k, v] : attributes_) {
    if (k == name) {
      v = std::string{value};
      return Status::success();
    }
  }
  attributes_.emplace_back(std::string{name}, std::string{value});
  return Status::success();
}

Result<std::string> H5File::attribute(std::string_view name) const {
  for (const auto& [k, v] : attributes_) {
    if (k == name) return v;
  }
  return {Errc::not_found, std::string{name}};
}

Result<std::size_t> H5File::dataset_by_name(std::string_view name) const {
  for (std::size_t i = 0; i < datasets_.size(); ++i) {
    if (datasets_[i].name == name) return i;
  }
  return {Errc::not_found, std::string{name}};
}

Bytes H5File::encode_index() const {
  rpc::WireWriter w;
  w.put_u32(static_cast<std::uint32_t>(datasets_.size()));
  for (const auto& d : datasets_) {
    w.put_string(d.name);
    w.put_u64(d.rows);
    w.put_u64(d.cols);
    w.put_u64(d.elem_bytes);
    w.put_u64(d.file_offset);
  }
  w.put_u32(static_cast<std::uint32_t>(attributes_.size()));
  for (const auto& [k, v] : attributes_) {
    w.put_string(k);
    w.put_string(v);
  }
  return std::move(w).take();
}

Status H5File::decode_index(ByteView data) {
  rpc::WireReader r(data);
  auto nd = r.get_u32();
  if (!nd.ok()) return {Errc::io_error, "corrupt index"};
  datasets_.clear();
  for (std::uint32_t i = 0; i < nd.value(); ++i) {
    DatasetInfo d;
    auto name = r.get_string();
    auto rows = r.get_u64();
    auto cols = r.get_u64();
    auto elem = r.get_u64();
    auto off = r.get_u64();
    if (!name.ok() || !rows.ok() || !cols.ok() || !elem.ok() || !off.ok()) {
      return {Errc::io_error, "corrupt dataset record"};
    }
    d.name = std::move(name).take();
    d.rows = rows.value();
    d.cols = cols.value();
    d.elem_bytes = elem.value();
    d.file_offset = off.value();
    datasets_.push_back(std::move(d));
  }
  auto na = r.get_u32();
  if (!na.ok()) return {Errc::io_error, "corrupt attribute count"};
  attributes_.clear();
  for (std::uint32_t i = 0; i < na.value(); ++i) {
    auto k = r.get_string();
    auto v = r.get_string();
    if (!k.ok() || !v.ok()) return {Errc::io_error, "corrupt attribute"};
    attributes_.emplace_back(std::move(k).take(), std::move(v).take());
  }
  return Status::success();
}

Status H5File::close() {
  if (closed_) return {Errc::closed, "already closed"};
  closed_ = true;
  if (writable_) {
    // Rank 0 persists index then superblock (ordering matters: a reader
    // that sees the new superblock must find the index it points to).
    const std::uint64_t index_off = data_end();
    if (io_->rank() == 0) {
      const Bytes index = encode_index();
      auto w = io_->write_at(fh_, index_off, as_view(index));
      if (!w.ok()) return w.error();
      rpc::WireWriter sb;
      sb.put_u64(kMagic);
      sb.put_u64(index_off);
      sb.put_u64(index.size());
      sb.put_u64(0);  // reserved
      auto w2 = io_->write_at(fh_, 0, as_view(sb.buffer()));
      if (!w2.ok()) return w2.error();
    }
    auto st = io_->file_sync(fh_);
    if (!st.ok()) return st;
  }
  return io_->file_close(fh_);
}

}  // namespace bsc::h5lite
