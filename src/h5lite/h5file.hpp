// H5Lite — a minimal HDF5-style container format on top of the MPI-IO
// library (src/mpiio), standing in for the HDF5/NetCDF/ADIOS layer of the
// common HPC I/O stack (§II-A: "most HPC applications do not talk to the
// file system directly ... HDF5 or ADIOS").
//
// One file holds named 2-D datasets plus string attributes:
//
//   [superblock: magic, version, index_offset, index_bytes]
//   [dataset 0 payload][dataset 1 payload]...
//   [index: datasets {name, rows, cols, elem_bytes, offset} + attributes]
//
// Dataset payloads are row-major and contiguous, so a rank's row range maps
// to one contiguous byte range — the access pattern collective I/O loves.
//
// Collective-call discipline (as in real parallel HDF5): create/open,
// create_dataset, set_attribute and close are collective — every rank of
// the communicator calls them in the same order with the same arguments;
// each rank deterministically derives the identical layout, so no metadata
// traffic is needed until close, when rank 0 persists index + superblock.
// write_rows/read_rows are independent; write_rows_all is collective.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "mpiio/mpi_file.hpp"

namespace bsc::h5lite {

struct DatasetInfo {
  std::string name;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t elem_bytes = 0;
  std::uint64_t file_offset = 0;

  [[nodiscard]] std::uint64_t row_bytes() const noexcept { return cols * elem_bytes; }
  [[nodiscard]] std::uint64_t payload_bytes() const noexcept { return rows * row_bytes(); }
};

class H5File {
 public:
  /// Collective create (truncates any previous content logically: the new
  /// index supersedes it).
  static Result<H5File> create(mpiio::MpiIo& io, std::string_view path);
  /// Collective open for reading: loads superblock + index on every rank.
  static Result<H5File> open(mpiio::MpiIo& io, std::string_view path);

  /// Collective: defines a dataset and allocates its contiguous region.
  /// Returns the dataset id used by the I/O calls.
  Result<std::size_t> create_dataset(std::string_view name, std::uint64_t rows,
                                     std::uint64_t cols, std::uint64_t elem_bytes);

  /// Independent write of rows [row0, row0+nrows); data must be exactly
  /// nrows * row_bytes long.
  Status write_rows(std::size_t dataset, std::uint64_t row0, std::uint64_t nrows,
                    ByteView data);
  /// Collective variant: two-phase aggregation via MPI-IO.
  Status write_rows_all(std::size_t dataset, std::uint64_t row0, std::uint64_t nrows,
                        ByteView data);

  Result<Bytes> read_rows(std::size_t dataset, std::uint64_t row0, std::uint64_t nrows);

  /// Collective: file-level string attribute (persisted in the index).
  Status set_attribute(std::string_view name, std::string_view value);
  [[nodiscard]] Result<std::string> attribute(std::string_view name) const;

  [[nodiscard]] const std::vector<DatasetInfo>& datasets() const noexcept {
    return datasets_;
  }
  [[nodiscard]] Result<std::size_t> dataset_by_name(std::string_view name) const;

  /// Collective close: rank 0 writes index + superblock; all ranks sync.
  Status close();

 private:
  static constexpr std::uint64_t kMagic = 0x4835'4C49'5445'0001ULL;  // "H5LITE\1"
  static constexpr std::uint64_t kSuperblockBytes = 32;

  H5File(mpiio::MpiIo& io, vfs::FileHandle fh, bool writable)
      : io_(&io), fh_(fh), writable_(writable) {}

  [[nodiscard]] Bytes encode_index() const;
  Status decode_index(ByteView data);
  [[nodiscard]] std::uint64_t data_end() const;

  mpiio::MpiIo* io_;
  vfs::FileHandle fh_ = vfs::kInvalidHandle;
  bool writable_ = false;
  bool closed_ = false;
  std::vector<DatasetInfo> datasets_;
  std::vector<std::pair<std::string, std::string>> attributes_;
};

}  // namespace bsc::h5lite
