#include "sim/net_model.hpp"

#include <cmath>

namespace bsc::sim {

NetProfile NetProfile::gigabit_ethernet() {
  return {.name = "gbe", .rtt_us = 100, .bytes_per_us = 117.0,
          .mtu_bytes = 1500, .per_packet_us = 1};
}

NetProfile NetProfile::infiniband_ddr() {
  return {.name = "ib-ddr-4x", .rtt_us = 4, .bytes_per_us = 6000.0,
          .mtu_bytes = 2048, .per_packet_us = 0};
}

SimMicros NetModel::transfer_us(std::uint64_t payload_bytes) const noexcept {
  const std::uint64_t packets =
      payload_bytes == 0 ? 1 : (payload_bytes + p_.mtu_bytes - 1) / p_.mtu_bytes;
  const auto wire = static_cast<SimMicros>(
      std::llround(static_cast<double>(payload_bytes) / p_.bytes_per_us));
  return p_.rtt_us / 2 + wire + static_cast<SimMicros>(packets) * p_.per_packet_us;
}

SimMicros NetModel::rpc_us(std::uint64_t request_bytes,
                           std::uint64_t response_bytes) const noexcept {
  return transfer_us(request_bytes) + transfer_us(response_bytes);
}

}  // namespace bsc::sim
