// Network cost model. Two profiles matching the paper's testbed (§IV-B):
// Gigabit Ethernet (MTU 1500) and 4x 20G DDR InfiniBand.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace bsc::sim {

struct NetProfile {
  std::string name;
  SimMicros rtt_us;          ///< request/response round-trip latency
  double bytes_per_us;       ///< effective unidirectional bandwidth
  std::uint64_t mtu_bytes;   ///< per-packet segmentation unit
  SimMicros per_packet_us;   ///< per-packet processing overhead

  /// Gigabit Ethernet: ~100 us RTT, ~117 MB/s wire rate, MTU 1500.
  static NetProfile gigabit_ethernet();
  /// 4x 20G DDR InfiniBand: ~4 us RTT, ~6 GB/s effective, 2 KiB MTU.
  static NetProfile infiniband_ddr();
};

class NetModel {
 public:
  explicit NetModel(NetProfile p = NetProfile::gigabit_ethernet()) : p_(std::move(p)) {}

  /// One-way transfer time for a message carrying `payload_bytes`.
  [[nodiscard]] SimMicros transfer_us(std::uint64_t payload_bytes) const noexcept;

  /// Full RPC cost: request out, response back, payload on the larger leg.
  [[nodiscard]] SimMicros rpc_us(std::uint64_t request_bytes,
                                 std::uint64_t response_bytes) const noexcept;

  [[nodiscard]] const NetProfile& profile() const noexcept { return p_; }

 private:
  NetProfile p_;
};

}  // namespace bsc::sim
