// Simulated-time accounting.
//
// The cluster is simulated analytically: services execute instantly in real
// time but every operation *charges* simulated microseconds. Each logical
// client (an MPI rank, a Spark task, an example program) owns a SimAgent
// whose clock advances along that client's critical path. Shared server
// resources are modelled by SimNode's atomic busy-until timestamp
// (src/sim/node.hpp), which introduces queueing delay under contention.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/units.hpp"

namespace bsc::sim {

/// Per-client simulated clock. Not thread-safe by design: one agent belongs
/// to exactly one logical thread of execution (CP.2 — no sharing).
class SimAgent {
 public:
  SimAgent() = default;
  explicit SimAgent(SimMicros start) : now_(start) {}

  [[nodiscard]] SimMicros now() const noexcept { return now_; }

  /// Advance the clock by a non-negative duration.
  void charge(SimMicros dur) noexcept { now_ += std::max<SimMicros>(0, dur); }

  /// Move the clock forward to `t` if `t` is later (used when an operation
  /// completes at an absolute simulated time computed by a server).
  void advance_to(SimMicros t) noexcept { now_ = std::max(now_, t); }

  /// Fork a child agent that starts at this agent's current time (e.g., a
  /// task spawned by a driver). Join with `join`.
  [[nodiscard]] SimAgent fork() const noexcept { return SimAgent(now_); }

  /// Join a child: the parent resumes no earlier than the child finished.
  void join(const SimAgent& child) noexcept { advance_to(child.now()); }

 private:
  SimMicros now_ = 0;
};

}  // namespace bsc::sim
