// A simulated cluster node: a single-server queue with an atomic
// busy-until timestamp, plus an attached disk model for storage nodes.
//
// The queueing discipline is work-conserving FCFS in *simulated* time:
// a request arriving (in simulated time) while the node is busy starts when
// the node frees up. Because real threads race to reserve service windows,
// the reservation is a CAS loop — the result is a linearizable sequence of
// non-overlapping service intervals, which is exactly a single-server queue.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "sim/disk_model.hpp"
#include "sim/page_cache.hpp"

namespace bsc::sim {

enum class NodeRole { compute, storage, metadata };

class SimNode {
 public:
  SimNode(std::uint32_t id, NodeRole role, DiskParams disk = DiskParams::hdd_250gb(),
          std::uint64_t page_cache_bytes = 48ULL << 20)
      : id_(id), role_(role), disk_(disk), cache_(page_cache_bytes) {}

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] NodeRole role() const noexcept { return role_; }
  [[nodiscard]] const DiskModel& disk() const noexcept { return disk_; }
  /// Node-local page cache shared by every storage service on the node.
  [[nodiscard]] PageCache& cache() noexcept { return cache_; }

  /// Reserve a service window of `service_us` starting no earlier than
  /// `arrival_us`. Returns the completion time. Thread-safe.
  SimMicros serve(SimMicros arrival_us, SimMicros service_us) noexcept;

  /// Total busy time accumulated (for utilization reporting).
  [[nodiscard]] SimMicros busy_total() const noexcept {
    return busy_total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Reset queue state between experiments.
  void reset() noexcept;

 private:
  std::uint32_t id_;
  NodeRole role_;
  DiskModel disk_;
  PageCache cache_;
  std::atomic<SimMicros> busy_until_{0};
  std::atomic<SimMicros> busy_total_{0};
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace bsc::sim
