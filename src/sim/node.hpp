// A simulated cluster node: a single-server queue with an atomic
// busy-until timestamp, plus an attached disk model for storage nodes.
//
// The queueing discipline is work-conserving FCFS in *simulated* time:
// a request arriving (in simulated time) while the node is busy starts when
// the node frees up. Because real threads race to reserve service windows,
// the reservation is a CAS loop — the result is a linearizable sequence of
// non-overlapping service intervals, which is exactly a single-server queue.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "sim/disk_model.hpp"
#include "sim/page_cache.hpp"

namespace bsc::sim {

enum class NodeRole { compute, storage, metadata };

/// Bounded-backlog admission policy for a node. Both limits default to 0 =
/// unbounded (the pre-overload-control behavior). A request arriving while
/// the queueing delay exceeds `max_queue_us`, or while the estimated number
/// of waiting requests exceeds `max_queue_depth`, should be shed by the
/// transport (Errc::overloaded) instead of joining the queue — queueing past
/// the caller's patience converts capacity into dead work.
struct OverloadConfig {
  SimMicros max_queue_us = 0;         ///< max backlog in simulated time (0 = off)
  std::uint64_t max_queue_depth = 0;  ///< max estimated queued requests (0 = off)
};

class SimNode {
 public:
  SimNode(std::uint32_t id, NodeRole role, DiskParams disk = DiskParams::hdd_250gb(),
          std::uint64_t page_cache_bytes = 48ULL << 20)
      : id_(id), role_(role), disk_(disk), cache_(page_cache_bytes) {}

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] NodeRole role() const noexcept { return role_; }
  [[nodiscard]] const DiskModel& disk() const noexcept { return disk_; }
  /// Node-local page cache shared by every storage service on the node.
  [[nodiscard]] PageCache& cache() noexcept { return cache_; }

  /// Reserve a service window of `service_us` starting no earlier than
  /// `arrival_us`. Returns the completion time. Thread-safe.
  SimMicros serve(SimMicros arrival_us, SimMicros service_us) noexcept;

  /// Total busy time accumulated (for utilization reporting).
  [[nodiscard]] SimMicros busy_total() const noexcept {
    return busy_total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

  // --- bounded backlog (admission control) ---

  /// Install the admission policy. Fields are stored as relaxed atomics so a
  /// test/bench can flip limits while agents run; no ordering is implied.
  void set_overload(OverloadConfig cfg) noexcept {
    max_queue_us_.store(cfg.max_queue_us, std::memory_order_relaxed);
    max_queue_depth_.store(cfg.max_queue_depth, std::memory_order_relaxed);
  }
  [[nodiscard]] OverloadConfig overload() const noexcept {
    return {max_queue_us_.load(std::memory_order_relaxed),
            max_queue_depth_.load(std::memory_order_relaxed)};
  }

  /// Queueing delay a request arriving at `now` would suffer before service
  /// starts (0 when the node is idle at `now`).
  [[nodiscard]] SimMicros queue_delay(SimMicros now) const noexcept {
    const SimMicros busy = busy_until_.load(std::memory_order_relaxed);
    return busy > now ? busy - now : 0;
  }

  /// Estimated requests currently waiting: backlog time divided by the mean
  /// observed service time. The queue holds reservations, not a list, so
  /// this is an estimator — good enough for a depth cap.
  [[nodiscard]] std::uint64_t estimated_queue_depth(SimMicros now) const noexcept;

  /// True when a request arriving at `now` exceeds the installed backlog
  /// bounds and should be shed instead of queued.
  [[nodiscard]] bool would_shed(SimMicros now) const noexcept;

  /// Shed accounting (incremented by the transport on every shed verdict).
  void note_shed() noexcept { sheds_.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t sheds() const noexcept {
    return sheds_.load(std::memory_order_relaxed);
  }

  /// Reset queue state between experiments.
  void reset() noexcept;

 private:
  std::uint32_t id_;
  NodeRole role_;
  DiskModel disk_;
  PageCache cache_;
  std::atomic<SimMicros> busy_until_{0};
  std::atomic<SimMicros> busy_total_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<SimMicros> max_queue_us_{0};
  std::atomic<std::uint64_t> max_queue_depth_{0};
  std::atomic<std::uint64_t> sheds_{0};
};

}  // namespace bsc::sim
