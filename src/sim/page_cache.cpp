#include "sim/page_cache.hpp"

#include <algorithm>

#include "common/hash.hpp"
#include "obs/metrics.hpp"

namespace bsc::sim {

namespace {
std::uint32_t round_up_pow2(std::uint32_t v) {
  std::uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Process-wide cache series (aggregated across every node's cache; the
/// per-shard counters below stay the per-instance source of truth).
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
};

CacheMetrics& cache_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static CacheMetrics m{reg.counter("cache.hits"), reg.counter("cache.misses"),
                        reg.counter("cache.evictions")};
  return m;
}
}  // namespace

PageCache::PageCache(std::uint64_t capacity_bytes, std::uint32_t shards) {
  const std::uint32_t count = round_up_pow2(std::max<std::uint32_t>(1, shards));
  mask_ = count - 1;
  shards_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>(capacity_bytes / count));
  }
}

PageCache::Shard& PageCache::shard_of(std::uint64_t key) const {
  // mix64 so that sequential object ids (common for block numbers) spread
  // across shards instead of striding through them.
  return *shards_[mix64(key) & mask_];
}

bool PageCache::touch_read(std::uint64_t key, std::uint64_t bytes) {
  Shard& s = shard_of(key);
  std::scoped_lock lk(s.mu);
  auto it = s.entries.find(key);
  if (it != s.entries.end()) {
    ++s.hits;
    cache_metrics().hits.inc();
    s.lru.splice(s.lru.begin(), s.lru, it->second.pos);
    if (bytes > it->second.bytes) {
      s.bytes += bytes - it->second.bytes;
      it->second.bytes = bytes;
      s.evict_locked();
    }
    return true;
  }
  ++s.misses;
  cache_metrics().misses.inc();
  s.insert_locked(key, bytes);
  return false;
}

void PageCache::touch_write(std::uint64_t key, std::uint64_t bytes) {
  Shard& s = shard_of(key);
  std::scoped_lock lk(s.mu);
  auto it = s.entries.find(key);
  if (it != s.entries.end()) {
    s.lru.splice(s.lru.begin(), s.lru, it->second.pos);
    if (bytes > it->second.bytes) {
      s.bytes += bytes - it->second.bytes;
      it->second.bytes = bytes;
      s.evict_locked();
    }
    return;
  }
  s.insert_locked(key, bytes);
}

void PageCache::invalidate(std::uint64_t key) {
  Shard& s = shard_of(key);
  std::scoped_lock lk(s.mu);
  auto it = s.entries.find(key);
  if (it == s.entries.end()) return;
  s.bytes -= it->second.bytes;
  s.lru.erase(it->second.pos);
  s.entries.erase(it);
}

void PageCache::clear() {
  for (auto& s : shards_) {
    std::scoped_lock lk(s->mu);
    s->lru.clear();
    s->entries.clear();
    s->bytes = 0;
  }
}

std::uint64_t PageCache::bytes_cached() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::scoped_lock lk(s->mu);
    total += s->bytes;
  }
  return total;
}

std::uint64_t PageCache::hits() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::scoped_lock lk(s->mu);
    total += s->hits;
  }
  return total;
}

std::uint64_t PageCache::misses() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::scoped_lock lk(s->mu);
    total += s->misses;
  }
  return total;
}

std::uint64_t PageCache::evictions() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::scoped_lock lk(s->mu);
    total += s->evictions;
  }
  return total;
}

PageCache::ShardCounters PageCache::shard_counters(std::size_t i) const {
  const Shard& s = *shards_[i];
  std::scoped_lock lk(s.mu);
  return ShardCounters{s.hits, s.misses, s.evictions, s.bytes};
}

void PageCache::Shard::insert_locked(std::uint64_t key, std::uint64_t obj_bytes) {
  if (obj_bytes > capacity) return;  // never cache objects larger than the budget
  lru.push_front(key);
  entries[key] = Entry{obj_bytes, lru.begin()};
  bytes += obj_bytes;
  evict_locked();
}

void PageCache::Shard::evict_locked() {
  while (bytes > capacity && !lru.empty()) {
    const std::uint64_t victim = lru.back();
    lru.pop_back();
    auto it = entries.find(victim);
    bytes -= it->second.bytes;
    entries.erase(it);
    ++evictions;
    cache_metrics().evictions.inc();
  }
}

}  // namespace bsc::sim
