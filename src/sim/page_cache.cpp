#include "sim/page_cache.hpp"

namespace bsc::sim {

bool PageCache::touch_read(std::uint64_t key, std::uint64_t bytes) {
  std::scoped_lock lk(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    if (bytes > it->second.bytes) {
      bytes_ += bytes - it->second.bytes;
      it->second.bytes = bytes;
      evict_locked();
    }
    return true;
  }
  ++misses_;
  insert_locked(key, bytes);
  return false;
}

void PageCache::touch_write(std::uint64_t key, std::uint64_t bytes) {
  std::scoped_lock lk(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    if (bytes > it->second.bytes) {
      bytes_ += bytes - it->second.bytes;
      it->second.bytes = bytes;
      evict_locked();
    }
    return;
  }
  insert_locked(key, bytes);
}

void PageCache::invalidate(std::uint64_t key) {
  std::scoped_lock lk(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.pos);
  entries_.erase(it);
}

void PageCache::clear() {
  std::scoped_lock lk(mu_);
  lru_.clear();
  entries_.clear();
  bytes_ = 0;
}

std::uint64_t PageCache::bytes_cached() const {
  std::scoped_lock lk(mu_);
  return bytes_;
}

std::uint64_t PageCache::hits() const {
  std::scoped_lock lk(mu_);
  return hits_;
}

std::uint64_t PageCache::misses() const {
  std::scoped_lock lk(mu_);
  return misses_;
}

void PageCache::insert_locked(std::uint64_t key, std::uint64_t bytes) {
  if (bytes > capacity_) return;  // never cache objects larger than the budget
  lru_.push_front(key);
  entries_[key] = Entry{bytes, lru_.begin()};
  bytes_ += bytes;
  evict_locked();
}

void PageCache::evict_locked() {
  while (bytes_ > capacity_ && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    bytes_ -= it->second.bytes;
    entries_.erase(it);
  }
}

}  // namespace bsc::sim
