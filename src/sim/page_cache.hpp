// Per-node page-cache model: an LRU over object identifiers with a byte
// budget (the node's RAM available for caching — parapluie nodes have 48 GB,
// scaled 1:1024 to 48 MiB).
//
// Every storage service on a node (blob server, OST, HDFS datanode) consults
// the same cache: a read that hits skips the disk entirely; reads that miss
// and all writes install the object (write-through). Whole objects are the
// caching unit — an approximation that matches the small-object metadata
// blobs exactly and streaming data closely enough.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

namespace bsc::sim {

class PageCache {
 public:
  explicit PageCache(std::uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

  /// Record a read of object `key` totalling `bytes`; returns true when the
  /// object was resident (the disk access is skipped).
  bool touch_read(std::uint64_t key, std::uint64_t bytes);

  /// Record a write: the object becomes resident (write-through).
  void touch_write(std::uint64_t key, std::uint64_t bytes);

  /// Drop an object (delete/truncate invalidation).
  void invalidate(std::uint64_t key);

  void clear();

  [[nodiscard]] std::uint64_t bytes_cached() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;

 private:
  void insert_locked(std::uint64_t key, std::uint64_t bytes);
  void evict_locked();

  const std::uint64_t capacity_;
  mutable std::mutex mu_;
  std::list<std::uint64_t> lru_;  ///< front = most recent
  struct Entry {
    std::uint64_t bytes = 0;
    std::list<std::uint64_t>::iterator pos;
  };
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::uint64_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace bsc::sim
