// Per-node page-cache model: an LRU over object identifiers with a byte
// budget (the node's RAM available for caching — parapluie nodes have 48 GB,
// scaled 1:1024 to 48 MiB).
//
// Every storage service on a node (blob server, OST, HDFS datanode) consults
// the same cache: a read that hits skips the disk entirely; reads that miss
// and all writes install the object (write-through). Whole objects are the
// caching unit — an approximation that matches the small-object metadata
// blobs exactly and streaming data closely enough.
//
// The cache is sharded 2^k ways by object id so that concurrent clients of
// one node touch independent locks; each shard owns capacity/shards bytes of
// the budget and its own LRU list and hit/miss/eviction counters. Aggregate
// accessors sum over shards on read-out. Pass `shards = 1` for a single
// globally-ordered LRU (deterministic eviction across all keys).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace bsc::sim {

class PageCache {
 public:
  static constexpr std::uint32_t kDefaultShards = 8;

  /// `shards` is rounded up to a power of two; each shard gets an equal split
  /// of `capacity_bytes`.
  explicit PageCache(std::uint64_t capacity_bytes, std::uint32_t shards = kDefaultShards);

  /// Record a read of object `key` totalling `bytes`; returns true when the
  /// object was resident (the disk access is skipped).
  bool touch_read(std::uint64_t key, std::uint64_t bytes);

  /// Record a write: the object becomes resident (write-through).
  void touch_write(std::uint64_t key, std::uint64_t bytes);

  /// Drop an object (delete/truncate invalidation).
  void invalidate(std::uint64_t key);

  void clear();

  [[nodiscard]] std::uint64_t bytes_cached() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t evictions() const;

  struct ShardCounters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes_cached = 0;
  };
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] ShardCounters shard_counters(std::size_t i) const;

 private:
  struct Shard {
    explicit Shard(std::uint64_t cap) : capacity(cap) {}

    const std::uint64_t capacity;
    mutable std::mutex mu;
    std::list<std::uint64_t> lru;  ///< front = most recent
    struct Entry {
      std::uint64_t bytes = 0;
      std::list<std::uint64_t>::iterator pos;
    };
    std::unordered_map<std::uint64_t, Entry> entries;
    std::uint64_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

    void insert_locked(std::uint64_t key, std::uint64_t obj_bytes);
    void evict_locked();
  };

  [[nodiscard]] Shard& shard_of(std::uint64_t key) const;

  std::vector<std::unique_ptr<Shard>> shards_;  ///< size is a power of two
  std::uint64_t mask_ = 0;
};

}  // namespace bsc::sim
