#include "sim/disk_model.hpp"

#include <cmath>

namespace bsc::sim {

SimMicros DiskModel::service_us(std::uint64_t bytes, bool sequential) const noexcept {
  SimMicros t = p_.controller_us;
  if (!sequential) t += p_.seek_us + p_.rotational_us;
  t += static_cast<SimMicros>(std::llround(static_cast<double>(bytes) / p_.bytes_per_us));
  return t;
}

}  // namespace bsc::sim
