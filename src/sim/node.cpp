#include "sim/node.hpp"

#include <algorithm>

namespace bsc::sim {

SimMicros SimNode::serve(SimMicros arrival_us, SimMicros service_us) noexcept {
  service_us = std::max<SimMicros>(0, service_us);
  SimMicros busy = busy_until_.load(std::memory_order_relaxed);
  SimMicros start = 0;
  SimMicros end = 0;
  do {
    start = std::max(arrival_us, busy);
    end = start + service_us;
  } while (!busy_until_.compare_exchange_weak(busy, end, std::memory_order_acq_rel,
                                              std::memory_order_relaxed));
  busy_total_.fetch_add(service_us, std::memory_order_relaxed);
  requests_.fetch_add(1, std::memory_order_relaxed);
  return end;
}

std::uint64_t SimNode::estimated_queue_depth(SimMicros now) const noexcept {
  const SimMicros delay = queue_delay(now);
  if (delay == 0) return 0;
  const std::uint64_t n = requests_.load(std::memory_order_relaxed);
  const SimMicros total = busy_total_.load(std::memory_order_relaxed);
  const SimMicros mean = n > 0 ? std::max<SimMicros>(1, total / static_cast<SimMicros>(n)) : 1;
  return static_cast<std::uint64_t>(delay / mean);
}

bool SimNode::would_shed(SimMicros now) const noexcept {
  const SimMicros qmax = max_queue_us_.load(std::memory_order_relaxed);
  const std::uint64_t dmax = max_queue_depth_.load(std::memory_order_relaxed);
  if (qmax == 0 && dmax == 0) return false;
  if (qmax > 0 && queue_delay(now) > qmax) return true;
  if (dmax > 0 && estimated_queue_depth(now) > dmax) return true;
  return false;
}

void SimNode::reset() noexcept {
  // Queue/accounting state only: the page cache survives a reset, exactly
  // as freshly staged data remains cache-resident on a real node between
  // the provisioning step and the traced run.
  busy_until_.store(0, std::memory_order_relaxed);
  busy_total_.store(0, std::memory_order_relaxed);
  requests_.store(0, std::memory_order_relaxed);
  sheds_.store(0, std::memory_order_relaxed);
  // The overload config is experiment setup, not queue state: it survives,
  // like the page cache.
}

}  // namespace bsc::sim
