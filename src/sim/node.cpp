#include "sim/node.hpp"

#include <algorithm>

namespace bsc::sim {

SimMicros SimNode::serve(SimMicros arrival_us, SimMicros service_us) noexcept {
  service_us = std::max<SimMicros>(0, service_us);
  SimMicros busy = busy_until_.load(std::memory_order_relaxed);
  SimMicros start = 0;
  SimMicros end = 0;
  do {
    start = std::max(arrival_us, busy);
    end = start + service_us;
  } while (!busy_until_.compare_exchange_weak(busy, end, std::memory_order_acq_rel,
                                              std::memory_order_relaxed));
  busy_total_.fetch_add(service_us, std::memory_order_relaxed);
  requests_.fetch_add(1, std::memory_order_relaxed);
  return end;
}

void SimNode::reset() noexcept {
  // Queue/accounting state only: the page cache survives a reset, exactly
  // as freshly staged data remains cache-resident on a real node between
  // the provisioning step and the traced run.
  busy_until_.store(0, std::memory_order_relaxed);
  busy_total_.store(0, std::memory_order_relaxed);
  requests_.store(0, std::memory_order_relaxed);
}

}  // namespace bsc::sim
