#include "sim/cluster.hpp"

namespace bsc::sim {

Cluster::Cluster(ClusterSpec spec) : spec_(spec), net_(spec.network) {
  std::uint32_t next_id = 0;
  compute_.reserve(spec.compute_nodes);
  for (std::uint32_t i = 0; i < spec.compute_nodes; ++i) {
    compute_.push_back(std::make_unique<SimNode>(next_id++, NodeRole::compute, spec.disk, spec.page_cache_bytes));
  }
  storage_.reserve(spec.storage_nodes);
  for (std::uint32_t i = 0; i < spec.storage_nodes; ++i) {
    storage_.push_back(std::make_unique<SimNode>(next_id++, NodeRole::storage, spec.disk, spec.page_cache_bytes));
  }
  metadata_.reserve(spec.metadata_nodes);
  for (std::uint32_t i = 0; i < spec.metadata_nodes; ++i) {
    metadata_.push_back(std::make_unique<SimNode>(next_id++, NodeRole::metadata, spec.disk, spec.page_cache_bytes));
  }
}

SimMicros Cluster::total_storage_busy() const noexcept {
  SimMicros t = 0;
  for (const auto& n : storage_) t += n->busy_total();
  return t;
}

std::uint64_t Cluster::total_storage_requests() const noexcept {
  std::uint64_t t = 0;
  for (const auto& n : storage_) t += n->requests_served();
  return t;
}

void Cluster::reset() noexcept {
  for (auto& n : compute_) n->reset();
  for (auto& n : storage_) n->reset();
  for (auto& n : metadata_) n->reset();
}

}  // namespace bsc::sim
