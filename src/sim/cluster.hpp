// Cluster topology: a set of SimNodes plus a shared network model.
// The default preset mirrors the paper's Grid'5000 parapluie configuration:
// 24 compute nodes and 8 storage nodes (§IV-B), with variants at 4 and 12
// storage nodes used for the sensitivity check.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/net_model.hpp"
#include "sim/node.hpp"

namespace bsc::sim {

struct ClusterSpec {
  std::uint32_t compute_nodes = 24;
  std::uint32_t storage_nodes = 8;
  std::uint32_t metadata_nodes = 1;
  NetProfile network = NetProfile::gigabit_ethernet();
  DiskParams disk = DiskParams::hdd_250gb();
  /// parapluie: 48 GB RAM per node, scaled 1:1024 to 48 MiB of page cache.
  std::uint64_t page_cache_bytes = 48ULL << 20;

  /// The paper's testbed: parapluie, 24 compute / 8 storage, GbE.
  static ClusterSpec parapluie() { return {}; }
  static ClusterSpec parapluie_ib() {
    ClusterSpec s;
    s.network = NetProfile::infiniband_ddr();
    return s;
  }
  static ClusterSpec with_storage_nodes(std::uint32_t n) {
    ClusterSpec s;
    s.storage_nodes = n;
    return s;
  }
};

class Cluster {
 public:
  explicit Cluster(ClusterSpec spec = ClusterSpec::parapluie());

  [[nodiscard]] const ClusterSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const NetModel& net() const noexcept { return net_; }

  [[nodiscard]] std::size_t storage_count() const noexcept { return storage_.size(); }
  [[nodiscard]] std::size_t metadata_count() const noexcept { return metadata_.size(); }
  [[nodiscard]] std::size_t compute_count() const noexcept { return compute_.size(); }

  [[nodiscard]] SimNode& storage_node(std::size_t i) noexcept { return *storage_[i]; }
  [[nodiscard]] SimNode& metadata_node(std::size_t i = 0) noexcept { return *metadata_[i]; }
  [[nodiscard]] SimNode& compute_node(std::size_t i) noexcept { return *compute_[i]; }

  /// Aggregate utilization report across storage nodes.
  [[nodiscard]] SimMicros total_storage_busy() const noexcept;
  [[nodiscard]] std::uint64_t total_storage_requests() const noexcept;

  /// Reset all node queues (between benchmark repetitions).
  void reset() noexcept;

 private:
  ClusterSpec spec_;
  NetModel net_;
  std::vector<std::unique_ptr<SimNode>> compute_;
  std::vector<std::unique_ptr<SimNode>> storage_;
  std::vector<std::unique_ptr<SimNode>> metadata_;
};

}  // namespace bsc::sim
