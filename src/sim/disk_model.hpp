// Rotational-disk service-time model calibrated to the parapluie nodes'
// 250 GB HDDs (CLUSTER'17 paper, §IV-B): ~8.5 ms average seek, 7200 RPM,
// ~100 MB/s sequential transfer.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace bsc::sim {

struct DiskParams {
  SimMicros seek_us = 8500;        ///< average seek
  SimMicros rotational_us = 4170;  ///< half-rotation at 7200 RPM
  double bytes_per_us = 100.0;     ///< ~100 MB/s sequential throughput
  SimMicros controller_us = 30;    ///< fixed per-request controller overhead

  static DiskParams hdd_250gb() { return {}; }
  /// A fast device profile used by ablation benches (NVMe-like).
  static DiskParams nvme() { return {.seek_us = 0, .rotational_us = 10,
                                     .bytes_per_us = 2000.0, .controller_us = 5}; }
};

class DiskModel {
 public:
  explicit DiskModel(DiskParams p = DiskParams::hdd_250gb()) : p_(p) {}

  /// Service time for a request of `bytes`. `sequential` requests (detected
  /// by the storage engines as appends / adjacent offsets) skip the seek.
  [[nodiscard]] SimMicros service_us(std::uint64_t bytes, bool sequential) const noexcept;

  [[nodiscard]] const DiskParams& params() const noexcept { return p_; }

 private:
  DiskParams p_;
};

}  // namespace bsc::sim
