// HDFS datanode: stores blocks. Blocks are written once, sequentially
// (pipeline appends), then become immutable; reads may hit any offset.
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "sim/node.hpp"

namespace bsc::hdfs {

class Datanode {
 public:
  explicit Datanode(sim::SimNode& node) : node_(&node) {}

  [[nodiscard]] sim::SimNode& node() noexcept { return *node_; }

  /// Append `data` to block `id` (creating it on first write).
  Status append(std::uint64_t block_id, ByteView data, SimMicros* service_us);

  /// Random read inside a block.
  Result<Bytes> read(std::uint64_t block_id, std::uint64_t offset, std::uint64_t len,
                     SimMicros* service_us);

  /// Drop a block replica (file deletion).
  void drop(std::uint64_t block_id, SimMicros* service_us);

  [[nodiscard]] std::uint64_t block_count();
  [[nodiscard]] std::uint64_t bytes_stored();
  [[nodiscard]] Result<std::uint64_t> block_length(std::uint64_t block_id);

 private:
  sim::SimNode* node_;
  std::shared_mutex mu_;
  std::unordered_map<std::uint64_t, Bytes> blocks_;
};

}  // namespace bsc::hdfs
