// HdfsLikeFs — write-once-read-many distributed file system front-end.
//
// Semantics match the HDFS behaviour the paper describes (§II-B):
//   * files are created, written sequentially through a replica pipeline,
//     then sealed on close; reopening an existing file for overwrite fails;
//   * random (non-append) writes are rejected at the protocol level;
//   * truncate is unsupported;
//   * directories, permissions metadata, rename and xattrs exist (the parts
//     of POSIX HDFS kept), but enforcement is advisory.
#pragma once

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "hdfs/datanode.hpp"
#include "hdfs/namenode.hpp"
#include "rpc/transport.hpp"
#include "sim/cluster.hpp"
#include "vfs/file_system.hpp"

namespace bsc::hdfs {

struct HdfsConfig {
  std::uint64_t block_bytes = 1 << 20;  ///< scaled stand-in for 128 MiB blocks
  std::uint32_t replication = 3;
};

class HdfsLikeFs final : public vfs::FileSystem {
 public:
  HdfsLikeFs(sim::Cluster& cluster, HdfsConfig cfg = {});

  [[nodiscard]] std::string backend_name() const override { return "hdfs"; }

  Result<vfs::FileHandle> open(const vfs::IoCtx& ctx, std::string_view path,
                               vfs::OpenFlags flags,
                               vfs::Mode mode = vfs::kDefaultFileMode) override;
  Status close(const vfs::IoCtx& ctx, vfs::FileHandle fh) override;
  Result<Bytes> read(const vfs::IoCtx& ctx, vfs::FileHandle fh, std::uint64_t offset,
                     std::uint64_t len) override;
  Result<std::uint64_t> write(const vfs::IoCtx& ctx, vfs::FileHandle fh,
                              std::uint64_t offset, ByteView data) override;
  Status sync(const vfs::IoCtx& ctx, vfs::FileHandle fh) override;
  Status truncate(const vfs::IoCtx& ctx, std::string_view path,
                  std::uint64_t new_size) override;
  Status unlink(const vfs::IoCtx& ctx, std::string_view path) override;
  Status mkdir(const vfs::IoCtx& ctx, std::string_view path,
               vfs::Mode mode = vfs::kDefaultDirMode) override;
  Status rmdir(const vfs::IoCtx& ctx, std::string_view path) override;
  Result<std::vector<vfs::DirEntry>> readdir(const vfs::IoCtx& ctx,
                                             std::string_view path) override;
  Result<vfs::FileInfo> stat(const vfs::IoCtx& ctx, std::string_view path) override;
  Status rename(const vfs::IoCtx& ctx, std::string_view from, std::string_view to) override;
  Status chmod(const vfs::IoCtx& ctx, std::string_view path, vfs::Mode mode) override;
  Result<std::string> getxattr(const vfs::IoCtx& ctx, std::string_view path,
                               std::string_view name) override;
  Status setxattr(const vfs::IoCtx& ctx, std::string_view path, std::string_view name,
                  std::string_view value) override;

  [[nodiscard]] Namenode& namenode() noexcept { return *namenode_; }
  [[nodiscard]] std::size_t datanode_count() const noexcept { return datanodes_.size(); }
  [[nodiscard]] Datanode& datanode(std::size_t i) noexcept { return *datanodes_[i]; }
  [[nodiscard]] const HdfsConfig& config() const noexcept { return cfg_; }

 private:
  struct OpenFile {
    std::string path;
    bool writing = false;
    std::uint64_t write_pos = 0;        ///< next append offset (writers)
    std::uint64_t last_block_fill = 0;  ///< bytes already in the open block
    BlockInfo current_block;            ///< valid when last_block_fill > 0 or allocated
    bool has_block = false;
    std::vector<BlockInfo> read_blocks; ///< cached locations (readers)
    std::uint64_t read_size = 0;
  };

  void charge_nn_rpc(const vfs::IoCtx& ctx, SimMicros service_us,
                     std::uint64_t req = 96, std::uint64_t resp = 64);
  /// Append one ≤block-remainder chunk through the replica pipeline.
  Status pipeline_append(const vfs::IoCtx& ctx, const BlockInfo& block, ByteView data);

  sim::Cluster* cluster_;
  HdfsConfig cfg_;
  rpc::Transport transport_;
  std::unique_ptr<Namenode> namenode_;
  std::vector<std::unique_ptr<Datanode>> datanodes_;

  std::shared_mutex handles_mu_;
  std::unordered_map<vfs::FileHandle, OpenFile> handles_;
  std::atomic<vfs::FileHandle> next_handle_{1};
};

}  // namespace bsc::hdfs
