#include "hdfs/namenode.hpp"

#include <algorithm>
#include <mutex>

#include "common/strings.hpp"

namespace bsc::hdfs {

Namenode::Namenode(sim::SimNode& node, std::uint32_t num_datanodes,
                   std::uint32_t replication, std::uint64_t block_bytes,
                   NamenodeCosts costs)
    : node_(&node),
      num_datanodes_(num_datanodes),
      replication_(std::min(replication ? replication : 1, num_datanodes)),
      block_bytes_(block_bytes ? block_bytes : 1),
      costs_(costs) {
  root_.type = vfs::FileType::directory;
  root_.mode = 0777;
}

Namenode::Node* Namenode::walk_locked(std::string_view path, std::uint32_t* comps) {
  Node* cur = &root_;
  *comps = 0;
  for (const auto& c : path_components(path)) {
    if (!cur->is_dir()) return nullptr;
    auto it = cur->children.find(c);
    if (it == cur->children.end()) return nullptr;
    cur = &it->second;
    ++*comps;
  }
  return cur;
}

Result<std::pair<Namenode::Node*, std::string>> Namenode::walk_parent_locked(
    std::string_view path, std::uint32_t* comps) {
  const std::string norm = normalize_path(path);
  if (norm == "/") return {Errc::invalid_argument, "root"};
  Node* parent = walk_locked(parent_path(norm), comps);
  if (!parent) return {Errc::not_found, parent_path(norm)};
  if (!parent->is_dir()) return {Errc::not_a_directory, parent_path(norm)};
  return std::pair<Node*, std::string>{parent, base_name(norm)};
}

std::vector<std::uint32_t> Namenode::pick_datanodes_locked() {
  // Round-robin placement: deterministic and balanced, standing in for
  // HDFS's rack-aware random placement.
  std::vector<std::uint32_t> out;
  out.reserve(replication_);
  for (std::uint32_t i = 0; i < replication_; ++i) {
    out.push_back((placement_cursor_ + i) % num_datanodes_);
  }
  placement_cursor_ = (placement_cursor_ + 1) % num_datanodes_;
  return out;
}

Status Namenode::create_file(std::string_view path, vfs::Mode mode, std::uint32_t uid,
                             std::uint32_t gid, SimMicros* service_us) {
  std::unique_lock lk(mu_);
  std::uint32_t comps = 0;
  auto p = walk_parent_locked(path, &comps);
  *service_us = lookup_cost(comps) + costs_.editlog_us;
  if (!p.ok()) return p.error();
  auto [parent, name] = p.value();
  if (parent->children.count(name)) return {Errc::already_exists, std::string{path}};
  Node f;
  f.type = vfs::FileType::regular;
  f.mode = mode;
  f.uid = uid;
  f.gid = gid;
  f.under_construction = true;
  parent->children.emplace(name, std::move(f));
  return Status::success();
}

Status Namenode::reopen_for_append(std::string_view path, std::uint32_t uid,
                                   std::uint32_t gid, SimMicros* service_us) {
  (void)uid;
  (void)gid;
  std::unique_lock lk(mu_);
  std::uint32_t comps = 0;
  Node* f = walk_locked(path, &comps);
  *service_us = lookup_cost(comps) + costs_.editlog_us;
  if (!f) return {Errc::not_found, std::string{path}};
  if (f->is_dir()) return {Errc::is_a_directory, std::string{path}};
  if (f->under_construction) return {Errc::busy, "already under construction"};
  f->under_construction = true;
  return Status::success();
}

Result<BlockInfo> Namenode::allocate_block(std::string_view path, SimMicros* service_us) {
  std::unique_lock lk(mu_);
  std::uint32_t comps = 0;
  Node* f = walk_locked(path, &comps);
  *service_us = lookup_cost(comps) + costs_.editlog_us;
  if (!f) return {Errc::not_found, std::string{path}};
  if (!f->under_construction) return {Errc::read_only, "file is sealed"};
  BlockInfo b;
  b.id = next_block_++;
  b.datanodes = pick_datanodes_locked();
  f->blocks.push_back(b);
  return b;
}

Status Namenode::extend_last_block(std::string_view path, std::uint64_t bytes,
                                   SimMicros* service_us) {
  std::unique_lock lk(mu_);
  std::uint32_t comps = 0;
  Node* f = walk_locked(path, &comps);
  *service_us = costs_.cpu_op_us;
  if (!f) return {Errc::not_found, std::string{path}};
  if (f->blocks.empty()) return {Errc::io_error, "no block to extend"};
  f->blocks.back().length += bytes;
  f->size += bytes;
  return Status::success();
}

Status Namenode::complete_file(std::string_view path, SimMicros* service_us) {
  std::unique_lock lk(mu_);
  std::uint32_t comps = 0;
  Node* f = walk_locked(path, &comps);
  *service_us = lookup_cost(comps) + costs_.editlog_us;
  if (!f) return {Errc::not_found, std::string{path}};
  f->under_construction = false;
  return Status::success();
}

Result<std::vector<BlockInfo>> Namenode::block_locations(std::string_view path,
                                                         std::uint32_t uid,
                                                         std::uint32_t gid,
                                                         SimMicros* service_us) {
  (void)uid;
  (void)gid;
  std::shared_lock lk(mu_);
  std::uint32_t comps = 0;
  Node* f = walk_locked(path, &comps);
  *service_us = lookup_cost(comps);
  if (!f) return {Errc::not_found, std::string{path}};
  if (f->is_dir()) return {Errc::is_a_directory, std::string{path}};
  return f->blocks;
}

Result<vfs::FileInfo> Namenode::stat(std::string_view path, std::uint32_t uid,
                                     std::uint32_t gid, SimMicros* service_us) {
  (void)uid;
  (void)gid;
  std::shared_lock lk(mu_);
  std::uint32_t comps = 0;
  Node* f = walk_locked(path, &comps);
  *service_us = lookup_cost(comps);
  if (!f) return {Errc::not_found, std::string{path}};
  return vfs::FileInfo{normalize_path(path), f->type, f->size, f->mode, f->uid, f->gid, 0};
}

Status Namenode::mkdir(std::string_view path, vfs::Mode mode, std::uint32_t uid,
                       std::uint32_t gid, SimMicros* service_us) {
  std::unique_lock lk(mu_);
  std::uint32_t comps = 0;
  auto p = walk_parent_locked(path, &comps);
  *service_us = lookup_cost(comps) + costs_.editlog_us;
  if (!p.ok()) return p.error();
  auto [parent, name] = p.value();
  if (parent->children.count(name)) return {Errc::already_exists, std::string{path}};
  Node d;
  d.type = vfs::FileType::directory;
  d.mode = mode;
  d.uid = uid;
  d.gid = gid;
  parent->children.emplace(name, std::move(d));
  return Status::success();
}

Status Namenode::rmdir(std::string_view path, std::uint32_t uid, std::uint32_t gid,
                       SimMicros* service_us) {
  (void)uid;
  (void)gid;
  std::unique_lock lk(mu_);
  std::uint32_t comps = 0;
  auto p = walk_parent_locked(path, &comps);
  *service_us = lookup_cost(comps) + costs_.editlog_us;
  if (!p.ok()) return p.error();
  auto [parent, name] = p.value();
  auto it = parent->children.find(name);
  if (it == parent->children.end()) return {Errc::not_found, std::string{path}};
  if (!it->second.is_dir()) return {Errc::not_a_directory, std::string{path}};
  if (!it->second.children.empty()) return {Errc::not_empty, std::string{path}};
  parent->children.erase(it);
  return Status::success();
}

Result<std::vector<vfs::DirEntry>> Namenode::readdir(std::string_view path,
                                                     std::uint32_t uid, std::uint32_t gid,
                                                     SimMicros* service_us) {
  (void)uid;
  (void)gid;
  std::shared_lock lk(mu_);
  std::uint32_t comps = 0;
  Node* d = walk_locked(path, &comps);
  if (!d) {
    *service_us = lookup_cost(comps);
    return {Errc::not_found, std::string{path}};
  }
  if (!d->is_dir()) {
    *service_us = lookup_cost(comps);
    return {Errc::not_a_directory, std::string{path}};
  }
  std::vector<vfs::DirEntry> out;
  out.reserve(d->children.size());
  for (const auto& [name, child] : d->children) out.push_back({name, child.type});
  *service_us = lookup_cost(comps) + static_cast<SimMicros>(out.size());
  return out;
}

Result<std::vector<BlockInfo>> Namenode::unlink(std::string_view path, std::uint32_t uid,
                                                std::uint32_t gid, SimMicros* service_us) {
  (void)uid;
  (void)gid;
  std::unique_lock lk(mu_);
  std::uint32_t comps = 0;
  auto p = walk_parent_locked(path, &comps);
  *service_us = lookup_cost(comps) + costs_.editlog_us;
  if (!p.ok()) return p.error();
  auto [parent, name] = p.value();
  auto it = parent->children.find(name);
  if (it == parent->children.end()) return {Errc::not_found, std::string{path}};
  if (it->second.is_dir()) return {Errc::is_a_directory, std::string{path}};
  auto blocks = std::move(it->second.blocks);
  parent->children.erase(it);
  return blocks;
}

Status Namenode::rename(std::string_view from, std::string_view to, std::uint32_t uid,
                        std::uint32_t gid, SimMicros* service_us) {
  (void)uid;
  (void)gid;
  std::unique_lock lk(mu_);
  std::uint32_t comps_f = 0;
  std::uint32_t comps_t = 0;
  auto pf = walk_parent_locked(from, &comps_f);
  if (!pf.ok()) {
    *service_us = lookup_cost(comps_f) + costs_.editlog_us;
    return pf.error();
  }
  auto pt = walk_parent_locked(to, &comps_t);
  *service_us = lookup_cost(comps_f + comps_t) + costs_.editlog_us;
  if (!pt.ok()) return pt.error();
  auto [sp, sname] = pf.value();
  auto [dp, dname] = pt.value();
  auto sit = sp->children.find(sname);
  if (sit == sp->children.end()) return {Errc::not_found, std::string{from}};
  // HDFS rename fails if the destination exists (no implicit replace).
  if (dp->children.count(dname)) return {Errc::already_exists, std::string{to}};
  Node moving = std::move(sit->second);
  sp->children.erase(sit);
  dp->children.emplace(dname, std::move(moving));
  return Status::success();
}

Status Namenode::chmod(std::string_view path, vfs::Mode mode, std::uint32_t uid,
                       std::uint32_t gid, SimMicros* service_us) {
  (void)uid;
  (void)gid;
  std::unique_lock lk(mu_);
  std::uint32_t comps = 0;
  Node* f = walk_locked(path, &comps);
  *service_us = lookup_cost(comps) + costs_.editlog_us;
  if (!f) return {Errc::not_found, std::string{path}};
  f->mode = mode & 0777;
  return Status::success();
}

Result<std::string> Namenode::getxattr(std::string_view path, std::string_view name,
                                       SimMicros* service_us) {
  std::shared_lock lk(mu_);
  std::uint32_t comps = 0;
  Node* f = walk_locked(path, &comps);
  *service_us = lookup_cost(comps);
  if (!f) return {Errc::not_found, std::string{path}};
  auto it = f->xattrs.find(std::string{name});
  if (it == f->xattrs.end()) return {Errc::not_found, std::string{name}};
  return it->second;
}

Status Namenode::setxattr(std::string_view path, std::string_view name,
                          std::string_view value, SimMicros* service_us) {
  std::unique_lock lk(mu_);
  std::uint32_t comps = 0;
  Node* f = walk_locked(path, &comps);
  *service_us = lookup_cost(comps) + costs_.editlog_us;
  if (!f) return {Errc::not_found, std::string{path}};
  f->xattrs[std::string{name}] = std::string{value};
  return Status::success();
}

std::uint64_t Namenode::file_count() {
  std::shared_lock lk(mu_);
  std::uint64_t n = 0;
  std::vector<const Node*> stack{&root_};
  while (!stack.empty()) {
    const Node* cur = stack.back();
    stack.pop_back();
    for (const auto& [name, child] : cur->children) {
      if (child.is_dir()) {
        stack.push_back(&child);
      } else {
        ++n;
      }
    }
  }
  return n;
}

}  // namespace bsc::hdfs
