#include "hdfs/hdfs.hpp"

#include <algorithm>
#include <mutex>

#include "common/strings.hpp"

namespace bsc::hdfs {

namespace {
constexpr std::uint64_t kRpcEnvelope = 48;
}

HdfsLikeFs::HdfsLikeFs(sim::Cluster& cluster, HdfsConfig cfg)
    : cluster_(&cluster), cfg_(cfg), transport_(cluster) {
  namenode_ = std::make_unique<Namenode>(
      cluster.metadata_node(), static_cast<std::uint32_t>(cluster.storage_count()),
      cfg.replication, cfg.block_bytes);
  datanodes_.reserve(cluster.storage_count());
  for (std::size_t i = 0; i < cluster.storage_count(); ++i) {
    datanodes_.push_back(std::make_unique<Datanode>(cluster.storage_node(i)));
  }
}

void HdfsLikeFs::charge_nn_rpc(const vfs::IoCtx& ctx, SimMicros service_us,
                               std::uint64_t req, std::uint64_t resp) {
  if (ctx.agent) {
    transport_.call_reliable(*ctx.agent, namenode_->node(), req, resp, service_us);
  } else {
    namenode_->node().serve(0, service_us);
  }
}

Result<vfs::FileHandle> HdfsLikeFs::open(const vfs::IoCtx& ctx, std::string_view path,
                                         vfs::OpenFlags flags, vfs::Mode mode) {
  if (!flags.read && !flags.write) return {Errc::invalid_argument, "open without r/w"};
  OpenFile of;
  of.path = normalize_path(path);
  if (flags.write) {
    of.writing = true;
    SimMicros svc = 0;
    if (flags.append) {
      // Append to an existing file, or create it on first use.
      auto st = namenode_->reopen_for_append(of.path, ctx.uid, ctx.gid, &svc);
      if (st.code() == Errc::not_found) {
        st = namenode_->create_file(of.path, mode, ctx.uid, ctx.gid, &svc);
      }
      charge_nn_rpc(ctx, svc, kRpcEnvelope + path.size());
      if (!st.ok()) return st.error();
      SimMicros svc2 = 0;
      auto info = namenode_->stat(of.path, ctx.uid, ctx.gid, &svc2);
      if (!info.ok()) return info.error();
      of.write_pos = info.value().size;
      of.last_block_fill = info.value().size % cfg_.block_bytes;
      if (of.last_block_fill != 0) {
        auto blocks = namenode_->block_locations(of.path, ctx.uid, ctx.gid, &svc2);
        if (!blocks.ok()) return blocks.error();
        of.current_block = blocks.value().back();
        of.has_block = true;
      }
    } else {
      // WORM: plain write-open creates a fresh file; an existing path fails
      // (truncate-in-place does not exist in this world).
      auto st = namenode_->create_file(of.path, mode, ctx.uid, ctx.gid, &svc);
      charge_nn_rpc(ctx, svc, kRpcEnvelope + path.size());
      if (!st.ok()) {
        if (st.code() == Errc::already_exists) {
          return {Errc::read_only, "write-once: " + of.path};
        }
        return st.error();
      }
    }
  } else {
    SimMicros svc = 0;
    auto blocks = namenode_->block_locations(of.path, ctx.uid, ctx.gid, &svc);
    const std::uint64_t resp =
        kRpcEnvelope + (blocks.ok() ? blocks.value().size() * 24 : 0);
    charge_nn_rpc(ctx, svc, kRpcEnvelope + path.size(), resp);
    if (!blocks.ok()) return blocks.error();
    of.read_blocks = std::move(blocks).take();
    for (const auto& b : of.read_blocks) of.read_size += b.length;
  }
  const vfs::FileHandle fh = next_handle_.fetch_add(1, std::memory_order_relaxed);
  {
    std::unique_lock lk(handles_mu_);
    handles_.emplace(fh, std::move(of));
  }
  return fh;
}

Status HdfsLikeFs::pipeline_append(const vfs::IoCtx& ctx, const BlockInfo& block,
                                   ByteView data) {
  // Chain replication: client -> dn0 -> dn1 -> dn2; the ack returns along
  // the chain, so the client sees the sum of the pipeline stages (HDFS
  // overlaps packets, so we charge one traversal, not per-packet).
  const auto& net = cluster_->net();
  SimMicros t = ctx.now();
  for (std::uint32_t dn : block.datanodes) {
    Datanode& d = *datanodes_[dn];
    SimMicros svc = 0;
    auto st = d.append(block.id, data, &svc);
    if (!st.ok()) return st;
    const SimMicros arrival = t + net.transfer_us(data.size() + kRpcEnvelope);
    t = d.node().serve(arrival, svc);
  }
  if (ctx.agent) ctx.agent->advance_to(t + net.transfer_us(kRpcEnvelope));
  return Status::success();
}

Result<std::uint64_t> HdfsLikeFs::write(const vfs::IoCtx& ctx, vfs::FileHandle fh,
                                        std::uint64_t offset, ByteView data) {
  OpenFile* of = nullptr;
  {
    std::shared_lock lk(handles_mu_);
    auto it = handles_.find(fh);
    if (it == handles_.end()) return {Errc::closed, "bad handle"};
    of = &it->second;
  }
  if (!of->writing) return {Errc::invalid_argument, "handle not open for write"};
  if (offset != of->write_pos) {
    return {Errc::unsupported, "HDFS supports only sequential append writes"};
  }
  std::uint64_t written = 0;
  while (written < data.size()) {
    if (!of->has_block || of->last_block_fill == cfg_.block_bytes) {
      SimMicros svc = 0;
      auto b = namenode_->allocate_block(of->path, &svc);
      charge_nn_rpc(ctx, svc);
      if (!b.ok()) return b.error();
      of->current_block = b.value();
      of->has_block = true;
      of->last_block_fill = 0;
    }
    const std::uint64_t room = cfg_.block_bytes - of->last_block_fill;
    const std::uint64_t n = std::min<std::uint64_t>(room, data.size() - written);
    auto st = pipeline_append(ctx, of->current_block, subview(data, written, n));
    if (!st.ok()) return st.error();
    // Namenode learns the new length via pipeline reports (no extra client
    // round-trip); the bookkeeping still has to happen.
    SimMicros svc = 0;
    auto es = namenode_->extend_last_block(of->path, n, &svc);
    if (!es.ok()) return es.error();
    namenode_->node().serve(ctx.now(), svc);
    of->last_block_fill += n;
    of->write_pos += n;
    written += n;
  }
  return written;
}

Result<Bytes> HdfsLikeFs::read(const vfs::IoCtx& ctx, vfs::FileHandle fh,
                               std::uint64_t offset, std::uint64_t len) {
  OpenFile snapshot;
  {
    std::shared_lock lk(handles_mu_);
    auto it = handles_.find(fh);
    if (it == handles_.end()) return {Errc::closed, "bad handle"};
    if (it->second.writing) return {Errc::invalid_argument, "handle not open for read"};
    snapshot = it->second;
  }
  if (offset >= snapshot.read_size || len == 0) return Bytes{};
  len = std::min(len, snapshot.read_size - offset);

  Bytes out;
  out.reserve(len);
  const auto& net = cluster_->net();
  const SimMicros start = ctx.now();
  SimMicros done = start;
  std::uint64_t block_start = 0;
  for (const BlockInfo& b : snapshot.read_blocks) {
    const std::uint64_t block_end = block_start + b.length;
    if (block_end > offset && block_start < offset + len) {
      const std::uint64_t lo = std::max(offset, block_start);
      const std::uint64_t hi = std::min(offset + len, block_end);
      Datanode& d = *datanodes_[b.datanodes.front()];
      SimMicros svc = 0;
      auto piece = d.read(b.id, lo - block_start, hi - lo, &svc);
      if (!piece.ok()) return piece.error();
      const SimMicros arr = start + net.transfer_us(kRpcEnvelope);
      done = std::max(done,
                      d.node().serve(arr, svc) + net.transfer_us((hi - lo) + kRpcEnvelope));
      bsc::append(out, as_view(piece.value()));
    }
    block_start = block_end;
  }
  if (ctx.agent) ctx.agent->advance_to(done);
  return out;
}

Status HdfsLikeFs::sync(const vfs::IoCtx& ctx, vfs::FileHandle fh) {
  OpenFile snapshot;
  {
    std::shared_lock lk(handles_mu_);
    auto it = handles_.find(fh);
    if (it == handles_.end()) return {Errc::closed, "bad handle"};
    snapshot = it->second;
  }
  if (!snapshot.writing || !snapshot.has_block) return Status::success();
  // hflush: push the pipeline acks for the open block.
  const auto& net = cluster_->net();
  SimMicros t = ctx.now();
  for (std::uint32_t dn : snapshot.current_block.datanodes) {
    t = datanodes_[dn]->node().serve(t + net.transfer_us(kRpcEnvelope), 10);
  }
  if (ctx.agent) ctx.agent->advance_to(t + net.transfer_us(kRpcEnvelope));
  return Status::success();
}

Status HdfsLikeFs::close(const vfs::IoCtx& ctx, vfs::FileHandle fh) {
  OpenFile of;
  {
    std::unique_lock lk(handles_mu_);
    auto it = handles_.find(fh);
    if (it == handles_.end()) return {Errc::closed, "bad handle"};
    of = std::move(it->second);
    handles_.erase(it);
  }
  if (of.writing) {
    SimMicros svc = 0;
    auto st = namenode_->complete_file(of.path, &svc);
    charge_nn_rpc(ctx, svc);
    return st;
  }
  return Status::success();
}

Status HdfsLikeFs::truncate(const vfs::IoCtx& ctx, std::string_view path,
                            std::uint64_t new_size) {
  (void)new_size;
  charge_nn_rpc(ctx, 5, kRpcEnvelope + path.size());
  return {Errc::unsupported, "HDFS does not support truncate"};
}

Status HdfsLikeFs::unlink(const vfs::IoCtx& ctx, std::string_view path) {
  SimMicros svc = 0;
  auto blocks = namenode_->unlink(path, ctx.uid, ctx.gid, &svc);
  charge_nn_rpc(ctx, svc, kRpcEnvelope + path.size());
  if (!blocks.ok()) return blocks.error();
  // Replica deletion happens in the background (not on the client's clock).
  for (const BlockInfo& b : blocks.value()) {
    for (std::uint32_t dn : b.datanodes) {
      SimMicros dsvc = 0;
      datanodes_[dn]->drop(b.id, &dsvc);
      datanodes_[dn]->node().serve(ctx.now(), dsvc);
    }
  }
  return Status::success();
}

Status HdfsLikeFs::mkdir(const vfs::IoCtx& ctx, std::string_view path, vfs::Mode mode) {
  SimMicros svc = 0;
  auto st = namenode_->mkdir(path, mode, ctx.uid, ctx.gid, &svc);
  charge_nn_rpc(ctx, svc, kRpcEnvelope + path.size());
  return st;
}

Status HdfsLikeFs::rmdir(const vfs::IoCtx& ctx, std::string_view path) {
  SimMicros svc = 0;
  auto st = namenode_->rmdir(path, ctx.uid, ctx.gid, &svc);
  charge_nn_rpc(ctx, svc, kRpcEnvelope + path.size());
  return st;
}

Result<std::vector<vfs::DirEntry>> HdfsLikeFs::readdir(const vfs::IoCtx& ctx,
                                                       std::string_view path) {
  SimMicros svc = 0;
  auto r = namenode_->readdir(path, ctx.uid, ctx.gid, &svc);
  charge_nn_rpc(ctx, svc, kRpcEnvelope + path.size(),
                kRpcEnvelope + (r.ok() ? r.value().size() * 32 : 0));
  return r;
}

Result<vfs::FileInfo> HdfsLikeFs::stat(const vfs::IoCtx& ctx, std::string_view path) {
  SimMicros svc = 0;
  auto r = namenode_->stat(path, ctx.uid, ctx.gid, &svc);
  charge_nn_rpc(ctx, svc, kRpcEnvelope + path.size(), kRpcEnvelope + 64);
  return r;
}

Status HdfsLikeFs::rename(const vfs::IoCtx& ctx, std::string_view from,
                          std::string_view to) {
  SimMicros svc = 0;
  auto st = namenode_->rename(from, to, ctx.uid, ctx.gid, &svc);
  charge_nn_rpc(ctx, svc, kRpcEnvelope + from.size() + to.size());
  return st;
}

Status HdfsLikeFs::chmod(const vfs::IoCtx& ctx, std::string_view path, vfs::Mode mode) {
  SimMicros svc = 0;
  auto st = namenode_->chmod(path, mode, ctx.uid, ctx.gid, &svc);
  charge_nn_rpc(ctx, svc, kRpcEnvelope + path.size());
  return st;
}

Result<std::string> HdfsLikeFs::getxattr(const vfs::IoCtx& ctx, std::string_view path,
                                         std::string_view name) {
  SimMicros svc = 0;
  auto r = namenode_->getxattr(path, name, &svc);
  charge_nn_rpc(ctx, svc, kRpcEnvelope + path.size() + name.size());
  return r;
}

Status HdfsLikeFs::setxattr(const vfs::IoCtx& ctx, std::string_view path,
                            std::string_view name, std::string_view value) {
  SimMicros svc = 0;
  auto st = namenode_->setxattr(path, name, value, &svc);
  charge_nn_rpc(ctx, svc, kRpcEnvelope + path.size() + name.size() + value.size());
  return st;
}

}  // namespace bsc::hdfs
