// HDFS-style namenode: hierarchical namespace + block map.
//
// Faithful to the design the paper discusses (§II-B): a single metadata
// service implementing *part* of POSIX — directories and permissions exist,
// but concurrent writes are excluded by design (write-once-read-many), and
// random in-place updates are rejected at the protocol level.
#pragma once

#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "sim/node.hpp"
#include "vfs/file_system.hpp"

namespace bsc::hdfs {

using BlockId = std::uint64_t;

struct BlockInfo {
  BlockId id = 0;
  std::uint64_t length = 0;
  std::vector<std::uint32_t> datanodes;  ///< replica datanode indices
};

struct NamenodeCosts {
  SimMicros cpu_op_us = 5;
  SimMicros per_component_us = 5;
  SimMicros editlog_us = 50;  ///< edit-log append for namespace mutations
};

class Namenode {
 public:
  Namenode(sim::SimNode& node, std::uint32_t num_datanodes, std::uint32_t replication,
           std::uint64_t block_bytes, NamenodeCosts costs = {});

  [[nodiscard]] sim::SimNode& node() noexcept { return *node_; }
  [[nodiscard]] std::uint64_t block_bytes() const noexcept { return block_bytes_; }
  [[nodiscard]] std::uint32_t replication() const noexcept { return replication_; }

  /// Create a file entry (fails if it exists — WORM). The file is "under
  /// construction" until complete_file.
  Status create_file(std::string_view path, vfs::Mode mode, std::uint32_t uid,
                     std::uint32_t gid, SimMicros* service_us);

  /// Re-open a sealed file for append (resumes its last block).
  Status reopen_for_append(std::string_view path, std::uint32_t uid, std::uint32_t gid,
                           SimMicros* service_us);

  /// Allocate the next block of an under-construction file; the namenode
  /// picks the replica datanodes.
  Result<BlockInfo> allocate_block(std::string_view path, SimMicros* service_us);

  /// Record bytes appended to the file's last block.
  Status extend_last_block(std::string_view path, std::uint64_t bytes,
                           SimMicros* service_us);

  /// Seal an under-construction file.
  Status complete_file(std::string_view path, SimMicros* service_us);

  /// Block locations covering the whole file (HDFS getBlockLocations).
  Result<std::vector<BlockInfo>> block_locations(std::string_view path, std::uint32_t uid,
                                                 std::uint32_t gid, SimMicros* service_us);

  Result<vfs::FileInfo> stat(std::string_view path, std::uint32_t uid, std::uint32_t gid,
                             SimMicros* service_us);
  Status mkdir(std::string_view path, vfs::Mode mode, std::uint32_t uid, std::uint32_t gid,
               SimMicros* service_us);
  Status rmdir(std::string_view path, std::uint32_t uid, std::uint32_t gid,
               SimMicros* service_us);
  Result<std::vector<vfs::DirEntry>> readdir(std::string_view path, std::uint32_t uid,
                                             std::uint32_t gid, SimMicros* service_us);
  /// Unlink returns the file's blocks so the client layer can release them.
  Result<std::vector<BlockInfo>> unlink(std::string_view path, std::uint32_t uid,
                                        std::uint32_t gid, SimMicros* service_us);
  Status rename(std::string_view from, std::string_view to, std::uint32_t uid,
                std::uint32_t gid, SimMicros* service_us);
  Status chmod(std::string_view path, vfs::Mode mode, std::uint32_t uid, std::uint32_t gid,
               SimMicros* service_us);
  Result<std::string> getxattr(std::string_view path, std::string_view name,
                               SimMicros* service_us);
  Status setxattr(std::string_view path, std::string_view name, std::string_view value,
                  SimMicros* service_us);

  [[nodiscard]] std::uint64_t file_count();

 private:
  struct Node {
    vfs::FileType type = vfs::FileType::regular;
    vfs::Mode mode = vfs::kDefaultFileMode;
    std::uint32_t uid = 0;
    std::uint32_t gid = 0;
    bool under_construction = false;
    std::uint64_t size = 0;
    std::vector<BlockInfo> blocks;
    std::map<std::string, Node> children;  ///< directories only
    std::map<std::string, std::string> xattrs;
    [[nodiscard]] bool is_dir() const noexcept { return type == vfs::FileType::directory; }
  };

  Node* walk_locked(std::string_view path, std::uint32_t* comps);
  Result<std::pair<Node*, std::string>> walk_parent_locked(std::string_view path,
                                                           std::uint32_t* comps);
  [[nodiscard]] SimMicros lookup_cost(std::uint32_t comps) const noexcept {
    return costs_.cpu_op_us + static_cast<SimMicros>(comps) * costs_.per_component_us;
  }
  std::vector<std::uint32_t> pick_datanodes_locked();

  sim::SimNode* node_;
  std::uint32_t num_datanodes_;
  std::uint32_t replication_;
  std::uint64_t block_bytes_;
  NamenodeCosts costs_;
  std::shared_mutex mu_;
  Node root_;
  BlockId next_block_ = 1;
  std::uint32_t placement_cursor_ = 0;
};

}  // namespace bsc::hdfs
