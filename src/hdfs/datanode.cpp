#include "hdfs/datanode.hpp"

#include <mutex>

#include "common/hash.hpp"

namespace bsc::hdfs {

namespace {
constexpr SimMicros kCpuOpUs = 3;
constexpr double kCpuBytesUs = 0.0001;
}  // namespace

Status Datanode::append(std::uint64_t block_id, ByteView data, SimMicros* service_us) {
  std::unique_lock lk(mu_);
  Bytes& b = blocks_[block_id];
  bsc::append(b, data);
  *service_us = kCpuOpUs +
                static_cast<SimMicros>(static_cast<double>(data.size()) * kCpuBytesUs) +
                node_->disk().service_us(data.size(), /*sequential=*/true);
  node_->cache().touch_write(mix64(block_id), b.size());
  return Status::success();
}

Result<Bytes> Datanode::read(std::uint64_t block_id, std::uint64_t offset,
                             std::uint64_t len, SimMicros* service_us) {
  std::shared_lock lk(mu_);
  auto it = blocks_.find(block_id);
  if (it == blocks_.end()) {
    *service_us = kCpuOpUs;
    return {Errc::not_found, "block"};
  }
  Bytes out;
  if (offset < it->second.size()) {
    const std::uint64_t n = std::min(len, it->second.size() - offset);
    out.assign(it->second.begin() + static_cast<std::ptrdiff_t>(offset),
               it->second.begin() + static_cast<std::ptrdiff_t>(offset + n));
  }
  const bool cached = node_->cache().touch_read(mix64(block_id), it->second.size());
  *service_us = kCpuOpUs +
                static_cast<SimMicros>(static_cast<double>(out.size()) * kCpuBytesUs) +
                (cached ? 1 : node_->disk().service_us(out.size(), /*sequential=*/false));
  return out;
}

void Datanode::drop(std::uint64_t block_id, SimMicros* service_us) {
  std::unique_lock lk(mu_);
  node_->cache().invalidate(mix64(block_id));
  blocks_.erase(block_id);
  *service_us = kCpuOpUs;
}

std::uint64_t Datanode::block_count() {
  std::shared_lock lk(mu_);
  return blocks_.size();
}

std::uint64_t Datanode::bytes_stored() {
  std::shared_lock lk(mu_);
  std::uint64_t n = 0;
  for (const auto& [id, b] : blocks_) n += b.size();
  return n;
}

Result<std::uint64_t> Datanode::block_length(std::uint64_t block_id) {
  std::shared_lock lk(mu_);
  auto it = blocks_.find(block_id);
  if (it == blocks_.end()) return {Errc::not_found, "block"};
  return it->second.size();
}

}  // namespace bsc::hdfs
