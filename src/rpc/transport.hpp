// Cost-charging in-process transport.
//
// A Call describes one client→server→client exchange: the client's agent is
// charged request transfer, then the server node queues the service time
// (FCFS in simulated time), then the response transfer. The returned value
// is the simulated completion time; the agent's clock is advanced to it.
#pragma once

#include <cstdint>

#include "sim/cluster.hpp"
#include "sim/sim_clock.hpp"

namespace bsc::rpc {

struct CallCost {
  SimMicros start;       ///< simulated time the request left the client
  SimMicros completion;  ///< simulated time the response arrived back
  [[nodiscard]] SimMicros latency() const noexcept { return completion - start; }
};

class Transport {
 public:
  explicit Transport(sim::Cluster& cluster) : cluster_(&cluster) {}

  /// Execute a simulated RPC against `server`. Advances `agent` past the
  /// response arrival and returns the timing breakdown.
  CallCost call(sim::SimAgent& agent, sim::SimNode& server,
                std::uint64_t request_bytes, std::uint64_t response_bytes,
                SimMicros server_service_us);

  /// One-way fire-and-forget message (used for pipelined replication).
  /// Charges only the send leg to the agent; server service is queued at the
  /// receiving node and the completion time is returned (but not awaited).
  SimMicros send_oneway(sim::SimAgent& agent, sim::SimNode& server,
                        std::uint64_t message_bytes, SimMicros server_service_us);

  [[nodiscard]] sim::Cluster& cluster() noexcept { return *cluster_; }
  [[nodiscard]] const sim::NetModel& net() const noexcept { return cluster_->net(); }

 private:
  sim::Cluster* cluster_;
};

}  // namespace bsc::rpc
