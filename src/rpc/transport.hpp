// Cost-charging in-process transport.
//
// A Call describes one client→server→client exchange: the client's agent is
// charged request transfer, then the server node queues the service time
// (FCFS in simulated time), then the response transfer. The returned value
// is the simulated completion time; the agent's clock is advanced to it.
//
// An optional FaultInjector makes individual calls fallible: a call may be
// dropped (the client waits out its deadline and gets Errc::timeout),
// rejected with a transient error or an outage refusal (Errc::unavailable
// after a short round trip), or delivered late. `call_reliable` bypasses the
// injector entirely — the store's maintenance traffic (resync, scrub,
// rebalance) models an out-of-band repair channel with retries baked in.
#pragma once

#include <cstdint>

#include "common/result.hpp"
#include "rpc/fault.hpp"
#include "sim/cluster.hpp"
#include "sim/sim_clock.hpp"

namespace bsc::rpc {

struct CallCost {
  SimMicros start;       ///< simulated time the request left the client
  SimMicros completion;  ///< simulated time the response arrived back
  [[nodiscard]] SimMicros latency() const noexcept { return completion - start; }
};

/// Default per-attempt deadline, matching blob::RetryPolicy's default
/// attempt_deadline_us — every call carries an explicit deadline unless the
/// caller deliberately opts out with 0.
inline constexpr SimMicros kDefaultAttemptDeadlineUs = 2000;

struct CallOptions {
  /// Per-attempt deadline. When a call is dropped the client cannot tell a
  /// slow reply from a lost one; it waits `deadline_us` then gives up with
  /// Errc::timeout. Defaults to the policy-derived per-attempt deadline;
  /// passing 0 explicitly opts out, in which case a dropped call still times
  /// out, but only after the conservative kDefaultDropWaitUs fallback.
  SimMicros deadline_us = kDefaultAttemptDeadlineUs;
};

class Transport {
 public:
  explicit Transport(sim::Cluster& cluster) : cluster_(&cluster) {}

  /// Execute a simulated RPC against `server`, subject to the installed
  /// fault injector (if any). On success advances `agent` past the response
  /// arrival and returns the timing breakdown. On failure advances `agent`
  /// past the failure-detection point (full deadline for a drop, one short
  /// round trip for an error/outage) and returns Errc::timeout /
  /// Errc::unavailable.
  Result<CallCost> call(sim::SimAgent& agent, sim::SimNode& server,
                        std::uint64_t request_bytes, std::uint64_t response_bytes,
                        SimMicros server_service_us, CallOptions opts = {});

  /// Execute a simulated RPC that cannot fail (pre-injector semantics).
  /// Used by store maintenance paths whose failure handling lives above the
  /// transport (down-flags checked by the caller).
  CallCost call_reliable(sim::SimAgent& agent, sim::SimNode& server,
                         std::uint64_t request_bytes, std::uint64_t response_bytes,
                         SimMicros server_service_us);

  /// Fault verdict for one request leg to `server` at the agent's current
  /// time, without charging any cost. Client code that applies operations
  /// directly on server objects (the blob data path) asks for a verdict
  /// first, then charges the corresponding cost itself. A request the
  /// injector would deliver is additionally checked against the server's
  /// bounded backlog (sim::OverloadConfig): over the bound, the verdict is
  /// `shed` and the caller fails fast with Errc::overloaded.
  [[nodiscard]] FaultVerdict admit(sim::SimNode& server, SimMicros now);

  /// One fault verdict for a whole multi-op batch envelope carrying
  /// `sub_ops` sub-operations: the batch is one request on the wire, so it
  /// draws exactly one verdict (all sub-ops share its fate). Accounted
  /// separately (rpc.batches / rpc.batch.subops) on top of the rpc.attempts
  /// the underlying admit records.
  [[nodiscard]] FaultVerdict admit_batch(sim::SimNode& server, SimMicros now,
                                         std::uint32_t sub_ops);

  /// Charge `agent` for a failed attempt: the full deadline for a dropped
  /// request, or one short round trip for an error/outage/shed rejection.
  /// Returns the matching error. `deliver` verdicts are a programming error.
  Status charge_failure(sim::SimAgent& agent, const FaultVerdict& verdict,
                        std::uint64_t request_bytes, CallOptions opts);

  /// One-way fire-and-forget message (used for pipelined replication).
  /// Charges only the send leg to the agent; server service is queued at the
  /// receiving node and the completion time is returned (but not awaited).
  SimMicros send_oneway(sim::SimAgent& agent, sim::SimNode& server,
                        std::uint64_t message_bytes, SimMicros server_service_us);

  /// Install a fault injector (not owned; nullptr uninstalls). All
  /// subsequent `call`/`admit` invocations consult it.
  void set_fault_injector(FaultInjector* injector) noexcept { injector_ = injector; }
  [[nodiscard]] FaultInjector* fault_injector() const noexcept { return injector_; }

  [[nodiscard]] sim::Cluster& cluster() noexcept { return *cluster_; }
  [[nodiscard]] const sim::NetModel& net() const noexcept { return cluster_->net(); }

  /// Fallback wait when a caller explicitly opted out of a deadline
  /// (CallOptions{.deadline_us = 0}) and the request is dropped. Documented
  /// escape hatch only — callers normally inherit kDefaultAttemptDeadlineUs.
  static constexpr SimMicros kDefaultDropWaitUs = 5000;

 private:
  sim::Cluster* cluster_;
  FaultInjector* injector_ = nullptr;
};

}  // namespace bsc::rpc
