#include "rpc/transport.hpp"

namespace bsc::rpc {

Result<CallCost> Transport::call(sim::SimAgent& agent, sim::SimNode& server,
                                 std::uint64_t request_bytes, std::uint64_t response_bytes,
                                 SimMicros server_service_us, CallOptions opts) {
  FaultVerdict verdict = admit(server, agent.now());
  if (verdict.kind != FaultVerdict::Kind::deliver) {
    Status st = charge_failure(agent, verdict, request_bytes, opts);
    return st.error();
  }

  const SimMicros start = agent.now();
  const SimMicros arrival =
      start + net().transfer_us(request_bytes) + verdict.extra_latency_us;
  const SimMicros served = server.serve(arrival, server_service_us);
  const SimMicros completion =
      served + net().transfer_us(response_bytes) + verdict.extra_latency_us;
  agent.advance_to(completion);
  return CallCost{.start = start, .completion = completion};
}

CallCost Transport::call_reliable(sim::SimAgent& agent, sim::SimNode& server,
                                  std::uint64_t request_bytes, std::uint64_t response_bytes,
                                  SimMicros server_service_us) {
  const SimMicros start = agent.now();
  const SimMicros arrival = start + net().transfer_us(request_bytes);
  const SimMicros served = server.serve(arrival, server_service_us);
  const SimMicros completion = served + net().transfer_us(response_bytes);
  agent.advance_to(completion);
  return {.start = start, .completion = completion};
}

FaultVerdict Transport::admit(sim::SimNode& server, SimMicros now) {
  if (injector_ == nullptr) return {};
  return injector_->decide(server.id(), now);
}

Status Transport::charge_failure(sim::SimAgent& agent, const FaultVerdict& verdict,
                                 std::uint64_t request_bytes, CallOptions opts) {
  switch (verdict.kind) {
    case FaultVerdict::Kind::drop: {
      // The request is gone; the client cannot distinguish slow from lost
      // and burns its whole per-attempt deadline before concluding timeout.
      const SimMicros wait = opts.deadline_us > 0 ? opts.deadline_us : kDefaultDropWaitUs;
      agent.charge(wait);
      return {Errc::timeout, "request lost"};
    }
    case FaultVerdict::Kind::error:
      // The node answered, just unhelpfully: charge one round trip of the
      // request envelope (the error reply is tiny).
      agent.charge(2 * net().transfer_us(request_bytes));
      return {Errc::unavailable, "transient server error"};
    case FaultVerdict::Kind::outage:
      // Connection refused: detected after a single send attempt.
      agent.charge(net().transfer_us(request_bytes));
      return {Errc::unavailable, "node outage"};
    case FaultVerdict::Kind::deliver:
      break;
  }
  return {Errc::invalid_argument, "charge_failure on delivered verdict"};
}

SimMicros Transport::send_oneway(sim::SimAgent& agent, sim::SimNode& server,
                                 std::uint64_t message_bytes,
                                 SimMicros server_service_us) {
  const SimMicros arrival = agent.now() + net().transfer_us(message_bytes);
  // The sender only pays serialization/injection cost, not the full transfer.
  agent.charge(net().profile().per_packet_us + 1);
  return server.serve(arrival, server_service_us);
}

}  // namespace bsc::rpc
