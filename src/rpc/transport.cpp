#include "rpc/transport.hpp"

#include "obs/metrics.hpp"

namespace bsc::rpc {

namespace {
/// Transport-level series: one attempt per admit() (the blob data path asks
/// for a verdict and charges costs itself, so admit is the one chokepoint
/// every fault-injected request leg passes through), plus completed-call
/// latency for the RPCs the transport drives end to end.
struct TransportMetrics {
  obs::Counter& attempts;
  obs::Counter& drops;
  obs::Counter& errors;
  obs::Counter& outages;
  obs::Counter& timeouts;
  obs::Counter& calls;
  obs::Counter& call_failures;
  obs::Counter& reliable_calls;
  obs::Counter& oneways;
  obs::Counter& batches;
  obs::Counter& batch_subops;
  // Admission control: requests refused at the server's backlog bound.
  obs::Counter& sheds;
  obs::Counter& shed_batches;
  obs::ShardedHistogram& shed_queue_us;
  obs::ShardedHistogram& call_latency_us;
};

TransportMetrics& transport_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static TransportMetrics m{reg.counter("rpc.attempts"),
                            reg.counter("rpc.attempt.drops"),
                            reg.counter("rpc.attempt.errors"),
                            reg.counter("rpc.attempt.outages"),
                            reg.counter("rpc.timeouts"),
                            reg.counter("rpc.calls"),
                            reg.counter("rpc.call_failures"),
                            reg.counter("rpc.reliable_calls"),
                            reg.counter("rpc.oneways"),
                            reg.counter("rpc.batches"),
                            reg.counter("rpc.batch.subops"),
                            reg.counter("server.shed.requests"),
                            reg.counter("server.shed.batches"),
                            reg.histogram("server.shed.queue_us"),
                            reg.histogram("rpc.call.latency_us")};
  return m;
}
}  // namespace

Result<CallCost> Transport::call(sim::SimAgent& agent, sim::SimNode& server,
                                 std::uint64_t request_bytes, std::uint64_t response_bytes,
                                 SimMicros server_service_us, CallOptions opts) {
  FaultVerdict verdict = admit(server, agent.now());
  if (verdict.kind != FaultVerdict::Kind::deliver) {
    Status st = charge_failure(agent, verdict, request_bytes, opts);
    return st.error();
  }

  const SimMicros start = agent.now();
  const SimMicros arrival =
      start + net().transfer_us(request_bytes) + verdict.extra_latency_us;
  const SimMicros served = server.serve(arrival, server_service_us);
  const SimMicros completion =
      served + net().transfer_us(response_bytes) + verdict.extra_latency_us;
  agent.advance_to(completion);
  transport_metrics().calls.inc();
  transport_metrics().call_latency_us.add(completion - start);
  return CallCost{.start = start, .completion = completion};
}

CallCost Transport::call_reliable(sim::SimAgent& agent, sim::SimNode& server,
                                  std::uint64_t request_bytes, std::uint64_t response_bytes,
                                  SimMicros server_service_us) {
  const SimMicros start = agent.now();
  const SimMicros arrival = start + net().transfer_us(request_bytes);
  const SimMicros served = server.serve(arrival, server_service_us);
  const SimMicros completion = served + net().transfer_us(response_bytes);
  agent.advance_to(completion);
  transport_metrics().reliable_calls.inc();
  transport_metrics().call_latency_us.add(completion - start);
  return {.start = start, .completion = completion};
}

FaultVerdict Transport::admit(sim::SimNode& server, SimMicros now) {
  auto& m = transport_metrics();
  m.attempts.inc();
  FaultVerdict verdict;
  if (injector_ != nullptr) {
    verdict = injector_->decide(server.id(), now);
    switch (verdict.kind) {
      case FaultVerdict::Kind::drop: m.drops.inc(); break;
      case FaultVerdict::Kind::error: m.errors.inc(); break;
      case FaultVerdict::Kind::outage: m.outages.inc(); break;
      case FaultVerdict::Kind::shed: break;  // injector never produces shed
      case FaultVerdict::Kind::deliver: break;
    }
    if (verdict.kind != FaultVerdict::Kind::deliver) return verdict;
  }
  // Bounded-backlog admission: a request the network would deliver arrives
  // at the server (after its request leg's extra latency) and is bounced
  // there if the queue is over its configured bound.
  const SimMicros arrival = now + verdict.extra_latency_us;
  if (server.would_shed(arrival)) {
    server.note_shed();
    m.sheds.inc();
    m.shed_queue_us.add(static_cast<std::uint64_t>(server.queue_delay(arrival)));
    verdict.kind = FaultVerdict::Kind::shed;
  }
  return verdict;
}

FaultVerdict Transport::admit_batch(sim::SimNode& server, SimMicros now,
                                    std::uint32_t sub_ops) {
  auto& m = transport_metrics();
  m.batches.inc();
  m.batch_subops.add(sub_ops);
  FaultVerdict v = admit(server, now);
  if (v.kind == FaultVerdict::Kind::shed) m.shed_batches.inc();
  return v;
}

Status Transport::charge_failure(sim::SimAgent& agent, const FaultVerdict& verdict,
                                 std::uint64_t request_bytes, CallOptions opts) {
  switch (verdict.kind) {
    case FaultVerdict::Kind::drop: {
      // The request is gone; the client cannot distinguish slow from lost
      // and burns its whole per-attempt deadline before concluding timeout.
      const SimMicros wait = opts.deadline_us > 0 ? opts.deadline_us : kDefaultDropWaitUs;
      agent.charge(wait);
      transport_metrics().timeouts.inc();
      transport_metrics().call_failures.inc();
      return {Errc::timeout, "request lost"};
    }
    case FaultVerdict::Kind::error:
      // The node answered, just unhelpfully: charge one round trip of the
      // request envelope (the error reply is tiny).
      agent.charge(2 * net().transfer_us(request_bytes));
      transport_metrics().call_failures.inc();
      return {Errc::unavailable, "transient server error"};
    case FaultVerdict::Kind::outage:
      // Connection refused: detected after a single send attempt.
      agent.charge(net().transfer_us(request_bytes));
      transport_metrics().call_failures.inc();
      return {Errc::unavailable, "node outage"};
    case FaultVerdict::Kind::shed:
      // Load shed: the request arrived, the server bounced it before doing
      // any work. One round trip of the request envelope — fast fail, the
      // whole point of admission control vs. letting the deadline burn.
      agent.charge(2 * net().transfer_us(request_bytes));
      transport_metrics().call_failures.inc();
      return {Errc::overloaded, "server shedding load"};
    case FaultVerdict::Kind::deliver:
      break;
  }
  return {Errc::invalid_argument, "charge_failure on delivered verdict"};
}

SimMicros Transport::send_oneway(sim::SimAgent& agent, sim::SimNode& server,
                                 std::uint64_t message_bytes,
                                 SimMicros server_service_us) {
  const SimMicros arrival = agent.now() + net().transfer_us(message_bytes);
  // The sender only pays serialization/injection cost, not the full transfer.
  agent.charge(net().profile().per_packet_us + 1);
  transport_metrics().oneways.inc();
  return server.serve(arrival, server_service_us);
}

}  // namespace bsc::rpc
