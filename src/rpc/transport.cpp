#include "rpc/transport.hpp"

namespace bsc::rpc {

CallCost Transport::call(sim::SimAgent& agent, sim::SimNode& server,
                         std::uint64_t request_bytes, std::uint64_t response_bytes,
                         SimMicros server_service_us) {
  const SimMicros start = agent.now();
  const SimMicros arrival = start + net().transfer_us(request_bytes);
  const SimMicros served = server.serve(arrival, server_service_us);
  const SimMicros completion = served + net().transfer_us(response_bytes);
  agent.advance_to(completion);
  return {.start = start, .completion = completion};
}

SimMicros Transport::send_oneway(sim::SimAgent& agent, sim::SimNode& server,
                                 std::uint64_t message_bytes,
                                 SimMicros server_service_us) {
  const SimMicros arrival = agent.now() + net().transfer_us(message_bytes);
  // The sender only pays serialization/injection cost, not the full transfer.
  agent.charge(net().profile().per_packet_us + 1);
  return server.serve(arrival, server_service_us);
}

}  // namespace bsc::rpc
