#include "rpc/wire.hpp"

#include <cstring>

namespace bsc::rpc {

namespace {
template <typename T>
void put_le(Bytes& buf, T v) {
  const auto old = buf.size();
  buf.resize(old + sizeof(T));
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf[old + i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}

template <typename T>
T get_le(ByteView data, std::size_t pos) {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<std::uint8_t>(data[pos + i])) << (8 * i);
  }
  return v;
}
}  // namespace

void WireWriter::put_u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
void WireWriter::put_u32(std::uint32_t v) { put_le(buf_, v); }
void WireWriter::put_u64(std::uint64_t v) { put_le(buf_, v); }
void WireWriter::put_i64(std::int64_t v) { put_le(buf_, static_cast<std::uint64_t>(v)); }

void WireWriter::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  const auto old = buf_.size();
  buf_.resize(old + s.size());
  if (!s.empty()) std::memcpy(buf_.data() + old, s.data(), s.size());
}

void WireWriter::put_bytes(ByteView b) {
  put_u64(b.size());
  append(buf_, b);
}

Result<std::uint8_t> WireReader::get_u8() {
  if (!need(1)) return Errc::out_of_range;
  return static_cast<std::uint8_t>(data_[pos_++]);
}

Result<std::uint32_t> WireReader::get_u32() {
  if (!need(4)) return Errc::out_of_range;
  auto v = get_le<std::uint32_t>(data_, pos_);
  pos_ += 4;
  return v;
}

Result<std::uint64_t> WireReader::get_u64() {
  if (!need(8)) return Errc::out_of_range;
  auto v = get_le<std::uint64_t>(data_, pos_);
  pos_ += 8;
  return v;
}

Result<std::int64_t> WireReader::get_i64() {
  auto v = get_u64();
  if (!v.ok()) return v.error();
  return static_cast<std::int64_t>(v.value());
}

Result<std::string> WireReader::get_string() {
  auto len = get_u32();
  if (!len.ok()) return len.error();
  if (!need(len.value())) return Errc::out_of_range;
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len.value());
  pos_ += len.value();
  return s;
}

Result<Bytes> WireReader::get_bytes() {
  auto len = get_u64();
  if (!len.ok()) return len.error();
  if (!need(len.value())) return Errc::out_of_range;
  Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
          data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len.value()));
  pos_ += len.value();
  return b;
}

Result<bool> WireReader::get_bool() {
  auto v = get_u8();
  if (!v.ok()) return v.error();
  return v.value() != 0;
}

}  // namespace bsc::rpc
