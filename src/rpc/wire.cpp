#include "rpc/wire.hpp"

#include <cstring>

namespace bsc::rpc {

namespace {
template <typename T>
void put_le(Bytes& buf, T v) {
  const auto old = buf.size();
  buf.resize(old + sizeof(T));
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf[old + i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}

template <typename T>
T get_le(ByteView data, std::size_t pos) {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<std::uint8_t>(data[pos + i])) << (8 * i);
  }
  return v;
}
}  // namespace

void WireWriter::put_u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
void WireWriter::put_u32(std::uint32_t v) { put_le(buf_, v); }
void WireWriter::put_u64(std::uint64_t v) { put_le(buf_, v); }
void WireWriter::put_i64(std::int64_t v) { put_le(buf_, static_cast<std::uint64_t>(v)); }

void WireWriter::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  const auto old = buf_.size();
  buf_.resize(old + s.size());
  if (!s.empty()) std::memcpy(buf_.data() + old, s.data(), s.size());
}

void WireWriter::put_bytes(ByteView b) {
  put_u64(b.size());
  append(buf_, b);
}

Result<std::uint8_t> WireReader::get_u8() {
  if (!need(1)) return Errc::out_of_range;
  return static_cast<std::uint8_t>(data_[pos_++]);
}

Result<std::uint32_t> WireReader::get_u32() {
  if (!need(4)) return Errc::out_of_range;
  auto v = get_le<std::uint32_t>(data_, pos_);
  pos_ += 4;
  return v;
}

Result<std::uint64_t> WireReader::get_u64() {
  if (!need(8)) return Errc::out_of_range;
  auto v = get_le<std::uint64_t>(data_, pos_);
  pos_ += 8;
  return v;
}

Result<std::int64_t> WireReader::get_i64() {
  auto v = get_u64();
  if (!v.ok()) return v.error();
  return static_cast<std::int64_t>(v.value());
}

Result<std::string> WireReader::get_string() {
  auto len = get_u32();
  if (!len.ok()) return len.error();
  if (!need(len.value())) return Errc::out_of_range;
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len.value());
  pos_ += len.value();
  return s;
}

Result<Bytes> WireReader::get_bytes() {
  auto len = get_u64();
  if (!len.ok()) return len.error();
  if (!need(len.value())) return Errc::out_of_range;
  Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
          data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len.value()));
  pos_ += len.value();
  return b;
}

Result<ByteView> WireReader::get_bytes_view() {
  auto len = get_u64();
  if (!len.ok()) return len.error();
  if (!need(len.value())) return Errc::out_of_range;
  ByteView v = data_.subspan(pos_, len.value());
  pos_ += len.value();
  return v;
}

Result<bool> WireReader::get_bool() {
  auto v = get_u8();
  if (!v.ok()) return v.error();
  return v.value() != 0;
}

// --- batch envelope --------------------------------------------------------

std::uint64_t wire_size(const BatchOp& op) noexcept {
  // kind u8 + span u32 + key (u32 + chars) + offset u64 + len u64 +
  // checksum u64 + data (u64 + bytes).
  return 1 + 4 + (4 + op.key.size()) + 8 + 8 + 8 + (8 + op.data.size());
}

std::uint64_t wire_size(const BatchRequest& req) noexcept {
  std::uint64_t n = 1 + 4;  // flags u8 + op count u32
  for (const BatchOp& op : req.ops) n += wire_size(op);
  return n;
}

std::uint64_t wire_size(const BatchSubStatus& sub) noexcept {
  // errc u8 + size u64 + version u64 + digest u64 + data (u64 + bytes).
  return 1 + 8 + 8 + 8 + (8 + sub.data.size());
}

std::uint64_t wire_size(const BatchReply& reply) noexcept {
  std::uint64_t n = 4;  // sub count u32
  for (const BatchSubStatus& sub : reply.subs) n += wire_size(sub);
  return n;
}

Bytes encode(const BatchRequest& req) {
  WireWriter w;
  w.put_u8(req.flags);
  w.put_u32(static_cast<std::uint32_t>(req.ops.size()));
  for (const BatchOp& op : req.ops) {
    w.put_u8(static_cast<std::uint8_t>(op.kind));
    w.put_u32(op.span);
    w.put_string(op.key);
    w.put_u64(op.offset);
    w.put_u64(op.len);
    w.put_u64(op.checksum);
    w.put_bytes(op.data);
  }
  return std::move(w).take();
}

Bytes encode(const BatchReply& reply) {
  WireWriter w;
  w.put_u32(static_cast<std::uint32_t>(reply.subs.size()));
  for (const BatchSubStatus& sub : reply.subs) {
    w.put_u8(sub.errc);
    w.put_u64(sub.size);
    w.put_u64(sub.version);
    w.put_u64(sub.digest);
    w.put_bytes(sub.data);
  }
  return std::move(w).take();
}

Result<BatchRequest> decode_batch_request(ByteView buf) {
  WireReader r(buf);
  auto flags = r.get_u8();
  if (!flags.ok()) return flags.error();
  auto count = r.get_u32();
  if (!count.ok()) return count.error();
  BatchRequest req;
  req.flags = flags.value();
  req.ops.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    BatchOp op;
    auto kind = r.get_u8();
    if (!kind.ok()) return kind.error();
    if (kind.value() < 1 || kind.value() > 7) {
      return {Errc::invalid_argument, "bad batch op kind"};
    }
    op.kind = static_cast<BatchOpKind>(kind.value());
    auto span = r.get_u32();
    if (!span.ok()) return span.error();
    op.span = span.value();
    auto key = r.get_string();
    if (!key.ok()) return key.error();
    op.key = std::move(key).take();
    auto off = r.get_u64();
    if (!off.ok()) return off.error();
    op.offset = off.value();
    auto len = r.get_u64();
    if (!len.ok()) return len.error();
    op.len = len.value();
    auto ck = r.get_u64();
    if (!ck.ok()) return ck.error();
    op.checksum = ck.value();
    auto data = r.get_bytes_view();
    if (!data.ok()) return data.error();
    op.data = data.value();
    req.ops.push_back(std::move(op));
  }
  if (!r.exhausted()) return {Errc::invalid_argument, "trailing bytes in batch request"};
  return req;
}

Result<BatchReply> decode_batch_reply(ByteView buf) {
  WireReader r(buf);
  auto count = r.get_u32();
  if (!count.ok()) return count.error();
  BatchReply reply;
  reply.subs.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    BatchSubStatus sub;
    auto errc = r.get_u8();
    if (!errc.ok()) return errc.error();
    sub.errc = errc.value();
    auto size = r.get_u64();
    if (!size.ok()) return size.error();
    sub.size = size.value();
    auto version = r.get_u64();
    if (!version.ok()) return version.error();
    sub.version = version.value();
    auto digest = r.get_u64();
    if (!digest.ok()) return digest.error();
    sub.digest = digest.value();
    auto data = r.get_bytes_view();
    if (!data.ok()) return data.error();
    sub.data = data.value();
    reply.subs.push_back(sub);
  }
  if (!r.exhausted()) return {Errc::invalid_argument, "trailing bytes in batch reply"};
  return reply;
}

}  // namespace bsc::rpc
