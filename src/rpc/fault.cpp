#include "rpc/fault.hpp"

namespace bsc::rpc {

void FaultInjector::set_plan(std::uint32_t node, FaultPlan plan) {
  std::lock_guard lk(mu_);
  plans_[node] = std::move(plan);
}

void FaultInjector::clear_plan(std::uint32_t node) {
  std::lock_guard lk(mu_);
  plans_.erase(node);
}

void FaultInjector::clear_all() {
  std::lock_guard lk(mu_);
  plans_.clear();
}

FaultVerdict FaultInjector::decide(std::uint32_t node, SimMicros now) {
  std::lock_guard lk(mu_);
  auto it = plans_.find(node);
  if (it == plans_.end() || it->second.trivial()) {
    ++counters_.delivered;
    return {};
  }
  const FaultPlan& plan = it->second;

  // Outage windows are checked first: an unreachable node neither drops nor
  // delays — the connection attempt is refused outright, and no random draw
  // is consumed (so toggling an outage does not perturb the rest of the
  // random sequence).
  for (const Outage& o : plan.outages) {
    if (now >= o.from && now < o.until) {
      ++counters_.outage_rejections;
      return {.kind = FaultVerdict::Kind::outage};
    }
  }

  // Probabilistic verdicts consume draws in a fixed order (drop, error,
  // jitter) so identical plans replay identically.
  if (plan.drop_probability > 0.0 && rng_.chance(plan.drop_probability)) {
    ++counters_.dropped;
    return {.kind = FaultVerdict::Kind::drop};
  }
  if (plan.error_probability > 0.0 && rng_.chance(plan.error_probability)) {
    ++counters_.errored;
    return {.kind = FaultVerdict::Kind::error};
  }

  FaultVerdict v;
  v.extra_latency_us = plan.added_latency_us;
  if (plan.jitter_us > 0) {
    v.extra_latency_us +=
        static_cast<SimMicros>(rng_.next_below(static_cast<std::uint64_t>(plan.jitter_us) + 1));
  }
  ++counters_.delivered;
  if (v.extra_latency_us > 0) ++counters_.delayed;
  return v;
}

FaultInjector::Counters FaultInjector::counters() const {
  std::lock_guard lk(mu_);
  return counters_;
}

}  // namespace bsc::rpc
